package mxq_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"mxq"
	"mxq/internal/naive"
	"mxq/internal/store"
	"mxq/internal/xmark"
)

// collectionQueries is the differential workload over a sharded XMark
// collection: counting, FLWOR iteration, per-document aggregation,
// predicates, and document order across shards.
var collectionQueries = []string{
	`count(collection("xm"))`,
	`count(collection("xm")/site/people/person)`,
	`count(collection("xm")//item)`,
	`for $d in collection("xm") return count($d//item)`,
	`for $p in collection("xm")/site/people/person where $p/@id = "person0" return $p/name/text()`,
	`sum(for $d in collection("xm") return count($d/site/regions//item))`,
	`for $p in collection("xm")//person[1] return $p/name/text()`,
	`count(collection("xm")//open_auction/bidder)`,
	`distinct-values(for $i in collection("xm")//item return string($i/location/text()))`,
	`for $d in collection("xm") return <doc n="{count($d//person)}"/>`,
}

// buildCollectionWorld loads an ndocs XMark corpus as a sharded
// collection into serial and forced-parallel relational engines and
// mirrors it — in the relational collection's document order — into the
// naive oracle.
func buildCollectionWorld(t testing.TB, factor float64, ndocs, shards int) (serial, par *mxq.DB, oracle *naive.Interp) {
	t.Helper()
	serial = mxq.Open()
	par = mxq.Open(mxq.WithWorkers(4), mxq.WithParallelThreshold(1))
	seeds := serial.LoadXMarkCollection("xm", ndocs, shards, factor, 7)
	par.LoadXMarkCollection("xm", ndocs, shards, factor, 7)
	oracle = naive.New()
	order, ok := serial.CollectionDocs("xm")
	if !ok {
		t.Fatal("collection xm not registered")
	}
	for _, d := range order {
		oracle.AddCollectionDOM("xm", xmark.NewDOM(factor, seeds[d], oracle.OrdCounter()))
	}
	return serial, par, oracle
}

// TestCollectionDifferential: collection() over an N-document sharded
// corpus must return results byte-identical to the naive oracle holding
// the same documents, under both serial and forced-parallel execution.
func TestCollectionDifferential(t *testing.T) {
	serial, par, oracle := buildCollectionWorld(t, 0.001, 5, 2)
	for _, q := range collectionQueries {
		want, err := oracle.QueryString(q)
		if err != nil {
			t.Fatalf("oracle %s: %v", q, err)
		}
		for name, db := range map[string]*mxq.DB{"serial": serial, "parallel": par} {
			got, err := db.QueryString(q)
			if err != nil {
				t.Errorf("[%s] %s: %v", name, q, err)
				continue
			}
			if got != want {
				t.Errorf("[%s] %s:\n got  %q\n want %q", name, q, got, want)
			}
		}
	}
}

// TestCollectionDocOrder pins the documented document-order contract:
// shards are enumerated by ascending container id (bulk load: shard
// order), documents within a shard in insertion order — and the hash
// partitioning is the one store.ShardOf computes.
func TestCollectionDocOrder(t *testing.T) {
	docs := []mxq.Doc{
		mxq.DocString("a.xml", `<d><n>a</n></d>`),
		mxq.DocString("b.xml", `<d><n>b</n></d>`),
		mxq.DocString("c.xml", `<d><n>c</n></d>`),
		mxq.DocString("d.xml", `<d><n>d</n></d>`),
		mxq.DocString("e.xml", `<d><n>e</n></d>`),
	}
	const shards = 3
	db := mxq.Open()
	if err := db.LoadCollection("c", shards, docs...); err != nil {
		t.Fatal(err)
	}
	// shard-major expected order from the public hash
	var want []string
	for s := 0; s < shards; s++ {
		for _, d := range docs {
			if store.ShardOf(d.Name, shards) == s {
				want = append(want, d.Name)
			}
		}
	}
	got, ok := db.CollectionDocs("c")
	if !ok || fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("CollectionDocs = %v, want %v", got, want)
	}
	// collection() enumerates documents in exactly that order
	res, err := db.QueryString(`for $d in collection("c") return $d/d/n/text()`)
	if err != nil {
		t.Fatal(err)
	}
	var wantRes strings.Builder
	for _, d := range want {
		wantRes.WriteString(strings.TrimSuffix(d, ".xml"))
	}
	if res != wantRes.String() {
		t.Fatalf("collection order query = %q, want %q", res, wantRes.String())
	}
}

// TestAddToCollectionSnapshot: AddToCollection is copy-on-write — a
// Result obtained before the add stays valid, new queries see the new
// document, the updated shard's documents move to the end of the
// document order, and duplicate names are rejected.
func TestAddToCollectionSnapshot(t *testing.T) {
	db := mxq.Open()
	if err := db.LoadCollection("c", 2,
		mxq.DocString("a.xml", `<d><n>a</n></d>`),
		mxq.DocString("b.xml", `<d><n>b</n></d>`),
	); err != nil {
		t.Fatal(err)
	}
	before, err := db.Query(`collection("c")/d/n`)
	if err != nil {
		t.Fatal(err)
	}
	if before.Len() != 2 {
		t.Fatalf("before add: %d items, want 2", before.Len())
	}
	if err := db.AddToCollection("c", mxq.DocString("z.xml", `<d><n>z</n></d>`)); err != nil {
		t.Fatal(err)
	}
	// the pre-add result pinned its snapshot: still 2 items, serializable
	if before.Len() != 2 || !strings.Contains(before.String(), "<n>a</n>") {
		t.Fatalf("pre-add result changed after AddToCollection: %q", before.String())
	}
	after, err := db.QueryString(`count(collection("c"))`)
	if err != nil {
		t.Fatal(err)
	}
	if after != "3" {
		t.Fatalf("after add: count = %s, want 3", after)
	}
	// z.xml's shard was re-registered under a fresh container id: its
	// documents now come last in document order
	order, _ := db.CollectionDocs("c")
	zShard := store.ShardOf("z.xml", 2)
	var wantTail []string
	for _, d := range []string{"a.xml", "b.xml"} {
		if store.ShardOf(d, 2) == zShard {
			wantTail = append(wantTail, d)
		}
	}
	wantTail = append(wantTail, "z.xml")
	if fmt.Sprint(order[len(order)-len(wantTail):]) != fmt.Sprint(wantTail) {
		t.Fatalf("post-add order = %v, want tail %v", order, wantTail)
	}
	if err := db.AddToCollection("c", mxq.DocString("a.xml", `<d/>`)); err == nil ||
		!strings.Contains(err.Error(), "already in collection") {
		t.Fatalf("duplicate add error = %v", err)
	}
}

// TestCollectionConcurrency: concurrent collection queries (parallel
// execution on) racing against AddToCollection writers must stay
// race-clean and always observe a consistent snapshot (count is one of
// the valid corpus sizes, never torn).
func TestCollectionConcurrency(t *testing.T) {
	db := mxq.Open(mxq.WithWorkers(4), mxq.WithParallelThreshold(1))
	if err := db.LoadCollection("c", 3,
		mxq.DocString("a.xml", `<d><n>1</n></d>`),
		mxq.DocString("b.xml", `<d><n>2</n></d>`),
	); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				got, err := db.QueryString(`count(collection("c"))`)
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if got != "2" && got != "3" && got != "4" {
					t.Errorf("torn collection count %q", got)
					return
				}
			}
		}()
	}
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("new%d.xml", i)
		if err := db.AddToCollection("c", mxq.DocString(name, `<d><n>x</n></d>`)); err != nil {
			t.Errorf("add %s: %v", name, err)
		}
	}
	wg.Wait()
}

// TestDocConstantFolding covers the lifted doc()/collection() argument
// restriction: constant-foldable expressions resolve at plan time; a
// runtime-valued argument compiles but raises a clear dynamic error.
func TestDocConstantFolding(t *testing.T) {
	db := mxq.Open()
	if err := db.LoadDocumentString("a.xml", `<r><x>1</x></r>`); err != nil {
		t.Fatal(err)
	}
	if err := db.LoadDocumentString("b2.xml", `<r><x>2</x></r>`); err != nil {
		t.Fatal(err)
	}
	folded := map[string]string{
		`doc("b2.xml")/r/x/text()`:                       "2",
		`doc(concat("b", "2", ".xml"))/r/x/text()`:       "2",
		`doc(string("b2.xml"))/r/x/text()`:               "2",
		`doc(concat("b", 2, ".xml"))/r/x/text()`:         "2",
		`doc(("b2.xml"))/r/x/text()`:                     "2",
		`count(doc(concat("a", ".xml")) | doc("a.xml"))`: "1",
	}
	for q, want := range folded {
		got, err := db.QueryString(q)
		if err != nil {
			t.Errorf("%s: %v", q, err)
			continue
		}
		if got != want {
			t.Errorf("%s = %q, want %q", q, got, want)
		}
	}
	// runtime-valued argument: compiles, then fails with a clear dynamic
	// error naming the restriction
	for _, q := range []string{
		`doc(string(/r/x))`,
		`for $n in /r/x return doc(string($n))`,
		`collection(string(/r/x))`,
	} {
		if _, err := db.Engine().Compile(q); err != nil {
			t.Errorf("Compile(%s) = %v, want plan-time success", q, err)
		}
		_, err := db.QueryString(q)
		if err == nil || !strings.Contains(err.Error(), "not a constant string expression") {
			t.Errorf("%s error = %v, want runtime constant-argument error", q, err)
		}
	}
}
