package mxq

import (
	"context"

	"mxq/internal/core"
	"mxq/internal/ralg"
	"mxq/internal/xqt"
)

// Bindings is the low-level binding environment of the engine API
// (core.Prepared.Execute); Stmt.Bind with typed Values is the
// high-level surface. Exposed for harnesses (benchmarks, fuzzers)
// driving core.Engine directly.
type Bindings = core.Bindings

// Value is a binding value for an external query variable: a typed
// XQuery sequence built with the Int/Float/String/Bool/Sequence
// constructors (or Items, for node sequences taken from an earlier
// Result). Values are immutable.
type Value struct {
	vec ralg.ItemVec
}

// Int builds an xs:integer singleton value.
func Int(v int64) Value { return Value{vec: ralg.BindInts(v)} }

// Float builds an xs:double singleton value.
func Float(v float64) Value { return Value{vec: ralg.BindFloats(v)} }

// String builds an xs:string singleton value.
func String(s string) Value { return Value{vec: ralg.BindStrings(s)} }

// Bool builds an xs:boolean singleton value.
func Bool(b bool) Value { return Value{vec: ralg.BindBools(b)} }

// Ints builds an xs:integer sequence value on the typed fast path (no
// per-item boxing; the input slice is copied, so callers may reuse it).
func Ints(vs ...int64) Value {
	return Value{vec: ralg.BindInts(append([]int64(nil), vs...)...)}
}

// Floats builds an xs:double sequence value on the typed fast path
// (the input slice is copied).
func Floats(vs ...float64) Value {
	return Value{vec: ralg.BindFloats(append([]float64(nil), vs...)...)}
}

// Strings builds an xs:string sequence value on the typed fast path
// (the input slice is copied).
func Strings(vs ...string) Value {
	return Value{vec: ralg.BindStrings(append([]string(nil), vs...)...)}
}

// Items builds a value from raw items — e.g. a node sequence obtained
// from a previous Result on the same DB. Node items are only
// meaningful to the DB whose documents they reference.
func Items(items ...xqt.Item) Value {
	return Value{vec: ralg.BindItems(append([]xqt.Item(nil), items...)...)}
}

// Sequence concatenates values into one sequence value (XQuery
// sequences do not nest).
func Sequence(vs ...Value) Value {
	switch len(vs) {
	case 0:
		return Value{}
	case 1:
		return vs[0]
	}
	var out ralg.ItemVec
	for i := range vs {
		v := vs[i].vec
		out.AppendVec(&v)
	}
	return Value{vec: out}
}

// Len returns the number of items in the value.
func (v Value) Len() int { return v.vec.Len() }

// VarInfo describes one external variable of a prepared statement:
// its name, whether a binding is Required (no default — executing
// unbound raises XPDY0002), and whether the default implies a
// Singleton (binding more than one item raises XPTY0004).
type VarInfo = core.VarInfo

// Stmt is a prepared statement: the query is parsed, compiled and
// optimized once, and the compiled plan is shared by every execution.
// External variables ("declare variable $x external;" in the query
// prolog) are supplied per execution with Bind.
//
// A Stmt is immutable: Bind returns a derived statement sharing the
// same compiled plan, leaving the receiver unchanged. One Stmt may
// therefore be executed by any number of goroutines concurrently, each
// chaining its own Bind calls — every Exec takes a fresh snapshot of
// the DB's loaded documents:
//
//	stmt, _ := db.Prepare(`declare variable $min external;
//	    for $i in /site/item where number($i/price) > $min return $i`)
//	go stmt.Bind("min", mxq.Int(10)).Exec()
//	go stmt.Bind("min", mxq.Int(99)).Exec()
type Stmt struct {
	p     *core.Prepared
	binds core.Bindings
}

// Prepare parses, compiles and optimizes a query into a reusable
// statement. The compile cost is paid once; Exec only pays binding
// materialization and plan execution. Repeated Prepare calls for the
// same query text hit the engine's plan cache.
func (db *DB) Prepare(q string) (*Stmt, error) {
	p, err := db.eng.Prepare(q)
	if err != nil {
		return nil, err
	}
	return &Stmt{p: p}, nil
}

// Bind returns a derived statement with the external variable name
// bound to v (replacing any previous binding of that name). The
// receiver is unchanged, so concurrent binders never interfere.
// Binding names are validated at Exec time against the declared
// external variables.
func (s *Stmt) Bind(name string, v Value) *Stmt {
	nb := make(core.Bindings, len(s.binds)+1)
	for k, vec := range s.binds {
		nb[k] = vec
	}
	nb[name] = v.vec
	return &Stmt{p: s.p, binds: nb}
}

// Exec runs the statement under its accumulated bindings and returns
// the result. Unbound externals fall back to their declared defaults;
// a required external without a binding raises XPDY0002.
func (s *Stmt) Exec() (*Result, error) {
	return s.ExecContext(context.Background())
}

// ExecContext is Exec under a context: a deadline or cancellation that
// fires mid-execution makes the executor abandon its work at the next
// operator checkpoint and return ctx.Err() — never a partial result.
// All parallel workers of the execution have drained by the time it
// returns.
func (s *Stmt) ExecContext(ctx context.Context) (*Result, error) {
	r, err := s.p.ExecuteContext(ctx, s.binds)
	if err != nil {
		return nil, err
	}
	return &Result{r: r}, nil
}

// ExecString runs the statement and serializes the result.
func (s *Stmt) ExecString() (string, error) {
	r, err := s.Exec()
	if err != nil {
		return "", err
	}
	return r.String(), nil
}

// ExecStringContext runs the statement under a context and serializes
// the result.
func (s *Stmt) ExecStringContext(ctx context.Context) (string, error) {
	r, err := s.ExecContext(ctx)
	if err != nil {
		return "", err
	}
	return r.String(), nil
}

// Vars returns the external variables the statement accepts, in
// declaration order — the introspection surface for generic callers
// (CLI drivers, schedulers) that bind by name.
func (s *Stmt) Vars() []VarInfo { return s.p.Vars() }

// Query returns the statement's query text.
func (s *Stmt) Query() string { return s.p.Query() }
