package mxq

import (
	"errors"

	"mxq/internal/xqerr"
)

// QueryError is the typed XQuery error every engine layer mints: a W3C
// error code (XPST0008, XPDY0002, FODC0002, …) plus a message. Its
// Error() text is exactly "xquery error CODE: message", so existing
// string-based handling keeps working; new callers classify errors with
// errors.As:
//
//	if qe := mxq.AsQueryError(err); qe != nil && qe.Static() { ... }
//
// Static() reports whether the code is a static (compile-time) class
// (XPST/XQST) — the query can never run — as opposed to a dynamic error
// of one execution. Errors without a code (I/O failures, internal
// errors recovered from a bad plan) are not QueryErrors.
type QueryError = xqerr.Error

// AsQueryError unwraps err to its QueryError, or nil when err carries
// no W3C error code.
func AsQueryError(err error) *QueryError {
	var qe *QueryError
	if errors.As(err, &qe) {
		return qe
	}
	return nil
}

// IsResourceLimit reports whether err is the typed resource-exhausted
// error (code XPDY0130) a query raises when it exceeds its memory
// budget (WithMemLimit or a scheduler memory grant) or an intermediate
// result row limit. It is a dynamic error — the same query may succeed
// under a larger budget — so servers map it to 503, not 400.
func IsResourceLimit(err error) bool { return xqerr.IsResourceLimit(err) }
