// Command xmarkgen writes a synthetic XMark auction document as XML text.
//
// Usage:
//
//	xmarkgen -factor 0.01 -o auction.xml
//
// Scale factor 1.0 corresponds to the benchmark's ~110 MB document.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"mxq/internal/xmark"
)

func main() {
	var (
		factor = flag.Float64("factor", 0.01, "scale factor (1.0 ≈ 110 MB)")
		seed   = flag.Int64("seed", 42, "generator seed")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xmarkgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	if err := xmark.WriteXML(w, *factor, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "xmarkgen:", err)
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "xmarkgen:", err)
		os.Exit(1)
	}
	c := xmark.CountsFor(*factor)
	fmt.Fprintf(os.Stderr, "xmarkgen: factor %g: %d persons, %d items, %d open, %d closed auctions\n",
		*factor, c.Persons, c.Items, c.OpenAuctions, c.ClosedAuctions)
}
