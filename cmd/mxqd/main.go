// Command mxqd serves an mxq engine over HTTP: one-shot queries,
// prepared statements with typed JSON binds, streamed XML results,
// health and metrics endpoints. See docs/serving.md for the wire API.
//
// Typical invocations:
//
//	mxqd -addr :8080 -doc auction=auction.xml
//	mxqd -addr :8080 -xmark 0.1 -parallel -timeout 10s
//
// Every query executes under the request context plus the effective
// timeout, so client disconnects and deadlines cancel the executor
// mid-operator without leaking goroutines; a panic from a malformed
// plan is contained to a 500 on that request. SIGINT/SIGTERM drain
// in-flight requests before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"mxq"
	"mxq/internal/faults"
	"mxq/internal/serve"
)

// docFlags collects repeatable -doc name=path flags.
type docFlags []string

func (d *docFlags) String() string { return strings.Join(*d, ",") }
func (d *docFlags) Set(s string) error {
	if !strings.Contains(s, "=") {
		return errors.New("want name=path")
	}
	*d = append(*d, s)
	return nil
}

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address")
		docs         docFlags
		xmarkFactor  = flag.Float64("xmark", 0, "load a generated XMark document at this scale factor (0 = off)")
		xmarkSeed    = flag.Int64("xmark-seed", 42, "XMark generator seed")
		parallel     = flag.Bool("parallel", false, "enable intra-query parallel execution")
		workers      = flag.Int("workers", 0, "parallel worker pool size (0 = GOMAXPROCS)")
		timeout      = flag.Duration("timeout", serve.DefaultQueryTimeout, "default per-query timeout")
		maxTimeout   = flag.Duration("max-timeout", serve.DefaultMaxTimeout, "cap on client-requested timeouts")
		maxInflight  = flag.Int("max-inflight", serve.DefaultMaxInflight, "max concurrently executing queries")
		queueDepth   = flag.Int("queue-depth", 0, "max requests queued for an execution slot (0 = 2x max-inflight, negative = reject instantly)")
		schedWorkers = flag.Int("sched-workers", 0, "global worker-slot pool shared by all executions (0 = GOMAXPROCS)")
		maxStmts     = flag.Int("max-stmts", serve.DefaultMaxStmts, "max live prepared statements before LRU eviction")
		stmtTTL      = flag.Duration("stmt-ttl", serve.DefaultStmtTTL, "evict prepared statements idle this long (negative = never)")
		maxConns     = flag.Int("max-conns", 0, "max open client connections (0 = unlimited)")
		memPerQuery  = flag.String("mem-per-query", "0", "per-query memory budget, e.g. 256MiB (0 = unlimited); over-budget queries fail with 503")
		memTotal     = flag.String("mem-total", "0", "global memory pool bounding the sum of per-query reservations, e.g. 4GiB (0 = unlimited); exhausted admissions answer 503")
	)
	flag.Var(&docs, "doc", "load an XML document, name=path (repeatable)")
	flag.Parse()
	memPQ, err := parseBytes(*memPerQuery)
	if err != nil {
		log.Fatalf("mxqd: -mem-per-query: %v", err)
	}
	memTot, err := parseBytes(*memTotal)
	if err != nil {
		log.Fatalf("mxqd: -mem-total: %v", err)
	}
	if memTot > 0 && memPQ == 0 {
		log.Fatalf("mxqd: -mem-total requires -mem-per-query (the pool bounds per-query reservations)")
	}
	// Deterministic fault injection for chaos testing: MXQ_FAULTS holds
	// "site:prob:seed[:mode],..." specs (see internal/faults). Unset in
	// production; the disarmed registry is a single atomic load per site.
	if err := faults.SetFromEnv(); err != nil {
		log.Fatalf("mxqd: MXQ_FAULTS: %v", err)
	}
	if faults.Armed() {
		log.Printf("mxqd: fault injection ARMED via MXQ_FAULTS=%s", os.Getenv("MXQ_FAULTS"))
	}

	// The daemon always runs under a global scheduler: admission and the
	// worker budget come from one place whether execution is serial or
	// parallel, and N in-flight queries never claim N×cores goroutines.
	scheduler := mxq.NewScheduler(mxq.SchedulerConfig{
		Workers:       *schedWorkers,
		MaxConcurrent: *maxInflight,
		MaxQueue:      *queueDepth,
		MemPerQuery:   memPQ,
		MemTotal:      memTot,
	})
	opts := []mxq.Option{mxq.WithScheduler(scheduler)}
	if *parallel {
		opts = append(opts, mxq.WithParallel(true))
	}
	if *workers > 0 {
		opts = append(opts, mxq.WithWorkers(*workers))
	}
	db := mxq.Open(opts...)
	for _, d := range docs {
		name, path, _ := strings.Cut(d, "=")
		f, err := os.Open(path)
		if err != nil {
			log.Fatalf("mxqd: %v", err)
		}
		err = db.LoadDocument(name, f)
		f.Close()
		if err != nil {
			log.Fatalf("mxqd: load %s: %v", name, err)
		}
		log.Printf("loaded document %q from %s", name, path)
	}
	if *xmarkFactor > 0 {
		db.LoadXMark("xmark", *xmarkFactor, *xmarkSeed)
		log.Printf("loaded generated XMark document (factor %g)", *xmarkFactor)
	}

	srv := serve.New(db, serve.Config{
		MaxInflight:    *maxInflight,
		MaxQueue:       *queueDepth,
		MaxStmts:       *maxStmts,
		StmtTTL:        *stmtTTL,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
	})
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("mxqd: %v", err)
	}
	if memPQ > 0 {
		log.Printf("memory governance: %s per query, %s total", *memPerQuery, *memTotal)
	}
	if *maxConns > 0 {
		ln = serve.LimitListener(ln, *maxConns)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() {
		log.Printf("mxqd listening on %s", ln.Addr())
		if err := hs.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("mxqd: %v", err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "mxqd: shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		log.Printf("mxqd: shutdown: %v", err)
	}
}

// parseBytes parses a byte size: a plain integer, or one with a K/M/G/T
// suffix (optionally followed by "iB" or "B"), binary-scaled — "256MiB",
// "256M" and "268435456" are the same size.
func parseBytes(s string) (int64, error) {
	t := strings.TrimSpace(s)
	shift := 0
	for suf, sh := range map[string]int{"K": 10, "M": 20, "G": 30, "T": 40} {
		for _, full := range []string{suf + "iB", suf + "B", suf} {
			if strings.HasSuffix(t, full) {
				t, shift = strings.TrimSuffix(t, full), sh
				break
			}
		}
		if shift != 0 {
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q (want e.g. 256MiB, 4G, or a byte count)", s)
	}
	if n < 0 {
		return 0, fmt.Errorf("negative size %q", s)
	}
	return n << shift, nil
}
