package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"mxq"
	"mxq/internal/serve"
	"mxq/internal/xmark"
)

// serveMix is the statement set the load generator prepares over the
// wire: the cheap XMark queries (the same mix the parallel experiment's
// throughput section uses), so the run measures serving overhead and
// concurrency rather than a single heavy plan.
var serveMix = []int{1, 2, 5, 6, 13, 15, 17, 20}

// serveExp measures the HTTP serving layer end to end: it starts an
// in-process mxqd-style server on a loopback listener, prepares the
// statement mix over the wire, then fans out concurrent wire clients
// that execute the prepared statements round-robin. Every response body
// is compared byte-for-byte against the in-process serialization, so
// the run doubles as a differential check of the wire path under
// concurrency. The client count is -clients, floored at 8.
func serveExp(scales []float64) {
	f := scales[len(scales)-1]
	clients := *clientsFlag
	if clients < 8 {
		clients = 8
	}
	const rounds = 5

	var opts []mxq.Option
	if *parallelFlag {
		opts = append(opts, mxq.WithParallel(true))
		if *workersFlag > 0 {
			opts = append(opts, mxq.WithWorkers(*workersFlag))
		}
	}
	db := mxq.Open(opts...)
	db.LoadXMark("auction.xml", f, *seedFlag)

	srv := serve.New(db, serve.Config{MaxInflight: 2 * clients})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve error:", err)
		return
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	fmt.Printf("\n== Serving (%s): %d wire clients x %d prepared statements x %d rounds ==\n",
		mb(f), clients, len(serveMix), rounds)

	// in-process reference serializations — what every wire response
	// must equal byte-for-byte
	want := make([][]byte, len(serveMix))
	for i, q := range serveMix {
		res, err := db.Query(xmark.Query(q))
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: Q%d: %v\n", q, err)
			return
		}
		var buf bytes.Buffer
		if err := res.SerializeXML(&buf); err != nil {
			fmt.Fprintf(os.Stderr, "serve: Q%d: %v\n", q, err)
			return
		}
		want[i] = buf.Bytes()
	}

	// prepare the mix over the wire
	ids := make([]string, len(serveMix))
	for i, q := range serveMix {
		id, err := wirePrepare(base, xmark.Query(q))
		if err != nil {
			fmt.Fprintf(os.Stderr, "serve: prepare Q%d: %v\n", q, err)
			return
		}
		ids[i] = id
	}

	// fan out: each client walks the statement mix round-robin from its
	// own offset, so at any instant different statements execute
	// concurrently against the shared engine
	type clientStats struct {
		lat  []time.Duration
		errs int
	}
	stats := make([]clientStats, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			st := &stats[cl]
			for r := 0; r < rounds; r++ {
				for k := range serveMix {
					i := (cl + r + k) % len(serveMix)
					t0 := time.Now()
					body, err := wireExec(base, ids[i])
					st.lat = append(st.lat, time.Since(t0))
					if err != nil {
						fmt.Fprintf(os.Stderr, "serve: client %d Q%d: %v\n", cl, serveMix[i], err)
						st.errs++
						continue
					}
					if !bytes.Equal(body, want[i]) {
						fmt.Fprintf(os.Stderr, "serve: client %d Q%d: wire bytes differ from in-process result (%d vs %d bytes)\n",
							cl, serveMix[i], len(body), len(want[i]))
						st.errs++
					}
				}
			}
		}(cl)
	}
	wg.Wait()
	wall := time.Since(start)

	var all []time.Duration
	errs := 0
	for i := range stats {
		all = append(all, stats[i].lat...)
		errs += stats[i].errs
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	total := len(all)
	fmt.Printf("executions:    %d wire calls in %s (%.1f q/s)\n",
		total, wall.Round(time.Millisecond), float64(total)/wall.Seconds())
	fmt.Printf("latency:       p50 %s  p95 %s  max %s\n",
		pctl(all, 50).Round(time.Microsecond), pctl(all, 95).Round(time.Microsecond),
		all[total-1].Round(time.Microsecond))
	if errs == 0 {
		fmt.Printf("differential:  all %d responses byte-identical to in-process results\n", total)
	} else {
		fmt.Printf("differential:  %d of %d responses FAILED\n", errs, total)
	}
}

func pctl(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := p * len(sorted) / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func wirePrepare(base, query string) (string, error) {
	body, _ := json.Marshal(map[string]string{"query": query})
	resp, err := http.Post(base+"/prepare", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	var pr struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &pr); err != nil {
		return "", err
	}
	return pr.ID, nil
}

func wireExec(base, id string) ([]byte, error) {
	resp, err := http.Post(base+"/stmt/"+id+"/exec", "application/json", bytes.NewReader([]byte("{}")))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	return body, nil
}
