// Command xmarkbench regenerates the paper's evaluation (§6): every table
// and figure has a corresponding experiment that prints the same rows or
// series the paper reports.
//
//	xmarkbench -experiment table1   # Table 1: Q1–Q20 across sizes and systems
//	xmarkbench -experiment fig12    # benefit of loop-lifted staircase join
//	xmarkbench -experiment fig13    # join recognition: cross product vs join
//	xmarkbench -experiment fig14    # sort reduction via order properties
//	xmarkbench -experiment fig15    # scalability across document sizes
//	xmarkbench -experiment fig16    # normalized cross-system comparison
//	xmarkbench -experiment shred    # shredding and serialization timings
//	xmarkbench -experiment plans    # §4.1 plan statistics (ops/joins)
//	xmarkbench -experiment updates  # §5.2 paged updates vs full rebuild
//	xmarkbench -experiment parallel # serial vs parallel execution + multi-client throughput
//	xmarkbench -experiment collection # sharded multi-document collection() scaling (-collection N docs)
//	xmarkbench -experiment prepared # prepared statements: bind+execute vs cold parse+compile+execute
//	xmarkbench -experiment serve    # HTTP serving layer: N wire clients x M prepared statements
//	xmarkbench -experiment sched    # global query scheduler under 4x oversubscription, differential vs serial
//	xmarkbench -experiment mem      # per-query memory governance: accounting overhead + typed aborts
//	xmarkbench -experiment all
//
// The -parallel flag switches every experiment's MXQ engine to parallel
// intra-query execution (worker pool sized by -workers, default
// GOMAXPROCS); the parallel experiment always measures both modes and a
// -clients sized multi-client throughput run.
//
// MXQ is this reproduction's relational engine; NAIVE is the DOM
// interpreter standing in for the paper's non-relational comparators
// (eXist/Galax/X-Hive/BDB — see DESIGN.md for the substitution).
//
// All experiments run with rewrite tracing off (the default): the
// optimizer's translation-validation hook costs one nil check per
// rewrite site when disabled (opt.OptimizeTraced with a nil trace is
// exactly opt.Optimize), so these numbers are unaffected by the
// optcheck layer — see docs/optimizer.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"mxq/internal/core"
	"mxq/internal/naive"
	"mxq/internal/pages"
	"mxq/internal/ralg"
	"mxq/internal/scj"
	"mxq/internal/store"
	"mxq/internal/xmark"
)

var (
	scalesFlag  = flag.String("scales", "0.001,0.01,0.1", "comma-separated XMark scale factors")
	seedFlag    = flag.Int64("seed", 42, "generator seed")
	runsFlag    = flag.Int("runs", 3, "report the best of N runs (the paper uses 5)")
	timeoutFlag = flag.Duration("timeout", 60*time.Second, "per-query soft time limit; slower entries print DNF")
	expFlag     = flag.String("experiment", "all", "experiment to run (table1, fig12, fig13, fig14, fig15, fig16, shred, plans, updates, parallel, collection, prepared, serve, sched, mem, all)")

	parallelFlag = flag.Bool("parallel", false, "run MXQ engines with intra-query parallel execution")
	workersFlag  = flag.Int("workers", 0, "parallel worker goroutines (0 = GOMAXPROCS)")
	clientsFlag  = flag.Int("clients", 4, "concurrent clients in the parallel experiment's throughput section")

	collectionFlag = flag.Int("collection", 8, "documents in the collection experiment's sharded corpus")
)

func main() {
	flag.Parse()
	scales := parseScales(*scalesFlag)
	run := func(name string, f func([]float64)) {
		if *expFlag == name || *expFlag == "all" {
			f(scales)
		}
	}
	run("table1", table1)
	run("fig12", fig12)
	run("fig13", fig13)
	run("fig14", fig14)
	run("fig15", fig15)
	run("fig16", fig16)
	run("shred", shred)
	run("plans", plans)
	run("updates", updates)
	run("parallel", parallel)
	run("collection", collection)
	run("prepared", prepared)
	run("serve", serveExp)
	run("sched", schedExp)
	run("mem", memExp)
}

func parseScales(s string) []float64 {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		var f float64
		if _, err := fmt.Sscanf(strings.TrimSpace(part), "%g", &f); err == nil && f > 0 {
			out = append(out, f)
		}
	}
	sort.Float64s(out)
	if len(out) == 0 {
		out = []float64{0.001, 0.01}
	}
	return out
}

func mb(f float64) string { return fmt.Sprintf("%.1f MB", f*110) }

// bestOf times fn, returning the best of *runsFlag runs; a first run
// exceeding the timeout reports (0, false).
func bestOf(fn func() error) (time.Duration, bool) {
	best := time.Duration(0)
	for i := 0; i < *runsFlag; i++ {
		start := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintln(os.Stderr, "query error:", err)
			return 0, false
		}
		d := time.Since(start)
		if i == 0 && d > *timeoutFlag {
			return 0, false
		}
		if best == 0 || d < best {
			best = d
		}
	}
	return best, true
}

func fmtTime(d time.Duration, ok bool) string {
	if !ok {
		return "DNF"
	}
	return fmt.Sprintf("%.3f", d.Seconds())
}

func engineFor(cfg core.Config, cont *store.Container) *core.Engine {
	if *parallelFlag {
		cfg.Parallel = true
		cfg.Workers = *workersFlag
	}
	e := core.New(cfg)
	e.LoadContainer(cont.Name, cont)
	return e
}

// parallel measures intra-query parallelism (serial vs parallel per
// XMark query, with speedups, at every requested scale) and
// multi-client throughput on one shared engine — the two scaling axes
// the parallel subsystem adds.
func parallel(scales []float64) {
	workers := *workersFlag
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var serialEng, parEng *core.Engine
	for _, f := range scales {
		fmt.Printf("\n== Parallel execution (%s, %d workers, GOMAXPROCS=%d) ==\n",
			mb(f), workers, runtime.GOMAXPROCS(0))
		cont := xmark.NewStoreContainer("auction.xml", f, *seedFlag)
		serialEng = core.New(core.DefaultConfig())
		serialEng.LoadContainer(cont.Name, cont)
		parCfg := core.ParallelConfig()
		parCfg.Workers = workers
		parEng = core.New(parCfg)
		parEng.LoadContainer(cont.Name, cont)

		fmt.Printf("%-4s %12s %12s %8s\n", "Q", "serial", "parallel", "speedup")
		var sumS, sumP time.Duration
		allOK := true
		for q := 1; q <= 20; q++ {
			query := xmark.Query(q)
			ds, okS := bestOf(func() error { _, err := serialEng.Query(query); return err })
			dp, okP := bestOf(func() error { _, err := parEng.Query(query); return err })
			allOK = allOK && okS && okP
			sumS += ds
			sumP += dp
			ratio := "-"
			if okS && okP && dp > 0 {
				ratio = fmt.Sprintf("%.2fx", float64(ds)/float64(dp))
			}
			fmt.Printf("Q%-3d %12s %12s %8s\n", q, fmtTime(ds, okS), fmtTime(dp, okP), ratio)
		}
		sumRatio := "-"
		if allOK && sumP > 0 {
			sumRatio = fmt.Sprintf("%.2fx", float64(sumS)/float64(sumP))
		}
		fmt.Printf("%-4s %12s %12s %8s\n", "sum", fmtTime(sumS, allOK), fmtTime(sumP, allOK), sumRatio)
	}

	// multi-client throughput at the largest scale: C goroutines issue
	// the cheap query mix against ONE engine (the concurrency-safety
	// axis)
	clients := *clientsFlag
	if clients < 1 {
		clients = 1
	}
	mix := []int{1, 2, 5, 6, 13, 15, 17, 20}
	const perClient = 8
	throughput := func(eng *core.Engine) (float64, error) {
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		start := time.Now()
		for cl := 0; cl < clients; cl++ {
			wg.Add(1)
			go func(cl int) {
				defer wg.Done()
				for i := 0; i < perClient; i++ {
					if _, err := eng.Query(xmark.Query(mix[(cl+i)%len(mix)])); err != nil {
						errs <- err
						return
					}
				}
			}(cl)
		}
		wg.Wait()
		close(errs)
		if err := <-errs; err != nil {
			return 0, err
		}
		return float64(clients*perClient) / time.Since(start).Seconds(), nil
	}
	fmt.Printf("\n-- throughput, %d concurrent clients x %d queries (one shared engine) --\n", clients, perClient)
	for _, mode := range []struct {
		label string
		eng   *core.Engine
	}{{"serial exec", serialEng}, {"parallel exec", parEng}} {
		qps, err := throughput(mode.eng)
		if err != nil {
			fmt.Fprintln(os.Stderr, "throughput error:", err)
			return
		}
		fmt.Printf("%-14s %8.1f queries/s\n", mode.label, qps)
	}
}

// collection measures sharded multi-document stores: N XMark documents
// are generated into a collection with one shard per document, and
// collection()-rooted queries run serial versus parallel — the parallel
// executor distributes the per-shard staircase joins across the worker
// pool, so the speedup axis here is shards, not intra-document ranges.
func collection(scales []float64) {
	ndocs := *collectionFlag
	if ndocs < 1 {
		ndocs = 8
	}
	workers := *workersFlag
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	f := scales[len(scales)-1]
	fmt.Printf("\n== Sharded collection: %d x %s documents, %d shards, %d workers (GOMAXPROCS=%d) ==\n",
		ndocs, mb(f), ndocs, workers, runtime.GOMAXPROCS(0))
	// a ShardedPool belongs to one engine; generation is deterministic,
	// so each engine gets its own identical corpus
	spSerial, _ := xmark.BuildShardedCollection("xmark", ndocs, ndocs, f, *seedFlag)
	spPar, _ := xmark.BuildShardedCollection("xmark", ndocs, ndocs, f, *seedFlag)
	serialEng := core.New(core.DefaultConfig())
	serialEng.RegisterCollection(spSerial)
	parCfg := core.ParallelConfig()
	parCfg.Workers = workers
	parEng := core.New(parCfg)
	parEng.RegisterCollection(spPar)

	queries := []struct{ label, q string }{
		{"count-person", `count(collection("xmark")/site/people/person)`},
		{"desc-item", `count(collection("xmark")//item)`},
		{"names", `for $p in collection("xmark")/site/people/person where $p/@id = "person0" return $p/name/text()`},
		{"sum-per-doc", `sum(for $d in collection("xmark") return count($d/site/regions//item))`},
		{"closed-auct", `count(collection("xmark")/site/closed_auctions/closed_auction[price > 40])`},
	}
	fmt.Printf("%-12s %12s %12s %8s\n", "query", "serial", "parallel", "speedup")
	var sumS, sumP time.Duration
	allOK := true
	for _, qc := range queries {
		ds, okS := bestOf(func() error { _, err := serialEng.Query(qc.q); return err })
		dp, okP := bestOf(func() error { _, err := parEng.Query(qc.q); return err })
		allOK = allOK && okS && okP
		sumS += ds
		sumP += dp
		ratio := "-"
		if okS && okP && dp > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(ds)/float64(dp))
		}
		fmt.Printf("%-12s %12s %12s %8s\n", qc.label, fmtTime(ds, okS), fmtTime(dp, okP), ratio)
	}
	sumRatio := "-"
	if allOK && sumP > 0 {
		sumRatio = fmt.Sprintf("%.2fx", float64(sumS)/float64(sumP))
	}
	fmt.Printf("%-12s %12s %12s %8s\n", "sum", fmtTime(sumS, allOK), fmtTime(sumP, allOK), sumRatio)
}

// prepared measures the statement-centric API: for every XMark query,
// cold = parse+compile+optimize+execute per call (plan cache disabled)
// versus prepared = Prepare once, bind+execute per call. The headline
// number is the plan-reuse speedup of the serving path; the
// parameterized section executes ONE prepared statement with a fresh
// binding per call — the case the one-shot API cannot express at all
// without splicing values into query text (a cache miss per distinct
// value).
func prepared(scales []float64) {
	for _, f := range scales {
		fmt.Printf("\n== Prepared statements (%s): bind+execute vs cold compile ==\n", mb(f))
		cont := xmark.NewStoreContainer("auction.xml", f, *seedFlag)
		coldCfg := core.DefaultConfig()
		coldCfg.PlanCache = false
		cold := engineFor(coldCfg, cont)
		warm := engineFor(core.DefaultConfig(), cont)

		fmt.Printf("%-4s %12s %12s %8s\n", "Q", "cold", "prepared", "speedup")
		var sumC, sumP time.Duration
		allOK := true
		for q := 1; q <= 20; q++ {
			query := xmark.Query(q)
			stmt, err := warm.Prepare(query)
			if err != nil {
				fmt.Fprintln(os.Stderr, "prepare error:", err)
				return
			}
			dc, okC := bestOf(func() error { _, err := cold.Query(query); return err })
			dp, okP := bestOf(func() error { _, err := stmt.Execute(nil); return err })
			allOK = allOK && okC && okP
			sumC += dc
			sumP += dp
			ratio := "-"
			if okC && okP && dp > 0 {
				ratio = fmt.Sprintf("%.2fx", float64(dc)/float64(dp))
			}
			fmt.Printf("Q%-3d %12s %12s %8s\n", q, fmtTime(dc, okC), fmtTime(dp, okP), ratio)
		}
		sumRatio := "-"
		if allOK && sumP > 0 {
			sumRatio = fmt.Sprintf("%.2fx", float64(sumC)/float64(sumP))
		}
		fmt.Printf("%-4s %12s %12s %8s\n", "sum", fmtTime(sumC, allOK), fmtTime(sumP, allOK), sumRatio)

		// parameterized statement: one plan, a fresh binding per call
		const paramQ = `declare variable $min external;
			for $a in /site/closed_auctions/closed_auction
			where number($a/price) > $min return $a/price/text()`
		stmt, err := warm.Prepare(paramQ)
		if err != nil {
			fmt.Fprintln(os.Stderr, "prepare error:", err)
			return
		}
		const execs = 200
		start := time.Now()
		for i := 0; i < execs; i++ {
			if _, err := stmt.Execute(core.Bindings{"min": ralg.BindFloats(float64(i % 97))}); err != nil {
				fmt.Fprintln(os.Stderr, "execute error:", err)
				return
			}
		}
		perBind := time.Since(start) / execs
		start = time.Now()
		for i := 0; i < execs; i++ {
			q := fmt.Sprintf(`for $a in /site/closed_auctions/closed_auction
				where number($a/price) > %d return $a/price/text()`, i%97)
			if _, err := cold.Query(q); err != nil {
				fmt.Fprintln(os.Stderr, "query error:", err)
				return
			}
		}
		perSplice := time.Since(start) / execs
		fmt.Printf("\n-- parameterized: %d executions, fresh binding per call --\n", execs)
		fmt.Printf("bind+execute:          %10.3f ms/exec\n", perBind.Seconds()*1000)
		fmt.Printf("text-splice (cold):    %10.3f ms/exec\n", perSplice.Seconds()*1000)
		fmt.Printf("plan-reuse speedup:    %10.2fx\n", float64(perSplice)/float64(perBind))
	}
}

// table1 reproduces Table 1: elapsed seconds for Q1–Q20 over growing
// documents, for the relational engine (MXQ) and the naive comparator.
func table1(scales []float64) {
	fmt.Println("== Table 1: XMark query evaluation (elapsed time in seconds) ==")
	for _, f := range scales {
		cont := xmark.NewStoreContainer("auction.xml", f, *seedFlag)
		eng := engineFor(core.DefaultConfig(), cont)
		oracle := naive.New()
		oracle.LoadContainer("auction.xml", cont)
		fmt.Printf("\n-- %s (factor %g) --\n", mb(f), f)
		fmt.Printf("%-4s %10s %10s\n", "Q", "MXQ", "NAIVE")
		var sumM, sumN time.Duration
		for q := 1; q <= 20; q++ {
			query := xmark.Query(q)
			dm, okM := bestOf(func() error { _, err := eng.Query(query); return err })
			dn, okN := bestOf(func() error { _, err := oracle.Query(query); return err })
			sumM += dm
			sumN += dn
			fmt.Printf("Q%-3d %10s %10s\n", q, fmtTime(dm, okM), fmtTime(dn, okN))
		}
		fmt.Printf("%-4s %10s %10s\n", "sum", fmtTime(sumM, true), fmtTime(sumN, true))
	}
}

// fig12 reproduces Figure 12: the benefit of the loop-lifted staircase
// join, as speedup relative to the fully iterative configuration.
func fig12(scales []float64) {
	f := scales[len(scales)-1]
	fmt.Printf("\n== Figure 12: loop-lifted staircase join, speedup vs iterative (%s) ==\n", mb(f))
	cont := xmark.NewStoreContainer("auction.xml", f, *seedFlag)
	mkCfg := func(child, desc scj.Variant, nametest bool) core.Config {
		c := core.DefaultConfig()
		c.Compiler.ChildVariant = child
		c.Compiler.DescVariant = desc
		c.Compiler.NametestPushdown = nametest
		return c
	}
	configs := []struct {
		label string
		cfg   core.Config
	}{
		{"iter-child/iter-desc", mkCfg(scj.Iterative, scj.Iterative, false)},
		{"iter-child/ll-desc", mkCfg(scj.Iterative, scj.LoopLifted, false)},
		{"ll-child/iter-desc", mkCfg(scj.LoopLifted, scj.Iterative, false)},
		{"ll-child/ll-desc", mkCfg(scj.LoopLifted, scj.LoopLifted, false)},
		{"ll+nametest", mkCfg(scj.LoopLifted, scj.LoopLifted, true)},
	}
	engines := make([]*core.Engine, len(configs))
	for i, c := range configs {
		engines[i] = engineFor(c.cfg, cont)
	}
	fmt.Printf("%-4s", "Q")
	for _, c := range configs {
		fmt.Printf(" %22s", c.label)
	}
	fmt.Println()
	for q := 1; q <= 20; q++ {
		query := xmark.Query(q)
		base := time.Duration(0)
		fmt.Printf("Q%-3d", q)
		for i := range configs {
			d, ok := bestOf(func() error { _, err := engines[i].Query(query); return err })
			if i == 0 {
				base = d
			}
			if !ok {
				fmt.Printf(" %22s", "DNF")
			} else if i == 0 {
				fmt.Printf(" %19.3fs 1x", d.Seconds())
			} else {
				fmt.Printf(" %14.3fs %5.1fx", d.Seconds(), float64(base)/float64(d))
			}
		}
		fmt.Println()
	}
}

// fig13 reproduces Figure 13: the join queries Q8–Q12 with and without
// join recognition (Cartesian product vs theta-join).
func fig13(scales []float64) {
	f := scales[len(scales)-1]
	fmt.Printf("\n== Figure 13: XQuery join optimization (%s): cross product vs join ==\n", mb(f))
	cont := xmark.NewStoreContainer("auction.xml", f, *seedFlag)
	join := engineFor(core.DefaultConfig(), cont)
	crossCfg := core.DefaultConfig()
	crossCfg.Compiler.JoinRecognition = false
	cross := engineFor(crossCfg, cont)
	fmt.Printf("%-4s %12s %12s %8s\n", "Q", "join", "cross", "speedup")
	for q := 8; q <= 12; q++ {
		query := xmark.Query(q)
		dj, okJ := bestOf(func() error { _, err := join.Query(query); return err })
		dc, okC := bestOf(func() error { _, err := cross.Query(query); return err })
		ratio := "-"
		if okJ && okC {
			ratio = fmt.Sprintf("%.1fx", float64(dc)/float64(dj))
		}
		fmt.Printf("Q%-3d %12s %12s %8s\n", q, fmtTime(dj, okJ), fmtTime(dc, okC), ratio)
	}
}

// fig14 reproduces Figure 14: order-preserving vs non-order-preserving
// plans (sort elimination, refine sorts, streaming rank).
func fig14(scales []float64) {
	f := scales[len(scales)-1]
	fmt.Printf("\n== Figure 14: sort reduction (%s): order-aware vs baseline ==\n", mb(f))
	cont := xmark.NewStoreContainer("auction.xml", f, *seedFlag)
	ordered := engineFor(core.DefaultConfig(), cont)
	noCfg := core.DefaultConfig()
	noCfg.OrderAware = false
	unordered := engineFor(noCfg, cont)
	fmt.Printf("%-4s %12s %12s %8s\n", "Q", "order-aware", "baseline", "speedup")
	var sumA, sumB time.Duration
	for q := 1; q <= 20; q++ {
		query := xmark.Query(q)
		da, okA := bestOf(func() error { _, err := ordered.Query(query); return err })
		db, okB := bestOf(func() error { _, err := unordered.Query(query); return err })
		sumA += da
		sumB += db
		ratio := "-"
		if okA && okB {
			ratio = fmt.Sprintf("%.2fx", float64(db)/float64(da))
		}
		fmt.Printf("Q%-3d %12s %12s %8s\n", q, fmtTime(da, okA), fmtTime(db, okB), ratio)
	}
	fmt.Printf("%-4s %12s %12s %8.2fx\n", "sum", fmtTime(sumA, true), fmtTime(sumB, true),
		float64(sumB)/float64(sumA))
}

// fig15 reproduces Figure 15: execution times normalized to the smallest
// document (linear scaling shows as the size ratio).
func fig15(scales []float64) {
	fmt.Printf("\n== Figure 15: scalability (normalized to %s) ==\n", mb(scales[0]))
	engines := make([]*core.Engine, len(scales))
	for i, f := range scales {
		engines[i] = engineFor(core.DefaultConfig(), xmark.NewStoreContainer("auction.xml", f, *seedFlag))
	}
	fmt.Printf("%-4s", "Q")
	for _, f := range scales {
		fmt.Printf(" %14s", mb(f))
	}
	fmt.Println("   (entries: seconds, xbase)")
	for q := 1; q <= 20; q++ {
		query := xmark.Query(q)
		var base time.Duration
		fmt.Printf("Q%-3d", q)
		for i := range scales {
			d, ok := bestOf(func() error { _, err := engines[i].Query(query); return err })
			if i == 0 {
				base = d
			}
			if !ok {
				fmt.Printf(" %14s", "DNF")
			} else {
				fmt.Printf(" %7.3fs %4.0fx", d.Seconds(), float64(d)/float64(base))
			}
		}
		fmt.Println()
	}
}

// fig16 reproduces Figure 16: per-query times normalized to MXQ = 1.
func fig16(scales []float64) {
	fmt.Println("\n== Figure 16: evaluation time relative to MXQ (M = 1.0) ==")
	for _, f := range scales {
		cont := xmark.NewStoreContainer("auction.xml", f, *seedFlag)
		eng := engineFor(core.DefaultConfig(), cont)
		oracle := naive.New()
		oracle.LoadContainer("auction.xml", cont)
		fmt.Printf("\n-- %s --\n%-4s %8s %10s\n", mb(f), "Q", "M", "NAIVE")
		for q := 1; q <= 20; q++ {
			query := xmark.Query(q)
			dm, okM := bestOf(func() error { _, err := eng.Query(query); return err })
			dn, okN := bestOf(func() error { _, err := oracle.Query(query); return err })
			rel := "DNF"
			if okM && okN {
				rel = fmt.Sprintf("%.1f", float64(dn)/float64(dm))
			}
			_ = okM
			fmt.Printf("Q%-3d %8.1f %10s\n", q, 1.0, rel)
		}
	}
}

// shred reproduces the §6 shredding/serialization experiment: document
// loading and full-document copy serialization at growing sizes.
func shred(scales []float64) {
	fmt.Println("\n== Shredding and serialization ==")
	fmt.Printf("%-10s %12s %12s %12s %10s\n", "size", "gen+shred", "serialize", "tuples", "MB")
	for _, f := range scales {
		start := time.Now()
		cont := xmark.NewStoreContainer("auction.xml", f, *seedFlag)
		shredTime := time.Since(start)
		var sb strings.Builder
		start = time.Now()
		if err := store.Serialize(&sb, cont, 0); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		serTime := time.Since(start)
		fmt.Printf("%-10s %11.3fs %11.3fs %12d %10.1f\n",
			mb(f), shredTime.Seconds(), serTime.Seconds(), cont.Len(),
			float64(sb.Len())/1e6)
	}
}

// plans reproduces the §4.1 plan statistics: "86 relational algebra
// operators on average, of which 9 are joins".
func plans(scales []float64) {
	fmt.Println("\n== Plan statistics (§4.1) ==")
	cont := xmark.NewStoreContainer("auction.xml", scales[0], *seedFlag)
	eng := engineFor(core.DefaultConfig(), cont)
	fmt.Printf("%-4s %6s %6s\n", "Q", "ops", "joins")
	totOps, totJoins := 0, 0
	for q := 1; q <= 20; q++ {
		ops, joins, err := eng.PlanStats(xmark.Query(q))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		totOps += ops
		totJoins += joins
		fmt.Printf("Q%-3d %6d %6d\n", q, ops, joins)
	}
	fmt.Printf("avg  %6.1f %6.1f   (paper: 86 operators, 9 joins)\n",
		float64(totOps)/20, float64(totJoins)/20)
}

// updates benchmarks the §5.2 paged update scheme against the naive
// alternative (full renumbering via re-shred).
func updates(scales []float64) {
	f := scales[len(scales)-1]
	fmt.Printf("\n== Updates (§5.2): paged inserts vs full renumbering (%s) ==\n", mb(f))
	cont := xmark.NewStoreContainer("auction.xml", f, *seedFlag)
	d := pages.FromContainer(cont, 0, 0.75)
	// locate an element to grow
	v := d.View("v")
	var target int32 = -1
	for p := int32(0); p < int32(v.Len()); p++ {
		if v.Kind[p] == store.KindElem && v.NameOf(p) == "open_auctions" {
			target = p
			break
		}
	}
	const inserts = 100
	start := time.Now()
	for i := 0; i < inserts; i++ {
		if _, err := d.InsertFirst(target, "note", "updated"); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
	}
	paged := time.Since(start)
	// naive alternative: rebuild the container once per insert
	start = time.Now()
	rebuilds := 3
	for i := 0; i < rebuilds; i++ {
		var sb strings.Builder
		store.Serialize(&sb, cont, 0)
		if _, err := store.Shred("x", strings.NewReader(sb.String()), false); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
	}
	rebuild := time.Since(start) / time.Duration(rebuilds)
	fmt.Printf("paged insert-first: %8.3f ms/op (pages appended: %d, tuples moved: %d)\n",
		paged.Seconds()*1000/inserts, d.PagesAppended, d.TuplesMoved)
	fmt.Printf("full renumbering:   %8.3f ms/op (serialize + re-shred)\n", rebuild.Seconds()*1000)
	fmt.Printf("speedup:            %8.1fx\n", float64(rebuild)/(float64(paged)/inserts))
}
