package main

import (
	"fmt"
	"os"
	"time"

	"mxq/internal/core"
	"mxq/internal/xmark"
	"mxq/internal/xqerr"
)

// memExp measures the cost of per-query memory governance: the full
// Q1–Q20 mix runs once on an ungoverned engine and once under a
// generous budget (every charge flows through the shared MemBudget,
// no query is aborted), so the delta is pure accounting overhead —
// the number the budget design keeps under a few percent by amortizing
// checks over the cancellation poll sites. A third section tightens
// the budget until queries are rejected, demonstrating that aborts are
// typed, prompt, and leave the engine fully usable.
func memExp(scales []float64) {
	f := scales[len(scales)-1]
	cont := xmark.NewStoreContainer("auction.xml", f, *seedFlag)

	mkEngine := func(limit int64) *core.Engine {
		cfg := core.DefaultConfig()
		if *parallelFlag {
			cfg = core.ParallelConfig()
			cfg.Workers = *workersFlag
		}
		cfg.MemLimit = limit
		e := core.New(cfg)
		e.LoadContainer(cont.Name, cont)
		return e
	}
	plain := mkEngine(0)
	governed := mkEngine(1 << 30) // generous: nothing aborts, everything is accounted

	fmt.Printf("\n== Memory governance overhead (%s): Q1-Q20, best of %d ==\n", mb(f), *runsFlag)

	want := make([]string, 20)
	for i := range want {
		w, err := plain.QueryString(xmark.Query(i + 1))
		if err != nil {
			fmt.Fprintf(os.Stderr, "mem: Q%d: %v\n", i+1, err)
			return
		}
		want[i] = w
	}

	// Interleave the modes per query so cache state treats them alike.
	mixTime := func(e *core.Engine, check bool) (time.Duration, bool) {
		var total time.Duration
		for i := range want {
			q := xmark.Query(i + 1)
			d, ok := bestOf(func() error {
				got, err := e.QueryString(q)
				if err != nil {
					return err
				}
				if check && got != want[i] {
					return fmt.Errorf("Q%d differs from the ungoverned run", i+1)
				}
				return nil
			})
			if !ok {
				return 0, false
			}
			total += d
		}
		return total, true
	}

	base, ok := mixTime(plain, false)
	if !ok {
		return
	}
	gov, ok := mixTime(governed, true)
	if !ok {
		return
	}
	overhead := 100 * (gov.Seconds() - base.Seconds()) / base.Seconds()
	fmt.Printf("%-12s %10s\n", "ungoverned", base.Round(time.Microsecond))
	fmt.Printf("%-12s %10s   overhead %+.2f%%  (budget 1GiB, all 20 byte-identical)\n",
		"budgeted", gov.Round(time.Microsecond), overhead)

	// -- governance in action: a budget small enough to reject work --
	tight := mkEngine(256 << 10)
	rejected := 0
	for i := 0; i < 20; i++ {
		_, err := tight.QueryString(xmark.Query(i + 1))
		if err == nil {
			continue
		}
		if !xqerr.IsResourceLimit(err) {
			fmt.Fprintf(os.Stderr, "mem: Q%d failed untyped under budget: %v\n", i+1, err)
			return
		}
		rejected++
	}
	got, err := tight.QueryString(`1+1`)
	usable := err == nil && got == "2"
	fmt.Printf("%-12s %d of 20 queries aborted with %s; engine usable after: %v\n",
		"256KiB cap", rejected, xqerr.CodeResourceLimit, usable)
}
