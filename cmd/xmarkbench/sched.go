package main

import (
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"mxq/internal/core"
	"mxq/internal/sched"
	"mxq/internal/xmark"
)

// schedExp measures the global query scheduler under oversubscription:
// 4× more concurrent clients than execution slots hammer one engine
// with the cheap XMark mix, once with free-spawning parallel execution
// (every query builds its own GOMAXPROCS pool) and once under the
// scheduler (shared slot pool, cost-derived budgets, queued
// admission). Every result is compared byte-for-byte against serial
// execution, so the run doubles as a differential check of the
// scheduled path; the scheduler run also reports the pool counters —
// the headline number is the worker-goroutine high-water mark, bounded
// by the pool size instead of clients×workers.
func schedExp(scales []float64) {
	f := scales[len(scales)-1]
	workers := *workersFlag
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	maxConcurrent := workers
	clients := 4 * maxConcurrent // the oversubscription axis
	const rounds = 5

	cont := xmark.NewStoreContainer("auction.xml", f, *seedFlag)
	serial := core.New(core.DefaultConfig())
	serial.LoadContainer(cont.Name, cont)

	parCfg := core.ParallelConfig()
	parCfg.Workers = workers
	free := core.New(parCfg)
	free.LoadContainer(cont.Name, cont)

	s := sched.New(sched.Config{
		Workers:       workers,
		MaxConcurrent: maxConcurrent,
		MaxQueue:      4 * clients, // nothing sheds; the run measures queueing
	})
	schedCfg := core.ParallelConfig()
	schedCfg.Workers = workers
	schedCfg.Scheduler = s
	scheduled := core.New(schedCfg)
	scheduled.LoadContainer(cont.Name, cont)

	fmt.Printf("\n== Scheduler (%s): %d clients over %d execution slots, %d-worker pool ==\n",
		mb(f), clients, maxConcurrent, workers)

	want := make([]string, len(serveMix))
	for i, q := range serveMix {
		w, err := serial.QueryString(xmark.Query(q))
		if err != nil {
			fmt.Fprintf(os.Stderr, "sched: serial Q%d: %v\n", q, err)
			return
		}
		want[i] = w
	}

	storm := func(eng *core.Engine) (qps float64, lat []time.Duration, errs int) {
		stmts := make([]*core.Prepared, len(serveMix))
		for i, q := range serveMix {
			p, err := eng.Prepare(xmark.Query(q))
			if err != nil {
				fmt.Fprintf(os.Stderr, "sched: prepare Q%d: %v\n", q, err)
				return 0, nil, 1
			}
			stmts[i] = p
		}
		lats := make([][]time.Duration, clients)
		var bad sync.Map
		var wg sync.WaitGroup
		start := time.Now()
		for cl := 0; cl < clients; cl++ {
			wg.Add(1)
			go func(cl int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					for k := range serveMix {
						i := (cl + r + k) % len(serveMix)
						t0 := time.Now()
						res, err := stmts[i].Execute(nil)
						lats[cl] = append(lats[cl], time.Since(t0))
						if err != nil {
							bad.Store(fmt.Sprintf("Q%d: %v", serveMix[i], err), true)
							continue
						}
						if res.String() != want[i] {
							bad.Store(fmt.Sprintf("Q%d: result differs from serial", serveMix[i]), true)
						}
					}
				}
			}(cl)
		}
		wg.Wait()
		wall := time.Since(start)
		for _, l := range lats {
			lat = append(lat, l...)
		}
		bad.Range(func(k, _ any) bool {
			fmt.Fprintf(os.Stderr, "sched: %s\n", k)
			errs++
			return true
		})
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return float64(len(lat)) / wall.Seconds(), lat, errs
	}

	total := clients * rounds * len(serveMix)
	errsTotal := 0
	for _, mode := range []struct {
		label string
		eng   *core.Engine
	}{{"free-spawning", free}, {"scheduled", scheduled}} {
		qps, lat, errs := storm(mode.eng)
		errsTotal += errs
		if len(lat) == 0 {
			return
		}
		fmt.Printf("%-14s %8.1f q/s   p50 %s  p95 %s  max %s\n",
			mode.label, qps,
			pctl(lat, 50).Round(time.Microsecond), pctl(lat, 95).Round(time.Microsecond),
			lat[len(lat)-1].Round(time.Microsecond))
	}
	st := s.Stats()
	fmt.Printf("\n-- scheduler counters --\n")
	fmt.Printf("admitted:          %d of %d executions (rejected %d, canceled %d)\n",
		st.Admitted, total, st.RejectedFull, st.CanceledWait)
	fmt.Printf("worker high-water: %d of %d pool slots (unscheduled bound: %d)\n",
		st.MaxSlotsInUse, st.Workers, clients*workers)
	if errsTotal == 0 {
		fmt.Printf("differential:      all %d scheduled executions byte-identical to serial\n", total)
	} else {
		fmt.Printf("differential:      %d FAILURES\n", errsTotal)
	}
}
