// Command mxqlint runs the project-specific static analyzers
// (internal/lint) over a source tree and exits non-zero when any fire.
//
// Usage:
//
//	mxqlint [dir]
//
// With no argument it lints the current directory tree. Diagnostics
// print one per line as file:line:col: [analyzer] message. The four
// analyzers — cancelcheck, waitcheck, xqerrcheck, adoptcheck — are
// documented in docs/static-analysis.md.
package main

import (
	"fmt"
	"os"

	"mxq/internal/lint"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	dirs, err := lint.Dirs(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mxqlint:", err)
		os.Exit(2)
	}
	findings := 0
	for _, dir := range dirs {
		p, err := lint.LoadDir(dir, false)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mxqlint:", err)
			os.Exit(2)
		}
		if p == nil {
			continue
		}
		for _, a := range lint.All() {
			for _, d := range a.Run(p) {
				fmt.Println(d)
				findings++
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "mxqlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
