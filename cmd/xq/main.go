// Command xq is an interactive XQuery runner over the MonetDB/XQuery
// reproduction engine.
//
// Usage:
//
//	xq -doc auction.xml 'for $p in /site/people/person return $p/name'
//	xq -xmark 0.01 'count(//item)'
//	echo 'count(//item)' | xq -xmark 0.01
//
// Queries whose prolog declares external variables take their values
// from repeatable -var flags, typed via an optional prefix (the
// default is string):
//
//	xq -xmark 0.01 -var min=int:40 -var tag=price \
//	  'declare variable $min external; declare variable $tag external;
//	   count(//*[local-name(.) = $tag][number(.) > $min])'
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"mxq"
)

// varBinding is one parsed -var flag: an external variable name and
// its typed value.
type varBinding struct {
	name string
	val  mxq.Value
}

// varFlags collects repeatable -var name=value flags. Values are typed
// with a prefix: int:, float:, bool: (anything else binds a string).
type varFlags []varBinding

func (v *varFlags) String() string {
	names := make([]string, len(*v))
	for i, b := range *v {
		names[i] = b.name
	}
	return strings.Join(names, ",")
}

func (v *varFlags) Set(s string) error {
	name, raw, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("-var wants name=value, got %q", s)
	}
	var val mxq.Value
	switch {
	case strings.HasPrefix(raw, "int:"):
		n, err := strconv.ParseInt(raw[len("int:"):], 10, 64)
		if err != nil {
			return fmt.Errorf("-var %s: %v", name, err)
		}
		val = mxq.Int(n)
	case strings.HasPrefix(raw, "float:"):
		f, err := strconv.ParseFloat(raw[len("float:"):], 64)
		if err != nil {
			return fmt.Errorf("-var %s: %v", name, err)
		}
		val = mxq.Float(f)
	case strings.HasPrefix(raw, "bool:"):
		b, err := strconv.ParseBool(raw[len("bool:"):])
		if err != nil {
			return fmt.Errorf("-var %s: %v", name, err)
		}
		val = mxq.Bool(b)
	default:
		val = mxq.String(raw)
	}
	*v = append(*v, varBinding{name: name, val: val})
	return nil
}

func main() {
	var (
		docPath  = flag.String("doc", "", "XML document to load as the context document")
		xmarkF   = flag.Float64("xmark", 0, "generate an XMark document at this scale factor instead of loading one")
		seed     = flag.Int64("seed", 42, "XMark generator seed")
		explain  = flag.Bool("explain", false, "print plan statistics instead of running the query")
		rewrites = flag.Bool("rewrite-coverage", false, "print which optimizer rewrite rules fired on the query instead of running it")
		noJoin   = flag.Bool("no-joinrec", false, "disable join recognition")
		noOrder  = flag.Bool("no-order", false, "disable the order-aware peephole optimizer")
		noLifted = flag.Bool("no-looplift", false, "use per-iteration staircase joins")
		parallel = flag.Bool("parallel", false, "parallel intra-query execution")
		workers  = flag.Int("workers", 0, "parallel worker goroutines (0 = GOMAXPROCS)")
		timing   = flag.Bool("time", false, "print evaluation time")
	)
	var vars varFlags
	flag.Var(&vars, "var", "bind an external variable: name=value, name=int:N, name=float:F, name=bool:B (repeatable)")
	flag.Parse()

	var opts []mxq.Option
	if *noJoin {
		opts = append(opts, mxq.WithJoinRecognition(false))
	}
	if *noOrder {
		opts = append(opts, mxq.WithOrderOptimizer(false))
	}
	if *noLifted {
		opts = append(opts, mxq.WithLoopLiftedSteps(false))
	}
	if *parallel {
		opts = append(opts, mxq.WithParallel(true))
	}
	if *workers > 0 {
		opts = append(opts, mxq.WithWorkers(*workers))
	}
	db := mxq.Open(opts...)

	switch {
	case *docPath != "":
		f, err := os.Open(*docPath)
		if err != nil {
			fatal(err)
		}
		err = db.LoadDocument(*docPath, f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	case *xmarkF > 0:
		db.LoadXMark("auction.xml", *xmarkF, *seed)
	default:
		fmt.Fprintln(os.Stderr, "xq: provide -doc FILE or -xmark FACTOR")
		os.Exit(2)
	}

	query := strings.Join(flag.Args(), " ")
	if strings.TrimSpace(query) == "" {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		query = string(data)
	}
	if strings.TrimSpace(query) == "" {
		fmt.Fprintln(os.Stderr, "xq: no query given")
		os.Exit(2)
	}

	if *rewrites {
		report, err := db.RewriteCoverage(query)
		if err != nil {
			fatal(err)
		}
		fmt.Print(report)
		return
	}
	if *explain {
		ops, joins, err := db.PlanStats(query)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("plan: %d relational algebra operators, %d joins\n", ops, joins)
		tree, err := db.ExplainPlan(query)
		if err != nil {
			fatal(err)
		}
		fmt.Print(tree)
		return
	}
	// the prepared path is the only query path: -var values bind the
	// query's external variables
	stmt, err := db.Prepare(query)
	if err != nil {
		fatal(err)
	}
	for _, b := range vars {
		stmt = stmt.Bind(b.name, b.val)
	}
	start := time.Now()
	res, err := stmt.Exec()
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	if err := res.SerializeXML(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Println()
	if *timing {
		fmt.Fprintf(os.Stderr, "%d items in %v\n", res.Len(), elapsed)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xq:", err)
	os.Exit(1)
}
