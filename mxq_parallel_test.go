package mxq

import (
	"sync"
	"testing"
)

const parallelTestDoc = `<site><regions><europe><item id="i0"><name>chair</name></item><item id="i1"><name>table</name></item></europe></regions><people><person id="p0"><name>Ada</name></person><person id="p1"><name>Bob</name></person></people></site>`

// One DB, many goroutines, parallel intra-query execution: the public
// API contract added by the parallel subsystem.
func TestConcurrentDBUse(t *testing.T) {
	db := Open(WithParallel(true), WithWorkers(4))
	if err := db.LoadDocumentString("site.xml", parallelTestDoc); err != nil {
		t.Fatal(err)
	}
	queries := map[string]string{
		`count(//item)`:                      "2",
		`/site/people/person[1]/name/text()`: "Ada",
		`for $p in //person return $p/@id`:   `id="p0"id="p1"`,
		`<n c="{count(//person)}"/>`:         `<n c="2"/>`,
		`count(//name)`:                      "4",
	}
	var wg sync.WaitGroup
	for q, want := range queries {
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(q, want string) {
				defer wg.Done()
				for i := 0; i < 10; i++ {
					got, err := db.QueryString(q)
					if err != nil {
						t.Errorf("%s: %v", q, err)
						return
					}
					if got != want {
						t.Errorf("%s: got %q, want %q", q, got, want)
						return
					}
				}
			}(q, want)
		}
	}
	wg.Wait()
}

// WithParallel must not change any result: spot-check against a serial DB.
func TestParallelOptionMatchesSerial(t *testing.T) {
	serial := Open()
	par := Open(WithParallel(true), WithWorkers(3))
	for _, db := range []*DB{serial, par} {
		if err := db.LoadDocumentString("site.xml", parallelTestDoc); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range []string{
		`//item/name/text()`,
		`for $p in //person order by $p/name/text() descending return $p/name/text()`,
		`count(//item[@id = "i1"])`,
	} {
		a, err := serial.QueryString(q)
		if err != nil {
			t.Fatalf("serial %s: %v", q, err)
		}
		b, err := par.QueryString(q)
		if err != nil {
			t.Fatalf("parallel %s: %v", q, err)
		}
		if a != b {
			t.Errorf("%s: serial %q != parallel %q", q, a, b)
		}
	}
}
