package mxq

import (
	"errors"
	"testing"
)

// End-to-end typed-error classification through the public API: a
// compile-time failure carries a static QueryError, a runtime failure
// a dynamic one, and foreign errors unwrap to nil.
func TestAsQueryErrorClassifiesEndToEnd(t *testing.T) {
	db := Open()
	if err := db.LoadDocumentString("books.xml", bookDoc); err != nil {
		t.Fatal(err)
	}

	_, err := db.Query(`$nope`)
	qe := AsQueryError(err)
	if qe == nil {
		t.Fatalf("compile error %v carries no QueryError", err)
	}
	if !qe.Static() {
		t.Errorf("undefined-variable error %s classified dynamic", qe.Code)
	}

	_, err = db.Query(`exactly-one(())`)
	qe = AsQueryError(err)
	if qe == nil {
		t.Fatalf("runtime error %v carries no QueryError", err)
	}
	if qe.Static() {
		t.Errorf("exactly-one cardinality error %s classified static", qe.Code)
	}

	if AsQueryError(errors.New("not a query error")) != nil {
		t.Error("AsQueryError invented a QueryError from a plain error")
	}
	if AsQueryError(nil) != nil {
		t.Error("AsQueryError(nil) != nil")
	}

	// errors.As through the exported alias works too — QueryError is
	// the same type every internal layer mints. (Pure parse errors are
	// the one untyped failure: they never reach the compiler, which is
	// where code minting starts.)
	var direct *QueryError
	if _, err := db.Query(`$nope`); !errors.As(err, &direct) {
		t.Errorf("compile error %v not errors.As-able to *QueryError", err)
	} else if !direct.Static() {
		t.Errorf("undefined-variable error %s classified dynamic", direct.Code)
	}
}
