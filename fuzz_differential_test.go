package mxq_test

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"mxq"
	"mxq/internal/naive"
	"mxq/internal/qgen"
	"mxq/internal/xmark"
)

// The randomized differential fuzzer: a seeded, deterministic query
// generator (internal/qgen) produces XPath/FLWOR queries over two single
// XMark documents and one sharded multi-document collection; every query
// runs through the relational engine serially, through the relational
// engine with forced parallel execution (4 workers, threshold 1 — every
// chunked code path engages even on small inputs), and through the naive
// DOM oracle. Serializations must be byte-identical; a query may error
// only if all three engines error.
//
// The short run is part of the regular `go test` suite (and the CI
// `make fuzz-short` target); the long run lives behind `-tags slow`.

// fuzzWorld is the document corpus shared by all engines of one run.
type fuzzWorld struct {
	oracle   *naive.Interp
	serial   *mxq.DB
	parallel *mxq.DB
	roots    []string
}

// buildFuzzWorld loads two distinct XMark documents (a.xml is the context
// document of absolute paths) plus an ndocs-document collection sharded
// across `shards` containers, mirrored into the naive oracle in the
// relational collection's document order.
func buildFuzzWorld(t testing.TB, factor float64, ndocs, shards int) *fuzzWorld {
	t.Helper()
	w := &fuzzWorld{
		serial:   mxq.Open(),
		parallel: mxq.Open(mxq.WithWorkers(4), mxq.WithParallelThreshold(1)),
		oracle:   naive.New(),
	}
	for _, db := range []*mxq.DB{w.serial, w.parallel} {
		db.LoadXMark("a.xml", factor, 1)
		db.LoadXMark("b.xml", factor, 2)
	}
	seeds := w.serial.LoadXMarkCollection("xm", ndocs, shards, factor, 100)
	w.parallel.LoadXMarkCollection("xm", ndocs, shards, factor, 100)

	w.oracle.LoadDOM("a.xml", xmark.NewDOM(factor, 1, w.oracle.OrdCounter()))
	w.oracle.LoadDOM("b.xml", xmark.NewDOM(factor, 2, w.oracle.OrdCounter()))
	order, ok := w.serial.CollectionDocs("xm")
	if !ok {
		t.Fatal("collection xm not registered")
	}
	if po, _ := w.parallel.CollectionDocs("xm"); fmt.Sprint(po) != fmt.Sprint(order) {
		t.Fatalf("serial and parallel engines disagree on collection order: %v vs %v", order, po)
	}
	for _, d := range order {
		w.oracle.AddCollectionDOM("xm", xmark.NewDOM(factor, seeds[d], w.oracle.OrdCounter()))
	}
	w.roots = []string{
		"/site",
		`doc("b.xml")/site`,
		`collection("xm")/site`,
		`collection("xm")`,
	}
	return w
}

// runDifferentialFuzz generates n queries from the given seed and
// cross-checks the three engines on each.
func runDifferentialFuzz(t *testing.T, w *fuzzWorld, seed int64, n int) {
	g := qgen.New(seed, w.roots)
	agreedErrs := 0
	for i := 0; i < n; i++ {
		q := g.Query()
		want, errO := w.oracle.QueryString(q)
		gotS, errS := w.serial.QueryString(q)
		gotP, errP := w.parallel.QueryString(q)
		nerr := 0
		for _, err := range []error{errO, errS, errP} {
			if err != nil {
				nerr++
			}
		}
		switch {
		case nerr == 3:
			agreedErrs++ // all engines reject the query: agreement
		case nerr != 0:
			t.Fatalf("query %d %q: engines disagree on erroring:\n oracle: %v\n serial: %v\n parallel: %v",
				i, q, errO, errS, errP)
		case gotS != want:
			t.Fatalf("query %d %q: serial mismatch:\n got  %q\n want %q", i, q, gotS, want)
		case gotP != want:
			t.Fatalf("query %d %q: parallel mismatch:\n got  %q\n want %q", i, q, gotP, want)
		}
	}
	t.Logf("%d queries, %d with agreed errors, 0 mismatches", n, agreedErrs)
	if agreedErrs > n/5 {
		t.Errorf("%d/%d queries errored — generator drifted out of the supported dialect", agreedErrs, n)
	}
}

// TestDifferentialFuzzShort is the seeded short run wired into the
// regular test suite: 500 generated queries, zero mismatches. The
// default seed is fixed for reproducibility; MXQ_FUZZ_SEED overrides it
// so repeated CI invocations (`make fuzz-short`) explore fresh query
// streams instead of replaying the in-suite one.
func TestDifferentialFuzzShort(t *testing.T) {
	seed := int64(20260729)
	if s := os.Getenv("MXQ_FUZZ_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("MXQ_FUZZ_SEED=%q: %v", s, err)
		}
		seed = v
	}
	w := buildFuzzWorld(t, 0.001, 6, 3)
	runDifferentialFuzz(t, w, seed, 500)
}
