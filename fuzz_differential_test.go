package mxq_test

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"mxq"
	"mxq/internal/naive"
	"mxq/internal/qgen"
	"mxq/internal/ralg"
	"mxq/internal/xmark"
	"mxq/internal/xqt"
)

// The randomized differential fuzzer: a seeded, deterministic query
// generator (internal/qgen) produces XPath/FLWOR queries over two single
// XMark documents and one sharded multi-document collection; every query
// runs through the relational engine serially, through the relational
// engine with forced parallel execution (4 workers, threshold 1 — every
// chunked code path engages even on small inputs), and through the naive
// DOM oracle. Serializations must be byte-identical; a query may error
// only if all three engines error.
//
// The short run is part of the regular `go test` suite (and the CI
// `make fuzz-short` target); the long run lives behind `-tags slow`.

// fuzzWorld is the document corpus shared by all engines of one run.
type fuzzWorld struct {
	oracle   *naive.Interp
	serial   *mxq.DB
	parallel *mxq.DB
	roots    []string
}

// buildFuzzWorld loads two distinct XMark documents (a.xml is the context
// document of absolute paths) plus an ndocs-document collection sharded
// across `shards` containers, mirrored into the naive oracle in the
// relational collection's document order.
func buildFuzzWorld(t testing.TB, factor float64, ndocs, shards int) *fuzzWorld {
	t.Helper()
	w := &fuzzWorld{
		serial:   mxq.Open(mxq.WithVerifyPlans(true)),
		parallel: mxq.Open(mxq.WithVerifyPlans(true), mxq.WithWorkers(4), mxq.WithParallelThreshold(1)),
		oracle:   naive.New(),
	}
	for _, db := range []*mxq.DB{w.serial, w.parallel} {
		db.LoadXMark("a.xml", factor, 1)
		db.LoadXMark("b.xml", factor, 2)
	}
	seeds := w.serial.LoadXMarkCollection("xm", ndocs, shards, factor, 100)
	w.parallel.LoadXMarkCollection("xm", ndocs, shards, factor, 100)

	w.oracle.LoadDOM("a.xml", xmark.NewDOM(factor, 1, w.oracle.OrdCounter()))
	w.oracle.LoadDOM("b.xml", xmark.NewDOM(factor, 2, w.oracle.OrdCounter()))
	order, ok := w.serial.CollectionDocs("xm")
	if !ok {
		t.Fatal("collection xm not registered")
	}
	if po, _ := w.parallel.CollectionDocs("xm"); fmt.Sprint(po) != fmt.Sprint(order) {
		t.Fatalf("serial and parallel engines disagree on collection order: %v vs %v", order, po)
	}
	for _, d := range order {
		w.oracle.AddCollectionDOM("xm", xmark.NewDOM(factor, seeds[d], w.oracle.OrdCounter()))
	}
	w.roots = []string{
		"/site",
		`doc("b.xml")/site`,
		`collection("xm")/site`,
		`collection("xm")`,
	}
	return w
}

// relBindings converts generated bindings to the relational engines'
// typed binding environment.
func relBindings(binds map[string][]xqt.Item) mxq.Bindings {
	if len(binds) == 0 {
		return nil
	}
	out := make(mxq.Bindings, len(binds))
	for name, items := range binds {
		out[name] = ralg.BindItems(items...)
	}
	return out
}

// naiveBindings converts generated bindings to the oracle's value
// sequences.
func naiveBindings(binds map[string][]xqt.Item) map[string][]naive.Val {
	if len(binds) == 0 {
		return nil
	}
	out := make(map[string][]naive.Val, len(binds))
	for name, items := range binds {
		vals := make([]naive.Val, len(items))
		for i, it := range items {
			vals[i] = naive.Val{Atom: it}
		}
		out[name] = vals
	}
	return out
}

// runDifferentialFuzz generates n queries from the given seed and
// cross-checks the three engines on each. Every third query is a
// parameterized query: its prolog declares 1–2 external variables and
// it executes through the prepared path (Prepare + Execute with typed
// bindings) on the relational engines versus QueryBound on the oracle.
func runDifferentialFuzz(t *testing.T, w *fuzzWorld, seed int64, n int) {
	g := qgen.New(seed, w.roots)
	agreedErrs := 0
	for i := 0; i < n; i++ {
		var q string
		var binds map[string][]xqt.Item
		if i%3 == 2 {
			bq := g.BoundQuery()
			q, binds = bq.Query, bq.Binds
		} else {
			q = g.Query()
		}
		rb := relBindings(binds)
		want, errO := w.oracle.QueryStringBound(q, naiveBindings(binds))
		gotS, errS := queryBound(w.serial, q, rb)
		gotP, errP := queryBound(w.parallel, q, rb)
		nerr := 0
		for _, err := range []error{errO, errS, errP} {
			if err != nil {
				nerr++
			}
		}
		switch {
		case nerr == 3:
			agreedErrs++ // all engines reject the query: agreement
		case nerr != 0:
			t.Fatalf("query %d %q (binds %v): engines disagree on erroring:\n oracle: %v\n serial: %v\n parallel: %v",
				i, q, binds, errO, errS, errP)
		case gotS != want:
			t.Fatalf("query %d %q (binds %v): serial mismatch:\n got  %q\n want %q", i, q, binds, gotS, want)
		case gotP != want:
			t.Fatalf("query %d %q (binds %v): parallel mismatch:\n got  %q\n want %q", i, q, binds, gotP, want)
		}
	}
	t.Logf("%d queries, %d with agreed errors, 0 mismatches", n, agreedErrs)
	if agreedErrs > n/5 {
		t.Errorf("%d/%d queries errored — generator drifted out of the supported dialect", agreedErrs, n)
	}
}

// queryBound runs one query through the prepared path of a relational
// engine.
func queryBound(db *mxq.DB, q string, b mxq.Bindings) (string, error) {
	p, err := db.Engine().Prepare(q)
	if err != nil {
		return "", err
	}
	return p.ExecuteString(b)
}

// TestDifferentialFuzzShort is the seeded short run wired into the
// regular test suite: 500 generated queries, zero mismatches. The
// default seed is fixed for reproducibility; MXQ_FUZZ_SEED overrides it
// so repeated CI invocations (`make fuzz-short`) explore fresh query
// streams instead of replaying the in-suite one.
func TestDifferentialFuzzShort(t *testing.T) {
	seed := int64(20260729)
	if s := os.Getenv("MXQ_FUZZ_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("MXQ_FUZZ_SEED=%q: %v", s, err)
		}
		seed = v
	}
	w := buildFuzzWorld(t, 0.001, 6, 3)
	runDifferentialFuzz(t, w, seed, 500)
}
