package mxq

// Benchmarks regenerating the paper's evaluation artifacts (§6) as
// testing.B benchmarks; one benchmark family per table/figure. The
// cmd/xmarkbench harness prints the corresponding tables at larger scales
// and with best-of-N methodology.
//
// Scale factors are kept small here so `go test -bench=.` terminates
// quickly; the shapes (who wins, by what factor) already show at these
// sizes.

import (
	"fmt"
	"io"
	"strings"
	"testing"

	"mxq/internal/core"
	"mxq/internal/naive"
	"mxq/internal/pages"
	"mxq/internal/ralg"
	"mxq/internal/sched"
	"mxq/internal/scj"
	"mxq/internal/store"
	"mxq/internal/xmark"
)

const (
	benchFactor = 0.005
	benchSeed   = 42
)

var (
	benchCont  *store.Container
	benchConts = map[float64]*store.Container{}
)

func contFor(f float64) *store.Container {
	if c, ok := benchConts[f]; ok {
		return c
	}
	c := xmark.NewStoreContainer("auction.xml", f, benchSeed)
	benchConts[f] = c
	return c
}

func engineWith(cfg core.Config, f float64) *core.Engine {
	e := core.New(cfg)
	e.LoadContainer("auction.xml", contFor(f))
	return e
}

func runQuery(b *testing.B, eng *core.Engine, q string) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1_MXQ regenerates the MXQ column of Table 1.
func BenchmarkTable1_MXQ(b *testing.B) {
	eng := engineWith(core.DefaultConfig(), benchFactor)
	for q := 1; q <= 20; q++ {
		b.Run(fmt.Sprintf("Q%02d", q), func(b *testing.B) {
			runQuery(b, eng, xmark.Query(q))
		})
	}
}

// BenchmarkTable1_Naive regenerates the comparator column of Table 1
// (the naive DOM interpreter stands in for eXist/Galax/X-Hive/BDB).
func BenchmarkTable1_Naive(b *testing.B) {
	oracle := naive.New()
	oracle.LoadContainer("auction.xml", contFor(benchFactor))
	for q := 1; q <= 20; q++ {
		b.Run(fmt.Sprintf("Q%02d", q), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := oracle.Query(xmark.Query(q)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig12_Staircase regenerates Figure 12: loop-lifted vs
// iterative staircase join (plus nametest pushdown) on the
// path-intensive queries.
func BenchmarkFig12_Staircase(b *testing.B) {
	mk := func(child, desc scj.Variant, nametest bool) core.Config {
		c := core.DefaultConfig()
		c.Compiler.ChildVariant = child
		c.Compiler.DescVariant = desc
		c.Compiler.NametestPushdown = nametest
		return c
	}
	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"iter_iter", mk(scj.Iterative, scj.Iterative, false)},
		{"iter_ll", mk(scj.Iterative, scj.LoopLifted, false)},
		{"ll_iter", mk(scj.LoopLifted, scj.Iterative, false)},
		{"ll_ll", mk(scj.LoopLifted, scj.LoopLifted, false)},
		{"ll_nametest", mk(scj.LoopLifted, scj.LoopLifted, true)},
	}
	for _, c := range configs {
		eng := engineWith(c.cfg, benchFactor)
		for _, q := range []int{1, 2, 6, 7, 13, 14, 15, 19} {
			b.Run(fmt.Sprintf("%s/Q%02d", c.name, q), func(b *testing.B) {
				runQuery(b, eng, xmark.Query(q))
			})
		}
	}
}

// BenchmarkFig13_JoinRecognition regenerates Figure 13: the join queries
// Q8–Q12 with the theta-join plans vs the Cartesian-product plans.
func BenchmarkFig13_JoinRecognition(b *testing.B) {
	join := engineWith(core.DefaultConfig(), benchFactor)
	crossCfg := core.DefaultConfig()
	crossCfg.Compiler.JoinRecognition = false
	cross := engineWith(crossCfg, benchFactor)
	for q := 8; q <= 12; q++ {
		b.Run(fmt.Sprintf("join/Q%02d", q), func(b *testing.B) {
			runQuery(b, join, xmark.Query(q))
		})
		b.Run(fmt.Sprintf("cross/Q%02d", q), func(b *testing.B) {
			runQuery(b, cross, xmark.Query(q))
		})
	}
}

// BenchmarkFig14_SortReduction regenerates Figure 14: the order-aware
// peephole optimizer vs the non-order-preserving baseline.
func BenchmarkFig14_SortReduction(b *testing.B) {
	aware := engineWith(core.DefaultConfig(), benchFactor)
	noCfg := core.DefaultConfig()
	noCfg.OrderAware = false
	baseline := engineWith(noCfg, benchFactor)
	for _, q := range []int{1, 2, 3, 8, 10, 19, 20} {
		b.Run(fmt.Sprintf("aware/Q%02d", q), func(b *testing.B) {
			runQuery(b, aware, xmark.Query(q))
		})
		b.Run(fmt.Sprintf("baseline/Q%02d", q), func(b *testing.B) {
			runQuery(b, baseline, xmark.Query(q))
		})
	}
}

// BenchmarkFig15_Scalability regenerates Figure 15: selected queries
// across document sizes (linear scaling expected; Q11/Q12 quadratic).
func BenchmarkFig15_Scalability(b *testing.B) {
	for _, f := range []float64{0.002, 0.01, 0.05} {
		eng := engineWith(core.DefaultConfig(), f)
		for _, q := range []int{1, 6, 8, 11, 15, 20} {
			b.Run(fmt.Sprintf("f%g/Q%02d", f, q), func(b *testing.B) {
				runQuery(b, eng, xmark.Query(q))
			})
		}
	}
}

// BenchmarkPreparedVsCold measures the prepared-statement API: cold is
// parse+compile+optimize+execute per call (plan cache disabled), while
// prepared pays Prepare once and bind+execute per call. The delta is
// the amortized compilation cost the statement-centric API saves on
// the serving path (`make bench-smoke` runs this family once in CI).
func BenchmarkPreparedVsCold(b *testing.B) {
	coldCfg := core.DefaultConfig()
	coldCfg.PlanCache = false
	cold := engineWith(coldCfg, benchFactor)
	warm := engineWith(core.DefaultConfig(), benchFactor)
	for _, q := range []int{1, 2, 5, 8, 13, 17, 20} {
		b.Run(fmt.Sprintf("cold/Q%02d", q), func(b *testing.B) {
			runQuery(b, cold, xmark.Query(q))
		})
		b.Run(fmt.Sprintf("prepared/Q%02d", q), func(b *testing.B) {
			p, err := warm.Prepare(xmark.Query(q))
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := p.Execute(nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// a parameterized statement: bindings change per execution, the plan
	// does not
	const paramQ = `declare variable $min external;
		for $a in /site/closed_auctions/closed_auction
		where number($a/price) > $min return $a/price/text()`
	b.Run("prepared/bind_execute", func(b *testing.B) {
		p, err := warm.Prepare(paramQ)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			bind := core.Bindings{"min": ralg.BindFloats(float64(i % 100))}
			if _, err := p.Execute(bind); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold/bind_equivalent", func(b *testing.B) {
		// the unparameterized alternative: splice the value into the query
		// text, forcing a fresh compile per distinct value
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := fmt.Sprintf(`for $a in /site/closed_auctions/closed_auction
				where number($a/price) > %d return $a/price/text()`, i%100)
			if _, err := cold.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSchedOversubscribed measures the global query scheduler
// under 4× oversubscription: 4×GOMAXPROCS goroutines execute the same
// prepared statement against a parallel engine, once free-spawning
// (every execution builds its own worker set) and once under a shared
// scheduler (bounded slot pool, cost-derived budgets). The delta is
// the scheduling overhead; the point is that the scheduled run keeps
// live workers bounded by the pool size instead of clients×workers
// (`make bench-smoke` runs this family once in CI).
func BenchmarkSchedOversubscribed(b *testing.B) {
	run := func(b *testing.B, eng *core.Engine) {
		p, err := eng.Prepare(xmark.Query(1))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.SetParallelism(4) // 4× GOMAXPROCS concurrent executions
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := p.Execute(nil); err != nil {
					b.Error(err)
					return
				}
			}
		})
	}
	b.Run("free", func(b *testing.B) {
		run(b, engineWith(core.ParallelConfig(), benchFactor))
	})
	b.Run("scheduled", func(b *testing.B) {
		cfg := core.ParallelConfig()
		cfg.Scheduler = sched.New(sched.Config{})
		run(b, engineWith(cfg, benchFactor))
	})
}

// BenchmarkShred regenerates the §6 shredding experiment.
func BenchmarkShred(b *testing.B) {
	var xml strings.Builder
	if err := xmark.WriteXML(&xml, benchFactor, benchSeed); err != nil {
		b.Fatal(err)
	}
	data := xml.String()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.Shred("x.xml", strings.NewReader(data), false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSerialize regenerates the §6 serialization experiment (a full
// document copy written out again).
func BenchmarkSerialize(b *testing.B) {
	cont := contFor(benchFactor)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := store.Serialize(io.Discard, cont, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUpdates regenerates the §5.2 ablation: paged insert-first vs
// rebuilding the document (the O(N) renumbering alternative).
func BenchmarkUpdates(b *testing.B) {
	b.Run("paged_insert", func(b *testing.B) {
		d := pages.FromContainer(contFor(benchFactor), 0, 0.75)
		v := d.View("v")
		var target int32
		for p := int32(0); p < int32(v.Len()); p++ {
			if v.Kind[p] == store.KindElem && v.NameOf(p) == "open_auctions" {
				target = p
				break
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := d.InsertFirst(target, "note", "x"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full_renumber", func(b *testing.B) {
		cont := contFor(benchFactor)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var sb strings.Builder
			if err := store.Serialize(&sb, cont, 0); err != nil {
				b.Fatal(err)
			}
			if _, err := store.Shred("x", strings.NewReader(sb.String()), false); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSkipping regenerates the Figures 1–3 micro-measurements: the
// staircase join touches |result| + |context| tuples regardless of the
// document size around the context (skipping).
func BenchmarkSkipping(b *testing.B) {
	bld := store.NewBuilder("big.xml")
	bld.StartDoc()
	bld.StartElem("root")
	for i := 0; i < 50000; i++ {
		bld.StartElem("filler")
		bld.Text("x")
		bld.End()
	}
	bld.StartElem("target")
	for i := 0; i < 10; i++ {
		bld.StartElem("inner")
		bld.End()
	}
	bld.End()
	for i := 0; i < 50000; i++ {
		bld.StartElem("filler")
		bld.Text("y")
		bld.End()
	}
	bld.End()
	bld.End()
	cont, err := bld.Done()
	if err != nil {
		b.Fatal(err)
	}
	var target int32
	for p := int32(0); p < int32(cont.Len()); p++ {
		if cont.Kind[p] == store.KindElem && cont.NameOf(p) == "target" {
			target = p
		}
	}
	ctx := scj.Pairs{Pre: []int32{target}, Iter: []int32{1}}
	b.Run("descendant_with_skipping", func(b *testing.B) {
		var st scj.Stats
		for i := 0; i < b.N; i++ {
			scj.Step(cont, ctx, scj.Descendant, scj.Test{Kind: scj.TestNode}, scj.LoopLifted, &st)
		}
		b.ReportMetric(float64(st.Touched)/float64(b.N), "tuples-touched/op")
	})
}
