package mxq

import (
	"strings"
	"testing"
)

const bookDoc = `<books><book year="1994"><title>TCP</title></book><book year="2000"><title>Web</title></book></books>`

func TestOpenAndQuery(t *testing.T) {
	db := Open()
	if err := db.LoadDocumentString("books.xml", bookDoc); err != nil {
		t.Fatal(err)
	}
	out, err := db.QueryString(`for $b in /books/book where $b/@year >= 2000 return $b/title/text()`)
	if err != nil {
		t.Fatal(err)
	}
	if out != "Web" {
		t.Errorf("got %q", out)
	}
	res, err := db.Query(`/books/book`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Errorf("Len = %d", res.Len())
	}
	var sb strings.Builder
	if err := res.SerializeXML(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "<title>TCP</title>") {
		t.Errorf("serialized: %s", sb.String())
	}
	if len(res.Items()) != 2 {
		t.Error("Items accessor")
	}
}

func TestOptionsTakeEffect(t *testing.T) {
	for _, opts := range [][]Option{
		nil,
		{WithJoinRecognition(false)},
		{WithOrderOptimizer(false)},
		{WithLoopLiftedSteps(false)},
		{WithNametestPushdown(false)},
	} {
		db := Open(opts...)
		if err := db.LoadDocumentString("books.xml", bookDoc); err != nil {
			t.Fatal(err)
		}
		out, err := db.QueryString(`count(//book)`)
		if err != nil {
			t.Fatal(err)
		}
		if out != "2" {
			t.Errorf("opts %v: count = %s", opts, out)
		}
	}
}

func TestLoadXMarkAndDocFunction(t *testing.T) {
	db := Open()
	db.LoadXMark("auction.xml", 0.001, 1)
	db.LoadXMark("second.xml", 0.001, 2)
	out, err := db.QueryString(`count(/site/people/person)`)
	if err != nil {
		t.Fatal(err)
	}
	if out == "0" {
		t.Error("no persons generated")
	}
	// explicit doc() access to the second document
	out2, err := db.QueryString(`count(doc("second.xml")/site/people/person)`)
	if err != nil {
		t.Fatal(err)
	}
	if out2 != out {
		t.Logf("counts differ across seeds (ok): %s vs %s", out, out2)
	}
	if _, _, err := db.PlanStats(`count(//item)`); err != nil {
		t.Fatal(err)
	}
}

func TestUpdatableAPI(t *testing.T) {
	u, err := LoadUpdatable("d.xml", strings.NewReader(`<a><b>x</b></a>`), 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	db := u.Snapshot()
	res, err := db.Query(`/a`)
	if err != nil || res.Len() != 1 {
		t.Fatalf("query: %v", err)
	}
	root := int32(res.Items()[0].I)
	pre, err := u.InsertFirst(root, "c", "new")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.InsertAfter(pre, "d", ""); err != nil {
		t.Fatal(err)
	}
	out, err := u.Snapshot().QueryString(`/a`)
	if err != nil {
		t.Fatal(err)
	}
	if want := `<a><c>new</c><d/><b>x</b></a>`; out != want {
		t.Errorf("after updates: %s, want %s", out, want)
	}
	if err := u.SetAttr(root, "k", "v"); err != nil {
		t.Fatal(err)
	}
	res, err = u.Snapshot().Query(`//b`)
	if err != nil || res.Len() != 1 {
		t.Fatal("b lookup")
	}
	if err := u.Delete(int32(res.Items()[0].I)); err != nil {
		t.Fatal(err)
	}
	out, err = u.Snapshot().QueryString(`/a`)
	if err != nil {
		t.Fatal(err)
	}
	if want := `<a k="v"><c>new</c><d/></a>`; out != want {
		t.Errorf("after delete: %s, want %s", out, want)
	}
	// replace the text node under c
	res, err = u.Snapshot().Query(`//c/text()`)
	if err != nil || res.Len() != 1 {
		t.Fatal("text lookup")
	}
	if err := u.ReplaceText(int32(res.Items()[0].I), "newer"); err != nil {
		t.Fatal(err)
	}
	out, _ = u.Snapshot().QueryString(`string(//c)`)
	if out != "newer" {
		t.Errorf("ReplaceText: %s", out)
	}
}

func TestQueryErrorsSurface(t *testing.T) {
	db := Open()
	if err := db.LoadDocumentString("books.xml", bookDoc); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(`for $x in`); err == nil {
		t.Error("syntax error not surfaced")
	}
	if _, err := db.Query(`$nope`); err == nil {
		t.Error("compile error not surfaced")
	}
	if _, err := db.Query(`exactly-one(())`); err == nil {
		t.Error("runtime error not surfaced")
	}
}
