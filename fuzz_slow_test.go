//go:build slow

package mxq_test

import (
	"fmt"
	"testing"
)

// TestDifferentialFuzzLong is the extended fuzz run behind `-tags slow`:
// a larger corpus (bigger documents, more collection documents and
// shards) and an order of magnitude more queries across several seeds.
func TestDifferentialFuzzLong(t *testing.T) {
	if testing.Short() {
		t.Skip("long fuzz run skipped in -short mode")
	}
	w := buildFuzzWorld(t, 0.003, 12, 4)
	for _, seed := range []int64{1, 7, 42, 20260729, 987654321} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runDifferentialFuzz(t, w, seed, 1500)
		})
	}
}
