package mxq_test

import (
	"fmt"
	"sync"
	"testing"

	"mxq"
	"mxq/internal/naive"
	"mxq/internal/xmark"
	"mxq/internal/xqt"
)

// TestPreparedHundredBindingsDifferential is the acceptance check of
// the prepared-query tentpole: a query with an external variable is
// compiled ONCE via Prepare, then executed with 100 distinct bindings;
// every execution must be byte-identical to the naive oracle
// evaluating the same query with the same binding from scratch.
func TestPreparedHundredBindingsDifferential(t *testing.T) {
	const factor = 0.003
	db := mxq.Open()
	db.LoadXMark("auction.xml", factor, 7)
	oracle := naive.New()
	oracle.LoadDOM("auction.xml", xmark.NewDOM(factor, 7, oracle.OrdCounter()))

	q := `declare variable $min external;
	      for $a in /site/closed_auctions/closed_auction
	      where number($a/price) > $min
	      return <hit p="{$a/price/text()}">{count($a/annotation)}</hit>`
	stmt, err := db.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		min := float64(i) * 2.5
		got, err := stmt.Bind("min", mxq.Float(min)).ExecString()
		if err != nil {
			t.Fatalf("binding %d: %v", i, err)
		}
		want, err := oracle.QueryStringBound(q, map[string][]naive.Val{
			"min": {{Atom: xqt.Double(min)}},
		})
		if err != nil {
			t.Fatalf("oracle binding %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("binding %d (min=%g): relational %q != oracle %q", i, min, got, want)
		}
	}
}

// TestStmtConcurrentBinders runs one prepared statement from 8+
// goroutines, each chaining its own Bind — the immutable-handle
// contract of the public API (race-clean under `go test -race`).
func TestStmtConcurrentBinders(t *testing.T) {
	db := mxq.Open(mxq.WithParallel(true))
	db.LoadXMark("auction.xml", 0.002, 3)
	stmt, err := db.Prepare(`declare variable $k external;
		declare variable $tag external := "person";
		<out k="{$k}">{count(/site/people/person) + $k}</out>`)
	if err != nil {
		t.Fatal(err)
	}
	base, err := db.Query(`count(/site/people/person)`)
	if err != nil {
		t.Fatal(err)
	}
	n := base.Items()[0].I
	const goroutines = 10
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			bound := stmt.Bind("k", mxq.Int(int64(g)))
			for i := 0; i < 25; i++ {
				got, err := bound.ExecString()
				if err != nil {
					errs <- err
					return
				}
				want := fmt.Sprintf(`<out k="%d">%d</out>`, g, n+int64(g))
				if got != want {
					errs <- fmt.Errorf("goroutine %d: got %q, want %q", g, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestStmtVarsAndValues covers the introspection and value surface of
// the public API.
func TestStmtVarsAndValues(t *testing.T) {
	db := mxq.Open()
	if err := db.LoadDocumentString("d.xml", `<d><v>1</v><v>2</v></d>`); err != nil {
		t.Fatal(err)
	}
	stmt, err := db.Prepare(`declare variable $a external;
		declare variable $b external := 1;
		declare variable $c := 2;
		sum(($a, $b, $c))`)
	if err != nil {
		t.Fatal(err)
	}
	vars := stmt.Vars()
	if len(vars) != 2 || vars[0].Name != "a" || !vars[0].Required || vars[1].Name != "b" || vars[1].Required || !vars[1].Singleton {
		t.Errorf("Vars() = %+v, want required $a and optional singleton $b", vars)
	}
	// Sequence of mixed typed values
	got, err := stmt.Bind("a", mxq.Sequence(mxq.Int(10), mxq.Float(0.5))).ExecString()
	if err != nil {
		t.Fatal(err)
	}
	if got != "13.5" {
		t.Errorf("sum with sequence binding = %q, want 13.5", got)
	}
	if v := mxq.Strings("x", "y", "z"); v.Len() != 3 {
		t.Errorf("Strings value Len = %d, want 3", v.Len())
	}
	// node sequence binding via Items
	res, err := db.Query(`/d/v`)
	if err != nil {
		t.Fatal(err)
	}
	stmt2, err := db.Prepare(`declare variable $nodes external; sum(for $n in $nodes return number($n))`)
	if err != nil {
		t.Fatal(err)
	}
	got, err = stmt2.Bind("nodes", mxq.Items(res.Items()...)).ExecString()
	if err != nil {
		t.Fatal(err)
	}
	if got != "3" {
		t.Errorf("node-sequence binding sum = %q, want 3", got)
	}
}
