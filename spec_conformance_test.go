package mxq_test

import (
	"strings"
	"testing"

	"mxq"
	"mxq/internal/naive"
	"mxq/internal/xqt"
)

// The spec-conformance suite checks XPath/XQuery function semantics
// against expected values hard-coded from the spec — deliberately NOT
// differentially: the relational engine and the naive DOM interpreter
// historically shared identical spec bugs (round half-away-from-zero,
// byte-counted string-length, Go-spelled infinities), which a
// differential oracle is structurally blind to. Every case runs against
// both engines independently.

const specDoc = `<root><a><ns:child xmlns:ns="urn:x">h&#233;llo</ns:child></a><b><plain>text</plain></b></root>`

// specCases hold (query, expected serialization). Expected values come
// from the XPath 2.0 / XQuery 1.0 function specs, not from either
// engine.
var specCases = []struct {
	name  string
	query string
	want  string
}{
	// fn:round — halves round toward positive infinity (XPath F&O 6.4.4:
	// round(-2.5) is -2, NOT -3).
	{"round-positive-half", `round(2.5)`, "3"},
	{"round-negative-half", `round(-2.5)`, "-2"},
	{"round-negative-below-half", `round(-2.51)`, "-3"},
	{"round-negative-above-half", `round(-2.4999)`, "-2"},
	{"round-positive", `round(7.2)`, "7"},
	{"round-integer", `round(5)`, "5"},
	{"round-negative-int-half", `round(-7.5)`, "-7"},

	// fn:floor / fn:ceiling (F&O 6.4.1, 6.4.2).
	{"floor-negative", `floor(-1.5)`, "-2"},
	{"floor-positive", `floor(1.5)`, "1"},
	{"ceiling-negative", `ceiling(-1.5)`, "-1"},
	{"ceiling-positive", `ceiling(1.5)`, "2"},

	// fn:string-length counts characters, not bytes (F&O 7.4.4):
	// "héllo" is 5 characters (6 UTF-8 bytes).
	{"string-length-ascii", `string-length("abcd")`, "4"},
	{"string-length-multibyte", `string-length("héllo")`, "5"},
	{"string-length-empty", `string-length("")`, "0"},
	{"string-length-node", `string-length(string(/root/a/*))`, "5"},

	// xs:double serialization of the special values (XPath casting to
	// xs:string): INF / -INF / NaN, not Go's +Inf spellings.
	{"serialize-inf", `string(2 div 0)`, "INF"},
	{"serialize-neg-inf", `string(-2 div 0)`, "-INF"},
	{"serialize-nan", `string(0 div 0)`, "NaN"},
	{"serialize-inf-value", `2 div 0`, "INF"},
	{"integral-double", `string(3.0)`, "3"},
	{"fractional-double", `string(2.5)`, "2.5"},

	// fn:local-name strips the namespace prefix (F&O 2.2); fn:name keeps
	// the qualified form.
	{"local-name-prefixed", `local-name(/root/a/*)`, "child"},
	{"local-name-plain", `local-name(/root/b/*)`, "plain"},
	{"local-name-empty", `local-name(())`, ""},

	// fn:distinct-values (F&O 15.1.6): numeric values compare across
	// numeric types (1 eq 1.0), while values no eq operator relates —
	// integer vs boolean, number vs string — stay distinct.
	{"distinct-int-double", `distinct-values((1, 1.0))`, "1"},
	{"distinct-int-bool", `distinct-values((1, true()))`, "1 true"},
	{"distinct-num-string", `distinct-values((1, "1"))`, "1 1"},
	{"distinct-strings", `distinct-values(("a", "b", "a"))`, "a b"},
	{"distinct-order", `distinct-values((2, 1, 2.0, 1.0, 3))`, "2 1 3"},

	// arithmetic promotion sanity around the special values
	{"nan-never-equal", `(0 div 0) = (0 div 0)`, "false"},
	{"inf-compares", `(1 div 0) > 1e300`, "true"},
}

func TestSpecConformanceRelational(t *testing.T) {
	db := mxq.Open()
	if err := db.LoadDocumentString("spec.xml", specDoc); err != nil {
		t.Fatal(err)
	}
	for _, c := range specCases {
		got, err := db.QueryString(c.query)
		if err != nil {
			t.Errorf("%s: %s: %v", c.name, c.query, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s: %s = %q, want %q", c.name, c.query, got, c.want)
		}
	}
}

// TestSpecConformanceRelationalParallel runs the same suite through the
// parallel executor (forced workers, threshold 1) — the typed-vector
// kernels must produce spec-conformant output on the chunked paths too.
func TestSpecConformanceRelationalParallel(t *testing.T) {
	db := mxq.Open(mxq.WithWorkers(4))
	db.Engine() // ensure construction
	if err := db.LoadDocumentString("spec.xml", specDoc); err != nil {
		t.Fatal(err)
	}
	for _, c := range specCases {
		got, err := db.QueryString(c.query)
		if err != nil {
			t.Errorf("%s: %s: %v", c.name, c.query, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s: %s = %q, want %q", c.name, c.query, got, c.want)
		}
	}
}

func TestSpecConformanceNaive(t *testing.T) {
	for _, c := range specCases {
		in := naive.New()
		if err := in.LoadXML("spec.xml", strings.NewReader(specDoc)); err != nil {
			t.Fatal(err)
		}
		got, err := in.QueryString(c.query)
		if err != nil {
			t.Errorf("%s: %s: %v", c.name, c.query, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s: %s = %q, want %q", c.name, c.query, got, c.want)
		}
	}
}

// --- fn:doc / fn:collection conformance ----------------------------------

// The doc/collection suite runs a fixed corpus — one context document,
// one doc()-addressable document, and a three-document collection
// sharded across two containers — through the serial relational engine,
// the forced-parallel relational engine, and the naive interpreter.
// Expected values (and expected error codes, marked by a "FODC" prefix in
// want) come from the XQuery 1.0 / F&O specs: FODC0002 for an
// unavailable document, FODC0004 for an unavailable collection.

// docCollCases builds the expected values from the engine's own
// document-order contract: order is what CollectionDocs reported for the
// loaded corpus (the shard-major contract itself is pinned by
// TestCollectionDocOrder against store.ShardOf).
func docCollCases(t *testing.T, order []string) []struct{ name, query, want string } {
	t.Helper()
	var inOrder strings.Builder
	for _, d := range order {
		inOrder.WriteString(strings.TrimSuffix(strings.TrimPrefix(d, "c"), ".xml"))
	}
	return []struct{ name, query, want string }{
		// fn:doc — F&O 15.5.4: absolute paths stay on the context
		// document; doc() addresses any loaded document; an unavailable
		// document raises FODC0002.
		{"doc-other", `doc("other.xml")/r/v/text()`, "9"},
		{"doc-context-untouched", `string(/root/b/*)`, "text"},
		{"doc-unknown", `doc("nope.xml")`, "FODC0002"},
		{"doc-folded-arg", `doc(concat("other", ".xml"))/r/v/text()`, "9"},
		// xs:string? argument: a statically empty sequence yields (); a
		// multi-item sequence is the XPTY0004 type error
		{"doc-empty-arg", `count(doc(()))`, "0"},
		{"collection-empty-arg", `count(collection(()))`, "0"},
		{"doc-multi-arg", `doc(("other.xml", "spec.xml"))`, "XPTY0004"},
		{"collection-multi-arg", `collection(("col", "col"))`, "XPTY0004"},
		// fn:collection — F&O 15.5.6: enumerates the corpus in a stable
		// document order; an unavailable collection raises FODC0004.
		{"collection-count", `count(collection("col"))`, "3"},
		{"collection-unknown", `collection("nope")`, "FODC0004"},
		{"collection-doc-order", `collection("col")/r/v/text()`, inOrder.String()},
		{"collection-in-flwor", `for $d in collection("col") where number($d/r/v) > 1 return <v>{$d/r/v/text()}</v>`,
			flworWant(order)},
		{"collection-desc", `count(collection("col")//v)`, "3"},
		{"collection-root-kind", `count(collection("col")/..)`, "0"},
	}
}

// flworWant renders the FLWOR case's expected value in collection order.
func flworWant(order []string) string {
	var sb strings.Builder
	for _, d := range order {
		v := strings.TrimSuffix(strings.TrimPrefix(d, "c"), ".xml")
		if v != "1" {
			sb.WriteString("<v>" + v + "</v>")
		}
	}
	return sb.String()
}

var docCollCorpus = map[string]string{
	"c1.xml": `<r><v>1</v></r>`,
	"c2.xml": `<r><v>2</v></r>`,
	"c3.xml": `<r><v>3</v></r>`,
}

// checkDocColl runs one engine (as a QueryString closure) through the
// doc/collection cases. Expected values starting with an error-code
// prefix (FODC/XPTY) assert an error carrying that code.
func checkDocColl(t *testing.T, label string, order []string, query func(string) (string, error)) {
	t.Helper()
	for _, c := range docCollCases(t, order) {
		got, err := query(c.query)
		if strings.HasPrefix(c.want, "FODC") || strings.HasPrefix(c.want, "XPTY") {
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("[%s] %s: %s error = %v, want code %s", label, c.name, c.query, err, c.want)
			}
			continue
		}
		if err != nil {
			t.Errorf("[%s] %s: %s: %v", label, c.name, c.query, err)
			continue
		}
		if got != c.want {
			t.Errorf("[%s] %s: %s = %q, want %q", label, c.name, c.query, got, c.want)
		}
	}
}

func TestSpecConformanceDocCollection(t *testing.T) {
	mkDB := func(opts ...mxq.Option) *mxq.DB {
		db := mxq.Open(opts...)
		if err := db.LoadDocumentString("spec.xml", specDoc); err != nil {
			t.Fatal(err)
		}
		if err := db.LoadDocumentString("other.xml", `<r><v>9</v></r>`); err != nil {
			t.Fatal(err)
		}
		var docs []mxq.Doc
		for _, n := range []string{"c1.xml", "c2.xml", "c3.xml"} {
			docs = append(docs, mxq.DocString(n, docCollCorpus[n]))
		}
		if err := db.LoadCollection("col", 2, docs...); err != nil {
			t.Fatal(err)
		}
		return db
	}
	serial := mkDB()
	par := mkDB(mxq.WithWorkers(4), mxq.WithParallelThreshold(1))

	oracle := naive.New()
	if err := oracle.LoadXML("spec.xml", strings.NewReader(specDoc)); err != nil {
		t.Fatal(err)
	}
	if err := oracle.LoadXML("other.xml", strings.NewReader(`<r><v>9</v></r>`)); err != nil {
		t.Fatal(err)
	}
	order, ok := serial.CollectionDocs("col")
	if !ok {
		t.Fatal("collection col not registered")
	}
	for _, d := range order {
		if err := oracle.AddCollectionXML("col", d, strings.NewReader(docCollCorpus[d])); err != nil {
			t.Fatal(err)
		}
	}

	checkDocColl(t, "serial", order, serial.QueryString)
	checkDocColl(t, "parallel", order, par.QueryString)
	checkDocColl(t, "naive", order, oracle.QueryString)
}

// --- external variable / prepared statement error surface ----------------

// The prepared-query error cases assert the static and dynamic error
// codes of the external-variable surface (XQuery 1.0 §2.3 and F&O):
// XPST0008 for undeclared references and undeclared binding names,
// XQST0049 for duplicate declarations, XPDY0002 for executing with a
// required external unbound, and XPTY0004 for binding a multi-item
// sequence where the declaration's default implies a single item.
// Every case runs on the serial relational engine, the forced-parallel
// relational engine and the naive interpreter — all three must raise
// the same code.
var externalVarErrorCases = []struct {
	name  string
	query string
	binds map[string][]xqt.Item
	code  string
}{
	{"undeclared-variable", `$nope + 1`, nil, "XPST0008"},
	{"undeclared-in-default", `declare variable $a external := $later; declare variable $later := 1; $a`, nil, "XPST0008"},
	{"bind-undeclared-name", `declare variable $x external; $x`,
		map[string][]xqt.Item{"x": {xqt.Int(1)}, "ghost": {xqt.Int(2)}}, "XPST0008"},
	{"bind-non-external", `declare variable $g := 1; $g`,
		map[string][]xqt.Item{"g": {xqt.Int(2)}}, "XPST0008"},
	{"required-unbound", `declare variable $x external; $x`, nil, "XPDY0002"},
	{"plural-bind-singleton-default", `declare variable $n external := 1; $n`,
		map[string][]xqt.Item{"n": {xqt.Int(1), xqt.Int(2)}}, "XPTY0004"},
	{"duplicate-declaration", `declare variable $x := 1; declare variable $x := 2; $x`, nil, "XQST0049"},
	{"duplicate-external", `declare variable $x external; declare variable $x external; $x`, nil, "XQST0049"},
}

func TestExternalVarErrorsAllEngines(t *testing.T) {
	serial := mxq.Open()
	parallel := mxq.Open(mxq.WithWorkers(4), mxq.WithParallelThreshold(1))
	for _, db := range []*mxq.DB{serial, parallel} {
		if err := db.LoadDocumentString("spec.xml", specDoc); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range externalVarErrorCases {
		rb := relBindings(c.binds)
		for label, run := range map[string]func() (string, error){
			"serial":   func() (string, error) { return queryBound(serial, c.query, rb) },
			"parallel": func() (string, error) { return queryBound(parallel, c.query, rb) },
			"naive": func() (string, error) {
				in := naive.New()
				if err := in.LoadXML("spec.xml", strings.NewReader(specDoc)); err != nil {
					return "", err
				}
				return in.QueryStringBound(c.query, naiveBindings(c.binds))
			},
		} {
			got, err := run()
			if err == nil {
				t.Errorf("%s [%s]: %s returned %q, want error %s", c.name, label, c.query, got, c.code)
				continue
			}
			if !strings.Contains(err.Error(), c.code) {
				t.Errorf("%s [%s]: error %q does not carry %s", c.name, label, err, c.code)
			}
		}
	}
}

// TestExternalVarPositiveAllEngines pins the non-error side of the
// same surface: defaults apply when unbound, bindings override
// defaults, globals see earlier declarations, and all three engines
// serialize identically.
func TestExternalVarPositiveAllEngines(t *testing.T) {
	serial := mxq.Open()
	parallel := mxq.Open(mxq.WithWorkers(4), mxq.WithParallelThreshold(1))
	for _, db := range []*mxq.DB{serial, parallel} {
		if err := db.LoadDocumentString("spec.xml", specDoc); err != nil {
			t.Fatal(err)
		}
	}
	cases := []struct {
		name  string
		query string
		binds map[string][]xqt.Item
		want  string
	}{
		{"default-applies", `declare variable $n external := 40; $n + 2`, nil, "42"},
		{"binding-overrides-default", `declare variable $n external := 40; $n + 2`,
			map[string][]xqt.Item{"n": {xqt.Int(0)}}, "2"},
		{"global-chain", `declare variable $a := 2; declare variable $b := $a * 3; $b`, nil, "6"},
		{"default-over-earlier-external", `declare variable $a external; declare variable $b external := $a + 1; $b`,
			map[string][]xqt.Item{"a": {xqt.Int(9)}}, "10"},
		{"sequence-binding", `declare variable $s external; sum($s)`,
			map[string][]xqt.Item{"s": {xqt.Int(1), xqt.Double(0.5), xqt.Int(3)}}, "4.5"},
		{"string-binding-in-path", `declare variable $tag external; count(/root//*[local-name(.) = $tag])`,
			map[string][]xqt.Item{"tag": {xqt.Str("plain")}}, "1"},
		{"bool-binding", `declare variable $flag external := false(); if ($flag) then "y" else "n"`,
			map[string][]xqt.Item{"flag": {xqt.Bool(true)}}, "y"},
		// prolog variables are in scope inside user-defined function
		// bodies (regression: the naive oracle used to give UDFs a fresh
		// scope holding only the parameters)
		{"prolog-var-in-udf", `declare variable $x external := 7; declare function local:f() { $x }; local:f()`,
			nil, "7"},
		{"prolog-var-in-udf-bound", `declare variable $x external; declare function local:f($y) { $x + $y }; local:f(1)`,
			map[string][]xqt.Item{"x": {xqt.Int(2)}}, "3"},
	}
	for _, c := range cases {
		rb := relBindings(c.binds)
		gotS, errS := queryBound(serial, c.query, rb)
		gotP, errP := queryBound(parallel, c.query, rb)
		in := naive.New()
		if err := in.LoadXML("spec.xml", strings.NewReader(specDoc)); err != nil {
			t.Fatal(err)
		}
		gotN, errN := in.QueryStringBound(c.query, naiveBindings(c.binds))
		if errS != nil || errP != nil || errN != nil {
			t.Errorf("%s: errors serial=%v parallel=%v naive=%v", c.name, errS, errP, errN)
			continue
		}
		for label, got := range map[string]string{"serial": gotS, "parallel": gotP, "naive": gotN} {
			if got != c.want {
				t.Errorf("%s [%s]: got %q, want %q", c.name, label, got, c.want)
			}
		}
	}
}
