package mxq_test

import (
	"strings"
	"testing"

	"mxq"
	"mxq/internal/naive"
)

// The spec-conformance suite checks XPath/XQuery function semantics
// against expected values hard-coded from the spec — deliberately NOT
// differentially: the relational engine and the naive DOM interpreter
// historically shared identical spec bugs (round half-away-from-zero,
// byte-counted string-length, Go-spelled infinities), which a
// differential oracle is structurally blind to. Every case runs against
// both engines independently.

const specDoc = `<root><a><ns:child xmlns:ns="urn:x">h&#233;llo</ns:child></a><b><plain>text</plain></b></root>`

// specCases hold (query, expected serialization). Expected values come
// from the XPath 2.0 / XQuery 1.0 function specs, not from either
// engine.
var specCases = []struct {
	name  string
	query string
	want  string
}{
	// fn:round — halves round toward positive infinity (XPath F&O 6.4.4:
	// round(-2.5) is -2, NOT -3).
	{"round-positive-half", `round(2.5)`, "3"},
	{"round-negative-half", `round(-2.5)`, "-2"},
	{"round-negative-below-half", `round(-2.51)`, "-3"},
	{"round-negative-above-half", `round(-2.4999)`, "-2"},
	{"round-positive", `round(7.2)`, "7"},
	{"round-integer", `round(5)`, "5"},
	{"round-negative-int-half", `round(-7.5)`, "-7"},

	// fn:floor / fn:ceiling (F&O 6.4.1, 6.4.2).
	{"floor-negative", `floor(-1.5)`, "-2"},
	{"floor-positive", `floor(1.5)`, "1"},
	{"ceiling-negative", `ceiling(-1.5)`, "-1"},
	{"ceiling-positive", `ceiling(1.5)`, "2"},

	// fn:string-length counts characters, not bytes (F&O 7.4.4):
	// "héllo" is 5 characters (6 UTF-8 bytes).
	{"string-length-ascii", `string-length("abcd")`, "4"},
	{"string-length-multibyte", `string-length("héllo")`, "5"},
	{"string-length-empty", `string-length("")`, "0"},
	{"string-length-node", `string-length(string(/root/a/*))`, "5"},

	// xs:double serialization of the special values (XPath casting to
	// xs:string): INF / -INF / NaN, not Go's +Inf spellings.
	{"serialize-inf", `string(2 div 0)`, "INF"},
	{"serialize-neg-inf", `string(-2 div 0)`, "-INF"},
	{"serialize-nan", `string(0 div 0)`, "NaN"},
	{"serialize-inf-value", `2 div 0`, "INF"},
	{"integral-double", `string(3.0)`, "3"},
	{"fractional-double", `string(2.5)`, "2.5"},

	// fn:local-name strips the namespace prefix (F&O 2.2); fn:name keeps
	// the qualified form.
	{"local-name-prefixed", `local-name(/root/a/*)`, "child"},
	{"local-name-plain", `local-name(/root/b/*)`, "plain"},
	{"local-name-empty", `local-name(())`, ""},

	// fn:distinct-values (F&O 15.1.6): numeric values compare across
	// numeric types (1 eq 1.0), while values no eq operator relates —
	// integer vs boolean, number vs string — stay distinct.
	{"distinct-int-double", `distinct-values((1, 1.0))`, "1"},
	{"distinct-int-bool", `distinct-values((1, true()))`, "1 true"},
	{"distinct-num-string", `distinct-values((1, "1"))`, "1 1"},
	{"distinct-strings", `distinct-values(("a", "b", "a"))`, "a b"},
	{"distinct-order", `distinct-values((2, 1, 2.0, 1.0, 3))`, "2 1 3"},

	// arithmetic promotion sanity around the special values
	{"nan-never-equal", `(0 div 0) = (0 div 0)`, "false"},
	{"inf-compares", `(1 div 0) > 1e300`, "true"},
}

func TestSpecConformanceRelational(t *testing.T) {
	db := mxq.Open()
	if err := db.LoadDocumentString("spec.xml", specDoc); err != nil {
		t.Fatal(err)
	}
	for _, c := range specCases {
		got, err := db.QueryString(c.query)
		if err != nil {
			t.Errorf("%s: %s: %v", c.name, c.query, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s: %s = %q, want %q", c.name, c.query, got, c.want)
		}
	}
}

// TestSpecConformanceRelationalParallel runs the same suite through the
// parallel executor (forced workers, threshold 1) — the typed-vector
// kernels must produce spec-conformant output on the chunked paths too.
func TestSpecConformanceRelationalParallel(t *testing.T) {
	db := mxq.Open(mxq.WithWorkers(4))
	db.Engine() // ensure construction
	if err := db.LoadDocumentString("spec.xml", specDoc); err != nil {
		t.Fatal(err)
	}
	for _, c := range specCases {
		got, err := db.QueryString(c.query)
		if err != nil {
			t.Errorf("%s: %s: %v", c.name, c.query, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s: %s = %q, want %q", c.name, c.query, got, c.want)
		}
	}
}

func TestSpecConformanceNaive(t *testing.T) {
	for _, c := range specCases {
		in := naive.New()
		if err := in.LoadXML("spec.xml", strings.NewReader(specDoc)); err != nil {
			t.Fatal(err)
		}
		got, err := in.QueryString(c.query)
		if err != nil {
			t.Errorf("%s: %s: %v", c.name, c.query, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s: %s = %q, want %q", c.name, c.query, got, c.want)
		}
	}
}
