module mxq

go 1.24
