GO ?= go

.PHONY: check check-ci fmt vet build test race race-cover bench bench-smoke serve-smoke fuzz-short chaos-smoke cover lint mxqlint verify optcheck

# check is the CI gate: formatting, vet, build, and the full test suite
# under the race detector (the parallel executor must stay race-clean).
check: fmt vet build race

# check-ci is check with the race run also producing the coverage profile
# (one suite execution on CI instead of separate race and cover passes).
check-ci: fmt vet build race-cover

# lint is the static-analysis gate: formatting, vet, the project
# analyzers (docs/static-analysis.md), and — where the tool is
# installed — govulncheck. No analyzer needs the network.
lint: fmt vet mxqlint
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping"; \
	fi

# mxqlint runs the project-specific analyzers (docs/static-analysis.md)
# over the whole module.
mxqlint:
	$(GO) run ./cmd/mxqlint .

# verify runs the full suite with the planck plan verifier forced on:
# every plan any test compiles is checked against the static invariants
# before it executes.
verify:
	MXQ_VERIFY_PLANS=1 $(GO) test ./...

# optcheck runs the optimizer translation-validation corpus (every
# rewrite the 20 XMark + 500 generated queries fire, checked for
# semantic equivalence on synthesized micro-inputs) plus the
# rule-coverage floor — see docs/optimizer.md. MXQ_FUZZ_SEED adds an
# extra synthesis seed (CI passes the workflow run id); re-run with the
# seed an unsound-rewrite report prints to replay it exactly.
optcheck:
	MXQ_CHECK_REWRITES=1 MXQ_FUZZ_SEED=$(MXQ_FUZZ_SEED) $(GO) test -run 'TestCorpusRewritesSound|TestRuleCoverageFloor' -count=1 -v ./internal/optcheck/

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

race-cover:
	$(GO) test -race -coverprofile=coverage.out -coverpkg=./... ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...

# bench-smoke runs the serving-path benchmarks once: prepared-vs-cold
# (Prepare/bind/execute must stay strictly cheaper than cold
# parse+compile+execute) and the oversubscribed-scheduler family
# (4×GOMAXPROCS concurrent executions, free-spawning vs the shared
# slot pool). A fast CI gate that records the sched numbers per run.
bench-smoke:
	$(GO) test -run '^$$' -bench 'PreparedVsCold|SchedOversubscribed' -benchtime 1x .

# serve-smoke boots the mxqd daemon on a loopback port and drives the
# example wire client through a full session against it (healthz,
# prepare, typed binds, exec, close) — the end-to-end gate on the HTTP
# serving layer. The daemon runs with parallel execution on so the
# session exercises the global scheduler (admission, budgets, shared
# slot pool), not just the serial path. The client retries healthz, so
# no sleep race.
serve-smoke:
	$(GO) build -o mxqd.smoke ./cmd/mxqd
	./mxqd.smoke -addr 127.0.0.1:18099 -xmark 0.002 -parallel & \
	pid=$$!; \
	$(GO) run ./examples/server -addr 127.0.0.1:18099; \
	status=$$?; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	rm -f mxqd.smoke; \
	exit $$status

# fuzz-short runs the seeded differential query generator (relational
# serial + parallel vs the naive oracle, ~30s budget). MXQ_FUZZ_SEED
# defaults to a seed distinct from the in-suite run, so this is a fresh
# 500-query stream, not a replay; override it to reproduce a failure.
MXQ_FUZZ_SEED ?= 424242
fuzz-short:
	MXQ_FUZZ_SEED=$(MXQ_FUZZ_SEED) $(GO) test -run 'TestDifferentialFuzz' -count=1 -v .

# chaos-smoke runs the deterministic fault-injection suite under the
# race detector: the XMark mix with errors, cancellations, and panics
# injected at every registered site (docs/robustness.md), plus the
# serving-layer stream faults and the graceful-shutdown contract.
# MXQ_FAULTS_SEED varies the injection schedule (CI passes the workflow
# run id); re-run with the printed seed to replay a failure exactly.
MXQ_FAULTS_SEED ?= 424242
chaos-smoke:
	MXQ_FAULTS_SEED=$(MXQ_FAULTS_SEED) $(GO) test -race -count=1 -v ./internal/chaos/
	MXQ_FAULTS_SEED=$(MXQ_FAULTS_SEED) $(GO) test -race -count=1 -run 'TestServeStreamChaos|TestGracefulShutdown|TestShutdownDeadline' ./internal/serve/

cover:
	$(GO) test -coverprofile=coverage.out -coverpkg=./... ./...
	$(GO) tool cover -func=coverage.out | tail -1
