GO ?= go

.PHONY: check fmt vet build test race bench

# check is the CI gate: formatting, vet, build, and the full test suite
# under the race detector (the parallel executor must stay race-clean).
check: fmt vet build race

fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x ./...
