// Fixture: xqerrcheck — W3C error codes in bare error constructors.
package other

import (
	"errors"
	"fmt"
)

var errBare = errors.New("XPTY0004: sequence of more than one item") // want "error code XPTY0004 minted via bare errors.New"

func dynamicErr(n int) error {
	return fmt.Errorf("XPDY0002: context item undefined at step %d", n) // want "error code XPDY0002 minted via bare fmt.Errorf"
}

func staticErr() error {
	return fmt.Errorf("err:XQST0039 duplicate parameter name") // want "error code XQST0039"
}

var errPlain = errors.New("shard count must be positive")

func wrapped(err error) error {
	return fmt.Errorf("loading document: %w", err)
}

// Near-miss shapes that must NOT fire: too-short code, lowercase,
// different prefix, and a code embedded in a longer word.
var (
	errShort = errors.New("XPTY004 truncated")
	errLower = errors.New("xpty0004 lowercased")
	errOther = errors.New("SERR0001 not a W3C namespace")
	errEmbed = errors.New("PREFIXPTY0004X embedded")
)
