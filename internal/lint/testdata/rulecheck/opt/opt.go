package opt

type optimizer struct{}

func (o *optimizer) snap(n any) (any, any)            { return nil, nil }
func (o *optimizer) fired(rule, before, c, after any) {}

func (o *optimizer) rewriteNode(p any) any {
	switch n := p.(type) {
	case *sortOp:
		// rewrites attributed through the hook: compliant
		if n.covered() {
			before, c := o.snap(n)
			o.fired("sort.drop", before, c, n)
			return n
		}
		return n
	case *joinOp:
		// rulecheck:exempt annotation-only bookkeeping, no plan mutation
		n.touch()
		return n
	case *distinctOp: // want "rewriteNode case .distinctOp never calls the fired rewrite hook"
		n.mutate()
		return n
	case *rankOp: // want "rewriteNode case .rankOp never calls the fired rewrite hook"
		// rulecheck:exempt
		n.mutate()
		return n
	default:
		return p
	}
}

// rewriteNode on another receiver is held to the same contract.
func (o *other) rewriteNode(p any) any {
	switch p.(type) {
	case *crossOp, *unionOp: // want "rewriteNode case .crossOp, .unionOp never calls the fired rewrite hook"
		return nil
	}
	return p
}

// helper is not named rewriteNode: its switch is out of scope.
func (o *optimizer) classify(p any) int {
	switch p.(type) {
	case *sortOp:
		return 1
	}
	return 0
}
