// Fixture for waitcheck: package is named sched so the analyzer's
// package gate admits it. Each flagged line carries a want comment.
package sched

import "context"

type pool struct {
	sem chan struct{}
}

// admitBad waits for a slot without honoring cancellation.
func (p *pool) admitBad(ctx context.Context) {
	select { // want "select blocks without a default or Done case"
	case p.sem <- struct{}{}:
	}
}

// admitGood waits for a slot or the context, whichever first.
func (p *pool) admitGood(ctx context.Context) error {
	select {
	case p.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// admitFast never blocks: the default makes the select a poll.
func (p *pool) admitFast() bool {
	select {
	case p.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// admitDoneVar receives from a pre-extracted done channel; the
// identifier's name marks it cancellable.
func (p *pool) admitDoneVar(done <-chan struct{}) {
	select {
	case p.sem <- struct{}{}:
	case <-done:
	}
}

func (p *pool) sendBare() {
	p.sem <- struct{}{} // want "bare channel send blocks unconditionally"
}

func (p *pool) recvBare() {
	<-p.sem // want "bare channel receive blocks unconditionally"
}

// release returns a held slot.
//
// waitcheck:exempt the receive drains a slot this pool provably holds
// in its buffered semaphore, so it cannot block.
func (p *pool) release() {
	<-p.sem
}
