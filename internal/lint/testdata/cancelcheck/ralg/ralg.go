// Fixture: the ralg side of cancelcheck. Not compiled into the module
// (testdata); syntax-only analysis, so stub types suffice.
package ralg

type Exec struct{}

func (e *Exec) stopRequested() bool { return false }

type Table struct{ N int }

func (e *Exec) execBad(in *Table) *Table { // want "execBad: row loop never polls cancellation"
	sum := 0
	for i := 0; i < in.N; i++ {
		sum += i
	}
	return in
}

func (e *Exec) execGood(in *Table) *Table {
	for i := 0; i < in.N; i++ {
		if i&8191 == 8191 && e.stopRequested() {
			break
		}
	}
	return in
}

// execViaHelper reaches the poll through a same-package helper: the
// call-graph closure must accept it.
func (e *Exec) execViaHelper(in *Table) *Table {
	for i := 0; i < in.N; i++ {
		e.pollingHelper()
	}
	return in
}

func (e *Exec) pollingHelper() { _ = e.stopRequested() }

// execLoopInClosure hides its row loop inside a function literal; the
// loop is still this operator's loop, so the missing poll must fire.
func (e *Exec) execLoopInClosure(in *Table) *Table { // want "execLoopInClosure: row loop never polls"
	work := func() {
		for i := 0; i < in.N; i++ {
			_ = i
		}
	}
	work()
	return in
}

// cancelcheck:exempt memory-bound scan, no per-row work that can stall
func (e *Exec) execExempt(in *Table) *Table {
	for i := 0; i < in.N; i++ {
		_ = i
	}
	return in
}

// cancelcheck:exempt
func (e *Exec) execExemptNoReason(in *Table) *Table { // want "execExemptNoReason: row loop never polls"
	for i := 0; i < in.N; i++ {
		_ = i
	}
	return in
}

// execNoLoop has no row loop, so it is not a candidate.
func (e *Exec) execNoLoop(in *Table) *Table { return in }

// notAnOperator loops without polling but is not an exec* entry point.
func notAnOperator(in *Table) {
	for i := 0; i < in.N; i++ {
		_ = i
	}
}
