// Fixture: the scj side of cancelcheck — any function threading a
// *Stats is a kernel and must poll (or reach a poll, or be exempt).
package scj

type Stats struct {
	Touched int64
	Stop    func() bool
}

func (st *Stats) stopped() bool { return st.Stop != nil && st.Stop() }

type Pairs struct {
	Pre  []int32
	Iter []int32
}

func llBad(ctx Pairs, st *Stats) { // want "llBad: row loop never polls cancellation"
	for range ctx.Pre {
		st.Touched++
	}
}

func llGood(ctx Pairs, st *Stats) {
	for i := range ctx.Pre {
		st.Touched++
		if i&4095 == 4095 && st.stopped() {
			break
		}
	}
}

// llDelegating reaches the poll through the kernel it calls.
func llDelegating(ctx Pairs, st *Stats) {
	for i := 0; i < 2; i++ {
		llGood(ctx, st)
	}
}

// noStats loops but does not thread the counters: not a kernel.
func noStats(ctx Pairs) {
	for range ctx.Pre {
	}
}
