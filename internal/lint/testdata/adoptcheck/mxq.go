// Fixture: adoptcheck — public binding constructors must copy before
// handing caller slices to the adopting ralg.Bind* constructors.
package mxq

import "mxq/internal/ralg"

type Value struct{ vec any }

func Ints(vs ...int64) Value {
	return Value{vec: ralg.BindInts(vs...)} // want "parameter vs escapes into ralg.BindInts uncopied"
}

func IntsCopied(vs ...int64) Value {
	return Value{vec: ralg.BindInts(append([]int64(nil), vs...)...)}
}

func Strings(names []string) Value {
	return Value{vec: ralg.BindStrings(names...)} // want "parameter names escapes into ralg.BindStrings uncopied"
}

func Scalar(v int64) Value {
	return Value{vec: ralg.BindInts(v)}
}

func localSlice() Value {
	vs := []int64{1, 2, 3}
	return Value{vec: ralg.BindInts(vs...)} // a local, not a parameter: the caller cannot alias it
}
