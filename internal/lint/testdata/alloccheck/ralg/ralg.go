// Fixture: the ralg side of alloccheck. Not compiled into the module
// (testdata); syntax-only analysis, so stub types suffice.
package ralg

type Exec struct{}

func (e *Exec) charge(n int64) bool { return true }

type Table struct{ N int }

func (e *Exec) chargeTable(t *Table) bool { return true }

func (e *Exec) execBad(in *Table) *Table { // want "execBad: materializing allocation never charges"
	out := make([]int64, in.N)
	for i := range out {
		out[i] = int64(i)
	}
	return in
}

func (e *Exec) execGood(in *Table) *Table {
	e.charge(8 * int64(in.N))
	out := make([]int64, in.N)
	_ = out
	return in
}

func (e *Exec) execGoodTable(in *Table) *Table {
	out := &Table{N: in.N}
	_ = make([]int64, in.N)
	e.chargeTable(out)
	return out
}

// execViaHelper reaches the charge through a same-package helper: the
// call-graph closure must accept it.
func (e *Exec) execViaHelper(in *Table) *Table {
	_ = make([]int64, in.N)
	e.chargingHelper(in)
	return in
}

func (e *Exec) chargingHelper(in *Table) { e.charge(int64(in.N)) }

// execAllocInClosure hides its allocation inside a function literal;
// the allocation is still this operator's, so the missing charge fires.
func (e *Exec) execAllocInClosure(in *Table) *Table { // want "execAllocInClosure: materializing allocation never charges"
	var rows []int64
	work := func() {
		rows = append(rows, 1)
	}
	work()
	return in
}

// alloccheck:exempt zero-copy column header remap, no row payloads
func (e *Exec) execExempt(in *Table) *Table {
	_ = make([]int64, in.N)
	return in
}

// alloccheck:exempt
func (e *Exec) execExemptNoReason(in *Table) *Table { // want "execExemptNoReason: materializing allocation never charges"
	_ = make([]int64, in.N)
	return in
}

// execNoAlloc never allocates, so it is not a candidate.
func (e *Exec) execNoAlloc(in *Table) *Table { return in }

// notAnOperator allocates without charging but is not an exec* entry
// point.
func notAnOperator(in *Table) {
	_ = make([]int64, in.N)
}
