// Fixture: the scj side of alloccheck. Only the parallel step drivers
// (par* functions threading a *Stats) owe a charge; serial kernels are
// charged by their callers.
package scj

type Stats struct {
	Charge func(n int64) bool
}

func (st *Stats) charge(n int64) {
	if st.Charge != nil {
		st.Charge(n)
	}
}

type Pairs struct{ Pre []int32 }

func (p *Pairs) Len() int { return len(p.Pre) }

func parBad(ctx Pairs, workers int, st *Stats) Pairs { // want "parBad: materializing allocation never charges"
	out := Pairs{Pre: make([]int32, 0, ctx.Len())}
	for _, p := range ctx.Pre {
		out.Pre = append(out.Pre, p)
	}
	return out
}

func parGood(ctx Pairs, workers int, st *Stats) Pairs {
	out := Pairs{Pre: make([]int32, 0, ctx.Len())}
	for _, p := range ctx.Pre {
		out.Pre = append(out.Pre, p)
	}
	st.charge(8 * int64(out.Len()))
	return out
}

// serialKernel allocates without charging, but it is not a par* driver:
// its caller owns the charge.
func serialKernel(ctx Pairs, out *Pairs, st *Stats) {
	out.Pre = append(out.Pre, ctx.Pre...)
}

// parNoStats allocates but does not thread a *Stats, so it is not a
// candidate (nothing to charge against).
func parNoStats(ctx Pairs, workers int) Pairs {
	return Pairs{Pre: make([]int32, ctx.Len())}
}
