package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// RuleCheck enforces the optimizer's rewrite-attribution contract:
// every case of opt's rewriteNode type switch must report its plan
// mutations through the fired rewrite hook (which names the rule and
// emits the translation-validation witness, see internal/optcheck). A
// rewrite added without firing would be invisible to rule coverage and
// — worse — exempt from per-step validation.
//
// A case that genuinely performs no semantic rewrite may opt out with
// an explanatory annotation inside the case body:
//
//	// rulecheck:exempt <reason>
//
// The reason is mandatory; a bare marker still fires.
var RuleCheck = &Analyzer{
	Name: "rulecheck",
	Doc:  "optimizer rewriteNode cases must attribute mutations via the fired hook or carry a rulecheck:exempt annotation",
	Run:  runRuleCheck,
}

func runRuleCheck(p *Package) []Diagnostic {
	if p.Name != "opt" {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "rewriteNode" || fd.Body == nil {
				continue
			}
			diags = append(diags, checkRewriteCases(p, f, fd)...)
		}
	}
	return diags
}

// checkRewriteCases walks the type-switch cases of one rewriteNode
// body. Only type switches count — the per-operator dispatch is a type
// switch, while nested expression switches choose among already-
// attributed strategies (e.g. the fallback rank mode). The default
// clause (no rewrite possible: unknown operator) is always exempt.
func checkRewriteCases(p *Package, f *ast.File, fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSwitchStmt)
		if !ok {
			return true
		}
		for _, stmt := range ts.Body.List {
			cc, ok := stmt.(*ast.CaseClause)
			if !ok || cc.List == nil {
				continue
			}
			if callsFired(cc) || caseExempt(f, cc) {
				continue
			}
			diags = append(diags, p.diag("rulecheck", cc,
				"rewriteNode case %s never calls the fired rewrite hook; register the rule and fire it or annotate // rulecheck:exempt <reason>",
				caseLabel(cc)))
		}
		return true
	})
	return diags
}

// callsFired reports whether the case body contains a call to the
// fired hook (o.fired(...) or fired(...)).
func callsFired(cc *ast.CaseClause) bool {
	found := false
	for _, stmt := range cc.Body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fn := call.Fun.(type) {
			case *ast.Ident:
				found = found || fn.Name == "fired"
			case *ast.SelectorExpr:
				found = found || fn.Sel.Name == "fired"
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// caseExempt reports whether a rulecheck:exempt annotation with a
// non-empty reason appears within the case clause's source range.
// exemptReason only reads doc comments; case clauses have none, so
// the file's comment list is scanned positionally instead.
func caseExempt(f *ast.File, cc *ast.CaseClause) bool {
	for _, cg := range f.Comments {
		if cg.Pos() < cc.Pos() || cg.End() > cc.End() {
			continue
		}
		if _, ok := exemptReason(cg, "rulecheck:exempt"); ok {
			return true
		}
	}
	return false
}

// caseLabel renders the case's first type expression for the message.
func caseLabel(cc *ast.CaseClause) string {
	parts := make([]string, 0, len(cc.List))
	for _, e := range cc.List {
		parts = append(parts, types.ExprString(e))
	}
	return strings.Join(parts, ", ")
}
