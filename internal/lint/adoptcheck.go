package lint

import (
	"go/ast"
	"strings"
)

// AdoptCheck guards the public binding constructors: ralg.Bind* adopt
// the vectors they are handed (zero-copy — the executor reads them on
// every Execute), so a public mxq constructor that forwards a caller's
// slice or variadic parameter uncopied creates aliasing the caller can
// observe by mutating the slice after binding. Constructors must copy
// first:
//
//	ralg.BindInts(append([]int64(nil), vs...)...)
//
// The copy idiom passes because the argument is a call expression, not
// the bare parameter.
var AdoptCheck = &Analyzer{
	Name: "adoptcheck",
	Doc:  "public mxq constructors must copy slice/variadic parameters before handing them to ralg.Bind* (which adopts, not copies)",
	Run:  runAdoptCheck,
}

func runAdoptCheck(p *Package) []Diagnostic {
	if p.Name != "mxq" {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sliceParams := map[string]bool{}
			for _, field := range fd.Type.Params.List {
				adopts := false
				switch t := field.Type.(type) {
				case *ast.Ellipsis:
					adopts = true
				case *ast.ArrayType:
					adopts = t.Len == nil // slice, not array
				}
				if !adopts {
					continue
				}
				for _, name := range field.Names {
					sliceParams[name.Name] = true
				}
			}
			if len(sliceParams) == 0 {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pkgID, ok := sel.X.(*ast.Ident)
				if !ok || pkgID.Name != "ralg" || !strings.HasPrefix(sel.Sel.Name, "Bind") {
					return true
				}
				for _, arg := range call.Args {
					id, ok := arg.(*ast.Ident)
					if !ok || !sliceParams[id.Name] {
						continue
					}
					diags = append(diags, p.diag("adoptcheck", arg,
						"parameter %s escapes into ralg.%s uncopied; the engine adopts bound vectors — pass append([]T(nil), %s...)... instead", id.Name, sel.Sel.Name, id.Name))
				}
				return true
			})
		}
	}
	return diags
}
