package lint

import (
	"fmt"
	"regexp"
	"sort"
)

// wantRE extracts the expectation regex from a `// want "..."` comment
// (analysistest convention: the comment sits on the line the analyzer
// must flag, and its payload must match the diagnostic message).
var wantRE = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// CheckFixture loads a fixture directory (test files included), runs
// one analyzer over it, and compares the diagnostics against the
// `// want "regex"` comments in the fixture sources. It returns one
// error string per mismatch: a diagnostic no want-comment expects, or
// a want-comment no diagnostic satisfied.
func CheckFixture(a *Analyzer, dir string) ([]string, error) {
	p, err := LoadDir(dir, true)
	if err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("lint: fixture dir %s holds no Go files", dir)
	}

	type want struct {
		file    string
		line    int
		re      *regexp.Regexp
		matched bool
	}
	var wants []*want
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					pos := p.Fset.Position(c.Pos())
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
				}
				pos := p.Fset.Position(c.Pos())
				wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}

	var problems []string
	for _, d := range a.Run(p) {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic %s", d))
		}
	}
	for _, w := range wants {
		if !w.matched {
			problems = append(problems, fmt.Sprintf("%s:%d: no %s diagnostic matched want %q", w.file, w.line, a.Name, w.re))
		}
	}
	sort.Strings(problems)
	return problems, nil
}
