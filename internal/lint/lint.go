// Package lint is a self-contained static-analysis framework for the
// project-specific invariants that ordinary vet cannot see: executor
// cancellation polling (cancelcheck), scheduler/serving wait-point
// cancellability (waitcheck), error-code hygiene (xqerrcheck), and
// binding-adoption safety at the public API boundary (adoptcheck).
//
// It deliberately works at the syntax level only (go/parser + go/ast,
// no type checking): every rule it enforces is expressible over names
// and shapes, which keeps the linter dependency-free and fast enough
// to run on every test invocation. The cost is that the analyzers are
// conservative pattern matchers — they are tuned so that the idioms
// this repository actually uses pass, and the mistakes the rules exist
// to catch do not.
//
// Command mxqlint (cmd/mxqlint) runs every analyzer over the module;
// RunFixture drives an analyzer over a testdata directory annotated
// with `// want "regex"` comments, analysistest-style.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed directory: all non-test files of the package
// that lives there, with comments attached.
type Package struct {
	Name  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
}

// Diagnostic is one analyzer finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one named check over a parsed package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Package) []Diagnostic
}

// All returns every analyzer mxqlint ships, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{CancelCheck, AllocCheck, WaitCheck, XQErrCheck, AdoptCheck, RuleCheck}
}

// LoadDir parses every .go file directly inside dir into one Package.
// Test files (_test.go) are skipped unless includeTests is set; a dir
// with no eligible files yields (nil, nil). When files disagree on the
// package name (main + tooling stubs), the majority name wins so the
// analyzers' package gates stay meaningful.
func LoadDir(dir string, includeTests bool) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	p := &Package{Dir: dir, Fset: fset}
	names := map[string]int{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		if !includeTests && strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		p.Files = append(p.Files, f)
		names[f.Name.Name]++
	}
	if len(p.Files) == 0 {
		return nil, nil
	}
	for n, c := range names {
		if c > names[p.Name] || (c == names[p.Name] && n < p.Name) || p.Name == "" {
			p.Name = n
		}
	}
	return p, nil
}

// Dirs lists every directory under root that holds .go files, skipping
// VCS metadata, testdata trees (lint fixtures contain deliberate
// violations), and hidden directories. Paths come back sorted so runs
// are deterministic.
func Dirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			base := filepath.Base(path)
			if base == "testdata" || (strings.HasPrefix(base, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasLoop reports whether the function body contains any for/range
// statement, including inside function literals (a loop handed to a
// parallel driver is still this function's loop).
func hasLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
		return !found
	})
	return found
}

// exemptReason returns the reason text of a `// <marker> <reason>`
// annotation in the declaration's doc comment group, or ("", false).
// A bare marker with no reason does not count: exemptions must say why.
func exemptReason(doc *ast.CommentGroup, marker string) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if rest, ok := strings.CutPrefix(text, marker); ok {
			reason := strings.TrimSpace(rest)
			if reason != "" {
				return reason, true
			}
		}
	}
	return "", false
}

// diag builds a Diagnostic at a node's position.
func (p *Package) diag(analyzer string, n ast.Node, format string, args ...any) Diagnostic {
	return Diagnostic{
		Pos:      p.Fset.Position(n.Pos()),
		Analyzer: analyzer,
		Message:  fmt.Sprintf(format, args...),
	}
}
