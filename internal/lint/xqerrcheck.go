package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
)

// XQErrCheck enforces error-code hygiene: W3C error codes (XPTY0004,
// XQST0039, FORG0001, ...) carried in bare fmt.Errorf / errors.New
// strings are invisible to errors.As/Is classification — the serving
// layer maps them to the wrong HTTP status and the API cannot tell a
// static error from a dynamic one. Any error carrying such a code must
// be constructed through internal/xqerr, which is the one package
// allowed to mint them.
var XQErrCheck = &Analyzer{
	Name: "xqerrcheck",
	Doc:  "W3C error codes must be minted via internal/xqerr, not bare fmt.Errorf/errors.New strings",
	Run:  runXQErrCheck,
}

var xqErrCodeRE = regexp.MustCompile(`\b(XP|XQ|FO)[A-Z]{2}[0-9]{4}\b`)

func runXQErrCheck(p *Package) []Diagnostic {
	if p.Name == "xqerr" {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			ctor := pkgID.Name + "." + sel.Sel.Name
			if ctor != "fmt.Errorf" && ctor != "errors.New" {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			text, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if code := xqErrCodeRE.FindString(text); code != "" {
				diags = append(diags, p.diag("xqerrcheck", call,
					"error code %s minted via bare %s; construct it with internal/xqerr so callers can classify it", code, ctor))
			}
			return true
		})
	}
	return diags
}
