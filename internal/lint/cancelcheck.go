package lint

import (
	"go/ast"
	"regexp"
)

// CancelCheck enforces the executor's cancellation contract: every
// row-loop in the relational executor (ralg's exec* operator methods)
// and every staircase-join kernel (scj functions threading a *Stats)
// must poll cancellation on an amortized schedule, either directly
// (stopRequested / stopFunc / stopped / Stop wiring, or by delegating
// to the parFill/parRun/parPairs drivers, which poll internally) or by
// calling — transitively, within the package — a function that does.
//
// A function whose loops are provably memory-bound (no per-row work
// that can stall for long) may opt out with an explanatory annotation
// in its doc comment:
//
//	// cancelcheck:exempt <reason>
//
// The reason is mandatory; a bare marker still fires.
var CancelCheck = &Analyzer{
	Name: "cancelcheck",
	Doc:  "executor row-loops must poll cancellation (amortized), reach a poll via same-package calls, or carry a cancelcheck:exempt annotation",
	Run:  runCancelCheck,
}

// cancelMarkers are the identifiers whose presence means the function
// participates in cancellation: the poll entry points themselves, the
// Stats.Stop wiring, and the parallel drivers that poll per chunk.
var cancelMarkers = map[string]bool{
	"stopRequested": true,
	"stopFunc":      true,
	"stopped":       true,
	"Stop":          true,
	"parFill":       true,
	"parRun":        true,
	"parPairs":      true,
}

var execNameRE = regexp.MustCompile(`^exec[A-Z]`)

func runCancelCheck(p *Package) []Diagnostic {
	if p.Name != "ralg" && p.Name != "scj" {
		return nil
	}

	// funcInfo is the per-function summary the reachability pass works
	// over: whether the body mentions a cancellation marker, and which
	// same-package functions it may call (callee names, resolved
	// syntactically: f(...) and recv.f(...) both record "f").
	type funcInfo struct {
		decl   *ast.FuncDecl
		direct bool
		calls  map[string]bool
	}
	fns := map[string]*funcInfo{}
	var order []string
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			info := &funcInfo{decl: fd, calls: map[string]bool{}}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.Ident:
					if cancelMarkers[x.Name] {
						info.direct = true
					}
				case *ast.SelectorExpr:
					if cancelMarkers[x.Sel.Name] {
						info.direct = true
					}
					info.calls[x.Sel.Name] = true
				case *ast.CallExpr:
					if id, ok := x.Fun.(*ast.Ident); ok {
						info.calls[id.Name] = true
					}
				}
				return true
			})
			fns[fd.Name.Name] = info
			order = append(order, fd.Name.Name)
		}
	}

	// reaches reports whether any function transitively callable from
	// name (same-package closure) mentions a cancellation marker.
	reaches := func(name string) bool {
		seen := map[string]bool{}
		queue := []string{name}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			if seen[n] {
				continue
			}
			seen[n] = true
			info := fns[n]
			if info == nil {
				continue
			}
			if info.direct {
				return true
			}
			for c := range info.calls {
				queue = append(queue, c)
			}
		}
		return false
	}

	var diags []Diagnostic
	for _, name := range order {
		info := fns[name]
		if !isCancelCandidate(p.Name, info.decl) {
			continue
		}
		if !hasLoop(info.decl.Body) {
			continue
		}
		if _, ok := exemptReason(info.decl.Doc, "cancelcheck:exempt"); ok {
			continue
		}
		if reaches(name) {
			continue
		}
		diags = append(diags, p.diag("cancelcheck", info.decl,
			"%s: row loop never polls cancellation; poll stopRequested/stopped amortized or annotate // cancelcheck:exempt <reason>", name))
	}
	return diags
}

// isCancelCandidate decides whether a function is bound by the
// cancellation contract: in ralg, the exec* operator implementations;
// in scj, any function threading the *Stats counters (the kernels).
func isCancelCandidate(pkg string, fd *ast.FuncDecl) bool {
	switch pkg {
	case "ralg":
		return execNameRE.MatchString(fd.Name.Name)
	case "scj":
		for _, field := range fd.Type.Params.List {
			if star, ok := field.Type.(*ast.StarExpr); ok {
				if id, ok := star.X.(*ast.Ident); ok && id.Name == "Stats" {
					return true
				}
			}
		}
	}
	return false
}
