package lint

import (
	"path/filepath"
	"testing"
)

// runFixture fails the test with one error per fixture mismatch.
func runFixture(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	problems, err := CheckFixture(a, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

func TestCancelCheckFixtures(t *testing.T) {
	runFixture(t, CancelCheck, "testdata/cancelcheck/ralg")
	runFixture(t, CancelCheck, "testdata/cancelcheck/scj")
}

func TestAllocCheckFixtures(t *testing.T) {
	runFixture(t, AllocCheck, "testdata/alloccheck/ralg")
	runFixture(t, AllocCheck, "testdata/alloccheck/scj")
}

func TestWaitCheckFixtures(t *testing.T) {
	runFixture(t, WaitCheck, "testdata/waitcheck/sched")
}

func TestXQErrCheckFixtures(t *testing.T) {
	runFixture(t, XQErrCheck, "testdata/xqerrcheck")
}

func TestAdoptCheckFixtures(t *testing.T) {
	runFixture(t, AdoptCheck, "testdata/adoptcheck")
}

func TestRuleCheckFixtures(t *testing.T) {
	runFixture(t, RuleCheck, "testdata/rulecheck/opt")
}

// The analyzers only gate on package names, so a package they do not
// know stays silent.
func TestAnalyzersSkipForeignPackages(t *testing.T) {
	p, err := LoadDir("testdata/xqerrcheck", true)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []*Analyzer{CancelCheck, WaitCheck, AdoptCheck, RuleCheck} {
		if ds := a.Run(p); len(ds) != 0 {
			t.Errorf("%s fired on package %q: %v", a.Name, p.Name, ds)
		}
	}
}

// The repository itself must lint clean: every executor loop polls, is
// reachable from a poll, or carries a justified exemption; no bare
// error-code strings; no adopting constructors. This is the same sweep
// cmd/mxqlint performs in CI, kept in-suite so `go test ./...` catches
// regressions without the extra tool invocation.
func TestRepositoryLintsClean(t *testing.T) {
	root := filepath.Join("..", "..")
	dirs, err := Dirs(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 10 {
		t.Fatalf("suspiciously few Go directories under %s: %v", root, dirs)
	}
	for _, dir := range dirs {
		p, err := LoadDir(dir, false)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		if p == nil {
			continue
		}
		for _, a := range All() {
			for _, d := range a.Run(p) {
				t.Errorf("%s", d)
			}
		}
	}
}
