package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// WaitCheck enforces the scheduler/serving wait contract: anything in
// packages sched or serve that can block on a channel must stay
// cancellable. Concretely:
//
//   - A select with no default clause must have a case that receives
//     from a Done channel (ctx.Done() or a variable holding one), so a
//     queued waiter honors deadline/cancellation.
//   - A bare channel send or receive outside a select blocks
//     unconditionally and is flagged.
//
// Operations that provably cannot block — draining a buffered slot the
// function is known to hold, a listener gate with no request context —
// opt out with an explanatory annotation in the function's doc
// comment:
//
//	// waitcheck:exempt <reason>
//
// The reason is mandatory; a bare marker still fires.
var WaitCheck = &Analyzer{
	Name: "waitcheck",
	Doc:  "scheduler/serving wait points must poll context cancellation (select with a Done case or default) or carry a waitcheck:exempt annotation",
	Run:  runWaitCheck,
}

func runWaitCheck(p *Package) []Diagnostic {
	if p.Name != "sched" && p.Name != "serve" {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			_, exempt := exemptReason(fd.Doc, "waitcheck:exempt")

			// Channel operations that are a select's comm clause are
			// judged as part of that select, not as bare operations.
			commStmts := map[ast.Stmt]bool{}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if sel, ok := n.(*ast.SelectStmt); ok {
					for _, c := range sel.Body.List {
						if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
							commStmts[cc.Comm] = true
						}
					}
				}
				return true
			})

			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if st, ok := n.(ast.Stmt); ok && commStmts[st] {
					return false
				}
				switch x := n.(type) {
				case *ast.SelectStmt:
					if exempt || selectHasDefault(x) || selectPollsDone(x) {
						return true
					}
					diags = append(diags, p.diag("waitcheck", x,
						"%s: select blocks without a default or Done case; honor ctx.Done() or annotate // waitcheck:exempt <reason>", fd.Name.Name))
				case *ast.SendStmt:
					if !exempt {
						diags = append(diags, p.diag("waitcheck", x,
							"%s: bare channel send blocks unconditionally; use a select with ctx.Done() or annotate // waitcheck:exempt <reason>", fd.Name.Name))
					}
				case *ast.UnaryExpr:
					if x.Op == token.ARROW && !exempt {
						diags = append(diags, p.diag("waitcheck", x,
							"%s: bare channel receive blocks unconditionally; use a select with ctx.Done() or annotate // waitcheck:exempt <reason>", fd.Name.Name))
					}
				}
				return true
			})
		}
	}
	return diags
}

// selectHasDefault reports whether the select has a default clause (it
// cannot block).
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// selectPollsDone reports whether any case of the select mentions a
// Done channel: a ctx.Done() call, or an identifier conventionally
// holding one ("done"-named variables).
func selectPollsDone(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		cc, ok := c.(*ast.CommClause)
		if !ok || cc.Comm == nil {
			continue
		}
		found := false
		ast.Inspect(cc.Comm, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				if x.Sel.Name == "Done" {
					found = true
				}
			case *ast.Ident:
				if strings.EqualFold(x.Name, "done") {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
