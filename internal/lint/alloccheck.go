package lint

import (
	"go/ast"
	"regexp"
)

// AllocCheck enforces the executor's memory-governance contract, the
// allocation-side twin of cancelcheck: every operator that materializes
// rows — ralg's exec* implementations and scj's parallel step drivers —
// must account its allocations against the execution's memory budget,
// either directly (charge / chargeTable / chargeFunc / Charge) or by
// calling — transitively, within the package — a function that does.
// Serial scj kernels are exempt by construction: their outputs are
// charged by the ralg operator (or parallel driver) that invoked them,
// which is where the output size is known.
//
// A function whose allocations are provably O(columns) bookkeeping —
// zero-copy column rearrangement, not row materialization — may opt out
// with an explanatory annotation in its doc comment:
//
//	// alloccheck:exempt <reason>
//
// The reason is mandatory; a bare marker still fires.
var AllocCheck = &Analyzer{
	Name: "alloccheck",
	Doc:  "row-materializing operators must charge the memory budget (charge/chargeTable/Charge), reach a charge via same-package calls, or carry an alloccheck:exempt annotation",
	Run:  runAllocCheck,
}

// allocMarkers are the identifiers whose presence means the function
// participates in memory accounting: the MemBudget entry points and the
// executor's charging helpers.
var allocMarkers = map[string]bool{
	"charge":      true,
	"chargeTable": true,
	"chargeFunc":  true,
	"Charge":      true,
}

// scjParDriverRE matches scj's parallel step drivers — the functions
// that own their chunks' output buffers and therefore the charging duty.
var scjParDriverRE = regexp.MustCompile(`^par[A-Z]`)

func runAllocCheck(p *Package) []Diagnostic {
	if p.Name != "ralg" && p.Name != "scj" {
		return nil
	}

	type funcInfo struct {
		decl   *ast.FuncDecl
		direct bool
		calls  map[string]bool
	}
	fns := map[string]*funcInfo{}
	var order []string
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			info := &funcInfo{decl: fd, calls: map[string]bool{}}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.Ident:
					if allocMarkers[x.Name] {
						info.direct = true
					}
				case *ast.SelectorExpr:
					if allocMarkers[x.Sel.Name] {
						info.direct = true
					}
					info.calls[x.Sel.Name] = true
				case *ast.CallExpr:
					if id, ok := x.Fun.(*ast.Ident); ok {
						info.calls[id.Name] = true
					}
				}
				return true
			})
			fns[fd.Name.Name] = info
			order = append(order, fd.Name.Name)
		}
	}

	reaches := func(name string) bool {
		seen := map[string]bool{}
		queue := []string{name}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			if seen[n] {
				continue
			}
			seen[n] = true
			info := fns[n]
			if info == nil {
				continue
			}
			if info.direct {
				return true
			}
			for c := range info.calls {
				queue = append(queue, c)
			}
		}
		return false
	}

	var diags []Diagnostic
	for _, name := range order {
		info := fns[name]
		if !isAllocCandidate(p.Name, info.decl) {
			continue
		}
		if !hasAlloc(info.decl.Body) {
			continue
		}
		if _, ok := exemptReason(info.decl.Doc, "alloccheck:exempt"); ok {
			continue
		}
		if reaches(name) {
			continue
		}
		diags = append(diags, p.diag("alloccheck", info.decl,
			"%s: materializing allocation never charges the memory budget; charge/chargeTable the output or annotate // alloccheck:exempt <reason>", name))
	}
	return diags
}

// isAllocCandidate decides whether a function is bound by the memory
// accounting contract: in ralg, the exec* operator implementations; in
// scj, the parallel step drivers (serial kernels are charged by their
// callers, where output sizes are known).
func isAllocCandidate(pkg string, fd *ast.FuncDecl) bool {
	switch pkg {
	case "ralg":
		return execNameRE.MatchString(fd.Name.Name)
	case "scj":
		if !scjParDriverRE.MatchString(fd.Name.Name) {
			return false
		}
		for _, field := range fd.Type.Params.List {
			if star, ok := field.Type.(*ast.StarExpr); ok {
				if id, ok := star.X.(*ast.Ident); ok && id.Name == "Stats" {
					return true
				}
			}
		}
	}
	return false
}

// hasAlloc reports whether the body contains a materializing allocation:
// a make or append call, including inside function literals.
func hasAlloc(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && (id.Name == "make" || id.Name == "append") {
				found = true
			}
		}
		return !found
	})
	return found
}
