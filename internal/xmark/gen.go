// Package xmark reproduces the XMark benchmark substrate the paper's
// evaluation (§6) is built on: a deterministic generator for the auction
// site documents of Schmidt et al.'s xmlgen, and the twenty benchmark
// queries expressed in the engine's XQuery subset.
//
// Scale factor 1.0 corresponds to xmlgen's ~110 MB document with 25500
// persons, 21750 items, 12000 open and 9750 closed auctions; smaller
// factors scale all entity counts proportionally (the paper evaluates
// f ∈ {0.01 … 100}, i.e. 1.1 MB … 11 GB).
package xmark

import (
	"fmt"
	"io"
	"math/rand"
	"strings"

	"mxq/internal/naive"
	"mxq/internal/store"
)

// Sink consumes the generated document as a stream of events in document
// order. Attributes accompany the Start event.
type Sink interface {
	Start(name string, attrs ...[2]string)
	Text(s string)
	End()
}

// Counts holds the entity counts of one generated document.
type Counts struct {
	Persons        int
	Items          int
	OpenAuctions   int
	ClosedAuctions int
	Categories     int
}

// CountsFor returns the entity counts at the given scale factor.
func CountsFor(factor float64) Counts {
	n := func(base int) int {
		v := int(float64(base) * factor)
		if v < 1 {
			return 1
		}
		return v
	}
	return Counts{
		Persons:        n(25500),
		Items:          n(21750),
		OpenAuctions:   n(12000),
		ClosedAuctions: n(9750),
		Categories:     n(1000),
	}
}

// regions lists the six region elements with their share of the items
// (xmlgen's distribution).
var regions = []struct {
	name  string
	share float64
}{
	{"africa", 0.0255}, {"asia", 0.0920}, {"australia", 0.1011},
	{"europe", 0.2759}, {"namerica", 0.4598}, {"samerica", 0.0457},
}

var words = strings.Fields(`
gold hammer duty liege fairies mean judgment doom bell plague custom
gross festival preparation statue moiety large globe wanton humbly
frightened warmly accuse silly seek purse valiant ribbon strewn treasure
malice abroad calf crown greatness faintly elbow sport leisure attempt
unseen despair holiness path disguised embrace wrinkles butterflies
pardon obscure groan unfold chamber ancient tide cousins mortal
proclaim provoke madam pastime arrows warrant threaten preserver glove
railing breathe savage sovereign garland rotten riot carrion caves
shipwreck bowl grace iron honesty verity lunatic courtier hood cunning
office heaven promise dagger sister drown spirit virtues orchard rage
shepherd remedy dower bridegroom grief herb eye wealth`)

// Generator produces XMark documents deterministically.
type Generator struct {
	rng    *rand.Rand
	counts Counts
	sink   Sink
}

// Generate streams an XMark document with the given scale factor and
// seed into the sink. The same (factor, seed) pair always yields the
// same document.
func Generate(sink Sink, factor float64, seed int64) Counts {
	g := &Generator{rng: rand.New(rand.NewSource(seed)), counts: CountsFor(factor), sink: sink}
	g.site()
	return g.counts
}

func (g *Generator) start(name string, attrs ...[2]string) { g.sink.Start(name, attrs...) }
func (g *Generator) end()                                  { g.sink.End() }
func (g *Generator) text(s string)                         { g.sink.Text(s) }

func (g *Generator) elem(name, content string) {
	g.start(name)
	g.text(content)
	g.end()
}

func (g *Generator) word() string { return words[g.rng.Intn(len(words))] }

func (g *Generator) sentence(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(" ")
		}
		sb.WriteString(g.word())
	}
	return sb.String()
}

func (g *Generator) date() string {
	return fmt.Sprintf("%02d/%02d/%4d", 1+g.rng.Intn(12), 1+g.rng.Intn(28), 1998+g.rng.Intn(4))
}

func (g *Generator) money(max float64) string {
	return fmt.Sprintf("%.2f", g.rng.Float64()*max)
}

func (g *Generator) personRef() string { return fmt.Sprintf("person%d", g.rng.Intn(g.counts.Persons)) }
func (g *Generator) itemRef() string   { return fmt.Sprintf("item%d", g.rng.Intn(g.counts.Items)) }
func (g *Generator) categoryRef() string {
	return fmt.Sprintf("category%d", g.rng.Intn(g.counts.Categories))
}

func (g *Generator) site() {
	g.start("site")
	g.regions()
	g.categories()
	g.catgraph()
	g.people()
	g.openAuctions()
	g.closedAuctions()
	g.end()
}

func (g *Generator) regions() {
	g.start("regions")
	next := 0
	for ri, r := range regions {
		g.start(r.name)
		n := int(r.share * float64(g.counts.Items))
		if ri == len(regions)-1 {
			n = g.counts.Items - next // exact total
		}
		for i := 0; i < n; i++ {
			g.item(next)
			next++
		}
		g.end()
	}
	g.end()
}

func (g *Generator) item(id int) {
	g.start("item", [2]string{"id", fmt.Sprintf("item%d", id)})
	g.elem("location", "United States")
	g.elem("quantity", fmt.Sprintf("%d", 1+g.rng.Intn(5)))
	g.elem("name", g.sentence(2))
	g.start("payment")
	g.text("Creditcard")
	g.end()
	g.description(1)
	g.start("shipping")
	g.text("Will ship internationally")
	g.end()
	for k := g.rng.Intn(3); k >= 0; k-- {
		g.start("incategory", [2]string{"category", g.categoryRef()})
		g.end()
	}
	g.start("mailbox")
	for k := g.rng.Intn(2); k > 0; k-- {
		g.start("mail")
		g.elem("from", g.sentence(2))
		g.elem("to", g.sentence(2))
		g.elem("date", g.date())
		g.start("text")
		g.text(g.sentence(8))
		g.end()
		g.end()
	}
	g.end()
	g.end()
}

// description emits <description> with text or nested parlist content;
// depth 2 guarantees instances of the Q15/Q16 path
// parlist/listitem/parlist/listitem/text/emph/keyword.
func (g *Generator) description(maxDepth int) {
	g.start("description")
	g.descContent(maxDepth)
	g.end()
}

func (g *Generator) descContent(depth int) {
	if depth <= 0 || g.rng.Float64() < 0.6 {
		g.richText()
		return
	}
	g.start("parlist")
	for k := 1 + g.rng.Intn(2); k > 0; k-- {
		g.start("listitem")
		g.descContent(depth - 1)
		g.end()
	}
	g.end()
}

// richText emits a <text> node with occasional bold/keyword/emph inline
// markup (emph may wrap a keyword — the tail of the Q15 path). Adjacent
// text events are combined so the direct store sink and the XML round
// trip produce identical containers.
func (g *Generator) richText() {
	g.start("text")
	lead := g.sentence(3 + g.rng.Intn(6))
	trail := " " + g.sentence(2)
	switch g.rng.Intn(4) {
	case 0:
		g.text(lead)
		g.start("bold")
		g.text(g.word())
		g.end()
		g.text(trail)
	case 1:
		g.text(lead)
		g.start("keyword")
		g.text(g.word())
		g.end()
		g.text(trail)
	case 2:
		g.text(lead)
		g.start("emph")
		g.start("keyword")
		g.text(g.word())
		g.end()
		g.end()
		g.text(trail)
	default:
		g.text(lead + trail)
	}
	g.end()
}

func (g *Generator) categories() {
	g.start("categories")
	for i := 0; i < g.counts.Categories; i++ {
		g.start("category", [2]string{"id", fmt.Sprintf("category%d", i)})
		g.elem("name", g.sentence(2))
		g.description(0)
		g.end()
	}
	g.end()
}

func (g *Generator) catgraph() {
	g.start("catgraph")
	for i := 0; i < g.counts.Categories; i++ {
		g.start("edge", [2]string{"from", g.categoryRef()}, [2]string{"to", g.categoryRef()})
		g.end()
	}
	g.end()
}

func (g *Generator) people() {
	g.start("people")
	for i := 0; i < g.counts.Persons; i++ {
		g.start("person", [2]string{"id", fmt.Sprintf("person%d", i)})
		g.elem("name", g.sentence(2))
		g.elem("emailaddress", fmt.Sprintf("mailto:%s@%s.com", g.word(), g.word()))
		if g.rng.Float64() < 0.5 {
			g.elem("phone", fmt.Sprintf("+%d (%d) %d", g.rng.Intn(99), g.rng.Intn(999), g.rng.Intn(9999999)))
		}
		if g.rng.Float64() < 0.6 {
			g.start("address")
			g.elem("street", fmt.Sprintf("%d %s St", 1+g.rng.Intn(99), g.word()))
			g.elem("city", g.word())
			g.elem("country", "United States")
			g.elem("zipcode", fmt.Sprintf("%d", 10000+g.rng.Intn(89999)))
			g.end()
		}
		if g.rng.Float64() < 0.5 {
			g.elem("homepage", fmt.Sprintf("http://www.%s.com/~%s", g.word(), g.word()))
		}
		if g.rng.Float64() < 0.5 {
			g.elem("creditcard", fmt.Sprintf("%d %d %d %d", 1000+g.rng.Intn(8999),
				1000+g.rng.Intn(8999), 1000+g.rng.Intn(8999), 1000+g.rng.Intn(8999)))
		}
		if g.rng.Float64() < 0.8 {
			g.start("profile", [2]string{"income", g.money(200000)})
			for k := g.rng.Intn(4); k > 0; k-- {
				g.start("interest", [2]string{"category", g.categoryRef()})
				g.end()
			}
			if g.rng.Float64() < 0.5 {
				g.elem("education", "Graduate School")
			}
			if g.rng.Float64() < 0.7 {
				g.elem("gender", []string{"male", "female"}[g.rng.Intn(2)])
			}
			g.elem("business", []string{"Yes", "No"}[g.rng.Intn(2)])
			if g.rng.Float64() < 0.6 {
				g.elem("age", fmt.Sprintf("%d", 18+g.rng.Intn(60)))
			}
			g.end()
		}
		if g.rng.Float64() < 0.4 {
			g.start("watches")
			for k := g.rng.Intn(3); k > 0; k-- {
				g.start("watch", [2]string{"open_auction", fmt.Sprintf("open%d", g.rng.Intn(g.counts.OpenAuctions))})
				g.end()
			}
			g.end()
		}
		g.end()
	}
	g.end()
}

func (g *Generator) openAuctions() {
	g.start("open_auctions")
	for i := 0; i < g.counts.OpenAuctions; i++ {
		g.start("open_auction", [2]string{"id", fmt.Sprintf("open%d", i)})
		initial := g.rng.Float64() * 100
		g.elem("initial", fmt.Sprintf("%.2f", initial))
		if g.rng.Float64() < 0.4 {
			g.elem("reserve", fmt.Sprintf("%.2f", initial*1.2))
		}
		cur := initial
		for k := g.rng.Intn(5); k > 0; k-- {
			g.start("bidder")
			g.elem("date", g.date())
			g.elem("time", fmt.Sprintf("%02d:%02d:%02d", g.rng.Intn(24), g.rng.Intn(60), g.rng.Intn(60)))
			g.start("personref", [2]string{"person", g.personRef()})
			g.end()
			inc := float64(1+g.rng.Intn(12)) * 1.5
			cur += inc
			g.elem("increase", fmt.Sprintf("%.2f", inc))
			g.end()
		}
		g.elem("current", fmt.Sprintf("%.2f", cur))
		if g.rng.Float64() < 0.5 {
			g.elem("privacy", "Yes")
		}
		g.start("itemref", [2]string{"item", g.itemRef()})
		g.end()
		g.start("seller", [2]string{"person", g.personRef()})
		g.end()
		g.annotation()
		g.elem("quantity", fmt.Sprintf("%d", 1+g.rng.Intn(5)))
		g.elem("type", "Regular")
		g.start("interval")
		g.elem("start", g.date())
		g.elem("end", g.date())
		g.end()
		g.end()
	}
	g.end()
}

func (g *Generator) annotation() {
	g.start("annotation")
	g.start("author", [2]string{"person", g.personRef()})
	g.end()
	g.description(2)
	g.elem("happiness", fmt.Sprintf("%d", 1+g.rng.Intn(10)))
	g.end()
}

func (g *Generator) closedAuctions() {
	g.start("closed_auctions")
	for i := 0; i < g.counts.ClosedAuctions; i++ {
		g.start("closed_auction")
		g.start("seller", [2]string{"person", g.personRef()})
		g.end()
		g.start("buyer", [2]string{"person", g.personRef()})
		g.end()
		g.start("itemref", [2]string{"item", g.itemRef()})
		g.end()
		g.elem("price", g.money(200))
		g.elem("date", g.date())
		g.elem("quantity", fmt.Sprintf("%d", 1+g.rng.Intn(5)))
		g.elem("type", "Regular")
		g.annotation()
		g.end()
	}
	g.end()
}

// --- sinks ---------------------------------------------------------------

// StoreSink shreds generated events directly into a container.
type StoreSink struct{ B *store.Builder }

// NewStoreContainer generates an XMark document straight into a fresh
// container (bypassing XML text).
func NewStoreContainer(name string, factor float64, seed int64) *store.Container {
	b := store.NewBuilder(name)
	b.StartDoc()
	Generate(&StoreSink{B: b}, factor, seed)
	b.End()
	c, err := b.Done()
	if err != nil {
		panic("xmark: generator produced unbalanced events: " + err.Error())
	}
	return c
}

// BuildShardedCollection generates ndocs XMark documents straight into a
// sharded collection named name (factor per document; document i is named
// "<name>-<i>.xml" and generated from seed+i, so every document differs).
// The returned seed map lets a mirroring oracle regenerate each document
// by name. Shard containers are built concurrently.
func BuildShardedCollection(name string, ndocs, shards int, factor float64, seed int64) (*store.ShardedPool, map[string]int64) {
	docNames := make([]string, ndocs)
	seeds := make(map[string]int64, ndocs)
	for i := 0; i < ndocs; i++ {
		docNames[i] = fmt.Sprintf("%s-%d.xml", name, i)
		seeds[docNames[i]] = seed + int64(i)
	}
	sp, err := store.BuildSharded(name, shards, docNames, func(d string, b *store.Builder) error {
		b.StartDoc()
		Generate(&StoreSink{B: b}, factor, seeds[d])
		b.End()
		return nil
	})
	if err != nil {
		panic("xmark: sharded generation failed: " + err.Error())
	}
	return sp, seeds
}

// Start implements Sink.
func (s *StoreSink) Start(name string, attrs ...[2]string) {
	s.B.StartElem(name)
	for _, a := range attrs {
		s.B.Attr(a[0], a[1])
	}
}

// Text implements Sink.
func (s *StoreSink) Text(t string) { s.B.Text(t) }

// End implements Sink.
func (s *StoreSink) End() { s.B.End() }

// DOMSink builds a naive-interpreter DOM.
type DOMSink struct{ B *naive.Builder }

// NewDOM generates an XMark document as a naive-interpreter DOM tree.
func NewDOM(factor float64, seed int64, ord *int64) *naive.Node {
	b := naive.NewBuilder(ord)
	b.StartDoc()
	Generate(&DOMSink{B: b}, factor, seed)
	b.End()
	return b.Root()
}

// Start implements Sink.
func (s *DOMSink) Start(name string, attrs ...[2]string) {
	s.B.StartElem(name)
	for _, a := range attrs {
		s.B.Attr(a[0], a[1])
	}
}

// Text implements Sink.
func (s *DOMSink) Text(t string) { s.B.Text(t) }

// End implements Sink.
func (s *DOMSink) End() { s.B.End() }

// XMLSink serializes generated events as XML text.
type XMLSink struct {
	W     io.Writer
	err   error
	esc   *strings.Replacer
	stack []string
}

// NewXMLSink returns a sink writing XML text to w.
func NewXMLSink(w io.Writer) *XMLSink {
	return &XMLSink{W: w, esc: strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")}
}

// WriteXML generates an XMark document as XML text.
func WriteXML(w io.Writer, factor float64, seed int64) error {
	s := NewXMLSink(w)
	Generate(s, factor, seed)
	return s.err
}

func (s *XMLSink) write(str string) {
	if s.err == nil {
		_, s.err = io.WriteString(s.W, str)
	}
}

// Start implements Sink.
func (s *XMLSink) Start(name string, attrs ...[2]string) {
	s.write("<")
	s.write(name)
	for _, a := range attrs {
		s.write(" ")
		s.write(a[0])
		s.write(`="`)
		s.write(s.esc.Replace(a[1]))
		s.write(`"`)
	}
	s.write(">")
	s.stack = append(s.stack, name)
}

// Text implements Sink.
func (s *XMLSink) Text(t string) { s.write(s.esc.Replace(t)) }

// End implements Sink.
func (s *XMLSink) End() {
	name := s.stack[len(s.stack)-1]
	s.stack = s.stack[:len(s.stack)-1]
	s.write("</")
	s.write(name)
	s.write(">")
}

// Err returns the first write error.
func (s *XMLSink) Err() error { return s.err }
