package xmark

import (
	"bytes"
	"strings"
	"testing"

	"mxq/internal/core"
	"mxq/internal/naive"
	"mxq/internal/store"
)

func TestGeneratorDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteXML(&a, 0.001, 42); err != nil {
		t.Fatal(err)
	}
	if err := WriteXML(&b, 0.001, 42); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("generator is not deterministic")
	}
	var c bytes.Buffer
	if err := WriteXML(&c, 0.001, 43); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different seeds produced identical documents")
	}
}

func TestGeneratorWellFormedAndSinksAgree(t *testing.T) {
	var xmlText bytes.Buffer
	if err := WriteXML(&xmlText, 0.002, 7); err != nil {
		t.Fatal(err)
	}
	// shredding the XML text must equal building the container directly
	viaText, err := store.Shred("x.xml", bytes.NewReader(xmlText.Bytes()), false)
	if err != nil {
		t.Fatalf("generated document is not well-formed: %v", err)
	}
	direct := NewStoreContainer("x.xml", 0.002, 7)
	if viaText.Len() != direct.Len() {
		t.Fatalf("sink mismatch: %d rows via text, %d direct", viaText.Len(), direct.Len())
	}
	var s1, s2 strings.Builder
	store.Serialize(&s1, viaText, 0)
	store.Serialize(&s2, direct, 0)
	if s1.String() != s2.String() {
		t.Fatal("text and direct store sinks disagree")
	}
	if err := direct.Validate(); err != nil {
		t.Fatalf("direct container invalid: %v", err)
	}
}

func TestGeneratedStructure(t *testing.T) {
	eng := core.New(core.DefaultConfig())
	eng.LoadContainer("auction.xml", NewStoreContainer("auction.xml", 0.003, 1))
	counts := CountsFor(0.003)
	checks := map[string]int{
		`count(/site/people/person)`:                  counts.Persons,
		`count(/site/regions//item)`:                  counts.Items,
		`count(/site/open_auctions/open_auction)`:     counts.OpenAuctions,
		`count(/site/closed_auctions/closed_auction)`: counts.ClosedAuctions,
		`count(/site/categories/category)`:            counts.Categories,
		`count(/site/people/person[@id = "person0"])`: 1,
	}
	for q, want := range checks {
		got, err := eng.QueryString(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		if got != itoa(want) {
			t.Errorf("%s = %s, want %d", q, got, want)
		}
	}
	// the deep Q15 path must have instances
	got, err := eng.QueryString(`count(/site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword)`)
	if err != nil {
		t.Fatal(err)
	}
	if got == "0" {
		t.Error("generator produced no deep parlist structures for Q15")
	}
	// "gold" must occur in some item description (Q14)
	got, err = eng.QueryString(`count(for $i in /site//item where contains(string(exactly-one($i/description)), "gold") return $i)`)
	if err != nil {
		t.Fatal(err)
	}
	if got == "0" {
		t.Error(`generator produced no "gold" descriptions for Q14`)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestXMarkQueriesDifferential is the flagship correctness test: all 20
// XMark queries evaluated by the relational engine (full optimizations
// and ablation configurations) must agree with the naive interpreter.
func TestXMarkQueriesDifferential(t *testing.T) {
	const factor, seed = 0.002, 11
	cont := NewStoreContainer("auction.xml", factor, seed)

	oracle := naive.New()
	oracle.LoadContainer("auction.xml", cont)

	cfgs := map[string]core.Config{
		"full":      core.DefaultConfig(),
		"nojoinrec": func() core.Config { c := core.DefaultConfig(); c.Compiler.JoinRecognition = false; return c }(),
		"noorder":   func() core.Config { c := core.DefaultConfig(); c.OrderAware = false; return c }(),
	}
	want := make([]string, 20)
	for i := 0; i < 20; i++ {
		w, err := oracle.QueryString(Queries[i])
		if err != nil {
			t.Fatalf("oracle failed on Q%d: %v", i+1, err)
		}
		want[i] = w
	}
	for cname, cfg := range cfgs {
		eng := core.New(cfg)
		eng.LoadContainer("auction.xml", cont)
		for i := 0; i < 20; i++ {
			got, err := eng.QueryString(Queries[i])
			if err != nil {
				t.Errorf("[%s] Q%d: %v", cname, i+1, err)
				continue
			}
			if got != want[i] {
				g, w := got, want[i]
				if len(g) > 400 {
					g = g[:400] + "..."
				}
				if len(w) > 400 {
					w = w[:400] + "..."
				}
				t.Errorf("[%s] Q%d mismatch:\n got  %s\n want %s", cname, i+1, g, w)
			}
		}
	}
}
