package xmark

// Queries holds the twenty XMark benchmark queries (Schmidt et al., VLDB
// 2002) in the engine's XQuery subset. They follow the published query
// set; the only adaptations are the use of absolute paths against the
// context document (instead of a bound document variable) and plain
// element names in Q10's output.
var Queries = [20]string{
	// Q1 — exact match: the name of the person with id person0.
	`for $b in /site/people/person[@id = "person0"] return $b/name/text()`,

	// Q2 — ordered access: the initial increase of every open auction.
	`for $b in /site/open_auctions/open_auction
	 return <increase>{$b/bidder[1]/increase/text()}</increase>`,

	// Q3 — tail access: auctions whose first bid doubled.
	`for $b in /site/open_auctions/open_auction
	 where zero-or-one($b/bidder[1]/increase/text()) * 2 <= $b/bidder[last()]/increase/text()
	 return <increase first="{$b/bidder[1]/increase/text()}"
	                  last="{$b/bidder[last()]/increase/text()}"/>`,

	// Q4 — document order: auctions where person20 bid before person51.
	`for $b in /site/open_auctions/open_auction
	 where some $pr1 in $b/bidder/personref[@person = "person20"],
	            $pr2 in $b/bidder/personref[@person = "person51"]
	       satisfies $pr1 << $pr2
	 return <history>{$b/initial/text()}</history>`,

	// Q5 — exact match on values: how many sold items cost more than 40.
	`count(for $i in /site/closed_auctions/closed_auction
	       where $i/price/text() >= 40
	       return $i/price)`,

	// Q6 — regular path expressions: items per region.
	`for $b in /site/regions return count($b//item)`,

	// Q7 — regular path expressions: all pieces of prose.
	`for $p in /site
	 return count($p//description) + count($p//annotation) + count($p//emailaddress)`,

	// Q8 — value joins: items bought per person.
	`for $p in /site/people/person
	 let $a := for $t in /site/closed_auctions/closed_auction
	           where $t/buyer/@person = $p/@id
	           return $t
	 return <item person="{$p/name/text()}">{count($a)}</item>`,

	// Q9 — value joins with two joins: European items bought per person.
	`for $p in /site/people/person
	 let $a := for $t in /site/closed_auctions/closed_auction
	           where $p/@id = $t/buyer/@person
	           return let $n := for $t2 in /site/regions/europe/item
	                            where $t/itemref/@item = $t2/@id
	                            return $t2
	                  return <item>{$n/name/text()}</item>
	 return <person name="{$p/name/text()}">{$a}</person>`,

	// Q10 — construction: group persons by interest category.
	`for $i in distinct-values(/site/people/person/profile/interest/@category)
	 let $p := for $t in /site/people/person
	           where $t/profile/interest/@category = $i
	           return <personne>
	                    <statistiques>
	                      <sexe>{$t/profile/gender/text()}</sexe>
	                      <age>{$t/profile/age/text()}</age>
	                      <education>{$t/profile/education/text()}</education>
	                      <revenu>{$t/profile/@income}</revenu>
	                    </statistiques>
	                    <coordonnees>
	                      <nom>{$t/name/text()}</nom>
	                      <ville>{$t/address/city/text()}</ville>
	                      <pays>{$t/address/country/text()}</pays>
	                      <courrier>{$t/emailaddress/text()}</courrier>
	                    </coordonnees>
	                    <cartePaiement>{$t/creditcard/text()}</cartePaiement>
	                  </personne>
	 return <categorie><id>{$i}</id>{$p}</categorie>`,

	// Q11 — theta join: open auctions a person's income covers 5000-fold.
	`for $p in /site/people/person
	 let $l := for $i in /site/open_auctions/open_auction/initial
	           where $p/profile/@income > 5000 * exactly-one($i/text())
	           return $i
	 return <items name="{$p/name/text()}">{count($l)}</items>`,

	// Q12 — theta join with range restriction.
	`for $p in /site/people/person
	 let $l := for $i in /site/open_auctions/open_auction/initial
	           where $p/profile/@income > 5000 * exactly-one($i/text())
	           return $i
	 where $p/profile/@income > 50000
	 return <items person="{$p/profile/@income}">{count($l)}</items>`,

	// Q13 — reconstruction: Australian items with their descriptions.
	`for $i in /site/regions/australia/item
	 return <item name="{$i/name/text()}">{$i/description}</item>`,

	// Q14 — full text flavour: items whose description mentions gold.
	`for $i in /site//item
	 where contains(string(exactly-one($i/description)), "gold")
	 return $i/name/text()`,

	// Q15 — long path traversal.
	`for $a in /site/closed_auctions/closed_auction/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword/text()
	 return <text>{$a}</text>`,

	// Q16 — long path in a condition.
	`for $a in /site/closed_auctions/closed_auction
	 where not(empty($a/annotation/description/parlist/listitem/parlist/listitem/text/emph/keyword/text()))
	 return <person id="{$a/seller/@person}"/>`,

	// Q17 — missing elements: persons without a homepage.
	`for $p in /site/people/person
	 where empty($p/homepage/text())
	 return <person name="{$p/name/text()}"/>`,

	// Q18 — user-defined functions: currency conversion of reserves.
	`declare function local:convert($v) { 2.20371 * $v };
	 for $i in /site/open_auctions/open_auction
	 return local:convert(zero-or-one($i/reserve/text()))`,

	// Q19 — order by: items sorted by location.
	`for $b in /site/regions//item
	 let $k := $b/name/text()
	 order by zero-or-one($b/location) ascending
	 return <item name="{$k}">{$b/location/text()}</item>`,

	// Q20 — aggregation with ranges: income brackets.
	`<result>
	   <preferred>{count(/site/people/person/profile[@income >= 100000])}</preferred>
	   <standard>{count(/site/people/person/profile[@income < 100000 and @income >= 30000])}</standard>
	   <challenge>{count(/site/people/person/profile[@income < 30000])}</challenge>
	   <na>{count(for $p in /site/people/person where empty($p/profile/@income) return $p)}</na>
	 </result>`,
}

// Query returns the 1-based XMark query text.
func Query(n int) string { return Queries[n-1] }
