package xqp

import (
	"fmt"
	"strings"
)

// tokKind enumerates lexical token kinds.
type tokKind uint8

const (
	tEOF  tokKind = iota
	tName         // NCName or QName (prefix:local)
	tVar          // $name
	tInt
	tDouble
	tString
	tLParen
	tRParen
	tLBracket
	tRBracket
	tLBrace
	tRBrace
	tComma
	tSemi
	tSlash
	tSlashSlash
	tAt
	tDot
	tDotDot
	tStar
	tPlus
	tMinus
	tPipe
	tEq
	tNe
	tLt
	tLe
	tGt
	tGe
	tLtLt
	tGtGt
	tAssign // :=
	tAxis   // ::
	tQuestion
)

type token struct {
	kind tokKind
	text string
	i    int64
	f    float64
	pos  int // byte offset of token start
}

func (t token) String() string {
	switch t.kind {
	case tEOF:
		return "end of query"
	case tName, tString:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.text
	}
}

// lexer tokenizes XQuery text. The parser can also take direct control of
// the input (via pos/src) to read direct element constructors, then
// resume token scanning with setPos.
type lexer struct {
	src string
	pos int
	// one-token lookahead
	peeked  bool
	nextTok token
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func (l *lexer) errf(pos int, format string, args ...interface{}) error {
	line, col := 1, 1
	for i := 0; i < pos && i < len(l.src); i++ {
		if l.src[i] == '\n' {
			line, col = line+1, 1
		} else {
			col++
		}
	}
	return fmt.Errorf("xquery parse error at %d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

// setPos repositions the scanner (used after constructor parsing).
func (l *lexer) setPos(p int) {
	l.pos = p
	l.peeked = false
}

func (l *lexer) peek() (token, error) {
	if !l.peeked {
		t, err := l.scan()
		if err != nil {
			return token{}, err
		}
		l.nextTok = t
		l.peeked = true
	}
	return l.nextTok, nil
}

func (l *lexer) next() (token, error) {
	t, err := l.peek()
	if err != nil {
		return token{}, err
	}
	l.peeked = false
	return t, nil
}

func (l *lexer) skipSpaceAndComments() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '(' && l.pos+1 < len(l.src) && l.src[l.pos+1] == ':':
			depth := 1
			i := l.pos + 2
			for i < len(l.src) && depth > 0 {
				if i+1 < len(l.src) && l.src[i] == '(' && l.src[i+1] == ':' {
					depth++
					i += 2
				} else if i+1 < len(l.src) && l.src[i] == ':' && l.src[i+1] == ')' {
					depth--
					i += 2
				} else {
					i++
				}
			}
			if depth > 0 {
				return l.errf(l.pos, "unterminated comment")
			}
			l.pos = i
		default:
			return nil
		}
	}
	return nil
}

func isNameStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c == '-' || c == '.' || (c >= '0' && c <= '9')
}

// scanName reads an NCName starting at pos.
func (l *lexer) scanName() string {
	start := l.pos
	for l.pos < len(l.src) && isNameChar(l.src[l.pos]) {
		l.pos++
	}
	return l.src[start:l.pos]
}

func (l *lexer) scan() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	if l.pos >= len(l.src) {
		return token{kind: tEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	mk := func(k tokKind, text string) token { return token{kind: k, text: text, pos: start} }
	switch {
	case isNameStart(c):
		name := l.scanName()
		// QName: name ":" name — but not "::" (axis) and not ":=".
		if l.pos+1 < len(l.src) && l.src[l.pos] == ':' && isNameStart(l.src[l.pos+1]) {
			l.pos++
			name = name + ":" + l.scanName()
		}
		return mk(tName, name), nil
	case c >= '0' && c <= '9', c == '.' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
		return l.scanNumber()
	case c == '"' || c == '\'':
		return l.scanString(c)
	}
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "//":
		l.pos += 2
		return mk(tSlashSlash, "//"), nil
	case "!=":
		l.pos += 2
		return mk(tNe, "!="), nil
	case "<=":
		l.pos += 2
		return mk(tLe, "<="), nil
	case ">=":
		l.pos += 2
		return mk(tGe, ">="), nil
	case "<<":
		l.pos += 2
		return mk(tLtLt, "<<"), nil
	case ">>":
		l.pos += 2
		return mk(tGtGt, ">>"), nil
	case ":=":
		l.pos += 2
		return mk(tAssign, ":="), nil
	case "::":
		l.pos += 2
		return mk(tAxis, "::"), nil
	case "..":
		l.pos += 2
		return mk(tDotDot, ".."), nil
	}
	l.pos++
	switch c {
	case '(':
		return mk(tLParen, "("), nil
	case ')':
		return mk(tRParen, ")"), nil
	case '[':
		return mk(tLBracket, "["), nil
	case ']':
		return mk(tRBracket, "]"), nil
	case '{':
		return mk(tLBrace, "{"), nil
	case '}':
		return mk(tRBrace, "}"), nil
	case ',':
		return mk(tComma, ","), nil
	case ';':
		return mk(tSemi, ";"), nil
	case '/':
		return mk(tSlash, "/"), nil
	case '@':
		return mk(tAt, "@"), nil
	case '.':
		return mk(tDot, "."), nil
	case '*':
		return mk(tStar, "*"), nil
	case '+':
		return mk(tPlus, "+"), nil
	case '-':
		return mk(tMinus, "-"), nil
	case '|':
		return mk(tPipe, "|"), nil
	case '=':
		return mk(tEq, "="), nil
	case '<':
		return mk(tLt, "<"), nil
	case '>':
		return mk(tGt, ">"), nil
	case '?':
		return mk(tQuestion, "?"), nil
	case '$':
		if l.pos < len(l.src) && isNameStart(l.src[l.pos]) {
			name := l.scanName()
			if l.pos+1 < len(l.src) && l.src[l.pos] == ':' && isNameStart(l.src[l.pos+1]) {
				l.pos++
				name = name + ":" + l.scanName()
			}
			return token{kind: tVar, text: name, pos: start}, nil
		}
		return token{}, l.errf(start, "expected variable name after $")
	}
	return token{}, l.errf(start, "unexpected character %q", string(c))
}

func (l *lexer) scanNumber() (token, error) {
	start := l.pos
	seenDot := false
	seenExp := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c >= '0' && c <= '9':
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			// ".." must not be consumed
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '.' {
				goto done
			}
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			goto done
		}
	}
done:
	text := l.src[start:l.pos]
	if !seenDot && !seenExp {
		var v int64
		for _, ch := range text {
			v = v*10 + int64(ch-'0')
		}
		return token{kind: tInt, text: text, i: v, pos: start}, nil
	}
	var f float64
	if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
		return token{}, l.errf(start, "bad numeric literal %q", text)
	}
	return token{kind: tDouble, text: text, f: f, pos: start}, nil
}

func (l *lexer) scanString(quote byte) (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			// doubled quote escapes itself
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
				sb.WriteByte(quote)
				l.pos += 2
				continue
			}
			l.pos++
			return token{kind: tString, text: sb.String(), pos: start}, nil
		}
		if c == '&' {
			ent, n, err := scanEntity(l.src[l.pos:])
			if err != nil {
				return token{}, l.errf(l.pos, "%v", err)
			}
			sb.WriteString(ent)
			l.pos += n
			continue
		}
		sb.WriteByte(c)
		l.pos++
	}
	return token{}, l.errf(start, "unterminated string literal")
}

// scanEntity decodes a leading XML entity reference.
func scanEntity(s string) (string, int, error) {
	for ent, r := range map[string]string{
		"&lt;": "<", "&gt;": ">", "&amp;": "&", "&quot;": `"`, "&apos;": "'",
	} {
		if strings.HasPrefix(s, ent) {
			return r, len(ent), nil
		}
	}
	return "", 0, fmt.Errorf("unknown entity reference")
}
