// Package xqp implements the XQuery parser of the engine: a hand-written
// lexer and recursive-descent parser covering the language subset the
// paper's system exercises — FLWOR expressions (for/at/let/where/order
// by/return), quantified and conditional expressions, full path syntax
// with all axes and predicates, general/value/node comparisons,
// arithmetic, direct element constructors with enclosed expressions, and
// user-defined functions declared in the prolog.
package xqp

import "fmt"

// Expr is an XQuery expression AST node.
type Expr interface{ exprNode() }

// Module is a parsed query: prolog function and variable declarations
// plus the body.
type Module struct {
	Funcs []*FuncDecl
	Vars  []*VarDecl
	Body  Expr
}

// FuncDecl is a prolog user-defined function declaration.
type FuncDecl struct {
	Name   string
	Params []string
	Body   Expr
}

// VarDecl is a prolog variable declaration:
//
//	declare variable $x := Expr;           (global let)
//	declare variable $x external;          (required query parameter)
//	declare variable $x external := Expr;  (parameter with default)
//
// External declarations are the parameters of a prepared query: their
// values are supplied as bindings at execution time, so one compiled
// plan serves every binding. Init is nil for an external declaration
// without a default.
type VarDecl struct {
	Name     string
	External bool
	Init     Expr
}

// LitKind discriminates literal kinds.
type LitKind uint8

// Literal kinds.
const (
	LitInt LitKind = iota
	LitDouble
	LitString
)

// Literal is a numeric or string literal.
type Literal struct {
	Kind LitKind
	I    int64
	F    float64
	S    string
}

// VarRef references a bound variable ($name).
type VarRef struct{ Name string }

// ContextItem is the "." expression.
type ContextItem struct{}

// Seq is the comma operator: sequence concatenation.
type Seq struct{ Items []Expr }

// EmptySeq is the "()" expression.
type EmptySeq struct{}

// ClauseKind discriminates FLWOR clauses.
type ClauseKind uint8

// FLWOR clause kinds.
const (
	ClauseFor ClauseKind = iota
	ClauseLet
	ClauseWhere
	ClauseOrder
)

// Clause is one FLWOR clause.
type Clause struct {
	Kind ClauseKind
	Var  string // for/let variable
	Pos  string // positional variable of "for $v at $p" ("" if absent)
	Expr Expr   // binding sequence / let value / where condition
	Keys []OrderKey
}

// OrderKey is one "order by" key.
type OrderKey struct {
	Expr Expr
	Desc bool
}

// FLWOR is a for/let/where/order-by/return expression.
type FLWOR struct {
	Clauses []Clause
	Return  Expr
}

// Quantified is a some/every expression.
type Quantified struct {
	Every     bool
	Vars      []string
	Seqs      []Expr
	Satisfies Expr
}

// If is a conditional expression.
type If struct{ Cond, Then, Else Expr }

// BinOp enumerates binary operators.
type BinOp uint8

// Binary operators.
const (
	OpOr BinOp = iota
	OpAnd
	// general comparisons (existential)
	OpGenEq
	OpGenNe
	OpGenLt
	OpGenLe
	OpGenGt
	OpGenGe
	// value comparisons
	OpValEq
	OpValNe
	OpValLt
	OpValLe
	OpValGt
	OpValGe
	// node comparisons
	OpIs
	OpBefore // <<
	OpAfter  // >>
	// arithmetic
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpIDiv
	OpMod
	// sequences
	OpRange // to
	OpUnion // |
)

func (op BinOp) String() string {
	names := map[BinOp]string{
		OpOr: "or", OpAnd: "and", OpGenEq: "=", OpGenNe: "!=", OpGenLt: "<",
		OpGenLe: "<=", OpGenGt: ">", OpGenGe: ">=", OpValEq: "eq", OpValNe: "ne",
		OpValLt: "lt", OpValLe: "le", OpValGt: "gt", OpValGe: "ge", OpIs: "is",
		OpBefore: "<<", OpAfter: ">>", OpAdd: "+", OpSub: "-", OpMul: "*",
		OpDiv: "div", OpIDiv: "idiv", OpMod: "mod", OpRange: "to", OpUnion: "|",
	}
	if s, ok := names[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Binary is a binary operator expression.
type Binary struct {
	Op   BinOp
	L, R Expr
}

// Unary is arithmetic negation.
type Unary struct{ X Expr }

// Axis enumerates the XPath axes of the surface syntax (including the
// attribute axis, which the relational layer treats separately).
type Axis uint8

// XPath axes.
const (
	AxisChild Axis = iota
	AxisDescendant
	AxisDescendantOrSelf
	AxisSelf
	AxisParent
	AxisAncestor
	AxisAncestorOrSelf
	AxisFollowing
	AxisPreceding
	AxisFollowingSibling
	AxisPrecedingSibling
	AxisAttribute
)

var axisNames = map[string]Axis{
	"child": AxisChild, "descendant": AxisDescendant,
	"descendant-or-self": AxisDescendantOrSelf, "self": AxisSelf,
	"parent": AxisParent, "ancestor": AxisAncestor,
	"ancestor-or-self": AxisAncestorOrSelf, "following": AxisFollowing,
	"preceding": AxisPreceding, "following-sibling": AxisFollowingSibling,
	"preceding-sibling": AxisPrecedingSibling, "attribute": AxisAttribute,
}

// TestKind is a node test kind in the surface syntax.
type TestKind uint8

// Node test kinds.
const (
	TestName TestKind = iota // element (or attribute) name test, possibly "*"
	TestAnyNode
	TestText
	TestComment
	TestPI
	TestDocNode
)

// NodeTest is a step's node test.
type NodeTest struct {
	Kind TestKind
	Name string // for TestName ("" means "*")
}

// Step is one step of a path expression: either a primary expression
// (first step) or an axis step, each with optional predicates.
type Step struct {
	Expr  Expr // non-nil for primary-expression steps
	Axis  Axis
	Test  NodeTest
	Preds []Expr
}

// Path is a path expression. Absolute paths (leading "/") start at the
// root of the context document.
type Path struct {
	Absolute bool
	Steps    []Step
}

// Call is a function call (built-in or user-defined).
type Call struct {
	Name string
	Args []Expr
}

// AttrCtor is one attribute of a direct element constructor; its value is
// a concatenation of string literals and enclosed expressions.
type AttrCtor struct {
	Name  string
	Parts []Expr
}

// ElemCtor is a direct element constructor.
type ElemCtor struct {
	Name    string
	Attrs   []AttrCtor
	Content []Expr // literal text (Literal string), enclosed exprs, nested constructors
}

func (*Literal) exprNode()     {}
func (*VarRef) exprNode()      {}
func (*ContextItem) exprNode() {}
func (*Seq) exprNode()         {}
func (*EmptySeq) exprNode()    {}
func (*FLWOR) exprNode()       {}
func (*Quantified) exprNode()  {}
func (*If) exprNode()          {}
func (*Binary) exprNode()      {}
func (*Unary) exprNode()       {}
func (*Path) exprNode()        {}
func (*Call) exprNode()        {}
func (*ElemCtor) exprNode()    {}

// StaticSingleton reports whether e is statically known to evaluate to
// exactly one item: literals, arithmetic/negation, and direct element
// constructors. Both engines use this classification to type external
// variable declarations: when a declaration's default expression is a
// static singleton, binding a multi-item sequence to that variable is
// the type error XPTY0004 (the declared parameter implies a single
// item). The check is deliberately conservative — expressions whose
// cardinality is only known at run time report false and accept any
// binding.
func StaticSingleton(e Expr) bool {
	switch x := e.(type) {
	case *Literal, *ElemCtor:
		return true
	case *Unary:
		return StaticSingleton(x.X)
	case *Binary:
		switch x.Op {
		case OpAdd, OpSub, OpMul, OpDiv, OpIDiv, OpMod:
			return StaticSingleton(x.L) && StaticSingleton(x.R)
		}
	case *Seq:
		return len(x.Items) == 1 && StaticSingleton(x.Items[0])
	}
	return false
}

// PredIsPositional classifies a predicate expression as positional: a
// statically numeric expression built from numeric literals, last(),
// position(), and arithmetic over those. Both the relational compiler and
// the naive interpreter use this static classification, so a predicate
// whose value only turns out to be numeric at run time is treated as an
// effective-boolean-value filter by both engines (a documented deviation
// from the dynamic rule of the XQuery specification).
func PredIsPositional(e Expr) bool {
	switch x := e.(type) {
	case *Literal:
		return x.Kind == LitInt || x.Kind == LitDouble
	case *Call:
		return x.Name == "last" || x.Name == "position"
	case *Binary:
		switch x.Op {
		case OpAdd, OpSub, OpMul, OpDiv, OpIDiv, OpMod:
			return PredIsPositional(x.L) && PredIsPositional(x.R)
		}
	case *Unary:
		return PredIsPositional(x.X)
	}
	return false
}

// PredUsesPosition reports whether a predicate is position-sensitive in
// any form: a bare positional predicate (PredIsPositional), or any
// expression referencing position() or last() — e.g. the boolean
// [position() = 2], which PredIsPositional deliberately classifies as a
// general predicate. Plan rewrites that change a step's context node
// sets (descendant-step fusion) must be suppressed for such predicates,
// because they change what position()/last() evaluate to. The check is
// a conservative over-approximation: a position()/last() occurrence
// inside a nested path's own predicate also reports true, which only
// costs the rewrite, never correctness.
func PredUsesPosition(e Expr) bool {
	return PredIsPositional(e) || refersToPosition(e)
}

// refersToPosition walks the expression for position()/last() calls.
func refersToPosition(e Expr) bool {
	switch x := e.(type) {
	case *Call:
		if x.Name == "last" || x.Name == "position" {
			return true
		}
		for _, a := range x.Args {
			if refersToPosition(a) {
				return true
			}
		}
	case *Seq:
		for _, it := range x.Items {
			if refersToPosition(it) {
				return true
			}
		}
	case *If:
		return refersToPosition(x.Cond) || refersToPosition(x.Then) || refersToPosition(x.Else)
	case *Binary:
		return refersToPosition(x.L) || refersToPosition(x.R)
	case *Unary:
		return refersToPosition(x.X)
	case *Path:
		for _, s := range x.Steps {
			if s.Expr != nil && refersToPosition(s.Expr) {
				return true
			}
			for _, p := range s.Preds {
				if refersToPosition(p) {
					return true
				}
			}
		}
	case *FLWOR:
		for _, cl := range x.Clauses {
			if cl.Expr != nil && refersToPosition(cl.Expr) {
				return true
			}
			for _, k := range cl.Keys {
				if refersToPosition(k.Expr) {
					return true
				}
			}
		}
		return refersToPosition(x.Return)
	case *Quantified:
		for _, s := range x.Seqs {
			if refersToPosition(s) {
				return true
			}
		}
		return refersToPosition(x.Satisfies)
	case *ElemCtor:
		for _, a := range x.Attrs {
			for _, p := range a.Parts {
				if refersToPosition(p) {
					return true
				}
			}
		}
		for _, p := range x.Content {
			if refersToPosition(p) {
				return true
			}
		}
	}
	return false
}
