package xqp

import (
	"fmt"
	"mxq/internal/xqerr"
	"strconv"
	"strings"
)

// Parse parses an XQuery main module: an optional prolog of function
// and variable declarations followed by the query body.
func Parse(src string) (*Module, error) {
	p := &parser{l: newLexer(src)}
	m := &Module{}
	for {
		tok, err := p.l.peek()
		if err != nil {
			return nil, err
		}
		if tok.kind != tName || tok.text != "declare" {
			break
		}
		if err := p.parseDecl(m); err != nil {
			return nil, err
		}
	}
	body, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	tok, err := p.l.peek()
	if err != nil {
		return nil, err
	}
	if tok.kind != tEOF {
		return nil, p.l.errf(tok.pos, "unexpected %s after end of query", tok)
	}
	m.Body = body
	return m, nil
}

type parser struct {
	l *lexer
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	tok, err := p.l.next()
	if err != nil {
		return token{}, err
	}
	if tok.kind != k {
		return token{}, p.l.errf(tok.pos, "expected %s, found %s", what, tok)
	}
	return tok, nil
}

func (p *parser) expectKw(kw string) error {
	tok, err := p.l.next()
	if err != nil {
		return err
	}
	if tok.kind != tName || tok.text != kw {
		return p.l.errf(tok.pos, "expected %q, found %s", kw, tok)
	}
	return nil
}

// peekKw reports whether the next token is the given keyword.
func (p *parser) peekKw(kw string) bool {
	tok, err := p.l.peek()
	return err == nil && tok.kind == tName && tok.text == kw
}

// aheadChar returns the first non-space character after the current
// lookahead token (used to disambiguate keywords from element name
// tests, e.g. "for $x" vs. the path step "for").
func (p *parser) aheadChar() byte {
	tok, err := p.l.peek()
	if err != nil {
		return 0
	}
	i := tok.pos + len(tok.text)
	if tok.kind == tString {
		i = tok.pos // strings include quotes; not used for keywords
	}
	for i < len(p.l.src) {
		switch p.l.src[i] {
		case ' ', '\t', '\n', '\r':
			i++
		default:
			return p.l.src[i]
		}
	}
	return 0
}

// parseDecl parses one prolog declaration ("declare …;") into m.
func (p *parser) parseDecl(m *Module) error {
	if err := p.expectKw("declare"); err != nil {
		return err
	}
	tok, err := p.l.next()
	if err != nil {
		return err
	}
	if tok.kind != tName {
		return p.l.errf(tok.pos, "expected prolog declaration, found %s", tok)
	}
	switch tok.text {
	case "namespace":
		// "declare namespace prefix = uri;" — accepted and ignored
		if _, err := p.expect(tName, "namespace prefix"); err != nil {
			return err
		}
		if _, err := p.expect(tEq, "="); err != nil {
			return err
		}
		if _, err := p.expect(tString, "namespace URI"); err != nil {
			return err
		}
		if _, err := p.expect(tSemi, ";"); err != nil {
			return err
		}
		return nil
	case "variable":
		vd, err := p.parseVarDecl()
		if err != nil {
			return err
		}
		for _, prev := range m.Vars {
			if prev.Name == vd.Name {
				return xqerr.Newf("XQST0049", "variable $%s declared more than once", vd.Name)
			}
		}
		m.Vars = append(m.Vars, vd)
		return nil
	case "function":
		name, err := p.expect(tName, "function name")
		if err != nil {
			return err
		}
		if _, err := p.expect(tLParen, "("); err != nil {
			return err
		}
		var params []string
		for {
			tok, err := p.l.peek()
			if err != nil {
				return err
			}
			if tok.kind == tRParen {
				break
			}
			v, err := p.expect(tVar, "parameter variable")
			if err != nil {
				return err
			}
			params = append(params, v.text)
			tok, err = p.l.peek()
			if err != nil {
				return err
			}
			if tok.kind == tComma {
				p.l.next()
				continue
			}
			break
		}
		if _, err := p.expect(tRParen, ")"); err != nil {
			return err
		}
		if _, err := p.expect(tLBrace, "{"); err != nil {
			return err
		}
		body, err := p.parseExpr()
		if err != nil {
			return err
		}
		if _, err := p.expect(tRBrace, "}"); err != nil {
			return err
		}
		if _, err := p.expect(tSemi, ";"); err != nil {
			return err
		}
		m.Funcs = append(m.Funcs, &FuncDecl{Name: name.text, Params: params, Body: body})
		return nil
	}
	return p.l.errf(tok.pos, "unsupported prolog declaration %q", tok.text)
}

// parseVarDecl parses "variable $name [external] [:= Expr];" with the
// leading "declare variable" already consumed.
func (p *parser) parseVarDecl() (*VarDecl, error) {
	v, err := p.expect(tVar, "variable name")
	if err != nil {
		return nil, err
	}
	vd := &VarDecl{Name: v.text}
	if p.peekKw("external") {
		p.l.next()
		vd.External = true
	}
	tok, err := p.l.peek()
	if err != nil {
		return nil, err
	}
	if tok.kind == tAssign {
		p.l.next()
		init, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		vd.Init = init
	} else if !vd.External {
		return nil, p.l.errf(tok.pos, "expected := or \"external\" in variable declaration $%s", vd.Name)
	}
	if _, err := p.expect(tSemi, ";"); err != nil {
		return nil, err
	}
	return vd, nil
}

// parseExpr parses a comma-separated sequence expression.
func (p *parser) parseExpr() (Expr, error) {
	first, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	items := []Expr{first}
	for {
		tok, err := p.l.peek()
		if err != nil {
			return nil, err
		}
		if tok.kind != tComma {
			break
		}
		p.l.next()
		e, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		items = append(items, e)
	}
	if len(items) == 1 {
		return items[0], nil
	}
	return &Seq{Items: items}, nil
}

func (p *parser) parseExprSingle() (Expr, error) {
	tok, err := p.l.peek()
	if err != nil {
		return nil, err
	}
	if tok.kind == tName {
		switch tok.text {
		case "for", "let":
			if p.aheadChar() == '$' {
				return p.parseFLWOR()
			}
		case "some", "every":
			if p.aheadChar() == '$' {
				return p.parseQuantified()
			}
		case "if":
			if p.aheadChar() == '(' {
				return p.parseIf()
			}
		}
	}
	return p.parseOr()
}

func (p *parser) parseFLWOR() (Expr, error) {
	fl := &FLWOR{}
	for {
		tok, err := p.l.peek()
		if err != nil {
			return nil, err
		}
		if tok.kind != tName {
			return nil, p.l.errf(tok.pos, "expected FLWOR clause, found %s", tok)
		}
		switch tok.text {
		case "for":
			p.l.next()
			for {
				v, err := p.expect(tVar, "for variable")
				if err != nil {
					return nil, err
				}
				pos := ""
				if p.peekKw("at") {
					p.l.next()
					pv, err := p.expect(tVar, "positional variable")
					if err != nil {
						return nil, err
					}
					pos = pv.text
				}
				if err := p.expectKw("in"); err != nil {
					return nil, err
				}
				seq, err := p.parseExprSingle()
				if err != nil {
					return nil, err
				}
				fl.Clauses = append(fl.Clauses, Clause{Kind: ClauseFor, Var: v.text, Pos: pos, Expr: seq})
				tok, err := p.l.peek()
				if err != nil {
					return nil, err
				}
				if tok.kind == tComma {
					p.l.next()
					continue
				}
				break
			}
		case "let":
			p.l.next()
			for {
				v, err := p.expect(tVar, "let variable")
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(tAssign, ":="); err != nil {
					return nil, err
				}
				val, err := p.parseExprSingle()
				if err != nil {
					return nil, err
				}
				fl.Clauses = append(fl.Clauses, Clause{Kind: ClauseLet, Var: v.text, Expr: val})
				tok, err := p.l.peek()
				if err != nil {
					return nil, err
				}
				if tok.kind == tComma {
					p.l.next()
					continue
				}
				break
			}
		case "where":
			p.l.next()
			cond, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			fl.Clauses = append(fl.Clauses, Clause{Kind: ClauseWhere, Expr: cond})
		case "stable":
			p.l.next()
			// falls through to "order by"
		case "order":
			p.l.next()
			if err := p.expectKw("by"); err != nil {
				return nil, err
			}
			var keys []OrderKey
			for {
				k, err := p.parseExprSingle()
				if err != nil {
					return nil, err
				}
				key := OrderKey{Expr: k}
				if p.peekKw("ascending") {
					p.l.next()
				} else if p.peekKw("descending") {
					p.l.next()
					key.Desc = true
				}
				if p.peekKw("empty") {
					p.l.next()
					if p.peekKw("least") || p.peekKw("greatest") {
						p.l.next() // empty sequences always sort least here
					}
				}
				keys = append(keys, key)
				tok, err := p.l.peek()
				if err != nil {
					return nil, err
				}
				if tok.kind == tComma {
					p.l.next()
					continue
				}
				break
			}
			fl.Clauses = append(fl.Clauses, Clause{Kind: ClauseOrder, Keys: keys})
		case "return":
			p.l.next()
			ret, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			fl.Return = ret
			return fl, nil
		default:
			return nil, p.l.errf(tok.pos, "expected FLWOR clause, found %q", tok.text)
		}
	}
}

func (p *parser) parseQuantified() (Expr, error) {
	tok, _ := p.l.next() // some | every
	q := &Quantified{Every: tok.text == "every"}
	for {
		v, err := p.expect(tVar, "quantifier variable")
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("in"); err != nil {
			return nil, err
		}
		seq, err := p.parseExprSingle()
		if err != nil {
			return nil, err
		}
		q.Vars = append(q.Vars, v.text)
		q.Seqs = append(q.Seqs, seq)
		tok, err := p.l.peek()
		if err != nil {
			return nil, err
		}
		if tok.kind == tComma {
			p.l.next()
			continue
		}
		break
	}
	if err := p.expectKw("satisfies"); err != nil {
		return nil, err
	}
	sat, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	q.Satisfies = sat
	return q, nil
}

func (p *parser) parseIf() (Expr, error) {
	p.l.next() // if
	if _, err := p.expect(tLParen, "("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tRParen, ")"); err != nil {
		return nil, err
	}
	if err := p.expectKw("then"); err != nil {
		return nil, err
	}
	then, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("else"); err != nil {
		return nil, err
	}
	els, err := p.parseExprSingle()
	if err != nil {
		return nil, err
	}
	return &If{Cond: cond, Then: then, Else: els}, nil
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peekKw("or") {
		p.l.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseComparison()
	if err != nil {
		return nil, err
	}
	for p.peekKw("and") {
		p.l.next()
		r, err := p.parseComparison()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

var valueCmps = map[string]BinOp{
	"eq": OpValEq, "ne": OpValNe, "lt": OpValLt,
	"le": OpValLe, "gt": OpValGt, "ge": OpValGe, "is": OpIs,
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseRange()
	if err != nil {
		return nil, err
	}
	tok, err := p.l.peek()
	if err != nil {
		return nil, err
	}
	var op BinOp
	found := true
	switch tok.kind {
	case tEq:
		op = OpGenEq
	case tNe:
		op = OpGenNe
	case tLt:
		op = OpGenLt
	case tLe:
		op = OpGenLe
	case tGt:
		op = OpGenGt
	case tGe:
		op = OpGenGe
	case tLtLt:
		op = OpBefore
	case tGtGt:
		op = OpAfter
	case tName:
		if o, ok := valueCmps[tok.text]; ok {
			op = o
		} else {
			found = false
		}
	default:
		found = false
	}
	if !found {
		return l, nil
	}
	p.l.next()
	r, err := p.parseRange()
	if err != nil {
		return nil, err
	}
	return &Binary{Op: op, L: l, R: r}, nil
}

func (p *parser) parseRange() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.peekKw("to") {
		p.l.next()
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: OpRange, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		tok, err := p.l.peek()
		if err != nil {
			return nil, err
		}
		var op BinOp
		switch tok.kind {
		case tPlus:
			op = OpAdd
		case tMinus:
			op = OpSub
		default:
			return l, nil
		}
		p.l.next()
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnion()
	if err != nil {
		return nil, err
	}
	for {
		tok, err := p.l.peek()
		if err != nil {
			return nil, err
		}
		var op BinOp
		switch {
		case tok.kind == tStar:
			op = OpMul
		case tok.kind == tName && tok.text == "div":
			op = OpDiv
		case tok.kind == tName && tok.text == "idiv":
			op = OpIDiv
		case tok.kind == tName && tok.text == "mod":
			op = OpMod
		default:
			return l, nil
		}
		p.l.next()
		r, err := p.parseUnion()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnion() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		tok, err := p.l.peek()
		if err != nil {
			return nil, err
		}
		if tok.kind != tPipe && !(tok.kind == tName && tok.text == "union") {
			return l, nil
		}
		p.l.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: OpUnion, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	neg := false
	for {
		tok, err := p.l.peek()
		if err != nil {
			return nil, err
		}
		if tok.kind == tMinus {
			p.l.next()
			neg = !neg
			continue
		}
		if tok.kind == tPlus {
			p.l.next()
			continue
		}
		break
	}
	e, err := p.parsePath()
	if err != nil {
		return nil, err
	}
	if neg {
		return &Unary{X: e}, nil
	}
	return e, nil
}

var kindTests = map[string]TestKind{
	"node": TestAnyNode, "text": TestText, "comment": TestComment,
	"processing-instruction": TestPI, "document-node": TestDocNode,
}

func (p *parser) parsePath() (Expr, error) {
	tok, err := p.l.peek()
	if err != nil {
		return nil, err
	}
	path := &Path{}
	switch tok.kind {
	case tSlash:
		p.l.next()
		path.Absolute = true
		next, err := p.l.peek()
		if err != nil {
			return nil, err
		}
		if !p.startsStep(next) {
			return path, nil // lone "/"
		}
		first, err := p.parseStepExpr(true)
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, first)
	case tSlashSlash:
		p.l.next()
		path.Absolute = true
		path.Steps = append(path.Steps, Step{Axis: AxisDescendantOrSelf, Test: NodeTest{Kind: TestAnyNode}})
		first, err := p.parseStepExpr(false)
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, first)
	default:
		first, err := p.parseStepExpr(true)
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, first)
	}
	for {
		tok, err := p.l.peek()
		if err != nil {
			return nil, err
		}
		switch tok.kind {
		case tSlash:
			p.l.next()
		case tSlashSlash:
			p.l.next()
			path.Steps = append(path.Steps, Step{Axis: AxisDescendantOrSelf, Test: NodeTest{Kind: TestAnyNode}})
		default:
			// unwrap trivial paths
			if !path.Absolute && len(path.Steps) == 1 {
				s := path.Steps[0]
				if s.Expr != nil && len(s.Preds) == 0 {
					return s.Expr, nil
				}
			}
			return path, nil
		}
		step, err := p.parseStepExpr(false)
		if err != nil {
			return nil, err
		}
		path.Steps = append(path.Steps, step)
	}
}

// startsStep reports whether tok can begin a path step.
func (p *parser) startsStep(tok token) bool {
	switch tok.kind {
	case tName, tStar, tAt, tDot, tDotDot, tVar, tLParen, tInt, tDouble, tString, tLt:
		return true
	}
	return false
}

// parseStepExpr parses one path step. first selects whether primary
// expressions are allowed (XQuery restricts them to the first step; we
// allow them anywhere for simplicity, like several implementations).
func (p *parser) parseStepExpr(first bool) (Step, error) {
	tok, err := p.l.peek()
	if err != nil {
		return Step{}, err
	}
	switch tok.kind {
	case tAt:
		p.l.next()
		test, err := p.parseNameOrStar()
		if err != nil {
			return Step{}, err
		}
		s := Step{Axis: AxisAttribute, Test: test}
		s.Preds, err = p.parsePredicates()
		return s, err
	case tDotDot:
		p.l.next()
		s := Step{Axis: AxisParent, Test: NodeTest{Kind: TestAnyNode}}
		var err error
		s.Preds, err = p.parsePredicates()
		return s, err
	case tStar:
		p.l.next()
		s := Step{Axis: AxisChild, Test: NodeTest{Kind: TestName}}
		var err error
		s.Preds, err = p.parsePredicates()
		return s, err
	case tName:
		name := tok.text
		namePos := tok.pos
		p.l.next()
		nxt, err := p.l.peek()
		if err != nil {
			return Step{}, err
		}
		switch nxt.kind {
		case tAxis:
			axis, ok := axisNames[name]
			if !ok {
				return Step{}, p.l.errf(namePos, "unknown axis %q", name)
			}
			p.l.next()
			test, err := p.parseNodeTest()
			if err != nil {
				return Step{}, err
			}
			s := Step{Axis: axis, Test: test}
			s.Preds, err = p.parsePredicates()
			return s, err
		case tLParen:
			if kind, ok := kindTests[name]; ok {
				p.l.next()
				if _, err := p.expect(tRParen, ")"); err != nil {
					return Step{}, err
				}
				s := Step{Axis: AxisChild, Test: NodeTest{Kind: kind}}
				s.Preds, err = p.parsePredicates()
				return s, err
			}
			call, err := p.parseCall(name)
			if err != nil {
				return Step{}, err
			}
			s := Step{Expr: call}
			s.Preds, err = p.parsePredicates()
			return s, err
		default:
			s := Step{Axis: AxisChild, Test: NodeTest{Kind: TestName, Name: name}}
			var err error
			s.Preds, err = p.parsePredicates()
			return s, err
		}
	}
	// primary expression step
	prim, err := p.parsePrimary()
	if err != nil {
		return Step{}, err
	}
	s := Step{Expr: prim}
	s.Preds, err = p.parsePredicates()
	return s, err
}

func (p *parser) parseNodeTest() (NodeTest, error) {
	tok, err := p.l.next()
	if err != nil {
		return NodeTest{}, err
	}
	switch tok.kind {
	case tStar:
		return NodeTest{Kind: TestName}, nil
	case tName:
		nxt, err := p.l.peek()
		if err != nil {
			return NodeTest{}, err
		}
		if nxt.kind == tLParen {
			if kind, ok := kindTests[tok.text]; ok {
				p.l.next()
				if _, err := p.expect(tRParen, ")"); err != nil {
					return NodeTest{}, err
				}
				return NodeTest{Kind: kind}, nil
			}
		}
		return NodeTest{Kind: TestName, Name: tok.text}, nil
	}
	return NodeTest{}, p.l.errf(tok.pos, "expected node test, found %s", tok)
}

func (p *parser) parseNameOrStar() (NodeTest, error) {
	tok, err := p.l.next()
	if err != nil {
		return NodeTest{}, err
	}
	switch tok.kind {
	case tStar:
		return NodeTest{Kind: TestName}, nil
	case tName:
		return NodeTest{Kind: TestName, Name: tok.text}, nil
	}
	return NodeTest{}, p.l.errf(tok.pos, "expected attribute name or *, found %s", tok)
}

func (p *parser) parsePredicates() ([]Expr, error) {
	var preds []Expr
	for {
		tok, err := p.l.peek()
		if err != nil {
			return nil, err
		}
		if tok.kind != tLBracket {
			return preds, nil
		}
		p.l.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRBracket, "]"); err != nil {
			return nil, err
		}
		preds = append(preds, e)
	}
}

func (p *parser) parseCall(name string) (Expr, error) {
	if _, err := p.expect(tLParen, "("); err != nil {
		return nil, err
	}
	var args []Expr
	tok, err := p.l.peek()
	if err != nil {
		return nil, err
	}
	if tok.kind != tRParen {
		for {
			a, err := p.parseExprSingle()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			tok, err := p.l.peek()
			if err != nil {
				return nil, err
			}
			if tok.kind == tComma {
				p.l.next()
				continue
			}
			break
		}
	}
	if _, err := p.expect(tRParen, ")"); err != nil {
		return nil, err
	}
	// strip the fn: prefix of standard library calls
	name = strings.TrimPrefix(name, "fn:")
	return &Call{Name: name, Args: args}, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	tok, err := p.l.peek()
	if err != nil {
		return nil, err
	}
	switch tok.kind {
	case tInt:
		p.l.next()
		return &Literal{Kind: LitInt, I: tok.i}, nil
	case tDouble:
		p.l.next()
		return &Literal{Kind: LitDouble, F: tok.f}, nil
	case tString:
		p.l.next()
		return &Literal{Kind: LitString, S: tok.text}, nil
	case tVar:
		p.l.next()
		return &VarRef{Name: tok.text}, nil
	case tDot:
		p.l.next()
		return &ContextItem{}, nil
	case tLParen:
		p.l.next()
		nxt, err := p.l.peek()
		if err != nil {
			return nil, err
		}
		if nxt.kind == tRParen {
			p.l.next()
			return &EmptySeq{}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tRParen, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case tLt:
		return p.parseDirectCtor(tok.pos)
	case tName:
		// must be a function call here (name tests are handled by
		// parseStepExpr)
		p.l.next()
		return p.parseCall(tok.text)
	}
	return nil, p.l.errf(tok.pos, "unexpected %s", tok)
}

// --- direct element constructors ---------------------------------------

// parseDirectCtor parses a direct element constructor at the character
// level starting at the "<" at src[start], then resumes token scanning.
func (p *parser) parseDirectCtor(start int) (Expr, error) {
	e, end, err := p.rawElem(start)
	if err != nil {
		return nil, err
	}
	p.l.setPos(end)
	return e, nil
}

// rawElem parses "<name attrs> content </name>" returning the expression
// and the offset just past the closing tag.
func (p *parser) rawElem(i int) (*ElemCtor, int, error) {
	src := p.l.src
	if i >= len(src) || src[i] != '<' {
		return nil, 0, p.l.errf(i, "expected element constructor")
	}
	i++
	nameStart := i
	for i < len(src) && (isNameChar(src[i]) || src[i] == ':') {
		i++
	}
	if i == nameStart {
		return nil, 0, p.l.errf(i, "expected element name in constructor")
	}
	el := &ElemCtor{Name: src[nameStart:i]}
	// attributes
	for {
		i = skipWS(src, i)
		if i >= len(src) {
			return nil, 0, p.l.errf(i, "unterminated element constructor")
		}
		if src[i] == '/' || src[i] == '>' {
			break
		}
		aStart := i
		for i < len(src) && (isNameChar(src[i]) || src[i] == ':') {
			i++
		}
		if i == aStart {
			return nil, 0, p.l.errf(i, "expected attribute name")
		}
		attr := AttrCtor{Name: src[aStart:i]}
		i = skipWS(src, i)
		if i >= len(src) || src[i] != '=' {
			return nil, 0, p.l.errf(i, "expected = after attribute name")
		}
		i = skipWS(src, i+1)
		if i >= len(src) || (src[i] != '"' && src[i] != '\'') {
			return nil, 0, p.l.errf(i, "expected quoted attribute value")
		}
		quote := src[i]
		i++
		var lit strings.Builder
		flush := func() {
			if lit.Len() > 0 {
				attr.Parts = append(attr.Parts, &Literal{Kind: LitString, S: lit.String()})
				lit.Reset()
			}
		}
		for {
			if i >= len(src) {
				return nil, 0, p.l.errf(i, "unterminated attribute value")
			}
			c := src[i]
			switch {
			case c == quote:
				if i+1 < len(src) && src[i+1] == quote {
					lit.WriteByte(quote)
					i += 2
					continue
				}
				i++
				flush()
				el.Attrs = append(el.Attrs, attr)
				goto nextAttr
			case c == '{':
				if i+1 < len(src) && src[i+1] == '{' {
					lit.WriteByte('{')
					i += 2
					continue
				}
				flush()
				expr, ni, err := p.rawEnclosed(i)
				if err != nil {
					return nil, 0, err
				}
				attr.Parts = append(attr.Parts, expr)
				i = ni
			case c == '}':
				if i+1 < len(src) && src[i+1] == '}' {
					lit.WriteByte('}')
					i += 2
					continue
				}
				return nil, 0, p.l.errf(i, "unescaped } in attribute value")
			case c == '&':
				ent, n, err := scanEntity(src[i:])
				if err != nil {
					return nil, 0, p.l.errf(i, "%v", err)
				}
				lit.WriteString(ent)
				i += n
			default:
				lit.WriteByte(c)
				i++
			}
		}
	nextAttr:
	}
	if src[i] == '/' {
		if i+1 >= len(src) || src[i+1] != '>' {
			return nil, 0, p.l.errf(i, "expected /> in constructor")
		}
		return el, i + 2, nil
	}
	i++ // '>'
	// content
	var text strings.Builder
	flushText := func() {
		s := text.String()
		text.Reset()
		if strings.TrimSpace(s) == "" {
			return // boundary whitespace is stripped
		}
		el.Content = append(el.Content, &Literal{Kind: LitString, S: s})
	}
	for {
		if i >= len(src) {
			return nil, 0, p.l.errf(i, "unterminated content of <%s>", el.Name)
		}
		c := src[i]
		switch {
		case c == '<' && i+1 < len(src) && src[i+1] == '/':
			flushText()
			i += 2
			cStart := i
			for i < len(src) && (isNameChar(src[i]) || src[i] == ':') {
				i++
			}
			if src[cStart:i] != el.Name {
				return nil, 0, p.l.errf(cStart, "mismatched closing tag </%s> for <%s>", src[cStart:i], el.Name)
			}
			i = skipWS(src, i)
			if i >= len(src) || src[i] != '>' {
				return nil, 0, p.l.errf(i, "expected > in closing tag")
			}
			return el, i + 1, nil
		case c == '<' && i+3 < len(src) && src[i+1] == '!' && src[i+2] == '-' && src[i+3] == '-':
			flushText()
			end := strings.Index(src[i+4:], "-->")
			if end < 0 {
				return nil, 0, p.l.errf(i, "unterminated comment in constructor")
			}
			i += 4 + end + 3
		case c == '<':
			flushText()
			child, ni, err := p.rawElem(i)
			if err != nil {
				return nil, 0, err
			}
			el.Content = append(el.Content, child)
			i = ni
		case c == '{':
			if i+1 < len(src) && src[i+1] == '{' {
				text.WriteByte('{')
				i += 2
				continue
			}
			flushText()
			expr, ni, err := p.rawEnclosed(i)
			if err != nil {
				return nil, 0, err
			}
			el.Content = append(el.Content, expr)
			i = ni
		case c == '}':
			if i+1 < len(src) && src[i+1] == '}' {
				text.WriteByte('}')
				i += 2
				continue
			}
			return nil, 0, p.l.errf(i, "unescaped } in element content")
		case c == '&':
			if strings.HasPrefix(src[i:], "&#") {
				r, n, err := scanCharRef(src[i:])
				if err != nil {
					return nil, 0, p.l.errf(i, "%v", err)
				}
				text.WriteString(r)
				i += n
				continue
			}
			ent, n, err := scanEntity(src[i:])
			if err != nil {
				return nil, 0, p.l.errf(i, "%v", err)
			}
			text.WriteString(ent)
			i += n
		default:
			text.WriteByte(c)
			i++
		}
	}
}

// rawEnclosed parses "{ expr }" starting at the "{" at offset i using the
// token-level parser, returning the expression and the offset past "}".
func (p *parser) rawEnclosed(i int) (Expr, int, error) {
	p.l.setPos(i + 1)
	e, err := p.parseExpr()
	if err != nil {
		return nil, 0, err
	}
	if _, err := p.expect(tRBrace, "}"); err != nil {
		return nil, 0, err
	}
	return e, p.l.pos, nil
}

func skipWS(s string, i int) int {
	for i < len(s) && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r') {
		i++
	}
	return i
}

func scanCharRef(s string) (string, int, error) {
	// s starts with "&#"
	end := strings.IndexByte(s, ';')
	if end < 0 {
		return "", 0, fmt.Errorf("unterminated character reference")
	}
	body := s[2:end]
	base := 10
	if strings.HasPrefix(body, "x") || strings.HasPrefix(body, "X") {
		base = 16
		body = body[1:]
	}
	v, err := strconv.ParseInt(body, base, 32)
	if err != nil {
		return "", 0, fmt.Errorf("bad character reference")
	}
	return string(rune(v)), end + 1, nil
}
