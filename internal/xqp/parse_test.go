package xqp

import (
	"strings"
	"testing"
)

func parse(t *testing.T, src string) *Module {
	t.Helper()
	m, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return m
}

func TestLiterals(t *testing.T) {
	m := parse(t, `42`)
	if l, ok := m.Body.(*Literal); !ok || l.Kind != LitInt || l.I != 42 {
		t.Errorf("int literal: %+v", m.Body)
	}
	m = parse(t, `3.5`)
	if l, ok := m.Body.(*Literal); !ok || l.Kind != LitDouble || l.F != 3.5 {
		t.Errorf("double literal: %+v", m.Body)
	}
	m = parse(t, `"a""b"`)
	if l, ok := m.Body.(*Literal); !ok || l.S != `a"b` {
		t.Errorf("string literal: %+v", m.Body)
	}
	m = parse(t, `'x&amp;y'`)
	if l, ok := m.Body.(*Literal); !ok || l.S != "x&y" {
		t.Errorf("entity in string: %+v", m.Body)
	}
}

func TestSequenceAndEmpty(t *testing.T) {
	m := parse(t, `(1, 2, 3)`)
	if s, ok := m.Body.(*Seq); !ok || len(s.Items) != 3 {
		t.Errorf("seq: %+v", m.Body)
	}
	m = parse(t, `()`)
	if _, ok := m.Body.(*EmptySeq); !ok {
		t.Errorf("empty seq: %+v", m.Body)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	m := parse(t, `1 + 2 * 3 = 7 and true()`)
	and, ok := m.Body.(*Binary)
	if !ok || and.Op != OpAnd {
		t.Fatalf("top is %+v, want and", m.Body)
	}
	cmp, ok := and.L.(*Binary)
	if !ok || cmp.Op != OpGenEq {
		t.Fatalf("lhs of and: %+v", and.L)
	}
	add, ok := cmp.L.(*Binary)
	if !ok || add.Op != OpAdd {
		t.Fatalf("lhs of =: %+v", cmp.L)
	}
	mul, ok := add.R.(*Binary)
	if !ok || mul.Op != OpMul {
		t.Fatalf("rhs of +: %+v", add.R)
	}
}

func TestValueAndNodeComparisons(t *testing.T) {
	for src, op := range map[string]BinOp{
		`$a eq $b`: OpValEq, `$a lt $b`: OpValLt, `$a is $b`: OpIs,
		`$a << $b`: OpBefore, `$a >> $b`: OpAfter, `$a != $b`: OpGenNe,
	} {
		m := parse(t, src)
		if b, ok := m.Body.(*Binary); !ok || b.Op != op {
			t.Errorf("%s: got %+v", src, m.Body)
		}
	}
}

func TestPathParsing(t *testing.T) {
	m := parse(t, `/site/people/person[@id = "p0"]/name/text()`)
	path, ok := m.Body.(*Path)
	if !ok || !path.Absolute {
		t.Fatalf("not an absolute path: %+v", m.Body)
	}
	if len(path.Steps) != 5 {
		t.Fatalf("%d steps", len(path.Steps))
	}
	if path.Steps[2].Test.Name != "person" || len(path.Steps[2].Preds) != 1 {
		t.Errorf("person step: %+v", path.Steps[2])
	}
	if path.Steps[4].Test.Kind != TestText {
		t.Errorf("text() step: %+v", path.Steps[4])
	}
}

func TestDoubleSlashDesugaring(t *testing.T) {
	m := parse(t, `$a//item`)
	path := m.Body.(*Path)
	if len(path.Steps) != 3 {
		t.Fatalf("steps: %d", len(path.Steps))
	}
	if path.Steps[1].Axis != AxisDescendantOrSelf || path.Steps[1].Test.Kind != TestAnyNode {
		t.Errorf("// dos step: %+v", path.Steps[1])
	}
	m = parse(t, `//open_auction`)
	path = m.Body.(*Path)
	if !path.Absolute || len(path.Steps) != 2 {
		t.Errorf("//name: %+v", path)
	}
}

func TestAxesAndAbbreviations(t *testing.T) {
	m := parse(t, `$x/ancestor::lot/@id/../following-sibling::b/..`)
	path := m.Body.(*Path)
	wantAxes := []Axis{AxisChild, AxisAncestor, AxisAttribute, AxisParent, AxisFollowingSibling, AxisParent}
	if len(path.Steps) != len(wantAxes) {
		t.Fatalf("steps: %d want %d", len(path.Steps), len(wantAxes))
	}
	for i, s := range path.Steps[1:] {
		if s.Axis != wantAxes[i+1] {
			t.Errorf("step %d axis %d, want %d", i+1, s.Axis, wantAxes[i+1])
		}
	}
	if path.Steps[0].Expr == nil {
		t.Error("first step should be the variable primary")
	}
}

func TestFLWORFull(t *testing.T) {
	m := parse(t, `
		for $b at $i in /site/open_auctions/open_auction, $c in $b/bidder
		let $k := $b/reserve
		where $k > 100 and $i < 5
		order by $b/location descending, $k
		return <out>{$k}</out>`)
	fl, ok := m.Body.(*FLWOR)
	if !ok {
		t.Fatalf("not FLWOR: %+v", m.Body)
	}
	kinds := []ClauseKind{ClauseFor, ClauseFor, ClauseLet, ClauseWhere, ClauseOrder}
	if len(fl.Clauses) != len(kinds) {
		t.Fatalf("clauses: %d", len(fl.Clauses))
	}
	for i, k := range kinds {
		if fl.Clauses[i].Kind != k {
			t.Errorf("clause %d kind %d want %d", i, fl.Clauses[i].Kind, k)
		}
	}
	if fl.Clauses[0].Pos != "i" || fl.Clauses[0].Var != "b" {
		t.Errorf("for clause: %+v", fl.Clauses[0])
	}
	ord := fl.Clauses[4]
	if len(ord.Keys) != 2 || !ord.Keys[0].Desc || ord.Keys[1].Desc {
		t.Errorf("order keys: %+v", ord.Keys)
	}
	if _, ok := fl.Return.(*ElemCtor); !ok {
		t.Errorf("return: %+v", fl.Return)
	}
}

func TestQuantified(t *testing.T) {
	m := parse(t, `some $x in $b/bidder, $y in $c satisfies $x << $y`)
	q, ok := m.Body.(*Quantified)
	if !ok || q.Every || len(q.Vars) != 2 {
		t.Fatalf("quantified: %+v", m.Body)
	}
	m = parse(t, `every $x in (1,2) satisfies $x > 0`)
	if q := m.Body.(*Quantified); !q.Every {
		t.Error("every not recognized")
	}
}

func TestIfAndKeywordAmbiguity(t *testing.T) {
	m := parse(t, `if ($x) then 1 else 2`)
	if _, ok := m.Body.(*If); !ok {
		t.Fatalf("if: %+v", m.Body)
	}
	// "if", "for" etc. as element names must still parse as paths
	m = parse(t, `/site/if/for/some`)
	path, ok := m.Body.(*Path)
	if !ok || len(path.Steps) != 4 {
		t.Fatalf("keyword-named steps: %+v", m.Body)
	}
}

func TestDirectConstructor(t *testing.T) {
	m := parse(t, `<item person="{$p/name/text()}" note="n{1+1}x">{count($a)} text <b/></item>`)
	el, ok := m.Body.(*ElemCtor)
	if !ok {
		t.Fatalf("ctor: %+v", m.Body)
	}
	if el.Name != "item" || len(el.Attrs) != 2 {
		t.Fatalf("attrs: %+v", el)
	}
	if len(el.Attrs[0].Parts) != 1 {
		t.Errorf("person attr parts: %d", len(el.Attrs[0].Parts))
	}
	if len(el.Attrs[1].Parts) != 3 {
		t.Errorf("note attr parts: %d", len(el.Attrs[1].Parts))
	}
	if len(el.Content) != 3 {
		t.Fatalf("content: %d items", len(el.Content))
	}
	if _, ok := el.Content[0].(*Call); !ok {
		t.Errorf("content[0]: %+v", el.Content[0])
	}
	if lit, ok := el.Content[1].(*Literal); !ok || strings.TrimSpace(lit.S) != "text" {
		t.Errorf("content[1]: %+v", el.Content[1])
	}
	if sub, ok := el.Content[2].(*ElemCtor); !ok || sub.Name != "b" {
		t.Errorf("content[2]: %+v", el.Content[2])
	}
}

func TestNestedConstructorsAndBraceEscapes(t *testing.T) {
	m := parse(t, `<a><b>x{{y}}z</b><c>{ <d/> }</c></a>`)
	el := m.Body.(*ElemCtor)
	if len(el.Content) != 2 {
		t.Fatalf("content: %d", len(el.Content))
	}
	b := el.Content[0].(*ElemCtor)
	if lit := b.Content[0].(*Literal); lit.S != "x{y}z" {
		t.Errorf("brace escape: %q", lit.S)
	}
	c := el.Content[1].(*ElemCtor)
	if _, ok := c.Content[0].(*ElemCtor); !ok {
		t.Errorf("enclosed constructor: %+v", c.Content[0])
	}
}

func TestFunctionDeclaration(t *testing.T) {
	m := parse(t, `
		declare namespace local = "http://example.org";
		declare function local:convert($v) { 2.20371 * $v };
		for $i in /site/open_auctions/open_auction
		return local:convert(zero-or-one($i/reserve/text()))`)
	if len(m.Funcs) != 1 {
		t.Fatalf("funcs: %d", len(m.Funcs))
	}
	f := m.Funcs[0]
	if f.Name != "local:convert" || len(f.Params) != 1 || f.Params[0] != "v" {
		t.Errorf("decl: %+v", f)
	}
	fl := m.Body.(*FLWOR)
	if c, ok := fl.Return.(*Call); !ok || c.Name != "local:convert" {
		t.Errorf("call: %+v", fl.Return)
	}
}

func TestComments(t *testing.T) {
	m := parse(t, `(: outer (: nested :) still :) 1 (: trailing :)`)
	if l, ok := m.Body.(*Literal); !ok || l.I != 1 {
		t.Errorf("comments: %+v", m.Body)
	}
}

func TestPredicatesOnPrimaries(t *testing.T) {
	m := parse(t, `$b/bidder[1]/increase`)
	path := m.Body.(*Path)
	if len(path.Steps[1].Preds) != 1 {
		t.Fatalf("bidder[1]: %+v", path.Steps[1])
	}
	if lit, ok := path.Steps[1].Preds[0].(*Literal); !ok || lit.I != 1 {
		t.Errorf("positional pred: %+v", path.Steps[1].Preds[0])
	}
	m = parse(t, `$b/bidder[last()]`)
	path = m.Body.(*Path)
	if c, ok := path.Steps[1].Preds[0].(*Call); !ok || c.Name != "last" {
		t.Errorf("last() pred: %+v", path.Steps[1].Preds[0])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`for $x return 1`,        // missing in
		`if ($x) then 1`,         // missing else
		`<a><b></a>`,             // mismatched ctor tags
		`1 +`,                    // missing operand
		`$`,                      // bad var
		`"unterminated`,          // string
		`(: no end`,              // comment
		`declare function f() {`, // unterminated decl
		`1 2`,                    // trailing junk
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestUnionAndRange(t *testing.T) {
	m := parse(t, `$a | $b`)
	if b, ok := m.Body.(*Binary); !ok || b.Op != OpUnion {
		t.Errorf("union: %+v", m.Body)
	}
	m = parse(t, `1 to 5`)
	if b, ok := m.Body.(*Binary); !ok || b.Op != OpRange {
		t.Errorf("range: %+v", m.Body)
	}
}

func TestUnaryMinus(t *testing.T) {
	m := parse(t, `-$x + 1`)
	b := m.Body.(*Binary)
	if b.Op != OpAdd {
		t.Fatalf("top: %+v", b)
	}
	if _, ok := b.L.(*Unary); !ok {
		t.Errorf("lhs: %+v", b.L)
	}
}

func TestXMarkQ4ShapeParses(t *testing.T) {
	src := `
	for $b in /site/open_auctions/open_auction
	where some $pr1 in $b/bidder/personref[@person = "person20"],
	           $pr2 in $b/bidder/personref[@person = "person51"]
	      satisfies $pr1 << $pr2
	return <history>{$b/reward/text()}</history>`
	parse(t, src)
}

func TestVariableDeclarations(t *testing.T) {
	m := parse(t, `declare variable $x external; declare variable $y := 1 + 2; declare variable $z external := "d"; $x`)
	if len(m.Vars) != 3 {
		t.Fatalf("got %d variable declarations, want 3", len(m.Vars))
	}
	x, y, z := m.Vars[0], m.Vars[1], m.Vars[2]
	if x.Name != "x" || !x.External || x.Init != nil {
		t.Errorf("$x: %+v, want external without default", x)
	}
	if y.Name != "y" || y.External || y.Init == nil {
		t.Errorf("$y: %+v, want non-external with init", y)
	}
	if b, ok := y.Init.(*Binary); !ok || b.Op != OpAdd {
		t.Errorf("$y init: %+v, want 1 + 2", y.Init)
	}
	if z.Name != "z" || !z.External || z.Init == nil {
		t.Errorf("$z: %+v, want external with default", z)
	}
	if v, ok := m.Body.(*VarRef); !ok || v.Name != "x" {
		t.Errorf("body: %+v, want $x", m.Body)
	}
}

func TestVariableDeclarationMixedWithFunctions(t *testing.T) {
	m := parse(t, `declare namespace p = "urn:x"; declare variable $n external; declare function local:f($a) { $a + $n }; local:f(1)`)
	if len(m.Vars) != 1 || len(m.Funcs) != 1 {
		t.Fatalf("got %d vars, %d funcs, want 1 and 1", len(m.Vars), len(m.Funcs))
	}
}

func TestVariableDeclarationErrors(t *testing.T) {
	cases := map[string]string{
		`declare variable $x := 1; declare variable $x external; $x`: "XQST0049",
		`declare variable $x; $x`:                                    "expected := or",
		`declare variable $x external := ; $x`:                       "unexpected",
	}
	for src, frag := range cases {
		_, err := Parse(src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", src, frag)
			continue
		}
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("Parse(%q) error %q does not mention %q", src, err, frag)
		}
	}
}

func TestStaticSingleton(t *testing.T) {
	singleton := []string{`1`, `"s"`, `1.5`, `-2`, `1 + 2 * 3`, `<a/>`, `(7)`}
	for _, src := range singleton {
		if !StaticSingleton(parse(t, src).Body) {
			t.Errorf("StaticSingleton(%s) = false, want true", src)
		}
	}
	plural := []string{`(1, 2)`, `()`, `/a/b`, `1 to 5`, `count(/a)`, `$v`}
	for _, src := range plural {
		if StaticSingleton(parse(t, src).Body) {
			t.Errorf("StaticSingleton(%s) = true, want false", src)
		}
	}
}
