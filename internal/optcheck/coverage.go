package optcheck

import (
	"fmt"
	"sort"
	"strings"

	"mxq/internal/opt"
)

// Coverage counts rule firings across rewrite traces. A registered
// rule that never fires on the test corpus is a test gap: either the
// corpus lacks a query exercising the rule, or the rule's guard is
// unsatisfiable — both findings, not noise.
type Coverage struct {
	counts map[opt.Rule]int
}

// NewCoverage returns an empty coverage accumulator.
func NewCoverage() *Coverage {
	return &Coverage{counts: map[opt.Rule]int{}}
}

// Add accumulates one trace.
func (c *Coverage) Add(steps []opt.RewriteStep) {
	for _, s := range steps {
		c.counts[s.Rule]++
	}
}

// Count returns the accumulated firings of rule r.
func (c *Coverage) Count(r opt.Rule) int { return c.counts[r] }

// Unfired returns the registered rules with zero firings, minus the
// exempt set, in registry order.
func (c *Coverage) Unfired(exempt map[opt.Rule]string) []opt.Rule {
	var out []opt.Rule
	for _, ri := range opt.Rules() {
		if c.counts[ri.Rule] == 0 && exempt[ri.Rule] == "" {
			out = append(out, ri.Rule)
		}
	}
	return out
}

// Report renders the per-rule firing counts in registry order; rules
// that never fired are marked with a leading "!". Rules that fired but
// are not registered (a registry gap) are appended.
func (c *Coverage) Report() string {
	var b strings.Builder
	registered := map[opt.Rule]bool{}
	w := 0
	for _, ri := range opt.Rules() {
		if len(ri.Rule) > w {
			w = len(ri.Rule)
		}
	}
	for _, ri := range opt.Rules() {
		registered[ri.Rule] = true
		mark := " "
		if c.counts[ri.Rule] == 0 {
			mark = "!"
		}
		fmt.Fprintf(&b, "%s %-*s %6d  %s\n", mark, w, ri.Rule, c.counts[ri.Rule], ri.Doc)
	}
	var stray []string
	for r := range c.counts {
		if !registered[r] {
			stray = append(stray, string(r))
		}
	}
	sort.Strings(stray)
	for _, r := range stray {
		fmt.Fprintf(&b, "? %-*s %6d  (fired but not registered)\n", w, r, c.counts[opt.Rule(r)])
	}
	return b.String()
}
