package optcheck

import (
	"errors"
	"fmt"
	"strings"

	"mxq/internal/opt"
	"mxq/internal/planck"
	"mxq/internal/ralg"
	"mxq/internal/xqerr"
)

// judge replays both sides of a substituted witness and reports
// whether they agree. Agreement means byte-identical result tables, or
// failing with the same XQuery error code — a rewrite may not turn a
// succeeding plan into a failing one, change which error is raised, or
// perturb a single result byte. A rewritten plan that planck rejects
// outright is unsound without needing execution: the rewrite produced
// a plan whose own preconditions do not hold.
func (d *domain) judge(before, after ralg.Plan) (ok bool, msg string) {
	if err := planck.Verify(after, planck.Config{}); err != nil {
		return false, "rewritten plan fails static verification: " + err.Error()
	}
	tb, eb := d.run(before)
	ta, ea := d.run(after)
	switch {
	case eb != nil && ea != nil:
		if cb, ca := errCode(eb), errCode(ea); cb != ca {
			return false, fmt.Sprintf("error mismatch: before raises %s, after raises %s", cb, ca)
		}
		return true, ""
	case eb != nil:
		return false, fmt.Sprintf("before raises %s, after succeeds", errCode(eb))
	case ea != nil:
		return false, fmt.Sprintf("before succeeds, after raises %s", errCode(ea))
	case !ralg.TablesEqual(tb, ta):
		return false, "results differ"
	}
	return true, ""
}

// errCode extracts the stable identity of an execution error: the W3C
// code for typed XQuery errors, the message otherwise.
func errCode(err error) string {
	var xe *xqerr.Error
	if errors.As(err, &xe) {
		return xe.Code
	}
	return "!" + err.Error()
}

// repro renders the minimal reproducer: the rule, the synthesized
// inputs with their declared properties, both subplans via
// planck.Explain, and what each side produced.
func (d *domain) repro(step opt.RewriteStep, ins []ralg.Plan, lits []*ralg.LitDecl, before, after ralg.Plan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "rule: %s\n", step.Rule)
	for i, ld := range lits {
		fmt.Fprintf(&b, "input %d (%d rows)%s:\n%s", i, ld.Tab.N, declString(ld), ld.Tab.String())
	}
	b.WriteString("before:\n")
	b.WriteString(explainString(before))
	b.WriteString("after:\n")
	b.WriteString(explainString(after))
	b.WriteString("before yields: ")
	b.WriteString(resultString(d.run(before)))
	b.WriteString("after yields:  ")
	b.WriteString(resultString(d.run(after)))
	return b.String()
}

// declString renders the declared §4.1 properties of one literal.
func declString(ld *ralg.LitDecl) string {
	var parts []string
	if len(ld.Dense) > 0 {
		parts = append(parts, "dense{"+strings.Join(ld.Dense, ",")+"}")
	}
	if len(ld.Key) > 0 {
		parts = append(parts, "key{"+strings.Join(ld.Key, ",")+"}")
	}
	if len(ld.Const) > 0 {
		parts = append(parts, "const{"+strings.Join(ld.Const, ",")+"}")
	}
	for _, ord := range ld.Ords {
		parts = append(parts, "ord("+strings.Join(ord, ",")+")")
	}
	for _, g := range ld.Grps {
		parts = append(parts, "grpord("+strings.Join(g.Cols, ",")+"; "+g.Group+")")
	}
	if len(parts) == 0 {
		return ""
	}
	return " " + strings.Join(parts, " ")
}

func explainString(p ralg.Plan) string {
	s, _ := planck.Explain(p, planck.Config{})
	return s
}

func resultString(t *ralg.Table, err error) string {
	if err != nil {
		return "error " + errCode(err) + "\n"
	}
	return "\n" + t.String()
}
