package optcheck

import (
	"mxq/internal/opt"
	"mxq/internal/planck"
	"mxq/internal/ralg"
)

// shrink greedily minimizes a failing input set: per input it halves
// the row prefix, then drops individual rows, then drops columns, and
// repeats until no single reduction keeps the failure alive. Every
// candidate is re-validated — its declared properties must still hold
// (planck rejects, say, a dense column with a middle row removed), the
// pre-rewrite plan must still pass static verification (a column the
// operator reads cannot be dropped), and the before/after disagreement
// must persist. Each acceptance strictly reduces rows+columns, so the
// loop terminates.
func (d *domain) shrink(step opt.RewriteStep, ins []ralg.Plan, lits []*ralg.LitDecl) []*ralg.LitDecl {
	cur := append([]*ralg.LitDecl(nil), lits...)
	accept := func(k int, cand *ralg.LitDecl) bool {
		if planck.Verify(cand, planck.Config{}) != nil {
			return false
		}
		trial := append([]*ralg.LitDecl(nil), cur...)
		trial[k] = cand
		before, after := substitute(step, ins, trial)
		if planck.Verify(before, planck.Config{}) != nil {
			return false
		}
		if ok, _ := d.judge(before, after); ok {
			return false
		}
		cur = trial
		return true
	}
	for changed := true; changed; {
		changed = false
		for k := range cur {
			for cur[k].Tab.N > 0 && accept(k, prefixLit(cur[k], cur[k].Tab.N/2)) {
				changed = true
			}
			for i := cur[k].Tab.N - 1; i >= 0; i-- {
				if i < cur[k].Tab.N && accept(k, dropRowLit(cur[k], i)) {
					changed = true
				}
			}
			for _, c := range append([]string(nil), cur[k].Tab.Names()...) {
				if len(cur[k].Tab.Names()) > 1 && accept(k, dropColLit(cur[k], c)) {
					changed = true
				}
			}
		}
	}
	return cur
}

// prefixLit keeps the first m rows (every declared property survives a
// prefix truncation).
func prefixLit(ld *ralg.LitDecl, m int) *ralg.LitDecl {
	idx := make([]int32, m)
	for i := range idx {
		idx[i] = int32(i)
	}
	return rowsLit(ld, idx)
}

// dropRowLit removes row i; whether the declarations survive is left
// to the shrinker's re-verification.
func dropRowLit(ld *ralg.LitDecl, i int) *ralg.LitDecl {
	idx := make([]int32, 0, ld.Tab.N-1)
	for r := 0; r < ld.Tab.N; r++ {
		if r != i {
			idx = append(idx, int32(r))
		}
	}
	return rowsLit(ld, idx)
}

func rowsLit(ld *ralg.LitDecl, idx []int32) *ralg.LitDecl {
	return &ralg.LitDecl{
		Tab:   ld.Tab.Gather(idx),
		Ords:  ld.Ords,
		Grps:  ld.Grps,
		Dense: ld.Dense,
		Key:   ld.Key,
		Const: ld.Const,
	}
}

// dropColLit removes column c and every declaration that mentions it
// (orderings keep their prefix up to c).
func dropColLit(ld *ralg.LitDecl, c string) *ralg.LitDecl {
	t := ralg.NewTable(nil, nil)
	for _, name := range ld.Tab.Names() {
		if name != c {
			t.AddCol(name, *ld.Tab.Col(name))
		}
	}
	out := &ralg.LitDecl{
		Tab:   t,
		Dense: dropStr(ld.Dense, c),
		Key:   dropStr(ld.Key, c),
		Const: dropStr(ld.Const, c),
	}
	for _, ord := range ld.Ords {
		if pfx := truncAt(ord, c); len(pfx) > 0 {
			out.Ords = append(out.Ords, pfx)
		}
	}
	for _, g := range ld.Grps {
		if g.Group == c {
			continue
		}
		if pfx := truncAt(g.Cols, c); len(pfx) > 0 {
			out.Grps = append(out.Grps, ralg.GrpSpec{Cols: pfx, Group: g.Group})
		}
	}
	return out
}

func dropStr(ss []string, c string) []string {
	var out []string
	for _, s := range ss {
		if s != c {
			out = append(out, s)
		}
	}
	return out
}

func truncAt(cols []string, c string) []string {
	for i, s := range cols {
		if s == c {
			return append([]string(nil), cols[:i]...)
		}
	}
	return cols
}
