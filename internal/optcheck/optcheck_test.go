package optcheck_test

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"mxq/internal/core"
	"mxq/internal/opt"
	"mxq/internal/optcheck"
	"mxq/internal/qgen"
	"mxq/internal/ralg"
	"mxq/internal/xmark"
	"mxq/internal/xqt"
)

// The rule-coverage corpus: the twenty XMark benchmark queries plus
// five hundred generator-drawn ones (the differential fuzzer's input
// distribution, every third one parameterized). Compiled once and
// shared between the soundness and the coverage test.
var (
	corpusOnce   sync.Once
	corpusTraces [][]opt.RewriteStep
	corpusErr    error
)

func corpus(t *testing.T) [][]opt.RewriteStep {
	t.Helper()
	corpusOnce.Do(func() {
		eng := core.New(core.DefaultConfig())
		add := func(label, q string) {
			if corpusErr != nil {
				return
			}
			steps, err := eng.RewriteSteps(q)
			if err != nil {
				corpusErr = fmt.Errorf("%s rejected: %w\nquery: %s", label, err, q)
				return
			}
			corpusTraces = append(corpusTraces, steps)
		}
		for i, q := range xmark.Queries {
			add(fmt.Sprintf("XMark Q%d", i+1), q)
		}
		roots := []string{"/site", `doc("b.xml")/site`, `collection("xm")/site`, `collection("xm")`}
		g := qgen.New(20260807, roots)
		for i := 0; i < 500; i++ {
			var q string
			if i%3 == 2 {
				q = g.BoundQuery().Query
			} else {
				q = g.Query()
			}
			add(fmt.Sprintf("generated query %d", i), q)
		}
	})
	if corpusErr != nil {
		t.Fatal(corpusErr)
	}
	return corpusTraces
}

// Every rewrite the optimizer performs on the corpus must survive
// translation validation: before/after replays over synthesized
// micro-inputs honoring exactly the claimed §4.1 properties.
func TestCorpusRewritesSound(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus validation takes ~30s")
	}
	opts := optcheck.DefaultOptions()
	for i, steps := range corpus(t) {
		if err := optcheck.ValidateSteps(steps, opts); err != nil {
			t.Fatalf("corpus query %d: %v", i, err)
		}
	}
}

// Every registered rule must fire somewhere on the corpus — a rule
// with zero firings is a test gap (missing corpus query) or dead code
// (unsatisfiable guard), and either finding fails here. Exemptions
// require a stated reason.
func TestRuleCoverageFloor(t *testing.T) {
	cov := optcheck.NewCoverage()
	for _, steps := range corpus(t) {
		cov.Add(steps)
	}
	exempt := map[opt.Rule]string{
		// (none: every registered rule is exercised by the corpus)
	}
	if unfired := cov.Unfired(exempt); len(unfired) > 0 {
		t.Fatalf("registered rules never fired on the corpus:\n%s", cov.Report())
	}
	t.Logf("rule coverage over %d corpus queries:\n%s", len(corpusTraces), cov.Report())
}

// unsortedLit is a literal whose "a" column is distinct but unsorted —
// the optimizer's inference claims key(a) for it, never ord(a).
func unsortedLit() *ralg.Lit {
	tab := ralg.NewTable(nil, nil)
	tab.AddCol("a", ralg.Col{Kind: ralg.KInt, Int: []int64{3, 1, 5, 2, 4}})
	tab.AddCol("item", ralg.Col{Kind: ralg.KItem, Item: ralg.ItemsOf(
		xqt.Int(10), xqt.Int(20), xqt.Int(30), xqt.Int(40), xqt.Int(50))})
	return &ralg.Lit{Tab: tab}
}

// A deliberately unsound rewrite — dropping a sort whose ordering the
// input does NOT satisfy — must be caught, attributed to its rule, and
// shrunk to a minimal reproducer (two rows suffice to witness a wrong
// sort drop; the unused item column is shed).
func TestBrokenSortDropCaughtAndShrunk(t *testing.T) {
	in := unsortedLit()
	before := ralg.NewSort(in, "a")
	step := opt.RewriteStep{
		Rule:   "test.broken-sort-drop",
		Before: before,
		After:  in,
		Ins:    before.Inputs(),
	}
	err := optcheck.ValidateSteps([]opt.RewriteStep{step}, optcheck.DefaultOptions())
	var ue *optcheck.RewriteUnsoundError
	if !errors.As(err, &ue) {
		t.Fatalf("broken rewrite not caught, got: %v", err)
	}
	if ue.Rule != "test.broken-sort-drop" {
		t.Errorf("blamed rule %q, want test.broken-sort-drop", ue.Rule)
	}
	if ue.Msg != "results differ" {
		t.Errorf("unexpected disagreement message %q", ue.Msg)
	}
	for _, want := range []string{"rule: test.broken-sort-drop", "input 0 (2 rows)", "before:", "after:"} {
		if !strings.Contains(ue.Repro, want) {
			t.Errorf("reproducer missing %q:\n%s", want, ue.Repro)
		}
	}
	if strings.Contains(ue.Repro, "item") {
		t.Errorf("shrinker kept the irrelevant item column:\n%s", ue.Repro)
	}
}

// A rewrite whose output violates a static invariant — forcing the
// sequential rank mode onto an input whose order cannot justify it —
// is refuted by planck without needing execution, and still attributed
// to its rule.
func TestPlanckRefutedRewriteCaught(t *testing.T) {
	in := unsortedLit()
	before := ralg.NewRowNum(in, "rk", []string{"a"}, "")
	after := ralg.NewRowNum(in, "rk", []string{"a"}, "")
	after.Mode = ralg.RankSeq
	step := opt.RewriteStep{
		Rule:   "test.broken-rankseq",
		Before: before,
		After:  after,
		Ins:    before.Inputs(),
	}
	err := optcheck.ValidateSteps([]opt.RewriteStep{step}, optcheck.DefaultOptions())
	var ue *optcheck.RewriteUnsoundError
	if !errors.As(err, &ue) {
		t.Fatalf("planck-refutable rewrite not caught, got: %v", err)
	}
	if ue.Rule != "test.broken-rankseq" {
		t.Errorf("blamed rule %q, want test.broken-rankseq", ue.Rule)
	}
	if !strings.Contains(ue.Msg, "static verification") {
		t.Errorf("expected a static-verification refutation, got %q", ue.Msg)
	}
}

// A sound hand-built step — the witness shape the optimizer emits for
// a justified sort drop — validates cleanly: the synthesized inputs
// honor the declared ordering, so both sides agree.
func TestSoundSortDropValidates(t *testing.T) {
	tab := ralg.NewTable(nil, nil)
	tab.AddCol("a", ralg.Col{Kind: ralg.KInt, Int: []int64{1, 2, 3}})
	in := &ralg.LitDecl{Tab: tab, Ords: [][]string{{"a"}}, Key: []string{"a"}}
	before := ralg.NewSort(in, "a")
	step := opt.RewriteStep{
		Rule:   "test.sound-sort-drop",
		Before: before,
		After:  in,
		Ins:    before.Inputs(),
	}
	if err := optcheck.ValidateSteps([]opt.RewriteStep{step}, optcheck.DefaultOptions()); err != nil {
		t.Fatalf("sound rewrite rejected: %v", err)
	}
}

// Coverage bookkeeping: counts per rule, registry-ordered report with
// unfired rules marked, exemptions honored.
func TestCoverageReport(t *testing.T) {
	cov := optcheck.NewCoverage()
	cov.Add([]opt.RewriteStep{{Rule: opt.RuleSortDropCovered}, {Rule: opt.RuleSortDropCovered}, {Rule: opt.RuleRankSeq}})
	if got := cov.Count(opt.RuleSortDropCovered); got != 2 {
		t.Errorf("Count(sort.drop-covered) = %d, want 2", got)
	}
	rep := cov.Report()
	if !strings.Contains(rep, "! "+string(opt.RuleDistinctMerge)) && !strings.Contains(rep, "!") {
		t.Errorf("report does not mark unfired rules:\n%s", rep)
	}
	unfired := cov.Unfired(map[opt.Rule]string{opt.RuleDistinctMerge: "exercised elsewhere"})
	for _, r := range unfired {
		if r == opt.RuleDistinctMerge {
			t.Errorf("exempt rule reported unfired")
		}
		if r == opt.RuleSortDropCovered || r == opt.RuleRankSeq {
			t.Errorf("fired rule %s reported unfired", r)
		}
	}
	if len(unfired) != len(opt.Rules())-3 {
		t.Errorf("Unfired returned %d rules, want %d", len(unfired), len(opt.Rules())-3)
	}
}
