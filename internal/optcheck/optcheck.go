// Package optcheck is the translation validator of the optimizer: it
// checks every individual rewrite the peephole optimizer performs, not
// just the final plan. internal/planck verifies that an optimized plan
// is well-formed; optcheck verifies that each rewrite step preserved
// semantics, by replaying the step's before/after witness (see
// opt.RewriteStep) over small synthesized inputs.
//
// For each witness, the validator asks planck for the inferred schema
// and §4.1 column properties of every input of the rewritten node, and
// synthesizes literal tables that honor exactly those claims — several
// seeds and row counts, including empty and skewed shapes. The inputs
// are substituted into both the before and the after subplan (as
// ralg.LitDecl leaves carrying the claimed properties, so planck and
// the optimizer's own inference accept the substituted plans), both
// sides are executed, and the results must be byte-identical — the
// optimizer's contract is plan equivalence, not set equivalence.
//
// A mismatch is reported as a *RewriteUnsoundError naming the guilty
// rule, after greedily shrinking the failing input to a minimal
// reproducer (dropping rows and columns while the failure persists).
//
// The package complements planck the way a translation validator
// complements a type checker: planck catches rewrites whose output
// violates a static invariant, optcheck catches rewrites that produce
// well-formed but wrong plans.
package optcheck

import (
	"fmt"
	"os"
	"strconv"

	"mxq/internal/opt"
	"mxq/internal/planck"
	"mxq/internal/ralg"
)

// Options parameterizes one validation run.
type Options struct {
	// Seeds are the PRNG seeds used for input synthesis; every
	// (seed, rows) pair yields one input shape per rewrite step.
	Seeds []int64
	// Rows are the requested input sizes (the synthesizer may cap a
	// size when the claimed properties force fewer rows, e.g. a
	// constant key column admits at most one).
	Rows []int
	// Shrink minimizes failing inputs before reporting. Disable for
	// raw speed when only the verdict matters.
	Shrink bool
}

// DefaultOptions returns the standard validation options: three fixed
// seeds plus, when the MXQ_FUZZ_SEED environment variable parses as an
// integer, that seed (the CI job passes a fresh one per run), over
// empty, singleton, small and medium input sizes, with shrinking on.
func DefaultOptions() Options {
	o := Options{
		Seeds:  []int64{1, 42, 20260808},
		Rows:   []int{0, 1, 5, 16},
		Shrink: true,
	}
	if v := os.Getenv("MXQ_FUZZ_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			o.Seeds = append(o.Seeds, n)
		}
	}
	return o
}

// RewriteUnsoundError reports one rewrite step whose before/after
// subplans disagreed on a synthesized input satisfying all the
// properties the rewrite was justified by.
type RewriteUnsoundError struct {
	// Rule is the registered name of the guilty rewrite.
	Rule opt.Rule
	// Step is the index of the failing step in the validated trace.
	Step int
	// Seed and Rows identify the synthesis shape that exposed the bug.
	Seed int64
	Rows int
	// Msg describes the disagreement (result mismatch, error-code
	// mismatch, or a static-verification failure of the rewritten
	// plan).
	Msg string
	// Repro is the shrunk reproducer: the minimal inputs plus both
	// subplans rendered via planck.Explain.
	Repro string
}

// Error implements error.
func (e *RewriteUnsoundError) Error() string {
	return fmt.Sprintf("optcheck: rule %s unsound (step %d, seed %d, %d rows): %s\n%s",
		e.Rule, e.Step, e.Seed, e.Rows, e.Msg, e.Repro)
}

// ValidateSteps checks every rewrite witness in steps against
// synthesized micro-inputs and returns the first *RewriteUnsoundError
// found, or nil when every step validates. Steps whose inputs planck
// cannot analyze in isolation (or whose claimed properties the
// synthesizer cannot realize) are skipped — validation is best-effort
// per shape, never unsound: a reported failure is always backed by a
// concrete disagreeing input.
func ValidateSteps(steps []opt.RewriteStep, o Options) error {
	if len(steps) == 0 {
		return nil
	}
	d, err := newDomain()
	if err != nil {
		return fmt.Errorf("optcheck: building node domain: %w", err)
	}
	for i, step := range steps {
		if err := d.validateStep(step, i, o); err != nil {
			return err
		}
	}
	return nil
}

// validateStep checks one witness over every (seed, rows) shape.
func (d *domain) validateStep(step opt.RewriteStep, idx int, o Options) error {
	ins := dedupePlans(step.Ins)
	if len(ins) == 0 {
		return nil // leaf rewrite: nothing to substitute
	}
	cls := make([]*claims, len(ins))
	for i, in := range ins {
		infos, err := planck.Analyze(in, planck.Config{})
		if err != nil {
			return nil // input not independently verifiable: skip step
		}
		info := infos[in]
		if info.Schema == nil || info.Schema.Any || len(info.Schema.Cols()) == 0 {
			return nil
		}
		cls[i] = claimsOf(info)
	}
	for _, seed := range o.Seeds {
		for _, rows := range o.Rows {
			lits := make([]*ralg.LitDecl, len(ins))
			ok := true
			for i, cl := range cls {
				ld := d.synthInput(cl, rows, seed+int64(i)*7919)
				if ld == nil {
					ok = false
					break
				}
				lits[i] = ld
			}
			if !ok {
				continue // shape not realizable under the claims
			}
			if err := d.checkShape(step, idx, seed, rows, ins, lits, o); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkShape substitutes one synthesized input set into the witness and
// compares both sides, shrinking and reporting on disagreement.
func (d *domain) checkShape(step opt.RewriteStep, idx int, seed int64, rows int, ins []ralg.Plan, lits []*ralg.LitDecl, o Options) error {
	before, after := substitute(step, ins, lits)
	if err := planck.Verify(before, planck.Config{}); err != nil {
		// The synthesized input satisfies the claimed properties, yet
		// the pre-rewrite plan fails static verification: that is a bug
		// in the synthesizer (or a planck/opt inference disagreement),
		// not in the rule — surface it distinctly.
		return fmt.Errorf("optcheck: internal: synthesized input for rule %s (step %d, seed %d, %d rows) invalidates the pre-rewrite plan: %w",
			step.Rule, idx, seed, rows, err)
	}
	ok, msg := d.judge(before, after)
	if ok {
		return nil
	}
	if o.Shrink {
		lits = d.shrink(step, ins, lits)
		before, after = substitute(step, ins, lits)
		if _, m := d.judge(before, after); m != "" {
			msg = m
		}
	}
	return &RewriteUnsoundError{
		Rule:  step.Rule,
		Step:  idx,
		Seed:  seed,
		Rows:  rows,
		Msg:   msg,
		Repro: d.repro(step, ins, lits, before, after),
	}
}

// dedupePlans returns the distinct plans of ins in first-seen order.
func dedupePlans(ins []ralg.Plan) []ralg.Plan {
	out := make([]ralg.Plan, 0, len(ins))
	seen := make(map[ralg.Plan]bool, len(ins))
	for _, in := range ins {
		if in == nil || seen[in] {
			continue
		}
		seen[in] = true
		out = append(out, in)
	}
	return out
}

// substitute wires the synthesized inputs into copies of the witness's
// before and after subplans. One shared copier keeps input sharing
// intact: an input reachable from both sides maps to the same literal,
// and a rewrite whose after IS one of its inputs (sort.drop-covered)
// maps to that input's literal.
func substitute(step opt.RewriteStep, ins []ralg.Plan, lits []*ralg.LitDecl) (before, after ralg.Plan) {
	c := ralg.NewCopier()
	for i, in := range ins {
		c.Replace(in, lits[i])
	}
	return c.Copy(step.Before), c.Copy(step.After)
}
