package optcheck

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"mxq/internal/planck"
	"mxq/internal/ralg"
	"mxq/internal/store"
	"mxq/internal/xqt"
)

// claims is the synthesis contract for one rewrite input: the schema
// planck inferred for it plus the §4.1 properties the optimizer
// claimed — exactly the facts the rewrite was justified by. The
// synthesizer generates tables satisfying all of them; anything not
// claimed is left as adversarial as the generator can make it.
type claims struct {
	cols  []string
	info  map[string]planck.ColInfo
	ords  [][]string
	grps  []ralg.GrpSpec
	dense map[string]bool
	key   map[string]bool
	cnst  map[string]bool
}

// claimsOf extracts the synthesis contract from planck's per-node
// analysis. Claims referring to columns outside the schema are
// truncated (orderings keep their valid prefix) or dropped —
// defensive; inference should never produce them.
func claimsOf(info planck.Info) *claims {
	s := info.Schema
	cl := &claims{
		info:  map[string]planck.ColInfo{},
		dense: map[string]bool{},
		key:   map[string]bool{},
		cnst:  map[string]bool{},
	}
	for _, c := range s.Cols() {
		cl.cols = append(cl.cols, c)
		cl.info[c] = s.Info(c)
	}
	seen := map[string]bool{}
	for _, ord := range info.Props.Ords() {
		pfx := colPrefix(ord, s)
		if len(pfx) == 0 {
			continue
		}
		k := strings.Join(pfx, "\x00")
		if !seen[k] {
			seen[k] = true
			cl.ords = append(cl.ords, pfx)
		}
	}
	for _, g := range info.Props.Grps() {
		if !s.Has(g.Group) {
			continue
		}
		pfx := colPrefix(g.Cols, s)
		if len(pfx) == 0 {
			continue
		}
		k := "g\x00" + g.Group + "\x00" + strings.Join(pfx, "\x00")
		if !seen[k] {
			seen[k] = true
			cl.grps = append(cl.grps, ralg.GrpSpec{Cols: pfx, Group: g.Group})
		}
	}
	for _, c := range info.Props.DenseCols() {
		// pos-density only makes sense on integer columns; a dense
		// claim elsewhere would be an inference bug planck rejects.
		if s.Has(c) && s.Info(c).Kind == ralg.KInt {
			cl.dense[c] = true
		}
	}
	for _, c := range info.Props.KeyCols() {
		if s.Has(c) {
			cl.key[c] = true
		}
	}
	for _, c := range info.Props.ConstCols() {
		if s.Has(c) {
			cl.cnst[c] = true
		}
	}
	return cl
}

func colPrefix(cols []string, s *planck.Schema) []string {
	var out []string
	for _, c := range cols {
		if !s.Has(c) {
			break
		}
		out = append(out, c)
	}
	return out
}

// clone deep-copies the contract (the shrinker mutates claim sets when
// dropping columns).
func (cl *claims) clone() *claims {
	out := &claims{
		cols:  append([]string(nil), cl.cols...),
		info:  make(map[string]planck.ColInfo, len(cl.info)),
		dense: map[string]bool{},
		key:   map[string]bool{},
		cnst:  map[string]bool{},
	}
	for k, v := range cl.info {
		out.info[k] = v
	}
	for _, ord := range cl.ords {
		out.ords = append(out.ords, append([]string(nil), ord...))
	}
	for _, g := range cl.grps {
		out.grps = append(out.grps, ralg.GrpSpec{Cols: append([]string(nil), g.Cols...), Group: g.Group})
	}
	for c := range cl.dense {
		out.dense[c] = true
	}
	for c := range cl.key {
		out.key[c] = true
	}
	for c := range cl.cnst {
		out.cnst[c] = true
	}
	return out
}

// boolish reports whether column c holds two-valued data (a boolean
// column, or an item column statically known boolean) — a key claim on
// such a column caps the table at two rows.
func (cl *claims) boolish(c string) bool {
	ci := cl.info[c]
	return ci.Kind == ralg.KBool || (ci.Kind == ralg.KItem && ci.TagKnown && ci.Tag == xqt.KBool)
}

// maxRows returns the largest row count the claims admit, at most want.
func (cl *claims) maxRows(want int) int {
	n := want
	for _, c := range cl.cols {
		if cl.cnst[c] && (cl.key[c] || cl.dense[c]) && n > 1 {
			n = 1
		}
		if cl.key[c] && cl.boolish(c) && n > 2 {
			n = 2
		}
	}
	return n
}

// domain provides the node universe for synthesized node/attribute
// items (a small shredded document in a private pool) and the executors
// that replay substituted plans against snapshots of that pool.
type domain struct {
	base  *store.Pool
	docID int32
	elems []int32 // element pres in document order
	attrs int     // attribute table rows
}

// newDomain shreds the synthetic document once; snapshots of the pool
// host every subsequent execution (a snapshot shares the read-only
// document container, so node items stay valid across runs).
func newDomain() (*domain, error) {
	var b strings.Builder
	b.WriteString("<r>")
	for i := 0; i < 24; i++ {
		fmt.Fprintf(&b, `<e%d a="v%02d" b="w%02d">t%02d</e%d>`, i%4, i, i, i, i%4)
	}
	b.WriteString("</r>")
	c, err := store.Shred("optcheck.xml", strings.NewReader(b.String()), false)
	if err != nil {
		return nil, err
	}
	pool := store.NewPool()
	pool.Register(c)
	c.BuildIndexes()
	d := &domain{base: pool, docID: c.ID, attrs: len(c.AttrVal)}
	for pre := 0; pre < c.Len(); pre++ {
		if c.Kind[pre] == store.KindElem {
			d.elems = append(d.elems, int32(pre))
		}
	}
	return d, nil
}

// run executes one substituted subplan against a fresh snapshot of the
// domain pool with its own transient container — before and after
// replay in fully isolated executors, sharing only read-only state.
func (d *domain) run(p ralg.Plan) (*ralg.Table, error) {
	pool := d.base.Snapshot()
	tr := store.NewContainer("")
	pool.Register(tr)
	return ralg.NewExec(pool, tr).Run(p)
}

// synthInput builds a literal input honoring the claims at the given
// shape, or nil when no realizable table was found. The adversarial
// generator runs first; if its output fails planck's claim
// verification (over-coupled claims), a conservative fully-sorted
// generator is tried before giving up on the shape.
func (d *domain) synthInput(cl *claims, rows int, seed int64) *ralg.LitDecl {
	n := cl.maxRows(rows)
	rng := rand.New(rand.NewSource(seed*1000003 + int64(n)))
	for _, conservative := range []bool{false, true} {
		tab, err := d.materialize(cl, genCodes(cl, n, rng, conservative), n)
		if err != nil {
			continue
		}
		ld := litFor(cl, tab)
		if planck.Verify(ld, planck.Config{}) == nil {
			return ld
		}
	}
	return nil
}

// litFor wraps a synthesized table as a literal leaf declaring the
// claimed properties (planck verifies the declarations against the
// data, and both property inferences honor them downstream).
func litFor(cl *claims, tab *ralg.Table) *ralg.LitDecl {
	ld := &ralg.LitDecl{
		Tab:   tab,
		Dense: sortedSet(cl.dense),
		Key:   sortedSet(cl.key),
		Const: sortedSet(cl.cnst),
	}
	for _, ord := range cl.ords {
		ld.Ords = append(ld.Ords, append([]string(nil), ord...))
	}
	for _, g := range cl.grps {
		ld.Grps = append(ld.Grps, ralg.GrpSpec{Cols: append([]string(nil), g.Cols...), Group: g.Group})
	}
	return ld
}

func sortedSet(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// genCodes assigns every column an integer code sequence satisfying
// the claims; materialize maps codes to column values monotonically,
// so any ordering established here survives materialization.
//
// The adversarial generator satisfies each claim as tightly as it can:
// ordered columns get duplicate-heavy non-decreasing runs, columns
// ordered under a prefix reset at run boundaries (so they are NOT
// globally sorted), grouped orderings interleave their groups, and
// unconstrained columns are random with likely duplicates. The
// conservative generator makes every non-constant column 1..N — a
// shape satisfying any consistent claim combination — as a fallback
// when claims couple columns in ways the adversarial pass missed.
func genCodes(cl *claims, n int, rng *rand.Rand, conservative bool) map[string][]int64 {
	codes := make(map[string][]int64, len(cl.cols))
	assign := func(c string, cs []int64) {
		if _, ok := codes[c]; !ok {
			codes[c] = cs
		}
	}
	iota1 := func() []int64 {
		cs := make([]int64, n)
		for i := range cs {
			cs[i] = int64(i + 1)
		}
		return cs
	}
	for c := range cl.dense {
		assign(c, iota1())
	}
	for c := range cl.cnst {
		if _, ok := codes[c]; ok {
			continue
		}
		v := int64(0)
		if !conservative {
			v = rng.Int63n(3)
			if cl.boolish(c) {
				v = rng.Int63n(2)
			}
		}
		cs := make([]int64, n)
		for i := range cs {
			cs[i] = v
		}
		assign(c, cs)
	}
	if conservative {
		for _, c := range cl.cols {
			assign(c, iota1())
		}
		return codes
	}
	for _, ord := range cl.ords {
		for j, c := range ord {
			if _, ok := codes[c]; ok {
				continue
			}
			cs := make([]int64, n)
			switch {
			case j == 0 || cl.key[c]:
				// Leading ordered column (or a unique column anywhere in
				// the ordering): globally non-decreasing, strictly so when
				// unique.
				v := rng.Int63n(3)
				for i := range cs {
					cs[i] = v
					if cl.key[c] {
						v += 1 + rng.Int63n(2)
					} else {
						v += rng.Int63n(2)
					}
				}
			default:
				// Ordered only within runs of equal prefix values: reset
				// to a random base at each run boundary, so the column is
				// not globally sorted.
				prefix := ord[:j]
				v := rng.Int63n(4)
				for i := range cs {
					if i > 0 && prefixChanged(codes, prefix, i) {
						v = rng.Int63n(4)
					} else if i > 0 {
						v += rng.Int63n(2)
					}
					cs[i] = v
				}
			}
			assign(c, cs)
		}
	}
	for _, g := range cl.grps {
		gv, ok := codes[g.Group]
		if !ok {
			// Interleaved small group ids (unique group columns fall out
			// of the key branch below, making every group a singleton).
			gv = make([]int64, n)
			if cl.key[g.Group] {
				for i, p := range rng.Perm(n) {
					gv[i] = int64(p)
				}
			} else {
				groups := int64(2)
				if n > 6 {
					groups = 3
				}
				if cl.boolish(g.Group) {
					groups = 2
				}
				for i := range gv {
					gv[i] = rng.Int63n(groups)
				}
			}
			assign(g.Group, gv)
		}
		// Distinct group values, ranked, so per-group codes can encode
		// (counter, group) pairs that are globally unique yet increase
		// only within each group.
		grank := rankOf(gv)
		ng := int64(len(grank))
		for _, c := range g.Cols {
			if _, ok := codes[c]; ok {
				continue
			}
			cs := make([]int64, n)
			ctr := map[int64]int64{}
			for i := range cs {
				k := gv[i]
				if cl.key[c] {
					cs[i] = ctr[k]*(ng+1) + int64(grank[k])
					ctr[k]++
				} else {
					cs[i] = ctr[k]
					ctr[k] += rng.Int63n(2)
				}
			}
			assign(c, cs)
		}
	}
	for _, c := range cl.cols {
		if _, ok := codes[c]; ok {
			continue
		}
		cs := make([]int64, n)
		switch {
		case cl.key[c]:
			for i, p := range rng.Perm(n) {
				cs[i] = int64(p)
			}
		case cl.boolish(c):
			for i := range cs {
				cs[i] = rng.Int63n(2)
			}
		default:
			for i := range cs {
				cs[i] = rng.Int63n(4)
			}
		}
		assign(c, cs)
	}
	return codes
}

// prefixChanged reports whether row i differs from row i-1 on any of
// the (already assigned) prefix columns.
func prefixChanged(codes map[string][]int64, prefix []string, i int) bool {
	for _, p := range prefix {
		if cs, ok := codes[p]; ok && cs[i] != cs[i-1] {
			return true
		}
	}
	return false
}

// rankOf maps each distinct code to its rank in ascending code order —
// the monotone bridge between generated codes and materialized values.
func rankOf(cs []int64) map[int64]int {
	distinct := make([]int64, 0, len(cs))
	seen := map[int64]bool{}
	for _, v := range cs {
		if !seen[v] {
			seen[v] = true
			distinct = append(distinct, v)
		}
	}
	sort.Slice(distinct, func(a, b int) bool { return distinct[a] < distinct[b] })
	out := make(map[int64]int, len(distinct))
	for r, v := range distinct {
		out[v] = r
	}
	return out
}

// materialize turns code sequences into a table of the claimed schema.
// Every mapping from codes to values is monotone under the executor's
// comparator (xqt.SortLess for items), so orderings and distinctness
// established on codes hold on the materialized values. Node and
// attribute codes map rank-wise into the domain document (errors when
// the document is too small for the required distinct count).
func (d *domain) materialize(cl *claims, codes map[string][]int64, n int) (*ralg.Table, error) {
	t := ralg.NewTable(nil, nil)
	for _, name := range cl.cols {
		cs := codes[name]
		ci := cl.info[name]
		var col ralg.Col
		switch ci.Kind {
		case ralg.KInt:
			col = ralg.Col{Kind: ralg.KInt, Int: append([]int64(nil), cs...)}
		case ralg.KBool:
			col = ralg.Col{Kind: ralg.KBool, Bool: boolsOf(cs)}
		default:
			iv, err := d.itemsOf(ci, cs)
			if err != nil {
				return nil, err
			}
			col = ralg.Col{Kind: ralg.KItem, Item: iv}
		}
		t.AddCol(name, col)
	}
	return t, nil
}

// boolsOf collapses codes to booleans monotonically: the smallest code
// maps to false, larger codes to true — preserving order, constness
// and (for two distinct codes) distinctness.
func boolsOf(cs []int64) []bool {
	out := make([]bool, len(cs))
	if len(cs) == 0 {
		return out
	}
	min := cs[0]
	for _, v := range cs {
		if v < min {
			min = v
		}
	}
	for i, v := range cs {
		out[i] = v > min
	}
	return out
}

// itemsOf materializes an item column of the statically known shape.
// Unknown tags default to integers — downstream checks that survived
// planck on the original input cannot have relied on a tag planck did
// not know.
func (d *domain) itemsOf(ci planck.ColInfo, cs []int64) (ralg.ItemVec, error) {
	var iv ralg.ItemVec
	ranks := rankOf(cs)
	tag := xqt.KInt
	if ci.Node {
		tag = xqt.KNode
	} else if ci.TagKnown {
		tag = ci.Tag
	}
	switch tag {
	case xqt.KNode:
		if len(ranks) > len(d.elems) {
			return iv, fmt.Errorf("optcheck: %d distinct nodes wanted, domain has %d", len(ranks), len(d.elems))
		}
	case xqt.KAttr:
		if len(ranks) > d.attrs {
			return iv, fmt.Errorf("optcheck: %d distinct attributes wanted, domain has %d", len(ranks), d.attrs)
		}
	}
	bools := boolsOf(cs)
	for i, v := range cs {
		r := ranks[v]
		switch tag {
		case xqt.KNode:
			iv.Append(xqt.Node(d.docID, d.elems[r]))
		case xqt.KAttr:
			iv.Append(xqt.Attr(d.docID, int32(r)))
		case xqt.KDouble:
			iv.Append(xqt.Double(float64(r) + 0.5))
		case xqt.KString:
			iv.Append(xqt.Str(fmt.Sprintf("s%04d", r)))
		case xqt.KUntyped:
			iv.Append(xqt.Untyped(fmt.Sprintf("s%04d", r)))
		case xqt.KBool:
			iv.Append(xqt.Bool(bools[i]))
		default:
			iv.Append(xqt.Int(v))
		}
	}
	return iv, nil
}
