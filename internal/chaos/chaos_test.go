// Package chaos is the deterministic fault-injection suite: it drives
// the XMark query mix through the full engine stack — snapshotting,
// relational operators, parallel staircase-join forks, scheduler
// admission and release — while the fault registry (internal/faults)
// injects allocation-failure errors, cancellations, and panics at every
// registered site, and asserts the robustness invariants the rest of
// the repository relies on:
//
//  1. no injected panic escapes ExecuteContext (the process survives
//     every site × mode combination),
//  2. no goroutines leak across faulted executions (fork-join workers
//     always drain), and
//  3. once faults are disarmed, the same engine answers every query of
//     the mix byte-identical to the serial oracle — a faulted execution
//     never poisons memoization, the plan cache, the scheduler, or the
//     store.
//
// Runs are reproducible: the injection schedule is a pure function of
// (site, probability, seed), with the seed overridable via
// MXQ_FAULTS_SEED (the chaos-smoke CI target passes the workflow run
// id, so every CI run explores a different deterministic schedule whose
// failures replay locally with the same seed).
package chaos

import (
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"

	"mxq/internal/core"
	"mxq/internal/faults"
	"mxq/internal/sched"
	"mxq/internal/testutil"
	"mxq/internal/xmark"
	"mxq/internal/xqerr"
)

// chaosSeed returns the injection seed: MXQ_FAULTS_SEED when set (the
// CI smoke target passes the workflow run id), a fixed default
// otherwise.
func chaosSeed(t *testing.T) uint64 {
	if v := os.Getenv("MXQ_FAULTS_SEED"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			t.Fatalf("MXQ_FAULTS_SEED=%q: %v", v, err)
		}
		return n
	}
	return 424242
}

// engineSites are the fault points the in-process engine stack reaches;
// serve.stream needs an HTTP response writer and is exercised by the
// serving-layer chaos test in internal/serve.
var engineSites = []string{"store.snapshot", "ralg.op", "scj.fork", "sched.admit", "sched.release"}

func TestChaosXMarkMix(t *testing.T) {
	testutil.CheckGoroutines(t)
	t.Cleanup(faults.Reset)
	seed := chaosSeed(t)
	const factor, genSeed = 0.002, 11
	cont := xmark.NewStoreContainer("auction.xml", factor, genSeed)

	// Serial oracle results, computed before any fault is armed.
	oracle := core.New(core.DefaultConfig())
	oracle.LoadContainer("auction.xml", cont)
	want := make([]string, len(xmark.Queries))
	for i, q := range xmark.Queries {
		w, err := oracle.QueryString(q)
		if err != nil {
			t.Fatalf("oracle Q%d: %v", i+1, err)
		}
		want[i] = w
	}

	// The engine under attack: parallel with a forced threshold (so
	// scj.fork sites actually fork) under a scheduler (so sched.admit
	// and sched.release sites are on every execution's path).
	cfg := core.ParallelConfig()
	cfg.Workers = 4
	cfg.ParallelThreshold = 1
	// RowsPerWorker 1 defeats the data-size budget cap: the chaos corpus
	// is deliberately tiny, but the forks must happen for scj.fork to be
	// reachable.
	cfg.Scheduler = sched.New(sched.Config{Workers: 8, MaxConcurrent: 8, RowsPerWorker: 1, MemPerQuery: 64 << 20})
	eng := core.New(cfg)
	eng.LoadContainer("auction.xml", cont)

	// every registered engine site must actually exist in the catalog
	catalog := strings.Join(faults.Sites(), ",")
	for _, site := range engineSites {
		if !strings.Contains(catalog, site) {
			t.Fatalf("site %q not registered (catalog: %s)", site, catalog)
		}
	}

	for _, site := range engineSites {
		for mode, modeName := range map[faults.Mode]string{
			faults.ModeError:  "error",
			faults.ModePanic:  "panic",
			faults.ModeCancel: "cancel",
		} {
			t.Run(site+"/"+modeName, func(t *testing.T) {
				faults.Reset()
				if err := faults.Enable(site, 0.5, seed, mode); err != nil {
					t.Fatal(err)
				}
				// Invariant 1: no panic escapes — any injected failure
				// surfaces as an error return (or the query survives).
				failed := 0
				for i, q := range xmark.Queries {
					got, err := eng.QueryString(q)
					if err != nil {
						failed++
						continue
					}
					if got != want[i] {
						t.Errorf("faulted run Q%d returned a WRONG result (not an error)", i+1)
					}
				}
				faults.Reset()
				if failed == 0 {
					t.Errorf("no query failed with %s armed at p=0.5 — site is likely not wired", site)
				}
				// Invariant 3: the engine is unpoisoned — the full mix,
				// un-faulted, is byte-identical to the serial oracle.
				for i, q := range xmark.Queries {
					got, err := eng.QueryString(q)
					if err != nil {
						t.Errorf("post-fault Q%d: %v", i+1, err)
						continue
					}
					if got != want[i] {
						t.Errorf("post-fault Q%d differs from the serial oracle", i+1)
					}
				}
				// Invariant 2 (no goroutine leaks) is asserted by
				// testutil.CheckGoroutines at test cleanup.
			})
		}
	}
}

// TestChaosConcurrentClients arms every engine site at once at a lower
// probability and hammers the engine from concurrent clients — the
// worst case for drain bugs: faults firing while other executions hold
// scheduler slots and fork-join workers. The process must survive,
// and afterwards the engine must still agree with the oracle.
func TestChaosConcurrentClients(t *testing.T) {
	testutil.CheckGoroutines(t)
	t.Cleanup(faults.Reset)
	seed := chaosSeed(t)
	cont := xmark.NewStoreContainer("auction.xml", 0.002, 11)

	oracle := core.New(core.DefaultConfig())
	oracle.LoadContainer("auction.xml", cont)

	cfg := core.ParallelConfig()
	cfg.Workers = 4
	cfg.ParallelThreshold = 1
	cfg.Scheduler = sched.New(sched.Config{Workers: 8, MaxConcurrent: 8, RowsPerWorker: 1, MemPerQuery: 64 << 20})
	eng := core.New(cfg)
	eng.LoadContainer("auction.xml", cont)

	faults.Reset()
	for _, site := range engineSites {
		mode := faults.ModeError
		if site == "scj.fork" || site == "store.snapshot" {
			mode = faults.ModePanic // these sites inject panics by design
		}
		if err := faults.Enable(site, 0.05, seed, mode); err != nil {
			t.Fatal(err)
		}
	}

	const clients, rounds = 8, 5
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				q := xmark.Queries[(c*rounds+r)%len(xmark.Queries)]
				// errors are expected; escapes/panics would kill the test
				_, _ = eng.QueryString(q)
			}
		}(c)
	}
	wg.Wait()
	faults.Reset()

	for i, q := range xmark.Queries {
		w, err := oracle.QueryString(q)
		if err != nil {
			t.Fatalf("oracle Q%d: %v", i+1, err)
		}
		got, err := eng.QueryString(q)
		if err != nil {
			t.Errorf("post-chaos Q%d: %v", i+1, err)
			continue
		}
		if got != w {
			t.Errorf("post-chaos Q%d differs from the serial oracle", i+1)
		}
	}
}

// TestChaosWithMemBudget overlays fault injection on a tight memory
// budget: both stop mechanisms share the executor's poll sites, so this
// is the cross-check that neither masks the other and the typed errors
// stay classifiable.
func TestChaosWithMemBudget(t *testing.T) {
	testutil.CheckGoroutines(t)
	t.Cleanup(faults.Reset)
	cont := xmark.NewStoreContainer("auction.xml", 0.002, 11)
	cfg := core.ParallelConfig()
	cfg.Workers = 4
	cfg.ParallelThreshold = 1
	cfg.MemLimit = 2 << 20
	eng := core.New(cfg)
	eng.LoadContainer("auction.xml", cont)

	faults.Reset()
	if err := faults.Enable("ralg.op", 0.3, chaosSeed(t), faults.ModeError); err != nil {
		t.Fatal(err)
	}
	for i, q := range xmark.Queries {
		_, err := eng.QueryString(q)
		if err == nil {
			continue
		}
		// every failure must be one of the two governed classes
		if !faults.IsInjected(err) && !xqerr.IsResourceLimit(err) {
			t.Errorf("Q%d: unclassified failure %v", i+1, err)
		}
	}
	faults.Reset()
}
