// Package testutil holds assertions shared across the engine's test
// suites. It may only be imported from _test.go files.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// CheckGoroutines snapshots the process goroutine count and registers a
// cleanup that fails the test when the count has not settled back to
// the snapshot — plus a small slack for runtime helpers and lingering
// HTTP keep-alive connections — within five seconds. Call it before
// spawning the work under test; it is the shared no-goroutine-leak
// assertion of the serving, scheduler and chaos suites. Exiting
// goroutines are reaped asynchronously, so the cleanup polls rather
// than sampling once.
func CheckGoroutines(t testing.TB) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		const slack = 2
		deadline := time.Now().Add(5 * time.Second)
		for {
			if n := runtime.NumGoroutine(); n <= before+slack {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("goroutine leak: %d before, %d after (slack %d)",
					before, runtime.NumGoroutine(), slack)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}
