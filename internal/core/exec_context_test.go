package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"mxq/internal/ralg"
	"mxq/internal/testutil"
	"mxq/internal/xqc"
)

// slowQuery generates ~4M rows through RangeGen and aggregates them —
// long enough that a 50ms deadline always fires mid-execution, yet
// bounded (a lost cancellation still finishes in a few seconds rather
// than hanging the suite).
const slowQuery = `sum(for $i in 1 to 2000 return sum(for $j in 1 to 2000 return $i * $j))`

func TestQueryContextDeadline(t *testing.T) {
	e := New(DefaultConfig())
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := e.QueryContext(ctx, slowQuery)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if res != nil {
		t.Fatalf("got partial result %v alongside the context error", res)
	}
	// promptness: the checkpoints are amortized over a few thousand
	// rows, so the abort must land well before the query's natural
	// multi-second runtime
	if elapsed > 2*time.Second {
		t.Fatalf("cancelled query returned after %v", elapsed)
	}
}

func TestQueryContextCancelledBeforeRun(t *testing.T) {
	e := New(DefaultConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.QueryContext(ctx, `1+1`); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestQueryContextCompleteRunsUnaffected(t *testing.T) {
	e := New(DefaultConfig())
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	r, err := e.QueryContext(ctx, `sum(for $i in 1 to 100 return $i)`)
	if err != nil {
		t.Fatalf("QueryContext: %v", err)
	}
	if got := r.String(); got != "5050" {
		t.Fatalf("result = %q, want 5050", got)
	}
}

// TestCancelledExecDrainsWorkers forces the parallel operator paths
// (workers > 1, threshold 1) and verifies a deadline abort neither
// leaks worker goroutines nor returns a partial result. The worker
// pool is a fork-join barrier, so ExecuteContext returning implies the
// workers exited; the goroutine count check guards that invariant.
func TestCancelledExecDrainsWorkers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Parallel = true
	cfg.Workers = 4
	cfg.ParallelThreshold = 1
	e := New(cfg)
	p, err := e.Prepare(slowQuery)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	testutil.CheckGoroutines(t)
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		res, err := p.ExecuteContext(ctx, nil)
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("run %d: err = %v, want context.DeadlineExceeded", i, err)
		}
		if res != nil {
			t.Fatalf("run %d: got partial result", i)
		}
	}
	// testutil.CheckGoroutines asserts at cleanup that the cancelled
	// executions' workers all drained
}

// TestExecutePanicContained feeds the executor a malformed plan — a
// Select over a column that does not exist, which panics inside
// ralg.Table.Col — and verifies the execution boundary converts the
// panic into an error carrying the query text instead of crashing the
// process.
func TestExecutePanicContained(t *testing.T) {
	tab := ralg.NewTable([]string{"iter"}, []ralg.ColKind{ralg.KInt})
	tab.Col("iter").Int = []int64{1}
	tab.N = 1
	broken := &ralg.Select{Cond: "no-such-column"}
	broken.SetInput(0, &ralg.Lit{Tab: tab})
	p := &Prepared{
		eng:   New(DefaultConfig()),
		query: "q-with-broken-plan",
		cq:    &xqc.Compiled{Plan: broken},
	}
	res, err := p.Execute(nil)
	if err == nil {
		t.Fatal("Execute of a malformed plan returned no error")
	}
	if res != nil {
		t.Fatal("Execute of a malformed plan returned a result")
	}
	if !strings.Contains(err.Error(), "internal error") {
		t.Errorf("error %q does not identify itself as internal", err)
	}
	if !strings.Contains(err.Error(), "q-with-broken-plan") {
		t.Errorf("error %q does not carry the query text", err)
	}
}

// TestExecutePanicContainedInputIndex covers the other panic family the
// executor mints: plan-node input-index violations.
func TestExecutePanicContainedInputIndex(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("SetInput out of range did not panic (test premise broken)")
		}
	}()
	s := &ralg.Select{}
	s.SetInput(1, &ralg.Lit{})
}
