package core

import (
	"context"
	"fmt"

	"mxq/internal/ralg"
	"mxq/internal/sched"
	"mxq/internal/store"
	"mxq/internal/xqc"
	"mxq/internal/xqerr"
)

// Bindings maps external variable names (declared in the query prolog
// with "declare variable $name external") to their bound sequences,
// materialized as typed item vectors via the ralg.Bind* constructors.
type Bindings = ralg.Bindings

// Prepared is a prepared query: the parse/compile/optimize cost is paid
// once (Prepare) and amortized across executions (Execute). A Prepared
// handle is immutable and safe for concurrent use — any number of
// goroutines may Execute it simultaneously with different bindings;
// each execution takes a fresh snapshot of the engine's loaded
// documents (and of its current context document) plus its own
// transient container, exactly like Engine.Query.
type Prepared struct {
	eng   *Engine
	query string
	cq    *xqc.Compiled
	// ops/joins are the main plan's cost hints, counted once at prepare
	// time; the scheduler derives each execution's worker budget from
	// them (plus the snapshot size, known only at execution time).
	ops, joins int
}

// Prepare parses, compiles and optimizes q into a reusable statement
// handle. Repeated Prepare calls for the same query text hit the plan
// cache, so handles are cheap to re-derive; holding one pins the
// compiled plan independent of cache eviction.
func (e *Engine) Prepare(q string) (*Prepared, error) {
	cq, err := e.compile(q)
	if err != nil {
		return nil, err
	}
	ops, joins := ralg.CountOps(cq.Plan)
	return &Prepared{eng: e, query: q, cq: cq, ops: ops, joins: joins}, nil
}

// Query returns the query text the statement was prepared from.
func (p *Prepared) Query() string { return p.query }

// Plan exposes the compiled main plan (benchmarks, plan statistics).
func (p *Prepared) Plan() ralg.Plan { return p.cq.Plan }

// VarInfo describes one external variable of a prepared query, in
// declaration order.
type VarInfo struct {
	Name string
	// Required is true for "declare variable $x external;" without a
	// default: executing without a binding for it raises XPDY0002.
	Required bool
	// Singleton is true when the declaration's default expression is
	// statically a single item: binding more than one item raises
	// XPTY0004.
	Singleton bool
}

// Vars returns the external variables the statement accepts, in
// declaration order.
func (p *Prepared) Vars() []VarInfo {
	var out []VarInfo
	for _, prm := range p.cq.Params {
		if !prm.External {
			continue
		}
		out = append(out, VarInfo{Name: prm.Name, Required: prm.Init == nil, Singleton: prm.Singleton})
	}
	return out
}

// Execute runs the prepared plan under the given bindings and returns
// the result. Bindings are validated against the declared external
// variables: binding an undeclared name is XPST0008, leaving a
// required external unbound is XPDY0002, and binding a multi-item
// sequence where the declaration's default implies a single item is
// XPTY0004. Unbound externals with defaults — and all non-external
// prolog variables — are evaluated per execution, in declaration
// order, against the same document snapshot as the main plan.
func (p *Prepared) Execute(b Bindings) (*Result, error) {
	return p.ExecuteContext(context.Background(), b)
}

// ExecuteContext is Execute under a context: when ctx carries a
// deadline or is cancelled mid-execution, the executor's operators
// abandon their work at the next checkpoint, all parallel workers
// drain (the worker pool is a fork-join barrier), and the call returns
// ctx.Err() — never a partial result. A nil ctx behaves like
// context.Background().
//
// Under an engine scheduler (Config.Scheduler) the execution first
// admits itself — waiting, deadline-aware, for an execution slot and
// failing with sched.ErrQueueFull when the admission queue is full —
// unless ctx already carries a grant (sched.WithGrant), in which case
// that grant's budget governs and no second admission happens. The
// granted budget caps the execution's parallel workers, and the
// fork-join regions draw their goroutines from the scheduler's shared
// slot pool.
func (p *Prepared) ExecuteContext(ctx context.Context, b Bindings) (res *Result, err error) {
	// The executor trusts its plans: a malformed plan (or an executor
	// bug) panics rather than corrupting results. Contain such panics
	// here — the execution boundary every API path funnels through — so
	// one bad query cannot take down a server embedding the engine.
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("mxq: internal error evaluating query %q: %v", p.query, r)
		}
	}()
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for name := range b {
		if !p.declaresExternal(name) {
			return nil, xqerr.Newf("XPST0008", "no external variable $%s declared", name)
		}
	}
	e := p.eng
	grant := sched.GrantFrom(ctx)
	if grant == nil && e.cfg.Scheduler != nil {
		e.mu.RLock()
		rows := e.pool.Rows()
		e.mu.RUnlock()
		g, err := e.cfg.Scheduler.Admit(ctx, sched.Cost{Ops: p.ops, Joins: p.joins, Rows: rows})
		if err != nil {
			return nil, err
		}
		defer g.Release()
		grant = g
	} else if grant != nil {
		// The serving layer admits before it compiles (budget 1 until the
		// plan is known); finalize the budget from this statement's cost.
		e.mu.RLock()
		rows := e.pool.Rows()
		e.mu.RUnlock()
		grant.SetCost(sched.Cost{Ops: p.ops, Joins: p.joins, Rows: rows})
	}
	// The snapshot is taken after admission: a queued execution sees the
	// document state as of when it actually starts running.
	e.mu.RLock()
	doc := e.defaultDoc
	qp := e.pool.Snapshot()
	e.mu.RUnlock()
	transient := store.NewContainer("")
	qp.Register(transient)
	ex := ralg.NewExec(qp, transient)
	ex.Par = e.parOptions()
	if grant != nil && ex.Par.Workers > 1 {
		if b := grant.Budget(); b < ex.Par.Workers {
			ex.Par.Workers = b
		}
		ex.Par.Slots = grant
	}
	ex.ContextDoc = doc
	ex.Ctx = ctx
	limit := e.cfg.MemLimit
	if grant != nil {
		if gl := grant.MemLimit(); gl > 0 && (limit == 0 || gl < limit) {
			limit = gl
		}
	}
	if mem := ralg.NewMemBudget(limit); mem != nil {
		// The pinned snapshot is the execution's first materialized
		// state: charge one byte per structural row up front, so a budget
		// smaller than the context documents fails with the typed error
		// before the first operator runs.
		mem.Charge(qp.Rows())
		if err := mem.Err(); err != nil {
			return nil, err
		}
		ex.Mem = mem
	}
	env := make(ralg.Bindings, len(p.cq.Params))
	ex.Bindings = env
	for i := range p.cq.Params {
		prm := &p.cq.Params[i]
		if prm.External {
			if v, ok := b[prm.Name]; ok {
				if prm.Singleton && v.Len() > 1 {
					return nil, xqerr.Newf("XPTY0004", "external variable $%s expects a single item (its default is one) but is bound to %d items", prm.Name, v.Len())
				}
				env[prm.Name] = v
				continue
			}
			if prm.Init == nil {
				return nil, xqerr.Newf("XPDY0002", "no value bound for external variable $%s", prm.Name)
			}
		}
		tab, err := ex.Run(prm.Init)
		if err != nil {
			return nil, err
		}
		env[prm.Name] = *tab.ItemVec("item")
	}
	tab, err := ex.Run(p.cq.Plan)
	if err != nil {
		return nil, err
	}
	e.statsMu.Lock()
	e.lastStats = ex.Stats
	e.statsMu.Unlock()
	// Items materializes a fresh polymorphic slice off the typed-vector
	// column, so the result does not pin the executor's tables.
	return &Result{Items: tab.Items("item"), pool: qp}, nil
}

// ExecuteString runs the prepared plan under the given bindings and
// serializes the result.
func (p *Prepared) ExecuteString(b Bindings) (string, error) {
	r, err := p.Execute(b)
	if err != nil {
		return "", err
	}
	return r.String(), nil
}

func (p *Prepared) declaresExternal(name string) bool {
	for _, prm := range p.cq.Params {
		if prm.External && prm.Name == name {
			return true
		}
	}
	return false
}
