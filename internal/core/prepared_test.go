package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"mxq/internal/ralg"
)

func preparedTestEngine(t *testing.T) *Engine {
	t.Helper()
	eng := New(DefaultConfig())
	doc := `<site><item n="1"><price>10</price></item><item n="2"><price>25</price></item><item n="3"><price>40</price></item></site>`
	if err := eng.LoadXML("site.xml", strings.NewReader(doc)); err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestPreparedBindings(t *testing.T) {
	eng := preparedTestEngine(t)
	p, err := eng.Prepare(`declare variable $min external;
		for $i in /site/item where number($i/price) > $min return $i/@n`)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		min  int64
		want string
	}{{0, `n="1"n="2"n="3"`}, {10, `n="2"n="3"`}, {30, `n="3"`}, {100, ``}}
	for _, c := range cases {
		got, err := p.ExecuteString(Bindings{"min": ralg.BindInts(c.min)})
		if err != nil {
			t.Fatalf("min=%d: %v", c.min, err)
		}
		if got != c.want {
			t.Errorf("min=%d: got %q, want %q", c.min, got, c.want)
		}
	}
}

func TestPreparedDefaultsAndGlobals(t *testing.T) {
	eng := preparedTestEngine(t)
	p, err := eng.Prepare(`declare variable $base := count(/site/item);
		declare variable $extra external := 10;
		$base + $extra`)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := p.ExecuteString(nil); got != "13" {
		t.Errorf("default binding: got %q, want 13", got)
	}
	if got, _ := p.ExecuteString(Bindings{"extra": ralg.BindInts(100)}); got != "103" {
		t.Errorf("explicit binding: got %q, want 103", got)
	}
	// globals may feed later defaults
	p2, err := eng.Prepare(`declare variable $g := 5;
		declare variable $x external := $g * 2;
		$x`)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := p2.ExecuteString(nil); got != "10" {
		t.Errorf("default over global: got %q, want 10", got)
	}
}

func TestPreparedVarsIntrospection(t *testing.T) {
	eng := preparedTestEngine(t)
	p, err := eng.Prepare(`declare variable $g := 1;
		declare variable $a external;
		declare variable $b external := 2;
		$g + $a + $b`)
	if err != nil {
		t.Fatal(err)
	}
	vars := p.Vars()
	if len(vars) != 2 {
		t.Fatalf("Vars() = %v, want the 2 externals", vars)
	}
	if vars[0].Name != "a" || !vars[0].Required {
		t.Errorf("vars[0] = %+v, want required $a", vars[0])
	}
	if vars[1].Name != "b" || vars[1].Required || !vars[1].Singleton {
		t.Errorf("vars[1] = %+v, want optional singleton $b", vars[1])
	}
}

func TestPreparedErrorSurface(t *testing.T) {
	eng := preparedTestEngine(t)
	// compile-time: reference to an undeclared variable
	if _, err := eng.Prepare(`$nope + 1`); err == nil || !strings.Contains(err.Error(), "XPST0008") {
		t.Errorf("undeclared variable: err = %v, want XPST0008", err)
	}
	// a declaration's default may not reference later declarations
	if _, err := eng.Prepare(`declare variable $a external := $b; declare variable $b external := 1; $a`); err == nil || !strings.Contains(err.Error(), "XPST0008") {
		t.Errorf("forward reference in default: err = %v, want XPST0008", err)
	}
	// parse-time: duplicate declaration
	if _, err := eng.Prepare(`declare variable $x external; declare variable $x external; $x`); err == nil || !strings.Contains(err.Error(), "XQST0049") {
		t.Errorf("duplicate declaration: err = %v, want XQST0049", err)
	}
	p, err := eng.Prepare(`declare variable $x external; declare variable $one external := 1; $x`)
	if err != nil {
		t.Fatal(err)
	}
	// execution-time: required external unbound
	if _, err := p.Execute(nil); err == nil || !strings.Contains(err.Error(), "XPDY0002") {
		t.Errorf("unbound required external: err = %v, want XPDY0002", err)
	}
	// execution-time: binding an undeclared name
	if _, err := p.Execute(Bindings{"x": ralg.BindInts(1), "zzz": ralg.BindInts(2)}); err == nil || !strings.Contains(err.Error(), "XPST0008") {
		t.Errorf("undeclared binding name: err = %v, want XPST0008", err)
	}
	// execution-time: multi-item binding against a singleton default
	if _, err := p.Execute(Bindings{"x": ralg.BindInts(1), "one": ralg.BindInts(1, 2)}); err == nil || !strings.Contains(err.Error(), "XPTY0004") {
		t.Errorf("plural binding for singleton default: err = %v, want XPTY0004", err)
	}
	// a multi-item binding for $x (no default) is fine
	if got, err := p.ExecuteString(Bindings{"x": ralg.BindInts(7, 8, 9)}); err != nil || got != "7 8 9" {
		t.Errorf("sequence binding: got %q, %v", got, err)
	}
}

// TestPreparedConcurrentExecutions is the acceptance check for the
// concurrency contract: one Prepared handle executed from many
// goroutines with different bindings, race-clean, each execution
// seeing its own pool snapshot even while documents load concurrently.
func TestPreparedConcurrentExecutions(t *testing.T) {
	eng := preparedTestEngine(t)
	p, err := eng.Prepare(`declare variable $n external;
		<r>{$n * count(/site/item)}</r>`)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				want := fmt.Sprintf("<r>%d</r>", 3*g)
				got, err := p.ExecuteString(Bindings{"n": ralg.BindInts(int64(g))})
				if err != nil {
					errs <- err
					return
				}
				if got != want {
					errs <- fmt.Errorf("goroutine %d: got %q, want %q", g, got, want)
					return
				}
			}
		}(g)
	}
	// concurrent loads: executions keep their snapshots
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := eng.LoadXML(fmt.Sprintf("extra%d.xml", i), strings.NewReader(`<e/>`)); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestQueryIsPrepareExecute(t *testing.T) {
	eng := preparedTestEngine(t)
	// Query must flow through the same compile path (one cache entry),
	// and a query with a required external fails through Query since no
	// bindings can be passed.
	if _, err := eng.Query(`declare variable $x external; $x`); err == nil || !strings.Contains(err.Error(), "XPDY0002") {
		t.Errorf("Query with required external: err = %v, want XPDY0002", err)
	}
	if got, err := eng.QueryString(`declare variable $x external := 4; $x + 1`); err != nil || got != "5" {
		t.Errorf("Query with defaulted external: got %q, %v", got, err)
	}
}
