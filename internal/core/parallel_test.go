package core

import (
	"strings"
	"testing"

	"mxq/internal/naive"
	"mxq/internal/scj"
	"mxq/internal/xmark"
)

// parallelTestConfig forces every parallel code path on (threshold 1,
// several workers) so that even the small test documents exercise the
// chunked operators.
func parallelTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Parallel = true
	cfg.Workers = 4
	cfg.ParallelThreshold = 1
	return cfg
}

// TestParallelDifferentialAgainstNaive runs the whole differential
// corpus through parallel execution (in several compiler ablations) and
// checks against the naive DOM oracle.
func TestParallelDifferentialAgainstNaive(t *testing.T) {
	oracle := naive.New()
	if err := oracle.LoadXML("auction.xml", strings.NewReader(auctionDoc)); err != nil {
		t.Fatal(err)
	}
	iter := parallelTestConfig()
	iter.Compiler.ChildVariant = scj.Iterative
	iter.Compiler.DescVariant = scj.Iterative
	noPush := parallelTestConfig()
	noPush.Compiler.NametestPushdown = false
	cfgs := map[string]Config{
		"parallel-full":       parallelTestConfig(),
		"parallel-iterative":  iter,
		"parallel-nopushdown": noPush,
	}
	for cname, cfg := range cfgs {
		eng := New(cfg)
		if err := eng.LoadXML("auction.xml", strings.NewReader(auctionDoc)); err != nil {
			t.Fatal(err)
		}
		for _, q := range corpus {
			want, err := oracle.QueryString(q)
			if err != nil {
				t.Fatalf("oracle failed on %s: %v", q, err)
			}
			got, err := eng.QueryString(q)
			if err != nil {
				t.Errorf("[%s] engine error on %s: %v", cname, q, err)
				continue
			}
			if got != want {
				t.Errorf("[%s] mismatch on %s:\n got  %q\n want %q", cname, q, got, want)
			}
		}
	}
}

// TestParallelXMarkDifferential is the three-way differential suite on a
// generated XMark document: serial execution, parallel execution and the
// naive DOM oracle must produce byte-identical serialized results for
// all twenty benchmark queries, including sequence and document order.
func TestParallelXMarkDifferential(t *testing.T) {
	cont := xmark.NewStoreContainer("auction.xml", 0.005, 42)
	serial := New(DefaultConfig())
	serial.LoadContainer("auction.xml", cont)
	parallel := New(parallelTestConfig())
	parallel.LoadContainer("auction.xml", cont)
	oracle := naive.New()
	oracle.LoadContainer("auction.xml", cont)
	for q := 1; q <= 20; q++ {
		query := xmark.Query(q)
		want, err := oracle.QueryString(query)
		if err != nil {
			t.Fatalf("Q%d oracle: %v", q, err)
		}
		gotS, err := serial.QueryString(query)
		if err != nil {
			t.Fatalf("Q%d serial: %v", q, err)
		}
		gotP, err := parallel.QueryString(query)
		if err != nil {
			t.Fatalf("Q%d parallel: %v", q, err)
		}
		if gotS != want {
			t.Errorf("Q%d: serial differs from oracle\n got  %.200q\n want %.200q", q, gotS, want)
		}
		if gotP != gotS {
			t.Errorf("Q%d: parallel differs from serial\n got  %.200q\n want %.200q", q, gotP, gotS)
		}
	}
}

// Plan cache behavior: LRU eviction respects the configured capacity,
// and cached plans are keyed by context document.
func TestPlanCacheLRU(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PlanCacheSize = 2
	eng := New(cfg)
	if err := eng.LoadXML("auction.xml", strings.NewReader(auctionDoc)); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{`1`, `2`, `3`, `4`} {
		if _, err := eng.Compile(q); err != nil {
			t.Fatal(err)
		}
	}
	if got := eng.cache.len(); got != 2 {
		t.Errorf("cache holds %d plans, want 2", got)
	}
	// the most recent entry must be a hit (pointer identity)
	p1, _ := eng.Compile(`4`)
	p2, _ := eng.Compile(`4`)
	if p1 != p2 {
		t.Error("LRU did not retain the most recent plan")
	}
}

// TestContextDocumentIsExecutionInput is the regression test for the
// stale-context-document cache hazard: the plan cache is keyed by
// (compiler options, query text) only, and the context document is
// resolved at execution time through the plan's ContextRoot leaf. The
// same cached entry must therefore serve both context documents — one
// plan, two answers — and flipping back must not recompile either.
func TestContextDocumentIsExecutionInput(t *testing.T) {
	eng := New(DefaultConfig())
	if err := eng.LoadXML("a.xml", strings.NewReader(`<r><x/></r>`)); err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadXML("b.xml", strings.NewReader(`<r><x/><x/></r>`)); err != nil {
		t.Fatal(err)
	}
	q := `count(/r/x)`
	prep, err := eng.Prepare(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.QueryString(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != "1" {
		t.Fatalf("against a.xml: got %q, want 1", got)
	}
	eng.SetContextDocument("b.xml")
	got, err = eng.QueryString(q)
	if err != nil {
		t.Fatal(err)
	}
	if got != "2" {
		t.Errorf("after SetContextDocument: got %q, want 2 (stale cached plan?)", got)
	}
	// one cache entry serves both documents — no per-document recompile
	if n := eng.cache.len(); n != 1 {
		t.Errorf("cache holds %d plans after the context flip, want 1", n)
	}
	// the entry is the very plan prepared up front (pointer identity),
	// and the prepared handle itself follows the flipped context too
	if p2, _ := eng.Prepare(q); p2.cq != prep.cq {
		t.Error("context flip evicted or replaced the cached plan")
	}
	s, err := prep.ExecuteString(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s != "2" {
		t.Errorf("prepared handle after SetContextDocument: got %q, want 2", s)
	}
	eng.SetContextDocument("a.xml")
	if s, _ = prep.ExecuteString(nil); s != "1" {
		t.Errorf("prepared handle after flipping back: got %q, want 1", s)
	}
}

// Results must stay valid after later loads and queries: each query pins
// its own pool snapshot and transient container.
func TestResultOutlivesLaterQueries(t *testing.T) {
	eng := New(DefaultConfig())
	if err := eng.LoadXML("auction.xml", strings.NewReader(auctionDoc)); err != nil {
		t.Fatal(err)
	}
	r1, err := eng.Query(`<x n="{count(//item)}">{/site/people/person[1]/name/text()}</x>`)
	if err != nil {
		t.Fatal(err)
	}
	before := r1.String()
	if _, err := eng.Query(`<y>{count(//person)}</y>`); err != nil {
		t.Fatal(err)
	}
	if err := eng.LoadXML("other.xml", strings.NewReader(`<z/>`)); err != nil {
		t.Fatal(err)
	}
	if after := r1.String(); after != before {
		t.Errorf("result changed after later activity:\n before %q\n after  %q", before, after)
	}
}
