package core

import (
	"container/list"
	"sync"
	"sync/atomic"

	"mxq/internal/xqc"
)

// DefaultPlanCacheSize bounds the compiled-plan cache when
// Config.PlanCacheSize is zero.
const DefaultPlanCacheSize = 256

// planCache is a concurrency-safe LRU cache of compiled queries, keyed
// by (compiler options, query text). The context document and the
// external variable bindings are execution-time inputs of the plan
// (ContextRoot/ParamTable leaves), not part of the key — one cached
// entry serves every context document and every binding set. Compiled
// queries are immutable after optimization, so one cached entry may be
// executed by any number of concurrent queries; each execution keeps
// its own memo table and transient container.
type planCache struct {
	hits   atomic.Int64
	misses atomic.Int64

	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	lru *list.List // front = most recently used
}

type planEntry struct {
	key  string
	plan *xqc.Compiled
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheSize
	}
	return &planCache{cap: capacity, m: make(map[string]*list.Element), lru: list.New()}
}

func (c *planCache) get(key string) (*xqc.Compiled, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	c.lru.MoveToFront(el)
	return el.Value.(*planEntry).plan, true
}

func (c *planCache) put(key string, p *xqc.Compiled) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*planEntry).plan = p
		c.lru.MoveToFront(el)
		return
	}
	c.m[key] = c.lru.PushFront(&planEntry{key: key, plan: p})
	for c.lru.Len() > c.cap {
		last := c.lru.Back()
		c.lru.Remove(last)
		delete(c.m, last.Value.(*planEntry).key)
	}
}

// Len returns the number of cached plans (used by tests).
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
