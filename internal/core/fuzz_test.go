package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"mxq/internal/naive"
)

// queryGen generates random queries over documents built from a small
// element vocabulary, for randomized differential testing between the
// relational engine and the naive interpreter.
type queryGen struct {
	rng *rand.Rand
}

var genNames = []string{"a", "b", "c", "d"}

// randDoc builds a random XML document over the vocabulary: elements
// a–d, attributes k/v with small integers, small integer text nodes.
func (g *queryGen) randDoc(maxNodes int) string {
	var sb strings.Builder
	var build func(depth, budget int) int
	build = func(depth, budget int) int {
		name := genNames[g.rng.Intn(len(genNames))]
		sb.WriteString("<" + name)
		if g.rng.Intn(3) == 0 {
			fmt.Fprintf(&sb, ` k="%d"`, g.rng.Intn(5))
		}
		if g.rng.Intn(4) == 0 {
			fmt.Fprintf(&sb, ` v="%d"`, g.rng.Intn(3))
		}
		sb.WriteString(">")
		used := 1
		for used < budget && g.rng.Intn(3) != 0 {
			if depth < 5 && g.rng.Intn(2) == 0 {
				used += build(depth+1, budget-used)
			} else {
				fmt.Fprintf(&sb, "%d", g.rng.Intn(10))
				used++
			}
		}
		sb.WriteString("</" + name + ">")
		return used
	}
	sb.WriteString("<root>")
	total := 1
	for total < maxNodes {
		total += build(1, maxNodes-total)
	}
	sb.WriteString("</root>")
	return sb.String()
}

func (g *queryGen) name() string { return genNames[g.rng.Intn(len(genNames))] }

// randPath produces a random absolute path expression.
func (g *queryGen) randPath() string {
	var sb strings.Builder
	sb.WriteString("/root")
	steps := 1 + g.rng.Intn(3)
	for i := 0; i < steps; i++ {
		switch g.rng.Intn(6) {
		case 0:
			sb.WriteString("//" + g.name())
		case 1:
			sb.WriteString("/" + g.name() + fmt.Sprintf("[%d]", 1+g.rng.Intn(2)))
		case 2:
			sb.WriteString("/" + g.name() + "[@k]")
		case 3:
			sb.WriteString("/*")
		default:
			sb.WriteString("/" + g.name())
		}
	}
	if g.rng.Intn(3) == 0 {
		sb.WriteString("/text()")
	}
	return sb.String()
}

// randQuery produces a random query using the path generator.
func (g *queryGen) randQuery() string {
	switch g.rng.Intn(8) {
	case 0:
		return fmt.Sprintf("count(%s)", g.randPath())
	case 1:
		return fmt.Sprintf("for $x in %s return <r>{$x}</r>", g.randPath())
	case 2:
		return fmt.Sprintf(`for $x in %s where $x/@k = "%d" return count($x/%s)`,
			g.randPath(), g.rng.Intn(5), g.name())
	case 3:
		return fmt.Sprintf("for $x in %s order by string($x) return count($x/*)", g.randPath())
	case 4:
		return fmt.Sprintf("sum(for $x in %s return count($x))", g.randPath())
	case 5:
		return fmt.Sprintf("for $x in %s, $y in %s where $x/@k = $y/@v return 1",
			g.randPath(), g.randPath())
	case 6:
		return fmt.Sprintf("if (exists(%s)) then count(%s) else 0", g.randPath(), g.randPath())
	default:
		return fmt.Sprintf("distinct-values(for $x in %s return $x/@k)", g.randPath())
	}
}

// TestRandomizedDifferential cross-checks the engine against the naive
// interpreter on randomly generated documents and queries, under both the
// fully optimized and fully de-optimized configurations.
func TestRandomizedDifferential(t *testing.T) {
	trials := 40
	queriesPer := 12
	if testing.Short() {
		trials = 8
	}
	rng := rand.New(rand.NewSource(2024))
	g := &queryGen{rng: rng}
	zero := Config{}
	for trial := 0; trial < trials; trial++ {
		doc := g.randDoc(30 + rng.Intn(60))
		oracle := naive.New()
		if err := oracle.LoadXML("r.xml", strings.NewReader(doc)); err != nil {
			t.Fatalf("trial %d: bad generated doc: %v\n%s", trial, err, doc)
		}
		engFull := New(DefaultConfig())
		if err := engFull.LoadXML("r.xml", strings.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
		engZero := New(zero)
		if err := engZero.LoadXML("r.xml", strings.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
		for qi := 0; qi < queriesPer; qi++ {
			q := g.randQuery()
			want, err := oracle.QueryString(q)
			if err != nil {
				t.Fatalf("trial %d oracle error on %s: %v", trial, q, err)
			}
			for name, eng := range map[string]*Engine{"full": engFull, "zero": engZero} {
				got, err := eng.QueryString(q)
				if err != nil {
					t.Errorf("trial %d [%s] engine error on %s: %v\ndoc: %s", trial, name, q, err, doc)
					continue
				}
				if got != want {
					t.Errorf("trial %d [%s] mismatch on %s:\n got  %q\n want %q\ndoc: %s",
						trial, name, q, got, want, doc)
				}
			}
		}
	}
}
