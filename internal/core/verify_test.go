package core

import (
	"errors"
	"strings"
	"testing"

	"mxq/internal/planck"
	"mxq/internal/qgen"
	"mxq/internal/ralg"
	"mxq/internal/xmark"
	"mxq/internal/xqc"
)

// verifyConfigs are the compile pipelines the verifier must accept:
// with and without the order-aware optimizer (the verifier runs before
// and after optimization, so both plan shapes are checked).
func verifyConfigs() map[string]Config {
	ordered := DefaultConfig()
	ordered.VerifyPlans = true
	unordered := DefaultConfig()
	unordered.OrderAware = false
	unordered.VerifyPlans = true
	nojoin := DefaultConfig()
	nojoin.Compiler.JoinRecognition = false
	nojoin.VerifyPlans = true
	return map[string]Config{"ordered": ordered, "unordered": unordered, "nojoinrec": nojoin}
}

// All twenty XMark benchmark plans must verify with zero violations,
// before and after optimization.
func TestPlanckVerifiesXMarkPlans(t *testing.T) {
	for cname, cfg := range verifyConfigs() {
		eng := New(cfg)
		for i, q := range xmark.Queries {
			if _, err := eng.Compile(q); err != nil {
				t.Errorf("[%s] XMark Q%d rejected: %v", cname, i+1, err)
			}
		}
	}
}

// Five hundred generator-drawn queries (the differential fuzzer's
// input distribution, including parameterized ones) must all produce
// verifiable plans.
func TestPlanckVerifiesGeneratedPlans(t *testing.T) {
	const n = 500
	roots := []string{"/site", `doc("b.xml")/site`, `collection("xm")/site`, `collection("xm")`}
	for cname, cfg := range verifyConfigs() {
		eng := New(cfg)
		g := qgen.New(20260807, roots)
		for i := 0; i < n; i++ {
			var q string
			if i%3 == 2 {
				q = g.BoundQuery().Query
			} else {
				q = g.Query()
			}
			if _, err := eng.Compile(q); err != nil {
				t.Errorf("[%s] generated query %d rejected: %v\nquery: %s", cname, i, err, q)
			}
		}
	}
}

// A deliberately corrupted plan is rejected at compile time with a
// PlanInvariantError naming the offending operator — not by a runtime
// panic when the executor trips over it.
func TestCorruptedPlanRejectedAtCompileTime(t *testing.T) {
	eng := New(verifyConfigs()["ordered"])
	cq, err := eng.compile(`1 + 2`)
	if err != nil {
		t.Fatal(err)
	}
	// graft a Select over a non-boolean column onto the compiled plan
	corrupted := &ralg.Select{Cond: "iter"}
	corrupted.SetInput(0, cq.Plan)
	err = verifyCompiled(&xqc.Compiled{Plan: corrupted})
	var pie *planck.PlanInvariantError
	if !errors.As(err, &pie) {
		t.Fatalf("corrupted plan not rejected: %v", err)
	}
	if pie.Op != corrupted.Name() {
		t.Errorf("violation blamed on %q, want %q", pie.Op, corrupted.Name())
	}
}

// MXQ_VERIFY_PLANS force-enables verification regardless of Config.
func TestVerifyPlansEnvOverride(t *testing.T) {
	t.Setenv("MXQ_VERIFY_PLANS", "1")
	eng := New(DefaultConfig())
	if !eng.cfg.VerifyPlans {
		t.Fatal("MXQ_VERIFY_PLANS=1 did not enable plan verification")
	}
	t.Setenv("MXQ_VERIFY_PLANS", "0")
	eng = New(DefaultConfig())
	if eng.cfg.VerifyPlans {
		t.Fatal("MXQ_VERIFY_PLANS=0 must not enable plan verification")
	}
}

// ExplainPlan renders the optimized plan with schema and property
// annotations, including prolog parameter initializers.
func TestExplainPlan(t *testing.T) {
	eng := New(DefaultConfig())
	s, err := eng.ExplainPlan(`declare variable $n := 2; 1 + $n`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"$n :=", "item:", "add("} {
		if !strings.Contains(s, want) {
			t.Errorf("explain output missing %q:\n%s", want, s)
		}
	}
}
