package core

import (
	"context"
	"strings"
	"sync"
	"testing"

	"mxq/internal/sched"
	"mxq/internal/testutil"
	"mxq/internal/xqerr"
)

const memTestDoc = `<site><a><b>1</b><b>2</b><b>3</b></a><a><b>4</b><b>5</b></a>` +
	`<c>x</c><c>y</c><c>z</c><c>w</c><c>v</c><c>u</c></site>`

// A budget smaller than the pinned document snapshot must fail the
// execution with the typed resource error before the first operator
// runs — even for a query that touches no document node.
func TestMemBudgetSmallerThanSnapshot(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemLimit = 4 // bytes; any real document exceeds this
	e := New(cfg)
	if err := e.LoadXML("d.xml", strings.NewReader(memTestDoc)); err != nil {
		t.Fatal(err)
	}
	_, err := e.QueryContext(context.Background(), `1+1`)
	if err == nil {
		t.Fatal("tiny budget admitted a query over a larger snapshot")
	}
	if !xqerr.IsResourceLimit(err) {
		t.Fatalf("err = %v, want code %s", err, xqerr.CodeResourceLimit)
	}
	if !strings.Contains(err.Error(), "memory budget") {
		t.Fatalf("err = %v, want the budget message", err)
	}
}

// A budget hit mid-execution under forced parallelism: the fork-join
// workers must drain (no goroutine leak), the error must be typed, and
// the engine must stay fully usable — the budget is per-execution
// state, never engine state.
func TestMemBudgetAbortsParallelExecution(t *testing.T) {
	testutil.CheckGoroutines(t)
	cfg := DefaultConfig()
	cfg.Parallel = true
	cfg.Workers = 4
	cfg.ParallelThreshold = 1
	cfg.MemLimit = 512 << 10
	e := New(cfg)
	if err := e.LoadXML("d.xml", strings.NewReader(memTestDoc)); err != nil {
		t.Fatal(err)
	}
	hog := `for $i in 1 to 100000 for $j in 1 to 100000 where $i = $j return $j`
	for run := 0; run < 3; run++ {
		res, err := e.QueryContext(context.Background(), hog)
		if err == nil {
			t.Fatalf("run %d: 512KiB budget admitted a multi-MB join", run)
		}
		if !xqerr.IsResourceLimit(err) {
			t.Fatalf("run %d: err = %v, want code %s", run, err, xqerr.CodeResourceLimit)
		}
		if res != nil {
			t.Fatalf("run %d: got partial result alongside the budget error", run)
		}
	}
	got, err := e.QueryString(`count(//b)`)
	if err != nil || got != "5" {
		t.Fatalf("engine unusable after budget aborts: %q, %v", got, err)
	}
}

// Sixteen concurrent clients on one engine: the one over-budget query
// fails with the typed error while the fifteen in-budget clients get
// results byte-identical to the serial oracle. Run under -race this is
// also the budget accounting's race check (all charges flow through one
// shared MemBudget per execution, from every worker).
func TestMemBudget16ClientStress(t *testing.T) {
	testutil.CheckGoroutines(t)
	serial := New(DefaultConfig())
	if err := serial.LoadXML("d.xml", strings.NewReader(memTestDoc)); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`count(//b)`,
		`for $b in //b return $b/text()`,
		`sum(for $i in 1 to 500 return $i)`,
		`for $c in /site/c return $c`,
		`count(for $i in 1 to 200 for $j in 1 to 200 where $i = $j return $i)`,
	}
	want := make([]string, len(queries))
	for i, q := range queries {
		w, err := serial.QueryString(q)
		if err != nil {
			t.Fatalf("oracle %d: %v", i, err)
		}
		want[i] = w
	}

	cfg := DefaultConfig()
	cfg.Parallel = true
	cfg.Workers = 4
	cfg.ParallelThreshold = 1
	cfg.MemLimit = 16 << 20
	e := New(cfg)
	if err := e.LoadXML("d.xml", strings.NewReader(memTestDoc)); err != nil {
		t.Fatal(err)
	}
	// ~2M generated rows charge ~48MB against the 16MB budget
	hog := `count(for $i in 1 to 2000000 return $i)`

	const clients = 16
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			if c == 0 {
				_, err := e.QueryContext(context.Background(), hog)
				if err == nil || !xqerr.IsResourceLimit(err) {
					errs <- &clientErr{c, "hog", err}
				}
				return
			}
			q := (c - 1) % len(queries)
			got, err := e.QueryString(queries[q])
			if err != nil {
				errs <- &clientErr{c, "err", err}
				return
			}
			if got != want[q] {
				errs <- &clientErr{c, "mismatch vs oracle", nil}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

type clientErr struct {
	client int
	what   string
	err    error
}

func (e *clientErr) Error() string {
	return "client " + string(rune('0'+e.client%10)) + ": " + e.what + ": " + errStr(e.err)
}

func errStr(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}

// The scheduler's memory grant governs executions that carry no
// engine-level limit: an over-pool admission is rejected with
// ErrMemExhausted while a granted execution runs under the grant's
// byte budget.
func TestSchedulerMemGrantGovernsExecution(t *testing.T) {
	s := sched.New(sched.Config{MaxConcurrent: 4, MemPerQuery: sched.MemFloor})
	cfg := DefaultConfig()
	cfg.Scheduler = s
	e := New(cfg)
	if err := e.LoadXML("d.xml", strings.NewReader(memTestDoc)); err != nil {
		t.Fatal(err)
	}
	// fits the 8MiB floor grant comfortably
	got, err := e.QueryString(`count(//b)`)
	if err != nil || got != "5" {
		t.Fatalf("in-budget scheduled query: %q, %v", got, err)
	}
	// ~48MB of generated rows exceed the grant
	_, err = e.QueryContext(context.Background(), `count(for $i in 1 to 2000000 return $i)`)
	if !xqerr.IsResourceLimit(err) {
		t.Fatalf("err = %v, want code %s", err, xqerr.CodeResourceLimit)
	}
}
