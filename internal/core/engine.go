// Package core assembles the full MonetDB/XQuery reproduction: the
// storage pool, the XQuery parser, the loop-lifting compiler, the
// peephole optimizer and the columnar executor, behind one Engine type.
// It corresponds to the paper's system picture in §5: the Pathfinder
// compiler module on top of the MonetDB kernel with its XQuery runtime
// module (loop-lifted staircase join and XML serialization).
package core

import (
	"fmt"
	"io"
	"strings"

	"mxq/internal/opt"
	"mxq/internal/ralg"
	"mxq/internal/store"
	"mxq/internal/xqc"
	"mxq/internal/xqp"
	"mxq/internal/xqt"
)

// Config selects the engine's optimization strategies; the zero value
// disables everything (the ablation baselines of Figures 12–14), and
// DefaultConfig enables the full system.
type Config struct {
	Compiler xqc.Options
	// OrderAware runs the property-driven peephole optimizer (§4.1):
	// sort elimination, refine sorts, streaming rank, positional joins,
	// merge duplicate elimination (Figure 14's "order preserving").
	OrderAware bool
	// PlanCache re-uses compiled physical plans per query text (the
	// paper's "physical query plan caching feature").
	PlanCache bool
}

// DefaultConfig is the full-strength engine configuration.
func DefaultConfig() Config {
	return Config{Compiler: xqc.DefaultOptions(), OrderAware: true, PlanCache: true}
}

// Engine is one XQuery engine instance with its loaded documents.
type Engine struct {
	cfg         Config
	pool        *store.Pool
	defaultDoc  string
	transientID int32
	planCache   map[string]ralg.Plan
	lastStats   ralg.ExecStats
	lastPlan    ralg.Plan
}

// New returns an engine with the given configuration.
func New(cfg Config) *Engine {
	e := &Engine{cfg: cfg, pool: store.NewPool(), planCache: make(map[string]ralg.Plan)}
	// reserve the transient container slot
	tr := store.NewContainer("")
	e.pool.Register(tr)
	e.transientID = tr.ID
	return e
}

// Pool exposes the container pool (used by benchmarks and tests).
func (e *Engine) Pool() *store.Pool { return e.pool }

// LoadXML shreds and registers a document; the first document loaded
// becomes the context document of absolute paths.
func (e *Engine) LoadXML(name string, r io.Reader) error {
	c, err := store.Shred(name, r, false)
	if err != nil {
		return err
	}
	e.LoadContainer(name, c)
	return nil
}

// LoadContainer registers a pre-shredded document.
func (e *Engine) LoadContainer(name string, c *store.Container) {
	c.Name = name
	e.pool.Register(c)
	c.BuildIndexes()
	if e.defaultDoc == "" {
		e.defaultDoc = name
	}
}

// SetContextDocument selects the document absolute paths refer to.
func (e *Engine) SetContextDocument(name string) { e.defaultDoc = name }

// Result is a query result: the item sequence plus access to the
// containers the node items live in.
type Result struct {
	Items []xqt.Item
	pool  *store.Pool
}

// Compile parses and compiles a query to its physical plan (optimized
// according to the engine configuration) without executing it.
func (e *Engine) Compile(q string) (ralg.Plan, error) {
	if e.cfg.PlanCache {
		if p, ok := e.planCache[q]; ok {
			return p, nil
		}
	}
	m, err := xqp.Parse(q)
	if err != nil {
		return nil, err
	}
	plan, err := xqc.Compile(m, e.defaultDoc, e.cfg.Compiler)
	if err != nil {
		return nil, err
	}
	if e.cfg.OrderAware {
		plan = opt.Optimize(plan)
	}
	if e.cfg.PlanCache {
		e.planCache[q] = plan
	}
	return plan, nil
}

// Query evaluates q and returns its result. Node items in the result
// remain valid until the next Query call on this engine (they may live in
// the per-query transient container, which is recycled).
func (e *Engine) Query(q string) (*Result, error) {
	plan, err := e.Compile(q)
	if err != nil {
		return nil, err
	}
	transient := store.NewContainer("")
	e.pool.Replace(e.transientID, transient)
	ex := ralg.NewExec(e.pool, transient)
	tab, err := ex.Run(plan)
	if err != nil {
		return nil, err
	}
	e.lastStats = ex.Stats
	e.lastPlan = plan
	items := make([]xqt.Item, tab.N)
	copy(items, tab.Items("item"))
	return &Result{Items: items, pool: e.pool}, nil
}

// LastStats returns the executor counters of the most recent Query.
func (e *Engine) LastStats() ralg.ExecStats { return e.lastStats }

// PlanStats returns the operator and join counts of a compiled query
// (the §4.1 plan statistics).
func (e *Engine) PlanStats(q string) (ops, joins int, err error) {
	plan, err := e.Compile(q)
	if err != nil {
		return 0, 0, err
	}
	ops, joins = ralg.CountOps(plan)
	return ops, joins, nil
}

// SerializeXML writes the result sequence as XML text: nodes are
// serialized, adjacent atoms are separated by single spaces.
func (r *Result) SerializeXML(w io.Writer) error {
	prevAtom := false
	for _, it := range r.Items {
		switch it.K {
		case xqt.KNode:
			c := r.pool.Get(it.Cont)
			if err := store.Serialize(w, c, int32(it.I)); err != nil {
				return err
			}
			prevAtom = false
		case xqt.KAttr:
			c := r.pool.Get(it.Cont)
			name := c.Names.Name(c.AttrName[it.I])
			if _, err := fmt.Fprintf(w, `%s=%q`, name, c.AttrVal[it.I]); err != nil {
				return err
			}
			prevAtom = false
		default:
			s := it.AsString()
			if prevAtom {
				s = " " + s
			}
			if _, err := io.WriteString(w, s); err != nil {
				return err
			}
			prevAtom = true
		}
	}
	return nil
}

// String renders the result as serialized XML text.
func (r *Result) String() string {
	var sb strings.Builder
	if err := r.SerializeXML(&sb); err != nil {
		return "serialize error: " + err.Error()
	}
	return sb.String()
}

// QueryString evaluates q and serializes the result.
func (e *Engine) QueryString(q string) (string, error) {
	r, err := e.Query(q)
	if err != nil {
		return "", err
	}
	return r.String(), nil
}
