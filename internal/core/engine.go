// Package core assembles the full MonetDB/XQuery reproduction: the
// storage pool, the XQuery parser, the loop-lifting compiler, the
// peephole optimizer and the columnar executor, behind one Engine type.
// It corresponds to the paper's system picture in §5: the Pathfinder
// compiler module on top of the MonetDB kernel with its XQuery runtime
// module (loop-lifted staircase join and XML serialization).
//
// # Concurrency model
//
// An Engine is safe for concurrent use. Loaded documents are immutable;
// the registry of documents (the store.Pool) is guarded by an RWMutex,
// and every execution takes a cheap pool snapshot plus a fresh
// transient container, so concurrent queries — and concurrent document
// loads — never share mutable state. Compiled queries are immutable
// after optimization and cached in a lock-protected LRU keyed by
// (compiler options, query text); the context document and the external
// variable bindings of a prepared query are execution-time plan inputs,
// so any number of in-flight executions — of one Prepared handle or of
// independent queries — may share the same cached plan. Result node
// items stay valid for the lifetime of the Result (they pin the
// snapshot), even across later loads and queries.
//
// Intra-query parallelism (Config.Parallel) partitions the hot operators
// of one plan across a bounded goroutine pool; it composes freely with
// inter-query concurrency because each executor owns its intermediate
// state.
package core

import (
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"

	"mxq/internal/opt"
	"mxq/internal/optcheck"
	"mxq/internal/planck"
	"mxq/internal/ralg"
	"mxq/internal/sched"
	"mxq/internal/store"
	"mxq/internal/xqc"
	"mxq/internal/xqp"
	"mxq/internal/xqt"
)

// Config selects the engine's optimization strategies; the zero value
// disables everything (the ablation baselines of Figures 12–14), and
// DefaultConfig enables the full system.
type Config struct {
	Compiler xqc.Options
	// OrderAware runs the property-driven peephole optimizer (§4.1):
	// sort elimination, refine sorts, streaming rank, positional joins,
	// merge duplicate elimination (Figure 14's "order preserving").
	OrderAware bool
	// PlanCache re-uses compiled physical plans per (compiler options,
	// query text) pair (the paper's "physical query plan caching
	// feature"); context document and bindings are execution-time plan
	// inputs, not key components. The cache is a concurrency-safe LRU.
	PlanCache bool
	// PlanCacheSize bounds the LRU plan cache; 0 means
	// DefaultPlanCacheSize.
	PlanCacheSize int
	// Parallel enables intra-query parallel operator execution: the hot
	// per-iter operators (staircase-join steps, row numbering,
	// aggregation, selection, row-wise functions, hash join build/probe)
	// partition their inputs across a bounded goroutine pool. Output is
	// byte-identical to serial execution, which remains the
	// differential-testing oracle.
	Parallel bool
	// Workers bounds the parallel goroutine pool; 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// ParallelThreshold is the minimum operator input size to go
	// parallel; 0 means ralg.DefaultParThreshold.
	ParallelThreshold int
	// Scheduler, when set, is the global query scheduler the engine's
	// executions run under: every ExecuteContext admits itself (bounded
	// concurrency, deadline-aware queueing) and draws its parallel
	// workers from the scheduler's shared slot pool under a cost-derived
	// budget, so N concurrent queries never claim N×Workers goroutines.
	// One scheduler may be shared by several engines. Nil keeps the
	// unscheduled behavior: executions run immediately with a private
	// Workers-sized pool each.
	Scheduler *sched.Scheduler
	// MemLimit is the default per-execution memory budget in bytes:
	// operators charge estimated bytes as they materialize rows, and an
	// over-budget execution aborts promptly (workers drain at their next
	// poll, partial tables are discarded) with a typed
	// resource-exhausted error (xqerr.CodeResourceLimit). When a
	// scheduler grant carries its own memory limit the smaller nonzero
	// limit wins. 0 means unlimited.
	MemLimit int64
	// VerifyPlans runs the static plan verifier (internal/planck) over
	// every compiled plan — the main plan and each prolog parameter
	// initializer, before and after optimization — and fails compilation
	// with a *planck.PlanInvariantError on any violation. Tests and the
	// fuzzer keep it always on; production keeps it opt-in (also via the
	// MXQ_VERIFY_PLANS environment variable, see New).
	VerifyPlans bool
	// TraceRewrites validates every optimizer rewrite during
	// compilation: each fired rule emits a before/after witness
	// (opt.RewriteStep) that the translation validator
	// (internal/optcheck) replays over synthesized micro-inputs, and a
	// disagreement fails compilation naming the guilty rule. Much more
	// expensive than VerifyPlans — meant for tests and CI, not
	// production (also via the MXQ_CHECK_REWRITES environment variable,
	// see New). Off, the tracing hook costs one nil check per rewrite.
	TraceRewrites bool
}

// DefaultConfig is the full-strength engine configuration (parallel
// execution stays opt-in so the default engine doubles as the serial
// oracle).
func DefaultConfig() Config {
	return Config{Compiler: xqc.DefaultOptions(), OrderAware: true, PlanCache: true}
}

// ParallelConfig is DefaultConfig plus intra-query parallelism sized by
// GOMAXPROCS.
func ParallelConfig() Config {
	cfg := DefaultConfig()
	cfg.Parallel = true
	return cfg
}

// Engine is one XQuery engine instance with its loaded documents. It is
// safe for concurrent use; see the package documentation for the
// concurrency model.
type Engine struct {
	cfg     Config
	optsKey string // compiler-options fingerprint prefixed to cache keys

	mu         sync.RWMutex // guards pool registration and defaultDoc
	pool       *store.Pool
	defaultDoc string

	cache *planCache // nil when plan caching is disabled

	statsMu   sync.Mutex
	lastStats ralg.ExecStats
}

// New returns an engine with the given configuration. Setting the
// MXQ_VERIFY_PLANS environment variable to a non-empty value other
// than "0" force-enables Config.VerifyPlans — the hook CI uses to plan-
// verify every query of the full test suite without threading a knob
// through each test helper. MXQ_CHECK_REWRITES does the same for
// Config.TraceRewrites, translation-validating every optimizer rewrite.
func New(cfg Config) *Engine {
	if v := os.Getenv("MXQ_VERIFY_PLANS"); v != "" && v != "0" {
		cfg.VerifyPlans = true
	}
	if v := os.Getenv("MXQ_CHECK_REWRITES"); v != "" && v != "0" {
		cfg.TraceRewrites = true
	}
	e := &Engine{cfg: cfg, pool: store.NewPool(), optsKey: optionsKey(cfg)}
	if cfg.PlanCache {
		e.cache = newPlanCache(cfg.PlanCacheSize)
	}
	return e
}

// optionsKey fingerprints the configuration knobs that change compiled
// plans; together with the query text it forms the plan cache key.
func optionsKey(cfg Config) string {
	return fmt.Sprintf("j%t:c%d:d%d:n%t:o%t",
		cfg.Compiler.JoinRecognition, cfg.Compiler.ChildVariant,
		cfg.Compiler.DescVariant, cfg.Compiler.NametestPushdown,
		cfg.OrderAware)
}

// Pool exposes the container pool (used by benchmarks and tests).
// Callers must not register containers directly while queries are in
// flight; use LoadContainer.
func (e *Engine) Pool() *store.Pool { return e.pool }

// Scheduler returns the global query scheduler the engine runs under,
// or nil when executions are unscheduled.
func (e *Engine) Scheduler() *sched.Scheduler { return e.cfg.Scheduler }

// parOptions resolves the configured parallelism knobs against the
// ralg defaults.
func (e *Engine) parOptions() ralg.ParOptions {
	if !e.cfg.Parallel {
		return ralg.ParOptions{}
	}
	p := ralg.DefaultParOptions()
	if e.cfg.Workers > 0 {
		p.Workers = e.cfg.Workers
	}
	if e.cfg.ParallelThreshold > 0 {
		p.Threshold = e.cfg.ParallelThreshold
	}
	return p
}

// LoadXML shreds and registers a document; the first document loaded
// becomes the context document of absolute paths. Loading is safe while
// queries run: in-flight queries keep seeing their snapshot of the
// loaded documents.
func (e *Engine) LoadXML(name string, r io.Reader) error {
	c, err := store.Shred(name, r, false)
	if err != nil {
		return err
	}
	e.LoadContainer(name, c)
	return nil
}

// LoadContainer registers a pre-shredded document.
func (e *Engine) LoadContainer(name string, c *store.Container) {
	c.Name = name
	e.mu.Lock()
	e.pool.Register(c)
	c.BuildIndexes()
	if e.defaultDoc == "" {
		e.defaultDoc = name
	}
	e.mu.Unlock()
}

// CollectionDoc names one document of a collection corpus and the reader
// supplying its XML text.
type CollectionDoc struct {
	Name string
	R    io.Reader
}

// LoadCollection shreds the given documents into a sharded collection
// registered under name: the corpus is partitioned across `shards`
// containers by a hash of each document name, and the shard containers
// are built concurrently (loading parallelizes across shards). The
// collection is reachable via collection(name); its documents are not
// individually addressable via doc(). Like document loads, registering a
// collection is safe while queries run.
func (e *Engine) LoadCollection(name string, shards int, docs []CollectionDoc) error {
	names := make([]string, len(docs))
	readers := make(map[string]io.Reader, len(docs))
	for i, d := range docs {
		names[i] = d.Name
		readers[d.Name] = d.R
	}
	sp, err := store.BuildSharded(name, shards, names, func(d string, b *store.Builder) error {
		return store.ShredInto(b, d, readers[d], false)
	})
	if err != nil {
		return err
	}
	e.RegisterCollection(sp)
	return nil
}

// RegisterCollection registers a pre-built sharded collection (used by
// the XMark generator path, which emits builder events directly). The
// element-name indexes are built before the registry lock is taken.
func (e *Engine) RegisterCollection(sp *store.ShardedPool) {
	sp.BuildIndexes()
	e.mu.Lock()
	e.pool.RegisterCollection(sp)
	e.mu.Unlock()
}

// AddToCollection shreds one more document into an existing collection.
// The affected shard is updated copy-on-write: in-flight queries keep
// seeing the collection state their snapshot captured, exactly as
// document loads behave. The updated shard re-registers under a fresh
// container id, which moves its documents to the end of the collection's
// document order. Each add costs O(shard) time and — because container
// ids pin superseded shard versions for snapshot validity — O(shard)
// pool memory that is not reclaimed; grow large corpora with
// LoadCollection bulk loads and reserve AddToCollection for occasional
// incremental documents.
func (e *Engine) AddToCollection(coll, doc string, r io.Reader) error {
	// The shard copy and the XML shred run outside the engine lock so
	// concurrent queries are never stalled behind a parse (LoadXML makes
	// the same choice). Registration re-checks the collection under the
	// write lock; losing a race against another writer means redoing the
	// copy-on-write build against the winner's version — the reader r is
	// consumed, so retrying the shred itself is not possible, and a
	// concurrent add of the SAME shard changes the base we must copy.
	e.mu.RLock()
	sp, ok := e.pool.Collection(coll)
	e.mu.RUnlock()
	if !ok {
		return fmt.Errorf("core: collection %q not loaded", coll)
	}
	nsp, err := sp.WithDoc(doc, func(b *store.Builder) error {
		return store.ShredInto(b, doc, r, false)
	})
	if err != nil {
		return err
	}
	nsp.BuildIndexes() // index the fresh shard copy outside the lock too
	e.mu.Lock()
	defer e.mu.Unlock()
	if cur, _ := e.pool.Collection(coll); cur != sp {
		return fmt.Errorf("core: collection %q changed concurrently while adding %q; retry the add", coll, doc)
	}
	e.pool.RegisterCollection(nsp)
	return nil
}

// CollectionDocs returns the document names of a registered collection in
// collection document order (the order collection() enumerates them).
func (e *Engine) CollectionDocs(name string) ([]string, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	sp, ok := e.pool.Collection(name)
	if !ok {
		return nil, false
	}
	return sp.DocNames(), true
}

// SetContextDocument selects the document absolute paths refer to.
func (e *Engine) SetContextDocument(name string) {
	e.mu.Lock()
	e.defaultDoc = name
	e.mu.Unlock()
}

// Result is a query result: the item sequence plus access to the
// containers the node items live in.
type Result struct {
	Items []xqt.Item
	pool  *store.Pool
}

// Compile parses and compiles a query to its physical plan (optimized
// according to the engine configuration) without executing it.
func (e *Engine) Compile(q string) (ralg.Plan, error) {
	cq, err := e.compile(q)
	if err != nil {
		return nil, err
	}
	return cq.Plan, nil
}

// compile is the single compile path of the engine: Prepare, Query and
// QueryString all go through it. The result — main plan plus the
// prolog parameter plans — is independent of the context document and
// of any bindings, so it is cached per (compiler options, query text).
func (e *Engine) compile(q string) (*xqc.Compiled, error) {
	key := e.optsKey + "\x00" + q
	if e.cache != nil {
		if p, ok := e.cache.get(key); ok {
			return p, nil
		}
	}
	m, err := xqp.Parse(q)
	if err != nil {
		return nil, err
	}
	cq, err := xqc.Compile(m, e.cfg.Compiler)
	if err != nil {
		return nil, err
	}
	if e.cfg.VerifyPlans {
		if err := verifyCompiled(cq); err != nil {
			return nil, fmt.Errorf("core: compiler emitted an invalid plan for %q: %w", q, err)
		}
	}
	if e.cfg.OrderAware {
		if err := e.optimizeCompiled(cq, q); err != nil {
			return nil, err
		}
		if e.cfg.VerifyPlans {
			if err := verifyCompiled(cq); err != nil {
				return nil, fmt.Errorf("core: optimizer broke the plan for %q: %w", q, err)
			}
		}
	}
	if e.cache != nil {
		e.cache.put(key, cq)
	}
	return cq, nil
}

// optimizeCompiled runs the peephole optimizer over every parameter
// initializer and the main plan. With TraceRewrites set, each
// optimization collects its rewrite witnesses and the translation
// validator replays them over synthesized inputs — an unsound rewrite
// fails the compilation, attributed to the plan it fired in (parameter
// initializers are covered exactly like the main plan).
func (e *Engine) optimizeCompiled(cq *xqc.Compiled, q string) error {
	if !e.cfg.TraceRewrites {
		cq.Plan = opt.Optimize(cq.Plan)
		for i := range cq.Params {
			if cq.Params[i].Init != nil {
				cq.Params[i].Init = opt.Optimize(cq.Params[i].Init)
			}
		}
		return nil
	}
	checkOpts := optcheck.DefaultOptions()
	for i := range cq.Params {
		if cq.Params[i].Init == nil {
			continue
		}
		var steps []opt.RewriteStep
		cq.Params[i].Init = opt.OptimizeTraced(cq.Params[i].Init, func(s opt.RewriteStep) { steps = append(steps, s) })
		if err := optcheck.ValidateSteps(steps, checkOpts); err != nil {
			return fmt.Errorf("core: unsound rewrite in the initializer of $%s for %q: %w", cq.Params[i].Name, q, err)
		}
	}
	var steps []opt.RewriteStep
	cq.Plan = opt.OptimizeTraced(cq.Plan, func(s opt.RewriteStep) { steps = append(steps, s) })
	if err := optcheck.ValidateSteps(steps, checkOpts); err != nil {
		return fmt.Errorf("core: unsound rewrite for %q: %w", q, err)
	}
	return nil
}

// RewriteSteps compiles q afresh (bypassing the plan cache, which only
// holds optimized plans) and returns the optimizer's rewrite witnesses
// for every parameter initializer and the main plan, in firing order.
// Nil without error when the engine is not order-aware.
func (e *Engine) RewriteSteps(q string) ([]opt.RewriteStep, error) {
	if !e.cfg.OrderAware {
		return nil, nil
	}
	m, err := xqp.Parse(q)
	if err != nil {
		return nil, err
	}
	cq, err := xqc.Compile(m, e.cfg.Compiler)
	if err != nil {
		return nil, err
	}
	var steps []opt.RewriteStep
	trace := func(s opt.RewriteStep) { steps = append(steps, s) }
	for i := range cq.Params {
		if cq.Params[i].Init != nil {
			cq.Params[i].Init = opt.OptimizeTraced(cq.Params[i].Init, trace)
		}
	}
	cq.Plan = opt.OptimizeTraced(cq.Plan, trace)
	return steps, nil
}

// verifyCompiled runs the static plan verifier over the main plan and
// every parameter initializer. Parameters are materialized in
// declaration order, so initializer i may only reference parameters
// declared before it; the main plan sees them all.
func verifyCompiled(cq *xqc.Compiled) error {
	visible := map[string]bool{}
	for _, p := range cq.Params {
		if p.Init != nil {
			if err := planck.Verify(p.Init, planck.Config{Params: visible, RequireItem: true}); err != nil {
				return fmt.Errorf("initializer of $%s: %w", p.Name, err)
			}
		}
		visible[p.Name] = true
	}
	return planck.Verify(cq.Plan, planck.Config{Params: visible, RequireItem: true})
}

// ExplainPlan compiles q (hitting the plan cache like any compile) and
// renders the optimized plan tree annotated with the statically
// inferred schema and column properties of every operator.
func (e *Engine) ExplainPlan(q string) (string, error) {
	cq, err := e.compile(q)
	if err != nil {
		return "", err
	}
	visible := map[string]bool{}
	var b strings.Builder
	for _, p := range cq.Params {
		if p.Init != nil {
			s, err := planck.Explain(p.Init, planck.Config{Params: visible, RequireItem: true})
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "$%s :=\n%s", p.Name, s)
		}
		visible[p.Name] = true
	}
	s, err := planck.Explain(cq.Plan, planck.Config{Params: visible, RequireItem: true})
	if err != nil {
		return "", err
	}
	b.WriteString(s)
	return b.String(), nil
}

// Query evaluates q and returns its result: it prepares the query
// (hitting the plan cache on repeats) and executes it without
// bindings. Node items in the result stay valid for the lifetime of
// the Result: constructed nodes live in a per-query transient
// container owned by the result's pool snapshot.
func (e *Engine) Query(q string) (*Result, error) {
	return e.QueryContext(context.Background(), q)
}

// QueryContext is Query under a context: compilation happens up front,
// then execution runs with the cancellation behavior of
// Prepared.ExecuteContext.
func (e *Engine) QueryContext(ctx context.Context, q string) (*Result, error) {
	p, err := e.Prepare(q)
	if err != nil {
		return nil, err
	}
	return p.ExecuteContext(ctx, nil)
}

// CacheStats reports plan-cache effectiveness: hits and misses since
// the engine was created, and the current number of cached plans. All
// zeros when plan caching is disabled.
func (e *Engine) CacheStats() (hits, misses int64, size int) {
	if e.cache == nil {
		return 0, 0, 0
	}
	return e.cache.hits.Load(), e.cache.misses.Load(), e.cache.len()
}

// LastStats returns the executor counters of the most recent Query.
func (e *Engine) LastStats() ralg.ExecStats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.lastStats
}

// PlanStats returns the operator and join counts of a compiled query
// (the §4.1 plan statistics).
func (e *Engine) PlanStats(q string) (ops, joins int, err error) {
	plan, err := e.Compile(q)
	if err != nil {
		return 0, 0, err
	}
	ops, joins = ralg.CountOps(plan)
	return ops, joins, nil
}

// SerializeXML writes the result sequence as XML text: nodes are
// serialized, adjacent atoms are separated by single spaces.
func (r *Result) SerializeXML(w io.Writer) error {
	prevAtom := false
	for _, it := range r.Items {
		switch it.K {
		case xqt.KNode:
			c := r.pool.Get(it.Cont)
			if err := store.Serialize(w, c, int32(it.I)); err != nil {
				return err
			}
			prevAtom = false
		case xqt.KAttr:
			c := r.pool.Get(it.Cont)
			name := c.Names.Name(c.AttrName[it.I])
			if _, err := fmt.Fprintf(w, `%s=%q`, name, c.AttrVal[it.I]); err != nil {
				return err
			}
			prevAtom = false
		default:
			s := it.AsString()
			if prevAtom {
				s = " " + s
			}
			if _, err := io.WriteString(w, s); err != nil {
				return err
			}
			prevAtom = true
		}
	}
	return nil
}

// String renders the result as serialized XML text.
func (r *Result) String() string {
	var sb strings.Builder
	if err := r.SerializeXML(&sb); err != nil {
		return "serialize error: " + err.Error()
	}
	return sb.String()
}

// QueryString evaluates q and serializes the result.
func (e *Engine) QueryString(q string) (string, error) {
	r, err := e.Query(q)
	if err != nil {
		return "", err
	}
	return r.String(), nil
}
