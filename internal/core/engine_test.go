package core

import (
	"strings"
	"testing"

	"mxq/internal/naive"
	"mxq/internal/scj"
	"mxq/internal/xqc"
)

const auctionDoc = `<site><regions><europe><item id="i0"><name>chair</name><quantity>1</quantity><description><text>a fine <emph>gold</emph> chair</text></description></item><item id="i1"><name>table</name><quantity>2</quantity><description><parlist><listitem><text>oak</text></listitem><listitem><parlist><listitem><text><emph><keyword>rare</keyword></emph></text></listitem></parlist></listitem></parlist></description></item></europe><asia><item id="i2"><name>lamp</name><quantity>1</quantity><description><text>plain lamp</text></description></item></asia></regions><people><person id="person0"><name>Ada</name><emailaddress>a@x</emailaddress><profile income="120000.5"><age>30</age></profile></person><person id="person1"><name>Bob</name><profile income="40000"><age>25</age></profile><homepage>hp</homepage></person><person id="person2"><name>Cyd</name></person></people><open_auctions><open_auction id="open0"><initial>15.5</initial><bidder><personref person="person0"/><increase>3</increase></bidder><bidder><personref person="person1"/><increase>7.5</increase></bidder><current>26</current><itemref item="i0"/></open_auction><open_auction id="open1"><initial>120</initial><current>120</current><itemref item="i2"/></open_auction></open_auctions><closed_auctions><closed_auction><seller person="person0"/><buyer person="person1"/><itemref item="i1"/><price>55</price></closed_auction><closed_auction><seller person="person2"/><buyer person="person0"/><itemref item="i0"/><price>20</price></closed_auction><closed_auction><seller person="person1"/><buyer person="person0"/><itemref item="i2"/><price>99</price></closed_auction></closed_auctions></site>`

// corpus is the differential-testing query corpus: every query is
// evaluated by the relational engine (in several ablation
// configurations) and by the naive DOM interpreter; results must agree.
var corpus = []string{
	// literals, arithmetic, sequences
	`42`, `3.5 + 1`, `(1, 2, (), 3)`, `10 idiv 3`, `-(2 + 3)`, `1 to 5`,
	`"a" < "b"`, `2 >= 2.0`, `5 != 4`,
	// paths, axes, predicates
	`/site/people/person/name/text()`,
	`/site/people/person[@id = "person1"]/name/text()`,
	`count(//item)`,
	`count(/site//keyword)`,
	`/site/regions/europe/item[2]/name/text()`,
	`/site/regions/europe/item[last()]/name/text()`,
	`/site/people/person[profile]/name/text()`,
	`/site/people/person[profile/@income > 50000]/name/text()`,
	`count(/site/people/person/@id)`,
	`string(/site/open_auctions/open_auction[1]/@id)`,
	`/site/regions//item/name/text()`,
	`count(/site/regions/europe/item[1]/following::item)`,
	`count(/site/regions/asia/item[1]/preceding::item)`,
	`count(/site/open_auctions/open_auction[1]/bidder[1]/following-sibling::bidder)`,
	`count(//keyword/ancestor::item)`,
	`//keyword/ancestor-or-self::keyword/text()`,
	`count(/site/regions/europe/item/../item)`,
	`/site/people/person[2]/parent::people/person[1]/name/text()`,
	`count(//text/descendant-or-self::node())`,
	`count(/site/*)`,
	`count(/site/people/person/*)`,
	// FLWOR
	`for $p in /site/people/person return $p/name/text()`,
	`for $p at $i in /site/people/person return ($i, ":", $p/name/text())`,
	`for $p in /site/people/person where $p/homepage return $p/name/text()`,
	`for $p in /site/people/person where empty($p/homepage/text()) return <person name="{$p/name/text()}"/>`,
	`for $x in (1, 2), $y in (10, 20) return $x + $y`,
	`let $n := count(/site/people/person) return $n * 2`,
	`for $a in /site/open_auctions/open_auction let $bids := $a/bidder return <a id="{$a/@id}">{count($bids)}</a>`,
	`for $i in /site/regions//item order by $i/name/text() return $i/name/text()`,
	`for $i in /site/regions//item order by $i/name/text() descending return $i/name/text()`,
	`for $p in /site/people/person order by number($p/profile/@income) return $p/name/text()`,
	// nested FLWOR and aggregation
	`for $r in /site/regions/* return <region n="{count($r/item)}"/>`,
	`sum(for $a in /site/closed_auctions/closed_auction return $a/price/text() * 1)`,
	`avg(for $a in /site/open_auctions/open_auction return number($a/initial/text()))`,
	`max((1, 5, 3))`, `min((4, 2, 9))`,
	// conditionals and quantifiers
	`for $a in /site/open_auctions/open_auction return if ($a/bidder) then "bid" else "none"`,
	`if (count(//item) > 2) then "many" else "few"`,
	`some $b in /site/open_auctions/open_auction/bidder satisfies $b/increase/text() > 5`,
	`every $b in /site/open_auctions/open_auction/bidder satisfies $b/increase/text() > 5`,
	`some $pr1 in //personref[@person = "person0"], $pr2 in //personref[@person = "person1"] satisfies $pr1 << $pr2`,
	// joins (all syntactic variants must agree)
	`for $p in /site/people/person let $a := for $t in /site/closed_auctions/closed_auction where $t/buyer/@person = $p/@id return $t return <item person="{$p/name/text()}">{count($a)}</item>`,
	`for $p in /site/people/person return <c n="{$p/name/text()}">{count(for $t in /site/closed_auctions/closed_auction where $t/buyer/@person = $p/@id return $t)}</c>`,
	`for $t in /site/closed_auctions/closed_auction, $p in /site/people/person where $t/buyer/@person = $p/@id return $p/name/text()`,
	`for $p in /site/people/person let $l := for $i in /site/open_auctions/open_auction/initial where $p/profile/@income > 5000 * exactly-one($i/text()) return $i return <items name="{$p/name/text()}">{count($l)}</items>`,
	`for $a in /site/closed_auctions/closed_auction, $i in /site/regions//item where $a/itemref/@item = $i/@id return <sale item="{$i/name/text()}" price="{$a/price/text()}"/>`,
	// functions
	`contains(string(exactly-one(/site/regions/europe/item[1]/description)), "gold")`,
	`for $i in /site/regions//item where contains(string(exactly-one($i/description)), "gold") return $i/name/text()`,
	`concat("a", "-", string(count(//item)))`,
	`distinct-values(for $b in //bidder return $b/personref/@person)`,
	`string-length(string(/site/people/person[1]/name/text()))`,
	`number(/site/open_auctions/open_auction[1]/initial/text()) * 2`,
	`floor(3.7)`, `ceiling(3.2)`, `round(3.5)`,
	`data(/site/people/person[1]/name)`,
	`name(/site/regions/*[1])`,
	`zero-or-one(/site/people/person[1]/age)`,
	// constructors
	`<results>{for $p in /site/people/person return <p>{$p/name/text()}</p>}</results>`,
	`<x a="1" b="{1+1}">text {2+3} more</x>`,
	`<wrap>{/site/regions/asia/item/description}</wrap>`,
	`<w>{/site/people/person[1]/@id}</w>`,
	`for $p in /site/people/person return <q income="{$p/profile/@income}"/>`,
	// user-defined functions
	`declare function local:convert($v) { 2.20371 * $v }; for $i in /site/open_auctions/open_auction return local:convert(zero-or-one($i/initial/text()))`,
	`declare function local:grand($a, $b) { $a + 2 * $b }; local:grand(1, 3)`,
	// union, node comparisons, ranges
	`count(/site/regions/europe/item | /site/regions//item)`,
	`/site/people/person[1] is /site/people/person[1]`,
	`/site/people/person[1] << /site/people/person[2]`,
	`for $x in 1 to 3 return $x * $x`,
	// mixed / tricky
	`for $p in /site/people/person return count($p/profile)`,
	`count(/site/people/person[not(homepage)])`,
	`for $a in /site/open_auctions/open_auction where $a/bidder[1]/increase/text() * 2 <= $a/bidder[last()]/increase/text() return <inc/>`,
	`(//item)[2]/name/text()`,
	`for $p in /site/people/person where $p/@id = ("person0", "person2") return $p/name/text()`,
	// value comparisons (empty-propagating)
	`/site/people/person[1]/name/text() eq "Ada"`,
	`2 lt 3`, `"b" ge "a"`, `count(//item) ne 2`,
	`for $p in /site/people/person return $p/age/text() eq "30"`,
	// explicit axes
	`count(//keyword/ancestor-or-self::node())`,
	`//item[2]/preceding-sibling::item/name/text()`,
	`count(/site/open_auctions/following::closed_auction)`,
	`count(//increase/parent::bidder)`,
	`/site/regions/europe/item[1]/self::item/name/text()`,
	`count(//item/descendant::text())`,
	`count(//parlist/descendant-or-self::parlist)`,
	// kind tests
	`count(/site//text())`,
	`count(/site/people/node())`,
	// positions and last()
	`/site/people/person[position() = 2]/name/text()`,
	`/site/people/person[last() - 1]/name/text()`,
	`(//item)[last()]/name/text()`,
	`for $b in //bidder[2] return $b/increase/text()`,
	// nested predicates
	`//open_auction[bidder[personref/@person = "person0"]]/@id`,
	`//person[profile[@income > 100000]]/name/text()`,
	// arithmetic edge cases
	`5 mod 2`, `-3 + 1`, `7 idiv 2`, `1.5 * 2`,
	`sum(())`, `count(())`,
	`avg((1, 2, 6))`,
	// strings
	`starts-with("person12", "person")`,
	`contains("", "")`,
	`concat("", "x", "")`,
	`string(())`,
	`string-length(())`,
	// sequences
	`(1 to 3, 5)`,
	`for $x in (1 to 3) return $x * 10`,
	`empty((//item)[10])`,
	// quantifiers over multiple vars
	`every $x in (1,2), $y in (3,4) satisfies $x < $y`,
	`some $x in (1,2), $y in (2,3) satisfies $x = $y`,
	// conditionals returning node sequences
	`if (//item) then //item[1]/name/text() else "none"`,
	`for $p in /site/people/person return if ($p/homepage) then $p/homepage/text() else "-"`,
	// constructors with mixed content and nesting
	`<out><inner a="{count(//item)}"/>{""}</out>`,
	`<t>{//item[1]/name/text()}{"-"}{//item[2]/name/text()}</t>`,
	`<deep>{<mid>{<leaf/>}</mid>}</deep>`,
	// order by with multiple keys and empties
	`for $p in /site/people/person order by count($p/profile), $p/name/text() return $p/name/text()`,
	`for $i in //item order by $i/quantity/text() descending, $i/name/text() return $i/@id`,
	// union with duplicates and mixed provenance
	`count((//item[1] | //item) | /site/regions/europe/item)`,
	// descendant fusion edge cases: positional predicates must see
	// per-parent child positions, boolean predicates the fused set
	`//item[1]/@id`,
	`//bidder[1]/increase/text()`,
	`count(//listitem[text])`,
	`count(/site//keyword[contains(., "a")])`,
	// UDF composing other features
	`declare function local:pricey($r) { count($r/item[quantity/text() > 1]) };
	 for $r in /site/regions/* return local:pricey($r)`,
}

func configs() map[string]Config {
	full := DefaultConfig()
	noJoin := DefaultConfig()
	noJoin.Compiler.JoinRecognition = false
	noOrder := DefaultConfig()
	noOrder.OrderAware = false
	iter := DefaultConfig()
	iter.Compiler.ChildVariant = scj.Iterative
	iter.Compiler.DescVariant = scj.Iterative
	iter.Compiler.NametestPushdown = false
	zero := Config{Compiler: xqc.Options{}}
	return map[string]Config{
		"full": full, "nojoinrec": noJoin, "noorder": noOrder,
		"iterative": iter, "alloff": zero,
	}
}

func TestDifferentialAgainstNaive(t *testing.T) {
	oracle := naive.New()
	if err := oracle.LoadXML("auction.xml", strings.NewReader(auctionDoc)); err != nil {
		t.Fatal(err)
	}
	for cname, cfg := range configs() {
		eng := New(cfg)
		if err := eng.LoadXML("auction.xml", strings.NewReader(auctionDoc)); err != nil {
			t.Fatal(err)
		}
		for _, q := range corpus {
			want, err := oracle.QueryString(q)
			if err != nil {
				t.Fatalf("oracle failed on %s: %v", q, err)
			}
			got, err := eng.QueryString(q)
			if err != nil {
				t.Errorf("[%s] engine error on %s: %v", cname, q, err)
				continue
			}
			if got != want {
				t.Errorf("[%s] mismatch on %s:\n got  %q\n want %q", cname, q, got, want)
			}
		}
	}
}

func TestEngineErrors(t *testing.T) {
	eng := New(DefaultConfig())
	if err := eng.LoadXML("auction.xml", strings.NewReader(auctionDoc)); err != nil {
		t.Fatal(err)
	}
	bad := []string{
		`$nope`,
		`exactly-one(())`,
		`zero-or-one((1,2))`,
		`unknownfn(3)`,
		`doc("missing.xml")//x`,
		`declare function local:f($x) { local:f($x) }; local:f(1)`, // recursive UDF
	}
	for _, q := range bad {
		if _, err := eng.Query(q); err == nil {
			t.Errorf("Query(%q) succeeded, want error", q)
		}
	}
}

func TestPlanCacheReuse(t *testing.T) {
	eng := New(DefaultConfig())
	if err := eng.LoadXML("auction.xml", strings.NewReader(auctionDoc)); err != nil {
		t.Fatal(err)
	}
	p1, err := eng.Compile(`count(//item)`)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := eng.Compile(`count(//item)`)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("plan cache did not reuse the compiled plan")
	}
	// two queries in a row both work (transient container recycling)
	for i := 0; i < 3; i++ {
		if _, err := eng.QueryString(`<x>{count(//item)}</x>`); err != nil {
			t.Fatalf("repeat query %d: %v", i, err)
		}
	}
}

func TestPlanStats(t *testing.T) {
	eng := New(DefaultConfig())
	if err := eng.LoadXML("auction.xml", strings.NewReader(auctionDoc)); err != nil {
		t.Fatal(err)
	}
	ops, joins, err := eng.PlanStats(`for $p in /site/people/person return $p/name/text()`)
	if err != nil {
		t.Fatal(err)
	}
	if ops < 5 {
		t.Errorf("suspiciously small plan: %d ops", ops)
	}
	if joins < 1 {
		t.Errorf("expected at least one join (back-mapping), got %d", joins)
	}
}
