package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"mxq/internal/sched"
	"mxq/internal/xmark"
)

// TestSchedOversubscribedDifferential is the scheduler stress test: 4×
// more concurrent executions than execution slots, all drawing workers
// from one shared pool. Every execution must complete (no starvation),
// every result must be byte-identical to serial execution, worker
// goroutines across all executions must stay bounded by the configured
// pool size, and the scheduler must drain back to idle. Run under
// -race this doubles as the data-race check on the grant/slot-pool
// path.
func TestSchedOversubscribedDifferential(t *testing.T) {
	const poolWorkers = 4
	const maxConcurrent = 4
	const clients = 4 * maxConcurrent

	cont := xmark.NewStoreContainer("auction.xml", 0.005, 42)
	serial := New(DefaultConfig())
	serial.LoadContainer("auction.xml", cont)

	s := sched.New(sched.Config{
		Workers:       poolWorkers,
		MaxConcurrent: maxConcurrent,
		MaxQueue:      2 * clients, // every client may queue; none sheds
		RowsPerWorker: 1,           // let plan complexity alone pick the width
	})
	cfg := parallelTestConfig()
	cfg.Scheduler = s
	eng := New(cfg)
	eng.LoadContainer("auction.xml", cont)

	queries := []string{xmark.Query(1), xmark.Query(5), xmark.Query(13), xmark.Query(20), `count(//item)`}
	want := make([]string, len(queries))
	stmts := make([]*Prepared, len(queries))
	for i, q := range queries {
		w, err := serial.QueryString(q)
		if err != nil {
			t.Fatalf("serial %q: %v", q, err)
		}
		want[i] = w
		p, err := eng.Prepare(q)
		if err != nil {
			t.Fatalf("prepare %q: %v", q, err)
		}
		stmts[i] = p
	}

	// Sample the process goroutine count while the storm runs: with
	// every spawned worker holding a pool slot, the total stays around
	// clients (launchers) + poolWorkers, never clients×GOMAXPROCS.
	before := runtime.NumGoroutine()
	stop := make(chan struct{})
	maxGoroutines := make(chan int, 1)
	go func() {
		peak := 0
		for {
			select {
			case <-stop:
				maxGoroutines <- peak
				return
			default:
			}
			if n := runtime.NumGoroutine(); n > peak {
				peak = n
			}
			time.Sleep(time.Millisecond)
		}
	}()

	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (c + r) % len(queries)
				res, err := stmts[i].ExecuteContext(context.Background(), nil)
				if err != nil {
					errs <- err
					return
				}
				if got := res.String(); got != want[i] {
					errs <- errors.New("scheduled result differs from serial for " + queries[i])
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := s.Stats()
	if st.MaxSlotsInUse > poolWorkers {
		t.Errorf("MaxSlotsInUse = %d, want <= %d (worker goroutines exceeded the pool)", st.MaxSlotsInUse, poolWorkers)
	}
	if st.Admitted != clients*rounds {
		t.Errorf("Admitted = %d, want %d (starved executions)", st.Admitted, clients*rounds)
	}
	if st.Running != 0 || st.QueueDepth != 0 || st.SlotsInUse != 0 || st.GrantedBudget != 0 {
		t.Errorf("scheduler did not drain: %+v", st)
	}
	if peak := <-maxGoroutines; peak > before+clients+poolWorkers+8 {
		t.Errorf("goroutine peak %d (baseline %d): workers are not drawing from the shared pool", peak, before)
	}
}

// TestSchedQueuedExecutionCancel: an execution queued behind a
// saturated scheduler gives up promptly when its deadline expires,
// without ever starting, and the queue drains.
func TestSchedQueuedExecutionCancel(t *testing.T) {
	s := sched.New(sched.Config{Workers: 2, MaxConcurrent: 1, MaxQueue: 4})
	cfg := DefaultConfig()
	cfg.Scheduler = s
	eng := New(cfg)
	eng.LoadContainer("auction.xml", xmark.NewStoreContainer("auction.xml", 0.002, 7))

	slow, err := eng.Prepare(`sum(for $i in 1 to 2000 return sum(for $j in 1 to 2000 return $i * $j))`)
	if err != nil {
		t.Fatal(err)
	}
	quick, err := eng.Prepare(`1+1`)
	if err != nil {
		t.Fatal(err)
	}

	slowCtx, cancelSlow := context.WithCancel(context.Background())
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		_, _ = slow.ExecuteContext(slowCtx, nil)
	}()
	deadline := time.Now().Add(3 * time.Second)
	for s.Stats().Running != 1 {
		if time.Now().After(deadline) {
			cancelSlow()
			t.Fatal("slow execution never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = quick.ExecuteContext(ctx, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		cancelSlow()
		t.Fatalf("queued execution: %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("queued execution held its position %v after expiry", elapsed)
	}
	if st := s.Stats(); st.QueueDepth != 0 || st.CanceledWait != 1 {
		t.Errorf("queue did not drain: %+v", st)
	}

	cancelSlow()
	<-slowDone
	drain := time.Now().Add(3 * time.Second)
	for s.Stats().Running != 0 {
		if time.Now().After(drain) {
			t.Fatalf("slow execution never released: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	// The freed slot is immediately usable.
	res, err := quick.Execute(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.String() != "2" {
		t.Errorf("result %q, want 2", res.String())
	}
}
