package core

import (
	"strings"
	"testing"
)

// Rewrite tracing must cover prolog parameter initializer plans, not
// just the main plan: this query's main plan is a bare literal (zero
// rewrites), so every witness comes from the initializer's path plan.
func TestRewriteStepsCoverParamInitializers(t *testing.T) {
	eng := New(DefaultConfig())
	steps, err := eng.RewriteSteps(`declare variable $v := /site/regions; 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("no rewrite witnesses from the parameter initializer plan")
	}
	trivial, err := eng.RewriteSteps(`1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(trivial) != 0 {
		t.Fatalf("literal query unexpectedly fired %d rewrites", len(trivial))
	}
}

// A non-order-aware engine performs no rewrites, so there is nothing
// to witness.
func TestRewriteStepsNilWithoutOptimizer(t *testing.T) {
	cfg := DefaultConfig()
	cfg.OrderAware = false
	steps, err := New(cfg).RewriteSteps(`/site/regions`)
	if err != nil {
		t.Fatal(err)
	}
	if steps != nil {
		t.Fatalf("unordered engine produced %d witnesses", len(steps))
	}
}

// MXQ_CHECK_REWRITES force-enables rewrite validation regardless of
// Config, mirroring MXQ_VERIFY_PLANS.
func TestCheckRewritesEnvOverride(t *testing.T) {
	t.Setenv("MXQ_CHECK_REWRITES", "1")
	eng := New(DefaultConfig())
	if !eng.cfg.TraceRewrites {
		t.Fatal("MXQ_CHECK_REWRITES=1 did not enable rewrite validation")
	}
	t.Setenv("MXQ_CHECK_REWRITES", "0")
	eng = New(DefaultConfig())
	if eng.cfg.TraceRewrites {
		t.Fatal("MXQ_CHECK_REWRITES=0 must not enable rewrite validation")
	}
}

// With TraceRewrites on, the traced compile path (parameter
// initializers included) validates and yields the same results as the
// untraced one.
func TestTraceRewritesCompilePath(t *testing.T) {
	const doc = `<site><a n="2">1</a><a n="1">2</a><a n="3">3</a></site>`
	const q = `declare variable $v := /site/a; for $x in $v order by $x/@n return string($x)`

	run := func(cfg Config) string {
		t.Helper()
		eng := New(cfg)
		if err := eng.LoadXML("t.xml", strings.NewReader(doc)); err != nil {
			t.Fatal(err)
		}
		res, err := eng.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		return res.String()
	}

	plain := run(DefaultConfig())
	traced := DefaultConfig()
	traced.TraceRewrites = true
	if got := run(traced); got != plain {
		t.Fatalf("traced compile path changed results:\n got %q\nwant %q", got, plain)
	}
}
