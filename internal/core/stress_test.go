package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestConcurrentQueriesAndLoads is the concurrency stress test: many
// goroutines issue a mixed query load against one Engine — with
// intra-query parallelism on, so worker goroutines nest inside query
// goroutines — while a writer keeps loading new documents. Every result
// must equal the single-threaded answer, and the whole test must be
// race-clean under `go test -race`.
func TestConcurrentQueriesAndLoads(t *testing.T) {
	eng := New(parallelTestConfig())
	if err := eng.LoadXML("auction.xml", strings.NewReader(auctionDoc)); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		`count(//item)`,
		`/site/people/person/name/text()`,
		`for $p in /site/people/person where $p/homepage return $p/name/text()`,
		`sum(for $a in /site/closed_auctions/closed_auction return $a/price/text() * 1)`,
		`<results>{for $p in /site/people/person return <p>{$p/name/text()}</p>}</results>`,
		`for $i in /site/regions//item order by $i/name/text() return $i/name/text()`,
		`count(/site//keyword/ancestor::item)`,
		`distinct-values(for $b in //bidder return $b/personref/@person)`,
		`for $t in /site/closed_auctions/closed_auction, $p in /site/people/person where $t/buyer/@person = $p/@id return $p/name/text()`,
		`//open_auction[bidder[personref/@person = "person0"]]/@id`,
	}
	want := make([]string, len(queries))
	for i, q := range queries {
		w, err := eng.QueryString(q)
		if err != nil {
			t.Fatalf("precompute %s: %v", q, err)
		}
		want[i] = w
	}

	const readers = 8
	const iterations = 25
	const loads = 16
	var wg sync.WaitGroup
	errCh := make(chan error, readers*iterations+loads)

	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				k := (g + i) % len(queries)
				got, err := eng.QueryString(queries[k])
				if err != nil {
					errCh <- fmt.Errorf("reader %d: %s: %v", g, queries[k], err)
					return
				}
				if got != want[k] {
					errCh <- fmt.Errorf("reader %d: %s:\n got  %q\n want %q", g, queries[k], got, want[k])
					return
				}
			}
		}(g)
	}

	// writer: loads new documents concurrently and immediately queries
	// them via doc() — its own loads are visible to its own queries
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < loads; i++ {
			name := fmt.Sprintf("extra%d.xml", i)
			doc := fmt.Sprintf(`<extra n="%d"><item/><item/></extra>`, i)
			if err := eng.LoadXML(name, strings.NewReader(doc)); err != nil {
				errCh <- fmt.Errorf("load %s: %v", name, err)
				return
			}
			got, err := eng.QueryString(fmt.Sprintf(`count(doc(%q)//item)`, name))
			if err != nil {
				errCh <- fmt.Errorf("query %s: %v", name, err)
				return
			}
			if got != "2" {
				errCh <- fmt.Errorf("doc(%q): got %q, want 2", name, got)
				return
			}
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestConcurrentCompileSharesPlans hammers the plan cache from many
// goroutines; all compilations of the same query must settle on cached
// plans without data races.
func TestConcurrentCompileSharesPlans(t *testing.T) {
	eng := New(DefaultConfig())
	if err := eng.LoadXML("auction.xml", strings.NewReader(auctionDoc)); err != nil {
		t.Fatal(err)
	}
	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q := fmt.Sprintf(`count(//item) + %d`, i%5)
				if _, err := eng.Compile(q); err != nil {
					t.Errorf("compile: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if got := eng.cache.len(); got != 5 {
		t.Errorf("cache holds %d plans, want 5", got)
	}
}
