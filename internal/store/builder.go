package store

import "fmt"

// Builder constructs container rows incrementally in document order. It is
// used by the shredder, by the XMark document generator, and by the element
// construction operator of the relational engine (each constructed element
// is one new fragment in the query's transient container).
//
// The zero Builder is not usable; create one with NewBuilder or
// NewContainerBuilder.
type Builder struct {
	c     *Container
	stack []int32 // open element pres
	// pending attribute buffers for the innermost open element
}

// NewContainer returns an empty container with an empty name dictionary.
// The container is not yet registered with a pool.
func NewContainer(name string) *Container {
	return &Container{
		Name:      name,
		Names:     NewNames(),
		attrStart: []int32{0},
	}
}

// NewBuilder returns a Builder appending to a fresh container.
func NewBuilder(name string) *Builder {
	return &Builder{c: NewContainer(name)}
}

// NewContainerBuilder returns a Builder appending to an existing container
// (used to add fragments to a transient container).
func NewContainerBuilder(c *Container) *Builder {
	return &Builder{c: c}
}

// Container returns the container under construction.
func (b *Builder) Container() *Container { return b.c }

// Depth returns the number of currently open elements.
func (b *Builder) Depth() int { return len(b.stack) }

func (b *Builder) appendRow(kind NodeKind, nameID, value int32) int32 {
	c := b.c
	pre := int32(len(c.Size))
	var parent, frag int32 = -1, pre
	level := int32(0)
	if len(b.stack) > 0 {
		parent = b.stack[len(b.stack)-1]
		level = c.Level[parent] + 1
		frag = c.Frag[parent]
	}
	c.Size = append(c.Size, 0)
	c.Level = append(c.Level, level)
	c.Kind = append(c.Kind, kind)
	c.Parent = append(c.Parent, parent)
	c.Frag = append(c.Frag, frag)
	c.NameID = append(c.NameID, nameID)
	c.Value = append(c.Value, value)
	c.attrStart = append(c.attrStart, int32(len(c.AttrOwner)))
	if c.RefCont != nil {
		c.RefCont = append(c.RefCont, c.ID)
		c.RefPre = append(c.RefPre, pre)
	}
	return pre
}

// StartDoc opens a document root node. It must be the first event and can
// occur only once per fragment.
func (b *Builder) StartDoc() int32 {
	pre := b.appendRow(KindDoc, -1, -1)
	b.stack = append(b.stack, pre)
	return pre
}

// StartElem opens an element node and returns its pre.
func (b *Builder) StartElem(name string) int32 {
	pre := b.appendRow(KindElem, b.c.Names.ID(name), -1)
	b.stack = append(b.stack, pre)
	return pre
}

// Attr attaches an attribute to the innermost open element. It must be
// called before any content is added to that element.
func (b *Builder) Attr(name, val string) {
	c := b.c
	owner := b.stack[len(b.stack)-1]
	if int32(len(c.Size)) != owner+1 {
		panic(fmt.Sprintf("store: attribute %q added after content of element %d", name, owner))
	}
	c.AttrOwner = append(c.AttrOwner, owner)
	c.AttrName = append(c.AttrName, c.Names.ID(name))
	c.AttrVal = append(c.AttrVal, val)
	c.attrStart[len(c.attrStart)-1] = int32(len(c.AttrOwner))
}

// Text appends a text node. Empty strings are skipped (no empty text
// nodes exist in the data model).
func (b *Builder) Text(s string) int32 {
	if s == "" {
		return -1
	}
	c := b.c
	c.Texts = append(c.Texts, s)
	return b.appendRow(KindText, -1, int32(len(c.Texts)-1))
}

// Comment appends a comment node.
func (b *Builder) Comment(s string) int32 {
	c := b.c
	c.Texts = append(c.Texts, s)
	return b.appendRow(KindComment, -1, int32(len(c.Texts)-1))
}

// PI appends a processing-instruction node with the given target and data.
func (b *Builder) PI(target, data string) int32 {
	c := b.c
	c.Texts = append(c.Texts, data)
	return b.appendRow(KindPI, c.Names.ID(target), int32(len(c.Texts)-1))
}

// End closes the innermost open element (or document node), fixing its
// size property.
func (b *Builder) End() int32 {
	pre := b.stack[len(b.stack)-1]
	b.stack = b.stack[:len(b.stack)-1]
	b.c.Size[pre] = int32(len(b.c.Size)) - pre - 1
	return pre
}

// CopyTree appends a shallow copy of the subtree rooted at pre of src as
// content of the innermost open element (or as a new fragment when nothing
// is open). Structural rows are copied; properties stay in src and are
// reached via the cont/ref indirection (paper §5.1). It returns the pre of
// the copy root in the destination container.
func (b *Builder) CopyTree(src *Container, pre int32) int32 {
	c := b.c
	if c.RefCont == nil {
		// materialize self-referencing indirection columns lazily
		n := len(c.Size)
		c.RefCont = make([]int32, n, n+int(src.Size[pre])+1)
		c.RefPre = make([]int32, n, n+int(src.Size[pre])+1)
		for i := 0; i < n; i++ {
			c.RefCont[i] = c.ID
			c.RefPre[i] = int32(i)
		}
	}
	base := int32(len(c.Size))
	var parent, frag int32 = -1, base
	baseLevel := int32(0)
	if len(b.stack) > 0 {
		parent = b.stack[len(b.stack)-1]
		baseLevel = c.Level[parent] + 1
		frag = c.Frag[parent]
	}
	// resolve the source row's own indirection so chains stay one hop deep
	end := pre + src.Size[pre]
	for p := pre; p <= end; p++ {
		if src.Level[p] == NullLevel {
			c.Size = append(c.Size, src.Size[p])
			c.Level = append(c.Level, NullLevel)
			c.Kind = append(c.Kind, KindUnused)
			c.Parent = append(c.Parent, -1)
			c.Frag = append(c.Frag, frag)
			c.NameID = append(c.NameID, -1)
			c.Value = append(c.Value, -1)
			c.RefCont = append(c.RefCont, c.ID)
			c.RefPre = append(c.RefPre, base+(p-pre))
			c.attrStart = append(c.attrStart, int32(len(c.AttrOwner)))
			continue
		}
		c.Size = append(c.Size, src.Size[p])
		c.Level = append(c.Level, baseLevel+src.Level[p]-src.Level[pre])
		c.Kind = append(c.Kind, src.Kind[p])
		if p == pre {
			c.Parent = append(c.Parent, parent)
		} else {
			c.Parent = append(c.Parent, base+(src.Parent[p]-pre))
		}
		c.Frag = append(c.Frag, frag)
		c.NameID = append(c.NameID, -1)
		c.Value = append(c.Value, -1)
		rc, rp := src.ID, p
		if src.RefCont != nil {
			rc, rp = src.RefCont[p], src.RefPre[p]
		}
		c.RefCont = append(c.RefCont, rc)
		c.RefPre = append(c.RefPre, rp)
		c.attrStart = append(c.attrStart, int32(len(c.AttrOwner)))
	}
	return base
}

// Done finalizes the container (all elements must be closed) and verifies
// basic invariants.
func (b *Builder) Done() (*Container, error) {
	if len(b.stack) != 0 {
		return nil, fmt.Errorf("store: %d unclosed elements", len(b.stack))
	}
	return b.c, nil
}
