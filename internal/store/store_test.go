package store

import (
	"strings"
	"testing"
)

// paperDoc is the XML fragment of Figure 4 in the paper.
const paperDoc = `<a><b><c><d/><e/></c></b><f><g/><h><i/><j/></h></f></a>`

func shredPaperDoc(t *testing.T) *Container {
	t.Helper()
	c, err := Shred("paper.xml", strings.NewReader(paperDoc), false)
	if err != nil {
		t.Fatalf("Shred: %v", err)
	}
	return c
}

func TestShredPaperEncoding(t *testing.T) {
	c := shredPaperDoc(t)
	// pre 0 is the document node; the paper's table starts at element a.
	want := []struct {
		name  string
		size  int32
		level int32
		post  int32
	}{
		{"a", 9, 0, 9}, {"b", 3, 1, 3}, {"c", 2, 2, 2}, {"d", 0, 3, 0},
		{"e", 0, 3, 1}, {"f", 4, 1, 8}, {"g", 0, 2, 4}, {"h", 2, 2, 7},
		{"i", 0, 3, 5}, {"j", 0, 3, 6},
	}
	if c.Len() != len(want)+1 {
		t.Fatalf("container has %d rows, want %d", c.Len(), len(want)+1)
	}
	for i, w := range want {
		pre := int32(i + 1)
		if got := c.NameOf(pre); got != w.name {
			t.Errorf("pre %d: name %q, want %q", pre, got, w.name)
		}
		if c.Size[pre] != w.size {
			t.Errorf("%s: size %d, want %d", w.name, c.Size[pre], w.size)
		}
		if c.Level[pre]-1 != w.level { // document node adds one level
			t.Errorf("%s: level %d, want %d", w.name, c.Level[pre]-1, w.level)
		}
		// post = pre + size - level; the document node shifts pre and
		// level by one, so the paper's postorder is recovered as
		// (pre-1) + size - (level-1) = pre + size - level.
		if got := pre + c.Size[pre] - c.Level[pre]; got != w.post {
			t.Errorf("%s: post %d, want %d", w.name, got, w.post)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	docs := []string{
		paperDoc,
		`<r>hello <b>bold</b> world</r>`,
		`<r a="1" b="x&amp;y"><child c="2"/>text&lt;tag&gt;</r>`,
		`<r><!--note--><?pi data?><x/></r>`,
	}
	for _, doc := range docs {
		c, err := Shred("d", strings.NewReader(doc), true)
		if err != nil {
			t.Fatalf("Shred(%q): %v", doc, err)
		}
		var sb strings.Builder
		if err := Serialize(&sb, c, 0); err != nil {
			t.Fatalf("Serialize: %v", err)
		}
		if sb.String() != doc {
			t.Errorf("round trip:\n got %q\nwant %q", sb.String(), doc)
		}
	}
}

func TestStringValue(t *testing.T) {
	c, err := Shred("d", strings.NewReader(`<r>one<b>two<c>three</c></b><!--x-->four</r>`), true)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.StringValue(1); got != "onetwothreefour" {
		t.Errorf("StringValue(r) = %q", got)
	}
	// pre 3 is <b>
	if got := c.NameOf(3); got != "b" {
		t.Fatalf("pre 3 is %q, want b", got)
	}
	if got := c.StringValue(3); got != "twothree" {
		t.Errorf("StringValue(b) = %q", got)
	}
}

func TestAttrs(t *testing.T) {
	c, err := Shred("d", strings.NewReader(`<r id="r0"><p id="p1" x="1"/><p id="p2"/></r>`), false)
	if err != nil {
		t.Fatal(err)
	}
	if n := c.AttrCount(1); n != 1 {
		t.Errorf("r has %d attrs, want 1", n)
	}
	ac, row := c.AttrByName(2, "id")
	if row < 0 || ac.AttrVal[row] != "p1" {
		t.Errorf("p1 id attr: row %d", row)
	}
	ac, row = c.AttrByName(2, "x")
	if row < 0 || ac.AttrVal[row] != "1" {
		t.Errorf("x attr lookup failed")
	}
	if _, row = c.AttrByName(2, "missing"); row != -1 {
		t.Errorf("missing attr found: %d", row)
	}
}

func TestElemIndex(t *testing.T) {
	c := shredPaperDoc(t)
	c.BuildIndexes()
	pres, ok := c.ElemIndex("c")
	if !ok || len(pres) != 1 || pres[0] != 3 {
		t.Errorf("ElemIndex(c) = %v, %v", pres, ok)
	}
	pres, ok = c.ElemIndex("nosuch")
	if !ok || pres != nil {
		t.Errorf("ElemIndex(nosuch) = %v, %v", pres, ok)
	}
}

func TestCopyTreeShallow(t *testing.T) {
	pool := NewPool()
	src := shredPaperDoc(t)
	pool.Register(src)
	dst := NewContainer("")
	pool.Register(dst)
	b := NewContainerBuilder(dst)
	root := b.StartElem("copy")
	// copy subtree <f>...
	cp := b.CopyTree(src, 6)
	b.End()
	if _, err := b.Done(); err != nil {
		t.Fatal(err)
	}
	if dst.Size[root] != src.Size[6]+1 {
		t.Errorf("copy size %d, want %d", dst.Size[root], src.Size[6]+1)
	}
	if got := dst.NameOf(cp); got != "f" {
		t.Errorf("copied root name %q, want f", got)
	}
	if got := dst.NameOf(cp + 2); got != "h" {
		t.Errorf("copied child name %q, want h", got)
	}
	var sb strings.Builder
	if err := Serialize(&sb, dst, root); err != nil {
		t.Fatal(err)
	}
	if want := `<copy><f><g/><h><i/><j/></h></f></copy>`; sb.String() != want {
		t.Errorf("serialized copy = %s, want %s", sb.String(), want)
	}
	if err := dst.Validate(); err != nil {
		t.Fatalf("Validate after copy: %v", err)
	}
}

func TestCopyOfCopyStaysOneHop(t *testing.T) {
	pool := NewPool()
	src := shredPaperDoc(t)
	pool.Register(src)
	mid := NewContainer("")
	pool.Register(mid)
	b := NewContainerBuilder(mid)
	b.StartElem("m")
	b.CopyTree(src, 2) // <b>...
	b.End()
	dst := NewContainer("")
	pool.Register(dst)
	b2 := NewContainerBuilder(dst)
	b2.StartElem("d")
	cp := b2.CopyTree(mid, 1)
	b2.End()
	// the copy-of-copy must reference the original container directly
	if dst.RefCont[cp] != src.ID {
		t.Errorf("RefCont = %d, want %d (original)", dst.RefCont[cp], src.ID)
	}
	var sb strings.Builder
	Serialize(&sb, dst, 0)
	if want := `<d><b><c><d/><e/></c></b></d>`; sb.String() != want {
		t.Errorf("got %s want %s", sb.String(), want)
	}
}

func TestFragRoots(t *testing.T) {
	c := NewContainer("")
	b := NewContainerBuilder(c)
	b.StartElem("x")
	b.End()
	b.StartElem("y")
	b.Text("t")
	b.End()
	roots := c.FragRoots()
	if len(roots) != 2 || roots[0] != 0 || roots[1] != 1 {
		t.Errorf("FragRoots = %v", roots)
	}
	if c.Frag[2] != 1 {
		t.Errorf("Frag of text = %d, want 1", c.Frag[2])
	}
}

func TestBuilderAttrAfterContentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder("d")
	b.StartElem("a")
	b.Text("x")
	b.Attr("late", "1")
}

func TestShredErrors(t *testing.T) {
	if _, err := Shred("bad", strings.NewReader(`<a><b></a>`), false); err == nil {
		t.Error("mismatched tags: want error")
	}
	if _, err := Shred("empty", strings.NewReader(``), false); err == nil {
		t.Error("empty doc: want error")
	}
}

func TestNamesDict(t *testing.T) {
	d := NewNames()
	a := d.ID("alpha")
	b := d.ID("beta")
	if a == b {
		t.Fatal("distinct names share id")
	}
	if d.ID("alpha") != a {
		t.Error("re-interning changed id")
	}
	if d.Name(b) != "beta" {
		t.Error("Name lookup failed")
	}
	if _, ok := d.Lookup("gamma"); ok {
		t.Error("Lookup of absent name succeeded")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestPool(t *testing.T) {
	p := NewPool()
	c1 := p.Register(NewContainer("one.xml"))
	c2 := p.Register(NewContainer("two.xml"))
	if c1.ID == c2.ID {
		t.Fatal("duplicate container ids")
	}
	if got, ok := p.ByName("two.xml"); !ok || got != c2 {
		t.Error("ByName failed")
	}
	if p.Get(c1.ID) != c1 {
		t.Error("Get failed")
	}
	if docs := p.Documents(); len(docs) != 2 || docs[0] != "one.xml" {
		t.Errorf("Documents = %v", docs)
	}
}
