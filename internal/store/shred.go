package store

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Shred parses the XML document read from r into a fresh container using
// the pre|size|level encoding. The container starts with a document root
// node at pre 0. Whitespace-only text between elements is preserved only
// when keepWS is true (the XMark benchmark data carries no significant
// inter-element whitespace, so the engine shreds with keepWS=false by
// default, like MonetDB/XQuery's shredder in its standard configuration).
func Shred(name string, r io.Reader, keepWS bool) (*Container, error) {
	b := NewBuilder(name)
	if err := ShredInto(b, name, r, keepWS); err != nil {
		return nil, err
	}
	c, err := b.Done()
	if err != nil {
		return nil, err
	}
	if c.Len() < 2 {
		return nil, fmt.Errorf("store: shred %s: document has no content", name)
	}
	return c, nil
}

// ShredInto parses one XML document from r and appends it as a new
// document fragment (StartDoc .. End) to b's container. It is the
// building block of multi-document shard containers (ShardedPool), where
// one container holds many document fragments.
func ShredInto(b *Builder, name string, r io.Reader, keepWS bool) error {
	start := b.Container().Len()
	b.StartDoc()
	dec := xml.NewDecoder(r)
	depth := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("store: shred %s: %w", name, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			b.StartElem(qname(t.Name))
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				b.Attr(qname(a.Name), a.Value)
			}
			depth++
		case xml.EndElement:
			b.End()
			depth--
		case xml.CharData:
			s := string(t)
			if !keepWS && strings.TrimSpace(s) == "" {
				continue
			}
			if depth > 0 {
				b.Text(s)
			}
		case xml.Comment:
			b.Comment(string(t))
		case xml.ProcInst:
			b.PI(t.Target, string(t.Inst))
		}
	}
	if depth != 0 {
		return fmt.Errorf("store: shred %s: %d unclosed elements", name, depth)
	}
	b.End() // close document node
	if b.Container().Len()-start < 2 {
		return fmt.Errorf("store: shred %s: document has no content", name)
	}
	return nil
}

func qname(n xml.Name) string {
	if n.Space == "" {
		return n.Local
	}
	return n.Space + ":" + n.Local
}

// Serialize writes the subtree rooted at pre as XML text. Document nodes
// serialize their children. The writer is not flushed or closed.
func Serialize(w io.Writer, c *Container, pre int32) error {
	s := serializer{w: w, c: c}
	s.node(pre)
	return s.err
}

type serializer struct {
	w   io.Writer
	c   *Container
	err error
}

func (s *serializer) write(str string) {
	if s.err != nil {
		return
	}
	_, s.err = io.WriteString(s.w, str)
}

func (s *serializer) node(pre int32) {
	c := s.c
	switch c.Kind[pre] {
	case KindDoc:
		s.children(pre)
	case KindElem:
		name := c.NameOf(pre)
		s.write("<")
		s.write(name)
		ac, lo, hi := c.Attrs(pre)
		for i := lo; i < hi; i++ {
			s.write(" ")
			s.write(ac.Names.Name(ac.AttrName[i]))
			s.write(`="`)
			s.write(escapeAttr(ac.AttrVal[i]))
			s.write(`"`)
		}
		if !s.hasRealChild(pre) {
			s.write("/>")
			return
		}
		s.write(">")
		s.children(pre)
		s.write("</")
		s.write(name)
		s.write(">")
	case KindText:
		s.write(escapeText(c.TextOf(pre)))
	case KindComment:
		s.write("<!--")
		s.write(c.TextOf(pre))
		s.write("-->")
	case KindPI:
		s.write("<?")
		s.write(c.NameOf(pre))
		s.write(" ")
		s.write(c.TextOf(pre))
		s.write("?>")
	case KindUnused:
		// skipped
	}
}

// hasRealChild reports whether any non-unused tuple lies in the region
// (regions may contain only unused slack in the paged update scheme).
func (s *serializer) hasRealChild(pre int32) bool {
	end := pre + s.c.Size[pre]
	for p := pre + 1; p <= end; p += s.c.Size[p] + 1 {
		if s.c.Level[p] != NullLevel {
			return true
		}
	}
	return false
}

func (s *serializer) children(pre int32) {
	end := pre + s.c.Size[pre]
	p := pre + 1
	for p <= end {
		if s.c.Level[p] == NullLevel {
			p += s.c.Size[p] + 1
			continue
		}
		s.node(p)
		p += s.c.Size[p] + 1
	}
}

var textEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
var attrEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", `"`, "&quot;")

func escapeText(s string) string { return textEscaper.Replace(s) }
func escapeAttr(s string) string { return attrEscaper.Replace(s) }
