package store

import (
	"fmt"
	"strings"
	"testing"
)

func shardDocXML(i int) string {
	return fmt.Sprintf(`<doc n="%d"><v>%d</v></doc>`, i, i)
}

func buildTestSharded(t *testing.T, name string, k, ndocs int) (*ShardedPool, []string) {
	t.Helper()
	names := make([]string, ndocs)
	for i := range names {
		names[i] = fmt.Sprintf("d%02d.xml", i)
	}
	xml := make(map[string]string, ndocs)
	for i, n := range names {
		xml[n] = shardDocXML(i)
	}
	sp, err := BuildSharded(name, k, names, func(d string, b *Builder) error {
		return ShredInto(b, d, strings.NewReader(xml[d]), false)
	})
	if err != nil {
		t.Fatal(err)
	}
	return sp, names
}

// TestShardOfDeterministic: the document-to-shard hash is stable, in
// range, and spreads a modest corpus over every shard.
func TestShardOfDeterministic(t *testing.T) {
	hit := make([]int, 4)
	for i := 0; i < 100; i++ {
		name := fmt.Sprintf("doc-%d.xml", i)
		s := ShardOf(name, 4)
		if s != ShardOf(name, 4) {
			t.Fatalf("ShardOf(%q) not deterministic", name)
		}
		if s < 0 || s >= 4 {
			t.Fatalf("ShardOf(%q, 4) = %d out of range", name, s)
		}
		hit[s]++
	}
	for s, n := range hit {
		if n == 0 {
			t.Errorf("shard %d received no documents out of 100", s)
		}
	}
	if ShardOf("anything", 1) != 0 || ShardOf("anything", 0) != 0 {
		t.Error("k <= 1 must map to shard 0")
	}
}

// TestBuildSharded: per-shard builders produce valid multi-fragment
// containers whose fragments line up with the hash partitioning, and
// duplicate document names are rejected.
func TestBuildSharded(t *testing.T) {
	const k, ndocs = 3, 10
	sp, names := buildTestSharded(t, "corpus", k, ndocs)
	if sp.K() != k || sp.DocCount() != ndocs {
		t.Fatalf("K=%d DocCount=%d, want %d/%d", sp.K(), sp.DocCount(), k, ndocs)
	}
	perShard := make([]int, k)
	for _, n := range names {
		perShard[ShardOf(n, k)]++
	}
	for s, c := range sp.Shards() {
		if err := c.Validate(); err != nil {
			t.Fatalf("shard %d invalid: %v", s, err)
		}
		if got := len(c.FragRoots()); got != perShard[s] {
			t.Errorf("shard %d holds %d fragments, want %d", s, got, perShard[s])
		}
	}
	if _, err := BuildSharded("dup", 2, []string{"a.xml", "a.xml"}, nil); err == nil ||
		!strings.Contains(err.Error(), "duplicate document") {
		t.Errorf("duplicate names: err = %v", err)
	}
	if _, err := BuildSharded("bad", 2, []string{"a.xml"}, func(d string, b *Builder) error {
		return ShredInto(b, d, strings.NewReader("<unclosed>"), false)
	}); err == nil {
		t.Error("malformed document must fail the build")
	}
}

// TestShardedRoots: once registered, Roots enumerates (container id,
// fragment root) in shard-major document order and DocNames matches.
func TestShardedRoots(t *testing.T) {
	const k = 3
	sp, names := buildTestSharded(t, "corpus", k, 7)
	p := NewPool()
	p.RegisterCollection(sp)
	if got, ok := p.Collection("corpus"); !ok || got != sp {
		t.Fatal("collection not registered")
	}
	var want []string
	for s := 0; s < k; s++ {
		for _, n := range names {
			if ShardOf(n, k) == s {
				want = append(want, n)
			}
		}
	}
	if fmt.Sprint(sp.DocNames()) != fmt.Sprint(want) {
		t.Fatalf("DocNames = %v, want %v", sp.DocNames(), want)
	}
	conts, pres := sp.Roots()
	if len(conts) != 7 {
		t.Fatalf("%d roots, want 7", len(conts))
	}
	for i := 1; i < len(conts); i++ {
		if conts[i] < conts[i-1] || (conts[i] == conts[i-1] && pres[i] <= pres[i-1]) {
			t.Fatalf("roots not in (container, pre) order at %d: %v %v", i, conts, pres)
		}
	}
	for i := range conts {
		c := p.Get(conts[i])
		if c.Kind[pres[i]] != KindDoc {
			t.Errorf("root %d is %v, want document node", i, c.Kind[pres[i]])
		}
	}
}

// TestWithDocCopyOnWrite: WithDoc leaves the receiver's shards untouched
// (snapshot safety), shares the unchanged shards, and rejects duplicate
// names.
func TestWithDocCopyOnWrite(t *testing.T) {
	const k = 2
	sp, _ := buildTestSharded(t, "corpus", k, 4)
	target := ShardOf("zz.xml", k)
	oldShard := sp.Shards()[target]
	oldLen := oldShard.Len()
	oldNames := oldShard.Names.Len()

	nsp, err := sp.WithDoc("zz.xml", func(b *Builder) error {
		return ShredInto(b, "zz.xml", strings.NewReader(`<zz><fresh/></zz>`), false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if oldShard.Len() != oldLen || oldShard.Names.Len() != oldNames {
		t.Fatal("WithDoc mutated the original shard container")
	}
	for s := 0; s < k; s++ {
		if s == target {
			if nsp.Shards()[s] == sp.Shards()[s] {
				t.Fatal("target shard was not copied")
			}
			if nsp.Shards()[s].Len() <= oldLen {
				t.Fatal("new shard is missing the appended fragment")
			}
		} else if nsp.Shards()[s] != sp.Shards()[s] {
			t.Fatal("unchanged shard was not shared")
		}
	}
	if nsp.DocCount() != 5 || sp.DocCount() != 4 {
		t.Fatalf("doc counts: new %d old %d, want 5/4", nsp.DocCount(), sp.DocCount())
	}
	if _, err := nsp.WithDoc("zz.xml", nil); err == nil ||
		!strings.Contains(err.Error(), "already in collection") {
		t.Errorf("duplicate WithDoc: err = %v", err)
	}
}

// TestCloneRejectsIndirection: containers with shallow-copy ref columns
// cannot be cloned (their self-references are container-id-bound).
func TestCloneRejectsIndirection(t *testing.T) {
	c := NewContainer("x")
	b := NewContainerBuilder(c)
	b.StartDoc()
	b.StartElem("a")
	b.End()
	b.End()
	src, err := Shred("src.xml", strings.NewReader("<s><t/></s>"), false)
	if err != nil {
		t.Fatal(err)
	}
	b2 := NewContainerBuilder(c)
	b2.CopyTree(src, 0)
	defer func() {
		if recover() == nil {
			t.Error("Clone of an indirection container must panic")
		}
	}()
	c.Clone()
}
