package store

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildRandom constructs a random container from a seed, returning it.
func buildRandom(seed int64, maxNodes int) *Container {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder("rand.xml")
	b.StartDoc()
	names := []string{"alpha", "beta", "gamma"}
	b.StartElem(names[rng.Intn(len(names))])
	if rng.Intn(2) == 0 {
		b.Attr("id", fmt.Sprintf("n%d", rng.Intn(100)))
	}
	open := 1
	for i := 0; i < maxNodes; i++ {
		switch rng.Intn(8) {
		case 0, 1, 2:
			b.StartElem(names[rng.Intn(len(names))])
			if rng.Intn(3) == 0 {
				b.Attr("k", fmt.Sprintf("%d", rng.Intn(9)))
			}
			open++
		case 3, 4:
			b.Text(fmt.Sprintf("t%d", rng.Intn(50)))
		case 5:
			b.Comment("c")
		default:
			if open > 1 {
				b.End()
				open--
			}
		}
	}
	for ; open > 0; open-- {
		b.End()
	}
	b.End() // doc
	c, err := b.Done()
	if err != nil {
		panic(err)
	}
	return c
}

// TestQuickRoundTrip: serialize → shred → serialize is the identity on
// random documents, and every shred output validates.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		c := buildRandom(seed, 80)
		if err := c.Validate(); err != nil {
			t.Logf("seed %d: built container invalid: %v", seed, err)
			return false
		}
		var s1 strings.Builder
		if err := Serialize(&s1, c, 0); err != nil {
			return false
		}
		c2, err := Shred("r.xml", strings.NewReader(s1.String()), true)
		if err != nil {
			t.Logf("seed %d: reshred failed: %v", seed, err)
			return false
		}
		if err := c2.Validate(); err != nil {
			t.Logf("seed %d: reshred invalid: %v", seed, err)
			return false
		}
		var s2 strings.Builder
		if err := Serialize(&s2, c2, 0); err != nil {
			return false
		}
		if s1.String() != s2.String() {
			t.Logf("seed %d:\n a: %s\n b: %s", seed, s1.String(), s2.String())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickCopyTreeFaithful: a shallow copy of any subtree serializes
// identically to the original subtree.
func TestQuickCopyTreeFaithful(t *testing.T) {
	f := func(seed int64, pick uint16) bool {
		pool := NewPool()
		src := buildRandom(seed, 60)
		pool.Register(src)
		// pick a random element subtree
		var elems []int32
		for p := int32(0); p < int32(src.Len()); p++ {
			if src.Kind[p] == KindElem {
				elems = append(elems, p)
			}
		}
		if len(elems) == 0 {
			return true
		}
		pre := elems[int(pick)%len(elems)]
		dst := NewContainer("")
		pool.Register(dst)
		b := NewContainerBuilder(dst)
		b.StartElem("wrap")
		cp := b.CopyTree(src, pre)
		b.End()
		if _, err := b.Done(); err != nil {
			return false
		}
		if err := dst.Validate(); err != nil {
			t.Logf("seed %d pre %d: copy invalid: %v", seed, pre, err)
			return false
		}
		var a, c strings.Builder
		Serialize(&a, src, pre)
		Serialize(&c, dst, cp)
		if a.String() != c.String() {
			t.Logf("seed %d pre %d:\n orig %s\n copy %s", seed, pre, a.String(), c.String())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickPostOrderIdentity: post = pre + size - level is a bijection
// between the non-document nodes and the postorder ranks 0..n-2 (the
// document node always comes last in postorder) — the paper's §2
// identity.
func TestQuickPostOrderIdentity(t *testing.T) {
	f := func(seed int64) bool {
		c := buildRandom(seed, 80)
		n := int32(c.Len())
		if c.Post(0) != n-1 {
			return false // document node is last in postorder
		}
		seen := make(map[int32]bool)
		for p := int32(1); p < n; p++ {
			post := c.Post(p)
			if post < 0 || post >= n-1 || seen[post] {
				return false
			}
			seen[post] = true
		}
		return len(seen) == int(n)-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
