// Sharded multi-document stores: a named corpus of documents partitioned
// across K shard containers. Each shard container holds many document
// fragments (one StartDoc..End fragment per document), so one corpus uses
// K containers instead of one container per document — downstream
// staircase joins then evaluate per shard, giving `collection()`-heavy
// workloads K-way parallelism, and loading itself parallelizes because
// every shard has its own Builder.
//
// Documents are assigned to shards by a hash of the document name
// (ShardOf), so shard membership is stable across loads and independent
// of insertion order.

package store

import (
	"fmt"
	"hash/fnv"
	"sync"
)

// ShardOf returns the shard index of the named document in a k-shard
// collection (FNV-1a over the document name, modulo k).
func ShardOf(doc string, k int) int {
	if k <= 1 {
		return 0
	}
	h := fnv.New32a()
	h.Write([]byte(doc))
	return int(h.Sum32() % uint32(k))
}

// ShardedPool is a sharded multi-document collection: K shard containers,
// each holding the pre|size|level fragments of the documents hashed to it.
// Like single-document containers, a ShardedPool is immutable once built
// and registered; WithDoc produces a new ShardedPool sharing the
// unchanged shards, so in-flight pool snapshots keep seeing their
// version (the same snapshot semantics single documents have).
type ShardedPool struct {
	Name   string
	shards []*Container
	docs   [][]string // per-shard document names, insertion order
}

// Shards returns the shard containers in shard order.
func (sp *ShardedPool) Shards() []*Container { return sp.shards }

// K returns the number of shards.
func (sp *ShardedPool) K() int { return len(sp.shards) }

// DocCount returns the number of documents in the collection.
func (sp *ShardedPool) DocCount() int {
	n := 0
	for _, d := range sp.docs {
		n += len(d)
	}
	return n
}

// has reports whether the collection contains the named document.
func (sp *ShardedPool) has(doc string) bool {
	for _, names := range sp.docs {
		for _, n := range names {
			if n == doc {
				return true
			}
		}
	}
	return false
}

// order returns the shard indexes in collection document order: ascending
// registered container id, unregistered shards last in shard order. Node
// items compare by (container id, pre), so this order IS the document
// order queries observe across shards.
func (sp *ShardedPool) order() []int {
	idx := make([]int, len(sp.shards))
	for i := range idx {
		idx[i] = i
	}
	key := func(i int) int64 {
		c := sp.shards[i]
		if c.pool == nil {
			return int64(1)<<40 + int64(i)
		}
		return int64(c.ID)
	}
	for i := 1; i < len(idx); i++ { // insertion sort; K is small
		for j := i; j > 0 && key(idx[j]) < key(idx[j-1]); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}

// DocNames returns the document names in collection document order (the
// order collection() enumerates the documents): shards by ascending
// container id, documents within a shard in insertion order.
func (sp *ShardedPool) DocNames() []string {
	out := make([]string, 0, sp.DocCount())
	for _, s := range sp.order() {
		out = append(out, sp.docs[s]...)
	}
	return out
}

// Roots returns the (container id, fragment-root pre) pairs of every
// document in the collection, in collection document order. All shards
// must be pool-registered.
func (sp *ShardedPool) Roots() (conts, pres []int32) {
	for _, s := range sp.order() {
		c := sp.shards[s]
		for _, r := range c.FragRoots() {
			conts = append(conts, c.ID)
			pres = append(pres, r)
		}
	}
	return conts, pres
}

// BuildIndexes pre-builds the element-name indexes of shards that do not
// have one yet. Engines call it before taking their registry lock, so
// the O(shard) index construction never stalls concurrent queries;
// Pool.RegisterCollection skips shards that already carry an index.
func (sp *ShardedPool) BuildIndexes() {
	for _, c := range sp.shards {
		if c.elemIndex == nil {
			c.BuildIndexes()
		}
	}
}

// BuildSharded builds a sharded collection of the named documents across
// k shard containers. Documents are assigned to shards by ShardOf and the
// shard containers are built concurrently (one goroutine and one Builder
// per non-empty shard). build must append exactly one document fragment
// (StartDoc .. End) for the named document — ShredInto for XML input, or
// any generator emitting Builder events.
func BuildSharded(name string, k int, docNames []string, build func(doc string, b *Builder) error) (*ShardedPool, error) {
	if k < 1 {
		k = 1
	}
	sp := &ShardedPool{Name: name, shards: make([]*Container, k), docs: make([][]string, k)}
	seen := make(map[string]bool, len(docNames))
	for _, d := range docNames {
		if seen[d] {
			return nil, fmt.Errorf("store: duplicate document %q in collection %q", d, name)
		}
		seen[d] = true
		s := ShardOf(d, k)
		sp.docs[s] = append(sp.docs[s], d)
	}
	errs := make([]error, k)
	var wg sync.WaitGroup
	for s := 0; s < k; s++ {
		sp.shards[s] = NewContainer("")
		if len(sp.docs[s]) == 0 {
			continue
		}
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			b := NewContainerBuilder(sp.shards[s])
			for _, d := range sp.docs[s] {
				if err := build(d, b); err != nil {
					errs[s] = err
					return
				}
			}
			if _, err := b.Done(); err != nil {
				errs[s] = err
			}
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return sp, nil
}

// WithDoc returns a new ShardedPool that additionally holds the named
// document: the target shard container is deep-copied and the new
// fragment appended to the copy, while all other shards are shared. The
// receiver — and every pool snapshot referencing it — is unchanged. The
// new shard container is unregistered; registering it assigns it a fresh
// container id, which moves the updated shard to the end of the
// collection's document order.
func (sp *ShardedPool) WithDoc(doc string, build func(b *Builder) error) (*ShardedPool, error) {
	if sp.has(doc) {
		return nil, fmt.Errorf("store: document %q already in collection %q", doc, sp.Name)
	}
	s := ShardOf(doc, len(sp.shards))
	out := &ShardedPool{
		Name:   sp.Name,
		shards: append([]*Container(nil), sp.shards...),
		docs:   append([][]string(nil), sp.docs...),
	}
	out.shards[s] = sp.shards[s].Clone()
	out.docs[s] = append(append([]string(nil), sp.docs[s]...), doc)
	b := NewContainerBuilder(out.shards[s])
	if err := build(b); err != nil {
		return nil, err
	}
	if _, err := b.Done(); err != nil {
		return nil, err
	}
	return out, nil
}

// Clone returns a deep copy of the container's rows, properties and name
// dictionary, detached from any pool (ID 0, no indexes). It is the basis
// of ShardedPool.WithDoc's copy-on-write shard update. Containers with
// shallow-copy ref indirection cannot be cloned: their self-referencing
// RefCont entries are tied to the source's container id.
func (c *Container) Clone() *Container {
	if c.RefCont != nil {
		panic("store: cannot clone a container with ref indirection")
	}
	return &Container{
		Name:      c.Name,
		Size:      append([]int32(nil), c.Size...),
		Level:     append([]int32(nil), c.Level...),
		Kind:      append([]NodeKind(nil), c.Kind...),
		Parent:    append([]int32(nil), c.Parent...),
		Frag:      append([]int32(nil), c.Frag...),
		NameID:    append([]int32(nil), c.NameID...),
		Value:     append([]int32(nil), c.Value...),
		Texts:     append([]string(nil), c.Texts...),
		AttrOwner: append([]int32(nil), c.AttrOwner...),
		AttrName:  append([]int32(nil), c.AttrName...),
		AttrVal:   append([]string(nil), c.AttrVal...),
		attrStart: append([]int32(nil), c.attrStart...),
		Names:     c.Names.Clone(),
	}
}

// Clone returns a deep copy of the dictionary.
func (d *Names) Clone() *Names {
	out := &Names{
		byName: make(map[string]int32, len(d.byName)),
		names:  append([]string(nil), d.names...),
	}
	for k, v := range d.byName {
		out.byName[k] = v
	}
	return out
}
