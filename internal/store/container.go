// Package store implements the relational XML storage scheme of
// MonetDB/XQuery: documents are shredded into a pre|size|level table whose
// preorder rank simultaneously serves as node identity, plus property
// containers for qualified names, text content and attributes (paper §2 and
// §5.1).
//
// A Container holds one document (a "document container") or all transient
// nodes constructed during the evaluation of one query (a "transient
// container"). Transient containers hold many disjoint tree fragments; the
// frag column keeps them apart. Subtree copies into a transient container
// are shallow: the structural rows are copied, while the node properties
// (names, text, attributes) remain in the original container and are
// reached through the per-row (RefCont, RefPre) indirection — the paper's
// cont/ref columns.
package store

import (
	"fmt"
	"sort"

	"mxq/internal/faults"
)

// NodeKind is the node-kind property of a pre|size|level row.
type NodeKind uint8

// Node kinds stored in the kind column.
const (
	KindDoc     NodeKind = iota // document root node
	KindElem                    // element node
	KindText                    // text node
	KindComment                 // comment node
	KindPI                      // processing instruction
	KindUnused                  // unused tuple on a logical page (level is NULL)
)

func (k NodeKind) String() string {
	switch k {
	case KindDoc:
		return "document"
	case KindElem:
		return "element"
	case KindText:
		return "text"
	case KindComment:
		return "comment"
	case KindPI:
		return "processing-instruction"
	case KindUnused:
		return "unused"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// NullLevel is the level value of unused tuples (the relational NULL of the
// paged update scheme, §5.2).
const NullLevel int32 = -1

// Container is the relational encoding of a set of XML tree fragments: the
// pre|size|level backbone plus property containers. All slices are indexed
// by preorder rank.
type Container struct {
	ID   int32  // container id within its Pool
	Name string // document name ("" for transient containers)

	// Structural backbone.
	Size   []int32    // number of nodes in the subtree below each node
	Level  []int32    // depth below the fragment root; NullLevel marks unused tuples
	Kind   []NodeKind // node kind
	Parent []int32    // parent pre; -1 for fragment roots
	Frag   []int32    // pre of the fragment root each node belongs to

	// Property containers. NameID indexes Names for elements and PI
	// targets; Value indexes Texts for text, comment and PI nodes. Both
	// are -1 when not applicable.
	NameID []int32
	Value  []int32
	Texts  []string

	// Attribute container, grouped by owner pre in document order.
	// attrStart[p] .. attrStart[p+1] delimit the attributes of node p.
	AttrOwner []int32
	AttrName  []int32
	AttrVal   []string
	attrStart []int32

	// Shallow-copy indirection (paper's cont/ref columns). Nil for
	// document containers: every row references itself. When non-nil,
	// property lookups for row p are answered by container RefCont[p] at
	// pre RefPre[p].
	RefCont []int32
	RefPre  []int32

	// Names is the qualified-name dictionary of this container.
	Names *Names

	pool *Pool

	// elemIndex maps element name id -> ascending pres ("nametest
	// index"), built by BuildIndexes for document containers.
	elemIndex map[int32][]int32
}

// Len returns the number of rows in the pre|size|level table.
func (c *Container) Len() int { return len(c.Size) }

// Pool returns the pool this container is registered with.
func (c *Container) Pool() *Pool { return c.pool }

// refOf resolves the property indirection of row pre: the container and pre
// where the node's properties live.
func (c *Container) refOf(pre int32) (*Container, int32) {
	if c.RefCont == nil || c.RefCont[pre] == c.ID {
		return c, ifNil(c.RefPre, pre)
	}
	return c.pool.Get(c.RefCont[pre]), c.RefPre[pre]
}

func ifNil(ref []int32, pre int32) int32 {
	if ref == nil {
		return pre
	}
	return ref[pre]
}

// NameOf returns the qualified name of the element or PI target at pre.
func (c *Container) NameOf(pre int32) string {
	rc, rp := c.refOf(pre)
	id := rc.NameID[rp]
	if id < 0 {
		return ""
	}
	return rc.Names.Name(id)
}

// TextOf returns the content of a text, comment or PI node at pre.
func (c *Container) TextOf(pre int32) string {
	rc, rp := c.refOf(pre)
	v := rc.Value[rp]
	if v < 0 {
		return ""
	}
	return rc.Texts[v]
}

// Attrs returns the attribute rows (in the referenced container) of node
// pre along with the container holding them.
func (c *Container) Attrs(pre int32) (ac *Container, lo, hi int32) {
	rc, rp := c.refOf(pre)
	return rc, rc.attrStart[rp], rc.attrStart[rp+1]
}

// AttrCount returns the number of attributes of node pre.
func (c *Container) AttrCount(pre int32) int {
	_, lo, hi := c.Attrs(pre)
	return int(hi - lo)
}

// AttrByName returns the attribute row of node pre with the given name, or
// -1 if absent, along with the container holding the attribute.
func (c *Container) AttrByName(pre int32, name string) (*Container, int32) {
	ac, lo, hi := c.Attrs(pre)
	id, ok := ac.Names.Lookup(name)
	if !ok {
		return ac, -1
	}
	for i := lo; i < hi; i++ {
		if ac.AttrName[i] == id {
			return ac, i
		}
	}
	return ac, -1
}

// StringValue computes the XPath string value of the node at pre: the text
// content for text/comment/PI nodes, and the concatenation of all
// descendant text nodes for elements and document nodes.
func (c *Container) StringValue(pre int32) string {
	switch c.Kind[pre] {
	case KindText, KindComment, KindPI:
		return c.TextOf(pre)
	}
	end := pre + c.Size[pre]
	var buf []byte
	for p := pre + 1; p <= end; p++ {
		if c.Kind[p] == KindText {
			buf = append(buf, c.TextOf(p)...)
		}
	}
	return string(buf)
}

// StringValues is the bulk form of StringValue: it computes the string
// value of every node in pres (given in the executor's int64 column
// width) into out. The executor's vectorized atomize kernel calls it once
// per uniform node column instead of boxing one item per row.
func (c *Container) StringValues(pres []int64, out []string) {
	for i, p := range pres {
		out[i] = c.StringValue(int32(p))
	}
}

// AttrValues is the bulk form of attribute atomization: it copies the
// attribute values of the given attribute-table rows into out.
func (c *Container) AttrValues(rows []int64, out []string) {
	for i, r := range rows {
		out[i] = c.AttrVal[r]
	}
}

// NamesOf is the bulk form of NameOf: the qualified names of the nodes in
// pres, written into out (the executor's vectorized fn:name kernel).
func (c *Container) NamesOf(pres []int64, out []string) {
	for i, p := range pres {
		out[i] = c.NameOf(int32(p))
	}
}

// AttrNames resolves the qualified names of the given attribute-table
// rows into out.
func (c *Container) AttrNames(rows []int64, out []string) {
	for i, r := range rows {
		out[i] = c.Names.Name(c.AttrName[r])
	}
}

// Post returns the postorder rank of node pre, recovered from the
// pre/size/level encoding as post = pre + size - level (paper §2).
func (c *Container) Post(pre int32) int32 {
	return pre + c.Size[pre] - c.Level[pre]
}

// RebuildAttrIndex recomputes the attrStart offsets from the AttrOwner
// column (which must be grouped by owner in ascending pre order). Callers
// that assemble the attribute table directly — such as the paged update
// scheme's view materialization — use this instead of the Builder.
func (c *Container) RebuildAttrIndex() {
	n := c.Len()
	c.attrStart = make([]int32, n+1)
	a := 0
	for p := 0; p <= n; p++ {
		for a < len(c.AttrOwner) && c.AttrOwner[a] < int32(p) {
			a++
		}
		c.attrStart[p] = int32(a)
	}
}

// BuildIndexes constructs the element-name posting lists used by the
// candidate-list ("nametest pushdown") variants of staircase join. The
// lists hold pres in ascending (document) order.
func (c *Container) BuildIndexes() {
	idx := make(map[int32][]int32)
	for p := 0; p < c.Len(); p++ {
		if c.Kind[p] == KindElem {
			rc, rp := c.refOf(int32(p))
			id := rc.NameID[rp]
			if rc != c {
				// remap foreign name id into this container's dictionary
				id = c.Names.ID(rc.Names.Name(id))
			}
			idx[id] = append(idx[id], int32(p))
		}
	}
	c.elemIndex = idx
}

// ElemIndex returns the ascending pre list of elements named name, and
// whether an index is available on this container.
func (c *Container) ElemIndex(name string) ([]int32, bool) {
	if c.elemIndex == nil {
		return nil, false
	}
	id, ok := c.Names.Lookup(name)
	if !ok {
		return nil, true // index exists; name does not occur
	}
	return c.elemIndex[id], true
}

// FragRoots returns the pres of all fragment roots in the container.
func (c *Container) FragRoots() []int32 {
	var roots []int32
	p := int32(0)
	for p < int32(c.Len()) {
		if c.Level[p] == NullLevel {
			p += c.Size[p] + 1
			continue
		}
		roots = append(roots, p)
		p += c.Size[p] + 1
	}
	return roots
}

// Validate checks the well-formedness invariants of the pre|size|level
// encoding and the property containers. It is used by tests and by the
// paged update scheme after structural updates.
func (c *Container) Validate() error {
	n := int32(c.Len())
	if len(c.Level) != int(n) || len(c.Kind) != int(n) || len(c.Parent) != int(n) ||
		len(c.Frag) != int(n) || len(c.NameID) != int(n) || len(c.Value) != int(n) {
		return fmt.Errorf("store: ragged container columns")
	}
	if len(c.attrStart) != int(n)+1 {
		return fmt.Errorf("store: attrStart has %d entries, want %d", len(c.attrStart), n+1)
	}
	for p := int32(0); p < n; p++ {
		if c.Size[p] < 0 {
			return fmt.Errorf("store: node %d has negative size", p)
		}
		if c.Level[p] == NullLevel {
			continue
		}
		end := p + c.Size[p]
		if end >= n {
			return fmt.Errorf("store: node %d subtree end %d out of range", p, end)
		}
		// real children must nest inside the region; unused runs may
		// extend past the region end (skip loops are bounded by eos)
		q := p + 1
		for q <= end {
			if c.Level[q] != NullLevel {
				if c.Parent[q] != p {
					return fmt.Errorf("store: node %d inside region of %d has parent %d", q, p, c.Parent[q])
				}
				if c.Level[q] != c.Level[p]+1 {
					return fmt.Errorf("store: child %d of %d has level %d, want %d", q, p, c.Level[q], c.Level[p]+1)
				}
				if q+c.Size[q] > end {
					return fmt.Errorf("store: child %d of %d overruns region end %d", q, p, end)
				}
			}
			q += c.Size[q] + 1
		}
	}
	if !sort.SliceIsSorted(c.AttrOwner, func(i, j int) bool { return c.AttrOwner[i] < c.AttrOwner[j] }) {
		return fmt.Errorf("store: attribute table not grouped by owner")
	}
	return nil
}

// Names is a qualified-name dictionary: a bidirectional mapping between
// names and dense integer ids.
type Names struct {
	byName map[string]int32
	names  []string
}

// NewNames returns an empty dictionary.
func NewNames() *Names {
	return &Names{byName: make(map[string]int32)}
}

// ID interns name and returns its id.
func (d *Names) ID(name string) int32 {
	if id, ok := d.byName[name]; ok {
		return id
	}
	id := int32(len(d.names))
	d.names = append(d.names, name)
	d.byName[name] = id
	return id
}

// Lookup returns the id of name without interning it.
func (d *Names) Lookup(name string) (int32, bool) {
	id, ok := d.byName[name]
	return id, ok
}

// Name returns the name with the given id.
func (d *Names) Name(id int32) string { return d.names[id] }

// Len returns the number of interned names.
func (d *Names) Len() int { return len(d.names) }

// Pool is the registry of containers live in one engine instance: the
// paper's "loaded documents" table. Container ids index the pool.
//
// A Pool is not synchronized; concurrent engines serialize Register and
// Snapshot calls themselves (core.Engine holds an RWMutex) and treat
// registered containers as immutable. Snapshot gives each query its own
// registry so a per-query transient container can be added without
// affecting other queries running against the same documents.
type Pool struct {
	containers  []*Container
	byName      map[string]*Container
	collections map[string]*ShardedPool
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{
		byName:      make(map[string]*Container),
		collections: make(map[string]*ShardedPool),
	}
}

// Register adds c to the pool, assigning its id.
func (p *Pool) Register(c *Container) *Container {
	c.ID = int32(len(p.containers))
	c.pool = p
	p.containers = append(p.containers, c)
	if c.Name != "" {
		p.byName[c.Name] = c
	}
	return c
}

// Get returns the container with the given id.
func (p *Pool) Get(id int32) *Container { return p.containers[id] }

// Rows sums the structural row counts of every registered container —
// the snapshot input size the query scheduler's worker-budget
// heuristic scales with.
func (p *Pool) Rows() int64 {
	var n int64
	for _, c := range p.containers {
		n += int64(c.Len())
	}
	return n
}

// Snapshot returns a shallow copy of the pool: it shares the registered
// containers (immutable once registered) but owns its registry, so
// containers registered later — per-query transients, concurrently
// loaded documents — never show up in, or renumber, existing snapshots.
func (p *Pool) Snapshot() *Pool {
	// fault point: a snapshot-time failure (e.g. allocation) must be
	// contained by the execution boundary, never corrupt the source pool
	if err := faults.StoreSnapshot.Err(); err != nil {
		panic(err)
	}
	q := &Pool{
		containers:  append([]*Container(nil), p.containers...),
		byName:      make(map[string]*Container, len(p.byName)),
		collections: make(map[string]*ShardedPool, len(p.collections)),
	}
	for k, v := range p.byName {
		q.byName[k] = v
	}
	for k, v := range p.collections {
		q.collections[k] = v
	}
	return q
}

// RegisterCollection registers the collection's shard containers that
// this pool does not hold yet (assigning ascending container ids in shard
// order) and records the collection under its name. Re-registering a
// collection after WithDoc registers only the fresh shard containers;
// shards already in this pool — shared with pool snapshots — are left
// untouched. A ShardedPool belongs to exactly one pool: registering a
// shard that another pool owns would rewrite its container id under that
// engine's feet (silently corrupting its Roots resolution), so it
// panics — build a separate collection per engine instead.
func (p *Pool) RegisterCollection(sp *ShardedPool) {
	for _, c := range sp.shards {
		if c.pool == nil {
			p.Register(c)
			if c.elemIndex == nil {
				c.BuildIndexes()
			}
		} else if c.pool != p {
			panic("store: shard container already registered with another pool; a ShardedPool belongs to one engine")
		}
	}
	p.collections[sp.Name] = sp
}

// Collection returns the sharded collection registered under name.
func (p *Pool) Collection(name string) (*ShardedPool, bool) {
	sp, ok := p.collections[name]
	return sp, ok
}

// Collections returns the names of all registered collections.
func (p *Pool) Collections() []string {
	names := make([]string, 0, len(p.collections))
	for n := range p.collections {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ByName returns the document container registered under name.
func (p *Pool) ByName(name string) (*Container, bool) {
	c, ok := p.byName[name]
	return c, ok
}

// Documents returns the names of all registered documents.
func (p *Pool) Documents() []string {
	names := make([]string, 0, len(p.byName))
	for n := range p.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// AttrOwnerOf returns the owner pre of attribute row in container cont;
// it has the signature xqt.DocOrderLess expects.
func (p *Pool) AttrOwnerOf(cont int32, row int32) int32 {
	return p.Get(cont).AttrOwner[row]
}
