// Package qgen is a seeded, deterministic XPath/FLWOR query generator
// over the XMark vocabulary, used for randomized differential testing:
// every generated query is run through the relational engine (serial and
// parallel) and the naive DOM oracle, and the serializations must be
// byte-identical. The generator stays inside the dialect both engines
// implement and favors the constructs whose plans differ most between
// them (location steps with predicates, FLWOR pipelines, aggregates,
// general comparisons, doc()/collection() roots, and — via BoundQuery —
// prepared queries with external variables and typed bindings).
package qgen

import (
	"fmt"
	"math/rand"
	"strings"

	"mxq/internal/xqt"
)

// Gen is one deterministic query stream. Two Gens with the same seed and
// roots produce the same queries.
type Gen struct {
	rng *rand.Rand
	// roots are full root expressions a path may start from — "/site",
	// `doc("b.xml")/site`, `collection("xm")/site` — chosen uniformly.
	roots []string
}

// New returns a generator drawing path roots from roots.
func New(seed int64, roots []string) *Gen {
	if len(roots) == 0 {
		roots = []string{"/site"}
	}
	return &Gen{rng: rand.New(rand.NewSource(seed)), roots: append([]string(nil), roots...)}
}

// names is the XMark element vocabulary the step generator draws from.
var names = []string{
	"people", "person", "name", "emailaddress", "profile", "interest",
	"regions", "europe", "namerica", "item", "location", "quantity",
	"description", "text", "parlist", "listitem", "keyword", "bold",
	"open_auctions", "open_auction", "bidder", "increase", "initial",
	"current", "reserve", "closed_auctions", "closed_auction", "price",
	"buyer", "seller", "annotation", "categories", "category", "mailbox",
	"mail", "date", "itemref", "personref", "payment",
}

// hotPaths are known-productive XMark paths (relative to a /site root) so
// a good share of queries traverse real data instead of empty results.
var hotPaths = []string{
	"/people/person",
	"/people/person/name",
	"/people/person/profile",
	"//item",
	"//item/name",
	"/regions/europe/item",
	"/open_auctions/open_auction",
	"/open_auctions/open_auction/bidder",
	"//bidder/increase",
	"/closed_auctions/closed_auction",
	"//closed_auction/price",
	"/categories/category",
	"//keyword",
	"//mail/date",
}

var attrs = []string{"id", "category", "person", "open_auction", "item"}

func (g *Gen) pick(ss []string) string { return ss[g.rng.Intn(len(ss))] }

func (g *Gen) name() string { return g.pick(names) }

// step emits one random location step (leading slash included).
func (g *Gen) step() string {
	switch g.rng.Intn(8) {
	case 0:
		return "//" + g.name()
	case 1:
		return fmt.Sprintf("/%s[%d]", g.name(), 1+g.rng.Intn(3))
	case 2:
		return "/" + g.name() + "[@" + g.pick(attrs) + "]"
	case 3:
		return "/*"
	case 4:
		return fmt.Sprintf("/%s[last()]", g.name())
	default:
		return "/" + g.name()
	}
}

// Path emits a random absolute path over one of the roots.
func (g *Gen) Path() string {
	var sb strings.Builder
	sb.WriteString(g.pick(g.roots))
	if g.rng.Intn(2) == 0 {
		sb.WriteString(g.pick(hotPaths))
	}
	for n := g.rng.Intn(3); n > 0; n-- {
		sb.WriteString(g.step())
	}
	switch g.rng.Intn(6) {
	case 0:
		sb.WriteString("/text()")
	case 1:
		sb.WriteString("/@" + g.pick(attrs))
	}
	return sb.String()
}

// numPath emits a path whose atomized values are numeric-ish (for
// aggregates and ordering comparisons).
func (g *Gen) numPath() string {
	root := g.pick(g.roots)
	return root + g.pick([]string{
		"//bidder/increase",
		"//closed_auction/price",
		"//item/quantity",
		"//open_auction/current",
		"//open_auction/initial",
	})
}

// cond emits a where-clause predicate over the bound variable $v.
func (g *Gen) cond(v string) string {
	switch g.rng.Intn(7) {
	case 0:
		return fmt.Sprintf(`$%s/@%s = "%s%d"`, v, g.pick(attrs), g.pick([]string{"person", "item", "open_auction", "category"}), g.rng.Intn(12))
	case 1:
		return fmt.Sprintf("count($%s/%s) > %d", v, g.name(), g.rng.Intn(3))
	case 2:
		return fmt.Sprintf("exists($%s//%s)", v, g.name())
	case 3:
		return fmt.Sprintf("number($%s) > %d", v, g.rng.Intn(100))
	case 4:
		return fmt.Sprintf(`contains(string($%s/name), "%s")`, v, g.pick([]string{"a", "e", "x", "qu"}))
	case 5:
		return fmt.Sprintf("not(empty($%s/@%s))", v, g.pick(attrs))
	default:
		return fmt.Sprintf("$%s/%s or $%s/@%s", v, g.name(), v, g.pick(attrs))
	}
}

// ret emits a FLWOR return expression over $v.
func (g *Gen) ret(v string) string {
	switch g.rng.Intn(6) {
	case 0:
		return fmt.Sprintf("$%s/name/text()", v)
	case 1:
		return fmt.Sprintf("count($%s/*)", v)
	case 2:
		return fmt.Sprintf("<r>{$%s/@%s}</r>", v, g.pick(attrs))
	case 3:
		return fmt.Sprintf(`<r n="{count($%s//%s)}"/>`, v, g.name())
	case 4:
		return fmt.Sprintf("string-length(string($%s/name))", v)
	default:
		return "$" + v
	}
}

// BoundQuery is a generated query whose prolog declares external
// variables, plus the typed bindings to execute it with. A declared
// variable with a default may be deliberately absent from Binds (the
// engines must then agree on the default's value).
type BoundQuery struct {
	Query string
	Binds map[string][]xqt.Item
}

// boundVar is one generated external declaration: the prolog text of
// the declaration, the binding (nil = deliberately unbound), and a
// condition builder over the variable. use(ctx, pfx) instantiates the
// condition for a context: in a predicate ctx is "." and pfx is "",
// in a where clause over $x they are "$x" and "$x/".
type boundVar struct {
	decl string
	bind []xqt.Item
	use  func(ctx, pfx string) string
}

// extVar generates one external declaration for the variable named v,
// covering the type × default × bound/unbound axes of the prepared-
// query surface.
func (g *Gen) extVar(v string) boundVar {
	switch g.rng.Intn(6) {
	case 0: // int threshold
		return boundVar{
			decl: fmt.Sprintf("declare variable $%s external;", v),
			bind: []xqt.Item{xqt.Int(int64(g.rng.Intn(60)))},
			use: func(ctx, pfx string) string {
				return fmt.Sprintf("number(%s) > $%s", ctx, v)
			},
		}
	case 1: // float threshold with a default, bound half the time
		b := []xqt.Item{xqt.Double(float64(g.rng.Intn(400)) / 4)}
		if g.rng.Intn(2) == 0 {
			b = nil
		}
		return boundVar{
			decl: fmt.Sprintf("declare variable $%s external := %d.5;", v, g.rng.Intn(40)),
			bind: b,
			use: func(ctx, pfx string) string {
				return fmt.Sprintf("number(%s) <= $%s", ctx, v)
			},
		}
	case 2: // attribute string match
		attr := g.pick(attrs)
		return boundVar{
			decl: fmt.Sprintf("declare variable $%s external;", v),
			bind: []xqt.Item{xqt.Str(fmt.Sprintf("%s%d", g.pick([]string{"person", "item", "open_auction", "category"}), g.rng.Intn(12)))},
			use: func(ctx, pfx string) string {
				return fmt.Sprintf("%s@%s = $%s", pfx, attr, v)
			},
		}
	case 3: // string sequence binding: existential general comparison
		n := 2 + g.rng.Intn(3)
		seq := make([]xqt.Item, n)
		for i := range seq {
			seq[i] = xqt.Str(fmt.Sprintf("person%d", g.rng.Intn(20)))
		}
		return boundVar{
			decl: fmt.Sprintf("declare variable $%s external;", v),
			bind: seq,
			use: func(ctx, pfx string) string {
				return fmt.Sprintf("%s@id = $%s", pfx, v)
			},
		}
	case 4: // boolean switch
		return boundVar{
			decl: fmt.Sprintf("declare variable $%s external := true();", v),
			bind: []xqt.Item{xqt.Bool(g.rng.Intn(2) == 0)},
			use: func(ctx, pfx string) string {
				return "$" + v
			},
		}
	default: // int sequence: membership over child counts
		n := 1 + g.rng.Intn(3)
		seq := make([]xqt.Item, n)
		for i := range seq {
			seq[i] = xqt.Int(int64(g.rng.Intn(5)))
		}
		return boundVar{
			decl: fmt.Sprintf("declare variable $%s external;", v),
			bind: seq,
			use: func(ctx, pfx string) string {
				return fmt.Sprintf("count(%s*) = $%s", pfx, v)
			},
		}
	}
}

// BoundQuery emits one random parameterized query with 1–2 external
// variables and typed bindings, exercising the prepared-statement path
// of every engine.
func (g *Gen) BoundQuery() BoundQuery {
	v1 := g.extVar("v1")
	decls := v1.decl
	binds := map[string][]xqt.Item{}
	if v1.bind != nil {
		binds["v1"] = v1.bind
	}
	var body string
	switch g.rng.Intn(5) {
	case 0:
		body = fmt.Sprintf("%s[%s]", g.Path(), v1.use(".", ""))
	case 1:
		body = fmt.Sprintf("count(%s[%s])", g.Path(), v1.use(".", ""))
	case 2: // second variable in the return expression
		v2 := g.extVar("v2")
		decls += " " + v2.decl
		if v2.bind != nil {
			binds["v2"] = v2.bind
		}
		body = fmt.Sprintf(`for $x in %s where %s return <r v="{$v2}">{%s}</r>`,
			g.Path(), v1.use("$x", "$x/"), g.ret("x"))
	case 3: // external variable referenced inside a UDF body (prolog
		// variables must be in scope in function bodies on every engine)
		decls += fmt.Sprintf(" declare function local:flt($s) { $s[%s] };", v1.use(".", ""))
		body = fmt.Sprintf("count(local:flt(%s))", g.Path())
	default: // FLWOR with the variable in the where clause
		body = fmt.Sprintf("for $x in %s where %s return %s",
			g.Path(), v1.use("$x", "$x/"), g.ret("x"))
	}
	return BoundQuery{Query: decls + " " + body, Binds: binds}
}

// Query emits one random query.
func (g *Gen) Query() string {
	switch g.rng.Intn(12) {
	case 0:
		return fmt.Sprintf("count(%s)", g.Path())
	case 1:
		return g.Path()
	case 2: // plain FLWOR with optional where
		p := g.Path()
		if g.rng.Intn(2) == 0 {
			return fmt.Sprintf("for $x in %s where %s return %s", p, g.cond("x"), g.ret("x"))
		}
		return fmt.Sprintf("for $x in %s return %s", p, g.ret("x"))
	case 3: // ordered FLWOR
		return fmt.Sprintf("for $x in %s order by string($x/name) return %s", g.Path(), g.ret("x"))
	case 4: // aggregates over numeric data
		agg := g.pick([]string{"sum", "max", "min", "avg", "count"})
		return fmt.Sprintf("%s(for $x in %s return number($x))", agg, g.numPath())
	case 5: // nested counts
		return fmt.Sprintf("sum(for $x in %s return count($x/%s))", g.Path(), g.name())
	case 6: // join-shaped double FLWOR
		return fmt.Sprintf(`for $x in %s, $y in %s where $x/@id = $y/@%s return <p>{$x/@id}</p>`,
			g.Path(), g.Path(), g.pick([]string{"person", "open_auction", "item"}))
	case 7: // conditional
		return fmt.Sprintf("if (%s) then count(%s) else %d",
			fmt.Sprintf("exists(%s)", g.Path()), g.Path(), g.rng.Intn(10))
	case 8: // distinct-values over attributes
		return fmt.Sprintf("distinct-values(for $x in %s return string($x/@%s))", g.Path(), g.pick(attrs))
	case 9: // quantifier
		q := g.pick([]string{"some", "every"})
		return fmt.Sprintf("%s $x in %s satisfies %s", q, g.Path(), g.cond("x"))
	case 10: // union + general comparison
		return fmt.Sprintf("count(%s | %s)", g.Path(), g.Path())
	default: // positional / last() heavy path
		p := g.Path()
		return fmt.Sprintf("%s[%s]", p, g.pick([]string{"1", "2", "last()", "last() - 1", "position() = 2"}))
	}
}
