package ralg

import (
	"sort"
	"testing"

	"mxq/internal/store"
	"mxq/internal/xqt"
)

// Edge coverage for the ItemVec mixed-tag fallback paths that the
// kernel-agreement property test does not reach: zero-row columns, tag
// vectors that survive a Select (a gathered mixed column keeps its Tags
// vector even when the surviving rows share one kind — or none), and
// Sort stability over mixed numeric/string columns.

// mixedVec builds a deliberately mixed-tag column.
func mixedVec(items ...xqt.Item) ItemVec {
	v := NewItemVec(items)
	if v.Tags == nil && len(items) > 0 {
		// force the mixed representation even for uniform inputs
		tags := make([]xqt.Kind, v.Len())
		for i := range tags {
			tags[i] = v.KindAt(i)
		}
		v.Tags = tags
	}
	return v
}

// TestItemVecEmptyColumns: every operator that dispatches on column tags
// must handle zero-row columns — both the uniform empty vector (Tags
// nil) and the empty-but-mixed vector a Gather of a mixed column
// produces (Tags non-nil, length 0).
func TestItemVecEmptyColumns(t *testing.T) {
	pool := store.NewPool()
	mixed := mixedVec(xqt.Int(1), xqt.Str("a"), xqt.Double(2.5))
	emptyMixed := mixed.Gather(nil)
	if emptyMixed.Tags == nil || emptyMixed.Len() != 0 {
		t.Fatalf("gather(nil) of a mixed column: Tags=%v len=%d, want non-nil tags, 0 rows", emptyMixed.Tags, emptyMixed.Len())
	}
	for name, vec := range map[string]ItemVec{
		"uniform-empty": {},
		"mixed-empty":   emptyMixed,
	} {
		tab := &Table{N: 0}
		tab.AddCol("iter", Col{Kind: KInt})
		tab.AddCol("item", Col{Kind: KItem, Item: vec})
		tab.AddCol("b", Col{Kind: KItem, Item: vec})
		ex := NewExec(pool, nil)

		for _, op := range []FunOp{FunAdd, FunEq, FunConcat} {
			out, err := ex.execFun(&Fun{Op: op, Args: []string{"item", "b"}, Out: "o"}, tab)
			if err != nil || out.N != 0 {
				t.Fatalf("%s: fun(%d) over empty column: N=%v err=%v", name, op, out, err)
			}
		}
		for _, op := range []FunOp{FunStringOf, FunNumber, FunAtomize, FunNeg} {
			out, err := ex.execFun(&Fun{Op: op, Args: []string{"item"}, Out: "o"}, tab)
			if err != nil || out.N != 0 {
				t.Fatalf("%s: fun(%d) over empty column: N=%v err=%v", name, op, out, err)
			}
		}
		for _, op := range []AggOp{AggCount, AggSum, AggMin, AggMax, AggAvg} {
			a := &Aggr{Part: "iter", Op: op, Arg: "item", Out: "o"}
			out, err := ex.execAggr(a, tab)
			if err != nil || out.N != 0 {
				t.Fatalf("%s: aggr(%d) over empty column: N=%v err=%v", name, op, out, err)
			}
		}
		srt := ex.execSort(&Sort{By: []string{"item"}}, tab)
		if srt.N != 0 {
			t.Fatalf("%s: sort over empty column returned %d rows", name, srt.N)
		}
		d := NewExec(nil, nil).execDistinct(&Distinct{By: []string{"item"}}, tab)
		if d.N != 0 {
			t.Fatalf("%s: distinct over empty column returned %d rows", name, d.N)
		}
	}
}

// TestSelectKeepsTagVector: Select gathers rows out of a mixed column.
// The result keeps its Tags vector even when the surviving rows are
// uniform (re-detecting uniformity is not worth a scan), and the per-row
// fallback paths must produce results identical to what the typed kernel
// computes on the equivalent uniform column.
func TestSelectKeepsTagVector(t *testing.T) {
	pool := store.NewPool()
	mixed := mixedVec(xqt.Int(1), xqt.Str("x"), xqt.Int(3), xqt.Str("y"), xqt.Int(5))
	cond := []bool{true, false, true, false, true} // keep the ints only
	tab := &Table{N: 5}
	tab.AddCol("item", Col{Kind: KItem, Item: mixed})
	tab.AddCol("keep", Col{Kind: KBool, Bool: cond})
	ex := NewExec(pool, nil)
	sel := ex.execSelect(&Select{Cond: "keep"}, tab)
	if sel.N != 3 {
		t.Fatalf("select kept %d rows, want 3", sel.N)
	}
	got := sel.ItemVec("item")
	if got.Tags == nil {
		t.Fatal("gathered mixed column lost its tag vector")
	}
	if _, uniform := got.Uniform(); uniform {
		t.Fatal("gathered mixed column reports uniform")
	}
	// fallback vs kernel agreement on the gathered rows
	sel.AddCol("two", Col{Kind: KItem, Item: constItemVec(xqt.Int(2), 3)})
	viaFallback, err := ex.execFun(&Fun{Op: FunMul, Args: []string{"item", "two"}, Out: "o"}, sel)
	if err != nil {
		t.Fatal(err)
	}
	uni := NewItemVec([]xqt.Item{xqt.Int(1), xqt.Int(3), xqt.Int(5)})
	utab := &Table{N: 3}
	utab.AddCol("item", Col{Kind: KItem, Item: uni})
	utab.AddCol("two", Col{Kind: KItem, Item: constItemVec(xqt.Int(2), 3)})
	viaKernel, err := ex.execFun(&Fun{Op: FunMul, Args: []string{"item", "two"}, Out: "o"}, utab)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if viaFallback.Col("o").Item.At(i) != viaKernel.Col("o").Item.At(i) {
			t.Fatalf("row %d: fallback %+v != kernel %+v", i,
				viaFallback.Col("o").Item.At(i), viaKernel.Col("o").Item.At(i))
		}
	}
}

// TestSortStabilityMixedColumn: Sort over a mixed numeric/string item
// column must order rows by xqt.SortLess and keep the input order of
// rows whose keys compare equal (1 vs 1.0, duplicate strings) — checked
// against an independent stable reference sort.
func TestSortStabilityMixedColumn(t *testing.T) {
	pool := store.NewPool()
	items := []xqt.Item{
		xqt.Str("b"), xqt.Int(2), xqt.Double(1.0), xqt.Str("a"),
		xqt.Int(1), xqt.Str("a"), xqt.Double(2.0), xqt.Int(2),
		xqt.Str("b"), xqt.Double(1.5),
	}
	n := len(items)
	seq := make([]int64, n)
	for i := range seq {
		seq[i] = int64(i)
	}
	tab := &Table{N: n}
	tab.AddCol("item", Col{Kind: KItem, Item: mixedVec(items...)})
	tab.AddCol("seq", Col{Kind: KInt, Int: seq})
	ex := NewExec(pool, nil)
	out := ex.execSort(&Sort{By: []string{"item"}}, tab)

	ref := make([]int, n)
	for i := range ref {
		ref[i] = i
	}
	sort.SliceStable(ref, func(a, b int) bool { return xqt.SortLess(items[ref[a]], items[ref[b]]) })
	for i := 0; i < n; i++ {
		if out.Ints("seq")[i] != int64(ref[i]) {
			t.Fatalf("row %d: got input row %d, want %d (stability violated)\ngot:  %v\nwant: %v",
				i, out.Ints("seq")[i], ref[i], out.Ints("seq"), ref)
		}
	}
	// the sorted column still reconstructs the right items
	for i := 0; i < n; i++ {
		if out.ItemVec("item").At(i) != items[ref[i]] {
			t.Fatalf("row %d: item %+v, want %+v", i, out.ItemVec("item").At(i), items[ref[i]])
		}
	}
}
