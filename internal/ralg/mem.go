package ralg

import (
	"sync/atomic"

	"mxq/internal/xqerr"
)

// MemBudget is a per-execution memory budget: atomic byte accounting
// over every allocation that materializes rows, shared by the executor
// and all of its fork-join workers. It is advisory accounting, not an
// allocator — operators Charge estimated bytes as they materialize
// output (amortized, at the same bitmask intervals as the cancellation
// polls), and once the running total passes the limit the budget
// latches an exceeded flag that Exec.stopRequested observes exactly
// like a context cancellation: workers drain at their next poll,
// partial tables are discarded without memoizing, and Run surfaces the
// typed resource-exhausted error.
//
// A nil *MemBudget is valid everywhere and means "unlimited": every
// method is nil-safe, so call sites never branch on configuration.
type MemBudget struct {
	limit int64
	used  atomic.Int64
	high  atomic.Int64
	over  atomic.Bool
}

// NewMemBudget returns a budget of limit bytes; limit <= 0 returns nil
// (unlimited).
func NewMemBudget(limit int64) *MemBudget {
	if limit <= 0 {
		return nil
	}
	return &MemBudget{limit: limit}
}

// Charge accounts n bytes and reports whether the execution may
// continue. Once over budget the flag stays latched — later charges
// keep returning false, so an operator that ignores one refusal is
// still stopped at the next poll. Charge never blocks.
func (m *MemBudget) Charge(n int64) bool {
	if m == nil {
		return true
	}
	used := m.used.Add(n)
	for {
		h := m.high.Load()
		if used <= h || m.high.CompareAndSwap(h, used) {
			break
		}
	}
	if used > m.limit {
		m.over.Store(true)
	}
	return !m.over.Load()
}

// Exceeded reports whether the budget has been exhausted.
func (m *MemBudget) Exceeded() bool { return m != nil && m.over.Load() }

// Err returns the typed resource-exhausted error when the budget is
// exceeded, nil otherwise.
func (m *MemBudget) Err() error {
	if !m.Exceeded() {
		return nil
	}
	return xqerr.Newf(xqerr.CodeResourceLimit,
		"query memory budget of %d bytes exceeded (%d bytes charged)", m.limit, m.Used())
}

// Used returns the bytes currently charged.
func (m *MemBudget) Used() int64 {
	if m == nil {
		return 0
	}
	return m.used.Load()
}

// HighWater returns the maximum bytes ever charged.
func (m *MemBudget) HighWater() int64 {
	if m == nil {
		return 0
	}
	return m.high.Load()
}

// Limit returns the budget in bytes (0 = unlimited).
func (m *MemBudget) Limit() int64 {
	if m == nil {
		return 0
	}
	return m.limit
}
