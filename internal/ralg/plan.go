package ralg

import (
	"fmt"

	"mxq/internal/scj"
	"mxq/internal/xqt"
)

// Plan is a node of a physical relational algebra plan DAG. Plans are
// produced by the XQuery compiler (internal/xqc), rewritten by the
// peephole optimizer (internal/opt), and evaluated by Exec. Shared
// sub-plans are evaluated once (intermediate results are materialized and
// re-used, as in MonetDB).
type Plan interface {
	// Inputs returns the child plans.
	Inputs() []Plan
	// SetInput replaces the i-th child (used by the optimizer).
	SetInput(i int, p Plan)
	// Name returns the operator name for plan dumps and statistics.
	Name() string
}

type nullary struct{}

func (nullary) Inputs() []Plan     { return nil }
func (nullary) SetInput(int, Plan) { panic("ralg: nullary operator has no inputs") }

type unary struct{ In Plan }

func (u *unary) Inputs() []Plan { return []Plan{u.In} }
func (u *unary) SetInput(i int, p Plan) {
	if i != 0 {
		panic("ralg: unary operator input index")
	}
	u.In = p
}

type binary struct{ L, R Plan }

func (b *binary) Inputs() []Plan { return []Plan{b.L, b.R} }
func (b *binary) SetInput(i int, p Plan) {
	switch i {
	case 0:
		b.L = p
	case 1:
		b.R = p
	default:
		panic("ralg: binary operator input index")
	}
}

// ColRef maps a source column to a (possibly renamed) destination column.
type ColRef struct{ Src, Dst string }

// Refs is a convenience constructor: Refs("a", "b->c") produces
// [{a,a},{b,c}].
func Refs(specs ...string) []ColRef {
	out := make([]ColRef, len(specs))
	for i, s := range specs {
		for j := 0; j+1 < len(s); j++ {
			if s[j] == '-' && s[j+1] == '>' {
				out[i] = ColRef{Src: s[:j], Dst: s[j+2:]}
				break
			}
		}
		if out[i].Src == "" {
			out[i] = ColRef{Src: s, Dst: s}
		}
	}
	return out
}

// Lit is a literal table leaf.
type Lit struct {
	nullary
	Tab *Table
}

// Name implements Plan.
func (*Lit) Name() string { return "lit" }

// GrpSpec declares one group ordering of a LitDecl table: rows with
// equal Group column values are ordered on Cols — the paper's
// grpord([c…],g) property; groups need not be consecutive.
type GrpSpec struct {
	Cols  []string
	Group string
}

// LitDecl is a literal table leaf carrying declared §4.1 column
// properties. The optimizer's inference takes the declarations at face
// value and the static plan verifier (internal/planck) checks every
// declaration against the table's actual rows, so a LitDecl can stand
// in for an arbitrary subplan whose inferred properties are known —
// which is what translation validation (internal/optcheck) needs when
// it substitutes synthesized micro-inputs for the inputs of a rewrite
// witness: a plain Lit would lose ordering claims over item columns.
type LitDecl struct {
	nullary
	Tab *Table
	// Ords are declared lexicographic orderings of the whole table.
	Ords [][]string
	// Grps are declared group orderings.
	Grps []GrpSpec
	// Dense, Key and Const name columns holding the sequence 1..N, a
	// duplicate-free column, and a single constant value respectively.
	Dense []string
	Key   []string
	Const []string
}

// Name implements Plan.
func (*LitDecl) Name() string { return "litdecl" }

// DocRoot produces the single-row table (pos=1, item=root node) of a
// loaded document.
type DocRoot struct {
	nullary
	Doc string
}

// Name implements Plan.
func (*DocRoot) Name() string { return "docroot" }

// ContextRoot produces the single-row table (pos=1, item=root node) of
// the context document of absolute paths. Unlike DocRoot, the document
// is not named in the plan: it is resolved from Exec.ContextDoc at
// execution time, so one cached plan serves any context document (and
// SetContextDocument can never be shadowed by a stale cache entry).
type ContextRoot struct {
	nullary
}

// Name implements Plan.
func (*ContextRoot) Name() string { return "ctxroot" }

// ParamTable is the parameterized leaf of a prepared query: it produces
// the (pos, item) table of the external variable binding named Name,
// resolved from Exec.Bindings at execution time. The compiler crosses
// it with the loop relation of the referencing scope (a single
// iteration at the query root, replicated under loop-lifting), so one
// physical plan serves every binding.
type ParamTable struct {
	nullary
	Var string
}

// Name implements Plan.
func (p *ParamTable) Name() string { return "param($" + p.Var + ")" }

// CollectionRoot produces the (pos, item) table of a sharded collection's
// document root nodes, in collection document order: one row per
// document, pos = 1..N, items ordered by (shard container id, pre). Each
// shard contributes a contiguous run of context rows, which downstream
// Step operators evaluate per shard under the worker pool.
type CollectionRoot struct {
	nullary
	Coll string
}

// Name implements Plan.
func (*CollectionRoot) Name() string { return "collroot" }

// Fail raises a dynamic XQuery error when executed. The compiler plants
// it for expressions whose static form is known to be unsupported — e.g.
// a doc() argument that is not constant-foldable — turning what was a
// compile-time rejection into the runtime error the spec prescribes.
type Fail struct {
	nullary
	// Code is the W3C error code the failure raises; Msg is the message
	// text (without the "xquery error" prefix).
	Code string
	Msg  string
}

// Name implements Plan.
func (*Fail) Name() string { return "fail" }

// Project returns the listed columns, renamed per the refs.
type Project struct {
	unary
	Cols []ColRef
}

// Name implements Plan.
func (*Project) Name() string { return "project" }

// NewProject constructs a projection.
func NewProject(in Plan, cols ...string) *Project {
	return &Project{unary: unary{In: in}, Cols: Refs(cols...)}
}

// Attach appends a constant column (the paper's const-property columns).
type Attach struct {
	unary
	Col  string
	Kind ColKind
	I    int64
	B    bool
	It   xqt.Item
}

// Name implements Plan.
func (*Attach) Name() string { return "attach" }

// AttachInt attaches a constant integer column.
func AttachInt(in Plan, col string, v int64) *Attach {
	return &Attach{unary: unary{In: in}, Col: col, Kind: KInt, I: v}
}

// AttachItem attaches a constant item column.
func AttachItem(in Plan, col string, it xqt.Item) *Attach {
	return &Attach{unary: unary{In: in}, Col: col, Kind: KItem, It: it}
}

// Select keeps the rows whose boolean column Cond is true.
type Select struct {
	unary
	Cond string
	// Neg selects the complement (the paper's σ¬).
	Neg bool
}

// Name implements Plan.
func (*Select) Name() string { return "select" }

// FunOp enumerates row-wise functions.
type FunOp uint8

// Row-wise functions over item columns (unless noted otherwise).
const (
	FunAdd FunOp = iota
	FunSub
	FunMul
	FunDiv
	FunIDiv
	FunMod
	FunNeg
	FunEq // value comparison -> bool
	FunNe
	FunLt
	FunLe
	FunGt
	FunGe
	FunAnd // bool x bool -> bool
	FunOr
	FunNot
	FunAtomize    // node -> untyped atomic (string value); atoms pass through
	FunStringOf   // atom/node -> xs:string
	FunNumber     // -> xs:double
	FunContains   // string x string -> bool
	FunStartsWith // string x string -> bool
	FunConcat     // string x string -> string
	FunNodeBefore // node << node -> bool
	FunNodeAfter  // node >> node -> bool
	FunNodeIs     // node is node -> bool
	FunNameOf     // node -> element/attribute name as string
	FunIsNumeric  // item -> bool (used by dynamic positional predicates)
	FunEbvAtom    // singleton atom -> effective boolean value
	FunFloor      // -> xs:double
	FunCeil       // -> xs:double
	FunRound      // -> xs:double (halves round toward positive infinity)
	FunStrLen     // -> xs:integer (characters, not bytes)
	FunLocalName  // node -> local part of the name (prefix stripped)
)

// Fun computes Out = Op(Args...) row-wise.
type Fun struct {
	unary
	Op   FunOp
	Args []string
	Out  string
}

// Name implements Plan.
func (f *Fun) Name() string { return fmt.Sprintf("fun(%d)", f.Op) }

// NewFun constructs a row-wise function node.
func NewFun(in Plan, op FunOp, out string, args ...string) *Fun {
	return &Fun{unary: unary{In: in}, Op: op, Args: args, Out: out}
}

// RankMode selects the implementation of RowNum, set by the optimizer.
type RankMode uint8

// RowNum implementations.
const (
	// RankSort sorts a row permutation to assign ranks (the default).
	RankSort RankMode = iota
	// RankStream numbers rows in arrival order per group with a hash
	// table of counters; valid when grpord(OrderBy, Part) holds (§4.1).
	RankStream
	// RankSeq assigns 1..N in arrival order; valid when the input is
	// already sorted on (Part, OrderBy...).
	RankSeq
)

// RowNum is the ρ operator: it extends the input with a column Out that
// numbers tuples 1.. within each Part group (the whole table if Part is
// empty) respecting the order given by OrderBy. It embodies SQL:1999's
// DENSE_RANK() OVER (PARTITION BY part ORDER BY orderBy...) for the
// key-unique inputs of our plans. Row order is unchanged.
type RowNum struct {
	unary
	Out     string
	OrderBy []string
	Desc    []bool
	Part    string // "" = single group
	Mode    RankMode
}

// Name implements Plan.
func (*RowNum) Name() string { return "rownum" }

// NewRowNum constructs a ρ operator.
func NewRowNum(in Plan, out string, orderBy []string, part string) *RowNum {
	return &RowNum{unary: unary{In: in}, Out: out, OrderBy: orderBy, Part: part}
}

// Sort orders the table by the given columns (stable). RefinePrefix is
// set by the optimizer when the input is known to be sorted on a prefix
// of By: only runs of equal prefix values are re-sorted.
type Sort struct {
	unary
	By           []string
	Desc         []bool
	RefinePrefix int
}

// Name implements Plan.
func (*Sort) Name() string { return "sort" }

// NewSort constructs a sort.
func NewSort(in Plan, by ...string) *Sort { return &Sort{unary: unary{In: in}, By: by} }

// HashJoin is an equi-join on integer key columns. Output rows are in
// left-major order (the left order is preserved; ties enumerate matching
// right rows in right order). Pos/PosLeft are set by the optimizer when a
// dense ascending key column allows positional lookup instead of hashing
// (the paper's positional join on autoincrement keys): Pos looks rows up
// in the right input; PosLeft probes the left input positionally, which
// preserves left-major order when the left key is unique and the right
// input is sorted on its key.
type HashJoin struct {
	binary
	LKey, RKey string
	LCols      []ColRef
	RCols      []ColRef
	Pos        bool
	PosLeft    bool
}

// Name implements Plan.
func (j *HashJoin) Name() string {
	if j.Pos || j.PosLeft {
		return "posjoin"
	}
	return "hashjoin"
}

// NewHashJoin constructs an equi-join.
func NewHashJoin(l, r Plan, lkey, rkey string, lcols, rcols []ColRef) *HashJoin {
	return &HashJoin{binary: binary{L: l, R: r}, LKey: lkey, RKey: rkey, LCols: lcols, RCols: rcols}
}

// ThetaStrategy selects the physical algorithm of an ExistJoin with a
// non-equality predicate.
type ThetaStrategy uint8

// Theta-join strategies (paper §4.2).
const (
	// ThetaAuto runs a small join sample at run time to estimate the
	// hit rate, then picks nested-loop or index-lookup ("choose-plan").
	ThetaAuto ThetaStrategy = iota
	// ThetaNestedLoop always uses the nested-loop join.
	ThetaNestedLoop
	// ThetaIndex always builds the transient sorted index.
	ThetaIndex
)

// ExistJoin implements XQuery's general comparisons in join position with
// existential semantics (§4.2): it joins (iter1, item1) with
// (iter2, item2) on item1 Cmp item2 and emits the distinct
// (iter1, iter2) pairs, in [iter1, iter2] order.
type ExistJoin struct {
	binary
	Cmp        xqt.CmpOp
	LIter      string
	LItem      string
	RIter      string
	RItem      string
	Out1, Out2 string
	Strategy   ThetaStrategy
}

// Name implements Plan.
func (*ExistJoin) Name() string { return "existjoin" }

// Cross is the Cartesian product, left-major. Column sets are merged; the
// caller renames via Project to avoid clashes.
type Cross struct {
	binary
	LCols []ColRef
	RCols []ColRef
}

// Name implements Plan.
func (*Cross) Name() string { return "cross" }

// Union is disjoint union (append) of inputs with identical schemas.
type Union struct {
	Ins []Plan
}

// Name implements Plan.
func (*Union) Name() string { return "union" }

// Inputs implements Plan.
func (u *Union) Inputs() []Plan { return u.Ins }

// SetInput implements Plan.
func (u *Union) SetInput(i int, p Plan) { u.Ins[i] = p }

// Diff is the anti-semijoin: rows of L whose integer LKey does not occur
// in R's RKey column (the paper's \ operator as used for loop
// densification).
type Diff struct {
	binary
	LKey, RKey string
}

// Name implements Plan.
func (*Diff) Name() string { return "diff" }

// Distinct removes duplicate rows with respect to the By columns, keeping
// the first occurrence (input order preserved).
type Distinct struct {
	unary
	By []string
	// Merge is set by the optimizer when the input is sorted on By,
	// allowing consecutive-duplicate elimination.
	Merge bool
}

// Name implements Plan.
func (*Distinct) Name() string { return "distinct" }

// AggOp enumerates grouped aggregation functions.
type AggOp uint8

// Aggregation functions.
const (
	AggCount AggOp = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

// Aggr groups the input by the integer Part column and computes one
// aggregate row (part, out) per group, in group-first-appearance order.
type Aggr struct {
	unary
	Part string
	Op   AggOp
	Arg  string // ignored for AggCount
	Out  string
}

// Name implements Plan.
func (*Aggr) Name() string { return "aggr" }

// Step evaluates an XPath location step with (loop-lifted) staircase join.
// The input must be sorted so that node items appear in document order
// with iterations clustered per node — i.e. sorted on (ItemCol, IterCol).
// The output (OutIter, OutItem) is likewise in (document order, iter)
// order and carries the grpord([item], iter) property.
type Step struct {
	unary
	Axis    scj.Axis
	Test    scj.Test
	Variant scj.Variant
	IterCol string
	ItemCol string
}

// Name implements Plan.
func (s *Step) Name() string { return "step(" + s.Axis.String() + ")" }

// AttrStep evaluates the attribute axis: for each (iter, element) input
// row it emits (iter, attribute-node) rows for the matching attributes.
// Ordering mirrors Step.
type AttrStep struct {
	unary
	NameTest string // "" = all attributes
	IterCol  string
	ItemCol  string
}

// Name implements Plan.
func (*AttrStep) Name() string { return "attrstep" }

// AttrSpec is one attribute of a constructed element: its name and the
// plans computing its value per iteration. The items of each part are
// joined with single spaces; the parts are then concatenated directly
// (mirroring XQuery attribute value templates like n="a{$x}b").
type AttrSpec struct {
	Attr  string
	Parts []Plan
}

// ElemConstruct builds one new element node per iteration of Loop (input
// 0) in the query's transient container. Content (input 1) supplies the
// iter|pos|item content sequence (sorted on [iter,pos]); additional
// inputs 2.. are the attribute value part plans, in order. Output is
// (iter, item).
type ElemConstruct struct {
	Loop    Plan
	Content Plan
	Attrs   []AttrSpec
	Tag     string
}

// Name implements Plan.
func (*ElemConstruct) Name() string { return "elem" }

// Inputs implements Plan.
func (e *ElemConstruct) Inputs() []Plan {
	in := []Plan{e.Loop, e.Content}
	for _, a := range e.Attrs {
		in = append(in, a.Parts...)
	}
	return in
}

// SetInput implements Plan.
func (e *ElemConstruct) SetInput(i int, p Plan) {
	switch {
	case i == 0:
		e.Loop = p
	case i == 1:
		e.Content = p
	default:
		i -= 2
		for a := range e.Attrs {
			if i < len(e.Attrs[a].Parts) {
				e.Attrs[a].Parts[i] = p
				return
			}
			i -= len(e.Attrs[a].Parts)
		}
		panic("ralg: ElemConstruct input index out of range")
	}
}

// ColToItem converts an integer or boolean column into an item column
// (xs:integer / xs:boolean items).
type ColToItem struct {
	unary
	Src, Dst string
}

// Name implements Plan.
func (*ColToItem) Name() string { return "coltoitem" }

// RangeGen expands each input row into the integer sequence Lo..Hi (item
// columns holding integers): output columns are (iter, pos, item), sorted
// by the input's iter order.
type RangeGen struct {
	unary
	Iter, Lo, Hi string
}

// Name implements Plan.
func (*RangeGen) Name() string { return "rangegen" }

// CoverCheck raises XQuery's FORG0004/FORG0005 when some iteration of
// Loop (input 0) has no row in In (input 1): fn:one-or-more and
// fn:exactly-one demand at least one item per call. It passes In through.
type CoverCheck struct {
	binary   // L = loop, R = in
	LoopIter string
	Part     string
	Fn       string
}

// Name implements Plan.
func (*CoverCheck) Name() string { return "covercheck" }

// EBV computes the effective boolean value of each iteration's group of
// (Part, Item) rows: present nodes make the group true; a singleton atom
// contributes its boolean value; multi-item atomic groups raise XQuery's
// FORG0006. Output is (Part, Out bool) for the groups present in the
// input (absent groups are false and densified by the compiler).
type EBV struct {
	unary
	Part string
	Item string
	Out  string
}

// Name implements Plan.
func (*EBV) Name() string { return "ebv" }

// CardCheck validates the cardinality of each iteration group, raising
// XQuery's dynamic errors for fn:zero-or-one, fn:exactly-one and
// fn:one-or-more. It passes its input through unchanged. Exactly-one's
// "at least one" half is checked by the compiler against the loop
// relation.
type CardCheck struct {
	unary
	Part string
	// AtMostOne rejects groups with more than one row.
	AtMostOne bool
	// Fn names the builtin for error messages.
	Fn string
}

// Name implements Plan.
func (*CardCheck) Name() string { return "cardcheck" }

// Walk visits the plan DAG once per node in topological (inputs-first)
// order.
func Walk(p Plan, visit func(Plan)) {
	seen := make(map[Plan]bool)
	var rec func(Plan)
	rec = func(n Plan) {
		if n == nil || seen[n] {
			return
		}
		seen[n] = true
		for _, in := range n.Inputs() {
			rec(in)
		}
		visit(n)
	}
	rec(p)
}

// CountOps returns the number of distinct operators in the plan DAG and
// the number of join operators among them (used for the paper's §4.1 plan
// statistics: "86 relational algebra operators on average, of which 9 are
// joins").
func CountOps(p Plan) (ops, joins int) {
	Walk(p, func(n Plan) {
		ops++
		switch n.(type) {
		case *HashJoin, *ExistJoin, *Cross, *Diff:
			joins++
		}
	})
	return ops, joins
}
