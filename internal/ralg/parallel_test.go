package ralg

import (
	"fmt"
	"math/rand"
	"testing"

	"mxq/internal/store"
	"mxq/internal/xqt"
)

func TestSplitRows(t *testing.T) {
	cases := []struct {
		n, chunks int
		want      [][2]int
	}{
		{0, 4, nil},
		{5, 1, [][2]int{{0, 5}}},
		{5, 2, [][2]int{{0, 2}, {2, 5}}},
		{6, 3, [][2]int{{0, 2}, {2, 4}, {4, 6}}},
		{3, 8, [][2]int{{0, 1}, {1, 2}, {2, 3}}},
	}
	for _, tc := range cases {
		got := splitRows(tc.n, tc.chunks)
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("splitRows(%d, %d) = %v, want %v", tc.n, tc.chunks, got, tc.want)
		}
	}
}

func TestSplitRuns(t *testing.T) {
	cut := func(part []int64) func(int) bool {
		return func(i int) bool { return part[i] != part[i-1] }
	}
	cases := []struct {
		name   string
		part   []int64
		chunks int
		want   [][2]int
	}{
		{"empty input", nil, 4, nil},
		{"single iter collapses to one chunk", []int64{1, 1, 1, 1, 1, 1}, 3, [][2]int{{0, 6}}},
		{"boundary exactly on chunk edge", []int64{1, 1, 2, 2}, 2, [][2]int{{0, 2}, {2, 4}}},
		{"boundary pushed past chunk edge", []int64{1, 1, 1, 2, 2, 3}, 3, [][2]int{{0, 3}, {3, 5}, {5, 6}}},
		// cuts only move forward: a long run starting before the first
		// natural cut swallows the rest into one chunk
		{"long run swallows following chunks", []int64{1, 2, 2, 2, 2, 2}, 3, [][2]int{{0, 6}}},
	}
	for _, tc := range cases {
		got := splitRuns(len(tc.part), tc.chunks, cut(tc.part))
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("%s: splitRuns = %v, want %v", tc.name, got, tc.want)
		}
		// every chunk must start at a run boundary and cover all rows
		for i, r := range got {
			if r[0] > 0 && tc.part[r[0]] == tc.part[r[0]-1] {
				t.Errorf("%s: chunk %d starts mid-run at %d", tc.name, i, r[0])
			}
		}
	}
}

func TestParOptionsThreshold(t *testing.T) {
	cases := []struct {
		p    ParOptions
		n    int
		want bool
	}{
		{ParOptions{Workers: 4, Threshold: 10}, 10, true},
		{ParOptions{Workers: 4, Threshold: 10}, 9, false}, // below threshold: serial fallback
		{ParOptions{Workers: 1, Threshold: 1}, 1000, false},
		{ParOptions{}, 1000, false},
		{ParOptions{Workers: 4}, 1000, false}, // zero threshold disables
	}
	for _, tc := range cases {
		if got := tc.p.on(tc.n); got != tc.want {
			t.Errorf("%+v.on(%d) = %v, want %v", tc.p, tc.n, got, tc.want)
		}
	}
}

// tablesEqual compares two tables column by column (schema, kinds and
// payloads; items by value).
func tablesEqual(a, b *Table) bool {
	if a.N != b.N || len(a.names) != len(b.names) {
		return false
	}
	for i, name := range a.names {
		if b.names[i] != name {
			return false
		}
		ca, cb := &a.cols[i], &b.cols[i]
		if ca.Kind != cb.Kind {
			return false
		}
		for r := 0; r < a.N; r++ {
			switch ca.Kind {
			case KInt:
				if ca.Int[r] != cb.Int[r] {
					return false
				}
			case KBool:
				if ca.Bool[r] != cb.Bool[r] {
					return false
				}
			default:
				if ca.Item.At(r) != cb.Item.At(r) {
					return false
				}
			}
		}
	}
	return true
}

// runWith evaluates p with the given parallel options on a fresh pool.
func runWith(t *testing.T, p Plan, par ParOptions) *Table {
	t.Helper()
	pool := store.NewPool()
	tr := store.NewContainer("")
	pool.Register(tr)
	ex := NewExec(pool, tr)
	ex.Par = par
	tab, err := ex.Run(p)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return tab
}

// TestParallelOperatorsMatchSerial runs every parallelized operator over
// randomized inputs with the parallel machinery forced on (threshold 1)
// and asserts byte-identical output to serial execution.
func TestParallelOperatorsMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	par := ParOptions{Workers: 4, Threshold: 1}

	const n = 257 // odd size so chunk edges land mid-run
	iters := make([]int64, n)
	vals := make([]int64, n)
	items := make([]xqt.Item, n)
	bools := make([]bool, n)
	cur := int64(1)
	for i := 0; i < n; i++ {
		if rng.Intn(3) == 0 {
			cur++
		}
		iters[i] = cur
		vals[i] = int64(rng.Intn(50))
		items[i] = xqt.Int(int64(rng.Intn(40)))
		bools[i] = rng.Intn(2) == 0
	}
	tab := NewTable([]string{"iter", "v", "item", "b"}, []ColKind{KInt, KInt, KItem, KBool})
	tab.N = n
	tab.Col("iter").Int = iters
	tab.Col("v").Int = vals
	tab.Col("item").Item = NewItemVec(items)
	tab.Col("b").Bool = bools
	in := &Lit{Tab: tab}

	rtab := NewTable([]string{"rk", "rv"}, []ColKind{KInt, KInt})
	rtab.N = 64
	for j := 0; j < 64; j++ {
		rtab.Col("rk").Int = append(rtab.Col("rk").Int, int64(j/2))
		rtab.Col("rv").Int = append(rtab.Col("rv").Int, int64(j)*10)
	}
	rin := &Lit{Tab: rtab}

	plans := map[string]Plan{
		"select":          &Select{unary: unary{In: in}, Cond: "b"},
		"select-neg":      &Select{unary: unary{In: in}, Cond: "b", Neg: true},
		"rownum-stream":   &RowNum{unary: unary{In: in}, Out: "r", Part: "iter", Mode: RankStream},
		"rownum-seq":      &RowNum{unary: unary{In: in}, Out: "r", Part: "iter", Mode: RankSeq},
		"rownum-global":   &RowNum{unary: unary{In: in}, Out: "r", Mode: RankStream},
		"rownum-sort":     &RowNum{unary: unary{In: in}, Out: "r", OrderBy: []string{"v"}, Part: "iter", Mode: RankSort},
		"aggr-count":      &Aggr{unary: unary{In: in}, Part: "iter", Op: AggCount, Out: "c"},
		"aggr-sum":        &Aggr{unary: unary{In: in}, Part: "iter", Op: AggSum, Arg: "item", Out: "s"},
		"aggr-min":        &Aggr{unary: unary{In: in}, Part: "iter", Op: AggMin, Arg: "item", Out: "m"},
		"aggr-max":        &Aggr{unary: unary{In: in}, Part: "iter", Op: AggMax, Arg: "item", Out: "m"},
		"aggr-avg":        &Aggr{unary: unary{In: in}, Part: "iter", Op: AggAvg, Arg: "item", Out: "a"},
		"fun-add":         NewFun(in, FunAdd, "o", "item", "item"),
		"fun-eq":          NewFun(in, FunEq, "o", "v", "item"),
		"fun-not":         NewFun(in, FunNot, "o", "b"),
		"fun-concat":      NewFun(in, FunConcat, "o", "item", "item"),
		"hashjoin":        NewHashJoin(in, rin, "v", "rk", Refs("iter", "v"), Refs("rv")),
		"hashjoin-posl":   &HashJoin{binary: binary{L: in, R: rtab2(rin)}, LKey: "iter", RKey: "rk2", LCols: Refs("v"), RCols: Refs("rv2"), PosLeft: true},
		"sort-then-merge": &Distinct{unary: unary{In: &Sort{unary: unary{In: in}, By: []string{"v"}}}, By: []string{"v"}, Merge: true},
	}
	for name, p := range plans {
		serial := runWith(t, p, ParOptions{})
		parallel := runWith(t, p, par)
		if !tablesEqual(serial, parallel) {
			t.Errorf("%s: parallel output differs from serial\nserial:\n%s\nparallel:\n%s",
				name, serial, parallel)
		}
	}
}

// rtab2 wraps a positional-join right side whose key is dense ascending.
func rtab2(in Plan) Plan {
	tab := NewTable([]string{"rk2", "rv2"}, []ColKind{KInt, KInt})
	tab.N = 32
	for j := 0; j < 32; j++ {
		tab.Col("rk2").Int = append(tab.Col("rk2").Int, int64(j+1))
		tab.Col("rv2").Int = append(tab.Col("rv2").Int, int64(j)*7)
	}
	return &Lit{Tab: tab}
}

// Unclustered part columns must fall back to the serial hash-counter and
// hash-aggregation paths and still agree.
func TestParallelUnclusteredFallback(t *testing.T) {
	par := ParOptions{Workers: 4, Threshold: 1}
	tab := NewTable([]string{"part", "item"}, []ColKind{KInt, KItem})
	parts := []int64{3, 1, 3, 2, 1, 3, 2, 1, 3, 1}
	for i, p := range parts {
		tab.Col("part").Int = append(tab.Col("part").Int, p)
		tab.Col("item").Item.Append(xqt.Int(int64(i)))
	}
	tab.N = len(parts)
	in := &Lit{Tab: tab}
	for name, p := range map[string]Plan{
		"rownum-stream": &RowNum{unary: unary{In: in}, Out: "r", Part: "part", Mode: RankStream},
		"aggr-sum":      &Aggr{unary: unary{In: in}, Part: "part", Op: AggSum, Arg: "item", Out: "s"},
	} {
		serial := runWith(t, p, ParOptions{})
		parallel := runWith(t, p, par)
		if !tablesEqual(serial, parallel) {
			t.Errorf("%s: unclustered parallel output differs\nserial:\n%s\nparallel:\n%s", name, serial, parallel)
		}
	}
}

func TestParallelAttrStep(t *testing.T) {
	b := store.NewBuilder("a.xml")
	b.StartDoc()
	b.StartElem("root")
	for i := 0; i < 40; i++ {
		b.StartElem("e")
		b.Attr("id", fmt.Sprintf("v%d", i))
		b.Attr("k", fmt.Sprintf("%d", i%3))
		b.End()
	}
	b.End()
	b.End()
	c, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	pool := store.NewPool()
	pool.Register(c)
	tab := NewTable([]string{"iter", "item"}, []ColKind{KInt, KItem})
	// every element twice (two iters), plus the same node repeated within a run
	it := int64(1)
	for p := int32(0); p < int32(c.Len()); p++ {
		if c.Kind[p] != store.KindElem || c.NameOf(p) != "e" {
			continue
		}
		tab.Col("iter").Int = append(tab.Col("iter").Int, it, it+1)
		tab.Col("item").Item.Append(xqt.Node(c.ID, p))
		tab.Col("item").Item.Append(xqt.Node(c.ID, p))
	}
	tab.N = tab.Col("iter").Len()
	for _, nametest := range []string{"", "id"} {
		n := &AttrStep{unary: unary{In: &Lit{Tab: tab}}, NameTest: nametest, IterCol: "iter", ItemCol: "item"}
		exS := NewExec(pool, nil)
		serial, err := exS.execAttrStep(n, tab)
		if err != nil {
			t.Fatal(err)
		}
		exP := NewExec(pool, nil)
		exP.Par = ParOptions{Workers: 3, Threshold: 1}
		parallel, err := exP.execAttrStep(n, tab)
		if err != nil {
			t.Fatal(err)
		}
		if !tablesEqual(serial, parallel) {
			t.Errorf("attrstep(%q): parallel differs\nserial:\n%s\nparallel:\n%s", nametest, serial, parallel)
		}
	}
}
