package ralg

import (
	"runtime"
	"sync"
	"testing"

	"mxq/internal/scj"
	"mxq/internal/store"
	"mxq/internal/xmark"
	"mxq/internal/xqt"
)

var (
	stepBenchOnce sync.Once
	stepBenchPool *store.Pool
	stepBenchTab  *Table
)

// stepBenchSetup builds an XMark document and a single-context descendant
// step input (the //item workhorse shape: one context node, huge region).
func stepBenchSetup() {
	stepBenchOnce.Do(func() {
		cont := xmark.NewStoreContainer("auction.xml", 0.02, 42)
		cont.BuildIndexes()
		stepBenchPool = store.NewPool()
		stepBenchPool.Register(cont)
		tab := NewTable([]string{"iter", "item"}, []ColKind{KInt, KItem})
		tab.N = 1
		tab.Col("iter").Int = []int64{1}
		tab.Col("item").Item = ItemsOf(xqt.Node(cont.ID, 0))
		stepBenchTab = tab
	})
}

func benchmarkStep(b *testing.B, par ParOptions) {
	stepBenchSetup()
	n := &Step{
		unary:   unary{In: &Lit{Tab: stepBenchTab}},
		Axis:    scj.Descendant,
		Test:    scj.Test{Kind: scj.TestElem, Name: "item"},
		Variant: scj.LoopLifted,
		IterCol: "iter",
		ItemCol: "item",
	}
	ex := NewExec(stepBenchPool, nil)
	ex.Par = par
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.execStep(n, stepBenchTab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStepSerial(b *testing.B) { benchmarkStep(b, ParOptions{}) }

// BenchmarkStepParallel forces at least two workers so the parallel code
// path is exercised (and its overhead visible) even on single-core hosts.
func BenchmarkStepParallel(b *testing.B) {
	w := runtime.GOMAXPROCS(0)
	if w < 2 {
		w = 2
	}
	benchmarkStep(b, ParOptions{Workers: w, Threshold: DefaultParThreshold})
}

func benchmarkHashJoin(b *testing.B, par ParOptions) {
	const nl, nr = 200000, 50000
	l := NewTable([]string{"k"}, []ColKind{KInt})
	l.N = nl
	for i := 0; i < nl; i++ {
		l.Col("k").Int = append(l.Col("k").Int, int64(i%nr))
	}
	r := NewTable([]string{"k", "v"}, []ColKind{KInt, KInt})
	r.N = nr
	for j := 0; j < nr; j++ {
		r.Col("k").Int = append(r.Col("k").Int, int64(j))
		r.Col("v").Int = append(r.Col("v").Int, int64(j)*3)
	}
	n := NewHashJoin(&Lit{Tab: l}, &Lit{Tab: r}, "k", "k", Refs("k"), Refs("v"))
	ex := NewExec(store.NewPool(), nil)
	ex.Par = par
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.execHashJoin(n, l, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashJoinSerial(b *testing.B) { benchmarkHashJoin(b, ParOptions{}) }

func BenchmarkHashJoinParallel(b *testing.B) {
	w := runtime.GOMAXPROCS(0)
	if w < 2 {
		w = 2
	}
	benchmarkHashJoin(b, ParOptions{Workers: w, Threshold: DefaultParThreshold})
}

// --- typed-vector vs polymorphic dispatch pairs ------------------------
//
// The *Typed benchmarks run the uniform-tag fast path (one kind dispatch
// per column, monomorphic loops over raw payload vectors); the
// *Polymorphic pairs run the identical values through a demoted column
// whose materialized tag vector forces the per-row item path — the cost
// the typed representation eliminates.

const funBenchRows = 1 << 18

func funBenchTable(demoted bool) *Table {
	a := make([]xqt.Item, funBenchRows)
	c := make([]xqt.Item, funBenchRows)
	for i := range a {
		a[i] = xqt.Int(int64(i % 1000))
		c[i] = xqt.Double(float64(i%997) / 4)
	}
	av, cv := NewItemVec(a), NewItemVec(c)
	if demoted {
		av, cv = demote(av), demote(cv)
	}
	tab := &Table{N: funBenchRows}
	tab.AddCol("a", Col{Kind: KItem, Item: av})
	tab.AddCol("b", Col{Kind: KItem, Item: cv})
	return tab
}

func benchmarkFun(b *testing.B, op FunOp, demoted bool) {
	tab := funBenchTable(demoted)
	n := &Fun{Op: op, Args: []string{"a", "b"}, Out: "o"}
	ex := NewExec(store.NewPool(), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.execFun(n, tab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFunAddTyped(b *testing.B)       { benchmarkFun(b, FunAdd, false) }
func BenchmarkFunAddPolymorphic(b *testing.B) { benchmarkFun(b, FunAdd, true) }
func BenchmarkFunCmpTyped(b *testing.B)       { benchmarkFun(b, FunLt, false) }
func BenchmarkFunCmpPolymorphic(b *testing.B) { benchmarkFun(b, FunLt, true) }

func aggrBenchTable(demoted bool) *Table {
	vals := make([]xqt.Item, funBenchRows)
	parts := make([]int64, funBenchRows)
	for i := range vals {
		vals[i] = xqt.Double(float64(i%911) / 8)
		parts[i] = int64(i / 64) // 64-row groups, clustered
	}
	v := NewItemVec(vals)
	if demoted {
		v = demote(v)
	}
	tab := &Table{N: funBenchRows}
	tab.AddCol("part", Col{Kind: KInt, Int: parts})
	tab.AddCol("item", Col{Kind: KItem, Item: v})
	return tab
}

func benchmarkAggr(b *testing.B, op AggOp, demoted bool) {
	tab := aggrBenchTable(demoted)
	n := &Aggr{Part: "part", Op: op, Arg: "item", Out: "o"}
	ex := NewExec(store.NewPool(), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.execAggr(n, tab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAggrSumTyped(b *testing.B)       { benchmarkAggr(b, AggSum, false) }
func BenchmarkAggrSumPolymorphic(b *testing.B) { benchmarkAggr(b, AggSum, true) }
func BenchmarkAggrMaxTyped(b *testing.B)       { benchmarkAggr(b, AggMax, false) }
func BenchmarkAggrMaxPolymorphic(b *testing.B) { benchmarkAggr(b, AggMax, true) }
