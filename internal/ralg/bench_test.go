package ralg

import (
	"runtime"
	"sync"
	"testing"

	"mxq/internal/scj"
	"mxq/internal/store"
	"mxq/internal/xmark"
	"mxq/internal/xqt"
)

var (
	stepBenchOnce sync.Once
	stepBenchPool *store.Pool
	stepBenchTab  *Table
)

// stepBenchSetup builds an XMark document and a single-context descendant
// step input (the //item workhorse shape: one context node, huge region).
func stepBenchSetup() {
	stepBenchOnce.Do(func() {
		cont := xmark.NewStoreContainer("auction.xml", 0.02, 42)
		cont.BuildIndexes()
		stepBenchPool = store.NewPool()
		stepBenchPool.Register(cont)
		tab := NewTable([]string{"iter", "item"}, []ColKind{KInt, KItem})
		tab.N = 1
		tab.Col("iter").Int = []int64{1}
		tab.Col("item").Item = []xqt.Item{xqt.Node(cont.ID, 0)}
		stepBenchTab = tab
	})
}

func benchmarkStep(b *testing.B, par ParOptions) {
	stepBenchSetup()
	n := &Step{
		unary:   unary{In: &Lit{Tab: stepBenchTab}},
		Axis:    scj.Descendant,
		Test:    scj.Test{Kind: scj.TestElem, Name: "item"},
		Variant: scj.LoopLifted,
		IterCol: "iter",
		ItemCol: "item",
	}
	ex := NewExec(stepBenchPool, nil)
	ex.Par = par
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.execStep(n, stepBenchTab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStepSerial(b *testing.B) { benchmarkStep(b, ParOptions{}) }

// BenchmarkStepParallel forces at least two workers so the parallel code
// path is exercised (and its overhead visible) even on single-core hosts.
func BenchmarkStepParallel(b *testing.B) {
	w := runtime.GOMAXPROCS(0)
	if w < 2 {
		w = 2
	}
	benchmarkStep(b, ParOptions{Workers: w, Threshold: DefaultParThreshold})
}

func benchmarkHashJoin(b *testing.B, par ParOptions) {
	const nl, nr = 200000, 50000
	l := NewTable([]string{"k"}, []ColKind{KInt})
	l.N = nl
	for i := 0; i < nl; i++ {
		l.Col("k").Int = append(l.Col("k").Int, int64(i%nr))
	}
	r := NewTable([]string{"k", "v"}, []ColKind{KInt, KInt})
	r.N = nr
	for j := 0; j < nr; j++ {
		r.Col("k").Int = append(r.Col("k").Int, int64(j))
		r.Col("v").Int = append(r.Col("v").Int, int64(j)*3)
	}
	n := NewHashJoin(&Lit{Tab: l}, &Lit{Tab: r}, "k", "k", Refs("k"), Refs("v"))
	ex := NewExec(store.NewPool(), nil)
	ex.Par = par
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.execHashJoin(n, l, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashJoinSerial(b *testing.B) { benchmarkHashJoin(b, ParOptions{}) }

func BenchmarkHashJoinParallel(b *testing.B) {
	w := runtime.GOMAXPROCS(0)
	if w < 2 {
		w = 2
	}
	benchmarkHashJoin(b, ParOptions{Workers: w, Threshold: DefaultParThreshold})
}
