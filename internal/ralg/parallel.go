// Intra-query parallel operator execution. The hot per-iter operators —
// Step, AttrStep, RowNum, Aggr, Select, Fun and the HashJoin build and
// probe phases — partition their inputs into contiguous row chunks and
// run the chunks on a bounded goroutine pool. Chunk boundaries respect
// iter/part group runs (splitRuns) or identical-item runs, so every
// group is processed by exactly one worker with the serial algorithm and
// the concatenated outputs are byte-identical to serial execution —
// including floating-point aggregates, whose per-group accumulation
// order is unchanged. Operators whose decomposition would reorder work
// (Sort, ExistJoin, ElemConstruct, EBV) stay serial.
//
// Workers only read shared state (the plan, the input tables, the
// container pool) and write to disjoint output ranges or worker-local
// buffers, so the executor is race-free by construction; the test suite
// runs the full differential corpus under -race to enforce this.

package ralg

import (
	"runtime"

	"mxq/internal/scj"
)

// DefaultParThreshold is the minimum input row count (or document span,
// for range-partitioned steps) at which an operator goes parallel;
// smaller inputs are not worth the goroutine handoff.
const DefaultParThreshold = 2048

// ParOptions configures intra-query parallelism of an Exec. The zero
// value (or Workers <= 1) executes everything serially.
type ParOptions struct {
	// Workers bounds the number of concurrently running goroutines.
	// Under a global scheduler this is the execution's granted worker
	// budget rather than a per-query pool size.
	Workers int
	// Threshold is the minimum input size to parallelize an operator.
	Threshold int
	// Slots, when set, is the slot-acquisition hook: fork-join regions
	// draw their extra goroutines from this shared pool (a scheduler
	// grant) instead of spawning freely, so concurrent executions
	// together never exceed the pool size. Acquisition never blocks —
	// a region granted no slots runs serially on its own goroutine.
	Slots scj.Slots
}

// DefaultParOptions sizes the worker pool by GOMAXPROCS.
func DefaultParOptions() ParOptions {
	return ParOptions{Workers: runtime.GOMAXPROCS(0), Threshold: DefaultParThreshold}
}

// on reports whether an operator over n rows should run parallel.
func (p ParOptions) on(n int) bool {
	return p.Workers > 1 && p.Threshold > 0 && n >= p.Threshold
}

// parRun executes f(0..chunks-1) on at most p.Workers concurrent
// goroutines (drawn from the shared slot pool when one is installed)
// and waits for completion.
func (p ParOptions) parRun(chunks int, f func(int)) {
	scj.ParRunSlots(p.Slots, p.Workers, chunks, f)
}

// splitRows cuts [0, n) into at most chunks contiguous non-empty
// [lo, hi) ranges of near-equal size.
func splitRows(n, chunks int) [][2]int {
	return splitRuns(n, chunks, nil)
}

// splitRuns cuts [0, n) into at most chunks contiguous ranges like
// splitRows, but moves each cut forward until cuttable(i) reports that a
// chunk may start at row i — e.g. "part[i] != part[i-1]" keeps iter
// groups intact (nil means every row is cuttable). A single run spanning
// everything yields one chunk.
func splitRuns(n, chunks int, cuttable func(i int) bool) [][2]int {
	if chunks > n {
		chunks = n
	}
	var out [][2]int
	start := 0
	for k := 0; k < chunks && start < n; k++ {
		end := n * (k + 1) / chunks
		if end <= start {
			continue
		}
		for cuttable != nil && end < n && !cuttable(end) {
			end++
		}
		out = append(out, [2]int{start, end})
		start = end
	}
	return out
}

// int64sNonDecreasing reports whether s is sorted ascending (the usual
// state of iter/part columns, which makes group-aligned chunking exact).
func int64sNonDecreasing(s []int64) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

// parFill runs fill over row chunks of [0, n); fill must only write
// rows in its own [lo, hi) range. Chunks whose turn comes after the
// execution's context expired are skipped (the partial table is
// discarded by Run).
func (e *Exec) parFill(n int, fill func(lo, hi int)) {
	if !e.Par.on(n) {
		fill(0, n)
		return
	}
	rs := splitRows(n, e.Par.Workers)
	e.Par.parRun(len(rs), func(k int) {
		if e.stopRequested() {
			return
		}
		fill(rs[k][0], rs[k][1])
	})
}

// gather is Table.Gather with column-parallel execution for large index
// sets (each column gathers independently).
func (e *Exec) gather(t *Table, idx []int32) *Table {
	if !e.Par.on(len(idx)) || len(t.cols) <= 1 {
		return t.Gather(idx)
	}
	out := &Table{N: len(idx), names: append([]string(nil), t.names...)}
	out.cols = make([]Col, len(t.cols))
	e.Par.parRun(len(t.cols), func(i int) {
		if e.stopRequested() {
			return
		}
		out.cols[i] = t.cols[i].Gather(idx)
	})
	return out
}

// parPairs produces concatenated (lidx, ridx) join-pair lists: gen emits
// the pairs for input rows [lo, hi) into fresh slices. Chunk outputs are
// concatenated in chunk order, preserving the serial emission order.
func (e *Exec) parPairs(nrows int, gen func(lo, hi int) ([]int32, []int32)) ([]int32, []int32) {
	if !e.Par.on(nrows) {
		return gen(0, nrows)
	}
	rs := splitRows(nrows, e.Par.Workers)
	ls := make([][]int32, len(rs))
	rds := make([][]int32, len(rs))
	e.Par.parRun(len(rs), func(k int) {
		if e.stopRequested() {
			return
		}
		ls[k], rds[k] = gen(rs[k][0], rs[k][1])
	})
	total := 0
	for _, l := range ls {
		total += len(l)
	}
	lidx := make([]int32, 0, total)
	ridx := make([]int32, 0, total)
	for k := range ls {
		lidx = append(lidx, ls[k]...)
		ridx = append(ridx, rds[k]...)
	}
	return lidx, ridx
}

// hashTable is a key-partitioned join hash table: partition w owns the
// keys with keyPart(k, w). Serial builds use a single partition.
type hashTable struct {
	parts []map[int64][]int32
}

// keyPart maps a join key to its owning partition (Fibonacci mixing so
// dense ascending keys spread evenly).
func keyPart(k int64, nparts int) int {
	if nparts == 1 {
		return 0
	}
	return int((uint64(k) * 0x9E3779B97F4A7C15 >> 32) % uint64(nparts))
}

func (h *hashTable) lookup(k int64) []int32 {
	return h.parts[keyPart(k, len(h.parts))][k]
}

// buildHashTable builds the right-side key -> row-list table. Large
// build sides are partitioned by key hash: each worker scans the whole
// key column but inserts only the keys it owns, so no serial merge is
// needed and every key's row list is in right-input order exactly as the
// serial build produces it.
// hashEntryBytes is the accounted cost of one build-table entry: the
// int32 row index plus amortized map bucket overhead.
const hashEntryBytes = 16

func (e *Exec) buildHashTable(rkey []int64) *hashTable {
	if !e.Par.on(len(rkey)) {
		m := make(map[int64][]int32, len(rkey))
		for j, k := range rkey {
			if j&8191 == 8191 {
				// charge the build as it grows so an over-budget query
				// aborts mid-build instead of after materializing it
				e.charge(8192 * hashEntryBytes)
				if e.stopRequested() {
					break
				}
			}
			m[k] = append(m[k], int32(j))
		}
		e.charge(int64(len(rkey)%8192) * hashEntryBytes)
		return &hashTable{parts: []map[int64][]int32{m}}
	}
	nparts := e.Par.Workers
	h := &hashTable{parts: make([]map[int64][]int32, nparts)}
	e.Par.parRun(nparts, func(w int) {
		m := make(map[int64][]int32, len(rkey)/nparts+1)
		inserted := 0
		for j, k := range rkey {
			if j&8191 == 8191 {
				e.charge(int64(inserted) * hashEntryBytes)
				inserted = 0
				if e.stopRequested() {
					break
				}
			}
			if keyPart(k, nparts) == w {
				m[k] = append(m[k], int32(j))
				inserted++
			}
		}
		e.charge(int64(inserted) * hashEntryBytes)
		h.parts[w] = m
	})
	return h
}
