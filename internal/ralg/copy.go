package ralg

import "fmt"

// Copier deep-copies plan DAGs. Copies made through one Copier share a
// memo, so a subplan reachable from two copied roots maps to one shared
// copy — the shape rewrite witnesses need: a before/after plan pair
// wired to the same copied inputs. Table payloads are immutable by the
// package's concurrency model and stay shared with the original.
type Copier struct{ memo map[Plan]Plan }

// NewCopier returns a Copier with an empty memo.
func NewCopier() *Copier { return &Copier{memo: map[Plan]Plan{}} }

// Replace pre-seeds the memo: every occurrence of orig reached by later
// Copy calls resolves to repl instead of a fresh copy. Translation
// validation uses it to substitute synthesized literal tables for the
// inputs of a rewrite witness.
func (c *Copier) Replace(orig, repl Plan) { c.memo[orig] = repl }

// Copy returns a deep copy of the DAG rooted at p, preserving sharing.
func (c *Copier) Copy(p Plan) Plan {
	if p == nil {
		return nil
	}
	if q, ok := c.memo[p]; ok {
		return q
	}
	q := c.CopyNode(p)
	c.memo[p] = q
	return q
}

// CopyNode copies the single node p — cloning its owned annotation
// slices and resolving its inputs through Copy — without memoizing p
// itself, so two CopyNode calls on one node yield distinct clones (the
// before and after snapshots of one rewrite step).
func (c *Copier) CopyNode(p Plan) Plan {
	switch n := p.(type) {
	case *Lit:
		return &Lit{Tab: n.Tab}
	case *LitDecl:
		q := &LitDecl{Tab: n.Tab, Dense: cloneStrs(n.Dense), Key: cloneStrs(n.Key), Const: cloneStrs(n.Const)}
		for _, o := range n.Ords {
			q.Ords = append(q.Ords, cloneStrs(o))
		}
		for _, g := range n.Grps {
			q.Grps = append(q.Grps, GrpSpec{Cols: cloneStrs(g.Cols), Group: g.Group})
		}
		return q
	case *DocRoot:
		return &DocRoot{Doc: n.Doc}
	case *ContextRoot:
		return &ContextRoot{}
	case *ParamTable:
		return &ParamTable{Var: n.Var}
	case *CollectionRoot:
		return &CollectionRoot{Coll: n.Coll}
	case *Fail:
		return &Fail{Code: n.Code, Msg: n.Msg}
	case *Project:
		return &Project{unary: c.in(n.In), Cols: cloneRefs(n.Cols)}
	case *Attach:
		q := *n
		q.In = c.Copy(n.In)
		return &q
	case *Select:
		return &Select{unary: c.in(n.In), Cond: n.Cond, Neg: n.Neg}
	case *Fun:
		return &Fun{unary: c.in(n.In), Op: n.Op, Args: cloneStrs(n.Args), Out: n.Out}
	case *RowNum:
		return &RowNum{unary: c.in(n.In), Out: n.Out, OrderBy: cloneStrs(n.OrderBy), Desc: cloneBools(n.Desc), Part: n.Part, Mode: n.Mode}
	case *Sort:
		return &Sort{unary: c.in(n.In), By: cloneStrs(n.By), Desc: cloneBools(n.Desc), RefinePrefix: n.RefinePrefix}
	case *HashJoin:
		return &HashJoin{binary: c.lr(n.L, n.R), LKey: n.LKey, RKey: n.RKey,
			LCols: cloneRefs(n.LCols), RCols: cloneRefs(n.RCols), Pos: n.Pos, PosLeft: n.PosLeft}
	case *ExistJoin:
		q := *n
		q.L, q.R = c.Copy(n.L), c.Copy(n.R)
		return &q
	case *Cross:
		return &Cross{binary: c.lr(n.L, n.R), LCols: cloneRefs(n.LCols), RCols: cloneRefs(n.RCols)}
	case *Union:
		q := &Union{Ins: make([]Plan, len(n.Ins))}
		for i, in := range n.Ins {
			q.Ins[i] = c.Copy(in)
		}
		return q
	case *Diff:
		return &Diff{binary: c.lr(n.L, n.R), LKey: n.LKey, RKey: n.RKey}
	case *Distinct:
		return &Distinct{unary: c.in(n.In), By: cloneStrs(n.By), Merge: n.Merge}
	case *Aggr:
		q := *n
		q.In = c.Copy(n.In)
		return &q
	case *Step:
		q := *n
		q.In = c.Copy(n.In)
		return &q
	case *AttrStep:
		q := *n
		q.In = c.Copy(n.In)
		return &q
	case *ElemConstruct:
		q := &ElemConstruct{Loop: c.Copy(n.Loop), Content: c.Copy(n.Content), Tag: n.Tag}
		for _, a := range n.Attrs {
			parts := make([]Plan, len(a.Parts))
			for i, p := range a.Parts {
				parts[i] = c.Copy(p)
			}
			q.Attrs = append(q.Attrs, AttrSpec{Attr: a.Attr, Parts: parts})
		}
		return q
	case *ColToItem:
		q := *n
		q.In = c.Copy(n.In)
		return &q
	case *RangeGen:
		q := *n
		q.In = c.Copy(n.In)
		return &q
	case *CoverCheck:
		q := *n
		q.L, q.R = c.Copy(n.L), c.Copy(n.R)
		return &q
	case *EBV:
		q := *n
		q.In = c.Copy(n.In)
		return &q
	case *CardCheck:
		q := *n
		q.In = c.Copy(n.In)
		return &q
	}
	panic(fmt.Sprintf("ralg: Copier: unknown operator %T", p))
}

func (c *Copier) in(p Plan) unary     { return unary{In: c.Copy(p)} }
func (c *Copier) lr(l, r Plan) binary { return binary{L: c.Copy(l), R: c.Copy(r)} }
func cloneStrs(s []string) []string   { return append([]string(nil), s...) }
func cloneBools(s []bool) []bool      { return append([]bool(nil), s...) }
func cloneRefs(s []ColRef) []ColRef   { return append([]ColRef(nil), s...) }

// CopyPlan deep-copies the plan DAG rooted at p: fresh nodes and
// annotation slices (mutating the copy never touches the original),
// subplans shared in the original still shared in the copy, immutable
// *Table payloads shared with the original.
func CopyPlan(p Plan) Plan { return NewCopier().Copy(p) }

// PlansEqual reports structural equality of two plan DAGs: same node
// types, same per-node annotations, same input wiring, with consistent
// sharing (two references to one node of a must resolve to one node of
// b, and vice versa). Literal tables compare by content.
func PlansEqual(a, b Plan) bool {
	return plansEqual(a, b, map[Plan]Plan{}, map[Plan]Plan{})
}

func plansEqual(a, b Plan, fwd, rev map[Plan]Plan) bool {
	if a == nil || b == nil {
		return a == b
	}
	if q, ok := fwd[a]; ok {
		return q == b
	}
	if p, ok := rev[b]; ok {
		return p == a
	}
	fwd[a], rev[b] = b, a
	if !nodeEqual(a, b) {
		return false
	}
	ai, bi := a.Inputs(), b.Inputs()
	if len(ai) != len(bi) {
		return false
	}
	for i := range ai {
		if !plansEqual(ai[i], bi[i], fwd, rev) {
			return false
		}
	}
	return true
}

// nodeEqual compares the annotations of two nodes, ignoring inputs.
func nodeEqual(a, b Plan) bool {
	switch x := a.(type) {
	case *Lit:
		y, ok := b.(*Lit)
		return ok && TablesEqual(x.Tab, y.Tab)
	case *LitDecl:
		y, ok := b.(*LitDecl)
		return ok && TablesEqual(x.Tab, y.Tab) && ordsEq(x.Ords, y.Ords) && grpsEq(x.Grps, y.Grps) &&
			strsEq(x.Dense, y.Dense) && strsEq(x.Key, y.Key) && strsEq(x.Const, y.Const)
	case *DocRoot:
		y, ok := b.(*DocRoot)
		return ok && x.Doc == y.Doc
	case *ContextRoot:
		_, ok := b.(*ContextRoot)
		return ok
	case *ParamTable:
		y, ok := b.(*ParamTable)
		return ok && x.Var == y.Var
	case *CollectionRoot:
		y, ok := b.(*CollectionRoot)
		return ok && x.Coll == y.Coll
	case *Fail:
		y, ok := b.(*Fail)
		return ok && x.Code == y.Code && x.Msg == y.Msg
	case *Project:
		y, ok := b.(*Project)
		return ok && refsEq(x.Cols, y.Cols)
	case *Attach:
		y, ok := b.(*Attach)
		return ok && x.Col == y.Col && x.Kind == y.Kind && x.I == y.I && x.B == y.B && x.It == y.It
	case *Select:
		y, ok := b.(*Select)
		return ok && x.Cond == y.Cond && x.Neg == y.Neg
	case *Fun:
		y, ok := b.(*Fun)
		return ok && x.Op == y.Op && strsEq(x.Args, y.Args) && x.Out == y.Out
	case *RowNum:
		y, ok := b.(*RowNum)
		return ok && x.Out == y.Out && strsEq(x.OrderBy, y.OrderBy) && boolsEq(x.Desc, y.Desc) &&
			x.Part == y.Part && x.Mode == y.Mode
	case *Sort:
		y, ok := b.(*Sort)
		return ok && strsEq(x.By, y.By) && boolsEq(x.Desc, y.Desc) && x.RefinePrefix == y.RefinePrefix
	case *HashJoin:
		y, ok := b.(*HashJoin)
		return ok && x.LKey == y.LKey && x.RKey == y.RKey && refsEq(x.LCols, y.LCols) &&
			refsEq(x.RCols, y.RCols) && x.Pos == y.Pos && x.PosLeft == y.PosLeft
	case *ExistJoin:
		y, ok := b.(*ExistJoin)
		return ok && x.Cmp == y.Cmp && x.LIter == y.LIter && x.LItem == y.LItem &&
			x.RIter == y.RIter && x.RItem == y.RItem && x.Out1 == y.Out1 && x.Out2 == y.Out2 &&
			x.Strategy == y.Strategy
	case *Cross:
		y, ok := b.(*Cross)
		return ok && refsEq(x.LCols, y.LCols) && refsEq(x.RCols, y.RCols)
	case *Union:
		_, ok := b.(*Union)
		return ok
	case *Diff:
		y, ok := b.(*Diff)
		return ok && x.LKey == y.LKey && x.RKey == y.RKey
	case *Distinct:
		y, ok := b.(*Distinct)
		return ok && strsEq(x.By, y.By) && x.Merge == y.Merge
	case *Aggr:
		y, ok := b.(*Aggr)
		return ok && x.Part == y.Part && x.Op == y.Op && x.Arg == y.Arg && x.Out == y.Out
	case *Step:
		y, ok := b.(*Step)
		return ok && x.Axis == y.Axis && x.Test == y.Test && x.Variant == y.Variant &&
			x.IterCol == y.IterCol && x.ItemCol == y.ItemCol
	case *AttrStep:
		y, ok := b.(*AttrStep)
		return ok && x.NameTest == y.NameTest && x.IterCol == y.IterCol && x.ItemCol == y.ItemCol
	case *ElemConstruct:
		y, ok := b.(*ElemConstruct)
		if !ok || x.Tag != y.Tag || len(x.Attrs) != len(y.Attrs) {
			return false
		}
		for i := range x.Attrs {
			if x.Attrs[i].Attr != y.Attrs[i].Attr || len(x.Attrs[i].Parts) != len(y.Attrs[i].Parts) {
				return false
			}
		}
		return true
	case *ColToItem:
		y, ok := b.(*ColToItem)
		return ok && x.Src == y.Src && x.Dst == y.Dst
	case *RangeGen:
		y, ok := b.(*RangeGen)
		return ok && x.Iter == y.Iter && x.Lo == y.Lo && x.Hi == y.Hi
	case *CoverCheck:
		y, ok := b.(*CoverCheck)
		return ok && x.LoopIter == y.LoopIter && x.Part == y.Part && x.Fn == y.Fn
	case *EBV:
		y, ok := b.(*EBV)
		return ok && x.Part == y.Part && x.Item == y.Item && x.Out == y.Out
	case *CardCheck:
		y, ok := b.(*CardCheck)
		return ok && x.Part == y.Part && x.AtMostOne == y.AtMostOne && x.Fn == y.Fn
	}
	return false
}

// TablesEqual reports whether two tables hold the same schema and the
// same rows in the same order (nil tables compare equal only to nil).
func TablesEqual(a, b *Table) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a == b {
		return true
	}
	if a.N != b.N || len(a.names) != len(b.names) {
		return false
	}
	for i, name := range a.names {
		if b.names[i] != name {
			return false
		}
		ca, cb := &a.cols[i], &b.cols[i]
		if ca.Kind != cb.Kind {
			return false
		}
		switch ca.Kind {
		case KInt:
			for r := range ca.Int {
				if ca.Int[r] != cb.Int[r] {
					return false
				}
			}
		case KBool:
			for r := range ca.Bool {
				if ca.Bool[r] != cb.Bool[r] {
					return false
				}
			}
		default:
			for r := 0; r < ca.Item.Len(); r++ {
				if ca.Item.At(r) != cb.Item.At(r) {
					return false
				}
			}
		}
	}
	return true
}

func strsEq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func boolsEq(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func refsEq(a, b []ColRef) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func ordsEq(a, b [][]string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !strsEq(a[i], b[i]) {
			return false
		}
	}
	return true
}

func grpsEq(a, b []GrpSpec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Group != b[i].Group || !strsEq(a[i].Cols, b[i].Cols) {
			return false
		}
	}
	return true
}
