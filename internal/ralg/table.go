// Package ralg is the columnar relational algebra engine that hosts the
// XQuery compilation scheme of MonetDB/XQuery. It provides the operator
// repertoire the paper's plans are built from (paper §2.1 and §4):
// projection, selection, row numbering ρ (DENSE_RANK), equi-/theta-joins
// with positional and existential variants, disjoint union, difference,
// duplicate elimination, grouped aggregation, sorting, the staircase-join
// location step, and XML node construction.
//
// Tables are sets of named, equally long columns. Three column kinds
// exist: dense integers (iter/pos/inner/outer columns), booleans
// (predicates), and XQuery items (the item columns of the iter|pos|item
// sequence encoding). Item columns are stored as typed vectors — a tag
// vector plus parallel int64/float64/string/node payload vectors
// (ItemVec) — so the kernels dispatch on the item kind once per column
// when the tag is uniform (the overwhelmingly common case after a Step
// or a cast) instead of once per row.
//
// # Concurrency model
//
// Plans and tables are immutable once produced: operators build fresh
// output tables (possibly sharing read-only column payloads with their
// inputs), so one compiled plan may be executed by any number of Exec
// instances concurrently, each with its own memo table, statistics and
// transient container. Within one execution, Exec.Par additionally
// partitions the hot operators — Step/AttrStep, RowNum, Aggr, Select,
// Fun, HashJoin build and probe — across a bounded goroutine pool with
// chunk boundaries aligned to iter/part group runs, keeping output
// byte-identical to serial execution (see parallel.go).
package ralg

import (
	"fmt"
	"sort"
	"strings"

	"mxq/internal/xqt"
)

// ColKind discriminates column representations.
type ColKind uint8

// Column kinds.
const (
	KInt  ColKind = iota // int64 column
	KBool                // boolean column
	KItem                // typed-vector XQuery item column
)

// ItemVec is the typed-vector representation of an item column: a tag
// per row plus parallel payload vectors, one per payload type. For every
// row the payload vectors its kind uses (mirroring the field rules of
// xqt.Item) carry the value:
//
//	KInt, KBool:       I
//	KDouble:           F
//	KString, KUntyped: S
//	KNode, KAttr:      Cont, I
//
// A payload vector is either nil (no row of the column needs it) or has
// exactly Len() entries, with zero values on the rows of other kinds.
// When every row shares one kind, Tags is nil and Tag holds that kind —
// the uniform case the vectorized kernels dispatch on once per column.
// Like tables, vectors are immutable once their table is produced, so
// operators may share payload slices with their inputs.
type ItemVec struct {
	Tags []xqt.Kind // per-row kinds; nil when the column is uniform
	Tag  xqt.Kind   // the uniform kind (meaningful when Tags is nil)
	n    int

	Cont []int32
	I    []int64
	F    []float64
	S    []string
}

// payloads reports which payload vectors rows of kind k use.
func payloads(k xqt.Kind) (cont, i, f, s bool) {
	switch k {
	case xqt.KInt, xqt.KBool:
		return false, true, false, false
	case xqt.KDouble:
		return false, false, true, false
	case xqt.KString, xqt.KUntyped:
		return false, false, false, true
	default: // KNode, KAttr
		return true, true, false, false
	}
}

// Len returns the number of rows.
func (v *ItemVec) Len() int { return v.n }

// Uniform returns the column's single kind when all rows share one (an
// empty vector counts as uniform).
func (v *ItemVec) Uniform() (xqt.Kind, bool) { return v.Tag, v.Tags == nil }

// KindAt returns the kind of row i.
func (v *ItemVec) KindAt(i int) xqt.Kind {
	if v.Tags != nil {
		return v.Tags[i]
	}
	return v.Tag
}

// At reconstructs row i as an xqt.Item.
func (v *ItemVec) At(i int) xqt.Item {
	switch k := v.KindAt(i); k {
	case xqt.KInt, xqt.KBool:
		return xqt.Item{K: k, I: v.I[i]}
	case xqt.KDouble:
		return xqt.Item{K: k, F: v.F[i]}
	case xqt.KString, xqt.KUntyped:
		return xqt.Item{K: k, S: v.S[i]}
	default:
		return xqt.Item{K: k, Cont: v.Cont[i], I: v.I[i]}
	}
}

// growRows appends count rows of kind k with zero payloads and returns
// the index of the first new row. The caller fills the payload vectors
// directly (possibly in parallel chunks — the rows are disjoint).
func (v *ItemVec) growRows(k xqt.Kind, count int) int {
	base := v.n
	if count <= 0 {
		return base
	}
	if v.Tags == nil && v.n > 0 && k != v.Tag {
		tags := make([]xqt.Kind, v.n, v.n+count)
		for i := range tags {
			tags[i] = v.Tag
		}
		v.Tags = tags
	}
	if v.n == 0 && v.Tags == nil {
		v.Tag = k
	}
	if v.Tags != nil {
		for j := 0; j < count; j++ {
			v.Tags = append(v.Tags, k)
		}
	}
	cont, i, f, s := payloads(k)
	if v.Cont != nil || cont {
		if v.Cont == nil {
			v.Cont = make([]int32, v.n, v.n+count)
		}
		v.Cont = append(v.Cont, make([]int32, count)...)
	}
	if v.I != nil || i {
		if v.I == nil {
			v.I = make([]int64, v.n, v.n+count)
		}
		v.I = append(v.I, make([]int64, count)...)
	}
	if v.F != nil || f {
		if v.F == nil {
			v.F = make([]float64, v.n, v.n+count)
		}
		v.F = append(v.F, make([]float64, count)...)
	}
	if v.S != nil || s {
		if v.S == nil {
			v.S = make([]string, v.n, v.n+count)
		}
		v.S = append(v.S, make([]string, count)...)
	}
	v.n += count
	return base
}

// Append appends one item.
func (v *ItemVec) Append(it xqt.Item) {
	i := v.growRows(it.K, 1)
	switch it.K {
	case xqt.KInt, xqt.KBool:
		v.I[i] = it.I
	case xqt.KDouble:
		v.F[i] = it.F
	case xqt.KString, xqt.KUntyped:
		v.S[i] = it.S
	default:
		v.Cont[i] = it.Cont
		v.I[i] = it.I
	}
}

// AppendVec appends all rows of o (payload contents are copied, never
// aliased, so o stays untouched by later appends to v).
func (v *ItemVec) AppendVec(o *ItemVec) {
	if o.n == 0 {
		return
	}
	if v.Tags == nil && o.Tags == nil && (v.n == 0 || o.Tag == v.Tag) {
		// stays uniform
		if v.n == 0 {
			v.Tag = o.Tag
		}
	} else if v.Tags == nil {
		tags := make([]xqt.Kind, v.n, v.n+o.n)
		for i := range tags {
			tags[i] = v.Tag
		}
		v.Tags = tags
	}
	if v.Tags != nil {
		if o.Tags != nil {
			v.Tags = append(v.Tags, o.Tags...)
		} else {
			for j := 0; j < o.n; j++ {
				v.Tags = append(v.Tags, o.Tag)
			}
		}
	}
	appendCont := func() {
		if v.Cont == nil {
			v.Cont = make([]int32, v.n, v.n+o.n)
		}
		if o.Cont != nil {
			v.Cont = append(v.Cont, o.Cont...)
		} else {
			v.Cont = append(v.Cont, make([]int32, o.n)...)
		}
	}
	if v.Cont != nil || o.Cont != nil {
		appendCont()
	}
	if v.I != nil || o.I != nil {
		if v.I == nil {
			v.I = make([]int64, v.n, v.n+o.n)
		}
		if o.I != nil {
			v.I = append(v.I, o.I...)
		} else {
			v.I = append(v.I, make([]int64, o.n)...)
		}
	}
	if v.F != nil || o.F != nil {
		if v.F == nil {
			v.F = make([]float64, v.n, v.n+o.n)
		}
		if o.F != nil {
			v.F = append(v.F, o.F...)
		} else {
			v.F = append(v.F, make([]float64, o.n)...)
		}
	}
	if v.S != nil || o.S != nil {
		if v.S == nil {
			v.S = make([]string, v.n, v.n+o.n)
		}
		if o.S != nil {
			v.S = append(v.S, o.S...)
		} else {
			v.S = append(v.S, make([]string, o.n)...)
		}
	}
	v.n += o.n
}

// Gather returns a new vector holding rows idx, in order. A mixed tag
// vector stays mixed even if the gathered rows happen to share a kind
// (re-detecting uniformity would cost a scan per gather).
func (v *ItemVec) Gather(idx []int32) ItemVec {
	out := ItemVec{Tag: v.Tag, n: len(idx)}
	if v.Tags != nil {
		out.Tags = make([]xqt.Kind, len(idx))
		for i, j := range idx {
			out.Tags[i] = v.Tags[j]
		}
	}
	if v.Cont != nil {
		out.Cont = make([]int32, len(idx))
		for i, j := range idx {
			out.Cont[i] = v.Cont[j]
		}
	}
	if v.I != nil {
		out.I = make([]int64, len(idx))
		for i, j := range idx {
			out.I[i] = v.I[j]
		}
	}
	if v.F != nil {
		out.F = make([]float64, len(idx))
		for i, j := range idx {
			out.F[i] = v.F[j]
		}
	}
	if v.S != nil {
		out.S = make([]string, len(idx))
		for i, j := range idx {
			out.S[i] = v.S[j]
		}
	}
	return out
}

// Slice materializes the vector as a polymorphic item slice (a
// compatibility accessor for tests and result extraction; kernels read
// the payload vectors directly).
func (v *ItemVec) Slice() []xqt.Item {
	out := make([]xqt.Item, v.n)
	for i := range out {
		out[i] = v.At(i)
	}
	return out
}

// NewItemVec builds a vector from a polymorphic item slice.
func NewItemVec(items []xqt.Item) ItemVec {
	v := ItemVec{}
	for _, it := range items {
		v.Append(it)
	}
	return v
}

// ItemsOf builds a vector from the given items (test convenience).
func ItemsOf(items ...xqt.Item) ItemVec { return NewItemVec(items) }

// constItemVec builds a uniform vector holding n copies of it.
func constItemVec(it xqt.Item, n int) ItemVec {
	v := ItemVec{}
	v.growRows(it.K, n)
	switch it.K {
	case xqt.KInt, xqt.KBool:
		for i := range v.I {
			v.I[i] = it.I
		}
	case xqt.KDouble:
		for i := range v.F {
			v.F[i] = it.F
		}
	case xqt.KString, xqt.KUntyped:
		for i := range v.S {
			v.S[i] = it.S
		}
	default:
		for i := range v.Cont {
			v.Cont[i] = it.Cont
			v.I[i] = it.I
		}
	}
	return v
}

// Col is a single column. The payload determined by Kind is meaningful;
// for KItem the Item vector holds the rows.
type Col struct {
	Kind ColKind
	Int  []int64
	Bool []bool
	Item ItemVec
}

// Len returns the number of rows in the column.
func (c *Col) Len() int {
	switch c.Kind {
	case KInt:
		return len(c.Int)
	case KBool:
		return len(c.Bool)
	default:
		return c.Item.Len()
	}
}

// Gather returns a new column holding rows idx of c, in order.
func (c *Col) Gather(idx []int32) Col {
	out := Col{Kind: c.Kind}
	switch c.Kind {
	case KInt:
		out.Int = make([]int64, len(idx))
		for i, j := range idx {
			out.Int[i] = c.Int[j]
		}
	case KBool:
		out.Bool = make([]bool, len(idx))
		for i, j := range idx {
			out.Bool[i] = c.Bool[j]
		}
	default:
		out.Item = c.Item.Gather(idx)
	}
	return out
}

// Table is a named collection of columns of equal length.
type Table struct {
	N     int
	names []string
	cols  []Col
}

// NewTable returns an empty table with the given column names and kinds.
func NewTable(names []string, kinds []ColKind) *Table {
	if len(names) != len(kinds) {
		panic("ralg: names/kinds mismatch")
	}
	t := &Table{names: append([]string(nil), names...)}
	t.cols = make([]Col, len(kinds))
	for i, k := range kinds {
		t.cols[i].Kind = k
	}
	return t
}

// Names returns the column names in schema order.
func (t *Table) Names() []string { return t.names }

// Col returns the column with the given name, panicking if absent (a
// compiler bug, not a data error).
func (t *Table) Col(name string) *Col {
	for i, n := range t.names {
		if n == name {
			return &t.cols[i]
		}
	}
	panic(fmt.Sprintf("ralg: no column %q in table %v", name, t.names))
}

// HasCol reports whether the table has a column with the given name.
func (t *Table) HasCol(name string) bool {
	for _, n := range t.names {
		if n == name {
			return true
		}
	}
	return false
}

// AddCol appends a column to the schema.
func (t *Table) AddCol(name string, c Col) {
	if c.Len() != t.N && !(t.N == 0 && len(t.names) == 0) {
		panic(fmt.Sprintf("ralg: column %q length %d != %d", name, c.Len(), t.N))
	}
	if len(t.names) == 0 {
		t.N = c.Len()
	}
	t.names = append(t.names, name)
	t.cols = append(t.cols, c)
}

// Gather returns a new table holding rows idx of t, in order.
func (t *Table) Gather(idx []int32) *Table {
	out := &Table{N: len(idx), names: append([]string(nil), t.names...)}
	out.cols = make([]Col, len(t.cols))
	for i := range t.cols {
		out.cols[i] = t.cols[i].Gather(idx)
	}
	return out
}

// Ints returns the int64 payload of an integer column.
func (t *Table) Ints(name string) []int64 { return t.Col(name).Int }

// Items materializes an item column as a polymorphic slice. Hot kernels
// use ItemVec instead; this accessor serves tests, plan-building around
// tiny tables and result extraction.
func (t *Table) Items(name string) []xqt.Item { return t.Col(name).Item.Slice() }

// ItemVec returns the typed-vector payload of an item column.
func (t *Table) ItemVec(name string) *ItemVec { return &t.Col(name).Item }

// Bools returns the boolean payload of a boolean column.
func (t *Table) Bools(name string) []bool { return t.Col(name).Bool }

// String renders the table for debugging and test failure messages.
func (t *Table) String() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.names, "|"))
	sb.WriteString("\n")
	for r := 0; r < t.N && r < 50; r++ {
		for i := range t.cols {
			if i > 0 {
				sb.WriteString(" ")
			}
			c := &t.cols[i]
			switch c.Kind {
			case KInt:
				fmt.Fprintf(&sb, "%d", c.Int[r])
			case KBool:
				fmt.Fprintf(&sb, "%v", c.Bool[r])
			default:
				it := c.Item.At(r)
				switch it.K {
				case xqt.KNode:
					fmt.Fprintf(&sb, "node(%d,%d)", it.Cont, it.I)
				case xqt.KAttr:
					fmt.Fprintf(&sb, "attr(%d,%d)", it.Cont, it.I)
				default:
					fmt.Fprintf(&sb, "%s", it.AsString())
				}
			}
		}
		sb.WriteString("\n")
	}
	if t.N > 50 {
		fmt.Fprintf(&sb, "... (%d rows)\n", t.N)
	}
	return sb.String()
}

// compareRows compares rows i and j of t on the given columns with the
// given per-column descending flags. Items compare with xqt.SortLess
// (document order for nodes, value order for atoms).
func compareRows(t *Table, by []*Col, desc []bool, i, j int32) int {
	for k, c := range by {
		var r int
		switch c.Kind {
		case KInt:
			a, b := c.Int[i], c.Int[j]
			switch {
			case a < b:
				r = -1
			case a > b:
				r = 1
			}
		case KBool:
			a, b := c.Bool[i], c.Bool[j]
			switch {
			case !a && b:
				r = -1
			case a && !b:
				r = 1
			}
		default:
			a, b := c.Item.At(int(i)), c.Item.At(int(j))
			switch {
			case xqt.SortLess(a, b):
				r = -1
			case xqt.SortLess(b, a):
				r = 1
			}
		}
		if r != 0 {
			if desc != nil && desc[k] {
				return -r
			}
			return r
		}
	}
	return 0
}

// CompareRowsOn compares rows i and j of t on the named columns,
// ascending, with the same comparator the sort kernels use (items via
// xqt.SortLess). Planck's literal-claim verification and optcheck's
// input synthesis share it so "sorted" means exactly what the executor
// means by it.
func CompareRowsOn(t *Table, by []string, i, j int) int {
	cols := make([]*Col, len(by))
	for k, n := range by {
		cols[k] = t.Col(n)
	}
	return compareRows(t, cols, nil, int32(i), int32(j))
}

// SortIdx returns a stable permutation of t's rows ordered by the given
// columns. refinePrefix > 0 asserts that the input is already sorted on
// the first refinePrefix columns; only runs with equal prefixes are
// re-sorted (the paper's incremental refine-sort).
func SortIdx(t *Table, by []string, desc []bool, refinePrefix int) []int32 {
	cols := make([]*Col, len(by))
	for i, n := range by {
		cols[i] = t.Col(n)
	}
	idx := make([]int32, t.N)
	for i := range idx {
		idx[i] = int32(i)
	}
	if refinePrefix >= len(by) {
		return idx
	}
	if refinePrefix == 0 {
		sort.SliceStable(idx, func(a, b int) bool {
			return compareRows(t, cols, desc, idx[a], idx[b]) < 0
		})
		return idx
	}
	prefix := cols[:refinePrefix]
	suffix := cols[refinePrefix:]
	var sufDesc []bool
	if desc != nil {
		sufDesc = desc[refinePrefix:]
	}
	start := 0
	for start < t.N {
		end := start + 1
		for end < t.N && compareRows(t, prefix, nil, int32(start), int32(end)) == 0 {
			end++
		}
		run := idx[start:end]
		sort.SliceStable(run, func(a, b int) bool {
			return compareRows(t, suffix, sufDesc, run[a], run[b]) < 0
		})
		start = end
	}
	return idx
}

// IsSortedBy reports whether t is sorted on the given columns.
func IsSortedBy(t *Table, by []string) bool {
	cols := make([]*Col, len(by))
	for i, n := range by {
		cols[i] = t.Col(n)
	}
	for i := 1; i < t.N; i++ {
		if compareRows(t, cols, nil, int32(i-1), int32(i)) > 0 {
			return false
		}
	}
	return true
}

// MemBytes estimates the heap bytes held by the vector's slices: O(1),
// computed from capacities, with a flat per-header charge for strings
// (the byte data itself is usually shared with the store). Budget
// accounting wants a cheap consistent estimate, not malloc truth.
func (v *ItemVec) MemBytes() int64 {
	n := int64(cap(v.Tags)) + 4*int64(cap(v.Cont)) + 8*int64(cap(v.I)) + 8*int64(cap(v.F)) + 16*int64(cap(v.S))
	return n
}

// MemBytes estimates the heap bytes held by the column.
func (c *Col) MemBytes() int64 {
	return 8*int64(cap(c.Int)) + int64(cap(c.Bool)) + c.Item.MemBytes()
}

// MemBytes estimates the heap bytes held by the table's columns.
// Zero-copy operators share payload slices with their inputs, so
// summing MemBytes across a plan's tables overcounts; budget charges
// are therefore issued by the operator that materialized the storage,
// not per table reference.
func (t *Table) MemBytes() int64 {
	var n int64
	for i := range t.cols {
		n += t.cols[i].MemBytes()
	}
	return n
}
