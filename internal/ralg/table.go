// Package ralg is the columnar relational algebra engine that hosts the
// XQuery compilation scheme of MonetDB/XQuery. It provides the operator
// repertoire the paper's plans are built from (paper §2.1 and §4):
// projection, selection, row numbering ρ (DENSE_RANK), equi-/theta-joins
// with positional and existential variants, disjoint union, difference,
// duplicate elimination, grouped aggregation, sorting, the staircase-join
// location step, and XML node construction.
//
// Tables are sets of named, equally long columns. Three column kinds
// exist: dense integers (iter/pos/inner/outer columns), booleans
// (predicates), and polymorphic XQuery items (the item columns of the
// iter|pos|item sequence encoding).
//
// # Concurrency model
//
// Plans and tables are immutable once produced: operators build fresh
// output tables (possibly sharing read-only column payloads with their
// inputs), so one compiled plan may be executed by any number of Exec
// instances concurrently, each with its own memo table, statistics and
// transient container. Within one execution, Exec.Par additionally
// partitions the hot operators — Step/AttrStep, RowNum, Aggr, Select,
// Fun, HashJoin build and probe — across a bounded goroutine pool with
// chunk boundaries aligned to iter/part group runs, keeping output
// byte-identical to serial execution (see parallel.go).
package ralg

import (
	"fmt"
	"sort"
	"strings"

	"mxq/internal/xqt"
)

// ColKind discriminates column representations.
type ColKind uint8

// Column kinds.
const (
	KInt  ColKind = iota // int64 column
	KBool                // boolean column
	KItem                // polymorphic XQuery item column
)

// Col is a single column. Exactly one of the payload slices is non-nil,
// determined by Kind.
type Col struct {
	Kind ColKind
	Int  []int64
	Bool []bool
	Item []xqt.Item
}

// Len returns the number of rows in the column.
func (c *Col) Len() int {
	switch c.Kind {
	case KInt:
		return len(c.Int)
	case KBool:
		return len(c.Bool)
	default:
		return len(c.Item)
	}
}

// Gather returns a new column holding rows idx of c, in order.
func (c *Col) Gather(idx []int32) Col {
	out := Col{Kind: c.Kind}
	switch c.Kind {
	case KInt:
		out.Int = make([]int64, len(idx))
		for i, j := range idx {
			out.Int[i] = c.Int[j]
		}
	case KBool:
		out.Bool = make([]bool, len(idx))
		for i, j := range idx {
			out.Bool[i] = c.Bool[j]
		}
	default:
		out.Item = make([]xqt.Item, len(idx))
		for i, j := range idx {
			out.Item[i] = c.Item[j]
		}
	}
	return out
}

// Table is a named collection of columns of equal length.
type Table struct {
	N     int
	names []string
	cols  []Col
}

// NewTable returns an empty table with the given column names and kinds.
func NewTable(names []string, kinds []ColKind) *Table {
	if len(names) != len(kinds) {
		panic("ralg: names/kinds mismatch")
	}
	t := &Table{names: append([]string(nil), names...)}
	t.cols = make([]Col, len(kinds))
	for i, k := range kinds {
		t.cols[i].Kind = k
	}
	return t
}

// Names returns the column names in schema order.
func (t *Table) Names() []string { return t.names }

// Col returns the column with the given name, panicking if absent (a
// compiler bug, not a data error).
func (t *Table) Col(name string) *Col {
	for i, n := range t.names {
		if n == name {
			return &t.cols[i]
		}
	}
	panic(fmt.Sprintf("ralg: no column %q in table %v", name, t.names))
}

// HasCol reports whether the table has a column with the given name.
func (t *Table) HasCol(name string) bool {
	for _, n := range t.names {
		if n == name {
			return true
		}
	}
	return false
}

// AddCol appends a column to the schema.
func (t *Table) AddCol(name string, c Col) {
	if c.Len() != t.N && !(t.N == 0 && len(t.names) == 0) {
		panic(fmt.Sprintf("ralg: column %q length %d != %d", name, c.Len(), t.N))
	}
	if len(t.names) == 0 {
		t.N = c.Len()
	}
	t.names = append(t.names, name)
	t.cols = append(t.cols, c)
}

// Gather returns a new table holding rows idx of t, in order.
func (t *Table) Gather(idx []int32) *Table {
	out := &Table{N: len(idx), names: append([]string(nil), t.names...)}
	out.cols = make([]Col, len(t.cols))
	for i := range t.cols {
		out.cols[i] = t.cols[i].Gather(idx)
	}
	return out
}

// Ints returns the int64 payload of an integer column.
func (t *Table) Ints(name string) []int64 { return t.Col(name).Int }

// Items returns the item payload of an item column.
func (t *Table) Items(name string) []xqt.Item { return t.Col(name).Item }

// Bools returns the boolean payload of a boolean column.
func (t *Table) Bools(name string) []bool { return t.Col(name).Bool }

// String renders the table for debugging and test failure messages.
func (t *Table) String() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.names, "|"))
	sb.WriteString("\n")
	for r := 0; r < t.N && r < 50; r++ {
		for i := range t.cols {
			if i > 0 {
				sb.WriteString(" ")
			}
			c := &t.cols[i]
			switch c.Kind {
			case KInt:
				fmt.Fprintf(&sb, "%d", c.Int[r])
			case KBool:
				fmt.Fprintf(&sb, "%v", c.Bool[r])
			default:
				it := c.Item[r]
				switch it.K {
				case xqt.KNode:
					fmt.Fprintf(&sb, "node(%d,%d)", it.Cont, it.I)
				case xqt.KAttr:
					fmt.Fprintf(&sb, "attr(%d,%d)", it.Cont, it.I)
				default:
					fmt.Fprintf(&sb, "%s", it.AsString())
				}
			}
		}
		sb.WriteString("\n")
	}
	if t.N > 50 {
		fmt.Fprintf(&sb, "... (%d rows)\n", t.N)
	}
	return sb.String()
}

// compareRows compares rows i and j of t on the given columns with the
// given per-column descending flags. Items compare with xqt.SortLess
// (document order for nodes, value order for atoms).
func compareRows(t *Table, by []*Col, desc []bool, i, j int32) int {
	for k, c := range by {
		var r int
		switch c.Kind {
		case KInt:
			a, b := c.Int[i], c.Int[j]
			switch {
			case a < b:
				r = -1
			case a > b:
				r = 1
			}
		case KBool:
			a, b := c.Bool[i], c.Bool[j]
			switch {
			case !a && b:
				r = -1
			case a && !b:
				r = 1
			}
		default:
			a, b := c.Item[i], c.Item[j]
			switch {
			case xqt.SortLess(a, b):
				r = -1
			case xqt.SortLess(b, a):
				r = 1
			}
		}
		if r != 0 {
			if desc != nil && desc[k] {
				return -r
			}
			return r
		}
	}
	return 0
}

// SortIdx returns a stable permutation of t's rows ordered by the given
// columns. refinePrefix > 0 asserts that the input is already sorted on
// the first refinePrefix columns; only runs with equal prefixes are
// re-sorted (the paper's incremental refine-sort).
func SortIdx(t *Table, by []string, desc []bool, refinePrefix int) []int32 {
	cols := make([]*Col, len(by))
	for i, n := range by {
		cols[i] = t.Col(n)
	}
	idx := make([]int32, t.N)
	for i := range idx {
		idx[i] = int32(i)
	}
	if refinePrefix >= len(by) {
		return idx
	}
	if refinePrefix == 0 {
		sort.SliceStable(idx, func(a, b int) bool {
			return compareRows(t, cols, desc, idx[a], idx[b]) < 0
		})
		return idx
	}
	prefix := cols[:refinePrefix]
	suffix := cols[refinePrefix:]
	var sufDesc []bool
	if desc != nil {
		sufDesc = desc[refinePrefix:]
	}
	start := 0
	for start < t.N {
		end := start + 1
		for end < t.N && compareRows(t, prefix, nil, int32(start), int32(end)) == 0 {
			end++
		}
		run := idx[start:end]
		sort.SliceStable(run, func(a, b int) bool {
			return compareRows(t, suffix, sufDesc, run[a], run[b]) < 0
		})
		start = end
	}
	return idx
}

// IsSortedBy reports whether t is sorted on the given columns.
func IsSortedBy(t *Table, by []string) bool {
	cols := make([]*Col, len(by))
	for i, n := range by {
		cols[i] = t.Col(n)
	}
	for i := 1; i < t.N; i++ {
		if compareRows(t, cols, nil, int32(i-1), int32(i)) > 0 {
			return false
		}
	}
	return true
}
