package ralg

import (
	"math/rand"
	"testing"

	"mxq/internal/xqt"
)

// randPlan grows a random plan DAG. Previously built subplans are
// reused with some probability, so the generated DAGs exercise shared
// subtrees — the property the copier must preserve without aliasing
// the original.
func randPlan(rng *rand.Rand, depth int, pool *[]Plan) Plan {
	var p Plan
	if depth <= 0 || (len(*pool) > 0 && rng.Intn(4) == 0) {
		if len(*pool) > 0 && rng.Intn(2) == 0 {
			return (*pool)[rng.Intn(len(*pool))] // deliberate sharing
		}
		tab := NewTable(nil, nil)
		tab.AddCol("iter", Col{Kind: KInt, Int: []int64{1, 2, 3}})
		tab.AddCol("item", Col{Kind: KItem, Item: ItemsOf(xqt.Int(rng.Int63n(9)), xqt.Int(7), xqt.Str("x"))})
		p = &Lit{Tab: tab}
	} else {
		in := randPlan(rng, depth-1, pool)
		switch rng.Intn(7) {
		case 0:
			p = NewSort(in, "iter")
		case 1:
			p = NewRowNum(in, "pos", []string{"item"}, "iter")
		case 2:
			p = NewProject(in, "iter", "item")
		case 3:
			s := &Select{Cond: "flag", Neg: rng.Intn(2) == 0}
			s.SetInput(0, in)
			p = s
		case 4:
			d := &Distinct{By: []string{"iter", "item"}}
			d.SetInput(0, in)
			p = d
		case 5:
			r := randPlan(rng, depth-1, pool)
			p = NewHashJoin(in, r, "iter", "iter",
				[]ColRef{{Src: "item", Dst: "item"}}, []ColRef{{Src: "item", Dst: "ritem"}})
		default:
			r := randPlan(rng, depth-1, pool)
			p = &Union{Ins: []Plan{in, r}}
		}
	}
	*pool = append(*pool, p)
	return p
}

func nodeSet(p Plan) map[Plan]bool {
	set := map[Plan]bool{}
	Walk(p, func(n Plan) { set[n] = true })
	return set
}

// The copier must produce structurally equal, aliasing-free DAGs:
// equal under PlansEqual, no node object shared with the original, and
// subplans shared inside the original shared exactly the same way in
// the copy (same distinct-node count).
func TestCopyPlanProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	for iter := 0; iter < 200; iter++ {
		var pool []Plan
		orig := randPlan(rng, 4, &pool)
		cp := CopyPlan(orig)
		if !PlansEqual(orig, cp) {
			t.Fatalf("iteration %d: copy not structurally equal to original", iter)
		}
		on, cn := nodeSet(orig), nodeSet(cp)
		if len(on) != len(cn) {
			t.Fatalf("iteration %d: original has %d distinct nodes, copy has %d (sharing not preserved)",
				iter, len(on), len(cn))
		}
		for n := range cn {
			if on[n] {
				t.Fatalf("iteration %d: copy aliases an original node (%T)", iter, n)
			}
		}
	}
}

// Mutating a copy — annotations and wiring alike — must never reach
// the original.
func TestCopyPlanMutationIsolation(t *testing.T) {
	tab := NewTable(nil, nil)
	tab.AddCol("iter", Col{Kind: KInt, Int: []int64{1, 2}})
	shared := NewSort(&Lit{Tab: tab}, "iter")
	join := NewHashJoin(shared, shared, "iter", "iter", nil, nil)
	cp := CopyPlan(join).(*HashJoin)
	if cp.L != cp.R {
		t.Fatal("input shared in the original is not shared in the copy")
	}

	cs := cp.L.(*Sort)
	cs.By[0] = "mutated"
	cs.RefinePrefix = 7
	cp.Pos = true
	cp.SetInput(1, &Lit{Tab: tab})
	if shared.By[0] != "iter" || shared.RefinePrefix != 0 {
		t.Error("mutating the copied sort reached the original")
	}
	if join.Pos || join.R != shared {
		t.Error("mutating the copied join reached the original")
	}
	if PlansEqual(join, cp) {
		t.Error("mutated copy still reported equal to the original")
	}
}

// PlansEqual demands bijective sharing: a DAG whose two join inputs
// are one shared subplan differs from a tree with two identical but
// distinct subplans.
func TestPlansEqualSharing(t *testing.T) {
	mk := func() Plan {
		tab := NewTable(nil, nil)
		tab.AddCol("iter", Col{Kind: KInt, Int: []int64{1}})
		return NewSort(&Lit{Tab: tab}, "iter")
	}
	shared := mk()
	dag := NewHashJoin(shared, shared, "iter", "iter", nil, nil)
	tree := NewHashJoin(mk(), mk(), "iter", "iter", nil, nil)
	if PlansEqual(dag, tree) {
		t.Error("shared-input DAG reported equal to unshared tree")
	}
	if !PlansEqual(dag, CopyPlan(dag)) || !PlansEqual(tree, CopyPlan(tree)) {
		t.Error("copy of a plan not equal to that plan")
	}
}

// Replace pre-seeds the copier: occurrences of a subplan map to the
// substitute, shared occurrences to the one substitute object.
func TestCopierReplace(t *testing.T) {
	tab := NewTable(nil, nil)
	tab.AddCol("iter", Col{Kind: KInt, Int: []int64{2, 1}})
	in := &Lit{Tab: tab}
	sorted := NewSort(in, "iter")

	sub := &LitDecl{Tab: tab, Ords: [][]string{{"iter"}}}
	c := NewCopier()
	c.Replace(in, sub)
	got := c.Copy(sorted).(*Sort)
	if got.In != Plan(sub) {
		t.Fatalf("substitution not applied: input is %T", got.In)
	}
	if c.Copy(in) != Plan(sub) {
		t.Fatal("replaced subplan does not map to the substitute")
	}
	if sorted.In != Plan(in) {
		t.Fatal("substitution mutated the original plan")
	}
}
