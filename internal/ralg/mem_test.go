package ralg

import (
	"errors"
	"testing"

	"mxq/internal/xqerr"
)

func TestMemBudgetNilUnlimited(t *testing.T) {
	var m *MemBudget
	if !m.Charge(1 << 40) {
		t.Fatal("nil budget refused a charge")
	}
	if m.Exceeded() || m.Err() != nil || m.Used() != 0 || m.HighWater() != 0 || m.Limit() != 0 {
		t.Fatal("nil budget is not inert")
	}
	if NewMemBudget(0) != nil || NewMemBudget(-5) != nil {
		t.Fatal("non-positive limits must mean unlimited (nil)")
	}
}

func TestMemBudgetLatchAndError(t *testing.T) {
	m := NewMemBudget(100)
	if !m.Charge(60) || m.Exceeded() {
		t.Fatal("in-budget charge misreported")
	}
	if m.Charge(60) {
		t.Fatal("over-budget charge accepted")
	}
	if !m.Exceeded() {
		t.Fatal("exceeded flag not latched")
	}
	// the latch stays down even if usage is later released
	if m.Charge(-100); !m.Exceeded() {
		t.Fatal("latch reset by negative charge")
	}
	err := m.Err()
	if err == nil {
		t.Fatal("no error from exceeded budget")
	}
	if !xqerr.IsResourceLimit(err) {
		t.Fatalf("err = %v, want code %s", err, xqerr.CodeResourceLimit)
	}
	var qe *xqerr.Error
	if !errors.As(err, &qe) || qe.Code != xqerr.CodeResourceLimit {
		t.Fatalf("err not a typed QueryError: %v", err)
	}
	if m.HighWater() != 120 {
		t.Fatalf("high water = %d, want 120", m.HighWater())
	}
}

// An over-budget hash-join build must stop early — in both the serial
// and the partitioned parallel build — with every worker drained by the
// time buildHashTable returns (the fork-join barrier), and the exceeded
// flag latched for Run's checkpoint to surface.
func TestBuildHashTableBudgetAbort(t *testing.T) {
	rkey := make([]int64, 1<<17)
	for i := range rkey {
		rkey[i] = int64(i)
	}
	for name, par := range map[string]ParOptions{
		"serial":   {},
		"parallel": {Workers: 4, Threshold: 1},
	} {
		e := &Exec{Mem: NewMemBudget(4096), Par: par}
		h := e.buildHashTable(rkey)
		if h == nil {
			t.Fatalf("%s: nil hash table", name)
		}
		if !e.Mem.Exceeded() {
			t.Fatalf("%s: budget not exceeded after %d-entry build under a 4KiB budget", name, len(rkey))
		}
		if err := e.Mem.Err(); !xqerr.IsResourceLimit(err) {
			t.Fatalf("%s: err = %v", name, err)
		}
		// the abort must be early: nowhere near the full build charged
		if e.Mem.Used() >= int64(len(rkey))*hashEntryBytes {
			t.Fatalf("%s: build ran to completion (%d bytes charged)", name, e.Mem.Used())
		}
	}
}

// Table.MemBytes must track capacity, not length, across every column
// kind — the estimators are what the operators charge.
func TestTableMemBytes(t *testing.T) {
	tb := NewTable([]string{"iter", "flag", "item"}, []ColKind{KInt, KBool, KItem})
	if tb.MemBytes() != 0 {
		t.Fatalf("empty table MemBytes = %d", tb.MemBytes())
	}
	tb.Col("iter").Int = make([]int64, 10)
	tb.Col("flag").Bool = make([]bool, 10)
	got := tb.MemBytes()
	if got != 8*10+10 {
		t.Fatalf("MemBytes = %d, want %d", got, 8*10+10)
	}
}
