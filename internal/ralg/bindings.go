package ralg

import "mxq/internal/xqt"

// Typed binding constructors: each materializes an external variable
// binding as a uniform ItemVec in one slice assignment, without boxing
// values through xqt.Item. These are the fast paths of the prepared-
// query API (core.Prepared / mxq.Stmt); BindItems is the generic path
// for mixed or node sequences.
//
// The payload slices are adopted, not copied — callers must not mutate
// them after binding (vectors are immutable once built).

// BindInts builds an xs:integer sequence binding.
func BindInts(vs ...int64) ItemVec {
	return ItemVec{Tag: xqt.KInt, n: len(vs), I: vs}
}

// BindFloats builds an xs:double sequence binding.
func BindFloats(vs ...float64) ItemVec {
	return ItemVec{Tag: xqt.KDouble, n: len(vs), F: vs}
}

// BindStrings builds an xs:string sequence binding.
func BindStrings(vs ...string) ItemVec {
	return ItemVec{Tag: xqt.KString, n: len(vs), S: vs}
}

// BindBools builds an xs:boolean sequence binding.
func BindBools(vs ...bool) ItemVec {
	iv := make([]int64, len(vs))
	for i, b := range vs {
		if b {
			iv[i] = 1
		}
	}
	return ItemVec{Tag: xqt.KBool, n: len(vs), I: iv}
}

// BindItems builds a binding from arbitrary items (node sequences,
// mixed-kind sequences); uniform inputs still produce a uniform vector.
func BindItems(items ...xqt.Item) ItemVec {
	return NewItemVec(items)
}
