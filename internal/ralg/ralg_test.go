package ralg

import (
	"strings"
	"testing"

	"mxq/internal/scj"
	"mxq/internal/store"
	"mxq/internal/xqt"
)

func intTable(name string, vals ...int64) *Table {
	t := NewTable([]string{name}, []ColKind{KInt})
	t.N = len(vals)
	t.Col(name).Int = vals
	return t
}

func seqTable(iters []int64, poss []int64, items []xqt.Item) *Table {
	t := NewTable([]string{"iter", "pos", "item"}, []ColKind{KInt, KInt, KItem})
	t.N = len(iters)
	t.Col("iter").Int = iters
	t.Col("pos").Int = poss
	t.Col("item").Item = NewItemVec(items)
	return t
}

func run(t *testing.T, p Plan) *Table {
	t.Helper()
	pool := store.NewPool()
	tr := store.NewContainer("")
	pool.Register(tr)
	ex := NewExec(pool, tr)
	tab, err := ex.Run(p)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return tab
}

func TestProjectRename(t *testing.T) {
	in := &Lit{Tab: intTable("a", 1, 2, 3)}
	out := run(t, NewProject(in, "a->b"))
	if out.Names()[0] != "b" || out.Ints("b")[2] != 3 {
		t.Errorf("project rename failed: %v", out)
	}
}

func TestAttachAndSelect(t *testing.T) {
	tab := intTable("iter", 1, 2, 3, 4)
	tab.AddCol("c", Col{Kind: KBool, Bool: []bool{true, false, true, false}})
	in := &Lit{Tab: tab}
	f := NewFun(in, FunNot, "nc", "c")
	sel := &Select{unary: unary{In: f}, Cond: "nc"}
	out := run(t, sel)
	if out.N != 2 || out.Ints("iter")[0] != 2 || out.Ints("iter")[1] != 4 {
		t.Errorf("select: %v", out)
	}
	neg := &Select{unary: unary{In: f}, Cond: "nc", Neg: true}
	out = run(t, neg)
	if out.N != 2 || out.Ints("iter")[0] != 1 {
		t.Errorf("negated select: %v", out)
	}
	at := AttachInt(in, "k", 9)
	out = run(t, at)
	if out.Ints("k")[3] != 9 {
		t.Errorf("attach: %v", out.Ints("k"))
	}
	ai := AttachItem(in, "it", xqt.Str("v"))
	out = run(t, ai)
	if out.Items("it")[0].S != "v" {
		t.Errorf("attach item failed")
	}
}

func TestRowNumModes(t *testing.T) {
	// table with part column and values to order by
	tab := NewTable([]string{"part", "v"}, []ColKind{KInt, KInt})
	tab.N = 6
	tab.Col("part").Int = []int64{1, 2, 1, 2, 1, 3}
	tab.Col("v").Int = []int64{30, 10, 10, 20, 20, 5}

	// RankSort: ranks within part by v
	rn := NewRowNum(&Lit{Tab: tab}, "r", []string{"v"}, "part")
	out := run(t, rn)
	want := []int64{3, 1, 1, 2, 2, 1}
	for i, w := range want {
		if out.Ints("r")[i] != w {
			t.Errorf("RankSort row %d: got %d want %d", i, out.Ints("r")[i], w)
		}
	}

	// RankStream: arrival order per part
	rs := NewRowNum(&Lit{Tab: tab}, "r", nil, "part")
	rs.Mode = RankStream
	out = run(t, rs)
	want = []int64{1, 1, 2, 2, 3, 1}
	for i, w := range want {
		if out.Ints("r")[i] != w {
			t.Errorf("RankStream row %d: got %d want %d", i, out.Ints("r")[i], w)
		}
	}

	// RankSeq over part-sorted input
	tab2 := NewTable([]string{"part"}, []ColKind{KInt})
	tab2.N = 5
	tab2.Col("part").Int = []int64{1, 1, 2, 2, 2}
	rq := NewRowNum(&Lit{Tab: tab2}, "r", nil, "part")
	rq.Mode = RankSeq
	out = run(t, rq)
	want = []int64{1, 2, 1, 2, 3}
	for i, w := range want {
		if out.Ints("r")[i] != w {
			t.Errorf("RankSeq row %d: got %d want %d", i, out.Ints("r")[i], w)
		}
	}
}

func TestSortRefineEqualsFull(t *testing.T) {
	tab := NewTable([]string{"a", "b"}, []ColKind{KInt, KInt})
	tab.N = 6
	tab.Col("a").Int = []int64{1, 1, 1, 2, 2, 3} // already sorted
	tab.Col("b").Int = []int64{3, 1, 2, 2, 1, 1}
	full := NewSort(&Lit{Tab: tab}, "a", "b")
	refine := NewSort(&Lit{Tab: tab}, "a", "b")
	refine.RefinePrefix = 1
	of := run(t, full)
	or := run(t, refine)
	for i := 0; i < of.N; i++ {
		if of.Ints("b")[i] != or.Ints("b")[i] {
			t.Fatalf("refine sort differs at %d: %v vs %v", i, of.Ints("b"), or.Ints("b"))
		}
	}
	if !IsSortedBy(of, []string{"a", "b"}) {
		t.Error("full sort output unsorted")
	}
}

func TestHashJoinAndPositional(t *testing.T) {
	l := intTable("k", 3, 1, 2, 3)
	r := NewTable([]string{"k2", "v"}, []ColKind{KInt, KInt})
	r.N = 3
	r.Col("k2").Int = []int64{1, 2, 3} // dense
	r.Col("v").Int = []int64{10, 20, 30}
	j := NewHashJoin(&Lit{Tab: l}, &Lit{Tab: r}, "k", "k2",
		Refs("k"), Refs("v"))
	out := run(t, j)
	wantV := []int64{30, 10, 20, 30}
	for i, w := range wantV {
		if out.Ints("v")[i] != w {
			t.Errorf("hash join row %d: v=%d want %d", i, out.Ints("v")[i], w)
		}
	}
	j2 := NewHashJoin(&Lit{Tab: l}, &Lit{Tab: r}, "k", "k2", Refs("k"), Refs("v"))
	j2.Pos = true
	out2 := run(t, j2)
	for i, w := range wantV {
		if out2.Ints("v")[i] != w {
			t.Errorf("positional join row %d: v=%d want %d", i, out2.Ints("v")[i], w)
		}
	}
}

func TestDiffAndUnionAndDistinct(t *testing.T) {
	l := intTable("k", 1, 2, 3, 4)
	r := intTable("k", 2, 4)
	d := &Diff{binary: binary{L: &Lit{Tab: l}, R: &Lit{Tab: r}}, LKey: "k", RKey: "k"}
	out := run(t, d)
	if out.N != 2 || out.Ints("k")[0] != 1 || out.Ints("k")[1] != 3 {
		t.Errorf("diff: %v", out.Ints("k"))
	}
	u := &Union{Ins: []Plan{&Lit{Tab: l}, &Lit{Tab: r}}}
	out = run(t, u)
	if out.N != 6 || out.Ints("k")[5] != 4 {
		t.Errorf("union: %v", out.Ints("k"))
	}
	dup := intTable("k", 1, 2, 1, 3, 2)
	di := &Distinct{unary: unary{In: &Lit{Tab: dup}}, By: []string{"k"}}
	out = run(t, di)
	if out.N != 3 || out.Ints("k")[0] != 1 || out.Ints("k")[2] != 3 {
		t.Errorf("distinct: %v", out.Ints("k"))
	}
	sorted := intTable("k", 1, 1, 2, 3, 3)
	dm := &Distinct{unary: unary{In: &Lit{Tab: sorted}}, By: []string{"k"}, Merge: true}
	out = run(t, dm)
	if out.N != 3 {
		t.Errorf("merge distinct: %v", out.Ints("k"))
	}
}

func TestAggr(t *testing.T) {
	tab := seqTable(
		[]int64{1, 1, 2, 3, 3, 3},
		[]int64{1, 2, 1, 1, 2, 3},
		[]xqt.Item{xqt.Int(5), xqt.Int(7), xqt.Double(2.5), xqt.Int(1), xqt.Int(9), xqt.Int(2)},
	)
	cases := []struct {
		op   AggOp
		want map[int64]xqt.Item
	}{
		{AggCount, map[int64]xqt.Item{1: xqt.Int(2), 2: xqt.Int(1), 3: xqt.Int(3)}},
		{AggSum, map[int64]xqt.Item{1: xqt.Int(12), 2: xqt.Double(2.5), 3: xqt.Int(12)}},
		{AggMin, map[int64]xqt.Item{1: xqt.Int(5), 2: xqt.Double(2.5), 3: xqt.Int(1)}},
		{AggMax, map[int64]xqt.Item{1: xqt.Int(7), 2: xqt.Double(2.5), 3: xqt.Int(9)}},
		{AggAvg, map[int64]xqt.Item{1: xqt.Double(6), 2: xqt.Double(2.5), 3: xqt.Double(4)}},
	}
	for _, c := range cases {
		a := &Aggr{unary: unary{In: &Lit{Tab: tab}}, Part: "iter", Op: c.op, Arg: "item", Out: "v"}
		out := run(t, a)
		if out.N != 3 {
			t.Fatalf("aggr %d: %d groups", c.op, out.N)
		}
		for i := 0; i < out.N; i++ {
			p := out.Ints("iter")[i]
			if got := out.Items("v")[i]; got != c.want[p] {
				t.Errorf("aggr op=%d part=%d: got %+v want %+v", c.op, p, got, c.want[p])
			}
		}
	}
}

func TestExistJoinEq(t *testing.T) {
	// Figure 8(a): eq join with duplicate elimination
	l := seqTable([]int64{1, 2, 2}, []int64{1, 1, 2},
		[]xqt.Item{xqt.Int(20), xqt.Int(30), xqt.Int(20)})
	r := seqTable([]int64{1, 1, 2, 2}, []int64{1, 2, 1, 2},
		[]xqt.Item{xqt.Int(20), xqt.Int(20), xqt.Int(10), xqt.Int(30)})
	j := &ExistJoin{binary: binary{L: &Lit{Tab: l}, R: &Lit{Tab: r}},
		Cmp: xqt.CmpEq, LIter: "iter", LItem: "item", RIter: "iter", RItem: "item",
		Out1: "iter1", Out2: "iter2"}
	out := run(t, j)
	want := [][2]int64{{1, 1}, {2, 1}, {2, 2}}
	if out.N != len(want) {
		t.Fatalf("eq join pairs: %d, want %d\n%s", out.N, len(want), out)
	}
	for i, w := range want {
		if out.Ints("iter1")[i] != w[0] || out.Ints("iter2")[i] != w[1] {
			t.Errorf("pair %d: (%d,%d) want %v", i, out.Ints("iter1")[i], out.Ints("iter2")[i], w)
		}
	}
}

func TestExistJoinLtBothStrategies(t *testing.T) {
	// Figure 8(b): lt join after min/max aggregation
	l := seqTable([]int64{1, 2}, []int64{1, 1},
		[]xqt.Item{xqt.Int(1), xqt.Int(15)}) // min per iter
	r := seqTable([]int64{1, 2}, []int64{1, 1},
		[]xqt.Item{xqt.Int(10), xqt.Int(30)}) // max per iter
	for _, strat := range []ThetaStrategy{ThetaNestedLoop, ThetaIndex, ThetaAuto} {
		j := &ExistJoin{binary: binary{L: &Lit{Tab: l}, R: &Lit{Tab: r}},
			Cmp: xqt.CmpLt, LIter: "iter", LItem: "item", RIter: "iter", RItem: "item",
			Out1: "iter1", Out2: "iter2", Strategy: strat}
		out := run(t, j)
		want := [][2]int64{{1, 1}, {1, 2}, {2, 2}}
		if out.N != len(want) {
			t.Fatalf("strategy %d: %d pairs want %d", strat, out.N, len(want))
		}
		for i, w := range want {
			if out.Ints("iter1")[i] != w[0] || out.Ints("iter2")[i] != w[1] {
				t.Errorf("strategy %d pair %d: (%d,%d) want %v", strat, i,
					out.Ints("iter1")[i], out.Ints("iter2")[i], w)
			}
		}
	}
}

func TestExistJoinUntypedVsNumeric(t *testing.T) {
	// untyped "20" must join numerically with integer 20
	l := seqTable([]int64{1}, []int64{1}, []xqt.Item{xqt.Untyped("20")})
	r := seqTable([]int64{1}, []int64{1}, []xqt.Item{xqt.Int(20)})
	j := &ExistJoin{binary: binary{L: &Lit{Tab: l}, R: &Lit{Tab: r}},
		Cmp: xqt.CmpEq, LIter: "iter", LItem: "item", RIter: "iter", RItem: "item",
		Out1: "a", Out2: "b"}
	out := run(t, j)
	if out.N != 1 {
		t.Errorf("untyped/numeric eq join: %d pairs, want 1", out.N)
	}
}

func TestStepChild(t *testing.T) {
	pool := store.NewPool()
	c, err := store.Shred("d", strings.NewReader(`<a><b/><c><b/></c></a>`), false)
	if err != nil {
		t.Fatal(err)
	}
	pool.Register(c)
	tr := store.NewContainer("")
	pool.Register(tr)
	// context: <a> (pre 1) in iterations 1 and 2
	ctx := NewTable([]string{"iter", "item"}, []ColKind{KInt, KItem})
	ctx.N = 2
	ctx.Col("iter").Int = []int64{1, 2}
	ctx.Col("item").Item = ItemsOf(xqt.Node(c.ID, 1), xqt.Node(c.ID, 1))
	st := &Step{unary: unary{In: &Lit{Tab: ctx}}, Axis: scj.Child,
		Test: scj.Test{Kind: scj.TestElem, Name: "b"}, IterCol: "iter", ItemCol: "item"}
	ex := NewExec(pool, tr)
	out, err := ex.Run(st)
	if err != nil {
		t.Fatal(err)
	}
	if out.N != 2 { // <b> at pre 2 for both iterations
		t.Fatalf("step result: %d rows\n%s", out.N, out)
	}
	if out.Items("item")[0].Pre() != 2 || out.Ints("iter")[1] != 2 {
		t.Errorf("step output wrong: %s", out)
	}
}

func TestStepRejectsUnsortedInput(t *testing.T) {
	pool := store.NewPool()
	c, _ := store.Shred("d", strings.NewReader(`<a><b/></a>`), false)
	pool.Register(c)
	ctx := NewTable([]string{"iter", "item"}, []ColKind{KInt, KItem})
	ctx.N = 2
	ctx.Col("iter").Int = []int64{1, 1}
	ctx.Col("item").Item = ItemsOf(xqt.Node(c.ID, 2), xqt.Node(c.ID, 1))
	st := &Step{unary: unary{In: &Lit{Tab: ctx}}, Axis: scj.Child,
		Test: scj.Test{Kind: scj.TestNode}, IterCol: "iter", ItemCol: "item"}
	ex := NewExec(pool, nil)
	if _, err := ex.Run(st); err == nil {
		t.Fatal("expected sort-contract violation error")
	}
}

func TestElemConstruct(t *testing.T) {
	pool := store.NewPool()
	src, _ := store.Shred("d", strings.NewReader(`<x><y>inner</y></x>`), false)
	pool.Register(src)
	tr := store.NewContainer("")
	pool.Register(tr)
	loop := intTable("iter", 1, 2)
	content := seqTable(
		[]int64{1, 1, 2},
		[]int64{1, 2, 1},
		[]xqt.Item{xqt.Str("hello"), xqt.Node(src.ID, 2), xqt.Int(42)},
	)
	aval := seqTable([]int64{1, 2}, []int64{1, 1},
		[]xqt.Item{xqt.Str("a1"), xqt.Str("a2")})
	ec := &ElemConstruct{Loop: &Lit{Tab: loop}, Content: &Lit{Tab: content},
		Attrs: []AttrSpec{{Attr: "k", Parts: []Plan{&Lit{Tab: aval}}}}, Tag: "out"}
	ex := NewExec(pool, tr)
	res, err := ex.Run(ec)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 2 {
		t.Fatalf("constructed %d elements", res.N)
	}
	var sb strings.Builder
	store.Serialize(&sb, tr, int32(res.Items("item")[0].I))
	if want := `<out k="a1">hello<y>inner</y></out>`; sb.String() != want {
		t.Errorf("elem 1: %s want %s", sb.String(), want)
	}
	sb.Reset()
	store.Serialize(&sb, tr, int32(res.Items("item")[1].I))
	if want := `<out k="a2">42</out>`; sb.String() != want {
		t.Errorf("elem 2: %s want %s", sb.String(), want)
	}
}

func TestEBVAndCardCheck(t *testing.T) {
	tab := seqTable(
		[]int64{1, 2, 3, 3},
		[]int64{1, 1, 1, 2},
		[]xqt.Item{xqt.Bool(false), xqt.Str("x"), xqt.Int(1), xqt.Int(2)},
	)
	ebv := &EBV{unary: unary{In: &Lit{Tab: tab}}, Part: "iter", Item: "item", Out: "b"}
	pool := store.NewPool()
	ex := NewExec(pool, nil)
	out, err := ex.Run(ebv)
	if err == nil {
		t.Fatalf("EBV of 2-atom group must error, got %v", out)
	}
	tab2 := seqTable([]int64{1, 2}, []int64{1, 1},
		[]xqt.Item{xqt.Bool(false), xqt.Str("x")})
	out, err = NewExec(pool, nil).Run(&EBV{unary: unary{In: &Lit{Tab: tab2}}, Part: "iter", Item: "item", Out: "b"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Bools("b")[0] != false || out.Bools("b")[1] != true {
		t.Errorf("EBV: %v", out.Bools("b"))
	}
	cc := &CardCheck{unary: unary{In: &Lit{Tab: tab}}, Part: "iter", AtMostOne: true, Fn: "fn:zero-or-one"}
	if _, err := NewExec(pool, nil).Run(cc); err == nil {
		t.Error("CardCheck must reject the 2-row group")
	}
}

func TestCountOps(t *testing.T) {
	l := &Lit{Tab: intTable("k", 1)}
	j := NewHashJoin(l, l, "k", "k", Refs("k"), nil)
	p := NewProject(j, "k")
	ops, joins := CountOps(p)
	if ops != 3 || joins != 1 {
		t.Errorf("CountOps = %d, %d", ops, joins)
	}
}

func TestCrossLimit(t *testing.T) {
	big := make([]int64, 10000)
	l := intTable("a", big...)
	r := intTable("b", big...)
	cr := &Cross{binary: binary{L: &Lit{Tab: l}, R: &Lit{Tab: r}},
		LCols: Refs("a"), RCols: Refs("b")}
	pool := store.NewPool()
	if _, err := NewExec(pool, nil).Run(cr); err == nil {
		t.Error("oversized cross product must fail")
	}
}
