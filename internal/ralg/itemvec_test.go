package ralg

import (
	"math"
	"math/rand"
	"testing"

	"mxq/internal/store"
	"mxq/internal/xqt"
)

func randItem(rng *rand.Rand) xqt.Item {
	switch rng.Intn(7) {
	case 0:
		return xqt.Int(int64(rng.Intn(100) - 50))
	case 1:
		return xqt.Double(float64(rng.Intn(100)) / 4)
	case 2:
		return xqt.Str(string(rune('a' + rng.Intn(26))))
	case 3:
		return xqt.Untyped(string(rune('A' + rng.Intn(26))))
	case 4:
		return xqt.Bool(rng.Intn(2) == 0)
	case 5:
		return xqt.Node(int32(rng.Intn(3)), int32(rng.Intn(1000)))
	default:
		return xqt.Attr(int32(rng.Intn(3)), int32(rng.Intn(100)))
	}
}

// TestItemVecRoundTrip: any item sequence survives the typed-vector
// representation exactly (At, Slice, Append agree with the source).
func TestItemVecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(40)
		items := make([]xqt.Item, n)
		for i := range items {
			items[i] = randItem(rng)
		}
		v := NewItemVec(items)
		if v.Len() != n {
			t.Fatalf("Len = %d, want %d", v.Len(), n)
		}
		for i, want := range items {
			if got := v.At(i); got != want {
				t.Fatalf("trial %d row %d: At = %+v, want %+v", trial, i, got, want)
			}
			if v.KindAt(i) != want.K {
				t.Fatalf("KindAt(%d) = %v, want %v", i, v.KindAt(i), want.K)
			}
		}
		for i, got := range v.Slice() {
			if got != items[i] {
				t.Fatalf("Slice[%d] = %+v, want %+v", i, got, items[i])
			}
		}
	}
}

// TestItemVecUniformDetection: single-kind sequences keep the uniform
// representation (no tag vector), mixed ones do not.
func TestItemVecUniformDetection(t *testing.T) {
	u := ItemsOf(xqt.Int(1), xqt.Int(2), xqt.Int(3))
	if k, ok := u.Uniform(); !ok || k != xqt.KInt {
		t.Errorf("int column: Uniform = (%v, %v)", k, ok)
	}
	if u.Tags != nil {
		t.Error("uniform column materialized a tag vector")
	}
	m := ItemsOf(xqt.Int(1), xqt.Str("x"))
	if _, ok := m.Uniform(); ok {
		t.Error("mixed column reported uniform")
	}
	if got := m.At(0); got != xqt.Int(1) {
		t.Errorf("mixed At(0) = %+v", got)
	}
	if got := m.At(1); got != xqt.Str("x") {
		t.Errorf("mixed At(1) = %+v", got)
	}
	// going mixed after a uniform prefix backfills the tags
	u.Append(xqt.Double(2.5))
	if _, ok := u.Uniform(); ok {
		t.Error("column stayed uniform after a foreign append")
	}
	want := []xqt.Item{xqt.Int(1), xqt.Int(2), xqt.Int(3), xqt.Double(2.5)}
	for i, w := range want {
		if u.At(i) != w {
			t.Errorf("row %d = %+v, want %+v", i, u.At(i), w)
		}
	}
}

// TestItemVecAppendVecAndGather: concatenation and gathering preserve
// values for every uniform/mixed combination.
func TestItemVecAppendVecAndGather(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	mk := func(uniform bool, n int) ([]xqt.Item, ItemVec) {
		items := make([]xqt.Item, n)
		for i := range items {
			if uniform {
				items[i] = xqt.Int(int64(i))
			} else {
				items[i] = randItem(rng)
			}
		}
		return items, NewItemVec(items)
	}
	for _, du := range []bool{true, false} {
		for _, su := range []bool{true, false} {
			dItems, dst := mk(du, 5)
			sItems, src := mk(su, 7)
			dst.AppendVec(&src)
			all := append(append([]xqt.Item(nil), dItems...), sItems...)
			if dst.Len() != len(all) {
				t.Fatalf("AppendVec length %d, want %d", dst.Len(), len(all))
			}
			for i, w := range all {
				if dst.At(i) != w {
					t.Fatalf("du=%v su=%v row %d: %+v want %+v", du, su, i, dst.At(i), w)
				}
			}
			idx := []int32{11, 0, 3, 3, 9}
			g := dst.Gather(idx)
			for i, j := range idx {
				if g.At(i) != all[j] {
					t.Fatalf("gather row %d: %+v want %+v", i, g.At(i), all[j])
				}
			}
		}
	}
}

// TestItemVecGrowRows: bulk-grown node rows are writable through the raw
// payload vectors (the Step output path).
func TestItemVecGrowRows(t *testing.T) {
	var v ItemVec
	v.Append(xqt.Node(1, 7))
	base := v.growRows(xqt.KNode, 3)
	for k := 0; k < 3; k++ {
		v.Cont[base+k] = 2
		v.I[base+k] = int64(10 + k)
	}
	if k, ok := v.Uniform(); !ok || k != xqt.KNode {
		t.Fatalf("node column not uniform: (%v, %v)", k, ok)
	}
	want := []xqt.Item{xqt.Node(1, 7), xqt.Node(2, 10), xqt.Node(2, 11), xqt.Node(2, 12)}
	for i, w := range want {
		if v.At(i) != w {
			t.Errorf("row %d = %+v, want %+v", i, v.At(i), w)
		}
	}
	// growing a different kind breaks uniformity but keeps the values
	b2 := v.growRows(xqt.KUntyped, 1)
	v.S[b2] = "tail"
	if _, ok := v.Uniform(); ok {
		t.Error("column stayed uniform after growing a foreign kind")
	}
	if v.At(4) != xqt.Untyped("tail") {
		t.Errorf("row 4 = %+v", v.At(4))
	}
	if v.At(0) != xqt.Node(1, 7) {
		t.Errorf("row 0 corrupted: %+v", v.At(0))
	}
}

// TestItemVecEmptyLeast: the order-by empty-sequence sentinel survives
// the vector representation and still ranks before every value.
func TestItemVecEmptyLeast(t *testing.T) {
	v := ItemsOf(xqt.EmptyLeast, xqt.Int(-1<<60))
	a, b := v.At(0), v.At(1)
	if !xqt.IsEmptyLeast(a) {
		t.Fatalf("EmptyLeast did not round-trip: %+v", a)
	}
	if !xqt.SortLess(a, b) || xqt.SortLess(b, a) {
		t.Error("EmptyLeast must sort before any value after the round-trip")
	}
}

// demote returns a copy of v with the tag vector materialized, so the
// executor treats it as mixed and takes the per-row polymorphic path —
// the reference implementation for the kernel-agreement test below.
func demote(v ItemVec) ItemVec {
	out := v
	out.Tags = make([]xqt.Kind, v.Len())
	for i := range out.Tags {
		out.Tags[i] = v.Tag
	}
	return out
}

// TestExecFunVecMatchesFallback: the typed-vector kernels and the
// per-row polymorphic path must agree bit-for-bit on every op and kind
// combination (the same values run through both representations).
func TestExecFunVecMatchesFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const n = 64
	mk := func(kind xqt.Kind) ItemVec {
		items := make([]xqt.Item, n)
		for i := range items {
			switch kind {
			case xqt.KInt:
				items[i] = xqt.Int(int64(rng.Intn(21) - 10))
			case xqt.KDouble:
				items[i] = xqt.Double(float64(rng.Intn(41))/4 - 5)
			case xqt.KBool:
				items[i] = xqt.Bool(rng.Intn(2) == 0)
			case xqt.KUntyped:
				items[i] = xqt.Untyped([]string{"1", "2.5", "x", ""}[rng.Intn(4)])
			default:
				items[i] = xqt.Str([]string{"a", "ab", "b", ""}[rng.Intn(4)])
			}
		}
		return NewItemVec(items)
	}
	kinds := []xqt.Kind{xqt.KInt, xqt.KDouble, xqt.KString, xqt.KUntyped, xqt.KBool}
	binary := []FunOp{FunAdd, FunSub, FunMul, FunDiv, FunIDiv, FunMod,
		FunEq, FunNe, FunLt, FunLe, FunGt, FunGe,
		FunConcat, FunContains, FunStartsWith}
	unary := []FunOp{FunNeg, FunStringOf, FunNumber, FunFloor, FunCeil,
		FunRound, FunStrLen, FunAtomize, FunEbvAtom, FunIsNumeric}
	pool := store.NewPool()
	mkTab := func(cols ...ItemVec) *Table {
		names := []string{"a", "b"}[:len(cols)]
		tab := &Table{N: n}
		for i, c := range cols {
			tab.AddCol(names[i], Col{Kind: KItem, Item: c})
		}
		return tab
	}
	check := func(op FunOp, fast, slow *Table) {
		t.Helper()
		fc, sc := fast.Col("o"), slow.Col("o")
		if fc.Kind != sc.Kind {
			t.Fatalf("op %d: output kinds differ: %v vs %v", op, fc.Kind, sc.Kind)
		}
		for i := 0; i < n; i++ {
			switch fc.Kind {
			case KBool:
				if fc.Bool[i] != sc.Bool[i] {
					t.Fatalf("op %d row %d: %v vs %v", op, i, fc.Bool[i], sc.Bool[i])
				}
			default:
				a, b := fc.Item.At(i), sc.Item.At(i)
				// compare doubles by bit pattern so NaN == NaN
				same := a == b || (a.K == xqt.KDouble && b.K == xqt.KDouble &&
					math.Float64bits(a.F) == math.Float64bits(b.F))
				if !same {
					t.Fatalf("op %d row %d: %+v vs %+v", op, i, a, b)
				}
			}
		}
	}
	for _, op := range binary {
		for _, ka := range kinds {
			for _, kb := range kinds {
				a, b := mk(ka), mk(kb)
				fn := &Fun{Op: op, Args: []string{"a", "b"}, Out: "o"}
				ex := NewExec(pool, nil)
				fast, err := ex.execFun(fn, mkTab(a, b))
				if err != nil {
					t.Fatal(err)
				}
				slow, err := ex.execFun(fn, mkTab(demote(a), demote(b)))
				if err != nil {
					t.Fatal(err)
				}
				check(op, fast, slow)
			}
		}
	}
	for _, op := range unary {
		for _, ka := range kinds {
			a := mk(ka)
			fn := &Fun{Op: op, Args: []string{"a"}, Out: "o"}
			ex := NewExec(pool, nil)
			fast, err := ex.execFun(fn, mkTab(a))
			if err != nil {
				t.Fatal(err)
			}
			slow, err := ex.execFun(fn, mkTab(demote(a)))
			if err != nil {
				t.Fatal(err)
			}
			check(op, fast, slow)
		}
	}
}
