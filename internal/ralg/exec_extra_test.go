package ralg

import (
	"math/rand"
	"strings"
	"testing"

	"mxq/internal/store"
	"mxq/internal/xqt"
)

func TestRangeGen(t *testing.T) {
	in := NewTable([]string{"iter", "lo", "hi"}, []ColKind{KInt, KItem, KItem})
	in.N = 3
	in.Col("iter").Int = []int64{1, 2, 3}
	in.Col("lo").Item = ItemsOf(xqt.Int(1), xqt.Int(5), xqt.Int(3))
	in.Col("hi").Item = ItemsOf(xqt.Int(3), xqt.Int(4), xqt.Int(3))
	rg := &RangeGen{Iter: "iter", Lo: "lo", Hi: "hi"}
	rg.SetInput(0, &Lit{Tab: in})
	out := run(t, rg)
	// iter 1: 1,2,3; iter 2: empty (5 > 4); iter 3: 3
	if out.N != 4 {
		t.Fatalf("rows: %d\n%s", out.N, out)
	}
	if out.Ints("iter")[3] != 3 || out.Items("item")[3].I != 3 {
		t.Errorf("range output: %s", out)
	}
	if out.Ints("pos")[2] != 3 {
		t.Errorf("positions: %v", out.Ints("pos"))
	}
}

func TestColToItem(t *testing.T) {
	in := intTable("v", 7, 8)
	in.AddCol("b", Col{Kind: KBool, Bool: []bool{true, false}})
	c1 := &ColToItem{Src: "v", Dst: "vi"}
	c1.SetInput(0, &Lit{Tab: in})
	out := run(t, c1)
	if out.Items("vi")[1] != xqt.Int(8) {
		t.Errorf("int conversion: %+v", out.Items("vi"))
	}
	c2 := &ColToItem{Src: "b", Dst: "bi"}
	c2.SetInput(0, &Lit{Tab: in})
	out = run(t, c2)
	if out.Items("bi")[0] != xqt.Bool(true) {
		t.Errorf("bool conversion: %+v", out.Items("bi"))
	}
}

func TestCoverCheck(t *testing.T) {
	loop := intTable("iter", 1, 2, 3)
	partial := seqTable([]int64{1, 3}, []int64{1, 1},
		[]xqt.Item{xqt.Int(1), xqt.Int(2)})
	cc := &CoverCheck{LoopIter: "iter", Part: "iter", Fn: "fn:exactly-one"}
	cc.SetInput(0, &Lit{Tab: loop})
	cc.SetInput(1, &Lit{Tab: partial})
	pool := store.NewPool()
	if _, err := NewExec(pool, nil).Run(cc); err == nil {
		t.Error("missing iteration 2 must raise an error")
	}
	full := seqTable([]int64{1, 2, 3}, []int64{1, 1, 1},
		[]xqt.Item{xqt.Int(1), xqt.Int(2), xqt.Int(3)})
	cc2 := &CoverCheck{LoopIter: "iter", Part: "iter", Fn: "fn:exactly-one"}
	cc2.SetInput(0, &Lit{Tab: loop})
	cc2.SetInput(1, &Lit{Tab: full})
	if _, err := NewExec(pool, nil).Run(cc2); err != nil {
		t.Errorf("full cover rejected: %v", err)
	}
}

// TestExistJoinStrategiesAgree cross-checks nested-loop, index, and auto
// (choose-plan) theta-join strategies on random inputs.
func TestExistJoinStrategiesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		nl, nr := 1+rng.Intn(40), 1+rng.Intn(40)
		mk := func(n int) *Table {
			tab := NewTable([]string{"iter", "pos", "item"}, []ColKind{KInt, KInt, KItem})
			tab.N = n
			iter := int64(1)
			for i := 0; i < n; i++ {
				tab.Col("iter").Int = append(tab.Col("iter").Int, iter)
				tab.Col("pos").Int = append(tab.Col("pos").Int, 1)
				tab.Col("item").Item.Append(xqt.Int(int64(rng.Intn(20))))
				if rng.Intn(2) == 0 {
					iter++
				}
			}
			return tab
		}
		l, r := mk(nl), mk(nr)
		for _, cmp := range []xqt.CmpOp{xqt.CmpLt, xqt.CmpLe, xqt.CmpGt, xqt.CmpGe} {
			var results [][2][]int64
			for _, strat := range []ThetaStrategy{ThetaNestedLoop, ThetaIndex, ThetaAuto} {
				j := &ExistJoin{Cmp: cmp, LIter: "iter", LItem: "item",
					RIter: "iter", RItem: "item", Out1: "a", Out2: "b", Strategy: strat}
				j.SetInput(0, &Lit{Tab: l})
				j.SetInput(1, &Lit{Tab: r})
				out := run(t, j)
				results = append(results, [2][]int64{out.Ints("a"), out.Ints("b")})
			}
			for s := 1; s < len(results); s++ {
				if len(results[s][0]) != len(results[0][0]) {
					t.Fatalf("trial %d cmp %v: strategy %d produced %d pairs, want %d",
						trial, cmp, s, len(results[s][0]), len(results[0][0]))
				}
				for i := range results[0][0] {
					if results[s][0][i] != results[0][0][i] || results[s][1][i] != results[0][1][i] {
						t.Fatalf("trial %d cmp %v: strategy %d pair %d differs", trial, cmp, s, i)
					}
				}
			}
		}
	}
}

// TestExistJoinHeterogeneous exercises the per-pair promotion fallback:
// a column mixing numeric and string values joins per the XQuery rules.
func TestExistJoinHeterogeneous(t *testing.T) {
	l := seqTable([]int64{1, 2}, []int64{1, 1},
		[]xqt.Item{xqt.Int(10), xqt.Str("x")})
	r := seqTable([]int64{1, 2}, []int64{1, 1},
		[]xqt.Item{xqt.Untyped("10"), xqt.Untyped("x")})
	j := &ExistJoin{Cmp: xqt.CmpEq, LIter: "iter", LItem: "item",
		RIter: "iter", RItem: "item", Out1: "a", Out2: "b"}
	j.SetInput(0, &Lit{Tab: l})
	j.SetInput(1, &Lit{Tab: r})
	out := run(t, j)
	// 10 = untyped "10" (numeric), "x" = untyped "x" (string)
	if out.N != 2 {
		t.Fatalf("pairs: %d\n%s", out.N, out)
	}
}

func TestExistJoinEqNaNNeverMatches(t *testing.T) {
	l := seqTable([]int64{1}, []int64{1}, []xqt.Item{xqt.Untyped("abc")})
	r := seqTable([]int64{1}, []int64{1}, []xqt.Item{xqt.Int(5)})
	j := &ExistJoin{Cmp: xqt.CmpEq, LIter: "iter", LItem: "item",
		RIter: "iter", RItem: "item", Out1: "a", Out2: "b"}
	j.SetInput(0, &Lit{Tab: l})
	j.SetInput(1, &Lit{Tab: r})
	out := run(t, j)
	if out.N != 0 {
		t.Errorf("NaN matched: %s", out)
	}
}

func TestAttrStep(t *testing.T) {
	pool := store.NewPool()
	c, err := store.Shred("d", strings.NewReader(`<r a="1" b="2"><s a="3"/></r>`), false)
	if err != nil {
		t.Fatal(err)
	}
	pool.Register(c)
	ctx := NewTable([]string{"iter", "item"}, []ColKind{KInt, KItem})
	ctx.N = 3
	ctx.Col("iter").Int = []int64{1, 2, 1}
	ctx.Col("item").Item = ItemsOf(xqt.Node(c.ID, 1), xqt.Node(c.ID, 1), xqt.Node(c.ID, 2))
	srt := NewSort(&Lit{Tab: ctx}, "item", "iter")
	all := &AttrStep{IterCol: "iter", ItemCol: "item"}
	all.SetInput(0, srt)
	out, err := NewExec(pool, nil).Run(all)
	if err != nil {
		t.Fatal(err)
	}
	// r has a,b in iterations 1 and 2 (4 rows); s has a in iteration 1
	if out.N != 5 {
		t.Fatalf("attr rows: %d\n%s", out.N, out)
	}
	named := &AttrStep{NameTest: "a", IterCol: "iter", ItemCol: "item"}
	named.SetInput(0, srt)
	out, err = NewExec(pool, nil).Run(named)
	if err != nil {
		t.Fatal(err)
	}
	if out.N != 3 {
		t.Fatalf("named attr rows: %d\n%s", out.N, out)
	}
}

func TestUnionMultipleInputs(t *testing.T) {
	u := &Union{Ins: []Plan{
		&Lit{Tab: intTable("k", 1)},
		&Lit{Tab: intTable("k", 2, 3)},
		&Lit{Tab: intTable("k")},
		&Lit{Tab: intTable("k", 4)},
	}}
	out := run(t, u)
	if out.N != 4 || out.Ints("k")[3] != 4 {
		t.Errorf("union: %v", out.Ints("k"))
	}
}

func TestSortDescending(t *testing.T) {
	tab := intTable("k", 2, 1, 3)
	s := NewSort(&Lit{Tab: tab}, "k")
	s.Desc = []bool{true}
	out := run(t, s)
	if out.Ints("k")[0] != 3 || out.Ints("k")[2] != 1 {
		t.Errorf("desc sort: %v", out.Ints("k"))
	}
}

func TestMemoizationSharesResults(t *testing.T) {
	shared := NewSort(&Lit{Tab: intTable("k", 3, 1, 2)}, "k")
	u := &Union{Ins: []Plan{shared, shared}}
	pool := store.NewPool()
	ex := NewExec(pool, nil)
	out, err := ex.Run(u)
	if err != nil {
		t.Fatal(err)
	}
	if out.N != 6 {
		t.Errorf("rows: %d", out.N)
	}
	if ex.Stats.FullSorts != 1 {
		t.Errorf("shared subplan sorted %d times, want 1", ex.Stats.FullSorts)
	}
}
