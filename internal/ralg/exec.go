package ralg

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"mxq/internal/scj"
	"mxq/internal/store"
	"mxq/internal/xqt"
)

// ExecStats accumulates runtime counters across one plan execution.
type ExecStats struct {
	Step       scj.Stats // staircase join counters
	SortedRows int64     // rows passed through sort operators
	FullSorts  int64     // sort operators that ran a full (non-refine) sort
	RefineSort int64     // sort operators that ran in refine mode
	HashJoins  int64
	PosJoins   int64
	ThetaNL    int64 // theta joins executed nested-loop
	ThetaIdx   int64 // theta joins executed via transient index
	ExistAggr  int64 // theta joins reduced to per-iter extrema (Fig. 8b)
	CrossRows  int64 // rows produced by Cartesian products
}

// MaxRows bounds intermediate result sizes; exceeding it aborts the query
// with an error (the unoptimized Cartesian-product plans of Figure 13 hit
// this on large documents, like the "materialization out of bounds"
// failures the paper reports for Galax).
const MaxRows = 64 << 20

// Exec evaluates plan DAGs against a container pool. Shared sub-plans are
// evaluated once and their results re-used. Setting Par enables
// intra-query parallel operator execution (see parallel.go); the output
// is identical to serial execution either way. One Exec evaluates one
// query; concurrent queries each get their own Exec (and their own
// transient container), sharing only the read-only document containers.
type Exec struct {
	Pool      *store.Pool
	Transient *store.Container
	Stats     ExecStats
	Par       ParOptions

	memo map[Plan]*Table
}

// NewExec returns an executor over the given pool. Transient nodes
// constructed during execution are placed in transient, which must be
// registered with the pool.
func NewExec(pool *store.Pool, transient *store.Container) *Exec {
	return &Exec{Pool: pool, Transient: transient, memo: make(map[Plan]*Table)}
}

// Run evaluates the plan and returns its result table.
func (e *Exec) Run(p Plan) (*Table, error) {
	if t, ok := e.memo[p]; ok {
		return t, nil
	}
	in := make([]*Table, 0, 4)
	for _, c := range p.Inputs() {
		t, err := e.Run(c)
		if err != nil {
			return nil, err
		}
		in = append(in, t)
	}
	t, err := e.apply(p, in)
	if err != nil {
		return nil, err
	}
	if t.N > MaxRows {
		return nil, fmt.Errorf("ralg: intermediate result of %s exceeds %d rows", p.Name(), MaxRows)
	}
	e.memo[p] = t
	return t, nil
}

func (e *Exec) apply(p Plan, in []*Table) (*Table, error) {
	switch n := p.(type) {
	case *Lit:
		return n.Tab, nil
	case *DocRoot:
		return e.execDocRoot(n)
	case *Project:
		return execProject(n, in[0])
	case *Attach:
		return execAttach(n, in[0]), nil
	case *Select:
		return e.execSelect(n, in[0]), nil
	case *Fun:
		return e.execFun(n, in[0])
	case *RowNum:
		return e.execRowNum(n, in[0]), nil
	case *Sort:
		return e.execSort(n, in[0]), nil
	case *HashJoin:
		return e.execHashJoin(n, in[0], in[1])
	case *ExistJoin:
		return e.execExistJoin(n, in[0], in[1])
	case *Cross:
		return e.execCross(n, in[0], in[1])
	case *Union:
		return execUnion(in), nil
	case *Diff:
		return execDiff(n, in[0], in[1]), nil
	case *Distinct:
		return execDistinct(n, in[0]), nil
	case *Aggr:
		return e.execAggr(n, in[0])
	case *Step:
		return e.execStep(n, in[0])
	case *AttrStep:
		return e.execAttrStep(n, in[0])
	case *ElemConstruct:
		return e.execElem(n, in)
	case *EBV:
		return execEBV(n, in[0])
	case *CardCheck:
		return execCardCheck(n, in[0])
	case *ColToItem:
		return execColToItem(n, in[0]), nil
	case *RangeGen:
		return execRangeGen(n, in[0])
	case *CoverCheck:
		return execCoverCheck(n, in[0], in[1])
	}
	return nil, fmt.Errorf("ralg: unknown operator %T", p)
}

func execColToItem(n *ColToItem, in *Table) *Table {
	src := in.Col(n.Src)
	items := make([]xqt.Item, in.N)
	switch src.Kind {
	case KInt:
		for i, v := range src.Int {
			items[i] = xqt.Int(v)
		}
	case KBool:
		for i, v := range src.Bool {
			items[i] = xqt.Bool(v)
		}
	default:
		copy(items, src.Item)
	}
	out := &Table{N: in.N, names: append([]string(nil), in.names...), cols: append([]Col(nil), in.cols...)}
	out.names = append(out.names, n.Dst)
	out.cols = append(out.cols, Col{Kind: KItem, Item: items})
	return out
}

func execRangeGen(n *RangeGen, in *Table) (*Table, error) {
	iters := in.Ints(n.Iter)
	lo := in.Items(n.Lo)
	hi := in.Items(n.Hi)
	out := NewTable([]string{"iter", "pos", "item"}, []ColKind{KInt, KInt, KItem})
	ic, pc, tc := out.Col("iter"), out.Col("pos"), out.Col("item")
	for i := range iters {
		a := int64(lo[i].AsDouble())
		b := int64(hi[i].AsDouble())
		if b-a > MaxRows {
			return nil, fmt.Errorf("ralg: range %d to %d too large", a, b)
		}
		pos := int64(1)
		for v := a; v <= b; v++ {
			ic.Int = append(ic.Int, iters[i])
			pc.Int = append(pc.Int, pos)
			tc.Item = append(tc.Item, xqt.Int(v))
			pos++
		}
	}
	out.N = ic.Len()
	return out, nil
}

func execCoverCheck(n *CoverCheck, loop, in *Table) (*Table, error) {
	have := make(map[int64]bool, in.N)
	for _, it := range in.Ints(n.Part) {
		have[it] = true
	}
	for _, it := range loop.Ints(n.LoopIter) {
		if !have[it] {
			return nil, fmt.Errorf("xquery error FORG0005: %s applied to an empty sequence", n.Fn)
		}
	}
	return in, nil
}

func (e *Exec) execDocRoot(n *DocRoot) (*Table, error) {
	c, ok := e.Pool.ByName(n.Doc)
	if !ok {
		return nil, fmt.Errorf("ralg: document %q not loaded", n.Doc)
	}
	t := NewTable([]string{"pos", "item"}, []ColKind{KInt, KItem})
	t.N = 1
	t.Col("pos").Int = []int64{1}
	t.Col("item").Item = []xqt.Item{xqt.Node(c.ID, 0)}
	return t, nil
}

func execProject(n *Project, in *Table) (*Table, error) {
	out := &Table{N: in.N}
	for _, ref := range n.Cols {
		if !in.HasCol(ref.Src) {
			return nil, fmt.Errorf("ralg: project: no column %q in %v", ref.Src, in.Names())
		}
		out.names = append(out.names, ref.Dst)
		out.cols = append(out.cols, *in.Col(ref.Src))
	}
	return out, nil
}

func execAttach(n *Attach, in *Table) *Table {
	out := &Table{N: in.N, names: append([]string(nil), in.names...), cols: append([]Col(nil), in.cols...)}
	c := Col{Kind: n.Kind}
	switch n.Kind {
	case KInt:
		c.Int = make([]int64, in.N)
		for i := range c.Int {
			c.Int[i] = n.I
		}
	case KBool:
		c.Bool = make([]bool, in.N)
		for i := range c.Bool {
			c.Bool[i] = n.B
		}
	default:
		c.Item = make([]xqt.Item, in.N)
		for i := range c.Item {
			c.Item[i] = n.It
		}
	}
	out.names = append(out.names, n.Col)
	out.cols = append(out.cols, c)
	return out
}

func (e *Exec) execSelect(n *Select, in *Table) *Table {
	cond := in.Bools(n.Cond)
	if !e.Par.on(in.N) {
		idx := make([]int32, 0, in.N/2)
		for i, b := range cond {
			if b != n.Neg {
				idx = append(idx, int32(i))
			}
		}
		return in.Gather(idx)
	}
	rs := splitRows(in.N, e.Par.Workers)
	parts := make([][]int32, len(rs))
	e.Par.parRun(len(rs), func(k int) {
		local := make([]int32, 0, (rs[k][1]-rs[k][0])/2+1)
		for i := rs[k][0]; i < rs[k][1]; i++ {
			if cond[i] != n.Neg {
				local = append(local, int32(i))
			}
		}
		parts[k] = local
	})
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	idx := make([]int32, 0, total)
	for _, p := range parts {
		idx = append(idx, p...)
	}
	return e.gather(in, idx)
}

// seqRank numbers rows 1.. per contiguous part run within [lo, hi); lo
// must start a run.
func seqRank(part, rank []int64, lo, hi int) {
	var cur int64
	var k int64
	for i := lo; i < hi; i++ {
		if i == lo || part[i] != cur {
			cur, k = part[i], 0
		}
		k++
		rank[i] = k
	}
}

func (e *Exec) execRowNum(n *RowNum, in *Table) *Table {
	rank := make([]int64, in.N)
	switch n.Mode {
	case RankStream:
		// hash-based numbering in arrival order per group (§4.1): valid
		// under grpord(OrderBy, Part)
		if n.Part == "" {
			e.parFill(in.N, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					rank[i] = int64(i) + 1
				}
			})
		} else if part := in.Ints(n.Part); e.Par.on(in.N) && int64sNonDecreasing(part) {
			// clustered groups: arrival-order counters equal run-local
			// numbering, which partitions at group boundaries
			rs := splitRuns(in.N, e.Par.Workers, func(i int) bool { return part[i] != part[i-1] })
			e.Par.parRun(len(rs), func(k int) { seqRank(part, rank, rs[k][0], rs[k][1]) })
		} else {
			ctr := make(map[int64]int64, 64)
			for i := range rank {
				ctr[part[i]]++
				rank[i] = ctr[part[i]]
			}
		}
	case RankSeq:
		if n.Part == "" {
			e.parFill(in.N, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					rank[i] = int64(i) + 1
				}
			})
		} else if part := in.Ints(n.Part); e.Par.on(in.N) {
			// the RankSeq contract guarantees (Part, OrderBy) sort order,
			// so group-aligned chunks number independently
			rs := splitRuns(in.N, e.Par.Workers, func(i int) bool { return part[i] != part[i-1] })
			e.Par.parRun(len(rs), func(k int) { seqRank(part, rank, rs[k][0], rs[k][1]) })
		} else {
			seqRank(part, rank, 0, in.N)
		}
	default: // RankSort
		by := n.OrderBy
		desc := n.Desc
		if n.Part != "" {
			by = append([]string{n.Part}, by...)
			desc = append([]bool{false}, desc...)
			for len(desc) < len(by) {
				desc = append(desc, false)
			}
		}
		idx := SortIdx(in, by, desc, 0)
		if n.Part == "" {
			for r, i := range idx {
				rank[i] = int64(r) + 1
			}
		} else {
			part := in.Ints(n.Part)
			var cur int64
			var k int64
			for r, i := range idx {
				if r == 0 || part[i] != cur {
					cur, k = part[i], 0
				}
				k++
				rank[i] = k
			}
		}
	}
	out := &Table{N: in.N, names: append([]string(nil), in.names...), cols: append([]Col(nil), in.cols...)}
	out.names = append(out.names, n.Out)
	out.cols = append(out.cols, Col{Kind: KInt, Int: rank})
	return out
}

func (e *Exec) execSort(n *Sort, in *Table) *Table {
	e.Stats.SortedRows += int64(in.N)
	if n.RefinePrefix >= len(n.By) {
		return in
	}
	if n.RefinePrefix > 0 {
		e.Stats.RefineSort++
	} else {
		e.Stats.FullSorts++
	}
	idx := SortIdx(in, n.By, n.Desc, n.RefinePrefix)
	return in.Gather(idx)
}

func (e *Exec) execHashJoin(n *HashJoin, l, r *Table) (*Table, error) {
	lkey := l.Ints(n.LKey)
	rkey := r.Ints(n.RKey)
	var lidx, ridx []int32
	if n.Pos && r.N > 0 {
		e.Stats.PosJoins++
		base := rkey[0]
		lidx, ridx = e.parPairs(l.N, func(lo, hi int) ([]int32, []int32) {
			var li, ri []int32
			for i := lo; i < hi; i++ {
				j := lkey[i] - base
				if j >= 0 && j < int64(r.N) {
					li = append(li, int32(i))
					ri = append(ri, int32(j))
				}
			}
			return li, ri
		})
	} else if n.PosLeft && l.N > 0 {
		e.Stats.PosJoins++
		base := lkey[0]
		lidx, ridx = e.parPairs(r.N, func(lo, hi int) ([]int32, []int32) {
			var li, ri []int32
			for j := lo; j < hi; j++ {
				i := rkey[j] - base
				if i >= 0 && i < int64(l.N) {
					li = append(li, int32(i))
					ri = append(ri, int32(j))
				}
			}
			return li, ri
		})
	} else {
		e.Stats.HashJoins++
		ht := e.buildHashTable(rkey)
		lidx, ridx = e.parPairs(l.N, func(lo, hi int) ([]int32, []int32) {
			var li, ri []int32
			for i := lo; i < hi; i++ {
				for _, j := range ht.lookup(lkey[i]) {
					li = append(li, int32(i))
					ri = append(ri, j)
				}
			}
			return li, ri
		})
	}
	return e.joinGather(l, r, n.LCols, n.RCols, lidx, ridx)
}

func (e *Exec) joinGather(l, r *Table, lcols, rcols []ColRef, lidx, ridx []int32) (*Table, error) {
	out := &Table{N: len(lidx)}
	ncols := len(lcols) + len(rcols)
	out.names = make([]string, 0, ncols)
	out.cols = make([]Col, ncols)
	for _, ref := range lcols {
		out.names = append(out.names, ref.Dst)
	}
	for _, ref := range rcols {
		out.names = append(out.names, ref.Dst)
	}
	fill := func(i int) {
		if i < len(lcols) {
			out.cols[i] = l.Col(lcols[i].Src).Gather(lidx)
		} else {
			out.cols[i] = r.Col(rcols[i-len(lcols)].Src).Gather(ridx)
		}
	}
	if e.Par.on(len(lidx)) && ncols > 1 {
		e.Par.parRun(ncols, fill)
	} else {
		for i := 0; i < ncols; i++ {
			fill(i)
		}
	}
	return out, nil
}

func (e *Exec) execCross(n *Cross, l, r *Table) (*Table, error) {
	total := int64(l.N) * int64(r.N)
	if total > MaxRows {
		return nil, fmt.Errorf("ralg: Cartesian product of %d x %d rows exceeds limit", l.N, r.N)
	}
	e.Stats.CrossRows += total
	lidx := make([]int32, 0, total)
	ridx := make([]int32, 0, total)
	for i := 0; i < l.N; i++ {
		for j := 0; j < r.N; j++ {
			lidx = append(lidx, int32(i))
			ridx = append(ridx, int32(j))
		}
	}
	return e.joinGather(l, r, n.LCols, n.RCols, lidx, ridx)
}

func execUnion(in []*Table) *Table {
	first := in[0]
	out := &Table{}
	for _, name := range first.names {
		kind := first.Col(name).Kind
		c := Col{Kind: kind}
		for _, t := range in {
			src := t.Col(name)
			switch kind {
			case KInt:
				c.Int = append(c.Int, src.Int...)
			case KBool:
				c.Bool = append(c.Bool, src.Bool...)
			default:
				c.Item = append(c.Item, src.Item...)
			}
		}
		out.names = append(out.names, name)
		out.cols = append(out.cols, c)
	}
	if len(out.cols) > 0 {
		out.N = out.cols[0].Len()
	}
	return out
}

func execDiff(n *Diff, l, r *Table) *Table {
	rset := make(map[int64]bool, r.N)
	for _, k := range r.Ints(n.RKey) {
		rset[k] = true
	}
	var idx []int32
	for i, k := range l.Ints(n.LKey) {
		if !rset[k] {
			idx = append(idx, int32(i))
		}
	}
	return l.Gather(idx)
}

func execDistinct(n *Distinct, in *Table) *Table {
	cols := make([]*Col, len(n.By))
	for i, name := range n.By {
		cols[i] = in.Col(name)
	}
	var idx []int32
	if n.Merge {
		for i := 0; i < in.N; i++ {
			if i == 0 || compareRows(in, cols, nil, int32(i-1), int32(i)) != 0 {
				idx = append(idx, int32(i))
			}
		}
	} else {
		seen := make(map[string]bool, in.N)
		var key []byte
		for i := 0; i < in.N; i++ {
			key = rowKey(key[:0], cols, int32(i))
			if !seen[string(key)] {
				seen[string(key)] = true
				idx = append(idx, int32(i))
			}
		}
	}
	return in.Gather(idx)
}

// rowKey encodes the given columns of row i into a hashable byte key.
func rowKey(buf []byte, cols []*Col, i int32) []byte {
	for _, c := range cols {
		switch c.Kind {
		case KInt:
			buf = appendInt(buf, c.Int[i])
		case KBool:
			if c.Bool[i] {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		default:
			it := c.Item[i]
			switch it.K {
			case xqt.KNode, xqt.KAttr:
				buf = append(buf, byte(it.K))
				buf = appendInt(buf, int64(it.Cont))
				buf = appendInt(buf, it.I)
			case xqt.KInt, xqt.KBool:
				buf = append(buf, 'n')
				buf = appendInt(buf, int64(math.Float64bits(float64(it.I))))
			case xqt.KDouble:
				buf = append(buf, 'n')
				buf = appendInt(buf, int64(math.Float64bits(it.F)))
			default:
				buf = append(buf, 's')
				buf = append(buf, it.S...)
			}
		}
		buf = append(buf, 0xff)
	}
	return buf
}

func appendInt(buf []byte, v int64) []byte {
	for s := 56; s >= 0; s -= 8 {
		buf = append(buf, byte(v>>uint(s)))
	}
	return buf
}

func (e *Exec) execAggr(n *Aggr, in *Table) (*Table, error) {
	part := in.Ints(n.Part)
	var arg []xqt.Item
	if n.Op != AggCount {
		arg = in.Items(n.Arg)
	}
	if e.Par.on(in.N) && int64sNonDecreasing(part) {
		// clustered groups: chunk at group boundaries so every group is
		// accumulated by one worker in serial order (this keeps
		// floating-point sums bit-identical to serial execution)
		rs := splitRuns(in.N, e.Par.Workers, func(i int) bool { return part[i] != part[i-1] })
		pcs := make([][]int64, len(rs))
		vcs := make([][]xqt.Item, len(rs))
		e.Par.parRun(len(rs), func(k int) {
			pcs[k], vcs[k] = aggrRange(n, part, arg, rs[k][0], rs[k][1])
		})
		out := NewTable([]string{n.Part, n.Out}, []ColKind{KInt, KItem})
		for k := range pcs {
			out.Col(n.Part).Int = append(out.Col(n.Part).Int, pcs[k]...)
			out.Col(n.Out).Item = append(out.Col(n.Out).Item, vcs[k]...)
		}
		out.N = out.Col(n.Part).Len()
		return out, nil
	}
	pc, vc := aggrRange(n, part, arg, 0, in.N)
	out := NewTable([]string{n.Part, n.Out}, []ColKind{KInt, KItem})
	out.N = len(pc)
	out.Col(n.Part).Int = pc
	out.Col(n.Out).Item = vc
	return out, nil
}

// aggrRange aggregates rows [lo, hi) by part, returning one (part, value)
// row per group in first-appearance order.
func aggrRange(n *Aggr, part []int64, arg []xqt.Item, lo, hi int) ([]int64, []xqt.Item) {
	type group struct {
		cnt    int64
		sumF   float64
		sumI   int64
		allInt bool
		minmax xqt.Item
	}
	order := make([]int64, 0, 64)
	groups := make(map[int64]*group, 64)
	for i := lo; i < hi; i++ {
		g := groups[part[i]]
		if g == nil {
			g = &group{allInt: true}
			groups[part[i]] = g
			order = append(order, part[i])
		}
		g.cnt++
		switch n.Op {
		case AggSum, AggAvg:
			it := arg[i]
			if it.K == xqt.KInt {
				g.sumI += it.I
			} else {
				g.allInt = false
			}
			g.sumF += it.AsDouble()
		case AggMin:
			if g.cnt == 1 || xqt.SortLess(arg[i], g.minmax) {
				g.minmax = arg[i]
			}
		case AggMax:
			if g.cnt == 1 || xqt.SortLess(g.minmax, arg[i]) {
				g.minmax = arg[i]
			}
		}
	}
	pc := make([]int64, len(order))
	vc := make([]xqt.Item, len(order))
	for i, p := range order {
		g := groups[p]
		pc[i] = p
		switch n.Op {
		case AggCount:
			vc[i] = xqt.Int(g.cnt)
		case AggSum:
			if g.allInt {
				vc[i] = xqt.Int(g.sumI)
			} else {
				vc[i] = xqt.Double(g.sumF)
			}
		case AggAvg:
			vc[i] = xqt.Double(g.sumF / float64(g.cnt))
		case AggMin, AggMax:
			vc[i] = g.minmax
		}
	}
	return pc, vc
}

// stepInputSorted verifies the (item, iter) sort contract of Step inputs.
func stepInputSorted(items []xqt.Item, iters []int64) bool {
	for i := 1; i < len(items); i++ {
		a, b := items[i-1], items[i]
		if xqt.SortLess(a, b) {
			continue
		}
		if xqt.SortLess(b, a) || iters[i-1] > iters[i] {
			return false
		}
	}
	return true
}

func (e *Exec) execStep(n *Step, in *Table) (*Table, error) {
	iters := in.Ints(n.IterCol)
	items := in.Items(n.ItemCol)
	if !stepInputSorted(items, iters) {
		return nil, fmt.Errorf("ralg: step(%v) input not sorted on (item, iter): plan misses a sort", n.Axis)
	}
	out := NewTable([]string{"iter", "item"}, []ColKind{KInt, KItem})
	// group context nodes by container; containers appear in ascending
	// id order because the input is document-order sorted
	i := 0
	for i < len(items) {
		if items[i].K != xqt.KNode {
			// attribute nodes have no children etc.; only the parent
			// axis resolves to their owner
			if items[i].K == xqt.KAttr && n.Axis == scj.Parent {
				c := e.Pool.Get(items[i].Cont)
				owner := c.AttrOwner[items[i].I]
				match := scj.CompileTest(c, n.Test)
				if match(owner) {
					out.Col("iter").Int = append(out.Col("iter").Int, iters[i])
					out.Col("item").Item = append(out.Col("item").Item, xqt.Node(c.ID, owner))
				}
			}
			i++
			continue
		}
		cont := items[i].Cont
		j := i
		var ctx scj.Pairs
		for j < len(items) && items[j].K == xqt.KNode && items[j].Cont == cont {
			ctx.Pre = append(ctx.Pre, int32(items[j].I))
			ctx.Iter = append(ctx.Iter, int32(iters[j]))
			j++
		}
		c := e.Pool.Get(cont)
		var res scj.Pairs
		if e.Par.Workers > 1 {
			res = scj.ParallelStep(c, ctx, n.Axis, n.Test, n.Variant, e.Par.Workers, e.Par.Threshold, &e.Stats.Step)
		} else {
			res = scj.Step(c, ctx, n.Axis, n.Test, n.Variant, &e.Stats.Step)
		}
		ic := out.Col("iter")
		tc := out.Col("item")
		base := ic.Len()
		ic.Int = append(ic.Int, make([]int64, res.Len())...)
		tc.Item = append(tc.Item, make([]xqt.Item, res.Len())...)
		e.parFill(res.Len(), func(lo, hi int) {
			for k := lo; k < hi; k++ {
				ic.Int[base+k] = int64(res.Iter[k])
				tc.Item[base+k] = xqt.Node(cont, res.Pre[k])
			}
		})
		i = j
	}
	out.N = out.Col("iter").Len()
	return out, nil
}

func (e *Exec) execAttrStep(n *AttrStep, in *Table) (*Table, error) {
	iters := in.Ints(n.IterCol)
	items := in.Items(n.ItemCol)
	if !stepInputSorted(items, iters) {
		return nil, fmt.Errorf("ralg: attribute step input not sorted on (item, iter)")
	}
	out := NewTable([]string{"iter", "item"}, []ColKind{KInt, KItem})
	if e.Par.on(in.N) {
		// chunk at identical-item run boundaries: each run is resolved by
		// one worker, so concatenating chunk outputs reproduces the
		// serial (attribute, iter) order
		rs := splitRuns(in.N, e.Par.Workers, func(i int) bool { return items[i] != items[i-1] })
		ics := make([][]int64, len(rs))
		tcs := make([][]xqt.Item, len(rs))
		e.Par.parRun(len(rs), func(k int) {
			ics[k], tcs[k] = e.attrStepRange(n, iters, items, rs[k][0], rs[k][1])
		})
		for k := range ics {
			out.Col("iter").Int = append(out.Col("iter").Int, ics[k]...)
			out.Col("item").Item = append(out.Col("item").Item, tcs[k]...)
		}
	} else {
		ic, tc := e.attrStepRange(n, iters, items, 0, in.N)
		out.Col("iter").Int = ic
		out.Col("item").Item = tc
	}
	out.N = out.Col("iter").Len()
	return out, nil
}

// attrStepRange resolves the attribute axis for input rows [lo, hi); lo
// must start a run of identical context items.
func (e *Exec) attrStepRange(n *AttrStep, iters []int64, items []xqt.Item, lo, hi int) ([]int64, []xqt.Item) {
	var ic []int64
	var tc []xqt.Item
	i := lo
	for i < hi {
		if items[i].K != xqt.KNode {
			i++
			continue
		}
		// group the run of identical context nodes so the output stays
		// (attribute, iter)-ordered
		j := i
		for j < hi && items[j] == items[i] {
			j++
		}
		c := e.Pool.Get(items[i].Cont)
		pre := int32(items[i].I)
		if c.Kind[pre] == store.KindElem {
			ac, alo, ahi := c.Attrs(pre)
			for a := alo; a < ahi; a++ {
				if n.NameTest != "" && ac.Names.Name(ac.AttrName[a]) != n.NameTest {
					continue
				}
				for k := i; k < j; k++ {
					ic = append(ic, iters[k])
					tc = append(tc, xqt.Attr(ac.ID, a))
				}
			}
		}
		i = j
	}
	return ic, tc
}

func execEBV(n *EBV, in *Table) (*Table, error) {
	part := in.Ints(n.Part)
	items := in.Items(n.Item)
	out := NewTable([]string{n.Part, n.Out}, []ColKind{KInt, KBool})
	pc := out.Col(n.Part)
	bc := out.Col(n.Out)
	i := 0
	for i < len(part) {
		j := i
		for j < len(part) && part[j] == part[i] {
			j++
		}
		v, err := ebvGroup(items[i:j])
		if err != nil {
			return nil, err
		}
		pc.Int = append(pc.Int, part[i])
		bc.Bool = append(bc.Bool, v)
		i = j
	}
	out.N = pc.Len()
	return out, nil
}

func ebvGroup(items []xqt.Item) (bool, error) {
	if items[0].IsNode() {
		return true, nil
	}
	if len(items) > 1 {
		return false, fmt.Errorf("xquery error FORG0006: effective boolean value of a sequence of %d atomic values", len(items))
	}
	return ebvAtom(items[0]), nil
}

func ebvAtom(it xqt.Item) bool {
	switch it.K {
	case xqt.KBool:
		return it.I != 0
	case xqt.KInt:
		return it.I != 0
	case xqt.KDouble:
		return it.F != 0 && !math.IsNaN(it.F)
	case xqt.KString, xqt.KUntyped:
		return it.S != ""
	}
	return true
}

func execCardCheck(n *CardCheck, in *Table) (*Table, error) {
	if n.AtMostOne {
		part := in.Ints(n.Part)
		for i := 1; i < len(part); i++ {
			if part[i] == part[i-1] {
				return nil, fmt.Errorf("xquery error FORG0003: %s applied to a sequence with more than one item", n.Fn)
			}
		}
	}
	return in, nil
}

func (e *Exec) atomize(it xqt.Item) xqt.Item {
	switch it.K {
	case xqt.KNode:
		c := e.Pool.Get(it.Cont)
		return xqt.Untyped(c.StringValue(int32(it.I)))
	case xqt.KAttr:
		c := e.Pool.Get(it.Cont)
		return xqt.Untyped(c.AttrVal[it.I])
	}
	return it
}

// execFun evaluates row-wise functions. Each case fills its output
// column through parFill, so large inputs are computed on row chunks in
// parallel (every row is independent; atomization only reads containers).
func (e *Exec) execFun(n *Fun, in *Table) (*Table, error) {
	out := &Table{N: in.N, names: append([]string(nil), in.names...), cols: append([]Col(nil), in.cols...)}
	switch n.Op {
	case FunAnd, FunOr:
		a, b := in.Bools(n.Args[0]), in.Bools(n.Args[1])
		c := make([]bool, in.N)
		e.parFill(in.N, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if n.Op == FunAnd {
					c[i] = a[i] && b[i]
				} else {
					c[i] = a[i] || b[i]
				}
			}
		})
		out.AddCol(n.Out, Col{Kind: KBool, Bool: c})
		return out, nil
	case FunNot:
		a := in.Bools(n.Args[0])
		c := make([]bool, in.N)
		e.parFill(in.N, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				c[i] = !a[i]
			}
		})
		out.AddCol(n.Out, Col{Kind: KBool, Bool: c})
		return out, nil
	}

	// getter views integer columns as xs:integer items so comparisons
	// work uniformly over pos/count columns and item columns
	getter := func(name string) func(int) xqt.Item {
		col := in.Col(name)
		switch col.Kind {
		case KInt:
			return func(i int) xqt.Item { return xqt.Int(col.Int[i]) }
		case KBool:
			return func(i int) xqt.Item { return xqt.Bool(col.Bool[i]) }
		default:
			return func(i int) xqt.Item { return col.Item[i] }
		}
	}
	args := make([][]xqt.Item, len(n.Args))
	for i, name := range n.Args {
		if in.Col(name).Kind == KItem {
			args[i] = in.Items(name)
		}
	}
	switch n.Op {
	case FunEq, FunNe, FunLt, FunLe, FunGt, FunGe:
		op := map[FunOp]xqt.CmpOp{FunEq: xqt.CmpEq, FunNe: xqt.CmpNe, FunLt: xqt.CmpLt,
			FunLe: xqt.CmpLe, FunGt: xqt.CmpGt, FunGe: xqt.CmpGe}[n.Op]
		g0, g1 := getter(n.Args[0]), getter(n.Args[1])
		c := make([]bool, in.N)
		e.parFill(in.N, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				c[i] = xqt.Compare(e.atomize(g0(i)), e.atomize(g1(i)), op)
			}
		})
		out.AddCol(n.Out, Col{Kind: KBool, Bool: c})
		return out, nil
	case FunNodeBefore, FunNodeAfter, FunNodeIs:
		c := make([]bool, in.N)
		e.parFill(in.N, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				a, b := args[0][i], args[1][i]
				switch n.Op {
				case FunNodeIs:
					c[i] = a == b
				case FunNodeBefore:
					c[i] = xqt.DocOrderLess(a, b, e.Pool.AttrOwnerOf)
				default:
					c[i] = xqt.DocOrderLess(b, a, e.Pool.AttrOwnerOf)
				}
			}
		})
		out.AddCol(n.Out, Col{Kind: KBool, Bool: c})
		return out, nil
	case FunContains, FunStartsWith:
		c := make([]bool, in.N)
		e.parFill(in.N, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				a := e.atomize(args[0][i]).AsString()
				b := e.atomize(args[1][i]).AsString()
				if n.Op == FunContains {
					c[i] = strings.Contains(a, b)
				} else {
					c[i] = strings.HasPrefix(a, b)
				}
			}
		})
		out.AddCol(n.Out, Col{Kind: KBool, Bool: c})
		return out, nil
	case FunIsNumeric:
		c := make([]bool, in.N)
		e.parFill(in.N, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				c[i] = args[0][i].IsNumeric()
			}
		})
		out.AddCol(n.Out, Col{Kind: KBool, Bool: c})
		return out, nil
	case FunEbvAtom:
		c := make([]bool, in.N)
		e.parFill(in.N, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				it := args[0][i]
				if it.IsNode() {
					c[i] = true
				} else {
					c[i] = ebvAtom(it)
				}
			}
		})
		out.AddCol(n.Out, Col{Kind: KBool, Bool: c})
		return out, nil
	}

	switch n.Op {
	case FunAdd, FunSub, FunMul, FunDiv, FunIDiv, FunMod, FunNeg, FunAtomize,
		FunStringOf, FunNumber, FunConcat, FunNameOf, FunFloor, FunCeil,
		FunRound, FunStrLen:
	default:
		return nil, fmt.Errorf("ralg: unhandled function op %d", n.Op)
	}
	c := make([]xqt.Item, in.N)
	e.parFill(in.N, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			switch n.Op {
			case FunAdd, FunSub, FunMul, FunDiv, FunIDiv, FunMod:
				c[i] = arith(n.Op, e.atomize(args[0][i]), e.atomize(args[1][i]))
			case FunNeg:
				a := e.atomize(args[0][i])
				if a.K == xqt.KInt {
					c[i] = xqt.Int(-a.I)
				} else {
					c[i] = xqt.Double(-a.AsDouble())
				}
			case FunAtomize:
				c[i] = e.atomize(args[0][i])
			case FunStringOf:
				c[i] = xqt.Str(e.atomize(args[0][i]).AsString())
			case FunNumber:
				c[i] = xqt.Double(e.atomize(args[0][i]).AsDouble())
			case FunConcat:
				c[i] = xqt.Str(e.atomize(args[0][i]).AsString() + e.atomize(args[1][i]).AsString())
			case FunNameOf:
				c[i] = xqt.Str(e.nameOf(args[0][i]))
			case FunFloor:
				c[i] = xqt.Double(math.Floor(e.atomize(args[0][i]).AsDouble()))
			case FunCeil:
				c[i] = xqt.Double(math.Ceil(e.atomize(args[0][i]).AsDouble()))
			case FunRound:
				c[i] = xqt.Double(math.Round(e.atomize(args[0][i]).AsDouble()))
			case FunStrLen:
				c[i] = xqt.Int(int64(len(e.atomize(args[0][i]).AsString())))
			}
		}
	})
	out.AddCol(n.Out, Col{Kind: KItem, Item: c})
	return out, nil
}

func (e *Exec) nameOf(it xqt.Item) string {
	switch it.K {
	case xqt.KNode:
		return e.Pool.Get(it.Cont).NameOf(int32(it.I))
	case xqt.KAttr:
		c := e.Pool.Get(it.Cont)
		return c.Names.Name(c.AttrName[it.I])
	}
	return ""
}

// arith implements XQuery arithmetic with numeric promotion: integer
// operands stay integral (except div), everything else is xs:double.
func arith(op FunOp, a, b xqt.Item) xqt.Item {
	if a.K == xqt.KInt && b.K == xqt.KInt && op != FunDiv {
		x, y := a.I, b.I
		switch op {
		case FunAdd:
			return xqt.Int(x + y)
		case FunSub:
			return xqt.Int(x - y)
		case FunMul:
			return xqt.Int(x * y)
		case FunIDiv:
			if y == 0 {
				return xqt.Double(math.NaN())
			}
			return xqt.Int(x / y)
		case FunMod:
			if y == 0 {
				return xqt.Double(math.NaN())
			}
			return xqt.Int(x % y)
		}
	}
	x, y := a.AsDouble(), b.AsDouble()
	switch op {
	case FunAdd:
		return xqt.Double(x + y)
	case FunSub:
		return xqt.Double(x - y)
	case FunMul:
		return xqt.Double(x * y)
	case FunDiv:
		return xqt.Double(x / y)
	case FunIDiv:
		return xqt.Int(int64(x / y))
	case FunMod:
		return xqt.Double(math.Mod(x, y))
	}
	return xqt.Double(math.NaN())
}

// cmpClass determines how a set of atoms compares: numeric dominates
// string. Returns (numeric, mixedNodes).
func cmpClass(items []xqt.Item) (numeric bool, uniform bool) {
	sawNum, sawStr := false, false
	for _, it := range items {
		if it.IsNumeric() {
			sawNum = true
		} else {
			sawStr = true
		}
	}
	return sawNum, !(sawNum && sawStr)
}

func (e *Exec) execExistJoin(n *ExistJoin, l, r *Table) (*Table, error) {
	liter := l.Ints(n.LIter)
	riter := r.Ints(n.RIter)
	litem := l.Items(n.LItem)
	ritem := r.Items(n.RItem)
	latoms := make([]xqt.Item, len(litem))
	for i, it := range litem {
		latoms[i] = e.atomize(it)
	}
	ratoms := make([]xqt.Item, len(ritem))
	for i, it := range ritem {
		ratoms[i] = e.atomize(it)
	}
	lnum, lu := cmpClass(latoms)
	rnum, ru := cmpClass(ratoms)
	uniform := lu && ru && (lnum == rnum || len(latoms) == 0 || len(ratoms) == 0)

	var p1, p2 []int64
	switch {
	case n.Cmp == xqt.CmpEq && uniform:
		p1, p2 = existHashJoin(liter, latoms, riter, ratoms, lnum || rnum)
		e.Stats.HashJoins++
	case n.Cmp != xqt.CmpEq && n.Cmp != xqt.CmpNe && uniform:
		// Figure 8(b): under existential semantics an ordering
		// comparison only needs each iteration's extremum, so both
		// sides reduce to one row per iter before the join.
		numeric := lnum || rnum
		switch n.Cmp {
		case xqt.CmpLt, xqt.CmpLe:
			liter, latoms = reduceExtremum(liter, latoms, numeric, false) // min
			riter, ratoms = reduceExtremum(riter, ratoms, numeric, true)  // max
		default:
			liter, latoms = reduceExtremum(liter, latoms, numeric, true)
			riter, ratoms = reduceExtremum(riter, ratoms, numeric, false)
		}
		e.Stats.ExistAggr++
		p1, p2 = e.existThetaJoin(n, liter, latoms, riter, ratoms, numeric)
	default:
		// heterogeneous inputs: per-pair promotion via nested loop
		e.Stats.ThetaNL++
		for i := range latoms {
			for j := range ratoms {
				if xqt.Compare(latoms[i], ratoms[j], n.Cmp) {
					p1 = append(p1, liter[i])
					p2 = append(p2, riter[j])
				}
			}
		}
		p1, p2 = dedupPairs(p1, p2)
	}
	out := NewTable([]string{n.Out1, n.Out2}, []ColKind{KInt, KInt})
	out.N = len(p1)
	out.Col(n.Out1).Int = p1
	out.Col(n.Out2).Int = p2
	return out, nil
}

// reduceExtremum keeps one row per iter: the minimum (max=false) or
// maximum (max=true) value under numeric or string ordering. Input iters
// are clustered (the inputs are [iter, pos] sorted); the output keeps one
// row per cluster in input order.
func reduceExtremum(iters []int64, atoms []xqt.Item, numeric, max bool) ([]int64, []xqt.Item) {
	less := func(a, b xqt.Item) bool {
		if numeric {
			return a.AsDouble() < b.AsDouble()
		}
		return a.AsString() < b.AsString()
	}
	var oi []int64
	var oa []xqt.Item
	i := 0
	for i < len(iters) {
		best := atoms[i]
		j := i + 1
		for j < len(iters) && iters[j] == iters[i] {
			if (max && less(best, atoms[j])) || (!max && less(atoms[j], best)) {
				best = atoms[j]
			}
			j++
		}
		oi = append(oi, iters[i])
		oa = append(oa, best)
		i = j
	}
	return oi, oa
}

// existHashJoin evaluates an existential eq join: hash the right input by
// comparison value, probe in left order, and eliminate duplicate
// (iter1, iter2) pairs per left-iteration run (the merge-style δ of
// §4.2).
func existHashJoin(liter []int64, latoms []xqt.Item, riter []int64, ratoms []xqt.Item, numeric bool) (p1, p2 []int64) {
	key := func(it xqt.Item) (string, bool) {
		if numeric {
			f := it.AsDouble()
			if math.IsNaN(f) {
				return "", false
			}
			var b [8]byte
			v := math.Float64bits(f)
			for i := 0; i < 8; i++ {
				b[i] = byte(v >> uint(8*i))
			}
			return string(b[:]), true
		}
		return it.AsString(), true
	}
	ht := make(map[string][]int64, len(ratoms))
	for j, it := range ratoms {
		if k, ok := key(it); ok {
			ht[k] = append(ht[k], riter[j])
		}
	}
	for i := range latoms {
		k, ok := key(latoms[i])
		if !ok {
			continue
		}
		for _, i2 := range ht[k] {
			p1 = append(p1, liter[i])
			p2 = append(p2, i2)
		}
	}
	return dedupPairs(p1, p2)
}

// existThetaJoin evaluates <, <=, >, >= with the run-time "choose-plan"
// of §4.2: a small join sample estimates the hit rate, then either
// nested-loop join (output directly in [iter1, iter2] order) or a
// transient sorted index with binary-search lookups (output refine-sorted
// per iter1 chunk) evaluates the join.
func (e *Exec) existThetaJoin(n *ExistJoin, liter []int64, latoms []xqt.Item, riter []int64, ratoms []xqt.Item, numeric bool) (p1, p2 []int64) {
	val := func(it xqt.Item) float64 { return it.AsDouble() }
	cmpOK := func(a, b xqt.Item) bool { return xqt.Compare(a, b, n.Cmp) }

	strategy := n.Strategy
	small := int64(len(latoms))*int64(len(ratoms)) <= 4096
	// build the transient index (needed for sampling and index lookup)
	perm := make([]int32, len(ratoms))
	for i := range perm {
		perm[i] = int32(i)
	}
	if numeric {
		sort.SliceStable(perm, func(a, b int) bool { return val(ratoms[perm[a]]) < val(ratoms[perm[b]]) })
	} else {
		sort.SliceStable(perm, func(a, b int) bool {
			return ratoms[perm[a]].AsString() < ratoms[perm[b]].AsString()
		})
	}
	matchRange := func(a xqt.Item) (int, int) {
		// rows [lo, hi) of perm satisfy a Cmp r
		switch n.Cmp {
		case xqt.CmpLt, xqt.CmpLe:
			lo := sort.Search(len(perm), func(k int) bool { return cmpOK(a, ratoms[perm[k]]) })
			return lo, len(perm)
		default: // Gt, Ge
			hi := sort.Search(len(perm), func(k int) bool { return !cmpOK(a, ratoms[perm[k]]) })
			return 0, hi
		}
	}
	if strategy == ThetaAuto {
		if small {
			strategy = ThetaNestedLoop
		} else {
			// sample up to 64 probes to estimate the hit rate
			probes := 64
			if len(latoms) < probes {
				probes = len(latoms)
			}
			hits := int64(0)
			for s := 0; s < probes; s++ {
				i := s * len(latoms) / probes
				lo, hi := matchRange(latoms[i])
				hits += int64(hi - lo)
			}
			est := hits * int64(len(latoms)) / int64(probes)
			if est*4 >= int64(len(latoms))*int64(len(ratoms)) {
				strategy = ThetaNestedLoop // result construction dominates
			} else {
				strategy = ThetaIndex
			}
		}
	}
	switch strategy {
	case ThetaNestedLoop:
		e.Stats.ThetaNL++
		for i := range latoms {
			for j := range ratoms {
				if cmpOK(latoms[i], ratoms[j]) {
					p1 = append(p1, liter[i])
					p2 = append(p2, riter[j])
				}
			}
		}
	default:
		e.Stats.ThetaIdx++
		for i := range latoms {
			lo, hi := matchRange(latoms[i])
			start := len(p2)
			for k := lo; k < hi; k++ {
				p1 = append(p1, liter[i])
				p2 = append(p2, riter[perm[k]])
			}
			// refine-sort the chunk on iter2 (the index delivers value
			// order within an iter1 group)
			chunk := p2[start:]
			sort.Slice(chunk, func(a, b int) bool { return chunk[a] < chunk[b] })
		}
	}
	return dedupPairs(p1, p2)
}

// dedupPairs removes duplicate (iter1, iter2) pairs and establishes
// [iter1, iter2] order. Inputs that are already iter1-clustered (the
// common case: probes in left order) are deduplicated with a per-run
// merge; otherwise the pairs are sorted first.
func dedupPairs(p1, p2 []int64) ([]int64, []int64) {
	if len(p1) == 0 {
		return p1, p2
	}
	clustered := true
	for i := 1; i < len(p1); i++ {
		if p1[i] < p1[i-1] {
			clustered = false
			break
		}
	}
	if !clustered {
		idx := make([]int, len(p1))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			if p1[idx[a]] != p1[idx[b]] {
				return p1[idx[a]] < p1[idx[b]]
			}
			return p2[idx[a]] < p2[idx[b]]
		})
		q1 := make([]int64, len(p1))
		q2 := make([]int64, len(p2))
		for i, j := range idx {
			q1[i], q2[i] = p1[j], p2[j]
		}
		p1, p2 = q1, q2
	}
	o1 := p1[:0]
	o2 := p2[:0]
	start := 0
	for start < len(p1) {
		end := start + 1
		for end < len(p1) && p1[end] == p1[start] {
			end++
		}
		run := append([]int64(nil), p2[start:end]...)
		sort.Slice(run, func(a, b int) bool { return run[a] < run[b] })
		cur := p1[start]
		for k, v := range run {
			if k == 0 || v != run[k-1] {
				o1 = append(o1, cur)
				o2 = append(o2, v)
			}
		}
		start = end
	}
	return o1, o2
}

func (e *Exec) execElem(n *ElemConstruct, in []*Table) (*Table, error) {
	if e.Transient == nil {
		return nil, fmt.Errorf("ralg: element construction without a transient container")
	}
	loop := in[0].Ints("iter")
	content := in[1]
	citer := content.Ints("iter")
	citem := content.Items("item")
	// attribute value cursors: one per attribute part
	type partCur struct {
		iter  []int64
		items []xqt.Item
		pos   int
	}
	type attrCur struct {
		name  string
		parts []partCur
	}
	attrs := make([]attrCur, len(n.Attrs))
	next := 2
	for i := range n.Attrs {
		attrs[i].name = n.Attrs[i].Attr
		for range n.Attrs[i].Parts {
			t := in[next]
			next++
			attrs[i].parts = append(attrs[i].parts, partCur{iter: t.Ints("iter"), items: t.Items("item")})
		}
	}
	out := NewTable([]string{"iter", "item"}, []ColKind{KInt, KItem})
	ic := out.Col("iter")
	tc := out.Col("item")
	b := store.NewContainerBuilder(e.Transient)
	ci := 0
	for _, it := range loop {
		pre := b.StartElem(n.Tag)
		for a := range attrs {
			var val strings.Builder
			for pi := range attrs[a].parts {
				cur := &attrs[a].parts[pi]
				for cur.pos < len(cur.iter) && cur.iter[cur.pos] < it {
					cur.pos++
				}
				first := true
				for cur.pos < len(cur.iter) && cur.iter[cur.pos] == it {
					if !first {
						val.WriteString(" ")
					}
					first = false
					val.WriteString(e.atomize(cur.items[cur.pos]).AsString())
					cur.pos++
				}
			}
			b.Attr(attrs[a].name, val.String())
		}
		for ci < len(citer) && citer[ci] < it {
			ci++
		}
		pendingText := ""
		sawContent := false
		flush := func() {
			if pendingText != "" {
				b.Text(pendingText)
				pendingText = ""
			}
		}
		for ci < len(citer) && citer[ci] == it {
			item := citem[ci]
			switch item.K {
			case xqt.KNode:
				flush()
				src := e.Pool.Get(item.Cont)
				if src.Kind[item.I] == store.KindDoc {
					// copying a document node copies its children
					end := int32(item.I) + src.Size[item.I]
					for p := int32(item.I) + 1; p <= end; p += src.Size[p] + 1 {
						b.CopyTree(src, p)
					}
				} else {
					b.CopyTree(src, int32(item.I))
				}
				sawContent = true
			case xqt.KAttr:
				src := e.Pool.Get(item.Cont)
				if sawContent || pendingText != "" {
					return nil, fmt.Errorf("xquery error XQTY0024: attribute node after content in element constructor")
				}
				b.Attr(src.Names.Name(src.AttrName[item.I]), src.AttrVal[item.I])
			default:
				if pendingText != "" {
					pendingText += " " + item.AsString()
				} else {
					pendingText = item.AsString()
					sawContent = sawContent || pendingText != ""
				}
			}
			ci++
		}
		flush()
		b.End()
		ic.Int = append(ic.Int, it)
		tc.Item = append(tc.Item, xqt.Node(e.Transient.ID, pre))
	}
	out.N = ic.Len()
	return out, nil
}
