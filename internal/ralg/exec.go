package ralg

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"unicode/utf8"

	"mxq/internal/faults"
	"mxq/internal/scj"
	"mxq/internal/store"
	"mxq/internal/xqerr"
	"mxq/internal/xqt"
)

// ExecStats accumulates runtime counters across one plan execution.
type ExecStats struct {
	Step       scj.Stats // staircase join counters
	SortedRows int64     // rows passed through sort operators
	FullSorts  int64     // sort operators that ran a full (non-refine) sort
	RefineSort int64     // sort operators that ran in refine mode
	HashJoins  int64
	PosJoins   int64
	ThetaNL    int64 // theta joins executed nested-loop
	ThetaIdx   int64 // theta joins executed via transient index
	ExistAggr  int64 // theta joins reduced to per-iter extrema (Fig. 8b)
	CrossRows  int64 // rows produced by Cartesian products
}

// MaxRows bounds intermediate result sizes; exceeding it aborts the query
// with an error (the unoptimized Cartesian-product plans of Figure 13 hit
// this on large documents, like the "materialization out of bounds"
// failures the paper reports for Galax).
const MaxRows = 64 << 20

// Bindings is the binding environment of one plan execution: it maps
// external variable names to their bound sequences, each materialized
// as a typed item vector (see the Bind* constructors). ParamTable
// leaves resolve against it, so the same immutable plan can run under
// any number of binding environments concurrently.
type Bindings map[string]ItemVec

// Exec evaluates plan DAGs against a container pool. Shared sub-plans are
// evaluated once and their results re-used. Setting Par enables
// intra-query parallel operator execution (see parallel.go); the output
// is identical to serial execution either way. One Exec evaluates one
// query; concurrent queries each get their own Exec (and their own
// transient container), sharing only the read-only document containers.
// ContextDoc names the document ContextRoot leaves (absolute paths)
// resolve to; Bindings supplies the values of ParamTable leaves.
//
// Ctx carries the execution's cancellation signal (deadline, client
// disconnect): Run checks it between operators, and the long-running
// operator loops — staircase-join steps, joins, Cartesian products,
// aggregation, range generation and the parallel fill/gather paths —
// poll it every few thousand rows and abandon their remaining work.
// Partial outputs never escape: Run returns the context error before
// memoizing a table produced under a cancelled context. A nil Ctx (the
// default) disables all checks. Sorts run to completion (a cancelled
// query still returns within one sort of its largest intermediate).
//
// Mem is the execution's memory budget (nil = unlimited). Operators
// charge the bytes they materialize through charge/chargeTable; an
// exceeded budget trips the same stopRequested poll the cancellation
// machinery uses, so workers drain and partial tables are discarded
// identically, and Run surfaces the typed resource-exhausted error
// instead of memoizing.
type Exec struct {
	Pool       *store.Pool
	Transient  *store.Container
	Stats      ExecStats
	Par        ParOptions
	ContextDoc string
	Bindings   Bindings
	Ctx        context.Context
	Mem        *MemBudget

	memo map[Plan]*Table
	done <-chan struct{} // Ctx.Done(), captured once at Run entry
}

// NewExec returns an executor over the given pool. Transient nodes
// constructed during execution are placed in transient, which must be
// registered with the pool.
func NewExec(pool *store.Pool, transient *store.Container) *Exec {
	return &Exec{Pool: pool, Transient: transient, memo: make(map[Plan]*Table)}
}

// Run evaluates the plan and returns its result table. When Ctx is set
// and expires mid-execution, Run returns the context error promptly —
// never a partial result.
func (e *Exec) Run(p Plan) (*Table, error) {
	if e.Ctx != nil {
		if e.done == nil {
			e.done = e.Ctx.Done()
		}
		if err := e.Ctx.Err(); err != nil {
			return nil, err
		}
	}
	if t, ok := e.memo[p]; ok {
		return t, nil
	}
	in := make([]*Table, 0, 4)
	for _, c := range p.Inputs() {
		t, err := e.Run(c)
		if err != nil {
			return nil, err
		}
		in = append(in, t)
	}
	if err := faults.RalgOp.Err(); err != nil {
		return nil, err
	}
	t, err := e.apply(p, in)
	if err != nil {
		return nil, err
	}
	// an operator that observed the cancellation or an exhausted memory
	// budget may have stopped early with a partial table: surface the
	// error instead of memoizing it (context first, matching the
	// precedence a cancelled-and-over-budget execution reports)
	if e.Ctx != nil {
		if err := e.Ctx.Err(); err != nil {
			return nil, err
		}
	}
	if err := e.Mem.Err(); err != nil {
		return nil, err
	}
	if t.N > MaxRows {
		return nil, xqerr.Newf(xqerr.CodeResourceLimit,
			"intermediate result of %s exceeds the %d-row limit", p.Name(), MaxRows)
	}
	e.memo[p] = t
	return t, nil
}

// stopRequested reports whether the execution's context has expired or
// its memory budget is exhausted; it is the cheap poll the operator
// loops amortize over a few thousand rows. Safe to call from worker
// goroutines (it reads the done channel and an atomic flag).
func (e *Exec) stopRequested() bool {
	if e.Mem.Exceeded() {
		return true
	}
	if e.done == nil {
		return false
	}
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// stopFunc returns the cancellation poll handed to the staircase-join
// layer, or nil when the execution carries neither a context nor a
// memory budget (so the scj fast path stays branch-free).
func (e *Exec) stopFunc() func() bool {
	if e.Ctx == nil && e.Mem == nil {
		return nil
	}
	return e.stopRequested
}

// stopErr returns the error behind a stopRequested signal: the context
// error when the context expired, the typed budget error when the
// memory budget tripped. Returns nil only on a spurious call.
func (e *Exec) stopErr() error {
	if e.Ctx != nil {
		if err := e.Ctx.Err(); err != nil {
			return err
		}
	}
	return e.Mem.Err()
}

// charge accounts n bytes of materialized storage against the memory
// budget; false means the execution is over budget and should stop at
// its next poll.
func (e *Exec) charge(n int64) bool { return e.Mem.Charge(n) }

// chargeTable charges a freshly materialized table's storage. Call it
// only from the operator that allocated the storage — zero-copy views
// over an input must not re-charge shared payload slices.
func (e *Exec) chargeTable(t *Table) bool { return e.Mem.Charge(t.MemBytes()) }

// chargeFunc returns the accounting hook handed to the staircase-join
// layer, or nil when the execution carries no budget.
func (e *Exec) chargeFunc() func(int64) bool {
	if e.Mem == nil {
		return nil
	}
	return e.Mem.Charge
}

func (e *Exec) apply(p Plan, in []*Table) (*Table, error) {
	switch n := p.(type) {
	case *Lit:
		return n.Tab, nil
	case *LitDecl:
		return n.Tab, nil
	case *DocRoot:
		return e.execDocRoot(n)
	case *ContextRoot:
		return e.execContextRoot()
	case *ParamTable:
		return e.execParam(n)
	case *CollectionRoot:
		return e.execCollectionRoot(n)
	case *Fail:
		return nil, xqerr.Newf(n.Code, "%s", n.Msg)
	case *Project:
		return execProject(n, in[0])
	case *Attach:
		t := execAttach(n, in[0])
		// the attached constant column is the only fresh allocation
		e.charge(t.cols[len(t.cols)-1].MemBytes())
		return t, nil
	case *Select:
		return e.execSelect(n, in[0]), nil
	case *Fun:
		return e.execFun(n, in[0])
	case *RowNum:
		return e.execRowNum(n, in[0]), nil
	case *Sort:
		return e.execSort(n, in[0]), nil
	case *HashJoin:
		return e.execHashJoin(n, in[0], in[1])
	case *ExistJoin:
		return e.execExistJoin(n, in[0], in[1])
	case *Cross:
		return e.execCross(n, in[0], in[1])
	case *Union:
		t := execUnion(in)
		e.chargeTable(t)
		return t, nil
	case *Diff:
		return e.execDiff(n, in[0], in[1]), nil
	case *Distinct:
		return e.execDistinct(n, in[0]), nil
	case *Aggr:
		return e.execAggr(n, in[0])
	case *Step:
		return e.execStep(n, in[0])
	case *AttrStep:
		return e.execAttrStep(n, in[0])
	case *ElemConstruct:
		return e.execElem(n, in)
	case *EBV:
		return e.execEBV(n, in[0])
	case *CardCheck:
		return execCardCheck(n, in[0])
	case *ColToItem:
		return execColToItem(n, in[0]), nil
	case *RangeGen:
		return e.execRangeGen(n, in[0])
	case *CoverCheck:
		return execCoverCheck(n, in[0], in[1])
	}
	return nil, fmt.Errorf("ralg: unknown operator %T", p)
}

// cancelcheck:exempt zero-copy column view plus one memory-bound flag copy
// alloccheck:exempt zero-copy column view; only the bool case expands one
// flag vector, bounded by a constant factor of the already-charged input
func execColToItem(n *ColToItem, in *Table) *Table {
	src := in.Col(n.Src)
	var v ItemVec
	switch src.Kind {
	case KInt:
		// zero-copy: an integer column is already a uniform xs:integer
		// payload vector (columns are immutable once produced)
		v = ItemVec{Tag: xqt.KInt, n: len(src.Int), I: src.Int}
	case KBool:
		v = ItemVec{Tag: xqt.KBool, n: len(src.Bool), I: make([]int64, len(src.Bool))}
		for i, b := range src.Bool {
			if b {
				v.I[i] = 1
			}
		}
	default:
		v = src.Item
	}
	out := &Table{N: in.N, names: append([]string(nil), in.names...), cols: append([]Col(nil), in.cols...)}
	out.names = append(out.names, n.Dst)
	out.cols = append(out.cols, Col{Kind: KItem, Item: v})
	return out
}

func (e *Exec) execRangeGen(n *RangeGen, in *Table) (*Table, error) {
	iters := in.Ints(n.Iter)
	lo := in.ItemVec(n.Lo)
	hi := in.ItemVec(n.Hi)
	out := NewTable([]string{"iter", "pos", "item"}, []ColKind{KInt, KInt, KItem})
	ic, pc, tc := out.Col("iter"), out.Col("pos"), out.Col("item")
	sinceCheck := 0
	for i := range iters {
		a := int64(lo.At(i).AsDouble())
		b := int64(hi.At(i).AsDouble())
		if b-a > MaxRows {
			return nil, xqerr.Newf(xqerr.CodeResourceLimit,
				"range %d to %d exceeds the %d-row limit", a, b, MaxRows)
		}
		if b < a {
			continue
		}
		// 24 B/row: the iter, pos and item int64 columns
		sinceCheck += int(b-a) + 1
		if sinceCheck >= 1<<16 {
			e.charge(int64(sinceCheck) * 24)
			sinceCheck = 0
			if e.stopRequested() {
				return nil, e.stopErr()
			}
		}
		base := tc.Item.growRows(xqt.KInt, int(b-a)+1)
		pos := int64(1)
		for v := a; v <= b; v++ {
			ic.Int = append(ic.Int, iters[i])
			pc.Int = append(pc.Int, pos)
			tc.Item.I[base] = v
			base++
			pos++
		}
	}
	e.charge(int64(sinceCheck) * 24)
	out.N = ic.Len()
	return out, nil
}

// cancelcheck:exempt two memory-bound integer-column scans
// alloccheck:exempt transient membership scratch bounded by the charged
// input column, freed at return; the output is the input, zero-copy
func execCoverCheck(n *CoverCheck, loop, in *Table) (*Table, error) {
	have := make(map[int64]bool, in.N)
	for _, it := range in.Ints(n.Part) {
		have[it] = true
	}
	for _, it := range loop.Ints(n.LoopIter) {
		if !have[it] {
			return nil, xqerr.Newf("FORG0005", "%s applied to an empty sequence", n.Fn)
		}
	}
	return in, nil
}

func (e *Exec) execDocRoot(n *DocRoot) (*Table, error) {
	c, ok := e.Pool.ByName(n.Doc)
	if !ok {
		return nil, xqerr.Newf("FODC0002", "document %q not loaded", n.Doc)
	}
	t := NewTable([]string{"pos", "item"}, []ColKind{KInt, KItem})
	t.N = 1
	t.Col("pos").Int = []int64{1}
	t.Col("item").Item = ItemsOf(xqt.Node(c.ID, 0))
	return t, nil
}

// execContextRoot resolves the context document of absolute paths at
// execution time (a plan input, not a compile-time constant).
func (e *Exec) execContextRoot() (*Table, error) {
	if e.ContextDoc == "" {
		return nil, xqerr.Newf("XPDY0002", "absolute path but no context document")
	}
	c, ok := e.Pool.ByName(e.ContextDoc)
	if !ok {
		return nil, xqerr.Newf("FODC0002", "context document %q not loaded", e.ContextDoc)
	}
	t := NewTable([]string{"pos", "item"}, []ColKind{KInt, KItem})
	t.N = 1
	t.Col("pos").Int = []int64{1}
	t.Col("item").Item = ItemsOf(xqt.Node(c.ID, 0))
	return t, nil
}

// execParam materializes one external variable binding as its (pos,
// item) table. The item vector is shared with the binding environment
// (vectors are immutable once built), so binding N values costs O(N)
// pos integers and nothing else.
// cancelcheck:exempt fills one dense pos column, memory-bound
func (e *Exec) execParam(n *ParamTable) (*Table, error) {
	v, ok := e.Bindings[n.Var]
	if !ok {
		return nil, xqerr.Newf("XPDY0002", "no value bound for external variable $%s", n.Var)
	}
	t := NewTable([]string{"pos", "item"}, []ColKind{KInt, KItem})
	t.N = v.Len()
	e.charge(8 * int64(v.Len())) // the pos column; the item vector is the caller's binding
	pc := t.Col("pos")
	pc.Int = make([]int64, v.Len())
	for i := range pc.Int {
		pc.Int[i] = int64(i) + 1
	}
	t.Col("item").Item = v
	return t, nil
}

// cancelcheck:exempt loops over collection shards, not rows
func (e *Exec) execCollectionRoot(n *CollectionRoot) (*Table, error) {
	sp, ok := e.Pool.Collection(n.Coll)
	if !ok {
		return nil, xqerr.Newf("FODC0004", "collection %q not available", n.Coll)
	}
	conts, pres := sp.Roots()
	t := NewTable([]string{"pos", "item"}, []ColKind{KInt, KItem})
	t.N = len(conts)
	pc := t.Col("pos")
	pc.Int = make([]int64, len(conts))
	tc := t.Col("item")
	tc.Item.growRows(xqt.KNode, len(conts))
	for i := range conts {
		pc.Int[i] = int64(i) + 1
		tc.Item.Cont[i] = conts[i]
		tc.Item.I[i] = int64(pres[i])
	}
	e.chargeTable(t)
	return t, nil
}

// cancelcheck:exempt per-column header remap, no per-row work
// alloccheck:exempt zero-copy: O(columns) header slices, no row payloads
func execProject(n *Project, in *Table) (*Table, error) {
	out := &Table{N: in.N}
	for _, ref := range n.Cols {
		if !in.HasCol(ref.Src) {
			return nil, fmt.Errorf("ralg: project: no column %q in %v", ref.Src, in.Names())
		}
		out.names = append(out.names, ref.Dst)
		out.cols = append(out.cols, *in.Col(ref.Src))
	}
	return out, nil
}

// cancelcheck:exempt memory-bound constant-column fill
// alloccheck:exempt no Exec receiver; the apply dispatch charges the
// attached column
func execAttach(n *Attach, in *Table) *Table {
	out := &Table{N: in.N, names: append([]string(nil), in.names...), cols: append([]Col(nil), in.cols...)}
	c := Col{Kind: n.Kind}
	switch n.Kind {
	case KInt:
		c.Int = make([]int64, in.N)
		for i := range c.Int {
			c.Int[i] = n.I
		}
	case KBool:
		c.Bool = make([]bool, in.N)
		for i := range c.Bool {
			c.Bool[i] = n.B
		}
	default:
		c.Item = constItemVec(n.It, in.N)
	}
	out.names = append(out.names, n.Col)
	out.cols = append(out.cols, c)
	return out
}

func (e *Exec) execSelect(n *Select, in *Table) *Table {
	cond := in.Bools(n.Cond)
	if !e.Par.on(in.N) {
		idx := make([]int32, 0, in.N/2)
		for i, b := range cond {
			if i&8191 == 8191 && e.stopRequested() {
				break // Run's post-operator checkpoint discards the partial table
			}
			if b != n.Neg {
				idx = append(idx, int32(i))
			}
		}
		out := in.Gather(idx)
		e.chargeTable(out)
		return out
	}
	rs := splitRows(in.N, e.Par.Workers)
	parts := make([][]int32, len(rs))
	e.Par.parRun(len(rs), func(k int) {
		local := make([]int32, 0, (rs[k][1]-rs[k][0])/2+1)
		for i := rs[k][0]; i < rs[k][1]; i++ {
			if cond[i] != n.Neg {
				local = append(local, int32(i))
			}
		}
		parts[k] = local
	})
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	idx := make([]int32, 0, total)
	for _, p := range parts {
		idx = append(idx, p...)
	}
	out := e.gather(in, idx)
	e.chargeTable(out)
	return out
}

// seqRank numbers rows 1.. per contiguous part run within [lo, hi); lo
// must start a run.
func seqRank(part, rank []int64, lo, hi int) {
	var cur int64
	var k int64
	for i := lo; i < hi; i++ {
		if i == lo || part[i] != cur {
			cur, k = part[i], 0
		}
		k++
		rank[i] = k
	}
}

func (e *Exec) execRowNum(n *RowNum, in *Table) *Table {
	e.charge(8 * int64(in.N)) // the rank column
	rank := make([]int64, in.N)
	switch n.Mode {
	case RankStream:
		// hash-based numbering in arrival order per group (§4.1): valid
		// under grpord(OrderBy, Part)
		if n.Part == "" {
			e.parFill(in.N, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					rank[i] = int64(i) + 1
				}
			})
		} else if part := in.Ints(n.Part); e.Par.on(in.N) && int64sNonDecreasing(part) {
			// clustered groups: arrival-order counters equal run-local
			// numbering, which partitions at group boundaries
			rs := splitRuns(in.N, e.Par.Workers, func(i int) bool { return part[i] != part[i-1] })
			e.Par.parRun(len(rs), func(k int) { seqRank(part, rank, rs[k][0], rs[k][1]) })
		} else {
			ctr := make(map[int64]int64, 64)
			for i := range rank {
				if i&8191 == 8191 && e.stopRequested() {
					break // Run's post-operator checkpoint discards the partial table
				}
				ctr[part[i]]++
				rank[i] = ctr[part[i]]
			}
		}
	case RankSeq:
		if n.Part == "" {
			e.parFill(in.N, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					rank[i] = int64(i) + 1
				}
			})
		} else if part := in.Ints(n.Part); e.Par.on(in.N) {
			// the RankSeq contract guarantees (Part, OrderBy) sort order,
			// so group-aligned chunks number independently
			rs := splitRuns(in.N, e.Par.Workers, func(i int) bool { return part[i] != part[i-1] })
			e.Par.parRun(len(rs), func(k int) { seqRank(part, rank, rs[k][0], rs[k][1]) })
		} else {
			seqRank(part, rank, 0, in.N)
		}
	default: // RankSort
		by := n.OrderBy
		desc := n.Desc
		if n.Part != "" {
			by = append([]string{n.Part}, by...)
			desc = append([]bool{false}, desc...)
			for len(desc) < len(by) {
				desc = append(desc, false)
			}
		}
		idx := SortIdx(in, by, desc, 0)
		if n.Part == "" {
			for r, i := range idx {
				rank[i] = int64(r) + 1
			}
		} else {
			part := in.Ints(n.Part)
			var cur int64
			var k int64
			for r, i := range idx {
				if r == 0 || part[i] != cur {
					cur, k = part[i], 0
				}
				k++
				rank[i] = k
			}
		}
	}
	out := &Table{N: in.N, names: append([]string(nil), in.names...), cols: append([]Col(nil), in.cols...)}
	out.names = append(out.names, n.Out)
	out.cols = append(out.cols, Col{Kind: KInt, Int: rank})
	return out
}

func (e *Exec) execSort(n *Sort, in *Table) *Table {
	e.Stats.SortedRows += int64(in.N)
	if n.RefinePrefix >= len(n.By) {
		return in
	}
	if n.RefinePrefix > 0 {
		e.Stats.RefineSort++
	} else {
		e.Stats.FullSorts++
	}
	idx := SortIdx(in, n.By, n.Desc, n.RefinePrefix)
	out := in.Gather(idx)
	e.chargeTable(out)
	return out
}

func (e *Exec) execHashJoin(n *HashJoin, l, r *Table) (*Table, error) {
	lkey := l.Ints(n.LKey)
	rkey := r.Ints(n.RKey)
	var lidx, ridx []int32
	if n.Pos && r.N > 0 {
		e.Stats.PosJoins++
		base := rkey[0]
		lidx, ridx = e.parPairs(l.N, func(lo, hi int) ([]int32, []int32) {
			var li, ri []int32
			for i := lo; i < hi; i++ {
				if (i-lo)&8191 == 8191 && e.stopRequested() {
					break
				}
				j := lkey[i] - base
				if j >= 0 && j < int64(r.N) {
					li = append(li, int32(i))
					ri = append(ri, int32(j))
				}
			}
			return li, ri
		})
	} else if n.PosLeft && l.N > 0 {
		e.Stats.PosJoins++
		base := lkey[0]
		lidx, ridx = e.parPairs(r.N, func(lo, hi int) ([]int32, []int32) {
			var li, ri []int32
			for j := lo; j < hi; j++ {
				if (j-lo)&8191 == 8191 && e.stopRequested() {
					break
				}
				i := rkey[j] - base
				if i >= 0 && i < int64(l.N) {
					li = append(li, int32(i))
					ri = append(ri, int32(j))
				}
			}
			return li, ri
		})
	} else {
		e.Stats.HashJoins++
		ht := e.buildHashTable(rkey)
		lidx, ridx = e.parPairs(l.N, func(lo, hi int) ([]int32, []int32) {
			var li, ri []int32
			charged := 0
			for i := lo; i < hi; i++ {
				if (i-lo)&4095 == 4095 {
					// probe output can explode on skewed keys: charge the
					// pairs as they accumulate, not just the final table
					e.charge(8 * int64(len(li)-charged))
					charged = len(li)
					if e.stopRequested() {
						break
					}
				}
				for _, j := range ht.lookup(lkey[i]) {
					li = append(li, int32(i))
					ri = append(ri, j)
				}
			}
			e.charge(8 * int64(len(li)-charged))
			return li, ri
		})
	}
	return e.joinGather(l, r, n.LCols, n.RCols, lidx, ridx)
}

func (e *Exec) joinGather(l, r *Table, lcols, rcols []ColRef, lidx, ridx []int32) (*Table, error) {
	out := &Table{N: len(lidx)}
	ncols := len(lcols) + len(rcols)
	out.names = make([]string, 0, ncols)
	out.cols = make([]Col, ncols)
	for _, ref := range lcols {
		out.names = append(out.names, ref.Dst)
	}
	for _, ref := range rcols {
		out.names = append(out.names, ref.Dst)
	}
	fill := func(i int) {
		if i < len(lcols) {
			out.cols[i] = l.Col(lcols[i].Src).Gather(lidx)
		} else {
			out.cols[i] = r.Col(rcols[i-len(lcols)].Src).Gather(ridx)
		}
	}
	if e.Par.on(len(lidx)) && ncols > 1 {
		e.Par.parRun(ncols, fill)
	} else {
		for i := 0; i < ncols; i++ {
			fill(i)
		}
	}
	e.chargeTable(out)
	return out, nil
}

func (e *Exec) execCross(n *Cross, l, r *Table) (*Table, error) {
	total := int64(l.N) * int64(r.N)
	if total > MaxRows {
		return nil, xqerr.Newf(xqerr.CodeResourceLimit,
			"Cartesian product of %d x %d rows exceeds the %d-row limit", l.N, r.N, MaxRows)
	}
	// the full pair-index size is known up front: charge before allocating
	if !e.charge(8 * total) {
		return nil, e.Mem.Err()
	}
	e.Stats.CrossRows += total
	lidx := make([]int32, 0, total)
	ridx := make([]int32, 0, total)
	for i := 0; i < l.N; i++ {
		if i&255 == 255 && e.stopRequested() {
			return nil, e.stopErr()
		}
		for j := 0; j < r.N; j++ {
			lidx = append(lidx, int32(i))
			ridx = append(ridx, int32(j))
		}
	}
	return e.joinGather(l, r, n.LCols, n.RCols, lidx, ridx)
}

// cancelcheck:exempt memory-bound column concatenation
// alloccheck:exempt no Exec receiver; the apply dispatch charges the result
func execUnion(in []*Table) *Table {
	first := in[0]
	out := &Table{}
	for _, name := range first.names {
		kind := first.Col(name).Kind
		c := Col{Kind: kind}
		for _, t := range in {
			src := t.Col(name)
			switch kind {
			case KInt:
				c.Int = append(c.Int, src.Int...)
			case KBool:
				c.Bool = append(c.Bool, src.Bool...)
			default:
				c.Item.AppendVec(&src.Item)
			}
		}
		out.names = append(out.names, name)
		out.cols = append(out.cols, c)
	}
	if len(out.cols) > 0 {
		out.N = out.cols[0].Len()
	}
	return out
}

func (e *Exec) execDiff(n *Diff, l, r *Table) *Table {
	e.charge(16 * int64(r.N)) // the key set, sized up front
	rset := make(map[int64]bool, r.N)
	for i, k := range r.Ints(n.RKey) {
		if i&8191 == 8191 && e.stopRequested() {
			break // Run's post-operator checkpoint discards the partial table
		}
		rset[k] = true
	}
	var idx []int32
	for i, k := range l.Ints(n.LKey) {
		if i&8191 == 8191 && e.stopRequested() {
			break
		}
		if !rset[k] {
			idx = append(idx, int32(i))
		}
	}
	out := l.Gather(idx)
	e.chargeTable(out)
	return out
}

func (e *Exec) execDistinct(n *Distinct, in *Table) *Table {
	cols := make([]*Col, len(n.By))
	for i, name := range n.By {
		cols[i] = in.Col(name)
	}
	var idx []int32
	if n.Merge {
		for i := 0; i < in.N; i++ {
			if i&8191 == 8191 && e.stopRequested() {
				break // Run's post-operator checkpoint discards the partial table
			}
			if i == 0 || compareRows(in, cols, nil, int32(i-1), int32(i)) != 0 {
				idx = append(idx, int32(i))
			}
		}
	} else {
		encs := make([]keyEnc, len(cols))
		for i, c := range cols {
			encs[i] = colKeyEnc(c)
		}
		e.charge(24 * int64(in.N)) // the dedup set, sized up front
		seen := make(map[string]bool, in.N)
		var key []byte
		for i := 0; i < in.N; i++ {
			if i&4095 == 4095 && e.stopRequested() {
				break
			}
			key = key[:0]
			for _, enc := range encs {
				key = enc(key, int32(i))
				key = append(key, 0xff)
			}
			if !seen[string(key)] {
				seen[string(key)] = true
				idx = append(idx, int32(i))
			}
		}
	}
	out := in.Gather(idx)
	e.chargeTable(out)
	return out
}

// keyEnc appends the hashable encoding of one column's row i to buf.
type keyEnc func(buf []byte, i int32) []byte

// itemKey appends the per-kind value encoding used for duplicate
// elimination: numeric values (integers and doubles) encode as their
// xs:double bit pattern so 1 and 1.0 collapse into one value; booleans,
// strings and node identities each keep their own tag, so values the eq
// operator cannot compare (1 versus true()) stay distinct, per the
// fn:distinct-values rules.
func itemKey(buf []byte, v *ItemVec, k xqt.Kind, i int32) []byte {
	switch k {
	case xqt.KNode, xqt.KAttr:
		buf = append(buf, byte(k))
		buf = appendInt(buf, int64(v.Cont[i]))
		return appendInt(buf, v.I[i])
	case xqt.KInt:
		buf = append(buf, 'n')
		return appendInt(buf, int64(math.Float64bits(float64(v.I[i]))))
	case xqt.KBool:
		buf = append(buf, 'b')
		return append(buf, byte(v.I[i]&1))
	case xqt.KDouble:
		buf = append(buf, 'n')
		return appendInt(buf, int64(math.Float64bits(v.F[i])))
	default:
		buf = append(buf, 's')
		return append(buf, v.S[i]...)
	}
}

// colKeyEnc builds the key encoder of one column, dispatching on the
// column kind — and, for uniform item columns, on the item kind — once
// instead of per row.
func colKeyEnc(c *Col) keyEnc {
	switch c.Kind {
	case KInt:
		return func(buf []byte, i int32) []byte { return appendInt(buf, c.Int[i]) }
	case KBool:
		return func(buf []byte, i int32) []byte {
			if c.Bool[i] {
				return append(buf, 1)
			}
			return append(buf, 0)
		}
	}
	v := &c.Item
	if k, ok := v.Uniform(); ok {
		return func(buf []byte, i int32) []byte { return itemKey(buf, v, k, i) }
	}
	return func(buf []byte, i int32) []byte { return itemKey(buf, v, v.Tags[i], i) }
}

func appendInt(buf []byte, v int64) []byte {
	for s := 56; s >= 0; s -= 8 {
		buf = append(buf, byte(v>>uint(s)))
	}
	return buf
}

func (e *Exec) execAggr(n *Aggr, in *Table) (*Table, error) {
	part := in.Ints(n.Part)
	var arg *ItemVec
	if n.Op != AggCount {
		arg = in.ItemVec(n.Arg)
	}
	if e.Par.on(in.N) && int64sNonDecreasing(part) {
		// clustered groups: chunk at group boundaries so every group is
		// accumulated by one worker in serial order (this keeps
		// floating-point sums bit-identical to serial execution)
		rs := splitRuns(in.N, e.Par.Workers, func(i int) bool { return part[i] != part[i-1] })
		pcs := make([][]int64, len(rs))
		vcs := make([][]xqt.Item, len(rs))
		stop := e.stopFunc()
		e.Par.parRun(len(rs), func(k int) {
			pcs[k], vcs[k] = aggrRange(n, part, arg, rs[k][0], rs[k][1], stop)
		})
		out := NewTable([]string{n.Part, n.Out}, []ColKind{KInt, KItem})
		for k := range pcs {
			out.Col(n.Part).Int = append(out.Col(n.Part).Int, pcs[k]...)
			for _, it := range vcs[k] {
				out.Col(n.Out).Item.Append(it)
			}
		}
		out.N = out.Col(n.Part).Len()
		e.chargeTable(out)
		return out, nil
	}
	pc, vc := aggrRange(n, part, arg, 0, in.N, e.stopFunc())
	out := NewTable([]string{n.Part, n.Out}, []ColKind{KInt, KItem})
	out.N = len(pc)
	out.Col(n.Part).Int = pc
	out.Col(n.Out).Item = NewItemVec(vc)
	e.chargeTable(out)
	return out, nil
}

// aggGroup accumulates one group's aggregate state.
type aggGroup struct {
	cnt    int64
	sumF   float64
	sumI   int64
	allInt bool
	minmax xqt.Item
}

// aggrRange aggregates rows [lo, hi) by part, returning one (part, value)
// row per group in first-appearance order. When the argument column has a
// uniform numeric tag, the accumulation loops run over the raw
// int64/float64 payload vectors — one kind dispatch per chunk instead of
// one per row (the accumulation order, and therefore every
// floating-point result bit, is unchanged). A non-nil stop is polled
// every few thousand rows; when it fires the partial result is returned
// (the caller's Run discards it and surfaces the context error).
func aggrRange(n *Aggr, part []int64, arg *ItemVec, lo, hi int, stop func() bool) ([]int64, []xqt.Item) {
	order := make([]int64, 0, 64)
	groups := make(map[int64]*aggGroup, 64)
	lookup := func(p int64) *aggGroup {
		g := groups[p]
		if g == nil {
			g = &aggGroup{allInt: true}
			groups[p] = g
			order = append(order, p)
		}
		g.cnt++
		return g
	}
	tag := xqt.KUntyped
	uniform := false
	if arg != nil {
		tag, uniform = arg.Uniform()
	}
	switch {
	case n.Op == AggCount:
		for i := lo; i < hi; i++ {
			if (i-lo)&8191 == 8191 && stop != nil && stop() {
				return nil, nil
			}
			lookup(part[i])
		}
	case uniform && tag == xqt.KInt && (n.Op == AggSum || n.Op == AggAvg):
		for i := lo; i < hi; i++ {
			if (i-lo)&8191 == 8191 && stop != nil && stop() {
				return nil, nil
			}
			g := lookup(part[i])
			g.sumI += arg.I[i]
			g.sumF += float64(arg.I[i])
		}
	case uniform && tag == xqt.KDouble && (n.Op == AggSum || n.Op == AggAvg):
		for i := lo; i < hi; i++ {
			if (i-lo)&8191 == 8191 && stop != nil && stop() {
				return nil, nil
			}
			g := lookup(part[i])
			g.allInt = false
			g.sumF += arg.F[i]
		}
	case uniform && tag == xqt.KInt && (n.Op == AggMin || n.Op == AggMax):
		// ties keep the earlier row, and the comparison is the xs:double
		// order xqt.SortLess applies to numeric items
		max := n.Op == AggMax
		for i := lo; i < hi; i++ {
			if (i-lo)&8191 == 8191 && stop != nil && stop() {
				return nil, nil
			}
			g := lookup(part[i])
			v := arg.I[i]
			if g.cnt == 1 ||
				(max && float64(g.minmax.I) < float64(v)) ||
				(!max && float64(v) < float64(g.minmax.I)) {
				g.minmax = xqt.Int(v)
			}
		}
	case uniform && tag == xqt.KDouble && (n.Op == AggMin || n.Op == AggMax):
		max := n.Op == AggMax
		for i := lo; i < hi; i++ {
			if (i-lo)&8191 == 8191 && stop != nil && stop() {
				return nil, nil
			}
			g := lookup(part[i])
			v := arg.F[i]
			if g.cnt == 1 || (max && g.minmax.F < v) || (!max && v < g.minmax.F) {
				g.minmax = xqt.Double(v)
			}
		}
	default:
		for i := lo; i < hi; i++ {
			if (i-lo)&8191 == 8191 && stop != nil && stop() {
				return nil, nil
			}
			g := lookup(part[i])
			switch n.Op {
			case AggSum, AggAvg:
				it := arg.At(i)
				if it.K == xqt.KInt {
					g.sumI += it.I
				} else {
					g.allInt = false
				}
				g.sumF += it.AsDouble()
			case AggMin:
				if g.cnt == 1 || xqt.SortLess(arg.At(i), g.minmax) {
					g.minmax = arg.At(i)
				}
			case AggMax:
				if g.cnt == 1 || xqt.SortLess(g.minmax, arg.At(i)) {
					g.minmax = arg.At(i)
				}
			}
		}
	}
	pc := make([]int64, len(order))
	vc := make([]xqt.Item, len(order))
	for i, p := range order {
		g := groups[p]
		pc[i] = p
		switch n.Op {
		case AggCount:
			vc[i] = xqt.Int(g.cnt)
		case AggSum:
			if g.allInt {
				vc[i] = xqt.Int(g.sumI)
			} else {
				vc[i] = xqt.Double(g.sumF)
			}
		case AggAvg:
			vc[i] = xqt.Double(g.sumF / float64(g.cnt))
		case AggMin, AggMax:
			vc[i] = g.minmax
		}
	}
	return pc, vc
}

// stepInputSorted verifies the (item, iter) sort contract of Step inputs.
func stepInputSorted(items *ItemVec, iters []int64) bool {
	if k, ok := items.Uniform(); ok && (k == xqt.KNode || k == xqt.KAttr) {
		// uniform node column: document order is (container, pre) order
		// directly on the payload vectors
		for i := 1; i < items.Len(); i++ {
			switch {
			case items.Cont[i-1] != items.Cont[i]:
				if items.Cont[i-1] > items.Cont[i] {
					return false
				}
			case items.I[i-1] != items.I[i]:
				if items.I[i-1] > items.I[i] {
					return false
				}
			case iters[i-1] > iters[i]:
				return false
			}
		}
		return true
	}
	for i := 1; i < items.Len(); i++ {
		a, b := items.At(i-1), items.At(i)
		if xqt.SortLess(a, b) {
			continue
		}
		if xqt.SortLess(b, a) || iters[i-1] > iters[i] {
			return false
		}
	}
	return true
}

// stepSeg is one contiguous segment of a Step input: either a run of
// node-context rows [lo, hi) all living in container cont, or a single
// attribute row (attrRow = true; only the parent axis resolves those).
type stepSeg struct {
	cont    int32
	lo, hi  int
	attrRow bool
}

// stepSegments cuts the (item, iter)-sorted Step input into per-container
// context runs. With a sharded collection each shard is one segment, so
// the segments are the unit of cross-shard parallelism.
func stepSegments(items *ItemVec, axis scj.Axis) []stepSeg {
	uniformNodes := false
	if k, ok := items.Uniform(); ok && k == xqt.KNode {
		uniformNodes = true
	}
	var segs []stepSeg
	i := 0
	for i < items.Len() {
		if items.KindAt(i) != xqt.KNode {
			// attribute nodes have no children etc.; only the parent
			// axis resolves to their owner
			if items.KindAt(i) == xqt.KAttr && axis == scj.Parent {
				segs = append(segs, stepSeg{cont: items.Cont[i], lo: i, hi: i + 1, attrRow: true})
			}
			i++
			continue
		}
		cont := items.Cont[i]
		j := i
		if uniformNodes {
			for j < items.Len() && items.Cont[j] == cont {
				j++
			}
		} else {
			for j < items.Len() && items.KindAt(j) == xqt.KNode && items.Cont[j] == cont {
				j++
			}
		}
		segs = append(segs, stepSeg{cont: cont, lo: i, hi: j})
		i = j
	}
	return segs
}

// stepSegRun evaluates one segment with a worker budget: budget <= 1
// runs the serial step algorithm, larger budgets hand the segment to
// ParallelStep (which still falls back to serial below the threshold).
func (e *Exec) stepSegRun(n *Step, iters []int64, items *ItemVec, s stepSeg, budget int, st *scj.Stats) scj.Pairs {
	if s.attrRow {
		var out scj.Pairs
		c := e.Pool.Get(s.cont)
		owner := c.AttrOwner[items.I[s.lo]]
		if scj.CompileTest(c, n.Test)(owner) {
			out.Pre = []int32{owner}
			out.Iter = []int32{int32(iters[s.lo])}
		}
		return out
	}
	// the context relation is emitted as columns straight off the typed
	// payload vectors
	ctx := scj.FromColumns(items.I, iters, s.lo, s.hi)
	c := e.Pool.Get(s.cont)
	if budget > 1 {
		return scj.ParallelStepSlots(e.Par.Slots, c, ctx, n.Axis, n.Test, n.Variant, budget, e.Par.Threshold, st)
	}
	return scj.Step(c, ctx, n.Axis, n.Test, n.Variant, st)
}

func (e *Exec) execStep(n *Step, in *Table) (*Table, error) {
	iters := in.Ints(n.IterCol)
	items := in.ItemVec(n.ItemCol)
	if !stepInputSorted(items, iters) {
		return nil, fmt.Errorf("ralg: step(%v) input not sorted on (item, iter): plan misses a sort", n.Axis)
	}
	segs := stepSegments(items, n.Axis)
	results := make([]scj.Pairs, len(segs))
	if e.Par.Workers > 1 && len(segs) > 1 {
		// cross-shard parallelism: each container run is one task on the
		// worker pool, and the worker budget is split across segments in
		// proportion to their containers' sizes, so a dominant segment
		// (one huge document next to small shards) keeps its
		// intra-container range/context partitioning. Context rows are
		// not the weight because one root row can cover a whole document.
		// Per-segment stats are summed afterwards; concatenating segment
		// outputs in segment order reproduces the serial emission order
		// exactly.
		weights := make([]int64, len(segs))
		var total int64
		for k, s := range segs {
			w := int64(1)
			if !s.attrRow {
				if l := int64(e.Pool.Get(s.cont).Len()); l > 1 {
					w = l
				}
			}
			weights[k] = w
			total += w
		}
		stats := make([]scj.Stats, len(segs))
		stop := e.stopFunc()
		charge := e.chargeFunc()
		e.Par.parRun(len(segs), func(k int) {
			stats[k].Stop = stop
			stats[k].Charge = charge
			budget := int(int64(e.Par.Workers) * weights[k] / total)
			results[k] = e.stepSegRun(n, iters, items, segs[k], budget, &stats[k])
		})
		for k := range stats {
			e.Stats.Step.Touched += stats[k].Touched
			e.Stats.Step.Emitted += stats[k].Emitted
			e.Stats.Step.Pruned += stats[k].Pruned
		}
	} else {
		stop := e.stopFunc()
		e.Stats.Step.Stop = stop
		e.Stats.Step.Charge = e.chargeFunc()
		for k, s := range segs {
			if stop != nil && stop() {
				break
			}
			results[k] = e.stepSegRun(n, iters, items, s, e.Par.Workers, &e.Stats.Step)
		}
		e.Stats.Step.Stop = nil
		e.Stats.Step.Charge = nil
	}
	out := NewTable([]string{"iter", "item"}, []ColKind{KInt, KItem})
	total := 0
	for _, r := range results {
		total += r.Len()
	}
	// 20 B/row: the iter int64 plus the node column's cont/pre vectors;
	// the size is known before allocating, so an over-budget step fails
	// without materializing the output
	if !e.charge(20 * int64(total)) {
		return nil, e.Mem.Err()
	}
	ic := out.Col("iter")
	tc := out.Col("item")
	ic.Int = make([]int64, total)
	tc.Item.growRows(xqt.KNode, total)
	base := 0
	for k, res := range results {
		cont := segs[k].cont
		b := base
		e.parFill(res.Len(), func(lo, hi int) {
			for r := lo; r < hi; r++ {
				ic.Int[b+r] = int64(res.Iter[r])
				tc.Item.Cont[b+r] = cont
				tc.Item.I[b+r] = int64(res.Pre[r])
			}
		})
		base += res.Len()
	}
	out.N = total
	return out, nil
}

func (e *Exec) execAttrStep(n *AttrStep, in *Table) (*Table, error) {
	iters := in.Ints(n.IterCol)
	items := in.ItemVec(n.ItemCol)
	if !stepInputSorted(items, iters) {
		return nil, fmt.Errorf("ralg: attribute step input not sorted on (item, iter)")
	}
	// newRunAt is the splitRuns boundary predicate: row i starts a new
	// run of identical context items
	newRunAt := func(i int) bool { return items.At(i) != items.At(i-1) }
	if k, ok := items.Uniform(); ok && (k == xqt.KNode || k == xqt.KAttr) {
		newRunAt = func(i int) bool {
			return items.Cont[i] != items.Cont[i-1] || items.I[i] != items.I[i-1]
		}
	}
	out := NewTable([]string{"iter", "item"}, []ColKind{KInt, KItem})
	if e.Par.on(in.N) {
		// chunk at identical-item run boundaries: each run is resolved by
		// one worker, so concatenating chunk outputs reproduces the
		// serial (attribute, iter) order
		rs := splitRuns(in.N, e.Par.Workers, newRunAt)
		ics := make([][]int64, len(rs))
		tcs := make([]ItemVec, len(rs))
		e.Par.parRun(len(rs), func(k int) {
			ics[k], tcs[k] = e.attrStepRange(n, iters, items, rs[k][0], rs[k][1])
		})
		for k := range ics {
			out.Col("iter").Int = append(out.Col("iter").Int, ics[k]...)
			out.Col("item").Item.AppendVec(&tcs[k])
		}
	} else {
		ic, tc := e.attrStepRange(n, iters, items, 0, in.N)
		out.Col("iter").Int = ic
		out.Col("item").Item = tc
	}
	out.N = out.Col("iter").Len()
	e.chargeTable(out)
	return out, nil
}

// attrStepRange resolves the attribute axis for input rows [lo, hi); lo
// must start a run of identical context items.
func (e *Exec) attrStepRange(n *AttrStep, iters []int64, items *ItemVec, lo, hi int) ([]int64, ItemVec) {
	var ic []int64
	var tc ItemVec
	i := lo
	runs := 0
	for i < hi {
		runs++
		if runs&4095 == 4095 && e.stopRequested() {
			break // the caller's partial output is discarded at Run's checkpoint
		}
		if items.KindAt(i) != xqt.KNode {
			i++
			continue
		}
		// group the run of identical context nodes so the output stays
		// (attribute, iter)-ordered
		j := i
		for j < hi && items.KindAt(j) == xqt.KNode &&
			items.Cont[j] == items.Cont[i] && items.I[j] == items.I[i] {
			j++
		}
		c := e.Pool.Get(items.Cont[i])
		pre := int32(items.I[i])
		if c.Kind[pre] == store.KindElem {
			ac, alo, ahi := c.Attrs(pre)
			for a := alo; a < ahi; a++ {
				if n.NameTest != "" && ac.Names.Name(ac.AttrName[a]) != n.NameTest {
					continue
				}
				for k := i; k < j; k++ {
					ic = append(ic, iters[k])
					tc.Append(xqt.Attr(ac.ID, a))
				}
			}
		}
		i = j
	}
	return ic, tc
}

func (e *Exec) execEBV(n *EBV, in *Table) (*Table, error) {
	part := in.Ints(n.Part)
	items := in.ItemVec(n.Item)
	out := NewTable([]string{n.Part, n.Out}, []ColKind{KInt, KBool})
	pc := out.Col(n.Part)
	bc := out.Col(n.Out)
	i := 0
	groups := 0
	for i < len(part) {
		groups++
		if groups&8191 == 8191 && e.stopRequested() {
			break // Run's post-operator checkpoint discards the partial table
		}
		j := i
		for j < len(part) && part[j] == part[i] {
			j++
		}
		v, err := ebvGroup(items, i, j)
		if err != nil {
			return nil, err
		}
		pc.Int = append(pc.Int, part[i])
		bc.Bool = append(bc.Bool, v)
		i = j
	}
	out.N = pc.Len()
	e.chargeTable(out)
	return out, nil
}

// ebvGroup computes the effective boolean value of rows [lo, hi) of one
// iteration group.
func ebvGroup(items *ItemVec, lo, hi int) (bool, error) {
	if k := items.KindAt(lo); k == xqt.KNode || k == xqt.KAttr {
		return true, nil
	}
	if hi-lo > 1 {
		return false, xqerr.Newf("FORG0006", "effective boolean value of a sequence of %d atomic values", hi-lo)
	}
	return ebvAtom(items.At(lo)), nil
}

func ebvAtom(it xqt.Item) bool {
	switch it.K {
	case xqt.KBool:
		return it.I != 0
	case xqt.KInt:
		return it.I != 0
	case xqt.KDouble:
		return it.F != 0 && !math.IsNaN(it.F)
	case xqt.KString, xqt.KUntyped:
		return it.S != ""
	}
	return true
}

// cancelcheck:exempt memory-bound adjacent-equality scan
func execCardCheck(n *CardCheck, in *Table) (*Table, error) {
	if n.AtMostOne {
		part := in.Ints(n.Part)
		for i := 1; i < len(part); i++ {
			if part[i] == part[i-1] {
				return nil, xqerr.Newf("FORG0003", "%s applied to a sequence with more than one item", n.Fn)
			}
		}
	}
	return in, nil
}

func (e *Exec) atomize(it xqt.Item) xqt.Item {
	switch it.K {
	case xqt.KNode:
		c := e.Pool.Get(it.Cont)
		return xqt.Untyped(c.StringValue(int32(it.I)))
	case xqt.KAttr:
		c := e.Pool.Get(it.Cont)
		return xqt.Untyped(c.AttrVal[it.I])
	}
	return it
}

// vecView is a uniformly tagged columnar view of an argument column:
// integer and boolean table columns view as xs:integer/xs:boolean
// payload vectors, uniform atom columns expose their payloads directly,
// and uniform node columns are atomized in bulk through the container's
// string-value kernels (becoming xs:untypedAtomic, as row-wise
// atomization would). Mixed-tag columns have no view; the per-row
// fallback paths handle them.
type vecView struct {
	tag xqt.Kind
	i   []int64
	f   []float64
	s   []string
}

func (v vecView) numeric() bool { return v.tag == xqt.KInt || v.tag == xqt.KDouble }

// view resolves a column to its uniform typed view.
func (e *Exec) view(c *Col) (vecView, bool) {
	switch c.Kind {
	case KInt:
		return vecView{tag: xqt.KInt, i: c.Int}, true
	case KBool:
		iv := make([]int64, len(c.Bool))
		for j, b := range c.Bool {
			if b {
				iv[j] = 1
			}
		}
		return vecView{tag: xqt.KBool, i: iv}, true
	}
	vec := &c.Item
	k, ok := vec.Uniform()
	if !ok {
		return vecView{}, false
	}
	switch k {
	case xqt.KInt, xqt.KBool:
		return vecView{tag: k, i: vec.I}, true
	case xqt.KDouble:
		return vecView{tag: k, f: vec.F}, true
	case xqt.KString, xqt.KUntyped:
		return vecView{tag: k, s: vec.S}, true
	}
	return vecView{tag: xqt.KUntyped, s: e.atomizeNodes(k, vec)}, true
}

// atomizeNodes computes the string values of a uniform node column,
// batching per container run (the container lookup is hoisted out of the
// row loop into the store's bulk kernels).
func (e *Exec) atomizeNodes(k xqt.Kind, vec *ItemVec) []string {
	out := make([]string, vec.Len())
	i := 0
	for i < vec.Len() {
		cont := vec.Cont[i]
		j := i
		for j < vec.Len() && vec.Cont[j] == cont {
			j++
		}
		c := e.Pool.Get(cont)
		if k == xqt.KNode {
			c.StringValues(vec.I[i:j], out[i:j])
		} else {
			c.AttrValues(vec.I[i:j], out[i:j])
		}
		i = j
	}
	return out
}

// floats materializes the view as xs:double values (the AsDouble cast)
// in one conversion pass.
func (v vecView) floats(n int) []float64 {
	switch v.tag {
	case xqt.KDouble:
		return v.f
	case xqt.KInt, xqt.KBool:
		out := make([]float64, n)
		for i, x := range v.i {
			out[i] = float64(x)
		}
		return out
	default:
		out := make([]float64, n)
		for i, s := range v.s {
			out[i] = xqt.ParseDouble(s)
		}
		return out
	}
}

// strs materializes the view as xs:string values (the AsString cast).
func (v vecView) strs(n int) []string {
	switch v.tag {
	case xqt.KString, xqt.KUntyped:
		return v.s
	case xqt.KInt:
		out := make([]string, n)
		for i, x := range v.i {
			out[i] = strconv.FormatInt(x, 10)
		}
		return out
	case xqt.KBool:
		out := make([]string, n)
		for i, x := range v.i {
			if x != 0 {
				out[i] = "true"
			} else {
				out[i] = "false"
			}
		}
		return out
	default:
		out := make([]string, n)
		for i, x := range v.f {
			out[i] = xqt.FormatDouble(x)
		}
		return out
	}
}

// execFun evaluates row-wise functions. The typed-vector kernels of
// execFunVec cover columns with a uniform tag — one kind dispatch per
// column, tight loops over the raw payload vectors; mixed-tag columns
// fall back to the per-row polymorphic path below. Output columns fill
// through parFill, so large inputs are computed on row chunks in
// parallel (every row is independent; atomization only reads
// containers).
func (e *Exec) execFun(n *Fun, in *Table) (*Table, error) {
	// one output column of in.N rows, whatever the path below: charge a
	// flat estimate up front (bool outputs are 1 B/row, item outputs up
	// to ~40 B/row; 16 B is the mid estimate the bench validates)
	if !e.charge(16 * int64(in.N)) {
		return nil, e.Mem.Err()
	}
	out := &Table{N: in.N, names: append([]string(nil), in.names...), cols: append([]Col(nil), in.cols...)}
	switch n.Op {
	case FunAnd, FunOr:
		a, b := in.Bools(n.Args[0]), in.Bools(n.Args[1])
		c := make([]bool, in.N)
		e.parFill(in.N, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if n.Op == FunAnd {
					c[i] = a[i] && b[i]
				} else {
					c[i] = a[i] || b[i]
				}
			}
		})
		out.AddCol(n.Out, Col{Kind: KBool, Bool: c})
		return out, nil
	case FunNot:
		a := in.Bools(n.Args[0])
		c := make([]bool, in.N)
		e.parFill(in.N, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				c[i] = !a[i]
			}
		})
		out.AddCol(n.Out, Col{Kind: KBool, Bool: c})
		return out, nil
	}
	if c, ok := e.execFunVec(n, in); ok {
		out.AddCol(n.Out, c)
		return out, nil
	}

	// per-row fallback for mixed-tag columns. getter views integer
	// columns as xs:integer items so comparisons work uniformly over
	// pos/count columns and item columns.
	getter := func(name string) func(int) xqt.Item {
		col := in.Col(name)
		switch col.Kind {
		case KInt:
			return func(i int) xqt.Item { return xqt.Int(col.Int[i]) }
		case KBool:
			return func(i int) xqt.Item { return xqt.Bool(col.Bool[i]) }
		default:
			vec := &col.Item
			return func(i int) xqt.Item { return vec.At(i) }
		}
	}
	switch n.Op {
	case FunEq, FunNe, FunLt, FunLe, FunGt, FunGe:
		op := cmpOpOf(n.Op)
		g0, g1 := getter(n.Args[0]), getter(n.Args[1])
		c := make([]bool, in.N)
		e.parFill(in.N, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				c[i] = xqt.Compare(e.atomize(g0(i)), e.atomize(g1(i)), op)
			}
		})
		out.AddCol(n.Out, Col{Kind: KBool, Bool: c})
		return out, nil
	}
	// the remaining fallback ops read whole item columns; materialize
	// them once (comparisons above only need the getter closures)
	args := make([][]xqt.Item, len(n.Args))
	for i, name := range n.Args {
		if in.Col(name).Kind == KItem {
			args[i] = in.Items(name)
		}
	}
	switch n.Op {
	case FunNodeBefore, FunNodeAfter, FunNodeIs:
		c := make([]bool, in.N)
		e.parFill(in.N, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				a, b := args[0][i], args[1][i]
				switch n.Op {
				case FunNodeIs:
					c[i] = a == b
				case FunNodeBefore:
					c[i] = xqt.DocOrderLess(a, b, e.Pool.AttrOwnerOf)
				default:
					c[i] = xqt.DocOrderLess(b, a, e.Pool.AttrOwnerOf)
				}
			}
		})
		out.AddCol(n.Out, Col{Kind: KBool, Bool: c})
		return out, nil
	case FunContains, FunStartsWith:
		c := make([]bool, in.N)
		e.parFill(in.N, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				a := e.atomize(args[0][i]).AsString()
				b := e.atomize(args[1][i]).AsString()
				if n.Op == FunContains {
					c[i] = strings.Contains(a, b)
				} else {
					c[i] = strings.HasPrefix(a, b)
				}
			}
		})
		out.AddCol(n.Out, Col{Kind: KBool, Bool: c})
		return out, nil
	case FunIsNumeric:
		c := make([]bool, in.N)
		e.parFill(in.N, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				c[i] = args[0][i].IsNumeric()
			}
		})
		out.AddCol(n.Out, Col{Kind: KBool, Bool: c})
		return out, nil
	case FunEbvAtom:
		c := make([]bool, in.N)
		e.parFill(in.N, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				it := args[0][i]
				if it.IsNode() {
					c[i] = true
				} else {
					c[i] = ebvAtom(it)
				}
			}
		})
		out.AddCol(n.Out, Col{Kind: KBool, Bool: c})
		return out, nil
	}

	switch n.Op {
	case FunAdd, FunSub, FunMul, FunDiv, FunIDiv, FunMod, FunNeg, FunAtomize,
		FunStringOf, FunNumber, FunConcat, FunNameOf, FunLocalName, FunFloor,
		FunCeil, FunRound, FunStrLen:
	default:
		return nil, fmt.Errorf("ralg: unhandled function op %d", n.Op)
	}
	c := make([]xqt.Item, in.N)
	e.parFill(in.N, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			switch n.Op {
			case FunAdd, FunSub, FunMul, FunDiv, FunIDiv, FunMod:
				c[i] = arith(n.Op, e.atomize(args[0][i]), e.atomize(args[1][i]))
			case FunNeg:
				a := e.atomize(args[0][i])
				if a.K == xqt.KInt {
					c[i] = xqt.Int(-a.I)
				} else {
					c[i] = xqt.Double(-a.AsDouble())
				}
			case FunAtomize:
				c[i] = e.atomize(args[0][i])
			case FunStringOf:
				c[i] = xqt.Str(e.atomize(args[0][i]).AsString())
			case FunNumber:
				c[i] = xqt.Double(e.atomize(args[0][i]).AsDouble())
			case FunConcat:
				c[i] = xqt.Str(e.atomize(args[0][i]).AsString() + e.atomize(args[1][i]).AsString())
			case FunNameOf:
				c[i] = xqt.Str(e.nameOf(args[0][i]))
			case FunLocalName:
				c[i] = xqt.Str(xqt.LocalName(e.nameOf(args[0][i])))
			case FunFloor:
				c[i] = xqt.Double(math.Floor(e.atomize(args[0][i]).AsDouble()))
			case FunCeil:
				c[i] = xqt.Double(math.Ceil(e.atomize(args[0][i]).AsDouble()))
			case FunRound:
				c[i] = xqt.Double(xqt.Round(e.atomize(args[0][i]).AsDouble()))
			case FunStrLen:
				c[i] = xqt.Int(int64(utf8.RuneCountInString(e.atomize(args[0][i]).AsString())))
			}
		}
	})
	out.AddCol(n.Out, Col{Kind: KItem, Item: NewItemVec(c)})
	return out, nil
}

func cmpOpOf(op FunOp) xqt.CmpOp {
	switch op {
	case FunEq:
		return xqt.CmpEq
	case FunNe:
		return xqt.CmpNe
	case FunLt:
		return xqt.CmpLt
	case FunLe:
		return xqt.CmpLe
	case FunGt:
		return xqt.CmpGt
	}
	return xqt.CmpGe
}

// uniformIntCol / uniformDoubleCol / uniformStringCol wrap a raw payload
// vector as a uniform item column.
func uniformIntCol(vs []int64) Col {
	return Col{Kind: KItem, Item: ItemVec{Tag: xqt.KInt, n: len(vs), I: vs}}
}

func uniformDoubleCol(vs []float64) Col {
	return Col{Kind: KItem, Item: ItemVec{Tag: xqt.KDouble, n: len(vs), F: vs}}
}

func uniformStringCol(tag xqt.Kind, vs []string) Col {
	return Col{Kind: KItem, Item: ItemVec{Tag: tag, n: len(vs), S: vs}}
}

// viewTag is the cheap pre-flight of view: the tag a column's view
// would have, without materializing payloads or atomizing node columns.
// Binary kernels probe both columns with it before paying for view.
func viewTag(c *Col) (xqt.Kind, bool) {
	switch c.Kind {
	case KInt:
		return xqt.KInt, true
	case KBool:
		return xqt.KBool, true
	}
	k, ok := c.Item.Uniform()
	if !ok {
		return xqt.KUntyped, false
	}
	if k == xqt.KNode || k == xqt.KAttr {
		return xqt.KUntyped, true
	}
	return k, true
}

// bothViewable reports whether both argument columns of n can take a
// typed kernel.
func bothViewable(n *Fun, in *Table) bool {
	_, oka := viewTag(in.Col(n.Args[0]))
	_, okb := viewTag(in.Col(n.Args[1]))
	return oka && okb
}

// execFunVec is the typed-vector fast path of execFun: when every
// argument column has a uniform tag, the operator dispatches on the tag
// combination once and runs a monomorphic kernel over the raw payload
// vectors. Returns ok=false when a column is mixed (or the op has no
// kernel); the caller then takes the per-row path, which computes the
// identical result.
//
// alloccheck:exempt the output column is covered by execFun's upfront
// per-row charge; this is only its typed fast path
func (e *Exec) execFunVec(n *Fun, in *Table) (Col, bool) {
	nr := in.N
	switch n.Op {
	case FunEq, FunNe, FunLt, FunLe, FunGt, FunGe:
		ta, oka := viewTag(in.Col(n.Args[0]))
		tb, okb := viewTag(in.Col(n.Args[1]))
		if !oka || !okb || (ta == xqt.KBool) != (tb == xqt.KBool) {
			// mixed column, or boolean against non-boolean (which
			// coerces per row): no kernel
			return Col{}, false
		}
		va, _ := e.view(in.Col(n.Args[0]))
		vb, _ := e.view(in.Col(n.Args[1]))
		op := cmpOpOf(n.Op)
		c := make([]bool, nr)
		switch {
		case va.tag == xqt.KBool && vb.tag == xqt.KBool:
			e.parFill(nr, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					c[i] = xqt.CompareInt(va.i[i], vb.i[i], op)
				}
			})
		case va.tag == xqt.KInt && vb.tag == xqt.KInt:
			e.parFill(nr, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					c[i] = xqt.CompareInt(va.i[i], vb.i[i], op)
				}
			})
		case va.numeric() || vb.numeric():
			fa, fb := va.floats(nr), vb.floats(nr)
			e.parFill(nr, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					c[i] = xqt.CompareFloat(fa[i], fb[i], op)
				}
			})
		default:
			// string/untyped on both sides compares as strings
			e.parFill(nr, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					c[i] = xqt.CompareString(va.s[i], vb.s[i], op)
				}
			})
		}
		return Col{Kind: KBool, Bool: c}, true

	case FunAdd, FunSub, FunMul, FunDiv, FunIDiv, FunMod:
		if !bothViewable(n, in) {
			return Col{}, false
		}
		va, _ := e.view(in.Col(n.Args[0]))
		vb, _ := e.view(in.Col(n.Args[1]))
		if va.tag == xqt.KInt && vb.tag == xqt.KInt && n.Op != FunDiv {
			if n.Op == FunIDiv || n.Op == FunMod {
				for _, y := range vb.i {
					if y == 0 {
						return Col{}, false // NaN rows: per-row path
					}
				}
			}
			c := make([]int64, nr)
			e.parFill(nr, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					x, y := va.i[i], vb.i[i]
					switch n.Op {
					case FunAdd:
						c[i] = x + y
					case FunSub:
						c[i] = x - y
					case FunMul:
						c[i] = x * y
					case FunIDiv:
						c[i] = x / y
					default: // FunMod
						c[i] = x % y
					}
				}
			})
			return uniformIntCol(c), true
		}
		fa, fb := va.floats(nr), vb.floats(nr)
		if n.Op == FunIDiv {
			c := make([]int64, nr)
			e.parFill(nr, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					c[i] = int64(fa[i] / fb[i])
				}
			})
			return uniformIntCol(c), true
		}
		c := make([]float64, nr)
		e.parFill(nr, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				x, y := fa[i], fb[i]
				switch n.Op {
				case FunAdd:
					c[i] = x + y
				case FunSub:
					c[i] = x - y
				case FunMul:
					c[i] = x * y
				case FunDiv:
					c[i] = x / y
				default: // FunMod
					c[i] = math.Mod(x, y)
				}
			}
		})
		return uniformDoubleCol(c), true

	case FunNeg:
		va, ok := e.view(in.Col(n.Args[0]))
		if !ok {
			return Col{}, false
		}
		if va.tag == xqt.KInt {
			c := make([]int64, nr)
			e.parFill(nr, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					c[i] = -va.i[i]
				}
			})
			return uniformIntCol(c), true
		}
		fa := va.floats(nr)
		c := make([]float64, nr)
		e.parFill(nr, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				c[i] = -fa[i]
			}
		})
		return uniformDoubleCol(c), true

	case FunAtomize:
		col := in.Col(n.Args[0])
		if col.Kind != KItem {
			return Col{}, false
		}
		k, ok := col.Item.Uniform()
		if !ok {
			return Col{}, false
		}
		if k == xqt.KNode || k == xqt.KAttr {
			return uniformStringCol(xqt.KUntyped, e.atomizeNodes(k, &col.Item)), true
		}
		// atoms atomize to themselves: share the column
		return Col{Kind: KItem, Item: col.Item}, true

	case FunStringOf:
		va, ok := e.view(in.Col(n.Args[0]))
		if !ok {
			return Col{}, false
		}
		return uniformStringCol(xqt.KString, va.strs(nr)), true

	case FunNumber:
		va, ok := e.view(in.Col(n.Args[0]))
		if !ok {
			return Col{}, false
		}
		return uniformDoubleCol(va.floats(nr)), true

	case FunConcat:
		if !bothViewable(n, in) {
			return Col{}, false
		}
		va, _ := e.view(in.Col(n.Args[0]))
		vb, _ := e.view(in.Col(n.Args[1]))
		sa, sb := va.strs(nr), vb.strs(nr)
		c := make([]string, nr)
		e.parFill(nr, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				c[i] = sa[i] + sb[i]
			}
		})
		return uniformStringCol(xqt.KString, c), true

	case FunContains, FunStartsWith:
		if !bothViewable(n, in) {
			return Col{}, false
		}
		va, _ := e.view(in.Col(n.Args[0]))
		vb, _ := e.view(in.Col(n.Args[1]))
		sa, sb := va.strs(nr), vb.strs(nr)
		c := make([]bool, nr)
		e.parFill(nr, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if n.Op == FunContains {
					c[i] = strings.Contains(sa[i], sb[i])
				} else {
					c[i] = strings.HasPrefix(sa[i], sb[i])
				}
			}
		})
		return Col{Kind: KBool, Bool: c}, true

	case FunFloor, FunCeil, FunRound:
		va, ok := e.view(in.Col(n.Args[0]))
		if !ok {
			return Col{}, false
		}
		fa := va.floats(nr)
		c := make([]float64, nr)
		e.parFill(nr, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				switch n.Op {
				case FunFloor:
					c[i] = math.Floor(fa[i])
				case FunCeil:
					c[i] = math.Ceil(fa[i])
				default:
					c[i] = xqt.Round(fa[i])
				}
			}
		})
		return uniformDoubleCol(c), true

	case FunStrLen:
		va, ok := e.view(in.Col(n.Args[0]))
		if !ok {
			return Col{}, false
		}
		sa := va.strs(nr)
		c := make([]int64, nr)
		e.parFill(nr, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				c[i] = int64(utf8.RuneCountInString(sa[i]))
			}
		})
		return uniformIntCol(c), true

	case FunNameOf, FunLocalName:
		col := in.Col(n.Args[0])
		if col.Kind != KItem {
			return Col{}, false
		}
		vec := &col.Item
		k, ok := vec.Uniform()
		if !ok || (k != xqt.KNode && k != xqt.KAttr) {
			return Col{}, false
		}
		c := make([]string, nr)
		i := 0
		for i < nr {
			cont := vec.Cont[i]
			j := i
			for j < nr && vec.Cont[j] == cont {
				j++
			}
			cc := e.Pool.Get(cont)
			if k == xqt.KNode {
				cc.NamesOf(vec.I[i:j], c[i:j])
			} else {
				cc.AttrNames(vec.I[i:j], c[i:j])
			}
			i = j
		}
		if n.Op == FunLocalName {
			for i := range c {
				c[i] = xqt.LocalName(c[i])
			}
		}
		return uniformStringCol(xqt.KString, c), true

	case FunIsNumeric:
		col := in.Col(n.Args[0])
		if col.Kind != KItem {
			return Col{}, false
		}
		c := make([]bool, nr)
		if k, ok := col.Item.Uniform(); ok {
			num := k == xqt.KInt || k == xqt.KDouble
			for i := range c {
				c[i] = num
			}
		} else {
			for i, k := range col.Item.Tags {
				c[i] = k == xqt.KInt || k == xqt.KDouble
			}
		}
		return Col{Kind: KBool, Bool: c}, true

	case FunEbvAtom:
		col := in.Col(n.Args[0])
		if col.Kind != KItem {
			return Col{}, false
		}
		vec := &col.Item
		k, ok := vec.Uniform()
		if !ok {
			return Col{}, false
		}
		c := make([]bool, nr)
		switch k {
		case xqt.KBool, xqt.KInt:
			for i := range c {
				c[i] = vec.I[i] != 0
			}
		case xqt.KDouble:
			for i := range c {
				c[i] = vec.F[i] != 0 && !math.IsNaN(vec.F[i])
			}
		case xqt.KString, xqt.KUntyped:
			for i := range c {
				c[i] = vec.S[i] != ""
			}
		default: // nodes are always true
			for i := range c {
				c[i] = true
			}
		}
		return Col{Kind: KBool, Bool: c}, true
	}
	return Col{}, false
}

func (e *Exec) nameOf(it xqt.Item) string {
	switch it.K {
	case xqt.KNode:
		return e.Pool.Get(it.Cont).NameOf(int32(it.I))
	case xqt.KAttr:
		c := e.Pool.Get(it.Cont)
		return c.Names.Name(c.AttrName[it.I])
	}
	return ""
}

// arith implements XQuery arithmetic with numeric promotion: integer
// operands stay integral (except div), everything else is xs:double.
func arith(op FunOp, a, b xqt.Item) xqt.Item {
	if a.K == xqt.KInt && b.K == xqt.KInt && op != FunDiv {
		x, y := a.I, b.I
		switch op {
		case FunAdd:
			return xqt.Int(x + y)
		case FunSub:
			return xqt.Int(x - y)
		case FunMul:
			return xqt.Int(x * y)
		case FunIDiv:
			if y == 0 {
				return xqt.Double(math.NaN())
			}
			return xqt.Int(x / y)
		case FunMod:
			if y == 0 {
				return xqt.Double(math.NaN())
			}
			return xqt.Int(x % y)
		}
	}
	x, y := a.AsDouble(), b.AsDouble()
	switch op {
	case FunAdd:
		return xqt.Double(x + y)
	case FunSub:
		return xqt.Double(x - y)
	case FunMul:
		return xqt.Double(x * y)
	case FunDiv:
		return xqt.Double(x / y)
	case FunIDiv:
		return xqt.Int(int64(x / y))
	case FunMod:
		return xqt.Double(math.Mod(x, y))
	}
	return xqt.Double(math.NaN())
}

// cmpClass determines how a set of atoms compares: numeric dominates
// string. Returns (numeric, mixedNodes).
func cmpClass(items []xqt.Item) (numeric bool, uniform bool) {
	sawNum, sawStr := false, false
	for _, it := range items {
		if it.IsNumeric() {
			sawNum = true
		} else {
			sawStr = true
		}
	}
	return sawNum, !(sawNum && sawStr)
}

// atomCol materializes the per-row atomization of an item column (the
// mixed-tag fallback of the existential joins).
func (e *Exec) atomCol(c *Col) []xqt.Item {
	vec := &c.Item
	out := make([]xqt.Item, vec.Len())
	for i := range out {
		out[i] = e.atomize(vec.At(i))
	}
	return out
}

// viewAtoms reconstructs the atomized items of a viewed column (used
// when a uniform column meets a heterogeneous partner and the join falls
// back to per-pair comparison).
func viewAtoms(v vecView, n int) []xqt.Item {
	out := make([]xqt.Item, n)
	switch v.tag {
	case xqt.KInt, xqt.KBool:
		for i, x := range v.i {
			out[i] = xqt.Item{K: v.tag, I: x}
		}
	case xqt.KDouble:
		for i, x := range v.f {
			out[i] = xqt.Double(x)
		}
	default:
		for i, s := range v.s {
			out[i] = xqt.Item{K: v.tag, S: s}
		}
	}
	return out
}

// execExistJoin evaluates the existential general-comparison join. Both
// inputs resolve to raw xs:double or string key vectors — through the
// typed views when the columns are uniform (the common case), through
// per-row atomization otherwise — and the join kernels below run over
// those raw vectors.
func (e *Exec) execExistJoin(n *ExistJoin, l, r *Table) (*Table, error) {
	liter := l.Ints(n.LIter)
	riter := r.Ints(n.RIter)

	var latoms, ratoms []xqt.Item // materialized only off the fast path
	lv, lok := e.view(l.Col(n.LItem))
	rv, rok := e.view(r.Col(n.RItem))
	lnum, lu := lv.numeric(), true
	rnum, ru := rv.numeric(), true
	if !lok {
		latoms = e.atomCol(l.Col(n.LItem))
		lnum, lu = cmpClass(latoms)
	}
	if !rok {
		ratoms = e.atomCol(r.Col(n.RItem))
		rnum, ru = cmpClass(ratoms)
	}
	uniform := lu && ru && (lnum == rnum || l.N == 0 || r.N == 0)
	numeric := lnum || rnum

	// vector materializers for the uniform paths
	toFloats := func(v vecView, ok bool, atoms []xqt.Item, n int) []float64 {
		if ok {
			return v.floats(n)
		}
		out := make([]float64, n)
		for i, it := range atoms {
			out[i] = it.AsDouble()
		}
		return out
	}
	toStrs := func(v vecView, ok bool, atoms []xqt.Item, n int) []string {
		if ok {
			return v.strs(n)
		}
		out := make([]string, n)
		for i, it := range atoms {
			out[i] = it.AsString()
		}
		return out
	}

	var p1, p2 []int64
	switch {
	case n.Cmp == xqt.CmpEq && uniform:
		// the build table hashes the whole right input: charge it before
		// the package-level join helpers allocate it
		if !e.charge(32 * int64(r.N)) {
			return nil, e.Mem.Err()
		}
		if numeric {
			p1, p2 = existHashJoinF(liter, toFloats(lv, lok, latoms, l.N), riter, toFloats(rv, rok, ratoms, r.N))
		} else {
			p1, p2 = existHashJoinS(liter, toStrs(lv, lok, latoms, l.N), riter, toStrs(rv, rok, ratoms, r.N))
		}
		e.Stats.HashJoins++
	case n.Cmp != xqt.CmpEq && n.Cmp != xqt.CmpNe && uniform:
		// Figure 8(b): under existential semantics an ordering
		// comparison only needs each iteration's extremum, so both
		// sides reduce to one row per iter before the join.
		var lf, rf []float64
		var ls, rs []string
		if numeric {
			lf = toFloats(lv, lok, latoms, l.N)
			rf = toFloats(rv, rok, ratoms, r.N)
		} else {
			ls = toStrs(lv, lok, latoms, l.N)
			rs = toStrs(rv, rok, ratoms, r.N)
		}
		lmax := n.Cmp == xqt.CmpGt || n.Cmp == xqt.CmpGe
		if numeric {
			liter, lf = reduceExtremumF(liter, lf, lmax)
			riter, rf = reduceExtremumF(riter, rf, !lmax)
		} else {
			liter, ls = reduceExtremumS(liter, ls, lmax)
			riter, rs = reduceExtremumS(riter, rs, !lmax)
		}
		e.Stats.ExistAggr++
		p1, p2 = e.existThetaJoin(n, liter, lf, ls, riter, rf, rs)
	default:
		// heterogeneous inputs: per-pair promotion via nested loop
		if latoms == nil {
			latoms = viewAtoms(lv, l.N)
		}
		if ratoms == nil {
			ratoms = viewAtoms(rv, r.N)
		}
		e.Stats.ThetaNL++
		charged := 0
		for i := range latoms {
			if i&255 == 255 {
				e.charge(16 * int64(len(p1)-charged))
				charged = len(p1)
				if e.stopRequested() {
					break
				}
			}
			for j := range ratoms {
				if xqt.Compare(latoms[i], ratoms[j], n.Cmp) {
					p1 = append(p1, liter[i])
					p2 = append(p2, riter[j])
				}
			}
		}
		e.charge(16 * int64(len(p1)-charged))
		p1, p2 = dedupPairs(p1, p2)
	}
	out := NewTable([]string{n.Out1, n.Out2}, []ColKind{KInt, KInt})
	out.N = len(p1)
	out.Col(n.Out1).Int = p1
	out.Col(n.Out2).Int = p2
	return out, nil
}

// reduceExtremumF keeps one row per iter: the minimum (max=false) or
// maximum (max=true) xs:double value. Input iters are clustered (the
// inputs are [iter, pos] sorted); the output keeps one row per cluster
// in input order. NaN is never less than anything, so a leading NaN
// survives — matching the item-at-a-time comparison semantics.
func reduceExtremumF(iters []int64, vals []float64, max bool) ([]int64, []float64) {
	var oi []int64
	var ov []float64
	i := 0
	for i < len(iters) {
		best := vals[i]
		j := i + 1
		for j < len(iters) && iters[j] == iters[i] {
			if (max && best < vals[j]) || (!max && vals[j] < best) {
				best = vals[j]
			}
			j++
		}
		oi = append(oi, iters[i])
		ov = append(ov, best)
		i = j
	}
	return oi, ov
}

// reduceExtremumS is reduceExtremumF under string ordering.
func reduceExtremumS(iters []int64, vals []string, max bool) ([]int64, []string) {
	var oi []int64
	var ov []string
	i := 0
	for i < len(iters) {
		best := vals[i]
		j := i + 1
		for j < len(iters) && iters[j] == iters[i] {
			if (max && best < vals[j]) || (!max && vals[j] < best) {
				best = vals[j]
			}
			j++
		}
		oi = append(oi, iters[i])
		ov = append(ov, best)
		i = j
	}
	return oi, ov
}

// existHashJoinF evaluates an existential eq join over raw xs:double key
// vectors: hash the right input by value bits (NaN joins nothing), probe
// in left order, and eliminate duplicate (iter1, iter2) pairs per
// left-iteration run (the merge-style δ of §4.2).
func existHashJoinF(liter []int64, lf []float64, riter []int64, rf []float64) (p1, p2 []int64) {
	ht := make(map[uint64][]int64, len(rf))
	for j, f := range rf {
		if math.IsNaN(f) {
			continue
		}
		k := math.Float64bits(f)
		ht[k] = append(ht[k], riter[j])
	}
	for i, f := range lf {
		if math.IsNaN(f) {
			continue
		}
		for _, i2 := range ht[math.Float64bits(f)] {
			p1 = append(p1, liter[i])
			p2 = append(p2, i2)
		}
	}
	return dedupPairs(p1, p2)
}

// existHashJoinS is existHashJoinF over string keys.
func existHashJoinS(liter []int64, ls []string, riter []int64, rs []string) (p1, p2 []int64) {
	ht := make(map[string][]int64, len(rs))
	for j, s := range rs {
		ht[s] = append(ht[s], riter[j])
	}
	for i, s := range ls {
		for _, i2 := range ht[s] {
			p1 = append(p1, liter[i])
			p2 = append(p2, i2)
		}
	}
	return dedupPairs(p1, p2)
}

// existThetaJoin evaluates <, <=, >, >= with the run-time "choose-plan"
// of §4.2: a small join sample estimates the hit rate, then either
// nested-loop join (output directly in [iter1, iter2] order) or a
// transient sorted index with binary-search lookups (output refine-sorted
// per iter1 chunk) evaluates the join. One of (lf, rf) and (ls, rs)
// carries the promoted comparison keys.
func (e *Exec) existThetaJoin(n *ExistJoin, liter []int64, lf []float64, ls []string, riter []int64, rf []float64, rs []string) (p1, p2 []int64) {
	numeric := lf != nil || rf != nil
	nl, nrt := len(liter), len(riter)
	cmpOK := func(i, k int) bool {
		if numeric {
			return xqt.CompareFloat(lf[i], rf[k], n.Cmp)
		}
		return xqt.CompareString(ls[i], rs[k], n.Cmp)
	}

	strategy := n.Strategy
	small := int64(nl)*int64(nrt) <= 4096
	// build the transient index (needed for sampling and index lookup)
	e.charge(4 * int64(nrt))
	perm := make([]int32, nrt)
	for i := range perm {
		perm[i] = int32(i)
	}
	if numeric {
		sort.SliceStable(perm, func(a, b int) bool { return rf[perm[a]] < rf[perm[b]] })
	} else {
		sort.SliceStable(perm, func(a, b int) bool { return rs[perm[a]] < rs[perm[b]] })
	}
	matchRange := func(i int) (int, int) {
		// rows [lo, hi) of perm satisfy l[i] Cmp r
		switch n.Cmp {
		case xqt.CmpLt, xqt.CmpLe:
			lo := sort.Search(len(perm), func(k int) bool { return cmpOK(i, int(perm[k])) })
			return lo, len(perm)
		default: // Gt, Ge
			hi := sort.Search(len(perm), func(k int) bool { return !cmpOK(i, int(perm[k])) })
			return 0, hi
		}
	}
	if strategy == ThetaAuto {
		if small {
			strategy = ThetaNestedLoop
		} else {
			// sample up to 64 probes to estimate the hit rate
			probes := 64
			if nl < probes {
				probes = nl
			}
			hits := int64(0)
			for s := 0; s < probes; s++ {
				i := s * nl / probes
				lo, hi := matchRange(i)
				hits += int64(hi - lo)
			}
			est := hits * int64(nl) / int64(probes)
			if est*4 >= int64(nl)*int64(nrt) {
				strategy = ThetaNestedLoop // result construction dominates
			} else {
				strategy = ThetaIndex
			}
		}
	}
	// pair output of a dense theta join approaches nl*nrt rows: charge
	// pairs as they accumulate so the budget trips mid-join
	charged := 0
	switch strategy {
	case ThetaNestedLoop:
		e.Stats.ThetaNL++
		for i := 0; i < nl; i++ {
			if i&255 == 255 {
				e.charge(16 * int64(len(p1)-charged))
				charged = len(p1)
				if e.stopRequested() {
					break
				}
			}
			for j := 0; j < nrt; j++ {
				if cmpOK(i, j) {
					p1 = append(p1, liter[i])
					p2 = append(p2, riter[j])
				}
			}
		}
	default:
		e.Stats.ThetaIdx++
		for i := 0; i < nl; i++ {
			if i&1023 == 1023 {
				e.charge(16 * int64(len(p1)-charged))
				charged = len(p1)
				if e.stopRequested() {
					break
				}
			}
			lo, hi := matchRange(i)
			start := len(p2)
			for k := lo; k < hi; k++ {
				p1 = append(p1, liter[i])
				p2 = append(p2, riter[perm[k]])
			}
			// refine-sort the chunk on iter2 (the index delivers value
			// order within an iter1 group)
			chunk := p2[start:]
			sort.Slice(chunk, func(a, b int) bool { return chunk[a] < chunk[b] })
		}
	}
	e.charge(16 * int64(len(p1)-charged))
	return dedupPairs(p1, p2)
}

// dedupPairs removes duplicate (iter1, iter2) pairs and establishes
// [iter1, iter2] order. Inputs that are already iter1-clustered (the
// common case: probes in left order) are deduplicated with a per-run
// merge; otherwise the pairs are sorted first.
func dedupPairs(p1, p2 []int64) ([]int64, []int64) {
	if len(p1) == 0 {
		return p1, p2
	}
	clustered := true
	for i := 1; i < len(p1); i++ {
		if p1[i] < p1[i-1] {
			clustered = false
			break
		}
	}
	if !clustered {
		idx := make([]int, len(p1))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			if p1[idx[a]] != p1[idx[b]] {
				return p1[idx[a]] < p1[idx[b]]
			}
			return p2[idx[a]] < p2[idx[b]]
		})
		q1 := make([]int64, len(p1))
		q2 := make([]int64, len(p2))
		for i, j := range idx {
			q1[i], q2[i] = p1[j], p2[j]
		}
		p1, p2 = q1, q2
	}
	o1 := p1[:0]
	o2 := p2[:0]
	start := 0
	for start < len(p1) {
		end := start + 1
		for end < len(p1) && p1[end] == p1[start] {
			end++
		}
		run := append([]int64(nil), p2[start:end]...)
		sort.Slice(run, func(a, b int) bool { return run[a] < run[b] })
		cur := p1[start]
		for k, v := range run {
			if k == 0 || v != run[k-1] {
				o1 = append(o1, cur)
				o2 = append(o2, v)
			}
		}
		start = end
	}
	return o1, o2
}

func (e *Exec) execElem(n *ElemConstruct, in []*Table) (*Table, error) {
	if e.Transient == nil {
		return nil, fmt.Errorf("ralg: element construction without a transient container")
	}
	loop := in[0].Ints("iter")
	content := in[1]
	citer := content.Ints("iter")
	citem := content.Items("item")
	// attribute value cursors: one per attribute part
	type partCur struct {
		iter  []int64
		items []xqt.Item
		pos   int
	}
	type attrCur struct {
		name  string
		parts []partCur
	}
	attrs := make([]attrCur, len(n.Attrs))
	next := 2
	for i := range n.Attrs {
		attrs[i].name = n.Attrs[i].Attr
		for range n.Attrs[i].Parts {
			t := in[next]
			next++
			attrs[i].parts = append(attrs[i].parts, partCur{iter: t.Ints("iter"), items: t.Items("item")})
		}
	}
	out := NewTable([]string{"iter", "item"}, []ColKind{KInt, KItem})
	ic := out.Col("iter")
	tc := out.Col("item")
	b := store.NewContainerBuilder(e.Transient)
	ci := 0
	built := 0
	for _, it := range loop {
		built++
		if built&1023 == 0 && e.stopRequested() {
			return nil, e.stopErr()
		}
		pre := b.StartElem(n.Tag)
		for a := range attrs {
			var val strings.Builder
			for pi := range attrs[a].parts {
				cur := &attrs[a].parts[pi]
				for cur.pos < len(cur.iter) && cur.iter[cur.pos] < it {
					cur.pos++
				}
				first := true
				for cur.pos < len(cur.iter) && cur.iter[cur.pos] == it {
					if !first {
						val.WriteString(" ")
					}
					first = false
					val.WriteString(e.atomize(cur.items[cur.pos]).AsString())
					cur.pos++
				}
			}
			b.Attr(attrs[a].name, val.String())
		}
		for ci < len(citer) && citer[ci] < it {
			ci++
		}
		pendingText := ""
		sawContent := false
		flush := func() {
			if pendingText != "" {
				b.Text(pendingText)
				pendingText = ""
			}
		}
		for ci < len(citer) && citer[ci] == it {
			item := citem[ci]
			switch item.K {
			case xqt.KNode:
				flush()
				src := e.Pool.Get(item.Cont)
				if src.Kind[item.I] == store.KindDoc {
					// copying a document node copies its children
					end := int32(item.I) + src.Size[item.I]
					for p := int32(item.I) + 1; p <= end; p += src.Size[p] + 1 {
						b.CopyTree(src, p)
					}
				} else {
					b.CopyTree(src, int32(item.I))
				}
				sawContent = true
			case xqt.KAttr:
				src := e.Pool.Get(item.Cont)
				if sawContent || pendingText != "" {
					return nil, xqerr.Newf("XQTY0024", "attribute node after content in element constructor")
				}
				b.Attr(src.Names.Name(src.AttrName[item.I]), src.AttrVal[item.I])
			default:
				if pendingText != "" {
					pendingText += " " + item.AsString()
				} else {
					pendingText = item.AsString()
					sawContent = sawContent || pendingText != ""
				}
			}
			ci++
		}
		flush()
		b.End()
		ic.Int = append(ic.Int, it)
		tc.Item.Append(xqt.Node(e.Transient.ID, pre))
	}
	out.N = ic.Len()
	e.chargeTable(out)
	return out, nil
}
