package xqc

import (
	"fmt"

	"mxq/internal/ralg"
	"mxq/internal/scj"
	"mxq/internal/xqerr"
	"mxq/internal/xqp"
	"mxq/internal/xqt"
)

func axisToSCJ(a xqp.Axis) scj.Axis {
	switch a {
	case xqp.AxisChild:
		return scj.Child
	case xqp.AxisDescendant:
		return scj.Descendant
	case xqp.AxisDescendantOrSelf:
		return scj.DescendantOrSelf
	case xqp.AxisSelf:
		return scj.Self
	case xqp.AxisParent:
		return scj.Parent
	case xqp.AxisAncestor:
		return scj.Ancestor
	case xqp.AxisAncestorOrSelf:
		return scj.AncestorOrSelf
	case xqp.AxisFollowing:
		return scj.Following
	case xqp.AxisPreceding:
		return scj.Preceding
	case xqp.AxisFollowingSibling:
		return scj.FollowingSibling
	case xqp.AxisPrecedingSibling:
		return scj.PrecedingSibling
	}
	panic("xqc: attribute axis handled separately")
}

func testToSCJ(t xqp.NodeTest) scj.Test {
	switch t.Kind {
	case xqp.TestName:
		return scj.Test{Kind: scj.TestElem, Name: t.Name}
	case xqp.TestAnyNode:
		return scj.Test{Kind: scj.TestNode}
	case xqp.TestText:
		return scj.Test{Kind: scj.TestText}
	case xqp.TestComment:
		return scj.Test{Kind: scj.TestComment}
	case xqp.TestPI:
		return scj.Test{Kind: scj.TestPI}
	case xqp.TestDocNode:
		return scj.Test{Kind: scj.TestDoc}
	}
	return scj.Test{Kind: scj.TestNode}
}

// stepVariant selects the staircase join strategy per the compiler
// options (Figure 12's configurations).
func (c *Compiler) stepVariant(axis scj.Axis, test scj.Test) scj.Variant {
	if c.opts.NametestPushdown && test.Kind == scj.TestElem && test.Name != "" {
		switch axis {
		case scj.Child, scj.Descendant, scj.DescendantOrSelf:
			return scj.CandidateList
		}
	}
	switch axis {
	case scj.Child:
		return c.opts.ChildVariant
	case scj.Descendant, scj.DescendantOrSelf:
		return c.opts.DescVariant
	}
	return scj.LoopLifted
}

func (c *Compiler) compilePath(p *xqp.Path, sc *scope) (ralg.Plan, error) {
	var ctx ralg.Plan
	steps := p.Steps
	switch {
	case p.Absolute:
		// the context document is an execution-time plan input (resolved
		// from Exec.ContextDoc), not a compile-time constant: one cached
		// plan serves any context document
		cross := &ralg.Cross{LCols: ralg.Refs("iter"), RCols: ralg.Refs("pos", "item")}
		cross.SetInput(0, ralg.NewProject(sc.loop, "iter"))
		cross.SetInput(1, &ralg.ContextRoot{})
		ctx = cross
	case steps[0].Expr != nil:
		q, err := c.compile(steps[0].Expr, sc)
		if err != nil {
			return nil, err
		}
		q, err = c.compilePreds(q, steps[0].Preds, sc)
		if err != nil {
			return nil, err
		}
		ctx = q
		steps = steps[1:]
	default:
		// a bare axis step evaluates against the context item
		b, ok := sc.vars["."]
		if !ok {
			return nil, xqerr.Newf("XPDY0002", "relative path with no context item")
		}
		ctx = b.plan
	}
	steps = fuseDescendantSteps(steps)
	for _, s := range steps {
		q, err := c.compileStep(ctx, s, sc)
		if err != nil {
			return nil, err
		}
		ctx = q
	}
	return ctx, nil
}

// fuseDescendantSteps rewrites the "//" desugaring
// descendant-or-self::node()/child::T into the single step descendant::T
// (and …/descendant::T into descendant::T). The identity holds whenever
// the child step carries no positional predicate: positions in the
// rewritten step range over each node's descendants rather than each
// intermediate node's children, so boolean predicates are unaffected but
// positional ones are not.
func fuseDescendantSteps(steps []xqp.Step) []xqp.Step {
	var out []xqp.Step
	for i := 0; i < len(steps); i++ {
		s := steps[i]
		if i+1 < len(steps) &&
			s.Axis == xqp.AxisDescendantOrSelf && s.Test.Kind == xqp.TestAnyNode &&
			len(s.Preds) == 0 && s.Expr == nil {
			next := steps[i+1]
			positional := false
			for _, p := range next.Preds {
				positional = positional || xqp.PredUsesPosition(p)
			}
			if next.Expr == nil && !positional &&
				(next.Axis == xqp.AxisChild || next.Axis == xqp.AxisDescendant) {
				next.Axis = xqp.AxisDescendant
				out = append(out, next)
				i++
				continue
			}
		}
		out = append(out, s)
	}
	return out
}

// compileStep applies one axis step to the context sequence ctx
// (iter|pos|item). Without predicates the step evaluates over the merged
// per-iteration context (a single loop-lifted staircase join); with
// predicates each context node becomes its own iteration so positional
// predicates see per-context-node positions, and results are
// deduplicated afterwards.
func (c *Compiler) compileStep(ctx ralg.Plan, s xqp.Step, sc *scope) (ralg.Plan, error) {
	if s.Expr != nil {
		return nil, fmt.Errorf("xqc: primary expression in non-initial path step")
	}
	if len(s.Preds) == 0 {
		srt := ralg.NewSort(ctx, "item", "iter")
		stepped := c.stepOp(srt, s)
		rn := ralg.NewRowNum(stepped, "pos", []string{"item"}, "iter")
		res := ralg.NewSort(rn, "iter", "pos")
		return ralg.NewProject(res, "iter", "pos", "item"), nil
	}
	// per-context-node loop
	numbered := ralg.NewRowNum(ctx, "cid", []string{"iter", "pos"}, "")
	mapPlan := ralg.NewProject(numbered, "iter->outer", "cid->inner")
	cidLoop := ralg.NewProject(numbered, "cid->iter")
	cidCtx := ralg.AttachInt(ralg.NewProject(numbered, "cid->iter", "item"), "pos", 1)
	srt := ralg.NewSort(ralg.NewProject(cidCtx, "iter", "pos", "item"), "item", "iter")
	stepped := c.stepOp(srt, s)
	rn := ralg.NewRowNum(stepped, "pos", []string{"item"}, "iter")
	seq := ralg.NewProject(ralg.NewSort(rn, "iter", "pos"), "iter", "pos", "item")
	pscope := liftVars(sc, mapPlan, cidLoop)
	filtered, err := c.compilePreds(seq, s.Preds, pscope)
	if err != nil {
		return nil, err
	}
	// map back to the original iterations, dedup, restore document order
	back := ralg.NewHashJoin(mapPlan, filtered, "inner", "iter",
		ralg.Refs("outer"), ralg.Refs("item"))
	srt2 := ralg.NewSort(back, "outer", "item")
	dist := &ralg.Distinct{By: []string{"outer", "item"}}
	dist.SetInput(0, srt2)
	rn2 := ralg.NewRowNum(dist, "pos", []string{"item"}, "outer")
	return ralg.NewProject(rn2, "outer->iter", "pos", "item"), nil
}

// stepOp emits the location step operator itself over a
// (item, iter)-sorted context.
func (c *Compiler) stepOp(srt ralg.Plan, s xqp.Step) ralg.Plan {
	if s.Axis == xqp.AxisAttribute {
		as := &ralg.AttrStep{NameTest: s.Test.Name, IterCol: "iter", ItemCol: "item"}
		as.SetInput(0, srt)
		return as
	}
	axis := axisToSCJ(s.Axis)
	test := testToSCJ(s.Test)
	st := &ralg.Step{Axis: axis, Test: test, Variant: c.stepVariant(axis, test),
		IterCol: "iter", ItemCol: "item"}
	st.SetInput(0, srt)
	return st
}

// compilePreds applies predicates to a sequence relative to sc.loop.
// Statically positional predicates filter on the pos column; general
// predicates spawn a per-item loop with ".", position() and last()
// bindings, exactly like a nested for-loop (§2.1).
func (c *Compiler) compilePreds(seq ralg.Plan, preds []xqp.Expr, sc *scope) (ralg.Plan, error) {
	for _, pred := range preds {
		if xqp.PredIsPositional(pred) {
			tab, col, err := c.posValue(seq, pred)
			if err != nil {
				return nil, err
			}
			f := ralg.NewFun(tab, ralg.FunEq, "keep", "pos", col)
			sel := &ralg.Select{Cond: "keep"}
			sel.SetInput(0, f)
			rn := ralg.NewRowNum(sel, "pos2", []string{"pos"}, "iter")
			seq = ralg.NewProject(rn, "iter", "pos2->pos", "item")
			continue
		}
		numbered := ralg.NewRowNum(seq, "pid", []string{"iter", "pos"}, "")
		mapPlan := ralg.NewProject(numbered, "iter->outer", "pid->inner")
		pidLoop := ralg.NewProject(numbered, "pid->iter")
		pscope := liftVars(sc, mapPlan, pidLoop)
		dot := ralg.AttachInt(ralg.NewProject(numbered, "pid->iter", "item"), "pos", 1)
		pscope.vars["."] = &binding{plan: ralg.NewProject(dot, "iter", "pos", "item"), deps: sc.allDeps()}
		posIt := &ralg.ColToItem{Src: "pos", Dst: "item2"}
		posIt.SetInput(0, numbered)
		posPlan := ralg.AttachInt(ralg.NewProject(posIt, "pid->iter", "item2->item"), "pos", 1)
		pscope.vars["#pos"] = &binding{plan: ralg.NewProject(posPlan, "iter", "pos", "item"), deps: varset{}}
		cnt := &ralg.Aggr{Part: "iter", Op: ralg.AggCount, Out: "item"}
		cnt.SetInput(0, seq)
		lastPlan := ralg.NewHashJoin(mapPlan, cnt, "outer", "iter",
			ralg.Refs("inner->iter"), ralg.Refs("item"))
		lastPlan2 := ralg.AttachInt(lastPlan, "pos", 1)
		pscope.vars["#last"] = &binding{plan: ralg.NewProject(lastPlan2, "iter", "pos", "item"), deps: varset{}}
		bp, err := c.compileBool(pred, pscope)
		if err != nil {
			return nil, err
		}
		sel := &ralg.Select{Cond: "val"}
		sel.SetInput(0, bp)
		keep := ralg.NewProject(sel, "iter")
		fj := ralg.NewHashJoin(numbered, keep, "pid", "iter",
			ralg.Refs("iter", "pos", "item"), nil)
		rn := ralg.NewRowNum(fj, "pos2", []string{"pos"}, "iter")
		seq = ralg.NewProject(rn, "iter", "pos2->pos", "item")
	}
	return seq, nil
}

// posValue extends the sequence's row table with an item column holding
// the positional predicate's value (literal, last(), position(), or
// arithmetic over those), returning the extended plan and column name.
// last() is joined in once up front; all other builders (Attach, Fun,
// ColToItem) preserve existing columns.
func (c *Compiler) posValue(seq ralg.Plan, e xqp.Expr) (ralg.Plan, string, error) {
	var tab ralg.Plan = seq
	if exprUsesLast(e) {
		cnt := &ralg.Aggr{Part: "iter", Op: ralg.AggCount, Out: "lastv"}
		cnt.SetInput(0, seq)
		tab = ralg.NewHashJoin(seq, cnt, "iter", "iter",
			ralg.Refs("iter", "pos", "item"), ralg.Refs("lastv"))
	}
	gen := 0
	var build func(e xqp.Expr) (string, error)
	build = func(e xqp.Expr) (string, error) {
		gen++
		col := fmt.Sprintf("pv%d", gen)
		switch x := e.(type) {
		case *xqp.Literal:
			switch x.Kind {
			case xqp.LitInt:
				tab = ralg.AttachItem(tab, col, xqt.Int(x.I))
				return col, nil
			case xqp.LitDouble:
				tab = ralg.AttachItem(tab, col, xqt.Double(x.F))
				return col, nil
			}
		case *xqp.Call:
			switch x.Name {
			case "last":
				return "lastv", nil
			case "position":
				ci := &ralg.ColToItem{Src: "pos", Dst: col}
				ci.SetInput(0, tab)
				tab = ci
				return col, nil
			}
		case *xqp.Unary:
			c2, err := build(x.X)
			if err != nil {
				return "", err
			}
			tab = ralg.NewFun(tab, ralg.FunNeg, col, c2)
			return col, nil
		case *xqp.Binary:
			cl2, err := build(x.L)
			if err != nil {
				return "", err
			}
			cr2, err := build(x.R)
			if err != nil {
				return "", err
			}
			ops := map[xqp.BinOp]ralg.FunOp{
				xqp.OpAdd: ralg.FunAdd, xqp.OpSub: ralg.FunSub, xqp.OpMul: ralg.FunMul,
				xqp.OpDiv: ralg.FunDiv, xqp.OpIDiv: ralg.FunIDiv, xqp.OpMod: ralg.FunMod,
			}
			tab = ralg.NewFun(tab, ops[x.Op], col, cl2, cr2)
			return col, nil
		}
		return "", fmt.Errorf("xqc: unsupported positional predicate")
	}
	col, err := build(e)
	if err != nil {
		return nil, "", err
	}
	return tab, col, nil
}

func exprUsesLast(e xqp.Expr) bool {
	switch x := e.(type) {
	case *xqp.Call:
		return x.Name == "last"
	case *xqp.Binary:
		return exprUsesLast(x.L) || exprUsesLast(x.R)
	case *xqp.Unary:
		return exprUsesLast(x.X)
	}
	return false
}

// allDeps unions every binding's dependence set (used for the context
// item, which may derive from anything in scope).
func (sc *scope) allDeps() varset {
	out := varset{}
	for _, b := range sc.vars {
		out = out.union(b.deps)
	}
	return out
}
