package xqc

import (
	"strings"
	"testing"

	"mxq/internal/opt"
	"mxq/internal/ralg"
	"mxq/internal/store"
	"mxq/internal/xqp"
)

func compilePlan(t *testing.T, q string, opts Options) ralg.Plan {
	t.Helper()
	m, err := xqp.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Compile(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p.Plan
}

func countNodes(p ralg.Plan, pred func(ralg.Plan) bool) int {
	n := 0
	ralg.Walk(p, func(q ralg.Plan) {
		if pred(q) {
			n++
		}
	})
	return n
}

const joinQuery = `
	for $p in /site/people/person
	let $a := for $t in /site/closed_auctions/closed_auction
	          where $t/buyer/@person = $p/@id
	          return $t
	return count($a)`

func TestJoinRecognitionProducesExistJoin(t *testing.T) {
	with := compilePlan(t, joinQuery, DefaultOptions())
	if n := countNodes(with, func(p ralg.Plan) bool { _, ok := p.(*ralg.ExistJoin); return ok }); n != 1 {
		t.Errorf("with join recognition: %d ExistJoins, want 1", n)
	}
	if n := countNodes(with, func(p ralg.Plan) bool { _, ok := p.(*ralg.Cross); return ok }); n > 2 {
		t.Errorf("with join recognition: %d Cross operators (doc-root lifts only expected)", n)
	}
	off := DefaultOptions()
	off.JoinRecognition = false
	without := compilePlan(t, joinQuery, off)
	if n := countNodes(without, func(p ralg.Plan) bool { _, ok := p.(*ralg.ExistJoin); return ok }); n != 0 {
		t.Errorf("without join recognition: %d ExistJoins, want 0", n)
	}
}

// TestJoinRecognitionSyntaxImmune verifies the paper's claim that join
// detection is "immune to syntactic variance": the same join written with
// the comparison sides swapped, or with extra conjuncts, still produces a
// theta-join plan.
func TestJoinRecognitionSyntaxImmune(t *testing.T) {
	variants := []string{
		// sides swapped
		`for $p in /site/people/person
		 let $a := for $t in /site/closed_auctions/closed_auction
		           where $p/@id = $t/buyer/@person return $t
		 return count($a)`,
		// conjunction with a residual filter
		`for $p in /site/people/person
		 let $a := for $t in /site/closed_auctions/closed_auction
		           where $t/buyer/@person = $p/@id and $t/price/text() > 10 return $t
		 return count($a)`,
		// nested for instead of let
		`for $p in /site/people/person, $t in /site/closed_auctions/closed_auction
		 where $t/buyer/@person = $p/@id
		 return $p/name`,
		// theta comparison
		`for $p in /site/people/person
		 let $l := for $i in /site/open_auctions/open_auction/initial
		           where $p/profile/@income > 5000 * exactly-one($i/text()) return $i
		 return count($l)`,
	}
	for i, q := range variants {
		p := compilePlan(t, q, DefaultOptions())
		if n := countNodes(p, func(p ralg.Plan) bool { _, ok := p.(*ralg.ExistJoin); return ok }); n < 1 {
			t.Errorf("variant %d: no ExistJoin in plan", i)
		}
	}
}

func TestJoinRecognitionNotTriggeredOnDependentSequences(t *testing.T) {
	// the inner sequence depends on $p: no join possible
	q := `for $p in /site/people/person
	      let $a := for $t in $p/watches/watch
	                where $t/@open_auction = "open1" return $t
	      return count($a)`
	p := compilePlan(t, q, DefaultOptions())
	if n := countNodes(p, func(p ralg.Plan) bool { _, ok := p.(*ralg.ExistJoin); return ok }); n != 0 {
		t.Errorf("dependent inner sequence produced %d ExistJoins, want 0", n)
	}
}

func TestStepVariantSelection(t *testing.T) {
	// nametest pushdown selects the candidate-list variant
	p := compilePlan(t, `/site/people/person`, DefaultOptions())
	candidate := 0
	ralg.Walk(p, func(n ralg.Plan) {
		if s, ok := n.(*ralg.Step); ok && s.Variant == 2 { // scj.CandidateList
			candidate++
		}
	})
	if candidate == 0 {
		t.Error("nametest pushdown did not select candidate-list steps")
	}
	off := DefaultOptions()
	off.NametestPushdown = false
	p = compilePlan(t, `/site/people/person`, off)
	ralg.Walk(p, func(n ralg.Plan) {
		if s, ok := n.(*ralg.Step); ok && s.Variant == 2 {
			t.Error("candidate-list step selected with pushdown disabled")
		}
	})
}

func TestCompileErrors(t *testing.T) {
	bad := map[string]string{
		`$x`:          "undeclared variable",
		`doc($x)//a`:  "undeclared variable",
		`nosuch(1)`:   "unknown function",
		`last()`:      "outside a predicate",
		`position()`:  "outside a predicate",
		`concat("a")`: "at least 2",
		`child::a`:    "no context item",
		`declare function local:f($x) { local:f($x) }; local:f(1)`: "recursive",
	}
	for q, frag := range bad {
		m, err := xqp.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		_, err = Compile(m, DefaultOptions())
		if err == nil {
			t.Errorf("Compile(%q) succeeded, want error containing %q", q, frag)
			continue
		}
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("Compile(%q) error %q does not mention %q", q, err, frag)
		}
	}
}

func TestDepsAnalysis(t *testing.T) {
	c := &Compiler{funcs: map[string]*xqp.FuncDecl{}, inlining: map[string]bool{}}
	sc := &scope{
		loop: litLoop1(),
		vars: map[string]*binding{
			"a": {deps: varset{"a": true}},
			"b": {deps: varset{"b": true}},
			"l": {deps: varset{"a": true}}, // a let derived from $a
		},
		loopVars: varset{"a": true, "b": true},
	}
	cases := []struct {
		q    string
		want []string
	}{
		{`$a/x`, []string{"a"}},
		{`$l`, []string{"a"}},
		{`$a/x = $b/y`, []string{"a", "b"}},
		{`count(/site/x)`, nil},
		{`for $c in $b/x return $c/y`, []string{"b"}},
		{`some $c in $a satisfies $c = $b`, []string{"a", "b"}},
	}
	for _, tc := range cases {
		m, err := xqp.Parse(tc.q)
		if err != nil {
			t.Fatal(err)
		}
		got := c.depsOf(m.Body, sc)
		if len(got) != len(tc.want) {
			t.Errorf("depsOf(%s) = %v, want %v", tc.q, got, tc.want)
			continue
		}
		for _, w := range tc.want {
			if !got[w] {
				t.Errorf("depsOf(%s) = %v, missing %s", tc.q, got, w)
			}
		}
	}
}

// TestOptimizerPreservesPlanSemantics compiles every XMark query with and
// without the optimizer and checks the optimized plan still contains the
// operators the unoptimized one relies on (structure sanity; semantic
// equality is covered by the differential tests in core and xmark).
func TestOptimizedPlansShrinkSorts(t *testing.T) {
	queries := []string{
		`/site/people/person/name/text()`,
		`for $p in /site/people/person return count($p/watches/watch)`,
		joinQuery,
	}
	for _, q := range queries {
		raw := compilePlan(t, q, DefaultOptions())
		rawSorts := countNodes(raw, func(p ralg.Plan) bool {
			s, ok := p.(*ralg.Sort)
			return ok && s.RefinePrefix == 0 && len(s.By) > 1
		})
		optimized := opt.Optimize(compilePlan(t, q, DefaultOptions()))
		optSorts := countNodes(optimized, func(p ralg.Plan) bool {
			s, ok := p.(*ralg.Sort)
			return ok && s.RefinePrefix == 0 && len(s.By) > 1
		})
		if optSorts >= rawSorts {
			t.Errorf("%s: optimizer left %d full multi-column sorts (raw %d)", q, optSorts, rawSorts)
		}
		streaming := countNodes(optimized, func(p ralg.Plan) bool {
			r, ok := p.(*ralg.RowNum)
			return ok && r.Mode != ralg.RankSort
		})
		if streaming == 0 {
			t.Errorf("%s: optimizer selected no streaming/sequential rank modes", q)
		}
	}
}

func TestPositionalJoinSelection(t *testing.T) {
	q := `for $p in /site/people/person return $p/name/text()`
	optimized := opt.Optimize(compilePlan(t, q, DefaultOptions()))
	pos := countNodes(optimized, func(p ralg.Plan) bool {
		j, ok := p.(*ralg.HashJoin)
		return ok && (j.Pos || j.PosLeft)
	})
	if pos == 0 {
		t.Error("optimizer selected no positional joins on dense rank keys")
	}
}

func TestCompileAllXMarkShapes(t *testing.T) {
	// every construct used by the benchmark queries must compile
	queries := []string{
		`<a b="{1}">{2}</a>`,
		`for $x at $i in (1,2,3) return $i`,
		`some $x in (1,2) satisfies $x = 2`,
		`every $x in (1,2) satisfies $x > 0`,
		`(1, 2)[2]`,
		`/site//open_auction[bidder][1]/@id`,
		`for $x in (3,1,2) order by $x descending return $x`,
		`distinct-values((1,2,2))`,
	}
	for _, q := range queries {
		compilePlan(t, q, DefaultOptions())
	}
}

var _ = store.NewPool // keep the import for helper expansion

func TestFuseDescendantSteps(t *testing.T) {
	// //name compiles to a single descendant step
	p := compilePlan(t, `/site//item`, DefaultOptions())
	steps := 0
	ralg.Walk(p, func(n ralg.Plan) {
		if _, ok := n.(*ralg.Step); ok {
			steps++
		}
	})
	if steps != 2 { // child::site + descendant::item
		t.Errorf("//item fused plan has %d steps, want 2", steps)
	}
	// a positional predicate must block the fusion
	p = compilePlan(t, `/site//item[1]`, DefaultOptions())
	steps = 0
	ralg.Walk(p, func(n ralg.Plan) {
		if _, ok := n.(*ralg.Step); ok {
			steps++
		}
	})
	if steps != 3 { // child::site + dos::node() + child::item
		t.Errorf("//item[1] plan has %d steps, want 3 (no fusion)", steps)
	}
}
