// Package xqc is the loop-lifting XQuery-to-relational-algebra compiler of
// the engine — the reproduction of the Pathfinder compilation scheme the
// paper builds on (§2.1): every XQuery expression compiles to a plan
// producing an iter|pos|item table relative to the loop relation of its
// scope; for-loops introduce new loops via dense row numbering (ρ) and
// scope map relations; conditionals split loops with selections;
// general comparisons compile to existential joins; and when the two
// sides of a comparison depend on disjoint loop variables, the compiler
// replaces the loop-lifted Cartesian product with a theta-join over the
// two key tables (the paper's join recognition, §4.1–4.2).
package xqc

import (
	"fmt"

	"mxq/internal/ralg"
	"mxq/internal/scj"
	"mxq/internal/xqerr"
	"mxq/internal/xqp"
	"mxq/internal/xqt"
)

// Options control the compilation strategies under study in the paper's
// ablation experiments (Figures 12–14).
type Options struct {
	// JoinRecognition replaces loop-lifted Cartesian products with
	// theta-joins when variable dependences prove independence (Fig. 13).
	JoinRecognition bool
	// ChildVariant / DescVariant select the staircase-join execution
	// strategy for child and descendant steps (Fig. 12).
	ChildVariant scj.Variant
	DescVariant  scj.Variant
	// NametestPushdown pushes element name tests below location steps
	// using the element-name index (Fig. 12's "nametest" configuration).
	NametestPushdown bool
}

// DefaultOptions is the full-strength configuration.
func DefaultOptions() Options {
	return Options{
		JoinRecognition:  true,
		ChildVariant:     scj.LoopLifted,
		DescVariant:      scj.LoopLifted,
		NametestPushdown: true,
	}
}

// Compiler compiles one parsed module.
type Compiler struct {
	opts     Options
	funcs    map[string]*xqp.FuncDecl
	inlining map[string]bool // UDFs on the inline stack (recursion guard)

	// prolog variable declarations: every reference to a prolog
	// variable compiles to a ParamTable leaf resolved from the binding
	// environment at execution time. declLimit enforces declaration
	// order — a declaration's init expression may only reference
	// declarations before it (XPST0008 otherwise).
	prologIdx map[string]int // name -> declaration index
	declLimit int
}

// Param describes one prolog variable of a compiled query, in
// declaration order. Init is the compiled plan of the declaration's
// init/default expression; for an external declaration it may be nil
// (a required parameter — executing without a binding is XPDY0002).
// Non-external declarations (global lets) are evaluated from Init at
// the start of every execution, mirroring the naive interpreter's
// eager prolog evaluation. Singleton records that an external's
// default expression is statically a single item, making multi-item
// bindings the type error XPTY0004.
type Param struct {
	Name      string
	External  bool
	Init      ralg.Plan
	Singleton bool
}

// Compiled is the result of compiling one module: the main physical
// plan plus the prolog parameters to materialize before running it.
// The plan contains a ParamTable leaf per prolog variable reference
// and a ContextRoot leaf per absolute path, so it is independent of
// the bindings and of the engine's current context document — one
// Compiled serves every (bindings, context document) pair.
type Compiled struct {
	Plan   ralg.Plan
	Params []Param
}

// Compile compiles a module to a physical plan whose result table is the
// iter|pos|item encoding of the query result (a single iteration).
func Compile(m *xqp.Module, opts Options) (*Compiled, error) {
	c := &Compiler{
		opts:      opts,
		funcs:     make(map[string]*xqp.FuncDecl),
		inlining:  make(map[string]bool),
		prologIdx: make(map[string]int),
	}
	for _, f := range m.Funcs {
		c.funcs[f.Name] = f
	}
	for i, d := range m.Vars {
		c.prologIdx[d.Name] = i
	}
	out := &Compiled{}
	// compile the init/default expressions in declaration order, each
	// seeing only the declarations before it
	for i, d := range m.Vars {
		prm := Param{Name: d.Name, External: d.External}
		if d.Init != nil {
			c.declLimit = i
			sc := &scope{loop: litLoop1(), vars: map[string]*binding{}, loopVars: varset{}}
			q, err := c.compile(d.Init, sc)
			if err != nil {
				return nil, err
			}
			prm.Init = q
			prm.Singleton = d.External && xqp.StaticSingleton(d.Init)
		}
		out.Params = append(out.Params, prm)
	}
	c.declLimit = len(m.Vars)
	sc := &scope{loop: litLoop1(), vars: map[string]*binding{}, loopVars: varset{}}
	body, err := c.compile(m.Body, sc)
	if err != nil {
		return nil, err
	}
	out.Plan = body
	return out, nil
}

// prologVar resolves a variable reference against the prolog
// declarations visible at the current declaration limit: the value —
// an execution-time binding — is lifted over the referencing scope's
// loop (a single iteration at the query root, replicated under
// loop-lifting by the enclosing scope maps).
func (c *Compiler) prologVar(name string, sc *scope) (ralg.Plan, bool) {
	idx, ok := c.prologIdx[name]
	if !ok || idx >= c.declLimit {
		return nil, false
	}
	cross := &ralg.Cross{LCols: ralg.Refs("iter"), RCols: ralg.Refs("pos", "item")}
	cross.SetInput(0, ralg.NewProject(sc.loop, "iter"))
	cross.SetInput(1, &ralg.ParamTable{Var: name})
	return cross, true
}

// varset is a set of for-variable names.
type varset map[string]bool

func (v varset) clone() varset {
	out := make(varset, len(v))
	for k := range v {
		out[k] = true
	}
	return out
}

func (v varset) union(o varset) varset {
	out := v.clone()
	for k := range o {
		out[k] = true
	}
	return out
}

func (v varset) intersects(o varset) bool {
	for k := range v {
		if o[k] {
			return true
		}
	}
	return false
}

// binding is a variable's compiled representation relative to its scope's
// loop, plus the loop variables its value depends on (used for join
// recognition — the paper's indep property).
type binding struct {
	plan ralg.Plan
	deps varset
}

// scope is a compilation scope: the loop relation and the visible
// variable bindings (all relative to that loop).
type scope struct {
	loop     ralg.Plan
	vars     map[string]*binding
	loopVars varset // all for-variables lifted into this loop
}

func (sc *scope) clone() *scope {
	vars := make(map[string]*binding, len(sc.vars))
	for k, v := range sc.vars {
		vars[k] = v
	}
	return &scope{loop: sc.loop, vars: vars, loopVars: sc.loopVars.clone()}
}

// --- small plan constructors -------------------------------------------

func seqSchema() ([]string, []ralg.ColKind) {
	return []string{"iter", "pos", "item"},
		[]ralg.ColKind{ralg.KInt, ralg.KInt, ralg.KItem}
}

func emptySeq() ralg.Plan {
	names, kinds := seqSchema()
	return &ralg.Lit{Tab: ralg.NewTable(names, kinds)}
}

func litLoop1() ralg.Plan {
	t := ralg.NewTable([]string{"iter"}, []ralg.ColKind{ralg.KInt})
	t.N = 1
	t.Col("iter").Int = []int64{1}
	return &ralg.Lit{Tab: t}
}

// litSeq lifts a constant item over the loop: loop × {⟨1, it⟩}.
func litSeq(loop ralg.Plan, it xqt.Item) ralg.Plan {
	p := ralg.AttachInt(ralg.NewProject(loop, "iter"), "pos", 1)
	return ralg.NewProject(ralg.AttachItem(p, "item", it), "iter", "pos", "item")
}

// boolSeq converts a dense (iter, val) boolean relation into an
// iter|pos|item sequence of xs:boolean singletons.
func boolSeq(b ralg.Plan) ralg.Plan {
	p := &ralg.ColToItem{Src: "val", Dst: "item"}
	p.SetInput(0, b)
	q := ralg.AttachInt(p, "pos", 1)
	return ralg.NewProject(q, "iter", "pos", "item")
}

// firstItem keeps the first item of each iteration (pos = 1), matching
// the naive interpreter's singleton coercion for arithmetic operands.
func firstItem(q ralg.Plan) ralg.Plan {
	f := ralg.NewFun(ralg.AttachInt(q, "one", 1), ralg.FunEq, "keep", "pos", "one")
	sel := &ralg.Select{Cond: "keep"}
	sel.SetInput(0, f)
	return ralg.NewProject(sel, "iter", "pos", "item")
}

// liftVars maps every binding of sc through the scope map (outer, inner):
// the new bindings are relative to the loop the map's inner column ranges
// over. The map plan must be sorted on inner.
func liftVars(sc *scope, mapPlan ralg.Plan, newLoop ralg.Plan) *scope {
	out := &scope{loop: newLoop, vars: make(map[string]*binding, len(sc.vars)), loopVars: sc.loopVars.clone()}
	for name, b := range sc.vars {
		j := ralg.NewHashJoin(mapPlan, b.plan, "outer", "iter",
			ralg.Refs("inner->iter"), ralg.Refs("pos", "item"))
		out.vars[name] = &binding{plan: ralg.NewProject(j, "iter", "pos", "item"), deps: b.deps}
	}
	return out
}

// restrictScope semi-joins every binding (and the loop) with subLoop.
func restrictScope(sc *scope, subLoop ralg.Plan) *scope {
	out := &scope{loop: subLoop, vars: make(map[string]*binding, len(sc.vars)), loopVars: sc.loopVars.clone()}
	for name, b := range sc.vars {
		j := ralg.NewHashJoin(b.plan, subLoop, "iter", "iter",
			ralg.Refs("iter", "pos", "item"), nil)
		out.vars[name] = &binding{plan: j, deps: b.deps}
	}
	return out
}

// densifyBool completes a partial (iter, val) relation to all iterations
// of loop, filling absent iterations with the given default.
func densifyBool(partial, loop ralg.Plan, def bool) ralg.Plan {
	d := &ralg.Diff{LKey: "iter", RKey: "iter"}
	d.SetInput(0, ralg.NewProject(loop, "iter"))
	d.SetInput(1, partial)
	filled := &ralg.Attach{Col: "val", Kind: ralg.KBool, B: def}
	filled.SetInput(0, d)
	u := &ralg.Union{Ins: []ralg.Plan{ralg.NewProject(partial, "iter", "val"), ralg.NewProject(filled, "iter", "val")}}
	return ralg.NewSort(u, "iter")
}

// --- dependence analysis (the indep property) ---------------------------

// depsOf computes the set of loop variables the value of e depends on,
// given the bindings visible in sc. Locally introduced variables (inner
// FLWOR/quantifier bindings) are resolved to the dependences of their
// binding sequences.
func (c *Compiler) depsOf(e xqp.Expr, sc *scope) varset {
	env := make(map[string]varset, len(sc.vars))
	for name, b := range sc.vars {
		env[name] = b.deps
	}
	return c.depsWalk(e, env)
}

func (c *Compiler) depsWalk(e xqp.Expr, env map[string]varset) varset {
	out := varset{}
	switch x := e.(type) {
	case nil:
		return out
	case *xqp.Literal, *xqp.EmptySeq:
		return out
	case *xqp.VarRef:
		if d, ok := env[x.Name]; ok {
			return d.clone()
		}
		return out
	case *xqp.ContextItem:
		if d, ok := env["."]; ok {
			return d.clone()
		}
		return out
	case *xqp.Seq:
		for _, it := range x.Items {
			out = out.union(c.depsWalk(it, env))
		}
	case *xqp.If:
		out = c.depsWalk(x.Cond, env).union(c.depsWalk(x.Then, env)).union(c.depsWalk(x.Else, env))
	case *xqp.Binary:
		out = c.depsWalk(x.L, env).union(c.depsWalk(x.R, env))
	case *xqp.Unary:
		out = c.depsWalk(x.X, env)
	case *xqp.Path:
		for _, s := range x.Steps {
			if s.Expr != nil {
				out = out.union(c.depsWalk(s.Expr, env))
			}
			for _, p := range s.Preds {
				out = out.union(c.depsWalk(p, env))
			}
		}
	case *xqp.Call:
		for _, a := range x.Args {
			out = out.union(c.depsWalk(a, env))
		}
		if f, ok := c.funcs[x.Name]; ok {
			// the body may reference parameters; parameters inherit the
			// argument dependences which are already unioned above
			sub := make(map[string]varset, len(f.Params))
			for _, p := range f.Params {
				sub[p] = varset{}
			}
			out = out.union(c.depsWalk(f.Body, sub))
		}
	case *xqp.FLWOR:
		local := cloneEnv(env)
		for _, cl := range x.Clauses {
			switch cl.Kind {
			case xqp.ClauseFor, xqp.ClauseLet:
				d := c.depsWalk(cl.Expr, local)
				out = out.union(d)
				local[cl.Var] = d
				if cl.Pos != "" {
					local[cl.Pos] = d
				}
			case xqp.ClauseWhere:
				out = out.union(c.depsWalk(cl.Expr, local))
			case xqp.ClauseOrder:
				for _, k := range cl.Keys {
					out = out.union(c.depsWalk(k.Expr, local))
				}
			}
		}
		out = out.union(c.depsWalk(x.Return, local))
	case *xqp.Quantified:
		local := cloneEnv(env)
		for i := range x.Vars {
			d := c.depsWalk(x.Seqs[i], local)
			out = out.union(d)
			local[x.Vars[i]] = d
		}
		out = out.union(c.depsWalk(x.Satisfies, local))
	case *xqp.ElemCtor:
		for _, a := range x.Attrs {
			for _, p := range a.Parts {
				out = out.union(c.depsWalk(p, env))
			}
		}
		for _, p := range x.Content {
			out = out.union(c.depsWalk(p, env))
		}
	}
	return out
}

func cloneEnv(env map[string]varset) map[string]varset {
	out := make(map[string]varset, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

// --- expression compilation ---------------------------------------------

// compile translates e into a plan producing iter|pos|item sorted on
// [iter, pos], relative to sc.loop.
func (c *Compiler) compile(e xqp.Expr, sc *scope) (ralg.Plan, error) {
	switch x := e.(type) {
	case *xqp.Literal:
		switch x.Kind {
		case xqp.LitInt:
			return litSeq(sc.loop, xqt.Int(x.I)), nil
		case xqp.LitDouble:
			return litSeq(sc.loop, xqt.Double(x.F)), nil
		default:
			return litSeq(sc.loop, xqt.Str(x.S)), nil
		}
	case *xqp.EmptySeq:
		return emptySeq(), nil
	case *xqp.VarRef:
		if b, ok := sc.vars[x.Name]; ok {
			return b.plan, nil
		}
		if q, ok := c.prologVar(x.Name, sc); ok {
			return q, nil
		}
		return nil, xqerr.Newf("XPST0008", "undeclared variable $%s", x.Name)
	case *xqp.ContextItem:
		b, ok := sc.vars["."]
		if !ok {
			return nil, xqerr.Newf("XPDY0002", "no context item")
		}
		return b.plan, nil
	case *xqp.Seq:
		return c.compileSeqList(x.Items, sc)
	case *xqp.If:
		return c.compileIf(x, sc)
	case *xqp.FLWOR:
		return c.compileFLWOR(x, sc)
	case *xqp.Quantified:
		b, err := c.compileBool(x, sc)
		if err != nil {
			return nil, err
		}
		return boolSeq(b), nil
	case *xqp.Binary:
		return c.compileBinary(x, sc)
	case *xqp.Unary:
		q, err := c.compile(x.X, sc)
		if err != nil {
			return nil, err
		}
		f := ralg.NewFun(firstItem(q), ralg.FunNeg, "negv", "item")
		return ralg.NewProject(f, "iter", "pos", "negv->item"), nil
	case *xqp.Path:
		return c.compilePath(x, sc)
	case *xqp.Call:
		return c.compileCall(x, sc)
	case *xqp.ElemCtor:
		return c.compileCtor(x, sc)
	}
	return nil, fmt.Errorf("xqc: unhandled expression %T", e)
}

// compileSeqList concatenates subexpression results, re-deriving pos via ρ
// over (branch ordinal, pos) per iteration.
func (c *Compiler) compileSeqList(items []xqp.Expr, sc *scope) (ralg.Plan, error) {
	if len(items) == 0 {
		return emptySeq(), nil
	}
	var parts []ralg.Plan
	for i, item := range items {
		q, err := c.compile(item, sc)
		if err != nil {
			return nil, err
		}
		parts = append(parts, ralg.NewProject(ralg.AttachInt(q, "ord", int64(i)),
			"iter", "ord", "pos", "item"))
	}
	if len(parts) == 1 {
		return ralg.NewProject(parts[0], "iter", "pos", "item"), nil
	}
	u := &ralg.Union{Ins: parts}
	srt := ralg.NewSort(u, "iter", "ord", "pos")
	rn := ralg.NewRowNum(srt, "pos2", []string{"ord", "pos"}, "iter")
	return ralg.NewProject(rn, "iter", "pos2->pos", "item"), nil
}

func (c *Compiler) compileIf(x *xqp.If, sc *scope) (ralg.Plan, error) {
	cond, err := c.compileBool(x.Cond, sc)
	if err != nil {
		return nil, err
	}
	selT := &ralg.Select{Cond: "val"}
	selT.SetInput(0, cond)
	loopT := ralg.NewProject(selT, "iter")
	selE := &ralg.Select{Cond: "val", Neg: true}
	selE.SetInput(0, cond)
	loopE := ralg.NewProject(selE, "iter")
	qt, err := c.compile(x.Then, restrictScope(sc, loopT))
	if err != nil {
		return nil, err
	}
	qe, err := c.compile(x.Else, restrictScope(sc, loopE))
	if err != nil {
		return nil, err
	}
	u := &ralg.Union{Ins: []ralg.Plan{qt, qe}}
	return ralg.NewSort(u, "iter", "pos"), nil
}

func (c *Compiler) compileBinary(x *xqp.Binary, sc *scope) (ralg.Plan, error) {
	switch x.Op {
	case xqp.OpOr, xqp.OpAnd,
		xqp.OpGenEq, xqp.OpGenNe, xqp.OpGenLt, xqp.OpGenLe, xqp.OpGenGt, xqp.OpGenGe:
		b, err := c.compileBool(x, sc)
		if err != nil {
			return nil, err
		}
		return boolSeq(b), nil
	case xqp.OpValEq, xqp.OpValNe, xqp.OpValLt, xqp.OpValLe, xqp.OpValGt, xqp.OpValGe,
		xqp.OpIs, xqp.OpBefore, xqp.OpAfter:
		// empty-propagating singleton comparison: absent iterations stay
		// absent (the result is the empty sequence there)
		ql, qr, err := c.compileBothSingleton(x.L, x.R, sc)
		if err != nil {
			return nil, err
		}
		j := ralg.NewHashJoin(ql, qr, "iter", "iter",
			ralg.Refs("iter", "pos", "item->a"), ralg.Refs("item->b"))
		f := ralg.NewFun(j, valueCmpFun(x.Op), "val", "a", "b")
		return boolSeq(ralg.NewProject(f, "iter", "val")), nil
	case xqp.OpAdd, xqp.OpSub, xqp.OpMul, xqp.OpDiv, xqp.OpIDiv, xqp.OpMod:
		ql, qr, err := c.compileBothSingleton(x.L, x.R, sc)
		if err != nil {
			return nil, err
		}
		j := ralg.NewHashJoin(ql, qr, "iter", "iter",
			ralg.Refs("iter", "pos", "item->a"), ralg.Refs("item->b"))
		ops := map[xqp.BinOp]ralg.FunOp{
			xqp.OpAdd: ralg.FunAdd, xqp.OpSub: ralg.FunSub, xqp.OpMul: ralg.FunMul,
			xqp.OpDiv: ralg.FunDiv, xqp.OpIDiv: ralg.FunIDiv, xqp.OpMod: ralg.FunMod,
		}
		f := ralg.NewFun(j, ops[x.Op], "item2", "a", "b")
		return ralg.NewProject(f, "iter", "pos", "item2->item"), nil
	case xqp.OpRange:
		ql, qr, err := c.compileBothSingleton(x.L, x.R, sc)
		if err != nil {
			return nil, err
		}
		j := ralg.NewHashJoin(ql, qr, "iter", "iter",
			ralg.Refs("iter", "item->lo"), ralg.Refs("item->hi"))
		rg := &ralg.RangeGen{Iter: "iter", Lo: "lo", Hi: "hi"}
		rg.SetInput(0, j)
		return rg, nil
	case xqp.OpUnion:
		ql, err := c.compile(x.L, sc)
		if err != nil {
			return nil, err
		}
		qr, err := c.compile(x.R, sc)
		if err != nil {
			return nil, err
		}
		u := &ralg.Union{Ins: []ralg.Plan{ql, qr}}
		srt := ralg.NewSort(u, "iter", "item")
		d := &ralg.Distinct{By: []string{"iter", "item"}}
		d.SetInput(0, srt)
		rn := ralg.NewRowNum(d, "pos2", []string{"item"}, "iter")
		return ralg.NewProject(rn, "iter", "pos2->pos", "item"), nil
	}
	return nil, fmt.Errorf("xqc: unhandled binary operator %v", x.Op)
}

func (c *Compiler) compileBothSingleton(l, r xqp.Expr, sc *scope) (ralg.Plan, ralg.Plan, error) {
	ql, err := c.compile(l, sc)
	if err != nil {
		return nil, nil, err
	}
	qr, err := c.compile(r, sc)
	if err != nil {
		return nil, nil, err
	}
	return firstItem(ql), firstItem(qr), nil
}

func valueCmpFun(op xqp.BinOp) ralg.FunOp {
	switch op {
	case xqp.OpValEq:
		return ralg.FunEq
	case xqp.OpValNe:
		return ralg.FunNe
	case xqp.OpValLt:
		return ralg.FunLt
	case xqp.OpValLe:
		return ralg.FunLe
	case xqp.OpValGt:
		return ralg.FunGt
	case xqp.OpValGe:
		return ralg.FunGe
	case xqp.OpIs:
		return ralg.FunNodeIs
	case xqp.OpBefore:
		return ralg.FunNodeBefore
	case xqp.OpAfter:
		return ralg.FunNodeAfter
	}
	panic("xqc: not a value comparison")
}

// staticNumeric reports whether e's value is statically known to be
// numeric (drives the Fig. 8b min/max rewrite's comparison mode).
func staticNumeric(e xqp.Expr) bool {
	switch x := e.(type) {
	case *xqp.Literal:
		return x.Kind != xqp.LitString
	case *xqp.Binary:
		switch x.Op {
		case xqp.OpAdd, xqp.OpSub, xqp.OpMul, xqp.OpDiv, xqp.OpIDiv, xqp.OpMod:
			return true
		}
	case *xqp.Unary:
		return true
	case *xqp.Call:
		switch x.Name {
		case "count", "sum", "avg", "number", "floor", "ceiling", "round", "string-length":
			return true
		}
	}
	return false
}

// compileBool compiles e to its effective boolean value: a dense
// (iter, val) relation over sc.loop, sorted on iter.
func (c *Compiler) compileBool(e xqp.Expr, sc *scope) (ralg.Plan, error) {
	switch x := e.(type) {
	case *xqp.Binary:
		switch x.Op {
		case xqp.OpOr, xqp.OpAnd:
			bl, err := c.compileBool(x.L, sc)
			if err != nil {
				return nil, err
			}
			br, err := c.compileBool(x.R, sc)
			if err != nil {
				return nil, err
			}
			j := ralg.NewHashJoin(bl, br, "iter", "iter",
				ralg.Refs("iter", "val->v1"), ralg.Refs("val->v2"))
			op := ralg.FunOr
			if x.Op == xqp.OpAnd {
				op = ralg.FunAnd
			}
			f := ralg.NewFun(j, op, "val", "v1", "v2")
			return ralg.NewProject(f, "iter", "val"), nil
		case xqp.OpGenEq, xqp.OpGenNe, xqp.OpGenLt, xqp.OpGenLe, xqp.OpGenGt, xqp.OpGenGe:
			return c.compileGeneralCmp(x, sc)
		}
	case *xqp.Call:
		switch x.Name {
		case "not":
			if len(x.Args) == 1 {
				b, err := c.compileBool(x.Args[0], sc)
				if err != nil {
					return nil, err
				}
				f := ralg.NewFun(b, ralg.FunNot, "nval", "val")
				return ralg.NewProject(f, "iter", "nval->val"), nil
			}
		case "boolean":
			if len(x.Args) == 1 {
				return c.compileBool(x.Args[0], sc)
			}
		case "exists", "empty":
			if len(x.Args) == 1 {
				q, err := c.compile(x.Args[0], sc)
				if err != nil {
					return nil, err
				}
				present := &ralg.Distinct{By: []string{"iter"}}
				present.SetInput(0, ralg.NewProject(q, "iter"))
				val := &ralg.Attach{Col: "val", Kind: ralg.KBool, B: x.Name == "exists"}
				val.SetInput(0, present)
				return densifyBool(val, sc.loop, x.Name == "empty"), nil
			}
		case "true":
			t := &ralg.Attach{Col: "val", Kind: ralg.KBool, B: true}
			t.SetInput(0, ralg.NewProject(sc.loop, "iter"))
			return t, nil
		case "false":
			f := &ralg.Attach{Col: "val", Kind: ralg.KBool, B: false}
			f.SetInput(0, ralg.NewProject(sc.loop, "iter"))
			return f, nil
		}
	case *xqp.Quantified:
		return c.compileBool(desugarQuantified(x), sc)
	}
	// generic fallback: effective boolean value of the sequence
	q, err := c.compile(e, sc)
	if err != nil {
		return nil, err
	}
	ebv := &ralg.EBV{Part: "iter", Item: "item", Out: "val"}
	ebv.SetInput(0, q)
	return densifyBool(ebv, sc.loop, false), nil
}

// compileGeneralCmp compiles a same-loop existential general comparison:
// join both sides on iter, compare, project the satisfied iterations, and
// densify (Fig. 8a). For ordering comparisons over statically numeric
// operands both sides are first reduced to per-iteration extrema
// (Fig. 8b).
func (c *Compiler) compileGeneralCmp(x *xqp.Binary, sc *scope) (ralg.Plan, error) {
	ql, err := c.compile(x.L, sc)
	if err != nil {
		return nil, err
	}
	qr, err := c.compile(x.R, sc)
	if err != nil {
		return nil, err
	}
	op := genCmpOp(x.Op)
	if op != xqt.CmpEq && op != xqt.CmpNe && (staticNumeric(x.L) || staticNumeric(x.R)) {
		lAgg, rAgg := ralg.AggMin, ralg.AggMax
		if op == xqt.CmpGt || op == xqt.CmpGe {
			lAgg, rAgg = ralg.AggMax, ralg.AggMin
		}
		ql = aggrSide(ql, lAgg)
		qr = aggrSide(qr, rAgg)
	}
	j := ralg.NewHashJoin(ql, qr, "iter", "iter",
		ralg.Refs("iter", "item->a"), ralg.Refs("item->b"))
	fn := map[xqt.CmpOp]ralg.FunOp{
		xqt.CmpEq: ralg.FunEq, xqt.CmpNe: ralg.FunNe, xqt.CmpLt: ralg.FunLt,
		xqt.CmpLe: ralg.FunLe, xqt.CmpGt: ralg.FunGt, xqt.CmpGe: ralg.FunGe,
	}[op]
	f := ralg.NewFun(j, fn, "hit", "a", "b")
	sel := &ralg.Select{Cond: "hit"}
	sel.SetInput(0, f)
	dist := &ralg.Distinct{By: []string{"iter"}}
	dist.SetInput(0, ralg.NewProject(sel, "iter"))
	val := &ralg.Attach{Col: "val", Kind: ralg.KBool, B: true}
	val.SetInput(0, dist)
	return densifyBool(val, sc.loop, false), nil
}

func aggrSide(q ralg.Plan, op ralg.AggOp) ralg.Plan {
	num := ralg.NewFun(q, ralg.FunNumber, "nv", "item")
	a := &ralg.Aggr{Part: "iter", Op: op, Arg: "nv", Out: "item"}
	a.SetInput(0, num)
	return a
}

func genCmpOp(op xqp.BinOp) xqt.CmpOp {
	switch op {
	case xqp.OpGenEq:
		return xqt.CmpEq
	case xqp.OpGenNe:
		return xqt.CmpNe
	case xqp.OpGenLt:
		return xqt.CmpLt
	case xqp.OpGenLe:
		return xqt.CmpLe
	case xqp.OpGenGt:
		return xqt.CmpGt
	case xqp.OpGenGe:
		return xqt.CmpGe
	}
	panic("xqc: not a general comparison")
}

// desugarQuantified rewrites quantifiers into FLWOR emptiness tests:
//
//	some $v in E satisfies P  ≡  exists(for $v in E where P return 1)
//	every $v in E satisfies P ≡  empty(for $v in E where not(P) return 1)
func desugarQuantified(q *xqp.Quantified) xqp.Expr {
	fl := &xqp.FLWOR{Return: &xqp.Literal{Kind: xqp.LitInt, I: 1}}
	for i := range q.Vars {
		fl.Clauses = append(fl.Clauses, xqp.Clause{Kind: xqp.ClauseFor, Var: q.Vars[i], Expr: q.Seqs[i]})
	}
	cond := q.Satisfies
	fn := "exists"
	if q.Every {
		cond = &xqp.Call{Name: "not", Args: []xqp.Expr{cond}}
		fn = "empty"
	}
	fl.Clauses = append(fl.Clauses, xqp.Clause{Kind: xqp.ClauseWhere, Expr: cond})
	return &xqp.Call{Name: fn, Args: []xqp.Expr{fl}}
}
