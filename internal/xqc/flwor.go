package xqc

import (
	"fmt"

	"mxq/internal/ralg"
	"mxq/internal/xqp"
	"mxq/internal/xqt"
)

// compileFLWOR translates a FLWOR expression. Each for clause introduces
// a new loop via dense row numbering; the chain map (outer, inner) tracks
// the composition of the scope maps so the result can be back-mapped to
// the enclosing scope in one join. Where clauses restrict loops via
// selections; order-by re-derives positions by ranking over the key
// values.
func (c *Compiler) compileFLWOR(f *xqp.FLWOR, sc0 *scope) (ralg.Plan, error) {
	cur := sc0.clone()
	// chain: (outer, inner) composition of the scope maps; nil means the
	// identity (no for clause processed yet), which keeps the common
	// single-for back-map a single positional join
	var chainPlan ralg.Plan
	var orderKeys []xqp.OrderKey

	clauses := append([]xqp.Clause(nil), f.Clauses...)
	for i := 0; i < len(clauses); i++ {
		cl := clauses[i]
		switch cl.Kind {
		case xqp.ClauseFor:
			// join recognition: a for over an independent sequence whose
			// immediately following where contains a comparison linking
			// the new variable to the enclosing loops compiles to a
			// theta-join instead of a loop-lifted Cartesian product
			if c.opts.JoinRecognition && i+1 < len(clauses) && clauses[i+1].Kind == xqp.ClauseWhere {
				newCur, newChain, residual, ok, err := c.tryJoinFor(cl, clauses[i+1].Expr, cur, chainPlan)
				if err != nil {
					return nil, err
				}
				if ok {
					cur, chainPlan = newCur, newChain
					if residual != nil {
						clauses[i+1].Expr = residual
					} else {
						clauses = append(clauses[:i+1], clauses[i+2:]...)
					}
					continue
				}
			}
			newCur, newChain, err := c.standardFor(cl, cur, chainPlan)
			if err != nil {
				return nil, err
			}
			cur, chainPlan = newCur, newChain
		case xqp.ClauseLet:
			q, err := c.compile(cl.Expr, cur)
			if err != nil {
				return nil, err
			}
			cur = cur.clone()
			cur.vars[cl.Var] = &binding{plan: q, deps: c.depsOf(cl.Expr, cur)}
		case xqp.ClauseWhere:
			b, err := c.compileBool(cl.Expr, cur)
			if err != nil {
				return nil, err
			}
			sel := &ralg.Select{Cond: "val"}
			sel.SetInput(0, b)
			subLoop := ralg.NewProject(sel, "iter")
			cur = restrictScope(cur, subLoop)
			if chainPlan == nil {
				chainPlan = ralg.NewProject(subLoop, "iter->outer", "iter->inner")
			} else {
				chainPlan = ralg.NewHashJoin(chainPlan, subLoop, "inner", "iter",
					ralg.Refs("outer", "inner"), nil)
			}
		case xqp.ClauseOrder:
			orderKeys = cl.Keys
		}
	}

	qr, err := c.compile(f.Return, cur)
	if err != nil {
		return nil, err
	}
	if chainPlan == nil && len(orderKeys) == 0 {
		return qr, nil // identity chain: the result is already back-mapped
	}
	if chainPlan == nil {
		chainPlan = ralg.NewProject(cur.loop, "iter->outer", "iter->inner")
	}
	if len(orderKeys) == 0 {
		j := ralg.NewHashJoin(chainPlan, qr, "inner", "iter",
			ralg.Refs("outer", "inner"), ralg.Refs("pos", "item"))
		rn := ralg.NewRowNum(j, "pos2", []string{"inner", "pos"}, "outer")
		return ralg.NewProject(rn, "outer->iter", "pos2->pos", "item"), nil
	}

	// order by: attach the key values to the chain (absent keys sort
	// first), rank per outer iteration, then back-map with the rank as
	// the major position
	keyed := chainPlan
	keyCols := make([]string, len(orderKeys))
	desc := make([]bool, len(orderKeys))
	carried := []string{"outer", "inner"}
	for ki, k := range orderKeys {
		kq, err := c.compile(k.Expr, cur)
		if err != nil {
			return nil, err
		}
		// order keys are atomized singletons
		at := ralg.NewFun(firstItem(kq), ralg.FunAtomize, "av", "item")
		kq = ralg.NewProject(at, "iter", "pos", "av->item")
		col := fmt.Sprintf("key%d", ki)
		keyCols[ki] = col
		desc[ki] = k.Desc
		present := ralg.NewHashJoin(keyed, kq, "inner", "iter",
			ralg.Refs(carried...), ralg.Refs("item->"+col))
		missing := &ralg.Diff{LKey: "inner", RKey: "iter"}
		missing.SetInput(0, keyed)
		missing.SetInput(1, kq)
		filled := ralg.NewProject(ralg.AttachItem(missing, col, xqt.EmptyLeast),
			append(append([]string{}, carried...), col)...)
		u := &ralg.Union{Ins: []ralg.Plan{present, filled}}
		keyed = ralg.NewSort(u, "inner")
		carried = append(carried, col)
	}
	rn := &ralg.RowNum{Out: "rnk", OrderBy: append(append([]string{}, keyCols...), "inner"),
		Desc: append(append([]bool{}, desc...), false), Part: "outer"}
	rn.SetInput(0, keyed)
	j := ralg.NewHashJoin(rn, qr, "inner", "iter",
		ralg.Refs("outer", "rnk"), ralg.Refs("pos", "item"))
	srt := ralg.NewSort(j, "outer", "rnk", "pos")
	rn2 := ralg.NewRowNum(srt, "pos2", []string{"rnk", "pos"}, "outer")
	return ralg.NewProject(rn2, "outer->iter", "pos2->pos", "item"), nil
}

// standardFor is the textbook loop-lifting of one for clause (§2.1): the
// binding sequence's rows, numbered densely in (iter, pos) order, become
// the iterations of the new loop; visible variables are mapped in through
// the scope map.
func (c *Compiler) standardFor(cl xqp.Clause, cur *scope, chainPlan ralg.Plan) (*scope, ralg.Plan, error) {
	q1, err := c.compile(cl.Expr, cur)
	if err != nil {
		return nil, nil, err
	}
	if cl.Pos != "" {
		q1 = ralg.NewRowNum(q1, "prank", []string{"pos"}, "iter")
	}
	numbered := ralg.NewRowNum(q1, "inner", []string{"iter", "pos"}, "")
	mapPlan := ralg.NewProject(numbered, "iter->outer", "inner")
	newLoop := ralg.NewProject(numbered, "inner->iter")
	newCur := liftVars(cur, mapPlan, newLoop)
	vb := ralg.AttachInt(ralg.NewProject(numbered, "inner->iter", "item"), "pos", 1)
	newCur.vars[cl.Var] = &binding{
		plan: ralg.NewProject(vb, "iter", "pos", "item"),
		deps: varset{cl.Var: true},
	}
	newCur.loopVars[cl.Var] = true
	if cl.Pos != "" {
		pv := &ralg.ColToItem{Src: "prank", Dst: "item"}
		pv.SetInput(0, ralg.NewProject(numbered, "inner->iter", "prank"))
		pb := ralg.AttachInt(pv, "pos", 1)
		newCur.vars[cl.Pos] = &binding{
			plan: ralg.NewProject(pb, "iter", "pos", "item"),
			deps: varset{cl.Var: true},
		}
	}
	return newCur, composeChain(chainPlan, mapPlan), nil
}

// composeChain joins a (outer, inner) scope map onto the chain so far; a
// nil chain is the identity.
func composeChain(chainPlan, mapPlan ralg.Plan) ralg.Plan {
	if chainPlan == nil {
		return mapPlan
	}
	j := ralg.NewHashJoin(mapPlan, chainPlan, "outer", "inner",
		ralg.Refs("inner"), ralg.Refs("outer"))
	return ralg.NewProject(j, "outer", "inner")
}

// tryJoinFor attempts the join-recognition rewrite for "for $v in E2
// where ... cmp ...". Requirements (the indep property, §4.1):
//
//   - E2 must not depend on any enclosing loop variable;
//   - one conjunct of the where clause must be a general comparison with
//     one side depending exactly on $v and the other side depending on
//     enclosing loop variables but not on $v.
//
// The rewrite compiles E2 once (in a fresh single-iteration loop),
// evaluates the two key expressions in their natural scopes, joins them
// with an existential theta-join, and rebuilds the inner loop from the
// surviving (outer, binding) pairs — avoiding the |outer| × |E2|
// Cartesian product entirely.
func (c *Compiler) tryJoinFor(cl xqp.Clause, where xqp.Expr, cur *scope, chainPlan ralg.Plan) (*scope, ralg.Plan, xqp.Expr, bool, error) {
	if len(c.depsOf(cl.Expr, cur)) != 0 {
		return nil, nil, nil, false, nil
	}
	conjuncts := splitAnd(where)
	// probe scope: $v visible with deps {v}
	probe := cur.clone()
	probe.vars[cl.Var] = &binding{deps: varset{cl.Var: true}}
	if cl.Pos != "" {
		probe.vars[cl.Pos] = &binding{deps: varset{cl.Var: true}}
	}
	loopVars := cur.loopVars.clone()
	loopVars[cl.Var] = true

	match := -1
	var vSide, oSide xqp.Expr
	var cmp xqt.CmpOp
	for ci, cj := range conjuncts {
		b, ok := cj.(*xqp.Binary)
		if !ok {
			continue
		}
		switch b.Op {
		case xqp.OpGenEq, xqp.OpGenLt, xqp.OpGenLe, xqp.OpGenGt, xqp.OpGenGe:
		default:
			continue
		}
		dl := c.depsOf(b.L, probe)
		dr := c.depsOf(b.R, probe)
		vInL, vInR := dl[cl.Var], dr[cl.Var]
		switch {
		case vInL && !vInR && len(dl) == 1 && dr.intersects(loopVars):
			vSide, oSide, cmp = b.L, b.R, genCmpOp(b.Op).Swap() // oSide cmp' vSide
			match = ci
		case vInR && !vInL && len(dr) == 1 && dl.intersects(loopVars):
			vSide, oSide, cmp = b.R, b.L, genCmpOp(b.Op)
			match = ci
		}
		if match >= 0 {
			break
		}
	}
	if match < 0 {
		return nil, nil, nil, false, nil
	}

	// compile E2 once, in a fresh single-iteration loop. Compile errors
	// in this speculative scope abandon the rewrite instead of failing
	// the query: standardFor recompiles the clause in its natural scope
	// and surfaces any genuine static error there.
	baseScope := &scope{loop: litLoop1(), vars: map[string]*binding{}, loopVars: varset{}}
	qb, err := c.compile(cl.Expr, baseScope)
	if err != nil {
		return nil, nil, nil, false, nil
	}
	numbered := ralg.NewRowNum(qb, "bid", []string{"iter", "pos"}, "")
	if cl.Pos != "" {
		numbered = ralg.NewRowNum(numbered, "prank", []string{"pos"}, "iter")
	}
	baseLoop := ralg.NewProject(numbered, "bid->iter")
	vbBase := ralg.AttachInt(ralg.NewProject(numbered, "bid->iter", "item"), "pos", 1)
	vScope := &scope{
		loop:     baseLoop,
		vars:     map[string]*binding{cl.Var: {plan: ralg.NewProject(vbBase, "iter", "pos", "item"), deps: varset{cl.Var: true}}},
		loopVars: varset{cl.Var: true},
	}
	qv, err := c.compile(vSide, vScope)
	if err != nil {
		return nil, nil, nil, false, nil
	}
	qo, err := c.compile(oSide, cur)
	if err != nil {
		return nil, nil, nil, false, nil
	}
	// existential theta-join: (outer iter, binding id) pairs
	join := &ralg.ExistJoin{
		Cmp:   cmp,
		LIter: "iter", LItem: "item", RIter: "iter", RItem: "item",
		Out1: "o", Out2: "b",
	}
	join.SetInput(0, qo)
	join.SetInput(1, qv)
	pairs := ralg.NewRowNum(join, "inner", []string{"o", "b"}, "")
	newLoop := ralg.NewProject(pairs, "inner->iter")
	mapPlan := ralg.NewProject(pairs, "o->outer", "inner")
	newCur := liftVars(cur, mapPlan, newLoop)
	// $v's binding: look the surviving binding ids up in the base table
	vb := ralg.NewHashJoin(pairs, numbered, "b", "bid",
		ralg.Refs("inner->iter"), ralg.Refs("item"))
	newCur.vars[cl.Var] = &binding{
		plan: ralg.NewProject(ralg.AttachInt(vb, "pos", 1), "iter", "pos", "item"),
		deps: varset{cl.Var: true},
	}
	newCur.loopVars[cl.Var] = true
	if cl.Pos != "" {
		pj := ralg.NewHashJoin(pairs, numbered, "b", "bid",
			ralg.Refs("inner->iter"), ralg.Refs("prank"))
		pv := &ralg.ColToItem{Src: "prank", Dst: "item"}
		pv.SetInput(0, pj)
		newCur.vars[cl.Pos] = &binding{
			plan: ralg.NewProject(ralg.AttachInt(pv, "pos", 1), "iter", "pos", "item"),
			deps: varset{cl.Var: true},
		}
	}
	residual := joinConjuncts(conjuncts, match)
	return newCur, composeChain(chainPlan, mapPlan), residual, true, nil
}

// splitAnd flattens a conjunction into its conjuncts.
func splitAnd(e xqp.Expr) []xqp.Expr {
	if b, ok := e.(*xqp.Binary); ok && b.Op == xqp.OpAnd {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []xqp.Expr{e}
}

// joinConjuncts rebuilds a conjunction without conjunct skip; nil if none
// remain.
func joinConjuncts(cs []xqp.Expr, skip int) xqp.Expr {
	var out xqp.Expr
	for i, cj := range cs {
		if i == skip {
			continue
		}
		if out == nil {
			out = cj
		} else {
			out = &xqp.Binary{Op: xqp.OpAnd, L: out, R: cj}
		}
	}
	return out
}
