package xqc

import (
	"fmt"

	"mxq/internal/ralg"
	"mxq/internal/xqerr"
	"mxq/internal/xqp"
	"mxq/internal/xqt"
)

func (c *Compiler) compileCall(x *xqp.Call, sc *scope) (ralg.Plan, error) {
	if f, ok := c.funcs[x.Name]; ok {
		return c.inlineUDF(f, x, sc)
	}
	switch x.Name {
	case "true":
		return litSeq(sc.loop, xqt.Bool(true)), nil
	case "false":
		return litSeq(sc.loop, xqt.Bool(false)), nil
	case "doc", "collection":
		if len(x.Args) != 1 {
			return nil, xqerr.Newf("XPST0017", "%s expects 1 argument", x.Name)
		}
		// fn:doc / fn:collection take xs:string?: a statically empty
		// argument yields the empty sequence.
		if _, isEmpty := x.Args[0].(*xqp.EmptySeq); isEmpty {
			return emptySeq(), nil
		}
		// The argument is evaluated at plan time when it is constant-
		// foldable (literals, concat/string over literals); a truly
		// runtime-valued argument compiles to a Fail operator that raises
		// a clear dynamic error when the plan executes.
		var root ralg.Plan
		name, foldable := constString(x.Args[0])
		switch {
		case !foldable:
			// static checks (undeclared variables, unknown functions)
			// still apply to the argument even though its value is unused
			if _, err := c.compileArg(x, 0, sc); err != nil {
				return nil, err
			}
			var code, msg string
			if s, multi := x.Args[0].(*xqp.Seq); multi && len(s.Items) > 1 {
				// statically more than one item: the xs:string? type
				// error, matching the naive oracle
				code = "XPTY0004"
				msg = fmt.Sprintf("%s() argument is a sequence of %d items", x.Name, len(s.Items))
			} else {
				code = "FODC0004"
				if x.Name == "doc" {
					code = "FODC0002"
				}
				msg = fmt.Sprintf("%s() argument is not a constant string expression (this engine resolves %s names at plan time)", x.Name, x.Name)
			}
			root = &ralg.Fail{Code: code, Msg: msg}
		case x.Name == "doc":
			root = &ralg.DocRoot{Doc: name}
		default:
			root = &ralg.CollectionRoot{Coll: name}
		}
		cross := &ralg.Cross{LCols: ralg.Refs("iter"), RCols: ralg.Refs("pos", "item")}
		cross.SetInput(0, ralg.NewProject(sc.loop, "iter"))
		cross.SetInput(1, root)
		return cross, nil
	case "not", "boolean", "exists", "empty":
		b, err := c.compileBool(x, sc)
		if err != nil {
			return nil, err
		}
		return boolSeq(b), nil
	case "count", "sum", "avg", "min", "max":
		return c.compileAggr(x, sc)
	case "string", "data", "number", "name", "local-name",
		"floor", "ceiling", "round", "string-length":
		return c.compileUnaryFn(x, sc)
	case "contains", "starts-with":
		return c.compileStringCmp(x, sc)
	case "concat":
		return c.compileConcat(x, sc)
	case "distinct-values":
		q, err := c.compileArg(x, 0, sc)
		if err != nil {
			return nil, err
		}
		at := ralg.NewFun(q, ralg.FunAtomize, "av", "item")
		proj := ralg.NewProject(at, "iter", "pos", "av->item")
		d := &ralg.Distinct{By: []string{"iter", "item"}}
		d.SetInput(0, proj)
		rn := ralg.NewRowNum(d, "pos2", []string{"pos"}, "iter")
		return ralg.NewProject(rn, "iter", "pos2->pos", "item"), nil
	case "zero-or-one", "exactly-one", "one-or-more":
		return c.compileCardinality(x, sc)
	case "last":
		if b, ok := sc.vars["#last"]; ok {
			return b.plan, nil
		}
		return nil, xqerr.Newf("XPDY0002", "last() outside a predicate")
	case "position":
		if b, ok := sc.vars["#pos"]; ok {
			return b.plan, nil
		}
		return nil, xqerr.Newf("XPDY0002", "position() outside a predicate")
	}
	return nil, xqerr.Newf("XPST0017", "unknown function %s#%d", x.Name, len(x.Args))
}

// constString statically evaluates e to a string when it is constant-
// foldable: string/numeric literals, a parenthesized foldable singleton,
// string() of a foldable expression, and concat() over foldable
// arguments. It reports ok=false for anything depending on runtime data.
func constString(e xqp.Expr) (string, bool) {
	switch x := e.(type) {
	case *xqp.Literal:
		switch x.Kind {
		case xqp.LitString:
			return x.S, true
		case xqp.LitInt:
			return xqt.Int(x.I).AsString(), true
		case xqp.LitDouble:
			return xqt.Double(x.F).AsString(), true
		}
	case *xqp.Seq:
		if len(x.Items) == 1 {
			return constString(x.Items[0])
		}
	case *xqp.Call:
		switch x.Name {
		case "string":
			if len(x.Args) == 1 {
				return constString(x.Args[0])
			}
		case "concat":
			if len(x.Args) < 2 {
				return "", false
			}
			var out string
			for _, a := range x.Args {
				s, ok := constString(a)
				if !ok {
					return "", false
				}
				out += s
			}
			return out, true
		}
	}
	return "", false
}

func (c *Compiler) compileArg(x *xqp.Call, i int, sc *scope) (ralg.Plan, error) {
	if i >= len(x.Args) {
		return nil, xqerr.Newf("XPST0017", "%s expects more than %d arguments", x.Name, len(x.Args))
	}
	return c.compile(x.Args[i], sc)
}

// inlineUDF expands a user-defined function call by binding the argument
// plans as variables and compiling the body in the caller's loop.
// Recursive functions cannot be inlined and are rejected (the naive
// interpreter evaluates them; the relational compiler matches
// MonetDB/XQuery's documented support only for non-recursive inlining in
// this reproduction).
func (c *Compiler) inlineUDF(f *xqp.FuncDecl, x *xqp.Call, sc *scope) (ralg.Plan, error) {
	if len(x.Args) != len(f.Params) {
		return nil, xqerr.Newf("XPST0017", "%s expects %d arguments", f.Name, len(f.Params))
	}
	if c.inlining[f.Name] {
		return nil, fmt.Errorf("xqc: recursive user-defined function %s cannot be compiled relationally", f.Name)
	}
	body := sc.clone()
	body.vars = make(map[string]*binding, len(f.Params))
	for i, p := range f.Params {
		q, err := c.compile(x.Args[i], sc)
		if err != nil {
			return nil, err
		}
		body.vars[p] = &binding{plan: q, deps: c.depsOf(x.Args[i], sc)}
	}
	c.inlining[f.Name] = true
	defer delete(c.inlining, f.Name)
	return c.compile(f.Body, body)
}

// compileAggr compiles the grouped aggregates. count and sum densify
// empty iterations with 0; avg/min/max leave them empty.
func (c *Compiler) compileAggr(x *xqp.Call, sc *scope) (ralg.Plan, error) {
	q, err := c.compileArg(x, 0, sc)
	if err != nil {
		return nil, err
	}
	op := map[string]ralg.AggOp{
		"count": ralg.AggCount, "sum": ralg.AggSum, "avg": ralg.AggAvg,
		"min": ralg.AggMin, "max": ralg.AggMax,
	}[x.Name]
	arg := "item"
	if op != ralg.AggCount {
		at := ralg.NewFun(q, ralg.FunAtomize, "av", "item")
		q = at
		arg = "av"
	}
	a := &ralg.Aggr{Part: "iter", Op: op, Arg: arg, Out: "item"}
	a.SetInput(0, q)
	var full ralg.Plan = a
	if x.Name == "count" || x.Name == "sum" {
		d := &ralg.Diff{LKey: "iter", RKey: "iter"}
		d.SetInput(0, ralg.NewProject(sc.loop, "iter"))
		d.SetInput(1, a)
		zero := ralg.AttachItem(d, "item", xqt.Int(0))
		u := &ralg.Union{Ins: []ralg.Plan{ralg.NewProject(a, "iter", "item"), ralg.NewProject(zero, "iter", "item")}}
		full = ralg.NewSort(u, "iter")
	}
	res := ralg.AttachInt(full, "pos", 1)
	return ralg.NewProject(res, "iter", "pos", "item"), nil
}

// compileUnaryFn compiles per-iteration scalar functions of one argument.
func (c *Compiler) compileUnaryFn(x *xqp.Call, sc *scope) (ralg.Plan, error) {
	q, err := c.compileArg(x, 0, sc)
	if err != nil {
		return nil, err
	}
	switch x.Name {
	case "data":
		at := ralg.NewFun(q, ralg.FunAtomize, "av", "item")
		return ralg.NewProject(at, "iter", "pos", "av->item"), nil
	case "string", "number", "name", "local-name", "floor", "ceiling", "round", "string-length":
		fn := map[string]ralg.FunOp{
			"string": ralg.FunStringOf, "number": ralg.FunNumber,
			"name": ralg.FunNameOf, "local-name": ralg.FunLocalName,
			"floor": ralg.FunFloor, "ceiling": ralg.FunCeil,
			"round": ralg.FunRound, "string-length": ralg.FunStrLen,
		}[x.Name]
		cc := &ralg.CardCheck{Part: "iter", AtMostOne: true, Fn: x.Name}
		cc.SetInput(0, q)
		f := ralg.NewFun(cc, fn, "fv", "item")
		part := ralg.NewProject(f, "iter", "pos", "fv->item")
		// string(), name() and string-length() of the empty sequence
		// yield "" / 0 rather than the empty sequence
		var def xqt.Item
		switch x.Name {
		case "string", "name", "local-name":
			def = xqt.Str("")
		case "string-length":
			def = xqt.Int(0)
		case "number":
			def = xqt.Double(nan())
		default:
			return part, nil
		}
		d := &ralg.Diff{LKey: "iter", RKey: "iter"}
		d.SetInput(0, ralg.NewProject(sc.loop, "iter"))
		d.SetInput(1, part)
		filled := ralg.AttachItem(ralg.AttachInt(d, "pos", 1), "item", def)
		u := &ralg.Union{Ins: []ralg.Plan{part, ralg.NewProject(filled, "iter", "pos", "item")}}
		return ralg.NewSort(u, "iter", "pos"), nil
	}
	return nil, fmt.Errorf("xqc: unhandled unary function %s", x.Name)
}

// compileStringCmp compiles contains/starts-with: both arguments are
// stringified with "" defaults, compared per iteration.
func (c *Compiler) compileStringCmp(x *xqp.Call, sc *scope) (ralg.Plan, error) {
	qa, err := c.stringified(x, 0, sc)
	if err != nil {
		return nil, err
	}
	qb, err := c.stringified(x, 1, sc)
	if err != nil {
		return nil, err
	}
	j := ralg.NewHashJoin(qa, qb, "iter", "iter",
		ralg.Refs("iter", "pos", "item->a"), ralg.Refs("item->b"))
	fn := ralg.FunContains
	if x.Name == "starts-with" {
		fn = ralg.FunStartsWith
	}
	f := ralg.NewFun(j, fn, "val", "a", "b")
	return boolSeq(ralg.NewProject(f, "iter", "val")), nil
}

func (c *Compiler) compileConcat(x *xqp.Call, sc *scope) (ralg.Plan, error) {
	if len(x.Args) < 2 {
		return nil, xqerr.Newf("XPST0017", "concat expects at least 2 arguments")
	}
	acc, err := c.stringified(x, 0, sc)
	if err != nil {
		return nil, err
	}
	for i := 1; i < len(x.Args); i++ {
		qn, err := c.stringified(x, i, sc)
		if err != nil {
			return nil, err
		}
		j := ralg.NewHashJoin(acc, qn, "iter", "iter",
			ralg.Refs("iter", "pos", "item->a"), ralg.Refs("item->b"))
		f := ralg.NewFun(j, ralg.FunConcat, "cv", "a", "b")
		acc = ralg.NewProject(f, "iter", "pos", "cv->item")
	}
	return acc, nil
}

// stringified compiles an argument to a dense (one row per iteration)
// string singleton: first item stringified, empty iterations become "".
func (c *Compiler) stringified(x *xqp.Call, i int, sc *scope) (ralg.Plan, error) {
	q, err := c.compileArg(x, i, sc)
	if err != nil {
		return nil, err
	}
	first := firstItem(q)
	f := ralg.NewFun(first, ralg.FunStringOf, "sv", "item")
	part := ralg.NewProject(f, "iter", "pos", "sv->item")
	d := &ralg.Diff{LKey: "iter", RKey: "iter"}
	d.SetInput(0, ralg.NewProject(sc.loop, "iter"))
	d.SetInput(1, part)
	filled := ralg.AttachItem(ralg.AttachInt(d, "pos", 1), "item", xqt.Str(""))
	u := &ralg.Union{Ins: []ralg.Plan{part, ralg.NewProject(filled, "iter", "pos", "item")}}
	return ralg.NewSort(u, "iter"), nil
}

func (c *Compiler) compileCardinality(x *xqp.Call, sc *scope) (ralg.Plan, error) {
	q, err := c.compileArg(x, 0, sc)
	if err != nil {
		return nil, err
	}
	switch x.Name {
	case "zero-or-one":
		cc := &ralg.CardCheck{Part: "iter", AtMostOne: true, Fn: "fn:zero-or-one"}
		cc.SetInput(0, q)
		return cc, nil
	case "exactly-one":
		cc := &ralg.CardCheck{Part: "iter", AtMostOne: true, Fn: "fn:exactly-one"}
		cc.SetInput(0, q)
		cv := &ralg.CoverCheck{LoopIter: "iter", Part: "iter", Fn: "fn:exactly-one"}
		cv.SetInput(0, sc.loop)
		cv.SetInput(1, cc)
		return cv, nil
	default: // one-or-more
		cv := &ralg.CoverCheck{LoopIter: "iter", Part: "iter", Fn: "fn:one-or-more"}
		cv.SetInput(0, sc.loop)
		cv.SetInput(1, q)
		return cv, nil
	}
}

func (c *Compiler) compileCtor(x *xqp.ElemCtor, sc *scope) (ralg.Plan, error) {
	content, err := c.compileSeqList(x.Content, sc)
	if err != nil {
		return nil, err
	}
	ec := &ralg.ElemConstruct{
		Loop:    ralg.NewProject(sc.loop, "iter"),
		Content: content,
		Tag:     x.Name,
	}
	for _, a := range x.Attrs {
		spec := ralg.AttrSpec{Attr: a.Name}
		for _, part := range a.Parts {
			pp, err := c.compile(part, sc)
			if err != nil {
				return nil, err
			}
			spec.Parts = append(spec.Parts, pp)
		}
		ec.Attrs = append(ec.Attrs, spec)
	}
	res := ralg.AttachInt(ec, "pos", 1)
	return ralg.NewProject(res, "iter", "pos", "item"), nil
}

func nan() float64 {
	var z float64
	return 0 / z
}
