// Parallel staircase join: the loop-lifted step algorithms of this
// package partition cleanly because an XPath step is, per iteration, a
// union over the context nodes of that iteration — pruning and
// partitioning only avoid emitting the same (node, iter) pair twice.
// Two decompositions exploit this:
//
//   - Context partitioning: the (pre, iter)-sorted context relation is
//     cut into contiguous chunks at pre boundaries; plain staircase join
//     runs on each chunk concurrently, and the per-chunk results are
//     merged back into (pre, iter) order with duplicate elimination
//     (duplicates arise exactly where serial pruning would have fired
//     across a chunk boundary). This suits steps with many context
//     nodes: child, self, parent, ancestor, sibling and the
//     following/preceding axes.
//
//   - Document-range partitioning: descendant steps with few context
//     nodes but large covered regions (the //x workhorse) are split
//     along the pre axis instead. Each worker scans one pre range,
//     seeding its stack with the context nodes whose region covers the
//     range start, so every document position is visited by exactly one
//     worker and the concatenated outputs equal the serial result
//     byte for byte. The candidate-list variant chunks the element-name
//     posting list the same way.
//
// All workers write into worker-local Pairs and Stats; nothing shared is
// mutated, so ParallelStep is safe under the race detector by
// construction.

package scj

import (
	"sort"
	"sync"
	"sync/atomic"

	"mxq/internal/faults"
	"mxq/internal/store"
)

// MergePairs merges two (pre, iter)-sorted pair lists, dropping pairs
// present in both (the cross-chunk duplicates of context partitioning).
func MergePairs(a, b Pairs) Pairs { return mergePairs(a, b) }

// Slots is the slot-acquisition hook of the fork-join helpers: when a
// global query scheduler is installed, every partitioned operator
// draws its extra worker goroutines from the shared bounded pool
// behind this interface instead of spawning freely, so the live worker
// count across ALL concurrent executions stays bounded by the pool
// size. AcquireSlots must not block: it returns 0..want immediately,
// and a region granted 0 slots runs its chunks serially on the calling
// goroutine (progress is guaranteed, so there is no deadlock by
// construction). Implementations must be safe for concurrent use.
type Slots interface {
	AcquireSlots(want int) int
	ReleaseSlots(n int)
}

// ParRun executes f(0..n-1) on at most workers concurrent goroutines
// (the calling goroutine included) and waits for all of them. It is
// the bounded fork-join helper shared by this package and the ralg
// operator layer; ParRunSlots is the variant that draws its extra
// goroutines from a shared pool.
func ParRun(workers, n int, f func(int)) { ParRunSlots(nil, workers, n, f) }

// ParRunSlots is ParRun drawing worker goroutines from sl: the caller
// always participates, and up to workers-1 extra goroutines are
// acquired from sl (spawned freely when sl is nil). Chunks are handed
// out through an atomic cursor, so every index runs exactly once; as
// in ParRun, callers must make f(i) write only chunk-i state.
//
// A panic on a worker goroutine is captured and re-raised on the
// calling goroutine after every worker has drained, so the execution
// boundary's recover contains it like any caller-side panic — a worker
// must never be able to kill the process or leak its siblings.
func ParRunSlots(sl Slots, workers, n int, f func(int)) {
	if n <= 1 {
		if n == 1 {
			f(0)
		}
		return
	}
	extra := workers - 1
	if extra > n-1 {
		extra = n - 1
	}
	if sl != nil && extra > 0 {
		extra = sl.AcquireSlots(extra)
		defer sl.ReleaseSlots(extra)
	}
	if extra <= 0 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			f(i)
		}
	}
	var panicOnce sync.Once
	var panicVal any
	var wg sync.WaitGroup
	for w := 0; w < extra; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicOnce.Do(func() { panicVal = r })
				}
			}()
			// workers have no error return path, so an injected fork
			// fault surfaces as a worker panic — exercising exactly the
			// containment above
			if err := faults.SCJFork.Err(); err != nil {
				panic(err)
			}
			work()
		}()
	}
	work()
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// splitPairsByPre cuts ctx into at most chunks contiguous sub-relations,
// never splitting a run of equal pre values (so per-pre iteration groups
// stay intact within one chunk). The sub-relations alias ctx's storage.
func splitPairsByPre(ctx Pairs, chunks int) []Pairs {
	n := ctx.Len()
	if chunks > n {
		chunks = n
	}
	var out []Pairs
	start := 0
	for k := 0; k < chunks && start < n; k++ {
		end := (n * (k + 1)) / chunks
		if end <= start {
			continue
		}
		for end < n && ctx.Pre[end] == ctx.Pre[end-1] {
			end++
		}
		out = append(out, Pairs{Pre: ctx.Pre[start:end], Iter: ctx.Iter[start:end]})
		start = end
	}
	return out
}

// concatPairs appends chunk outputs in chunk order (used when chunks
// cover disjoint ascending pre ranges, so no merge is needed).
func concatPairs(outs []Pairs) Pairs {
	out := outs[0]
	for _, o := range outs[1:] {
		out.Pre = append(out.Pre, o.Pre...)
		out.Iter = append(out.Iter, o.Iter...)
	}
	return out
}

// mergePairsTree folds a list of sorted pair lists with pairwise merges.
func mergePairsTree(outs []Pairs) Pairs {
	if len(outs) == 0 {
		return Pairs{}
	}
	for len(outs) > 1 {
		next := outs[:0:0]
		for i := 0; i < len(outs); i += 2 {
			if i+1 < len(outs) {
				next = append(next, mergePairs(outs[i], outs[i+1]))
			} else {
				next = append(next, outs[i])
			}
		}
		outs = next
	}
	return outs[0]
}

// ParallelStep evaluates one location step like Step, distributing the
// work over up to workers goroutines when the input is large enough
// (threshold context rows for context partitioning, threshold document
// tuples for range partitioning). The result is identical to Step's —
// same pairs, same (pre, iter) order — so serial execution remains the
// differential-testing oracle. Small inputs fall back to Step.
//
// Stats count the total work performed across all workers: Emitted
// equals the merged result size exactly, but Touched/Pruned include the
// per-worker seeding and context-walk replays, so they can exceed the
// serial counters for the same query. That surplus is the real cost of
// the decomposition, not an accounting error.
func ParallelStep(c *store.Container, ctx Pairs, axis Axis, test Test, v Variant, workers, threshold int, st *Stats) Pairs {
	return ParallelStepSlots(nil, c, ctx, axis, test, v, workers, threshold, st)
}

// ParallelStepSlots is ParallelStep drawing its worker goroutines from
// sl (see Slots); a nil sl spawns freely, reproducing ParallelStep.
func ParallelStepSlots(sl Slots, c *store.Container, ctx Pairs, axis Axis, test Test, v Variant, workers, threshold int, st *Stats) Pairs {
	if st == nil {
		st = &Stats{}
	}
	if workers <= 1 || threshold <= 0 || ctx.Len() == 0 {
		return Step(c, ctx, axis, test, v, st)
	}
	switch axis {
	case Descendant:
		if out, ok := parDescendant(sl, c, ctx, test, v, workers, threshold, st); ok {
			st.Emitted += int64(out.Len())
			return out
		}
	case DescendantOrSelf:
		if out, ok := parDescendant(sl, c, ctx, test, v, workers, threshold, st); ok {
			var self Pairs
			llSelf(c, ctx, CompileTest(c, test), &self, st)
			merged := mergePairs(out, self)
			st.Emitted += int64(merged.Len())
			return merged
		}
	}
	if ctx.Len() >= threshold {
		return parByContext(sl, c, ctx, axis, test, v, workers, st)
	}
	return Step(c, ctx, axis, test, v, st)
}

// parByContext runs staircase join on context chunks concurrently and
// merges the chunk results. Valid for every axis because the per-chunk
// results are each duplicate-free per iteration and the merge removes
// the duplicates serial pruning would have caught across chunks.
func parByContext(sl Slots, c *store.Container, ctx Pairs, axis Axis, test Test, v Variant, workers int, st *Stats) Pairs {
	chunks := splitPairsByPre(ctx, workers)
	if len(chunks) <= 1 {
		return Step(c, ctx, axis, test, v, st)
	}
	outs := make([]Pairs, len(chunks))
	stats := make([]Stats, len(chunks))
	for k := range stats {
		stats[k].Stop = st.Stop
	}
	ParRunSlots(sl, workers, len(chunks), func(k int) {
		outs[k] = Step(c, chunks[k], axis, test, v, &stats[k])
		st.charge(8 * int64(outs[k].Len())) // context-chunk output pairs
	})
	for k := range stats {
		st.Touched += stats[k].Touched
		st.Pruned += stats[k].Pruned
	}
	out := mergePairsTree(outs)
	st.Emitted += int64(out.Len())
	return out
}

// parDescendant evaluates the descendant part of a step with document-
// range partitioning, reporting ok=false when the covered region is too
// small to bother or the variant is the per-iteration ablation baseline.
func parDescendant(sl Slots, c *store.Container, ctx Pairs, test Test, v Variant, workers, threshold int, st *Stats) (Pairs, bool) {
	if v == Iterative {
		return Pairs{}, false
	}
	lo := ctx.Pre[0]
	hi := lo
	for i := 0; i < ctx.Len(); i++ {
		if e := ctx.Pre[i] + c.Size[ctx.Pre[i]]; e > hi {
			hi = e
		}
	}
	if int(hi-lo) < threshold {
		return Pairs{}, false
	}
	if v == CandidateList {
		if cand, ok := candidates(c, test); ok {
			return parCandDescendant(sl, c, ctx, cand, workers, st), true
		}
	}
	return parScanDescendant(sl, c, ctx, CompileTest(c, test), lo, hi, workers, st), true
}

// parCandDescendant chunks the ascending candidate list; each worker
// replays the context walk of candDescendant over its candidate slice.
// The walk is O(|ctx| + |chunk|) per worker and the frame stack at any
// candidate position depends only on ctx, so chunk outputs concatenate
// to exactly the serial candDescendant result.
func parCandDescendant(sl Slots, c *store.Container, ctx Pairs, cand []int32, workers int, st *Stats) Pairs {
	chunks := workers
	if chunks > len(cand) {
		chunks = len(cand)
	}
	if chunks <= 1 {
		var out Pairs
		candDescendant(c, ctx, cand, &out, st)
		return out
	}
	outs := make([]Pairs, chunks)
	stats := make([]Stats, chunks)
	for k := range stats {
		stats[k].Stop = st.Stop
	}
	ParRunSlots(sl, workers, chunks, func(k int) {
		lo := len(cand) * k / chunks
		hi := len(cand) * (k + 1) / chunks
		candDescendant(c, ctx, cand[lo:hi], &outs[k], &stats[k])
		st.charge(8 * int64(outs[k].Len()))
	})
	for k := range stats {
		st.Touched += stats[k].Touched
		st.Pruned += stats[k].Pruned
	}
	return concatPairs(outs)
}

// parScanDescendant splits the covered pre space [lo, hi] into ranges
// scanned concurrently. Each worker seeds its region stack with the
// context nodes covering its range start, then runs the llDescendant
// sweep restricted to its range, so every document position is emitted
// by exactly one worker and the concatenation is in (pre, iter) order.
func parScanDescendant(sl Slots, c *store.Container, ctx Pairs, match func(int32) bool, lo, hi int32, workers int, st *Stats) Pairs {
	span := int(hi + 1 - lo)
	chunks := workers
	if chunks > span {
		chunks = span
	}
	outs := make([]Pairs, chunks)
	stats := make([]Stats, chunks)
	for k := range stats {
		stats[k].Stop = st.Stop
	}
	ParRunSlots(sl, workers, chunks, func(k int) {
		rlo := lo + int32(span*k/chunks)
		rhi := lo + int32(span*(k+1)/chunks)
		scanDescendantRange(c, ctx, match, rlo, rhi, &outs[k], &stats[k])
		st.charge(8 * int64(outs[k].Len()))
	})
	for k := range stats {
		st.Touched += stats[k].Touched
		st.Pruned += stats[k].Pruned
	}
	return concatPairs(outs)
}

// scanDescendantRange is llDescendant restricted to pre positions
// [rlo, rhi): the stack is pre-seeded with the contexts whose region
// covers rlo (they nest, so ascending pre order is stack order), context
// nodes inside the range push as in the full sweep, and the scan stops
// at the range end.
func scanDescendantRange(c *store.Container, ctx Pairs, match func(int32) bool, rlo, rhi int32, out *Pairs, st *Stats) {
	type frame struct {
		eos   int32
		iters []int32
	}
	var frames []frame
	activeSet := make(map[int32]bool)
	var active []int32
	rebuild := func() {
		active = active[:0]
		for _, f := range frames {
			active = append(active, f.iters...)
		}
		sort.Slice(active, func(i, j int) bool { return active[i] < active[j] })
	}
	n := int32(ctx.Len())
	// seed: contexts starting before the range whose region reaches into it
	seedEnd := int32(sort.Search(int(n), func(i int) bool { return ctx.Pre[i] >= rlo }))
	i := int32(0)
	for i < seedEnd {
		curPre := ctx.Pre[i]
		eos := curPre + c.Size[curPre]
		if eos < rlo {
			i++
			continue
		}
		var iters []int32
		for i < seedEnd && ctx.Pre[i] == curPre {
			it := ctx.Iter[i]
			if activeSet[it] {
				st.Pruned++
			} else {
				iters = append(iters, it)
				activeSet[it] = true
			}
			i++
		}
		if len(iters) > 0 {
			frames = append(frames, frame{eos: eos, iters: iters})
		}
	}
	rebuild()

	nxt := seedEnd
	pushAt := func(nxt int32) int32 {
		curPre := ctx.Pre[nxt]
		var iters []int32
		for nxt < n && ctx.Pre[nxt] == curPre {
			it := ctx.Iter[nxt]
			if activeSet[it] {
				st.Pruned++
			} else {
				iters = append(iters, it)
				activeSet[it] = true
			}
			nxt++
		}
		if len(iters) > 0 {
			frames = append(frames, frame{eos: curPre + c.Size[curPre], iters: iters})
			rebuild()
		}
		return nxt
	}

	p := rlo
	for p < rhi {
		popped := false
		for len(frames) > 0 && frames[len(frames)-1].eos < p {
			for _, it := range frames[len(frames)-1].iters {
				delete(activeSet, it)
			}
			frames = frames[:len(frames)-1]
			popped = true
		}
		if popped {
			rebuild()
		}
		if len(frames) == 0 {
			// skipping: jump to the next context inside the range
			if nxt >= n || ctx.Pre[nxt] >= rhi {
				break
			}
			p = ctx.Pre[nxt]
		}
		if nxt < n && ctx.Pre[nxt] == p {
			if len(active) > 0 {
				st.Touched++
				if st.Touched&4095 == 0 && st.stopped() {
					return
				}
				if match(p) {
					for _, it := range active {
						out.append(p, it)
					}
				}
			}
			nxt = pushAt(nxt)
			p++
			continue
		}
		stop := frames[len(frames)-1].eos
		if nxt < n && ctx.Pre[nxt]-1 < stop {
			stop = ctx.Pre[nxt] - 1
		}
		if rhi-1 < stop {
			stop = rhi - 1
		}
		for q := p; q <= stop; q++ {
			st.Touched++
			if st.Touched&4095 == 0 && st.stopped() {
				return
			}
			if c.Level[q] == store.NullLevel {
				q += c.Size[q] // skip unused run
				continue
			}
			if match(q) {
				for _, it := range active {
					out.append(q, it)
				}
			}
		}
		p = stop + 1
	}
}
