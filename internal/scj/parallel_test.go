package scj

import (
	"math/rand"
	"testing"
)

// TestParallelStepMatchesSerial is the core contract of the parallel
// staircase join: for every axis, variant, node test, worker count and
// threshold, ParallelStep must produce exactly Step's result — same
// pairs, same (pre, iter) order.
func TestParallelStepMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tests := []Test{
		{Kind: TestNode},
		{Kind: TestElem},
		{Kind: TestElem, Name: "b"},
		{Kind: TestElem, Name: "nosuch"},
		{Kind: TestText},
	}
	for trial := 0; trial < 30; trial++ {
		c := randomTree(rng, 150)
		ctx := randomCtx(rng, c, 6)
		if ctx.Len() == 0 {
			continue
		}
		for _, axis := range allAxes {
			for _, v := range allVariants {
				for _, test := range tests {
					want := Step(c, ctx, axis, test, v, nil)
					for _, workers := range []int{2, 4} {
						for _, th := range []int{1, 4} {
							got := ParallelStep(c, ctx, axis, test, v, workers, th, nil)
							if !pairsEqual(got, want) {
								t.Fatalf("trial %d axis %v variant %d test %+v workers %d threshold %d:\n got  %s\n want %s\nctx %s",
									trial, axis, v, test, workers, th, pairsString(got), pairsString(want), pairsString(ctx))
							}
						}
					}
				}
			}
		}
	}
}

// Nested context nodes of the same iteration are where serial pruning
// fires; the parallel decompositions must eliminate the duplicates the
// chunk cuts reintroduce.
func TestParallelStepNestedSameIterContexts(t *testing.T) {
	c := shred(t, paperDoc)
	// a(0) > b(1) > c(2) > d(3), e(4); f(5) > g(6), h(7) > i(8), j(9)
	ctx := Pairs{Pre: []int32{0, 1, 2, 5}, Iter: []int32{1, 1, 1, 1}}
	for _, axis := range []Axis{Descendant, DescendantOrSelf, Child, Following, Preceding} {
		want := Step(c, ctx, axis, Test{Kind: TestNode}, LoopLifted, nil)
		for workers := 2; workers <= 5; workers++ {
			got := ParallelStep(c, ctx, axis, Test{Kind: TestNode}, LoopLifted, workers, 1, nil)
			if !pairsEqual(got, want) {
				t.Errorf("axis %v workers %d:\n got  %s\n want %s", axis, workers, pairsString(got), pairsString(want))
			}
		}
	}
}

// Stats must aggregate across workers: emitted equals the result size
// and the touch counter stays positive for non-empty scans.
func TestParallelStepStats(t *testing.T) {
	c := shred(t, paperDoc)
	ctx := Pairs{Pre: []int32{0}, Iter: []int32{1}}
	var st Stats
	out := ParallelStep(c, ctx, Descendant, Test{Kind: TestElem}, LoopLifted, 4, 1, &st)
	if st.Emitted != int64(out.Len()) {
		t.Errorf("emitted %d, want %d", st.Emitted, out.Len())
	}
	if st.Touched == 0 {
		t.Error("parallel step touched nothing")
	}
}

func TestSplitPairsByPre(t *testing.T) {
	cases := []struct {
		name   string
		pre    []int32
		chunks int
		want   int // expected chunk count
	}{
		{"empty", nil, 4, 0},
		{"single run stays whole", []int32{7, 7, 7, 7}, 4, 1},
		{"boundary exactly on chunk edge", []int32{1, 1, 2, 2}, 2, 2},
		{"more chunks than rows", []int32{1, 2}, 8, 2},
	}
	for _, tc := range cases {
		ctx := Pairs{Pre: tc.pre, Iter: make([]int32, len(tc.pre))}
		chunks := splitPairsByPre(ctx, tc.chunks)
		if len(chunks) != tc.want {
			t.Errorf("%s: got %d chunks, want %d", tc.name, len(chunks), tc.want)
		}
		total := 0
		for i, ch := range chunks {
			total += ch.Len()
			if i > 0 && ch.Len() > 0 && chunks[i-1].Len() > 0 &&
				ch.Pre[0] == chunks[i-1].Pre[chunks[i-1].Len()-1] {
				t.Errorf("%s: pre run split across chunks %d and %d", tc.name, i-1, i)
			}
		}
		if total != ctx.Len() {
			t.Errorf("%s: chunks cover %d rows, want %d", tc.name, total, ctx.Len())
		}
	}
}

func TestMergePairsExportedDedups(t *testing.T) {
	a := Pairs{Pre: []int32{1, 3}, Iter: []int32{1, 1}}
	b := Pairs{Pre: []int32{1, 2}, Iter: []int32{1, 1}}
	got := MergePairs(a, b)
	want := Pairs{Pre: []int32{1, 2, 3}, Iter: []int32{1, 1, 1}}
	if !pairsEqual(got, want) {
		t.Errorf("got %s want %s", pairsString(got), pairsString(want))
	}
}
