// Package scj implements staircase join — the XPath-aware join operator of
// MonetDB/XQuery — in its loop-lifted form (paper §3): a single sequential
// pass over the pre|size|level document encoding evaluates an XPath
// location step for the context node sequences of *all* iterations of an
// enclosing XQuery for-loop at once.
//
// Three techniques distinguish staircase join from generic structural
// joins (paper Figures 1–3):
//
//   - Pruning: context nodes covered by another context node of the same
//     iteration are dropped, as they would only produce duplicates.
//   - Partitioning: overlapping context regions are split along the pre
//     axis (implemented by the stack of active context nodes), so result
//     nodes are emitted exactly once per iteration.
//   - Skipping: regions of the document that cannot contain results are
//     skipped via the size property, so no more than |result| + |context|
//     tuples are touched.
//
// The package also provides the per-iteration ("iterative") variants used
// as the ablation baseline of Figure 12, and candidate-list variants that
// implement nametest pushdown through the element-name index (§3.2).
//
// ParallelStep distributes a step over a bounded goroutine pool — by
// context chunks or by document ranges — producing output identical to
// Step's (see parallel.go for the decomposition argument). All Step
// variants are read-only with respect to the container, so any number of
// steps may run concurrently against the same document.
package scj

import (
	"sort"

	"mxq/internal/store"
)

// Axis identifies an XPath axis.
type Axis uint8

// The XPath axes supported by loop-lifted staircase join. (The attribute
// axis is handled by the relational algebra layer because its results are
// attribute rows, not pre|size|level tuples.)
const (
	Child Axis = iota
	Descendant
	DescendantOrSelf
	Self
	Parent
	Ancestor
	AncestorOrSelf
	Following
	Preceding
	FollowingSibling
	PrecedingSibling
)

func (a Axis) String() string {
	switch a {
	case Child:
		return "child"
	case Descendant:
		return "descendant"
	case DescendantOrSelf:
		return "descendant-or-self"
	case Self:
		return "self"
	case Parent:
		return "parent"
	case Ancestor:
		return "ancestor"
	case AncestorOrSelf:
		return "ancestor-or-self"
	case Following:
		return "following"
	case Preceding:
		return "preceding"
	case FollowingSibling:
		return "following-sibling"
	case PrecedingSibling:
		return "preceding-sibling"
	}
	return "axis?"
}

// Reverse reports whether the axis is a reverse axis (results precede the
// context node in document order).
func (a Axis) Reverse() bool {
	switch a {
	case Parent, Ancestor, AncestorOrSelf, Preceding, PrecedingSibling:
		return true
	}
	return false
}

// TestKind is the node test of a location step.
type TestKind uint8

// Node tests.
const (
	TestNode    TestKind = iota // node()
	TestElem                    // element, optionally named
	TestText                    // text()
	TestComment                 // comment()
	TestPI                      // processing-instruction()
	TestDoc                     // document-node()
)

// Test is a node test: a kind test plus an optional name test (elements
// and processing instructions).
type Test struct {
	Kind TestKind
	Name string // "" matches any name
}

// Pairs is a context or result relation of the loop-lifted staircase join:
// parallel (pre, iter) columns, sorted lexicographically by (pre, iter).
type Pairs struct {
	Pre  []int32
	Iter []int32
}

// Len returns the number of pairs.
func (p *Pairs) Len() int { return len(p.Pre) }

// FromColumns builds a context relation from parallel pre/iter columns in
// the executor's int64 column width, narrowing them to the document's
// int32 encoding in one pass. rows [lo, hi) are taken; the caller
// guarantees they are (pre, iter)-sorted (the Step input contract).
func FromColumns(pres, iters []int64, lo, hi int) Pairs {
	p := Pairs{
		Pre:  make([]int32, hi-lo),
		Iter: make([]int32, hi-lo),
	}
	for i := lo; i < hi; i++ {
		p.Pre[i-lo] = int32(pres[i])
		p.Iter[i-lo] = int32(iters[i])
	}
	return p
}

func (p *Pairs) append(pre, iter int32) {
	p.Pre = append(p.Pre, pre)
	p.Iter = append(p.Iter, iter)
}

// SortPairs establishes the (pre, iter) sort order in place.
func SortPairs(p *Pairs) {
	s := pairSorter{p}
	if !sort.IsSorted(s) {
		sort.Sort(s)
	}
}

type pairSorter struct{ p *Pairs }

func (s pairSorter) Len() int { return len(s.p.Pre) }
func (s pairSorter) Less(i, j int) bool {
	if s.p.Pre[i] != s.p.Pre[j] {
		return s.p.Pre[i] < s.p.Pre[j]
	}
	return s.p.Iter[i] < s.p.Iter[j]
}
func (s pairSorter) Swap(i, j int) {
	s.p.Pre[i], s.p.Pre[j] = s.p.Pre[j], s.p.Pre[i]
	s.p.Iter[i], s.p.Iter[j] = s.p.Iter[j], s.p.Iter[i]
}

// Stats collects the access counters used to verify the
// |result| + |context| touch bound and to drive the skipping experiments.
type Stats struct {
	Touched int64 // document tuples visited (including skip landings)
	Emitted int64 // result pairs produced
	Pruned  int64 // context entries removed by pruning

	// Stop, when non-nil, is polled (amortized over a few thousand
	// touched tuples) by the step algorithms; returning true makes them
	// abandon the remaining sweep. The executor wires it to its
	// context's cancellation so deadline/disconnect aborts mid-step; the
	// truncated output is discarded by the caller. Nil (the default)
	// keeps the sweeps poll-free.
	Stop func() bool

	// Charge, when non-nil, accounts n bytes of materialized pairs
	// against the execution's memory budget (the parallel drivers call
	// it as each context chunk completes). It must be safe for
	// concurrent use; an exhausted budget reports through Stop, so the
	// sweeps need no extra branch. Nil disables accounting.
	Charge func(n int64) bool
}

// stopped reports whether a cancellation hook is installed and has fired.
func (st *Stats) stopped() bool { return st.Stop != nil && st.Stop() }

// charge accounts n bytes when an accounting hook is installed.
func (st *Stats) charge(n int64) {
	if st.Charge != nil {
		st.Charge(n)
	}
}

// Variant selects the execution strategy of a step.
type Variant uint8

// Execution variants (Figure 12's ablation axes).
const (
	// LoopLifted evaluates all iterations in one pass (the paper's
	// contribution).
	LoopLifted Variant = iota
	// Iterative runs plain staircase join once per iteration, selecting
	// each iteration's context nodes from the full context relation —
	// the pre-loop-lifting baseline.
	Iterative
	// CandidateList additionally consumes the element-name index and
	// only emits nodes on the candidate list (nametest pushdown, §3.2).
	// It falls back to LoopLifted when the test has no usable index.
	CandidateList
)

// Step evaluates one location step over ctx against the document encoding
// of c and returns the result pairs in (pre, iter) order: within each
// iteration the result is duplicate-free and in document order.
func Step(c *store.Container, ctx Pairs, axis Axis, test Test, v Variant, st *Stats) Pairs {
	if st == nil {
		st = &Stats{}
	}
	var out Pairs
	switch v {
	case Iterative:
		iterative(c, ctx, axis, test, &out, st)
	case CandidateList:
		if cand, ok := candidates(c, test); ok {
			switch axis {
			case Descendant:
				candDescendant(c, ctx, cand, &out, st)
			case DescendantOrSelf:
				candDescendant(c, ctx, cand, &out, st)
				var self Pairs
				llSelf(c, ctx, CompileTest(c, test), &self, st)
				out = mergePairs(out, self)
			case Child:
				candChild(c, ctx, cand, &out, st)
			default:
				stepOnce(c, ctx, axis, test, &out, st)
			}
		} else {
			stepOnce(c, ctx, axis, test, &out, st)
		}
	default:
		stepOnce(c, ctx, axis, test, &out, st)
	}
	st.Emitted += int64(out.Len())
	return out
}

func stepOnce(c *store.Container, ctx Pairs, axis Axis, test Test, out *Pairs, st *Stats) {
	match := CompileTest(c, test)
	switch axis {
	case Child:
		llChild(c, ctx, match, out, st)
	case Descendant:
		llDescendant(c, ctx, match, out, st)
	case DescendantOrSelf:
		llDescendant(c, ctx, match, out, st)
		var self Pairs
		llSelf(c, ctx, match, &self, st)
		*out = mergePairs(*out, self)
	case Self:
		llSelf(c, ctx, match, out, st)
	case Parent:
		llParent(c, ctx, match, out, st)
	case Ancestor:
		llAncestor(c, ctx, match, false, out, st)
	case AncestorOrSelf:
		llAncestor(c, ctx, match, true, out, st)
	case Following:
		llFollowing(c, ctx, match, out, st)
	case Preceding:
		llPreceding(c, ctx, match, out, st)
	case FollowingSibling:
		llFollowingSibling(c, ctx, match, out, st)
	case PrecedingSibling:
		llPrecedingSibling(c, ctx, match, out, st)
	}
}

// CompileTest builds a node-test predicate over the rows of c. For
// containers with shallow-copy indirection the element name is resolved in
// the referenced container; resolved name ids are cached per container.
func CompileTest(c *store.Container, t Test) func(pre int32) bool {
	kindOK := func(k store.NodeKind) bool {
		switch t.Kind {
		case TestNode:
			return k != store.KindUnused
		case TestElem:
			return k == store.KindElem
		case TestText:
			return k == store.KindText
		case TestComment:
			return k == store.KindComment
		case TestPI:
			return k == store.KindPI
		case TestDoc:
			return k == store.KindDoc
		}
		return false
	}
	if t.Name == "" || (t.Kind != TestElem && t.Kind != TestPI) {
		return func(pre int32) bool { return kindOK(c.Kind[pre]) }
	}
	if c.RefCont == nil {
		id, ok := c.Names.Lookup(t.Name)
		if !ok {
			return func(int32) bool { return false }
		}
		return func(pre int32) bool { return kindOK(c.Kind[pre]) && c.NameID[pre] == id }
	}
	// shallow-copy container: resolve names per referenced container
	name := t.Name
	return func(pre int32) bool {
		return kindOK(c.Kind[pre]) && c.NameOf(pre) == name
	}
}

// llChild is the child-axis algorithm of Figure 6: a stack of active
// context nodes, positional skipping over child subtrees, and per-context
// iteration ranges (fstIter, lstIter).
func llChild(c *store.Container, ctx Pairs, match func(int32) bool, out *Pairs, st *Stats) {
	type frame struct {
		eos     int32 // end of the current context's scope (pre + size)
		nxtChld int32 // next child candidate to process
		fstIter int32 // first ctx row of this context node
		lstIter int32 // last ctx row of this context node
	}
	var active []frame
	n := int32(ctx.Len())
	nxtCtx := int32(0)

	pushCtx := func() {
		curPre := ctx.Pre[nxtCtx]
		f := frame{eos: curPre + c.Size[curPre], nxtChld: curPre + 1, fstIter: nxtCtx}
		for nxtCtx < n && ctx.Pre[nxtCtx] == curPre {
			nxtCtx++
		}
		f.lstIter = nxtCtx - 1
		active = append(active, f)
	}
	innerLoop := func(stop int32) {
		f := &active[len(active)-1]
		p := f.nxtChld
		for p <= stop && p <= f.eos {
			st.Touched++
			if st.Touched&4095 == 0 && st.stopped() {
				break
			}
			if c.Level[p] != store.NullLevel && match(p) {
				for i := f.fstIter; i <= f.lstIter; i++ {
					out.append(p, ctx.Iter[i])
				}
			}
			p += c.Size[p] + 1
		}
		f.nxtChld = p
	}

	for nxtCtx < n {
		if nxtCtx&1023 == 0 && st.stopped() {
			return
		}
		if len(active) == 0 {
			pushCtx() // ① start a new partition
		} else if active[len(active)-1].eos >= ctx.Pre[nxtCtx] {
			innerLoop(ctx.Pre[nxtCtx]) // ② children up to the next context
			pushCtx()                  // ③ descend into the next context
		} else {
			innerLoop(active[len(active)-1].eos) // ④ finish current context
			active = active[:len(active)-1]      // ⑤ pop
		}
	}
	for len(active) > 0 {
		innerLoop(active[len(active)-1].eos) // ⑥ finish remaining scopes
		active = active[:len(active)-1]      // ⑦ pop
	}
}

// llDescendant scans the document once; a stack of active context regions
// tracks which iterations each visited node belongs to. Context nodes
// whose iteration is already active are pruned. The sweep itself lives
// in scanDescendantRange (parallel.go); the serial algorithm is its
// full-document special case, so serial and range-parallel execution
// share one implementation by construction.
func llDescendant(c *store.Container, ctx Pairs, match func(int32) bool, out *Pairs, st *Stats) {
	if ctx.Len() == 0 {
		return
	}
	scanDescendantRange(c, ctx, match, ctx.Pre[0], int32(c.Len()), out, st)
}

func llSelf(c *store.Container, ctx Pairs, match func(int32) bool, out *Pairs, st *Stats) {
	for i := 0; i < ctx.Len(); i++ {
		st.Touched++
		if st.Touched&4095 == 0 && st.stopped() {
			return
		}
		if match(ctx.Pre[i]) {
			out.append(ctx.Pre[i], ctx.Iter[i])
		}
	}
}

func llParent(c *store.Container, ctx Pairs, match func(int32) bool, out *Pairs, st *Stats) {
	seen := make(map[int64]bool)
	for i := 0; i < ctx.Len(); i++ {
		if i&4095 == 4095 && st.stopped() {
			break // the truncated output is discarded by the caller
		}
		par := c.Parent[ctx.Pre[i]]
		if par < 0 {
			continue
		}
		st.Touched++
		if !match(par) {
			continue
		}
		key := int64(par)<<32 | int64(uint32(ctx.Iter[i]))
		if seen[key] {
			continue
		}
		seen[key] = true
		out.append(par, ctx.Iter[i])
	}
	SortPairs(out)
}

// llAncestor walks parent chains. The per-iteration visited set realizes
// pruning: as soon as an (ancestor, iter) pair repeats, the remaining
// chain is already emitted.
func llAncestor(c *store.Container, ctx Pairs, match func(int32) bool, orSelf bool, out *Pairs, st *Stats) {
	seen := make(map[int64]bool)
	for i := 0; i < ctx.Len(); i++ {
		if i&1023 == 0 && st.stopped() {
			break
		}
		p := ctx.Pre[i]
		if !orSelf {
			p = c.Parent[p]
		}
		for p >= 0 {
			st.Touched++
			key := int64(p)<<32 | int64(uint32(ctx.Iter[i]))
			if seen[key] {
				st.Pruned++
				break
			}
			seen[key] = true
			if match(p) {
				out.append(p, ctx.Iter[i])
			}
			p = c.Parent[p]
		}
	}
	SortPairs(out)
}

// groupByFragment invokes body once per run of context rows that share a
// fragment (XPath's following/preceding axes never cross tree boundaries,
// and a container may hold many document fragments — the shards of a
// ShardedPool, or the constructed trees of a transient container).
// Fragments occupy disjoint ascending pre ranges, so the runs are
// contiguous in the (pre, iter)-sorted context.
func groupByFragment(c *store.Container, ctx Pairs, body func(sub Pairs, frag int32)) {
	i := 0
	for i < ctx.Len() {
		frag := c.Frag[ctx.Pre[i]]
		j := i
		for j < ctx.Len() && c.Frag[ctx.Pre[j]] == frag {
			j++
		}
		body(Pairs{Pre: ctx.Pre[i:j], Iter: ctx.Iter[i:j]}, frag)
		i = j
	}
}

// llFollowing exploits that the following regions of all context nodes of
// one iteration collapse to a single region starting after the context
// node with the smallest pre+size (partitioning degenerates to a
// minimum), bounded by the context node's fragment. Fragment groups cover
// disjoint ascending pre ranges, so the concatenated group outputs are in
// (pre, iter) order.
func llFollowing(c *store.Container, ctx Pairs, match func(int32) bool, out *Pairs, st *Stats) {
	groupByFragment(c, ctx, func(sub Pairs, frag int32) {
		followingFrag(c, sub, frag, match, out, st)
	})
}

func followingFrag(c *store.Container, ctx Pairs, frag int32, match func(int32) bool, out *Pairs, st *Stats) {
	cutoff := make(map[int32]int32) // iter -> smallest pre+size
	for i := 0; i < ctx.Len(); i++ {
		end := ctx.Pre[i] + c.Size[ctx.Pre[i]]
		if cur, ok := cutoff[ctx.Iter[i]]; !ok || end < cur {
			cutoff[ctx.Iter[i]] = end
		} else {
			st.Pruned++
		}
	}
	if len(cutoff) == 0 {
		return
	}
	type ci struct{ cut, iter int32 }
	cuts := make([]ci, 0, len(cutoff))
	for it, cut := range cutoff {
		cuts = append(cuts, ci{cut, it})
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i].cut < cuts[j].cut })
	fragEnd := frag + c.Size[frag]
	var active []int32
	next := 0
	start := cuts[0].cut + 1
	for p := start; p <= fragEnd; p++ {
		for next < len(cuts) && cuts[next].cut < p {
			active = insertSorted(active, cuts[next].iter)
			next = next + 1
		}
		st.Touched++
		if st.Touched&4095 == 0 && st.stopped() {
			return
		}
		if c.Level[p] == store.NullLevel {
			p += c.Size[p]
			continue
		}
		if match(p) {
			for _, it := range active {
				out.append(p, it)
			}
		}
	}
}

// llPreceding mirrors llFollowing: per iteration only the context node
// with the largest pre matters; node v precedes it iff pre(v)+size(v) <
// pre(c), with the sweep confined to the context node's fragment.
func llPreceding(c *store.Container, ctx Pairs, match func(int32) bool, out *Pairs, st *Stats) {
	groupByFragment(c, ctx, func(sub Pairs, frag int32) {
		precedingFrag(c, sub, frag, match, out, st)
	})
	SortPairs(out)
}

func precedingFrag(c *store.Container, ctx Pairs, frag int32, match func(int32) bool, out *Pairs, st *Stats) {
	cutoff := make(map[int32]int32) // iter -> largest context pre
	for i := 0; i < ctx.Len(); i++ {
		if cur, ok := cutoff[ctx.Iter[i]]; !ok || ctx.Pre[i] > cur {
			cutoff[ctx.Iter[i]] = ctx.Pre[i]
		} else {
			st.Pruned++
		}
	}
	if len(cutoff) == 0 {
		return
	}
	type ci struct{ cut, iter int32 }
	cuts := make([]ci, 0, len(cutoff))
	maxCut := int32(0)
	for it, cut := range cutoff {
		cuts = append(cuts, ci{cut, it})
		if cut > maxCut {
			maxCut = cut
		}
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i].cut < cuts[j].cut })
	for p := frag; p < maxCut; p++ {
		st.Touched++
		if st.Touched&4095 == 0 && st.stopped() {
			return
		}
		if c.Level[p] == store.NullLevel {
			p += c.Size[p]
			continue
		}
		if !match(p) {
			continue
		}
		end := p + c.Size[p]
		// iterations whose cutoff exceeds end form a suffix of cuts
		lo := sort.Search(len(cuts), func(i int) bool { return cuts[i].cut > end })
		for i := lo; i < len(cuts); i++ {
			out.append(p, cuts[i].iter)
		}
	}
}

func llFollowingSibling(c *store.Container, ctx Pairs, match func(int32) bool, out *Pairs, st *Stats) {
	seen := make(map[int64]bool)
	for i := 0; i < ctx.Len(); i++ {
		if i&1023 == 0 && st.stopped() {
			break
		}
		pre := ctx.Pre[i]
		par := c.Parent[pre]
		if par < 0 {
			continue
		}
		eos := par + c.Size[par]
		for v := pre + c.Size[pre] + 1; v <= eos; v += c.Size[v] + 1 {
			st.Touched++
			if c.Level[v] == store.NullLevel || !match(v) {
				continue
			}
			key := int64(v)<<32 | int64(uint32(ctx.Iter[i]))
			if seen[key] {
				st.Pruned++
				break // all further siblings already emitted for this iter
			}
			seen[key] = true
			out.append(v, ctx.Iter[i])
		}
	}
	SortPairs(out)
}

func llPrecedingSibling(c *store.Container, ctx Pairs, match func(int32) bool, out *Pairs, st *Stats) {
	seen := make(map[int64]bool)
	for i := 0; i < ctx.Len(); i++ {
		if i&1023 == 0 && st.stopped() {
			break
		}
		pre := ctx.Pre[i]
		par := c.Parent[pre]
		if par < 0 {
			continue
		}
		for v := par + 1; v < pre; v += c.Size[v] + 1 {
			st.Touched++
			if c.Level[v] == store.NullLevel || !match(v) {
				continue
			}
			key := int64(v)<<32 | int64(uint32(ctx.Iter[i]))
			if seen[key] {
				continue
			}
			seen[key] = true
			out.append(v, ctx.Iter[i])
		}
	}
	SortPairs(out)
}

// iterative is the pre-loop-lifting baseline: plain staircase join is
// invoked once per iteration; each invocation must first select that
// iteration's context nodes from the full context relation, and the
// per-iteration results are concatenated and re-sorted afterwards. This
// reproduces the repeated-scan cost the loop-lifted algorithm eliminates.
func iterative(c *store.Container, ctx Pairs, axis Axis, test Test, out *Pairs, st *Stats) {
	iterSet := make(map[int32]bool)
	var iters []int32
	for _, it := range ctx.Iter {
		if !iterSet[it] {
			iterSet[it] = true
			iters = append(iters, it)
		}
	}
	sort.Slice(iters, func(i, j int) bool { return iters[i] < iters[j] })
	var sub, tmp Pairs
	for _, it := range iters {
		if st.stopped() {
			break
		}
		sub.Pre = sub.Pre[:0]
		sub.Iter = sub.Iter[:0]
		for i := 0; i < ctx.Len(); i++ { // full scan per iteration
			st.Touched++
			if ctx.Iter[i] == it {
				sub.append(ctx.Pre[i], it)
			}
		}
		tmp = Pairs{}
		stepOnce(c, sub, axis, test, &tmp, st)
		out.Pre = append(out.Pre, tmp.Pre...)
		out.Iter = append(out.Iter, tmp.Iter...)
	}
	SortPairs(out)
}

// candidates returns the ascending candidate pre list for a named element
// test, if the container has an element-name index.
func candidates(c *store.Container, t Test) ([]int32, bool) {
	if t.Kind != TestElem || t.Name == "" {
		return nil, false
	}
	return c.ElemIndex(t.Name)
}

// candDescendant is the predicate-pushdown descendant variant: instead of
// scanning the document it walks the candidate list, binary-searching past
// regions that cannot contain results (§3.2).
func candDescendant(c *store.Container, ctx Pairs, cand []int32, out *Pairs, st *Stats) {
	const inf = int32(1) << 30
	type frame struct {
		eos   int32
		iters []int32
	}
	var frames []frame
	activeSet := make(map[int32]bool)
	var active []int32
	rebuild := func() {
		active = active[:0]
		for _, f := range frames {
			active = append(active, f.iters...)
		}
		sort.Slice(active, func(i, j int) bool { return active[i] < active[j] })
	}
	n := int32(ctx.Len())
	nxt := int32(0)
	li := 0
	events := 0
	for nxt < n || len(frames) > 0 {
		events++
		if events&1023 == 0 && st.stopped() {
			return
		}
		if len(frames) == 0 {
			// skipping: jump straight past candidates that precede the
			// next context region
			li = sort.Search(len(cand), func(i int) bool { return cand[i] > ctx.Pre[nxt] })
		}
		topEos, ctxPre, candPre := inf, inf, inf
		if len(frames) > 0 {
			topEos = frames[len(frames)-1].eos
		}
		if nxt < n {
			ctxPre = ctx.Pre[nxt]
		}
		if li < len(cand) {
			candPre = cand[li]
		}
		switch {
		case len(frames) > 0 && candPre > topEos && ctxPre > topEos:
			// current region exhausted: pop
			for _, it := range frames[len(frames)-1].iters {
				delete(activeSet, it)
			}
			frames = frames[:len(frames)-1]
			rebuild()
		case ctxPre <= candPre && ctxPre < inf:
			// context event: emit the context node itself if it is a
			// candidate inside enclosing regions, then push
			if candPre == ctxPre && len(active) > 0 {
				st.Touched++
				for _, it := range active {
					out.append(candPre, it)
				}
			}
			if candPre == ctxPre {
				li++
			}
			var iters []int32
			for nxt < n && ctx.Pre[nxt] == ctxPre {
				it := ctx.Iter[nxt]
				if activeSet[it] {
					st.Pruned++
				} else {
					iters = append(iters, it)
					activeSet[it] = true
				}
				nxt++
			}
			if len(iters) > 0 {
				frames = append(frames, frame{eos: ctxPre + c.Size[ctxPre], iters: iters})
				rebuild()
			}
		default:
			// candidate event inside the top region
			st.Touched++
			for _, it := range active {
				out.append(candPre, it)
			}
			li++
		}
	}
}

// candChild is the candidate-list child variant: candidates inside each
// context region are located by binary search and filtered by a parent
// check.
func candChild(c *store.Container, ctx Pairs, cand []int32, out *Pairs, st *Stats) {
	i := 0
	n := ctx.Len()
	for i < n {
		if st.stopped() {
			break
		}
		pre := ctx.Pre[i]
		j := i
		for j < n && ctx.Pre[j] == pre {
			j++
		}
		eos := pre + c.Size[pre]
		li := sort.Search(len(cand), func(k int) bool { return cand[k] > pre })
		for ; li < len(cand) && cand[li] <= eos; li++ {
			st.Touched++
			if c.Parent[cand[li]] != pre {
				continue
			}
			for k := i; k < j; k++ {
				out.append(cand[li], ctx.Iter[k])
			}
		}
		i = j
	}
	SortPairs(out)
}

// mergePairs merges two (pre, iter)-sorted pair lists, dropping duplicates.
func mergePairs(a, b Pairs) Pairs {
	var out Pairs
	i, j := 0, 0
	less := func(p1, i1, p2, i2 int32) bool {
		if p1 != p2 {
			return p1 < p2
		}
		return i1 < i2
	}
	for i < a.Len() || j < b.Len() {
		switch {
		case j >= b.Len():
			out.append(a.Pre[i], a.Iter[i])
			i++
		case i >= a.Len():
			out.append(b.Pre[j], b.Iter[j])
			j++
		case a.Pre[i] == b.Pre[j] && a.Iter[i] == b.Iter[j]:
			out.append(a.Pre[i], a.Iter[i])
			i++
			j++
		case less(a.Pre[i], a.Iter[i], b.Pre[j], b.Iter[j]):
			out.append(a.Pre[i], a.Iter[i])
			i++
		default:
			out.append(b.Pre[j], b.Iter[j])
			j++
		}
	}
	return out
}

func insertSorted(s []int32, v int32) []int32 {
	i := sort.Search(len(s), func(k int) bool { return s[k] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
