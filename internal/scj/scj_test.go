package scj

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"mxq/internal/store"
)

// --- naive oracle -----------------------------------------------------

// naiveAxis computes an axis step by definition, directly from the
// pre/size/level encoding, including per-iteration duplicate elimination
// and (pre, iter) result order.
func naiveAxis(c *store.Container, ctx Pairs, axis Axis, test Test) Pairs {
	match := CompileTest(c, test)
	inAxis := func(v, ctx int32) bool {
		if c.Level[v] == store.NullLevel {
			return false
		}
		vEnd := v + c.Size[v]
		cEnd := ctx + c.Size[ctx]
		switch axis {
		case Self:
			return v == ctx
		case Child:
			return c.Parent[v] == ctx
		case Parent:
			return c.Parent[ctx] == v
		case Descendant:
			return v > ctx && v <= cEnd
		case DescendantOrSelf:
			return v >= ctx && v <= cEnd
		case Ancestor:
			return v < ctx && vEnd >= ctx
		case AncestorOrSelf:
			return v <= ctx && vEnd >= ctx
		case Following:
			return v > cEnd
		case Preceding:
			return vEnd < ctx
		case FollowingSibling:
			return c.Parent[v] == c.Parent[ctx] && c.Parent[ctx] >= 0 && v > ctx
		case PrecedingSibling:
			return c.Parent[v] == c.Parent[ctx] && c.Parent[ctx] >= 0 && v < ctx
		}
		return false
	}
	seen := make(map[int64]bool)
	var out Pairs
	for i := 0; i < ctx.Len(); i++ {
		for v := int32(0); v < int32(c.Len()); v++ {
			if !inAxis(v, ctx.Pre[i]) || !match(v) {
				continue
			}
			key := int64(v)<<32 | int64(uint32(ctx.Iter[i]))
			if seen[key] {
				continue
			}
			seen[key] = true
			out.append(v, ctx.Iter[i])
		}
	}
	SortPairs(&out)
	return out
}

func pairsEqual(a, b Pairs) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Pre {
		if a.Pre[i] != b.Pre[i] || a.Iter[i] != b.Iter[i] {
			return false
		}
	}
	return true
}

func pairsString(p Pairs) string {
	var sb strings.Builder
	for i := range p.Pre {
		fmt.Fprintf(&sb, "(%d,%d) ", p.Pre[i], p.Iter[i])
	}
	return sb.String()
}

// --- fixtures ----------------------------------------------------------

const paperDoc = `<a><b><c><d/><e/></c></b><f><g/><h><i/><j/></h></f></a>`

func shred(t testing.TB, doc string) *store.Container {
	t.Helper()
	c, err := store.Shred("t.xml", strings.NewReader(doc), false)
	if err != nil {
		t.Fatal(err)
	}
	c.BuildIndexes()
	return c
}

// randomTree builds a random container with names drawn from a small
// alphabet, returning it. Shape is controlled by rng.
func randomTree(rng *rand.Rand, maxNodes int) *store.Container {
	b := store.NewBuilder("rand.xml")
	b.StartDoc()
	names := []string{"a", "b", "c", "d"}
	n := 1 + rng.Intn(maxNodes)
	open := 1
	b.StartElem(names[rng.Intn(len(names))])
	open++
	for i := 0; i < n; i++ {
		switch r := rng.Intn(10); {
		case r < 5 && open < 12:
			b.StartElem(names[rng.Intn(len(names))])
			open++
		case r < 7:
			b.Text(fmt.Sprintf("t%d", i))
		default:
			if open > 2 {
				b.End()
				open--
			} else {
				b.StartElem(names[rng.Intn(len(names))])
				open++
			}
		}
	}
	for open > 0 {
		b.End()
		open--
	}
	c, err := b.Done()
	if err != nil {
		panic(err)
	}
	c.BuildIndexes()
	return c
}

// randomCtx draws a random sorted (pre, iter) context over c.
func randomCtx(rng *rand.Rand, c *store.Container, maxIters int) Pairs {
	var ctx Pairs
	iters := 1 + rng.Intn(maxIters)
	for it := 1; it <= iters; it++ {
		k := rng.Intn(4)
		seen := map[int32]bool{}
		for j := 0; j < k; j++ {
			p := int32(rng.Intn(c.Len()))
			if c.Kind[p] == store.KindText && rng.Intn(2) == 0 {
				continue
			}
			if !seen[p] {
				seen[p] = true
				ctx.append(p, int32(it))
			}
		}
	}
	SortPairs(&ctx)
	return ctx
}

var allAxes = []Axis{
	Child, Descendant, DescendantOrSelf, Self, Parent, Ancestor,
	AncestorOrSelf, Following, Preceding, FollowingSibling, PrecedingSibling,
}

var allVariants = []Variant{LoopLifted, Iterative, CandidateList}

// --- tests --------------------------------------------------------------

func TestChildPaperExample(t *testing.T) {
	c := shred(t, paperDoc)
	// Figure 7: two iterations; iteration 1 has context (c1)=(a),
	// iteration 2 has (a, f). Children of a: b, f; children of f: g, h.
	ctx := Pairs{Pre: []int32{1, 1, 6}, Iter: []int32{1, 2, 2}}
	out := Step(c, ctx, Child, Test{Kind: TestElem}, LoopLifted, nil)
	want := Pairs{
		Pre:  []int32{2, 2, 6, 6, 7, 8},
		Iter: []int32{1, 2, 1, 2, 2, 2},
	}
	if !pairsEqual(out, want) {
		t.Errorf("child step:\n got %s\nwant %s", pairsString(out), pairsString(want))
	}
}

func TestAllAxesAgainstOracleOnPaperDoc(t *testing.T) {
	c := shred(t, paperDoc)
	ctxs := []Pairs{
		{Pre: []int32{3, 3}, Iter: []int32{1, 2}},             // (c) twice
		{Pre: []int32{3, 5, 8}, Iter: []int32{1, 1, 1}},       // c,e,i single iter
		{Pre: []int32{2, 3, 6, 8}, Iter: []int32{2, 1, 1, 2}}, // mixed
		{Pre: []int32{0}, Iter: []int32{1}},                   // document node
		{Pre: []int32{1, 1, 1}, Iter: []int32{1, 2, 3}},       // root in 3 iters
		{}, // empty context
		{Pre: []int32{4, 9, 10}, Iter: []int32{1, 1, 1}}, // leaves
	}
	tests := []Test{
		{Kind: TestNode}, {Kind: TestElem}, {Kind: TestElem, Name: "h"},
		{Kind: TestElem, Name: "nosuch"}, {Kind: TestText},
	}
	for _, axis := range allAxes {
		for ci, ctx := range ctxs {
			for _, test := range tests {
				want := naiveAxis(c, ctx, axis, test)
				for _, v := range allVariants {
					got := Step(c, ctx, axis, test, v, nil)
					if !pairsEqual(got, want) {
						t.Errorf("%v/%v ctx#%d test=%+v:\n got %s\nwant %s",
							axis, v, ci, test, pairsString(got), pairsString(want))
					}
				}
			}
		}
	}
}

func TestRandomTreesAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		c := randomTree(rng, 60)
		ctx := randomCtx(rng, c, 6)
		for _, axis := range allAxes {
			for _, test := range []Test{{Kind: TestNode}, {Kind: TestElem, Name: "b"}} {
				want := naiveAxis(c, ctx, axis, test)
				for _, v := range allVariants {
					got := Step(c, ctx, axis, test, v, nil)
					if !pairsEqual(got, want) {
						t.Fatalf("trial %d %v/%v test=%+v ctx=%s:\n got %s\nwant %s",
							trial, axis, v, test, pairsString(ctx),
							pairsString(got), pairsString(want))
					}
				}
			}
		}
	}
}

// TestTouchBound verifies the paper's claim that (without a name test)
// staircase join touches no more than |result| + |context| document
// tuples, up to a small constant per context node.
func TestTouchBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		c := randomTree(rng, 200)
		ctx := randomCtx(rng, c, 5)
		for _, axis := range []Axis{Child, Descendant} {
			var st Stats
			out := Step(c, ctx, axis, Test{Kind: TestNode}, LoopLifted, &st)
			bound := int64(out.Len()) + 2*int64(ctx.Len()) + 2
			if st.Touched > bound {
				t.Errorf("trial %d %v: touched %d > bound %d (|result|=%d |ctx|=%d)",
					trial, axis, st.Touched, bound, out.Len(), ctx.Len())
			}
		}
	}
}

// TestSkipping checks that a descendant step over a small context deep in
// a large document touches far fewer tuples than the document holds.
func TestSkipping(t *testing.T) {
	b := store.NewBuilder("big.xml")
	b.StartDoc()
	b.StartElem("root")
	for i := 0; i < 1000; i++ {
		b.StartElem("filler")
		b.Text("x")
		b.End()
	}
	b.StartElem("target")
	b.StartElem("inner")
	b.End()
	b.End()
	for i := 0; i < 1000; i++ {
		b.StartElem("filler")
		b.Text("y")
		b.End()
	}
	b.End()
	b.End()
	c, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	// locate target
	var target int32 = -1
	for p := int32(0); p < int32(c.Len()); p++ {
		if c.Kind[p] == store.KindElem && c.NameOf(p) == "target" {
			target = p
		}
	}
	var st Stats
	out := Step(c, Pairs{Pre: []int32{target}, Iter: []int32{1}},
		Descendant, Test{Kind: TestNode}, LoopLifted, &st)
	if out.Len() != 1 {
		t.Fatalf("descendants of target = %d, want 1", out.Len())
	}
	if st.Touched > 10 {
		t.Errorf("touched %d tuples of a %d-tuple document; skipping broken",
			st.Touched, c.Len())
	}
}

// TestPruningCounter checks that covered context nodes of the same
// iteration are pruned (Figure 1) while the same pres in different
// iterations are kept.
func TestPruningCounter(t *testing.T) {
	c := shred(t, paperDoc)
	// c (pre 3) is inside b (pre 2): same iteration -> pruned
	var st Stats
	Step(c, Pairs{Pre: []int32{2, 3}, Iter: []int32{1, 1}},
		Descendant, Test{Kind: TestNode}, LoopLifted, &st)
	if st.Pruned != 1 {
		t.Errorf("same-iteration covered context: pruned = %d, want 1", st.Pruned)
	}
	// different iterations -> no pruning
	st = Stats{}
	Step(c, Pairs{Pre: []int32{2, 3}, Iter: []int32{1, 2}},
		Descendant, Test{Kind: TestNode}, LoopLifted, &st)
	if st.Pruned != 0 {
		t.Errorf("cross-iteration contexts: pruned = %d, want 0", st.Pruned)
	}
}

// TestUnusedTuples verifies all axes skip unused tuples (paged update
// scheme) — build a container with blanked regions by hand.
func TestUnusedTuples(t *testing.T) {
	c := shred(t, paperDoc)
	// blank out <d/> (pre 4): becomes an unused tuple
	c.Kind[4] = store.KindUnused
	c.Level[4] = store.NullLevel
	c.Parent[4] = -1
	for _, axis := range allAxes {
		ctx := Pairs{Pre: []int32{3}, Iter: []int32{1}} // <c>
		got := Step(c, ctx, axis, Test{Kind: TestNode}, LoopLifted, nil)
		for i := range got.Pre {
			if got.Pre[i] == 4 {
				t.Errorf("%v returned unused tuple", axis)
			}
		}
		want := naiveAxis(c, ctx, axis, Test{Kind: TestNode})
		if !pairsEqual(got, want) {
			t.Errorf("%v with unused tuple:\n got %s\nwant %s", axis,
				pairsString(got), pairsString(want))
		}
	}
}

func TestCandidateVariantUsesIndex(t *testing.T) {
	c := shred(t, paperDoc)
	ctx := Pairs{Pre: []int32{1}, Iter: []int32{1}}
	var stFull, stCand Stats
	full := Step(c, ctx, Descendant, Test{Kind: TestElem, Name: "i"}, LoopLifted, &stFull)
	cand := Step(c, ctx, Descendant, Test{Kind: TestElem, Name: "i"}, CandidateList, &stCand)
	if !pairsEqual(full, cand) {
		t.Fatalf("candidate variant differs: %s vs %s", pairsString(full), pairsString(cand))
	}
	if stCand.Touched >= stFull.Touched {
		t.Errorf("candidate touched %d >= full scan %d", stCand.Touched, stFull.Touched)
	}
}

func TestStepResultOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		c := randomTree(rng, 80)
		ctx := randomCtx(rng, c, 4)
		for _, axis := range allAxes {
			out := Step(c, ctx, axis, Test{Kind: TestNode}, LoopLifted, nil)
			if !sort.IsSorted(pairSorter{&out}) {
				t.Fatalf("%v result not (pre, iter) sorted: %s", axis, pairsString(out))
			}
		}
	}
}

func TestAxisStringAndReverse(t *testing.T) {
	for _, a := range allAxes {
		if a.String() == "axis?" {
			t.Errorf("axis %d missing name", a)
		}
	}
	if !Ancestor.Reverse() || Child.Reverse() {
		t.Error("Reverse misclassifies axes")
	}
}

func TestMergePairs(t *testing.T) {
	a := Pairs{Pre: []int32{1, 3, 5}, Iter: []int32{1, 1, 2}}
	b := Pairs{Pre: []int32{1, 4}, Iter: []int32{1, 1}}
	m := mergePairs(a, b)
	want := Pairs{Pre: []int32{1, 3, 4, 5}, Iter: []int32{1, 1, 1, 2}}
	if !pairsEqual(m, want) {
		t.Errorf("mergePairs = %s, want %s", pairsString(m), pairsString(want))
	}
}
