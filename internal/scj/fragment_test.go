package scj

import (
	"fmt"
	"testing"

	"mxq/internal/store"
)

// twoFragContainer builds a container holding two document fragments —
// the shape of a multi-document shard — each <a><b/><c/></a>:
//
//	pre: 0=doc 1=a 2=b 3=c | 4=doc 5=a 6=b 7=c
func twoFragContainer(t *testing.T) *store.Container {
	t.Helper()
	b := store.NewBuilder("frags")
	for i := 0; i < 2; i++ {
		b.StartDoc()
		b.StartElem("a")
		b.StartElem("b")
		b.End()
		b.StartElem("c")
		b.End()
		b.End()
		b.End()
	}
	c, err := b.Done()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestFollowingPrecedingStayInFragment: the following/preceding axes
// must not cross fragment (document) boundaries inside a multi-fragment
// container — XPath defines them within one tree only, and the naive
// oracle evaluates them per document.
func TestFollowingPrecedingStayInFragment(t *testing.T) {
	c := twoFragContainer(t)
	elem := Test{Kind: TestElem}
	for _, v := range []Variant{LoopLifted, Iterative} {
		// following of b in fragment 0: only c of fragment 0 (pre 3);
		// a leak would add fragment 1's a/b/c (pres 5,6,7)
		out := Step(c, Pairs{Pre: []int32{2}, Iter: []int32{1}}, Following, elem, v, nil)
		if fmt.Sprint(out.Pre) != "[3]" {
			t.Errorf("variant %d: following(b@2) = %v, want [3]", v, out.Pre)
		}
		// preceding of b in fragment 1: empty (a@5 and doc@4 are
		// ancestors); a leak would surface fragment 0's elements
		out = Step(c, Pairs{Pre: []int32{6}, Iter: []int32{1}}, Preceding, elem, v, nil)
		if out.Len() != 0 {
			t.Errorf("variant %d: preceding(b@6) = %v, want empty", v, out.Pre)
		}
		// preceding of c in fragment 1: b of fragment 1 only
		out = Step(c, Pairs{Pre: []int32{7}, Iter: []int32{1}}, Preceding, elem, v, nil)
		if fmt.Sprint(out.Pre) != "[6]" {
			t.Errorf("variant %d: preceding(c@7) = %v, want [6]", v, out.Pre)
		}
	}
	// contexts in both fragments at once, distinct iterations: each
	// iteration's result stays inside its fragment
	ctx := Pairs{Pre: []int32{2, 6}, Iter: []int32{1, 2}}
	out := Step(c, ctx, Following, elem, LoopLifted, nil)
	if fmt.Sprint(out.Pre) != "[3 7]" || fmt.Sprint(out.Iter) != "[1 2]" {
		t.Errorf("two-fragment following = %v/%v, want [3 7]/[1 2]", out.Pre, out.Iter)
	}
	// ParallelStep must agree (context partitioning path)
	pout := ParallelStep(c, ctx, Following, elem, LoopLifted, 4, 1, nil)
	if fmt.Sprint(pout.Pre) != fmt.Sprint(out.Pre) || fmt.Sprint(pout.Iter) != fmt.Sprint(out.Iter) {
		t.Errorf("parallel following = %v/%v, want %v/%v", pout.Pre, pout.Iter, out.Pre, out.Iter)
	}
}
