package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDefaults(t *testing.T) {
	c := Config{Workers: 4}.withDefaults()
	if c.MaxConcurrent != 8 {
		t.Errorf("MaxConcurrent = %d, want 8", c.MaxConcurrent)
	}
	if c.MaxQueue != 16 {
		t.Errorf("MaxQueue = %d, want 16", c.MaxQueue)
	}
	if c.MaxWorkersPerQuery != 4 {
		t.Errorf("MaxWorkersPerQuery = %d, want 4", c.MaxWorkersPerQuery)
	}
	if c.RowsPerWorker != DefaultRowsPerWorker {
		t.Errorf("RowsPerWorker = %d, want %d", c.RowsPerWorker, DefaultRowsPerWorker)
	}
}

func TestBudgetFor(t *testing.T) {
	s := New(Config{Workers: 8, RowsPerWorker: 1000})
	cases := []struct {
		c    Cost
		want int
	}{
		// trivial plan, tiny input: serial
		{Cost{Ops: 3, Rows: 10}, 1},
		// join-heavy plan over a large input: wide
		{Cost{Ops: 64, Joins: 3, Rows: 1 << 20}, 8},
		// complex plan but tiny input: the data cap wins
		{Cost{Ops: 200, Joins: 10, Rows: 500}, 1},
		// moderate plan, moderate input
		{Cost{Ops: 32, Joins: 1, Rows: 2500}, 3},
	}
	for _, tc := range cases {
		if got := s.budgetFor(tc.c); got != tc.want {
			t.Errorf("budgetFor(%+v) = %d, want %d", tc.c, got, tc.want)
		}
	}
	// MaxWorkersPerQuery clamps below the pool size.
	s2 := New(Config{Workers: 8, MaxWorkersPerQuery: 2, RowsPerWorker: 1})
	if got := s2.budgetFor(Cost{Joins: 10, Rows: 1 << 20}); got != 2 {
		t.Errorf("clamped budget = %d, want 2", got)
	}
}

func TestAdmitQueueFull(t *testing.T) {
	s := New(Config{Workers: 1, MaxConcurrent: 1, MaxQueue: -1})
	g, err := s.Admit(context.Background(), Cost{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Admit(context.Background(), Cost{}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("second admit: %v, want ErrQueueFull", err)
	}
	g.Release()
	g2, err := s.Admit(context.Background(), Cost{})
	if err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	g2.Release()
	st := s.Stats()
	if st.Admitted != 2 || st.RejectedFull != 1 || st.Running != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestAdmitQueuedCancel: a queued-but-unadmitted request releases its
// queue position promptly when its context is cancelled.
func TestAdmitQueuedCancel(t *testing.T) {
	s := New(Config{Workers: 1, MaxConcurrent: 1, MaxQueue: 4})
	g, err := s.Admit(context.Background(), Cost{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := s.Admit(ctx, Cost{})
		errc <- err
	}()
	// Wait for the admit to actually queue, then cancel it.
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().QueueDepth != 1 {
		if time.Now().After(deadline) {
			t.Fatal("admit never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("queued admit: %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled admit did not return promptly")
	}
	if st := s.Stats(); st.QueueDepth != 0 || st.CanceledWait != 1 {
		t.Errorf("stats after cancel = %+v", st)
	}
	g.Release()
}

// TestAdmitQueuedWait: a queued admit proceeds when a slot frees.
func TestAdmitQueuedWait(t *testing.T) {
	s := New(Config{Workers: 1, MaxConcurrent: 1, MaxQueue: 4})
	g, err := s.Admit(context.Background(), Cost{})
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan *Grant, 1)
	go func() {
		g2, err := s.Admit(context.Background(), Cost{})
		if err != nil {
			t.Error(err)
		}
		got <- g2
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().QueueDepth != 1 {
		if time.Now().After(deadline) {
			t.Fatal("admit never queued")
		}
		time.Sleep(time.Millisecond)
	}
	g.Release()
	select {
	case g2 := <-got:
		g2.Release()
	case <-time.After(2 * time.Second):
		t.Fatal("queued admit did not proceed after release")
	}
}

func TestGrantReleaseIdempotent(t *testing.T) {
	s := New(Config{Workers: 2, MaxConcurrent: 1})
	g, err := s.Admit(context.Background(), Cost{})
	if err != nil {
		t.Fatal(err)
	}
	g.Release()
	g.Release() // must not double-free the execution slot
	if st := s.Stats(); st.Running != 0 || st.GrantedBudget != 0 {
		t.Errorf("stats after double release = %+v", st)
	}
	// The slot is free exactly once: a new admit succeeds, a second queues.
	g2, err := s.Admit(context.Background(), Cost{})
	if err != nil {
		t.Fatal(err)
	}
	defer g2.Release()
	if st := s.Stats(); st.Running != 1 {
		t.Errorf("running = %d, want 1", st.Running)
	}
}

func TestSetCostOnce(t *testing.T) {
	s := New(Config{Workers: 8, RowsPerWorker: 1})
	g, err := s.Admit(context.Background(), Cost{})
	if err != nil {
		t.Fatal(err)
	}
	if g.Budget() != 1 {
		t.Fatalf("initial budget = %d, want 1", g.Budget())
	}
	g.SetCost(Cost{Joins: 3, Rows: 1 << 20})
	if g.Budget() != 4 {
		t.Fatalf("budget after SetCost = %d, want 4", g.Budget())
	}
	g.SetCost(Cost{Joins: 7, Rows: 1 << 20}) // first call wins
	if g.Budget() != 4 {
		t.Fatalf("budget after second SetCost = %d, want 4", g.Budget())
	}
	if st := s.Stats(); st.GrantedBudget != 4 {
		t.Errorf("GrantedBudget = %d, want 4", st.GrantedBudget)
	}
	g.Release()
	if st := s.Stats(); st.GrantedBudget != 0 {
		t.Errorf("GrantedBudget after release = %d, want 0", st.GrantedBudget)
	}
}

// TestSlotPoolBounded hammers the slot pool from many goroutines and
// checks the pool-wide invariant: slots in use never exceed Workers,
// and everything is returned at the end.
func TestSlotPoolBounded(t *testing.T) {
	const workers = 4
	s := New(Config{Workers: workers, MaxConcurrent: 64})
	var wg sync.WaitGroup
	var total atomic.Int64
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g, err := s.Admit(context.Background(), Cost{})
			if err != nil {
				t.Error(err)
				return
			}
			defer g.Release()
			for j := 0; j < 100; j++ {
				n := g.AcquireSlots(3)
				if in := s.Stats().SlotsInUse; in > workers {
					t.Errorf("SlotsInUse = %d > %d", in, workers)
				}
				total.Add(int64(n))
				g.ReleaseSlots(n)
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.SlotsInUse != 0 {
		t.Errorf("SlotsInUse after drain = %d, want 0", st.SlotsInUse)
	}
	if st.MaxSlotsInUse > workers {
		t.Errorf("MaxSlotsInUse = %d > %d", st.MaxSlotsInUse, workers)
	}
	if s.slotsFree.Load() != workers {
		t.Errorf("slotsFree = %d, want %d", s.slotsFree.Load(), workers)
	}
	if total.Load() == 0 {
		t.Error("no slots were ever acquired")
	}
}

func TestGrantFromNilContext(t *testing.T) {
	if g := GrantFrom(nil); g != nil {
		t.Errorf("GrantFrom(nil) = %v, want nil", g)
	}
	if g := GrantFrom(context.Background()); g != nil {
		t.Errorf("GrantFrom(Background) = %v, want nil", g)
	}
	s := New(Config{Workers: 1})
	g, err := s.Admit(context.Background(), Cost{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Release()
	ctx := WithGrant(context.Background(), g)
	if got := GrantFrom(ctx); got != g {
		t.Errorf("GrantFrom(WithGrant) = %v, want %v", got, g)
	}
}
