// Package sched is the global query scheduler: admission control over
// concurrent executions plus one bounded worker-slot pool they all
// share. It closes the §6 multi-client oversubscription gap — without
// it every parallel execution builds its own GOMAXPROCS-sized pool, so
// N in-flight queries claim N×cores workers.
//
// The scheduler layers three mechanisms with distinct jobs:
//
//   - Admission bounds how many executions run at once (MaxConcurrent).
//     Admit waits — deadline-aware, FIFO-ish — for a free execution
//     slot; a bounded number of waiters may queue (MaxQueue), beyond
//     which Admit fails fast with ErrQueueFull so overload sheds
//     instead of piling up.
//
//   - The budget caps how much intra-query parallelism one admitted
//     execution may request. It is derived from plan cost hints known
//     on a prepared statement — operator count, join count, snapshot
//     input size — so a point lookup is granted budget 1 while a
//     join-heavy scan over a large corpus is granted many workers
//     (never more than the pool holds).
//
//   - The slot pool bounds the worker goroutines actually live across
//     ALL executions at the pool size (Workers). Partitioned operators
//     draw their extra goroutines from it through the Grant (the
//     scj.Slots hook) instead of spawning freely; acquisition never
//     blocks — a fork-join region that gets no slots simply runs its
//     chunks serially on its own goroutine, so progress is guaranteed,
//     there is no deadlock by construction, and the pool is
//     work-conserving under any mix of queries.
//
// Serial execution is untouched: an engine without a scheduler — or a
// grant with budget 1 — runs exactly the zero-dependency serial code
// path, which remains the byte-identical differential oracle.
package sched

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"

	"mxq/internal/faults"
)

// Config sizes one Scheduler. The zero value of each field picks the
// documented default.
type Config struct {
	// Workers is the global worker-slot pool: the bound on live worker
	// goroutines across all concurrent executions. 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// MaxConcurrent bounds admitted (running) executions. 0 means
	// 2×Workers: with budgets interleaving, twice the pool size keeps
	// the pool busy while small queries slip between big ones.
	MaxConcurrent int
	// MaxQueue bounds the executions waiting for admission; an Admit
	// beyond it fails immediately with ErrQueueFull. 0 means
	// DefaultQueueFactor×MaxConcurrent; negative disables queueing
	// entirely (a full scheduler rejects instantly).
	MaxQueue int
	// MaxWorkersPerQuery caps any single execution's worker budget.
	// 0 means Workers (one query may use the whole pool when alone).
	MaxWorkersPerQuery int
	// RowsPerWorker is the budget heuristic's data-size scale: an
	// execution is granted at most 1 + inputRows/RowsPerWorker workers,
	// so small documents never justify a wide budget. 0 means
	// DefaultRowsPerWorker.
	RowsPerWorker int64
	// MemPerQuery is the default per-execution memory budget in bytes;
	// the Grant carries it next to the worker budget and the execution
	// layer enforces it. 0 disables memory governance.
	MemPerQuery int64
	// MemTotal bounds the sum of running executions' memory
	// reservations: an Admit that cannot reserve its per-query budget
	// fails with ErrMemExhausted instead of overcommitting. Meaningful
	// only with MemPerQuery > 0; 0 means unlimited (per-query budgets
	// still apply).
	MemTotal int64
}

// Defaults for the zero Config.
const (
	DefaultQueueFactor   = 2
	DefaultRowsPerWorker = 64 << 10
)

// ErrQueueFull is returned by Admit when MaxConcurrent executions are
// running and MaxQueue admissions are already waiting.
var ErrQueueFull = errors.New("sched: admission queue full")

// ErrMemExhausted is returned by Admit when the global memory pool
// (MemTotal) cannot cover another per-query reservation. It is
// overload, not a defect: the same query is admitted once running
// queries release their reservations.
var ErrMemExhausted = errors.New("sched: memory pool exhausted")

// Memory-grant sizing (see memFor): every execution is reserved at
// least MemFloor, plus MemPerRow for each structural row of its
// snapshot, clamped to MemPerQuery. The constants are deliberately
// generous — the reservation is an admission-control estimate, the
// byte-accurate enforcement happens in the execution layer.
const (
	MemFloor  = 8 << 20
	MemPerRow = 4 << 10
)

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2 * c.Workers
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = DefaultQueueFactor * c.MaxConcurrent
	}
	if c.MaxWorkersPerQuery <= 0 || c.MaxWorkersPerQuery > c.Workers {
		c.MaxWorkersPerQuery = c.Workers
	}
	if c.RowsPerWorker <= 0 {
		c.RowsPerWorker = DefaultRowsPerWorker
	}
	return c
}

// Cost carries the plan cost hints an admitted execution's worker
// budget is derived from: operator and join counts are known once at
// prepare time, Rows is the execution's snapshot input size (total
// structural rows of the registered containers).
type Cost struct {
	Ops   int
	Joins int
	Rows  int64
}

// Scheduler is safe for concurrent use by any number of executions.
type Scheduler struct {
	cfg     Config
	execSem chan struct{} // MaxConcurrent execution slots

	queued        atomic.Int64 // admissions currently waiting
	running       atomic.Int64 // grants admitted and not yet released
	admitted      atomic.Int64 // total admissions granted
	rejectedFull  atomic.Int64 // Admit calls failed with ErrQueueFull
	canceledWait  atomic.Int64 // Admit calls abandoned while queued
	grantedBudget atomic.Int64 // sum of running grants' budgets

	slotsFree     atomic.Int64 // worker slots not handed out
	slotsInUse    atomic.Int64 // worker goroutines currently live
	maxSlotsInUse atomic.Int64 // high-water mark of slotsInUse

	memInUse    atomic.Int64 // sum of running grants' memory reservations
	memHigh     atomic.Int64 // high-water mark of memInUse
	memRejected atomic.Int64 // Admit calls failed with ErrMemExhausted
}

// New builds a scheduler from cfg (zero fields pick the defaults).
func New(cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{cfg: cfg, execSem: make(chan struct{}, cfg.MaxConcurrent)}
	s.slotsFree.Store(int64(cfg.Workers))
	return s
}

// Workers returns the configured global worker-slot pool size.
func (s *Scheduler) Workers() int { return s.cfg.Workers }

// Admit blocks until an execution slot is free, then returns the
// execution's Grant. It fails fast with ErrQueueFull when MaxQueue
// admissions are already waiting, and returns ctx.Err() when the
// context expires or is cancelled while queued — the queue position is
// released promptly either way. The caller must Release the grant when
// the execution completes or is abandoned.
func (s *Scheduler) Admit(ctx context.Context, c Cost) (*Grant, error) {
	if err := faults.SchedAdmit.Err(); err != nil {
		return nil, err
	}
	select {
	case s.execSem <- struct{}{}:
	default:
		if q := s.queued.Add(1); s.cfg.MaxQueue < 0 || q > int64(s.cfg.MaxQueue) {
			s.queued.Add(-1)
			s.rejectedFull.Add(1)
			return nil, ErrQueueFull
		}
		var done <-chan struct{}
		if ctx != nil {
			done = ctx.Done()
		}
		select {
		case s.execSem <- struct{}{}:
			s.queued.Add(-1)
		case <-done:
			s.queued.Add(-1)
			s.canceledWait.Add(1)
			return nil, ctx.Err()
		}
	}
	mem := s.cfg.MemPerQuery
	if mem > 0 && c != (Cost{}) {
		// plan hints are already known (engine-level admission): reserve
		// the sized grant, not the full per-query default — SetCost below
		// then has nothing left to shrink
		mem = s.memFor(c)
	}
	if mem > 0 && !s.reserveMem(mem) {
		s.drainSlot()
		s.memRejected.Add(1)
		return nil, ErrMemExhausted
	}
	g := &Grant{s: s, budget: 1, mem: mem}
	s.admitted.Add(1)
	s.running.Add(1)
	s.grantedBudget.Add(1)
	if c != (Cost{}) {
		g.SetCost(c)
	}
	return g, nil
}

// drainSlot returns one execution slot the caller provably holds in the
// buffered execSem.
//
// waitcheck:exempt the receive drains a slot the caller just acquired,
// so it cannot block.
func (s *Scheduler) drainSlot() { <-s.execSem }

// reserveMem reserves n bytes of the global memory pool, or reports
// false when MemTotal cannot cover it. A scheduler without MemTotal
// always succeeds (per-query budgets still apply).
func (s *Scheduler) reserveMem(n int64) bool {
	if s.cfg.MemTotal <= 0 {
		return true
	}
	for {
		used := s.memInUse.Load()
		if used+n > s.cfg.MemTotal {
			return false
		}
		if s.memInUse.CompareAndSwap(used, used+n) {
			for {
				hw := s.memHigh.Load()
				if used+n <= hw || s.memHigh.CompareAndSwap(hw, used+n) {
					break
				}
			}
			return true
		}
	}
}

// returnMem gives n reserved bytes back to the global pool.
func (s *Scheduler) returnMem(n int64) {
	if s.cfg.MemTotal > 0 && n > 0 {
		s.memInUse.Add(-n)
	}
}

// memFor sizes an execution's memory grant from its plan cost hints:
// a bookkeeping floor plus a per-snapshot-row allowance, clamped to
// MemPerQuery. SetCost only ever shrinks the initial MemPerQuery
// reservation toward this value — growing would let a reservation the
// global pool never covered slip through admission.
func (s *Scheduler) memFor(c Cost) int64 {
	m := MemFloor + MemPerRow*c.Rows
	if m > s.cfg.MemPerQuery {
		m = s.cfg.MemPerQuery
	}
	return m
}

// budgetFor derives a worker budget from cost hints: the plan's
// complexity (joins weigh full workers, plain operators a sixteenth)
// asks for width, the snapshot size caps it (one extra worker per
// RowsPerWorker input rows), and the per-query and pool clamps bound
// the result to [1, min(MaxWorkersPerQuery, Workers)].
func (s *Scheduler) budgetFor(c Cost) int {
	b := 1 + c.Joins + c.Ops/16
	if dataCap := 1 + int(c.Rows/s.cfg.RowsPerWorker); b > dataCap {
		b = dataCap
	}
	if b > s.cfg.MaxWorkersPerQuery {
		b = s.cfg.MaxWorkersPerQuery
	}
	if b < 1 {
		b = 1
	}
	return b
}

// Stats is a point-in-time snapshot of the scheduler's counters.
type Stats struct {
	Workers       int   // configured worker-slot pool size
	MaxConcurrent int   // configured execution slots
	QueueDepth    int64 // admissions currently waiting
	Running       int64 // executions admitted and not yet released
	Admitted      int64 // total admissions granted
	RejectedFull  int64 // admissions rejected because the queue was full
	CanceledWait  int64 // admissions abandoned (deadline/cancel) while queued
	GrantedBudget int64 // sum of running executions' worker budgets
	SlotsInUse    int64 // worker goroutines currently drawing on the pool
	MaxSlotsInUse int64 // high-water mark of SlotsInUse
	MemPerQuery   int64 // configured per-execution memory budget (bytes)
	MemTotal      int64 // configured global memory pool (bytes)
	MemInUse      int64 // sum of running executions' memory reservations
	MemHighWater  int64 // high-water mark of MemInUse
	MemRejected   int64 // admissions rejected with ErrMemExhausted
}

// Stats returns a snapshot of the scheduler's counters.
func (s *Scheduler) Stats() Stats {
	return Stats{
		Workers:       s.cfg.Workers,
		MaxConcurrent: s.cfg.MaxConcurrent,
		QueueDepth:    s.queued.Load(),
		Running:       s.running.Load(),
		Admitted:      s.admitted.Load(),
		RejectedFull:  s.rejectedFull.Load(),
		CanceledWait:  s.canceledWait.Load(),
		GrantedBudget: s.grantedBudget.Load(),
		SlotsInUse:    s.slotsInUse.Load(),
		MaxSlotsInUse: s.maxSlotsInUse.Load(),
		MemPerQuery:   s.cfg.MemPerQuery,
		MemTotal:      s.cfg.MemTotal,
		MemInUse:      s.memInUse.Load(),
		MemHighWater:  s.memHigh.Load(),
		MemRejected:   s.memRejected.Load(),
	}
}

// acquireSlots hands out up to want worker slots without ever blocking
// (a region that gets none runs serially on its own goroutine).
func (s *Scheduler) acquireSlots(want int) int {
	if want <= 0 {
		return 0
	}
	for {
		free := s.slotsFree.Load()
		if free <= 0 {
			return 0
		}
		n := int64(want)
		if n > free {
			n = free
		}
		if !s.slotsFree.CompareAndSwap(free, free-n) {
			continue
		}
		inUse := s.slotsInUse.Add(n)
		for {
			hw := s.maxSlotsInUse.Load()
			if inUse <= hw || s.maxSlotsInUse.CompareAndSwap(hw, inUse) {
				break
			}
		}
		return int(n)
	}
}

func (s *Scheduler) releaseSlots(n int) {
	if n <= 0 {
		return
	}
	s.slotsInUse.Add(-int64(n))
	s.slotsFree.Add(int64(n))
}

// Grant is one admitted execution's hold on the scheduler: an
// execution slot plus the right to draw up to Budget workers from the
// shared pool. It implements the scj.Slots slot-acquisition hook, so
// it plugs directly into ralg.ParOptions. A Grant is safe for
// concurrent use by the execution's worker goroutines.
type Grant struct {
	s        *Scheduler
	budget   int
	mem      int64
	costSet  atomic.Bool
	released atomic.Bool
}

// SetCost finalizes the execution's worker budget from its plan cost
// hints (known only after compilation — the serving layer admits
// before it compiles). The first call wins; until then the budget is 1.
func (g *Grant) SetCost(c Cost) {
	if !g.costSet.CompareAndSwap(false, true) {
		return
	}
	b := g.s.budgetFor(c)
	g.s.grantedBudget.Add(int64(b - g.budget))
	g.budget = b
	if g.mem > 0 {
		if m := g.s.memFor(c); m < g.mem {
			g.s.returnMem(g.mem - m)
			g.mem = m
		}
	}
}

// Budget returns the execution's worker budget (≥ 1).
func (g *Grant) Budget() int { return g.budget }

// MemLimit returns the execution's memory budget in bytes (0 =
// unlimited): the scheduler's per-query default, possibly shrunk by
// SetCost's plan-hint sizing.
func (g *Grant) MemLimit() int64 { return g.mem }

// Release returns the execution slot. It is idempotent, so it is safe
// to both defer and call explicitly.
//
// waitcheck:exempt the receive drains a slot this grant provably holds
// in the buffered execSem, so it cannot block.
func (g *Grant) Release() {
	if !g.released.CompareAndSwap(false, true) {
		return
	}
	g.s.grantedBudget.Add(-int64(g.budget))
	g.s.running.Add(-1)
	g.s.returnMem(g.mem)
	<-g.s.execSem
	// fault point deliberately after all bookkeeping: an injected panic
	// here must be contained by the caller without wedging the
	// scheduler (the slot and reservation are already returned)
	if err := faults.SchedRelease.Err(); err != nil {
		panic(err)
	}
}

// AcquireSlots draws up to want worker slots from the shared pool
// without blocking (the scj.Slots hook). The caller must return
// exactly the granted count via ReleaseSlots when its fork-join region
// completes.
func (g *Grant) AcquireSlots(want int) int { return g.s.acquireSlots(want) }

// ReleaseSlots returns n worker slots to the shared pool.
func (g *Grant) ReleaseSlots(n int) { g.s.releaseSlots(n) }

// ctxKey carries a Grant through a context.
type ctxKey struct{}

// WithGrant returns a context carrying g: an execution started under
// it reuses the grant instead of admitting again. This is how the
// serving layer — which must admit before it compiles — hands its
// already-held slot to core's execution path.
func WithGrant(ctx context.Context, g *Grant) context.Context {
	return context.WithValue(ctx, ctxKey{}, g)
}

// GrantFrom returns the Grant carried by ctx, or nil.
func GrantFrom(ctx context.Context) *Grant {
	if ctx == nil {
		return nil
	}
	g, _ := ctx.Value(ctxKey{}).(*Grant)
	return g
}
