package sched

import (
	"context"
	"errors"
	"testing"
)

// Two full reservations fill a 2×MemPerQuery pool; the third admission
// must fail with ErrMemExhausted — and give its execution slot back, so
// a release immediately re-opens admission.
func TestAdmitMemExhausted(t *testing.T) {
	s := New(Config{MaxConcurrent: 8, MemPerQuery: 1 << 20, MemTotal: 2 << 20})
	ctx := context.Background()
	g1, err := s.Admit(ctx, Cost{})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := s.Admit(ctx, Cost{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Admit(ctx, Cost{}); !errors.Is(err, ErrMemExhausted) {
		t.Fatalf("third admit: err = %v, want ErrMemExhausted", err)
	}
	st := s.Stats()
	if st.MemRejected != 1 || st.MemInUse != 2<<20 || st.MemHighWater != 2<<20 {
		t.Fatalf("stats after rejection: %+v", st)
	}
	if st.Running != 2 {
		t.Fatalf("rejected admission leaked an execution slot: running = %d", st.Running)
	}
	g1.Release()
	g3, err := s.Admit(ctx, Cost{})
	if err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	g3.Release()
	g2.Release()
	if st := s.Stats(); st.MemInUse != 0 {
		t.Fatalf("reservations not returned: MemInUse = %d", st.MemInUse)
	}
}

// Cost hints size the reservation down from the per-query default, so
// small queries pack more densely into the pool.
func TestMemGrantSizedByCost(t *testing.T) {
	s := New(Config{MaxConcurrent: 8, MemPerQuery: 64 << 20, MemTotal: 64 << 20})
	ctx := context.Background()
	small := Cost{Ops: 5, Rows: 100}
	g, err := s.Admit(ctx, small)
	if err != nil {
		t.Fatal(err)
	}
	want := MemFloor + MemPerRow*small.Rows
	if g.MemLimit() != want {
		t.Fatalf("MemLimit = %d, want %d", g.MemLimit(), want)
	}
	// the sized reservation leaves room for several more small grants
	g2, err := s.Admit(ctx, small)
	if err != nil {
		t.Fatalf("second small admit: %v", err)
	}
	g.Release()
	g2.Release()
}

// A hint-less admission reserves the full per-query default; SetCost
// then shrinks the reservation (never grows it), returning the excess
// to the pool.
func TestSetCostShrinksMem(t *testing.T) {
	s := New(Config{MaxConcurrent: 8, MemPerQuery: 64 << 20, MemTotal: 128 << 20})
	ctx := context.Background()
	g, err := s.Admit(ctx, Cost{})
	if err != nil {
		t.Fatal(err)
	}
	if g.MemLimit() != 64<<20 {
		t.Fatalf("pre-cost MemLimit = %d, want full default", g.MemLimit())
	}
	g.SetCost(Cost{Ops: 3, Rows: 10})
	want := int64(MemFloor + MemPerRow*10)
	if g.MemLimit() != want {
		t.Fatalf("post-cost MemLimit = %d, want %d", g.MemLimit(), want)
	}
	if st := s.Stats(); st.MemInUse != want {
		t.Fatalf("excess not returned to pool: MemInUse = %d, want %d", st.MemInUse, want)
	}
	// huge hints must not grow the reservation past the per-query cap
	g2, err := s.Admit(ctx, Cost{Rows: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	if g2.MemLimit() != 64<<20 {
		t.Fatalf("MemLimit = %d, want the %d cap", g2.MemLimit(), 64<<20)
	}
	g.Release()
	g2.Release()
	if st := s.Stats(); st.MemInUse != 0 {
		t.Fatalf("MemInUse = %d after all releases", st.MemInUse)
	}
}

// Without MemTotal the pool never rejects, but grants still carry the
// per-query budget; without MemPerQuery there is no memory governance
// at all.
func TestMemConfigCorners(t *testing.T) {
	s := New(Config{MaxConcurrent: 4, MemPerQuery: 1 << 20})
	ctx := context.Background()
	var grants []*Grant
	for i := 0; i < 4; i++ {
		g, err := s.Admit(ctx, Cost{})
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		if g.MemLimit() != 1<<20 {
			t.Fatalf("MemLimit = %d", g.MemLimit())
		}
		grants = append(grants, g)
	}
	for _, g := range grants {
		g.Release()
	}

	s = New(Config{MaxConcurrent: 4})
	g, err := s.Admit(ctx, Cost{Rows: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if g.MemLimit() != 0 {
		t.Fatalf("ungoverned MemLimit = %d, want 0", g.MemLimit())
	}
	g.Release()
}
