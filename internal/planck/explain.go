package planck

import (
	"fmt"
	"strings"

	"mxq/internal/ralg"
	"mxq/internal/scj"
)

// Explain renders the plan DAG rooted at root as an indented tree, each
// operator annotated with planck's inferred output schema and the
// optimizer-side column properties. Shared subplans are printed once
// and referenced by number afterwards. When the plan violates an
// invariant the tree is still rendered, with the violation appended.
func Explain(root ralg.Plan, cfg Config) (string, error) {
	infos, err := Analyze(root, cfg)
	var b strings.Builder
	ids := map[ralg.Plan]int{}
	var rec func(n ralg.Plan, prefix, branch string)
	rec = func(n ralg.Plan, prefix, branch string) {
		if n == nil {
			fmt.Fprintf(&b, "%s%s<nil>\n", prefix, branch)
			return
		}
		if id, ok := ids[n]; ok {
			fmt.Fprintf(&b, "%s%s#%d %s (shared)\n", prefix, branch, id, opLabel(n))
			return
		}
		ids[n] = len(ids) + 1
		fmt.Fprintf(&b, "%s%s#%d %s%s\n", prefix, branch, ids[n], opLabel(n), annotation(infos[n]))
		ins := n.Inputs()
		childPrefix := prefix
		switch branch {
		case "├── ":
			childPrefix += "│   "
		case "└── ":
			childPrefix += "    "
		}
		for i, in := range ins {
			cb := "├── "
			if i == len(ins)-1 {
				cb = "└── "
			}
			rec(in, childPrefix, cb)
		}
	}
	rec(root, "", "")
	if err != nil {
		fmt.Fprintf(&b, "!! %v\n", err)
	}
	return b.String(), err
}

func annotation(info Info) string {
	if info.Schema == nil {
		return ""
	}
	var b strings.Builder
	if info.Schema.Any {
		b.WriteString("  [?]")
	} else {
		b.WriteString("  [")
		for i, c := range info.Schema.Cols() {
			if i > 0 {
				b.WriteString(", ")
			}
			ci := info.Schema.Info(c)
			b.WriteString(c)
			b.WriteByte(':')
			switch {
			case ci.Node:
				b.WriteString("node")
			case ci.TagKnown:
				b.WriteString(ci.Tag.String())
			default:
				b.WriteString(kindStr(ci.Kind))
			}
		}
		b.WriteString("]")
	}
	if cols := info.Props.DenseCols(); len(cols) > 0 {
		fmt.Fprintf(&b, " dense{%s}", strings.Join(cols, ","))
	}
	if cols := info.Props.KeyCols(); len(cols) > 0 {
		fmt.Fprintf(&b, " key{%s}", strings.Join(cols, ","))
	}
	if cols := info.Props.ConstCols(); len(cols) > 0 {
		fmt.Fprintf(&b, " const{%s}", strings.Join(cols, ","))
	}
	// the inference keeps derived orderings un-deduplicated; render
	// each distinct one once
	seen := map[string]bool{}
	for _, ord := range info.Props.Ords() {
		s := fmt.Sprintf(" ord(%s)", strings.Join(ord, ","))
		if !seen[s] {
			seen[s] = true
			b.WriteString(s)
		}
	}
	for _, g := range info.Props.Grps() {
		s := fmt.Sprintf(" grpord(%s; %s)", strings.Join(g.Cols, ","), g.Group)
		if !seen[s] {
			seen[s] = true
			b.WriteString(s)
		}
	}
	return b.String()
}

// opLabel renders one operator with its interesting annotations — more
// detail than Plan.Name(), which only identifies the operator class.
func opLabel(n ralg.Plan) string {
	switch x := n.(type) {
	case *ralg.Project:
		refs := make([]string, len(x.Cols))
		for i, r := range x.Cols {
			if r.Src == r.Dst {
				refs[i] = r.Src
			} else {
				refs[i] = r.Src + "->" + r.Dst
			}
		}
		return "project(" + strings.Join(refs, ",") + ")"
	case *ralg.Attach:
		return fmt.Sprintf("attach(%s:%s)", x.Col, kindStr(x.Kind))
	case *ralg.Select:
		if x.Neg {
			return fmt.Sprintf("select(!%s)", x.Cond)
		}
		return fmt.Sprintf("select(%s)", x.Cond)
	case *ralg.Fun:
		name := fmt.Sprintf("fun(%d)", x.Op)
		if spec, ok := funSpecs[x.Op]; ok {
			name = spec.name
		}
		return fmt.Sprintf("%s(%s := %s)", name, x.Out, strings.Join(x.Args, ","))
	case *ralg.RowNum:
		mode := ""
		switch x.Mode {
		case ralg.RankStream:
			mode = " stream"
		case ralg.RankSeq:
			mode = " seq"
		}
		part := ""
		if x.Part != "" {
			part = " part " + x.Part
		}
		return fmt.Sprintf("rownum(%s := rank by %s%s%s)", x.Out, orderList(x.OrderBy, x.Desc), part, mode)
	case *ralg.Sort:
		refine := ""
		if x.RefinePrefix > 0 {
			refine = fmt.Sprintf(" refine=%d", x.RefinePrefix)
		}
		return fmt.Sprintf("sort(%s%s)", orderList(x.By, x.Desc), refine)
	case *ralg.HashJoin:
		mode := ""
		if x.Pos {
			mode = " pos"
		}
		if x.PosLeft {
			mode = " posleft"
		}
		return fmt.Sprintf("join(%s = %s%s)", x.LKey, x.RKey, mode)
	case *ralg.ExistJoin:
		return fmt.Sprintf("existjoin(%s %s %s -> %s,%s)", x.LItem, x.Cmp, x.RItem, x.Out1, x.Out2)
	case *ralg.Cross:
		return "cross"
	case *ralg.Union:
		return fmt.Sprintf("union(%d)", len(x.Ins))
	case *ralg.Diff:
		return fmt.Sprintf("diff(%s \\ %s)", x.LKey, x.RKey)
	case *ralg.Distinct:
		mode := ""
		if x.Merge {
			mode = " merge"
		}
		return fmt.Sprintf("distinct(%s%s)", strings.Join(x.By, ","), mode)
	case *ralg.Aggr:
		return fmt.Sprintf("aggr(%s := %s(%s) part %s)", x.Out, aggName(x.Op), x.Arg, x.Part)
	case *ralg.Step:
		return fmt.Sprintf("step(%s::%s%s)", x.Axis, testName(x.Test), stepVariant(x.Variant))
	case *ralg.AttrStep:
		name := x.NameTest
		if name == "" {
			name = "*"
		}
		return fmt.Sprintf("step(attribute::%s)", name)
	case *ralg.ElemConstruct:
		return fmt.Sprintf("elem(<%s>, %d attrs)", x.Tag, len(x.Attrs))
	case *ralg.ColToItem:
		return fmt.Sprintf("coltoitem(%s := %s)", x.Dst, x.Src)
	case *ralg.RangeGen:
		return fmt.Sprintf("rangegen(%s to %s by %s)", x.Lo, x.Hi, x.Iter)
	case *ralg.CoverCheck:
		return fmt.Sprintf("covercheck(%s ⊇ %s, %s)", x.Part, x.LoopIter, x.Fn)
	case *ralg.EBV:
		return fmt.Sprintf("ebv(%s := %s part %s)", x.Out, x.Item, x.Part)
	case *ralg.CardCheck:
		return fmt.Sprintf("cardcheck(part %s, %s)", x.Part, x.Fn)
	case *ralg.Fail:
		return fmt.Sprintf("fail(%s)", x.Code)
	case *ralg.ParamTable:
		return fmt.Sprintf("param($%s)", x.Var)
	case *ralg.DocRoot:
		return fmt.Sprintf("doc(%q)", x.Doc)
	case *ralg.ContextRoot:
		return "ctxroot"
	case *ralg.CollectionRoot:
		return fmt.Sprintf("collection(%q)", x.Coll)
	case *ralg.Lit:
		rows := 0
		if x.Tab != nil {
			rows = x.Tab.N
		}
		return fmt.Sprintf("lit(%d rows)", rows)
	case *ralg.LitDecl:
		rows := 0
		if x.Tab != nil {
			rows = x.Tab.N
		}
		return fmt.Sprintf("litdecl(%d rows)", rows)
	}
	return n.Name()
}

func orderList(by []string, desc []bool) string {
	parts := make([]string, len(by))
	for i, c := range by {
		parts[i] = c
		if i < len(desc) && desc[i] {
			parts[i] += " desc"
		}
	}
	return strings.Join(parts, ",")
}

func aggName(op ralg.AggOp) string {
	switch op {
	case ralg.AggCount:
		return "count"
	case ralg.AggSum:
		return "sum"
	case ralg.AggMin:
		return "min"
	case ralg.AggMax:
		return "max"
	case ralg.AggAvg:
		return "avg"
	}
	return fmt.Sprintf("agg(%d)", op)
}

func testName(t scj.Test) string {
	switch t.Kind {
	case scj.TestNode:
		return "node()"
	case scj.TestElem:
		if t.Name == "" {
			return "*"
		}
		return t.Name
	case scj.TestText:
		return "text()"
	case scj.TestComment:
		return "comment()"
	case scj.TestPI:
		if t.Name != "" {
			return fmt.Sprintf("processing-instruction(%s)", t.Name)
		}
		return "processing-instruction()"
	case scj.TestDoc:
		return "document-node()"
	}
	return fmt.Sprintf("test(%d)", t.Kind)
}

func stepVariant(v scj.Variant) string {
	switch v {
	case scj.Iterative:
		return " iterative"
	case scj.CandidateList:
		return " candidates"
	}
	return ""
}
