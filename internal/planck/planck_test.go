package planck

import (
	"errors"
	"strings"
	"testing"

	"mxq/internal/ralg"
	"mxq/internal/scj"
	"mxq/internal/xqt"
)

func intTable(cols map[string][]int64) *ralg.Table {
	names := make([]string, 0, len(cols))
	for n := range cols {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	kinds := make([]ralg.ColKind, len(names))
	for i := range kinds {
		kinds[i] = ralg.KInt
	}
	t := ralg.NewTable(names, kinds)
	for n, vs := range cols {
		t.Col(n).Int = vs
		t.N = len(vs)
	}
	return t
}

// itemLit builds a lit with iter:int and item:item columns.
func itemLit(n int) *ralg.Lit {
	t := ralg.NewTable([]string{"iter", "item"}, []ralg.ColKind{ralg.KInt, ralg.KItem})
	t.N = n
	iters := make([]int64, n)
	for i := range iters {
		iters[i] = int64(i) + 1
		t.Col("item").Item.Append(xqt.Int(int64(i)))
	}
	t.Col("iter").Int = iters
	return &ralg.Lit{Tab: t}
}

// wantViolation asserts that Verify rejects the plan with a
// *PlanInvariantError naming op and mentioning msgPart.
func wantViolation(t *testing.T, root ralg.Plan, cfg Config, op, msgPart string) {
	t.Helper()
	err := Verify(root, cfg)
	if err == nil {
		t.Fatalf("invalid plan accepted (want violation at %s)", op)
	}
	var pie *PlanInvariantError
	if !errors.As(err, &pie) {
		t.Fatalf("error is %T, want *PlanInvariantError", err)
	}
	if pie.Op != op {
		t.Errorf("violation at %q, want %q (msg: %s)", pie.Op, op, pie.Msg)
	}
	if !strings.Contains(pie.Msg, msgPart) {
		t.Errorf("violation message %q does not mention %q", pie.Msg, msgPart)
	}
}

func TestValidPlanVerifies(t *testing.T) {
	lit := itemLit(3)
	sorted := ralg.NewSort(lit, "item", "iter")
	step := &ralg.Step{Test: scj.Test{Kind: scj.TestNode}, IterCol: "iter", ItemCol: "item"}
	step.SetInput(0, sorted)
	if err := Verify(step, Config{}); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestSelectNeedsBoolColumn(t *testing.T) {
	// corrupt: Select over a column that is an int, not a bool
	sel := &ralg.Select{Cond: "iter"}
	sel.SetInput(0, itemLit(2))
	wantViolation(t, sel, Config{}, sel.Name(), "kind int, want bool")

	// corrupt: Select over a missing column
	sel2 := &ralg.Select{Cond: "nope"}
	sel2.SetInput(0, itemLit(2))
	wantViolation(t, sel2, Config{}, sel2.Name(), `"nope" not in input schema`)
}

func TestStepNeedsSortedNodeInput(t *testing.T) {
	// corrupt: the compiler's mandatory sort(item,iter) is missing
	step := &ralg.Step{IterCol: "iter", ItemCol: "item"}
	step.SetInput(0, itemLit(3))
	wantViolation(t, step, Config{}, step.Name(), "not provably sorted")

	// corrupt: iter column points at the item column
	step2 := &ralg.Step{IterCol: "item", ItemCol: "item"}
	step2.SetInput(0, ralg.NewSort(itemLit(3), "item", "iter"))
	wantViolation(t, step2, Config{}, step2.Name(), "want int")
}

func TestHashJoinKeyMustExist(t *testing.T) {
	l := &ralg.Lit{Tab: intTable(map[string][]int64{"a": {1, 2}})}
	r := &ralg.Lit{Tab: intTable(map[string][]int64{"b": {1, 2}})}
	j := ralg.NewHashJoin(l, r, "missing", "b", ralg.Refs("a"), ralg.Refs("b"))
	wantViolation(t, j, Config{}, j.Name(), `"missing" not in input schema`)

	// corrupt: output columns collide across the two sides
	j2 := ralg.NewHashJoin(l, r, "a", "b", ralg.Refs("a->x"), ralg.Refs("b->x"))
	wantViolation(t, j2, Config{}, j2.Name(), `duplicate output column "x"`)
}

func TestAggrColumns(t *testing.T) {
	// corrupt: grouping column missing
	a := &ralg.Aggr{Part: "nope", Op: ralg.AggCount, Out: "item"}
	a.SetInput(0, itemLit(2))
	wantViolation(t, a, Config{}, a.Name(), `"nope" not in input schema`)

	// corrupt: sum over an int column (aggregates take item columns)
	a2 := &ralg.Aggr{Part: "iter", Op: ralg.AggSum, Arg: "iter", Out: "s"}
	a2.SetInput(0, itemLit(2))
	wantViolation(t, a2, Config{}, a2.Name(), "want item")
}

func TestParamTableMustBeDeclared(t *testing.T) {
	p := &ralg.ParamTable{Var: "x"}
	wantViolation(t, p, Config{Params: map[string]bool{"y": true}}, p.Name(), "undeclared variable $x")

	if err := Verify(p, Config{Params: map[string]bool{"x": true}}); err != nil {
		t.Fatalf("declared param rejected: %v", err)
	}
	// nil Params disables the check (caller has no declarations)
	if err := Verify(p, Config{}); err != nil {
		t.Fatalf("param with nil declarations rejected: %v", err)
	}
}

func TestProjectMissingSource(t *testing.T) {
	pr := ralg.NewProject(itemLit(2), "iter", "pos", "item")
	wantViolation(t, pr, Config{}, pr.Name(), `"pos" not in input schema`)
}

func TestFunArgumentKinds(t *testing.T) {
	// corrupt: and() over item columns (executor reads the bool vectors)
	f := ralg.NewFun(itemLit(2), ralg.FunAnd, "out", "item", "item")
	wantViolation(t, f, Config{}, f.Name(), "want bool")

	// corrupt: arithmetic over the raw int iter column (the
	// non-comparison fallback materializes only item columns)
	f2 := ralg.NewFun(itemLit(2), ralg.FunAdd, "out", "iter", "iter")
	wantViolation(t, f2, Config{}, f2.Name(), "want item")

	// comparisons accept mixed kinds: pos = item-valued literal
	f3 := ralg.NewFun(itemLit(2), ralg.FunEq, "keep", "iter", "item")
	if err := Verify(f3, Config{}); err != nil {
		t.Fatalf("mixed-kind comparison rejected: %v", err)
	}
}

func TestDuplicateOutputColumn(t *testing.T) {
	f := ralg.NewFun(itemLit(2), ralg.FunEq, "item", "iter", "iter")
	wantViolation(t, f, Config{}, f.Name(), `already exists`)
}

func TestSortDescFlagArity(t *testing.T) {
	s := ralg.NewSort(itemLit(2), "iter", "item")
	s.Desc = []bool{true} // 1 flag for 2 columns
	wantViolation(t, s, Config{}, s.Name(), "descending flags")
}

func TestRowNumModeAnnotationChecked(t *testing.T) {
	// corrupt: RankSeq claimed over an input that is not provably
	// sorted on the rank's order-by columns
	tab := intTable(map[string][]int64{"a": {3, 1, 2}})
	rn := ralg.NewRowNum(&ralg.Lit{Tab: tab}, "r", []string{"a"}, "")
	rn.Mode = ralg.RankSeq
	wantViolation(t, rn, Config{}, rn.Name(), "sequential rank mode")
}

func TestDistinctMergeAnnotationChecked(t *testing.T) {
	tab := intTable(map[string][]int64{"a": {3, 1, 2}})
	d := &ralg.Distinct{By: []string{"a"}, Merge: true}
	d.SetInput(0, &ralg.Lit{Tab: tab})
	wantViolation(t, d, Config{}, d.Name(), "merge mode")
}

func TestPositionalJoinAnnotationChecked(t *testing.T) {
	nonDense := &ralg.Lit{Tab: intTable(map[string][]int64{"b": {2, 5}})}
	l := &ralg.Lit{Tab: intTable(map[string][]int64{"a": {1, 2}})}
	j := ralg.NewHashJoin(l, nonDense, "a", "b", ralg.Refs("a"), ralg.Refs("b"))
	j.Pos = true
	wantViolation(t, j, Config{}, j.Name(), "positional mode requires a dense right key")
}

func TestUnionSchemaMismatch(t *testing.T) {
	a := &ralg.Lit{Tab: intTable(map[string][]int64{"x": {1}})}
	b := &ralg.Lit{Tab: intTable(map[string][]int64{"y": {1}})}
	u := &ralg.Union{Ins: []ralg.Plan{a, b}}
	wantViolation(t, u, Config{}, u.Name(), `lacks column "x"`)
}

func TestRequireItemAtRoot(t *testing.T) {
	tab := intTable(map[string][]int64{"iter": {1}})
	root := &ralg.Lit{Tab: tab}
	err := Verify(root, Config{RequireItem: true})
	var pie *PlanInvariantError
	if !errors.As(err, &pie) || !strings.Contains(pie.Msg, `"item"`) {
		t.Fatalf("item-less root accepted: %v", err)
	}
	if err := Verify(itemLit(1), Config{RequireItem: true}); err != nil {
		t.Fatalf("valid root rejected: %v", err)
	}
}

// A plan downstream of a Fail leaf has an unknown schema; checks are
// suspended rather than reporting false violations (the executor
// raises the dynamic error before the operator ever runs).
func TestFailPropagatesAnySchema(t *testing.T) {
	f := &ralg.Fail{Code: "FORG0001", Msg: "boom"}
	sel := &ralg.Select{Cond: "whatever"}
	sel.SetInput(0, f)
	if err := Verify(sel, Config{}); err != nil {
		t.Fatalf("plan under Fail rejected: %v", err)
	}
}

func TestExplainRendersTreeWithAnnotations(t *testing.T) {
	lit := itemLit(3)
	sorted := ralg.NewSort(lit, "item", "iter")
	s, err := Explain(sorted, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"sort(item,iter)", "lit(3 rows)", "iter:int", "item:"} {
		if !strings.Contains(s, want) {
			t.Errorf("explain output missing %q:\n%s", want, s)
		}
	}
}

func TestExplainSharedSubplanPrintedOnce(t *testing.T) {
	lit := itemLit(2)
	u := &ralg.Union{Ins: []ralg.Plan{lit, lit}}
	s, err := Explain(u, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(s, "lit(2 rows)") != 2 || !strings.Contains(s, "(shared)") {
		t.Errorf("shared subplan not referenced:\n%s", s)
	}
}
