// Package planck is the static plan verifier: it walks a compiled ralg
// plan DAG inputs-first, infers every operator's output schema (column
// names, column kinds, node-ness and — where statically known — the
// uniform item tag) plus a conservative set of the §4.1 column
// properties (pos-density, key-ness, constness), and checks each
// operator's preconditions against its inferred inputs. A malformed
// plan — a Select over a missing or non-boolean column, a Step whose
// input is not provably in (item, iter) order, a positional join
// without a dense key, a rank operator whose streaming mode its input
// order cannot justify — is rejected at compile time with a structured
// *PlanInvariantError naming the offending operator, instead of
// surfacing as a contained executor panic or, worse, wrong bytes.
//
// planck's own property inference is deliberately independent of the
// optimizer's: internal/opt's inferred properties are cross-checked
// against planck's maximal sound propagation rules, so an optimizer
// claim planck cannot reproduce (dense surviving a reorder, a key
// conjured out of thin air) is itself reported as a plan invariant
// violation — inference disagreement means one of the two is wrong.
//
// The verifier checks structural invariants the compiler guarantees by
// construction; it never rejects on runtime value semantics (e.g. a
// path step over a statically atom-tagged column still compiles — the
// spec prescribes a dynamic error there, and the executor raises it).
package planck

import (
	"fmt"

	"mxq/internal/opt"
	"mxq/internal/ralg"
	"mxq/internal/xqt"
)

// PlanInvariantError is a statically detected plan invariant violation.
type PlanInvariantError struct {
	// Op is the Name() of the offending operator.
	Op string
	// Msg describes the violated invariant.
	Msg string
}

// Error implements error.
func (e *PlanInvariantError) Error() string {
	return fmt.Sprintf("planck: plan invariant violated at %s: %s", e.Op, e.Msg)
}

// Config parameterizes one verification run.
type Config struct {
	// Params holds the prolog variable names visible to param($x)
	// leaves. A nil map disables the declared-parameter check (the
	// caller does not know the declarations); an empty non-nil map
	// means "no parameters declared", so any ParamTable leaf is a
	// violation.
	Params map[string]bool
	// RequireItem demands that the root plan produce an "item" column
	// of item kind — the contract of every result-producing plan (the
	// engine reads the result sequence off that column).
	RequireItem bool
}

// ColInfo is the statically inferred shape of one output column.
type ColInfo struct {
	Kind ralg.ColKind
	// Node marks an item column statically known to hold only nodes.
	Node bool
	// Tag is the uniform item tag when TagKnown (e.g. every Step output
	// is node-tagged, every fn:string result is string-tagged).
	Tag      xqt.Kind
	TagKnown bool
}

// Schema is the inferred output schema of one operator.
type Schema struct {
	// Any marks an unknown schema: everything downstream of a Fail leaf
	// (which never yields rows) until a fixed-output operator resets
	// the shape. Checks involving an Any schema are skipped.
	Any  bool
	cols []string
	info map[string]ColInfo
}

func newSchema() *Schema { return &Schema{info: map[string]ColInfo{}} }

func anySchema() *Schema { return &Schema{Any: true, info: map[string]ColInfo{}} }

// Cols returns the column names in schema order.
func (s *Schema) Cols() []string { return s.cols }

// Has reports whether the schema contains column c.
func (s *Schema) Has(c string) bool { _, ok := s.info[c]; return ok }

// Info returns the shape of column c (zero value when absent).
func (s *Schema) Info(c string) ColInfo { return s.info[c] }

func (s *Schema) add(c string, ci ColInfo) bool {
	if s.Has(c) {
		return false
	}
	s.cols = append(s.cols, c)
	s.info[c] = ci
	return true
}

func (s *Schema) clone() *Schema {
	out := &Schema{Any: s.Any, cols: append([]string(nil), s.cols...), info: make(map[string]ColInfo, len(s.info))}
	for k, v := range s.info {
		out.info[k] = v
	}
	return out
}

// colProps are planck's independently derived column properties — the
// maximal sound propagation of dense/key/const facts, used to audit
// the optimizer's inference.
type colProps struct {
	dense map[string]bool
	key   map[string]bool
	cnst  map[string]bool
}

func newColProps() *colProps {
	return &colProps{dense: map[string]bool{}, key: map[string]bool{}, cnst: map[string]bool{}}
}

func (cp *colProps) clone() *colProps {
	out := newColProps()
	for c := range cp.dense {
		out.dense[c] = true
	}
	for c := range cp.key {
		out.key[c] = true
	}
	for c := range cp.cnst {
		out.cnst[c] = true
	}
	return out
}

// Info is the per-operator analysis result exposed to plan explainers.
type Info struct {
	// Schema is the inferred output schema.
	Schema *Schema
	// Props is the optimizer-side property inference for the node.
	Props opt.Props
	// Dense, Key, Const are planck's own property claims (sorted).
	Dense, Key, Const []string
}

// Verify checks every operator of the plan DAG rooted at root. It
// returns nil when all invariants hold, and the first violation (in
// inputs-first topological order) as a *PlanInvariantError otherwise.
func Verify(root ralg.Plan, cfg Config) error {
	_, err := Analyze(root, cfg)
	return err
}

// Analyze is Verify exposing the per-node inference results (used by
// plan explainers). On a violation the partial map and the error are
// returned.
func Analyze(root ralg.Plan, cfg Config) (map[ralg.Plan]Info, error) {
	if root == nil {
		return nil, &PlanInvariantError{Op: "<nil>", Msg: "nil plan"}
	}
	v := &verifier{
		cfg:     cfg,
		oprops:  opt.InferProps(root),
		schemas: map[ralg.Plan]*Schema{},
		props:   map[ralg.Plan]*colProps{},
	}
	ralg.Walk(root, v.visit)
	infos := make(map[ralg.Plan]Info, len(v.schemas))
	for n, s := range v.schemas {
		cp := v.props[n]
		infos[n] = Info{
			Schema: s,
			Props:  v.oprops[n],
			Dense:  sortedSet(cp.dense),
			Key:    sortedSet(cp.key),
			Const:  sortedSet(cp.cnst),
		}
	}
	if v.err != nil {
		return infos, v.err
	}
	if cfg.RequireItem {
		s := v.schemas[root]
		if !s.Any {
			if !s.Has("item") {
				return infos, &PlanInvariantError{Op: root.Name(), Msg: fmt.Sprintf("root plan must produce an \"item\" column, has %v", s.Cols())}
			}
			if s.Info("item").Kind != ralg.KItem {
				return infos, &PlanInvariantError{Op: root.Name(), Msg: "root plan's \"item\" column is not of item kind"}
			}
		}
	}
	return infos, nil
}

type verifier struct {
	cfg     Config
	oprops  map[ralg.Plan]opt.Props
	schemas map[ralg.Plan]*Schema
	props   map[ralg.Plan]*colProps
	err     *PlanInvariantError
}

func (v *verifier) failf(n ralg.Plan, format string, args ...any) {
	if v.err == nil {
		v.err = &PlanInvariantError{Op: n.Name(), Msg: fmt.Sprintf(format, args...)}
	}
}

// sch returns the inferred schema of input i (Any for unvisited inputs,
// which cannot happen on a well-formed DAG walk).
func (v *verifier) sch(n ralg.Plan, i int) *Schema {
	ins := n.Inputs()
	if i >= len(ins) || ins[i] == nil {
		v.failf(n, "missing input %d", i)
		return anySchema()
	}
	if s, ok := v.schemas[ins[i]]; ok {
		return s
	}
	return anySchema()
}

func (v *verifier) cprops(n ralg.Plan, i int) *colProps {
	ins := n.Inputs()
	if i < len(ins) {
		if cp, ok := v.props[ins[i]]; ok {
			return cp
		}
	}
	return newColProps()
}

// iprops returns the optimizer-side properties of input i, used for
// order-dependent precondition checks (covers/grpord).
func (v *verifier) iprops(n ralg.Plan, i int) opt.Props {
	ins := n.Inputs()
	if i < len(ins) {
		return v.oprops[ins[i]]
	}
	return opt.Props{}
}

func kindStr(k ralg.ColKind) string {
	switch k {
	case ralg.KInt:
		return "int"
	case ralg.KBool:
		return "bool"
	case ralg.KItem:
		return "item"
	}
	return fmt.Sprintf("kind(%d)", k)
}

// need checks that schema s (of the given input role) has column col of
// the wanted kind; an Any schema passes vacuously.
func (v *verifier) need(n ralg.Plan, s *Schema, role, col string, kind ralg.ColKind) bool {
	if s.Any {
		return true
	}
	if col == "" {
		v.failf(n, "%s column name is empty", role)
		return false
	}
	if !s.Has(col) {
		v.failf(n, "%s column %q not in input schema %v", role, col, s.Cols())
		return false
	}
	if got := s.Info(col).Kind; got != kind {
		v.failf(n, "%s column %q has kind %s, want %s", role, col, kindStr(got), kindStr(kind))
		return false
	}
	return true
}

func sortedSet(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (v *verifier) visit(n ralg.Plan) {
	if v.err != nil {
		// after the first violation downstream schemas are meaningless;
		// record Any so Analyze still returns a complete map
		v.schemas[n] = anySchema()
		v.props[n] = newColProps()
		return
	}
	s, cp := v.check(n)
	if s == nil {
		s = anySchema()
	}
	if cp == nil {
		cp = newColProps()
	}
	v.schemas[n] = s
	v.props[n] = cp
	if v.err == nil && !s.Any {
		v.crossCheck(n, s, cp)
	}
}

// crossCheck audits the optimizer's property inference for node n
// against planck's schema and independently derived properties: a
// property claimed for a column that does not exist, a dense claim on
// a non-integer column, or a dense/key/const claim planck's maximal
// sound propagation cannot reproduce is a bug in one of the two
// inference engines.
func (v *verifier) crossCheck(n ralg.Plan, s *Schema, cp *colProps) {
	op := v.oprops[n]
	for _, c := range op.DenseCols() {
		switch {
		case !s.Has(c):
			v.failf(n, "optimizer infers dense(%s) but the column is not in the schema %v", c, s.Cols())
		case s.Info(c).Kind != ralg.KInt:
			v.failf(n, "optimizer infers dense(%s) on a non-integer column", c)
		case !cp.dense[c]:
			v.failf(n, "optimizer infers dense(%s) but planck's propagation refutes it (inference disagreement)", c)
		}
	}
	for _, c := range op.KeyCols() {
		switch {
		case !s.Has(c):
			v.failf(n, "optimizer infers key(%s) but the column is not in the schema %v", c, s.Cols())
		case !cp.key[c]:
			v.failf(n, "optimizer infers key(%s) but planck's propagation refutes it (inference disagreement)", c)
		}
	}
	for _, c := range op.ConstCols() {
		switch {
		case !s.Has(c):
			v.failf(n, "optimizer infers const(%s) but the column is not in the schema %v", c, s.Cols())
		case !cp.cnst[c]:
			v.failf(n, "optimizer infers const(%s) but planck's propagation refutes it (inference disagreement)", c)
		}
	}
	for _, ord := range op.Ords() {
		for _, c := range ord {
			if !s.Has(c) {
				v.failf(n, "optimizer infers ordering %v over a column %q absent from the schema %v", ord, c, s.Cols())
			}
		}
	}
	for _, g := range op.Grps() {
		if !s.Has(g.Group) {
			v.failf(n, "optimizer infers a group ordering by absent column %q", g.Group)
		}
		for _, c := range g.Cols {
			if !s.Has(c) {
				v.failf(n, "optimizer infers group ordering %v over absent column %q", g.Cols, c)
			}
		}
	}
}

// check infers node n's output schema and planck-side properties after
// validating its preconditions. A nil schema means Any.
func (v *verifier) check(n ralg.Plan) (*Schema, *colProps) {
	switch x := n.(type) {
	case *ralg.Lit:
		return v.checkLit(x)
	case *ralg.LitDecl:
		return v.checkLitDecl(x)
	case *ralg.DocRoot:
		if x.Doc == "" {
			v.failf(n, "empty document name")
		}
		return v.rootSchema(true, xqt.KNode, true)
	case *ralg.ContextRoot:
		s, cp := v.rootSchema(true, xqt.KNode, true)
		// the item depends on the execution's context document: constant
		// within one execution (single row), still a key
		return s, cp
	case *ralg.ParamTable:
		if v.cfg.Params != nil && !v.cfg.Params[x.Var] {
			v.failf(n, "references undeclared variable $%s", x.Var)
		}
		s := newSchema()
		s.add("pos", ColInfo{Kind: ralg.KInt})
		s.add("item", ColInfo{Kind: ralg.KItem})
		cp := newColProps()
		cp.dense["pos"] = true
		cp.key["pos"] = true
		return s, cp
	case *ralg.CollectionRoot:
		if x.Coll == "" {
			v.failf(n, "empty collection name")
		}
		s := newSchema()
		s.add("pos", ColInfo{Kind: ralg.KInt})
		s.add("item", ColInfo{Kind: ralg.KItem, Node: true, Tag: xqt.KNode, TagKnown: true})
		cp := newColProps()
		cp.dense["pos"] = true
		cp.key["pos"] = true
		cp.key["item"] = true
		return s, cp
	case *ralg.Fail:
		if x.Code == "" {
			v.failf(n, "empty error code")
		}
		return anySchema(), nil
	case *ralg.Project:
		return v.checkProject(x)
	case *ralg.Attach:
		return v.checkAttach(x)
	case *ralg.Select:
		in := v.sch(n, 0)
		v.need(n, in, "condition", x.Cond, ralg.KBool)
		cp := v.cprops(n, 0).clone()
		cp.dense = map[string]bool{} // dropped rows leave gaps
		return in, cp
	case *ralg.Fun:
		return v.checkFun(x)
	case *ralg.RowNum:
		return v.checkRowNum(x)
	case *ralg.Sort:
		return v.checkSort(x)
	case *ralg.HashJoin:
		return v.checkHashJoin(x)
	case *ralg.ExistJoin:
		return v.checkExistJoin(x)
	case *ralg.Cross:
		return v.checkJoinCols(x, x.LCols, x.RCols)
	case *ralg.Union:
		return v.checkUnion(x)
	case *ralg.Diff:
		l, r := v.sch(n, 0), v.sch(n, 1)
		v.need(n, l, "left key", x.LKey, ralg.KInt)
		v.need(n, r, "right key", x.RKey, ralg.KInt)
		cp := v.cprops(n, 0).clone()
		cp.dense = map[string]bool{}
		return l, cp
	case *ralg.Distinct:
		in := v.sch(n, 0)
		if len(x.By) == 0 {
			v.failf(n, "no distinct-by columns")
		}
		for _, c := range x.By {
			if !in.Any && !in.Has(c) {
				v.failf(n, "distinct-by column %q not in input schema %v", c, in.Cols())
			}
		}
		if x.Merge && !v.iprops(n, 0).Covers(x.By) {
			v.failf(n, "merge mode requires the input sorted on %v, which is not provable", x.By)
		}
		cp := v.cprops(n, 0).clone()
		cp.dense = map[string]bool{}
		return in, cp
	case *ralg.Aggr:
		return v.checkAggr(x)
	case *ralg.Step:
		return v.checkStep(n, x.IterCol, x.ItemCol, xqt.KNode)
	case *ralg.AttrStep:
		return v.checkStep(n, x.IterCol, x.ItemCol, xqt.KAttr)
	case *ralg.ElemConstruct:
		return v.checkElem(x)
	case *ralg.ColToItem:
		return v.checkColToItem(x)
	case *ralg.RangeGen:
		in := v.sch(n, 0)
		v.need(n, in, "iter", x.Iter, ralg.KInt)
		v.need(n, in, "range lower bound", x.Lo, ralg.KItem)
		v.need(n, in, "range upper bound", x.Hi, ralg.KItem)
		s := newSchema()
		s.add("iter", ColInfo{Kind: ralg.KInt})
		s.add("pos", ColInfo{Kind: ralg.KInt})
		s.add("item", ColInfo{Kind: ralg.KItem, Tag: xqt.KInt, TagKnown: true})
		return s, nil
	case *ralg.CoverCheck:
		loop, in := v.sch(n, 0), v.sch(n, 1)
		v.need(n, loop, "loop iter", x.LoopIter, ralg.KInt)
		v.need(n, in, "partition", x.Part, ralg.KInt)
		if x.Fn == "" {
			v.failf(n, "empty function name for error reporting")
		}
		return in, v.cprops(n, 1).clone()
	case *ralg.EBV:
		in := v.sch(n, 0)
		v.need(n, in, "partition", x.Part, ralg.KInt)
		v.need(n, in, "item", x.Item, ralg.KItem)
		if x.Out == x.Part {
			v.failf(n, "output column %q collides with the partition column", x.Out)
		}
		s := newSchema()
		s.add(x.Part, ColInfo{Kind: ralg.KInt})
		s.add(x.Out, ColInfo{Kind: ralg.KBool})
		cp := newColProps()
		cp.key[x.Part] = true
		return s, cp
	case *ralg.CardCheck:
		in := v.sch(n, 0)
		v.need(n, in, "partition", x.Part, ralg.KInt)
		if x.Fn == "" {
			v.failf(n, "empty function name for error reporting")
		}
		return in, v.cprops(n, 0).clone()
	}
	v.failf(n, "unknown operator %T", n)
	return nil, nil
}

func (v *verifier) rootSchema(node bool, tag xqt.Kind, constItem bool) (*Schema, *colProps) {
	s := newSchema()
	s.add("pos", ColInfo{Kind: ralg.KInt})
	s.add("item", ColInfo{Kind: ralg.KItem, Node: node, Tag: tag, TagKnown: node})
	cp := newColProps()
	cp.dense["pos"] = true
	cp.key["pos"] = true
	cp.key["item"] = true
	cp.cnst["pos"] = true
	if constItem {
		cp.cnst["item"] = true
	}
	return s, cp
}

func (v *verifier) checkLit(x *ralg.Lit) (*Schema, *colProps) {
	return v.litSchema(x, x.Tab)
}

// litSchema infers the schema and directly observable properties of a
// literal table (shared by Lit and LitDecl).
func (v *verifier) litSchema(n ralg.Plan, tab *ralg.Table) (*Schema, *colProps) {
	if tab == nil {
		v.failf(n, "nil literal table")
		return nil, nil
	}
	s := newSchema()
	cp := newColProps()
	for _, name := range tab.Names() {
		c := tab.Col(name)
		ci := ColInfo{Kind: c.Kind}
		if c.Kind == ralg.KItem {
			if k, ok := c.Item.Uniform(); ok && c.Item.Len() > 0 {
				ci.Tag, ci.TagKnown = k, true
				ci.Node = k == xqt.KNode || k == xqt.KAttr
			}
		}
		if !s.add(name, ci) {
			v.failf(n, "duplicate column %q in literal table", name)
			return s, cp
		}
		if tab.N <= 1 {
			cp.cnst[name] = true
		}
		if c.Kind == ralg.KInt {
			uniq, dense := true, true
			seen := make(map[int64]bool, len(c.Int))
			for i, val := range c.Int {
				if seen[val] {
					uniq = false
				}
				seen[val] = true
				if val != int64(i)+1 {
					dense = false
				}
			}
			if uniq {
				cp.key[name] = true
			}
			if dense {
				cp.dense[name] = true
			}
		}
	}
	return s, cp
}

// litVal returns the comparable value of column c at row i (xqt.Item is
// a comparable struct), for duplicate and group detection.
func litVal(c *ralg.Col, i int) any {
	switch c.Kind {
	case ralg.KInt:
		return c.Int[i]
	case ralg.KBool:
		return c.Bool[i]
	default:
		return c.Item.At(i)
	}
}

// checkLitDecl infers a declared literal's schema like a plain Lit and
// then verifies every declared §4.1 property against the table's actual
// rows, merging the verified claims into planck's own property set (so
// the optimizer's inference over the declarations passes crossCheck). A
// declaration the data refutes is a plan invariant violation — this is
// what makes LitDecl a sound stand-in for an arbitrary subplan with
// known properties.
func (v *verifier) checkLitDecl(x *ralg.LitDecl) (*Schema, *colProps) {
	s, cp := v.litSchema(x, x.Tab)
	if v.err != nil || s == nil {
		return s, cp
	}
	t := x.Tab
	has := func(role, c string) bool {
		if !s.Has(c) {
			v.failf(x, "declared %s names column %q absent from the table schema %v", role, c, s.Cols())
			return false
		}
		return true
	}
	for _, c := range x.Dense {
		if !has("dense", c) {
			continue
		}
		col := t.Col(c)
		if col.Kind != ralg.KInt {
			v.failf(x, "declared dense(%s) on a non-integer column", c)
			continue
		}
		ok := true
		for i, val := range col.Int {
			if val != int64(i)+1 {
				v.failf(x, "declared dense(%s) but row %d holds %d", c, i, val)
				ok = false
				break
			}
		}
		if ok {
			cp.dense[c] = true
		}
	}
	for _, c := range x.Key {
		if !has("key", c) {
			continue
		}
		col := t.Col(c)
		seen := make(map[any]bool, t.N)
		ok := true
		for i := 0; i < t.N; i++ {
			k := litVal(col, i)
			if seen[k] {
				v.failf(x, "declared key(%s) but row %d repeats an earlier value", c, i)
				ok = false
				break
			}
			seen[k] = true
		}
		if ok {
			cp.key[c] = true
		}
	}
	for _, c := range x.Const {
		if !has("const", c) {
			continue
		}
		col := t.Col(c)
		ok := true
		for i := 1; i < t.N; i++ {
			if litVal(col, i) != litVal(col, 0) {
				v.failf(x, "declared const(%s) but rows 0 and %d differ", c, i)
				ok = false
				break
			}
		}
		if ok {
			cp.cnst[c] = true
		}
	}
	for _, ord := range x.Ords {
		ok := len(ord) > 0
		for _, c := range ord {
			ok = has("ordering", c) && ok
		}
		if !ok {
			continue
		}
		if !ralg.IsSortedBy(t, ord) {
			v.failf(x, "declared ordering %v but the table is not sorted on it", ord)
		}
	}
	for _, g := range x.Grps {
		ok := has("group ordering", g.Group) && len(g.Cols) > 0
		for _, c := range g.Cols {
			ok = has("group ordering", c) && ok
		}
		if !ok {
			continue
		}
		// within each group (rows with equal group values, not
		// necessarily consecutive) the subsequence must be sorted, i.e.
		// every adjacent same-group pair must be ordered
		gc := t.Col(g.Group)
		last := make(map[any]int, t.N)
		for i := 0; i < t.N; i++ {
			k := litVal(gc, i)
			if j, seen := last[k]; seen && ralg.CompareRowsOn(t, g.Cols, j, i) > 0 {
				v.failf(x, "declared group ordering %v by %s but rows %d and %d of one group are out of order", g.Cols, g.Group, j, i)
				break
			}
			last[k] = i
		}
	}
	return s, cp
}

func (v *verifier) checkProject(x *ralg.Project) (*Schema, *colProps) {
	in := v.sch(x, 0)
	if in.Any {
		return anySchema(), nil
	}
	if len(x.Cols) == 0 {
		v.failf(x, "empty projection")
		return nil, nil
	}
	s := newSchema()
	for _, ref := range x.Cols {
		if !in.Has(ref.Src) {
			v.failf(x, "source column %q not in input schema %v", ref.Src, in.Cols())
			return nil, nil
		}
		if !s.add(ref.Dst, in.Info(ref.Src)) {
			v.failf(x, "duplicate output column %q", ref.Dst)
			return nil, nil
		}
	}
	icp := v.cprops(x, 0)
	cp := newColProps()
	for _, ref := range x.Cols {
		if icp.dense[ref.Src] {
			cp.dense[ref.Dst] = true
		}
		if icp.key[ref.Src] {
			cp.key[ref.Dst] = true
		}
		if icp.cnst[ref.Src] {
			cp.cnst[ref.Dst] = true
		}
	}
	return s, cp
}

func (v *verifier) checkAttach(x *ralg.Attach) (*Schema, *colProps) {
	in := v.sch(x, 0)
	if in.Any {
		return anySchema(), nil
	}
	s := in.clone()
	ci := ColInfo{Kind: x.Kind}
	switch x.Kind {
	case ralg.KInt, ralg.KBool:
	case ralg.KItem:
		ci.Tag, ci.TagKnown = x.It.K, true
		ci.Node = x.It.IsNode()
	default:
		v.failf(x, "invalid attached column kind %d", x.Kind)
	}
	if !s.add(x.Col, ci) {
		v.failf(x, "attached column %q already exists in %v", x.Col, in.Cols())
	}
	cp := v.cprops(x, 0).clone()
	cp.cnst[x.Col] = true
	return s, cp
}

// funSpec describes one row-wise function: argument count, argument
// kind ("" = any of int/bool/item — the comparisons), output kind.
type funSpec struct {
	name  string
	arity int
	arg   string // "item", "bool", or "" for any
	out   ralg.ColKind
	tag   xqt.Kind // uniform output tag when out == KItem and tagKnown
	known bool
}

var funSpecs = map[ralg.FunOp]funSpec{
	ralg.FunAdd:        {"add", 2, "item", ralg.KItem, 0, false},
	ralg.FunSub:        {"sub", 2, "item", ralg.KItem, 0, false},
	ralg.FunMul:        {"mul", 2, "item", ralg.KItem, 0, false},
	ralg.FunDiv:        {"div", 2, "item", ralg.KItem, 0, false},
	ralg.FunIDiv:       {"idiv", 2, "item", ralg.KItem, 0, false},
	ralg.FunMod:        {"mod", 2, "item", ralg.KItem, 0, false},
	ralg.FunNeg:        {"neg", 1, "item", ralg.KItem, 0, false},
	ralg.FunEq:         {"eq", 2, "", ralg.KBool, 0, false},
	ralg.FunNe:         {"ne", 2, "", ralg.KBool, 0, false},
	ralg.FunLt:         {"lt", 2, "", ralg.KBool, 0, false},
	ralg.FunLe:         {"le", 2, "", ralg.KBool, 0, false},
	ralg.FunGt:         {"gt", 2, "", ralg.KBool, 0, false},
	ralg.FunGe:         {"ge", 2, "", ralg.KBool, 0, false},
	ralg.FunAnd:        {"and", 2, "bool", ralg.KBool, 0, false},
	ralg.FunOr:         {"or", 2, "bool", ralg.KBool, 0, false},
	ralg.FunNot:        {"not", 1, "bool", ralg.KBool, 0, false},
	ralg.FunAtomize:    {"atomize", 1, "item", ralg.KItem, 0, false},
	ralg.FunStringOf:   {"string", 1, "item", ralg.KItem, xqt.KString, true},
	ralg.FunNumber:     {"number", 1, "item", ralg.KItem, xqt.KDouble, true},
	ralg.FunContains:   {"contains", 2, "item", ralg.KBool, 0, false},
	ralg.FunStartsWith: {"starts-with", 2, "item", ralg.KBool, 0, false},
	ralg.FunConcat:     {"concat", 2, "item", ralg.KItem, xqt.KString, true},
	ralg.FunNodeBefore: {"node-before", 2, "item", ralg.KBool, 0, false},
	ralg.FunNodeAfter:  {"node-after", 2, "item", ralg.KBool, 0, false},
	ralg.FunNodeIs:     {"node-is", 2, "item", ralg.KBool, 0, false},
	ralg.FunNameOf:     {"name", 1, "item", ralg.KItem, xqt.KString, true},
	ralg.FunIsNumeric:  {"is-numeric", 1, "item", ralg.KBool, 0, false},
	ralg.FunEbvAtom:    {"ebv-atom", 1, "item", ralg.KBool, 0, false},
	ralg.FunFloor:      {"floor", 1, "item", ralg.KItem, xqt.KDouble, true},
	ralg.FunCeil:       {"ceiling", 1, "item", ralg.KItem, xqt.KDouble, true},
	ralg.FunRound:      {"round", 1, "item", ralg.KItem, xqt.KDouble, true},
	ralg.FunStrLen:     {"string-length", 1, "item", ralg.KItem, xqt.KInt, true},
	ralg.FunLocalName:  {"local-name", 1, "item", ralg.KItem, xqt.KString, true},
}

func (v *verifier) checkFun(x *ralg.Fun) (*Schema, *colProps) {
	in := v.sch(x, 0)
	spec, ok := funSpecs[x.Op]
	if !ok {
		v.failf(x, "unknown function op %d", x.Op)
		return nil, nil
	}
	if len(x.Args) != spec.arity {
		v.failf(x, "%s takes %d arguments, got %d", spec.name, spec.arity, len(x.Args))
		return nil, nil
	}
	if in.Any {
		return anySchema(), nil
	}
	for _, a := range x.Args {
		if !in.Has(a) {
			v.failf(x, "%s argument %q not in input schema %v", spec.name, a, in.Cols())
			return nil, nil
		}
		got := in.Info(a).Kind
		switch spec.arg {
		case "item":
			// non-comparison fallbacks materialize only item columns, so
			// an int/bool argument would dereference a nil vector
			if got != ralg.KItem {
				v.failf(x, "%s argument %q has kind %s, want item", spec.name, a, kindStr(got))
				return nil, nil
			}
		case "bool":
			if got != ralg.KBool {
				v.failf(x, "%s argument %q has kind %s, want bool", spec.name, a, kindStr(got))
				return nil, nil
			}
		}
	}
	s := in.clone()
	if !s.add(x.Out, ColInfo{Kind: spec.out, Tag: spec.tag, TagKnown: spec.known}) {
		v.failf(x, "output column %q already exists in %v", x.Out, in.Cols())
	}
	return s, v.cprops(x, 0).clone()
}

func (v *verifier) checkRowNum(x *ralg.RowNum) (*Schema, *colProps) {
	in := v.sch(x, 0)
	hasDesc := false
	for _, d := range x.Desc {
		hasDesc = hasDesc || d
	}
	if len(x.Desc) != 0 && len(x.Desc) != len(x.OrderBy) {
		v.failf(x, "%d descending flags for %d order-by columns", len(x.Desc), len(x.OrderBy))
	}
	if !in.Any {
		for _, c := range x.OrderBy {
			if !in.Has(c) {
				v.failf(x, "order-by column %q not in input schema %v", c, in.Cols())
			}
		}
		if x.Part != "" {
			v.need(x, in, "partition", x.Part, ralg.KInt)
		}
	}
	ip := v.iprops(x, 0)
	switch x.Mode {
	case ralg.RankSeq:
		full := x.OrderBy
		if x.Part != "" {
			full = append([]string{x.Part}, x.OrderBy...)
		}
		if hasDesc {
			v.failf(x, "sequential rank mode with a descending order-by component")
		} else if !ip.Covers(full) {
			v.failf(x, "sequential rank mode requires the input sorted on %v, which is not provable", full)
		}
	case ralg.RankStream:
		if x.Part == "" {
			v.failf(x, "streaming rank mode without a partition column")
		} else if hasDesc {
			v.failf(x, "streaming rank mode with a descending order-by component")
		} else if !ip.GrpCovered(x.OrderBy, x.Part) {
			v.failf(x, "streaming rank mode requires grpord(%v, %s), which is not provable", x.OrderBy, x.Part)
		}
	}
	if in.Any {
		return anySchema(), nil
	}
	s := in.clone()
	if !s.add(x.Out, ColInfo{Kind: ralg.KInt}) {
		v.failf(x, "output column %q already exists in %v", x.Out, in.Cols())
	}
	cp := v.cprops(x, 0).clone()
	if x.Part == "" {
		// ranks over the whole table are a permutation of 1..N
		cp.key[x.Out] = true
		if !hasDesc && ip.Covers(x.OrderBy) {
			cp.dense[x.Out] = true // already in rank order: out[i] == i+1
		}
	}
	return s, cp
}

func (v *verifier) checkSort(x *ralg.Sort) (*Schema, *colProps) {
	in := v.sch(x, 0)
	if len(x.By) == 0 {
		v.failf(x, "no sort columns")
	}
	if len(x.Desc) != 0 && len(x.Desc) != len(x.By) {
		v.failf(x, "%d descending flags for %d sort columns", len(x.Desc), len(x.By))
	}
	if !in.Any {
		for _, c := range x.By {
			if !in.Has(c) {
				v.failf(x, "sort column %q not in input schema %v", c, in.Cols())
			}
		}
	}
	if x.RefinePrefix < 0 || x.RefinePrefix > len(x.By) {
		v.failf(x, "refine prefix %d out of range for %d sort columns", x.RefinePrefix, len(x.By))
	} else if x.RefinePrefix > 0 {
		for _, d := range x.Desc[:min(len(x.Desc), x.RefinePrefix)] {
			if d {
				v.failf(x, "refine sort over a descending prefix component")
			}
		}
		if v.err == nil && !v.iprops(x, 0).Covers(x.By[:x.RefinePrefix]) {
			v.failf(x, "refine prefix %d requires the input sorted on %v, which is not provable", x.RefinePrefix, x.By[:x.RefinePrefix])
		}
	}
	if in.Any {
		return anySchema(), nil
	}
	icp := v.cprops(x, 0)
	cp := newColProps()
	cp.key = icp.clone().key
	cp.cnst = icp.clone().cnst
	// a stable sort keyed first by an already-dense column is the
	// identity permutation: density survives; any other sort reorders
	if len(x.By) > 0 && (len(x.Desc) == 0 || !x.Desc[0]) && icp.dense[x.By[0]] {
		for c := range icp.dense {
			cp.dense[c] = true
		}
	}
	return in, cp
}

func (v *verifier) checkJoinCols(n ralg.Plan, lcols, rcols []ralg.ColRef) (*Schema, *colProps) {
	l, r := v.sch(n, 0), v.sch(n, 1)
	if l.Any || r.Any {
		return anySchema(), nil
	}
	s := newSchema()
	for _, ref := range lcols {
		if !l.Has(ref.Src) {
			v.failf(n, "left column %q not in input schema %v", ref.Src, l.Cols())
			return nil, nil
		}
		if !s.add(ref.Dst, l.Info(ref.Src)) {
			v.failf(n, "duplicate output column %q", ref.Dst)
			return nil, nil
		}
	}
	for _, ref := range rcols {
		if !r.Has(ref.Src) {
			v.failf(n, "right column %q not in input schema %v", ref.Src, r.Cols())
			return nil, nil
		}
		if !s.add(ref.Dst, r.Info(ref.Src)) {
			v.failf(n, "duplicate output column %q", ref.Dst)
			return nil, nil
		}
	}
	lcp, rcp := v.cprops(n, 0), v.cprops(n, 1)
	cp := newColProps()
	for _, ref := range lcols {
		if lcp.cnst[ref.Src] {
			cp.cnst[ref.Dst] = true
		}
	}
	for _, ref := range rcols {
		if rcp.cnst[ref.Src] {
			cp.cnst[ref.Dst] = true
		}
	}
	return s, cp
}

func (v *verifier) checkHashJoin(x *ralg.HashJoin) (*Schema, *colProps) {
	l, r := v.sch(x, 0), v.sch(x, 1)
	v.need(x, l, "left key", x.LKey, ralg.KInt)
	v.need(x, r, "right key", x.RKey, ralg.KInt)
	lp, rp := v.iprops(x, 0), v.iprops(x, 1)
	if x.Pos && x.PosLeft {
		v.failf(x, "both positional modes set")
	}
	if x.Pos && !rp.Dense(x.RKey) {
		v.failf(x, "positional mode requires a dense right key %q, which is not provable", x.RKey)
	}
	if x.PosLeft && !(lp.Dense(x.LKey) && lp.Key(x.LKey) && rp.Covers([]string{x.RKey})) {
		v.failf(x, "left-positional mode requires a dense unique left key %q and a key-sorted right input, which is not provable", x.LKey)
	}
	s, cp := v.checkJoinCols(x, x.LCols, x.RCols)
	if s == nil || s.Any || cp == nil {
		return s, cp
	}
	// key columns survive on the side whose partner key is unique
	lcp, rcp := v.cprops(x, 0), v.cprops(x, 1)
	if rcp.key[x.RKey] {
		for _, ref := range x.LCols {
			if lcp.key[ref.Src] {
				cp.key[ref.Dst] = true
			}
		}
	}
	if lcp.key[x.LKey] {
		for _, ref := range x.RCols {
			if rcp.key[ref.Src] {
				cp.key[ref.Dst] = true
			}
		}
	}
	return s, cp
}

func (v *verifier) checkExistJoin(x *ralg.ExistJoin) (*Schema, *colProps) {
	l, r := v.sch(x, 0), v.sch(x, 1)
	v.need(x, l, "left iter", x.LIter, ralg.KInt)
	v.need(x, l, "left item", x.LItem, ralg.KItem)
	v.need(x, r, "right iter", x.RIter, ralg.KInt)
	v.need(x, r, "right item", x.RItem, ralg.KItem)
	if x.Out1 == "" || x.Out2 == "" || x.Out1 == x.Out2 {
		v.failf(x, "invalid output columns (%q, %q)", x.Out1, x.Out2)
	}
	s := newSchema()
	s.add(x.Out1, ColInfo{Kind: ralg.KInt})
	s.add(x.Out2, ColInfo{Kind: ralg.KInt})
	return s, nil
}

func (v *verifier) checkUnion(x *ralg.Union) (*Schema, *colProps) {
	if len(x.Ins) == 0 {
		v.failf(x, "union of zero inputs")
		return nil, nil
	}
	var ref *Schema
	refIdx := -1
	for i := range x.Ins {
		if s := v.sch(x, i); !s.Any {
			ref, refIdx = s, i
			break
		}
	}
	if ref == nil {
		return anySchema(), nil
	}
	out := ref.clone()
	for i := range x.Ins {
		s := v.sch(x, i)
		if s.Any || i == refIdx {
			continue
		}
		for _, c := range ref.Cols() {
			if !s.Has(c) {
				v.failf(x, "input %d lacks column %q of input %d's schema %v", i, c, refIdx, ref.Cols())
				return out, nil
			}
			a, b := ref.Info(c), s.Info(c)
			if a.Kind != b.Kind {
				v.failf(x, "column %q has kind %s in input %d but %s in input %d", c, kindStr(a.Kind), refIdx, kindStr(b.Kind), i)
				return out, nil
			}
			merged := out.info[c]
			merged.Node = merged.Node && b.Node
			if merged.TagKnown && (!b.TagKnown || b.Tag != merged.Tag) {
				merged.TagKnown = false
				merged.Tag = 0
			}
			out.info[c] = merged
		}
		if len(s.Cols()) != len(ref.Cols()) {
			v.failf(x, "input %d has columns %v, want %v", i, s.Cols(), ref.Cols())
			return out, nil
		}
	}
	var cp *colProps
	if len(x.Ins) == 1 {
		cp = v.cprops(x, 0).clone()
	}
	return out, cp
}

func (v *verifier) checkAggr(x *ralg.Aggr) (*Schema, *colProps) {
	in := v.sch(x, 0)
	v.need(x, in, "partition", x.Part, ralg.KInt)
	if x.Op != ralg.AggCount {
		v.need(x, in, "aggregate argument", x.Arg, ralg.KItem)
	}
	if x.Out == x.Part {
		v.failf(x, "output column %q collides with the partition column", x.Out)
	}
	s := newSchema()
	s.add(x.Part, ColInfo{Kind: ralg.KInt})
	ci := ColInfo{Kind: ralg.KItem}
	if x.Op == ralg.AggCount {
		ci.Tag, ci.TagKnown = xqt.KInt, true
	}
	s.add(x.Out, ci)
	cp := newColProps()
	cp.key[x.Part] = true
	return s, cp
}

// checkStep validates a Step/AttrStep input: the iter column must be
// integer, the item column an item column, and — the staircase-join
// hard precondition — the input must be provably sorted on
// (item, iter); the executor refuses to run otherwise.
func (v *verifier) checkStep(n ralg.Plan, iterCol, itemCol string, outTag xqt.Kind) (*Schema, *colProps) {
	in := v.sch(n, 0)
	okIter := v.need(n, in, "iter", iterCol, ralg.KInt)
	okItem := v.need(n, in, "item", itemCol, ralg.KItem)
	if okIter && okItem && !in.Any {
		if !v.iprops(n, 0).Covers([]string{itemCol, iterCol}) {
			v.failf(n, "input not provably sorted on (%s, %s): plan misses a sort", itemCol, iterCol)
		}
	}
	s := newSchema()
	s.add("iter", ColInfo{Kind: ralg.KInt})
	s.add("item", ColInfo{Kind: ralg.KItem, Node: true, Tag: outTag, TagKnown: true})
	return s, nil
}

func (v *verifier) checkElem(x *ralg.ElemConstruct) (*Schema, *colProps) {
	if x.Tag == "" {
		v.failf(x, "empty element tag")
	}
	loop, content := v.sch(x, 0), v.sch(x, 1)
	v.need(x, loop, "loop iter", "iter", ralg.KInt)
	v.need(x, content, "content iter", "iter", ralg.KInt)
	v.need(x, content, "content item", "item", ralg.KItem)
	i := 2
	for _, a := range x.Attrs {
		if a.Attr == "" {
			v.failf(x, "empty attribute name")
		}
		for range a.Parts {
			ps := v.sch(x, i)
			v.need(x, ps, fmt.Sprintf("attribute %q part iter", a.Attr), "iter", ralg.KInt)
			v.need(x, ps, fmt.Sprintf("attribute %q part item", a.Attr), "item", ralg.KItem)
			i++
		}
	}
	s := newSchema()
	s.add("iter", ColInfo{Kind: ralg.KInt})
	s.add("item", ColInfo{Kind: ralg.KItem, Node: true, Tag: xqt.KNode, TagKnown: true})
	cp := newColProps()
	if v.cprops(x, 0).key["iter"] {
		cp.key["iter"] = true // one output row per loop row
	}
	return s, cp
}

func (v *verifier) checkColToItem(x *ralg.ColToItem) (*Schema, *colProps) {
	in := v.sch(x, 0)
	if in.Any {
		return anySchema(), nil
	}
	if !in.Has(x.Src) {
		v.failf(x, "source column %q not in input schema %v", x.Src, in.Cols())
		return nil, nil
	}
	src := in.Info(x.Src)
	ci := ColInfo{Kind: ralg.KItem}
	switch src.Kind {
	case ralg.KInt:
		ci.Tag, ci.TagKnown = xqt.KInt, true
	case ralg.KBool:
		ci.Tag, ci.TagKnown = xqt.KBool, true
	default:
		ci = src
	}
	s := in.clone()
	if !s.add(x.Dst, ci) {
		v.failf(x, "output column %q already exists in %v", x.Dst, in.Cols())
	}
	return s, v.cprops(x, 0).clone()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
