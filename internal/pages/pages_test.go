package pages

import (
	"math/rand"
	"strings"
	"testing"

	"mxq/internal/core"
	"mxq/internal/naive"
	"mxq/internal/store"
	"mxq/internal/xmark"
)

const doc = `<a><b><c><d/><e/></c></b><f><g/><h><i/><j/></h></f></a>`

func shred(t testing.TB, xml string) *store.Container {
	t.Helper()
	c, err := store.Shred("d.xml", strings.NewReader(xml), false)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// serializeView materializes and serializes the current document state.
func serializeView(t testing.TB, d *Doc) string {
	t.Helper()
	v := d.View("v.xml")
	if err := v.Validate(); err != nil {
		t.Fatalf("view invalid: %v", err)
	}
	var sb strings.Builder
	if err := store.Serialize(&sb, v, 0); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestRoundTripThroughPages(t *testing.T) {
	c := shred(t, doc)
	for _, fill := range []float64{0.5, 0.75, 1.0} {
		d := FromContainer(c, 3, fill) // tiny 8-tuple pages
		if got := serializeView(t, d); got != doc {
			t.Errorf("fill=%v: round trip %s, want %s", fill, got, doc)
		}
	}
}

func TestSwizzle(t *testing.T) {
	c := shred(t, doc)
	d := FromContainer(c, 3, 0.5)
	for pre := int32(0); pre < int32(d.Len()); pre++ {
		rid := d.RidOf(pre)
		if back := d.PreOf(rid); back != pre {
			t.Fatalf("PreOf(RidOf(%d)) = %d", pre, back)
		}
	}
}

func TestValueUpdates(t *testing.T) {
	c := shred(t, `<a><b>old</b></a>`)
	d := FromContainer(c, 3, 0.5)
	// pre of the text node in the view: find it
	v := d.View("v")
	var textPre int32 = -1
	for p := int32(0); p < int32(v.Len()); p++ {
		if v.Kind[p] == store.KindText {
			textPre = p
		}
	}
	if err := d.ReplaceText(textPre, "new"); err != nil {
		t.Fatal(err)
	}
	if got := serializeView(t, d); got != `<a><b>new</b></a>` {
		t.Errorf("after ReplaceText: %s", got)
	}
	var bPre int32
	for p := int32(0); p < int32(v.Len()); p++ {
		if v.Kind[p] == store.KindElem && v.NameOf(p) == "b" {
			bPre = p
		}
	}
	if err := d.SetAttr(bPre, "k", "1"); err != nil {
		t.Fatal(err)
	}
	if got := serializeView(t, d); got != `<a><b k="1">new</b></a>` {
		t.Errorf("after SetAttr: %s", got)
	}
}

func TestDeleteLeavesUnusedTuples(t *testing.T) {
	c := shred(t, doc)
	d := FromContainer(c, 3, 1.0)
	before := d.Len()
	// delete <c> (first find its pre in the view)
	v := d.View("v")
	var cPre int32 = -1
	for p := int32(0); p < int32(v.Len()); p++ {
		if v.Kind[p] == store.KindElem && v.NameOf(p) == "c" {
			cPre = p
		}
	}
	if err := d.Delete(cPre); err != nil {
		t.Fatal(err)
	}
	if d.Len() != before {
		t.Errorf("delete changed the view length: %d -> %d", before, d.Len())
	}
	if got := serializeView(t, d); got != `<a><b/><f><g/><h><i/><j/></h></f></a>` {
		t.Errorf("after delete: %s", got)
	}
}

func TestInsertUsesSlackThenOverflows(t *testing.T) {
	c := shred(t, doc)
	d := FromContainer(c, 3, 0.5) // 8-tuple pages, 4 used: plenty of slack
	v := d.View("v")
	var gPre int32 = -1
	for p := int32(0); p < int32(v.Len()); p++ {
		if v.Kind[p] == store.KindElem && v.NameOf(p) == "g" {
			gPre = p
		}
	}
	// the paper's running example: insert-first(/a/f/g, <k><l/><m/></k>) —
	// here a two-node variant <k>text</k>
	if _, err := d.InsertFirst(gPre, "k", "ktext"); err != nil {
		t.Fatal(err)
	}
	want := `<a><b><c><d/><e/></c></b><f><g><k>ktext</k></g><h><i/><j/></h></f></a>`
	if got := serializeView(t, d); got != want {
		t.Errorf("after insert:\n got %s\nwant %s", got, want)
	}
	// saturate the document with inserts to force page overflows
	for i := 0; i < 30; i++ {
		v := d.View("v")
		var target int32 = -1
		for p := int32(0); p < int32(v.Len()); p++ {
			if v.Kind[p] == store.KindElem && v.NameOf(p) == "h" {
				target = p
			}
		}
		if _, err := d.InsertFirst(target, "n", ""); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if d.PagesAppended == 0 {
		t.Error("expected page overflows, got none")
	}
	v2 := d.View("v2")
	if err := v2.Validate(); err != nil {
		t.Fatalf("view after overflows invalid: %v", err)
	}
	eng := core.New(core.DefaultConfig())
	eng.LoadContainer("v.xml", v2)
	got, err := eng.QueryString(`count(/a/f/h/n)`)
	if err != nil {
		t.Fatal(err)
	}
	if got != "30" {
		t.Errorf("inserted n count = %s, want 30", got)
	}
}

// TestRandomUpdatesAgainstRebuild applies random structural update
// sequences and verifies after every step that the paged view serializes
// identically to an incrementally maintained DOM (then re-shredded).
func TestRandomUpdatesAgainstRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		c := shred(t, doc)
		d := FromContainer(c, 3, 0.5)
		// the oracle: a naive DOM over the same document
		var ord int64
		dom := naive.FromContainer(c, &ord)
		for step := 0; step < 25; step++ {
			v := d.View("v")
			// collect candidate element pres (skip the root element to
			// keep deletes legal)
			var elems []int32
			for p := int32(0); p < int32(v.Len()); p++ {
				if v.Kind[p] == store.KindElem {
					elems = append(elems, p)
				}
			}
			if len(elems) <= 1 {
				break
			}
			target := elems[1+rng.Intn(len(elems)-1)]
			domTarget := domNodeAt(dom, v, target)
			switch rng.Intn(3) {
			case 0: // insert-first
				name := []string{"x", "y", "z"}[rng.Intn(3)]
				if _, err := d.InsertFirst(target, name, ""); err != nil {
					t.Fatalf("trial %d step %d insert: %v", trial, step, err)
				}
				ord++
				nn := &naive.Node{Kind: store.KindElem, Name: name, Parent: domTarget, Ord: ord}
				domTarget.Children = append([]*naive.Node{nn}, domTarget.Children...)
			case 1: // delete
				if err := d.Delete(target); err != nil {
					t.Fatalf("trial %d step %d delete: %v", trial, step, err)
				}
				removeChild(domTarget.Parent, domTarget)
			case 2: // set attribute
				if err := d.SetAttr(target, "u", "1"); err != nil {
					t.Fatal(err)
				}
				setAttr(domTarget, "u", "1")
			}
			got := serializeView(t, d)
			var sb strings.Builder
			naive.Serialize(&sb, dom)
			if got != sb.String() {
				t.Fatalf("trial %d step %d: paged view diverged\n got %s\nwant %s",
					trial, step, got, sb.String())
			}
		}
	}
}

// domNodeAt finds the DOM node corresponding to view pre p by walking
// both structures in document order.
func domNodeAt(root *naive.Node, v *store.Container, pre int32) *naive.Node {
	var walkV func(p int32, n *naive.Node) *naive.Node
	walkV = func(p int32, n *naive.Node) *naive.Node {
		if p == pre {
			return n
		}
		ci := 0
		end := p + v.Size[p]
		for q := p + 1; q <= end; q += v.Size[q] + 1 {
			if v.Level[q] == store.NullLevel {
				continue
			}
			if r := walkV(q, n.Children[ci]); r != nil {
				return r
			}
			ci++
		}
		return nil
	}
	return walkV(0, root)
}

func removeChild(parent *naive.Node, child *naive.Node) {
	for i, c := range parent.Children {
		if c == child {
			parent.Children = append(parent.Children[:i], parent.Children[i+1:]...)
			return
		}
	}
}

func setAttr(n *naive.Node, name, val string) {
	for i := range n.Attrs {
		if n.Attrs[i].Name == name {
			n.Attrs[i].Val = val
			return
		}
	}
	n.Attrs = append(n.Attrs, naive.Attr{Name: name, Val: val})
}

// TestQueryAfterUpdates runs real XQuery over an updated XMark document.
func TestQueryAfterUpdates(t *testing.T) {
	cont := xmark.NewStoreContainer("auction.xml", 0.001, 5)
	d := FromContainer(cont, 0, 0.75)
	v := d.View("auction.xml")
	eng := core.New(core.DefaultConfig())
	eng.LoadContainer("auction.xml", v)
	before, err := eng.QueryString(`count(/site/open_auctions/open_auction)`)
	if err != nil {
		t.Fatal(err)
	}
	// delete the first open auction
	var target int32 = -1
	for p := int32(0); p < int32(v.Len()); p++ {
		if v.Kind[p] == store.KindElem && v.NameOf(p) == "open_auction" {
			target = p
			break
		}
	}
	if err := d.Delete(target); err != nil {
		t.Fatal(err)
	}
	eng2 := core.New(core.DefaultConfig())
	eng2.LoadContainer("auction.xml", d.View("auction.xml"))
	after, err := eng2.QueryString(`count(/site/open_auctions/open_auction)`)
	if err != nil {
		t.Fatal(err)
	}
	if before == after {
		t.Errorf("delete had no effect: %s == %s", before, after)
	}
}
