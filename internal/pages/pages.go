// Package pages implements the structural update scheme of §5.2: the
// pre|size|level table is replaced by an append-only rid|size|level table
// divided into logical pages, with the pre view reconstructed through a
// page map.
//
//   - pre numbers are swizzled to rids using the high bits as an index
//     into the page map (logical pages are a power-of-two number of
//     tuples);
//   - each logical page keeps a configurable fraction of unused tuples
//     (level = NULL, size = length of the following unused run), so small
//     subtree inserts stay page-local and deletes never shift pre numbers;
//   - larger inserts append one fresh page to the rid table and splice it
//     into the page map, becoming visible "halfway" in the pre view: all
//     positions from the insertion point on shift uniformly by one page,
//     so only the regions spanning the insertion point change size;
//   - ancestor size maintenance applies deltas up the parent chain (the
//     paper's remedy for root-lock contention).
//
// The queryable pre|size|level view is materialized page by page in
// logical order; staircase join skips unused tuples via their size runs.
// In this scheme a node's size counts every tuple slot of its region —
// including unused slack — which preserves all positional skipping
// arithmetic.
package pages

import (
	"fmt"

	"mxq/internal/store"
)

// Doc is an updatable XMark document: an append-only rid table plus the
// logical page map.
type Doc struct {
	pageBits uint    // log2 of the page size in tuples
	pageMap  []int32 // logical page index -> physical page index
	revMap   []int32 // physical page index -> logical page index (lazy)

	// rid-indexed columns (append-only; only non-key cells mutate)
	size   []int32
	level  []int32
	kind   []store.NodeKind
	nameID []int32
	value  []int32
	parent []int32 // parent rid; -1 for the root and unused tuples
	texts  []string

	attrNames map[int32][]int32 // keyed by owner rid
	attrVals  map[int32][]string

	names *store.Names

	// counters for the update benchmarks
	PagesAppended int
	TuplesMoved   int
}

const defaultPageBits = 7 // 128 tuples per logical page

// FromContainer converts a freshly shredded container into the paged
// representation. fill is the used fraction of each logical page (the
// shredder "leaves a certain percentage of tuples unused in each logical
// page", §5.2).
func FromContainer(c *store.Container, pageBits uint, fill float64) *Doc {
	if pageBits == 0 {
		pageBits = defaultPageBits
	}
	if fill <= 0 || fill > 1 {
		fill = 0.75
	}
	d := &Doc{
		pageBits:  pageBits,
		names:     store.NewNames(),
		attrNames: map[int32][]int32{},
		attrVals:  map[int32][]string{},
	}
	pageSize := int32(1) << pageBits
	used := int32(float64(pageSize) * fill)
	if used < 1 {
		used = 1
	}
	n := int32(c.Len())
	ridOf := make([]int32, n)
	rid := int32(0)
	for p := int32(0); p < n; p++ {
		if rid%pageSize == used { // leave the page tail unused
			for rid%pageSize != 0 {
				d.appendUnused()
				rid++
			}
		}
		ridOf[p] = rid
		rid++
		d.size = append(d.size, 0) // fixed below
		d.level = append(d.level, c.Level[p])
		d.kind = append(d.kind, c.Kind[p])
		nm := int32(-1)
		if c.Kind[p] == store.KindElem || c.Kind[p] == store.KindPI {
			nm = d.names.ID(c.NameOf(p))
		}
		d.nameID = append(d.nameID, nm)
		val := int32(-1)
		switch c.Kind[p] {
		case store.KindText, store.KindComment, store.KindPI:
			d.texts = append(d.texts, c.TextOf(p))
			val = int32(len(d.texts) - 1)
		}
		d.value = append(d.value, val)
		d.parent = append(d.parent, -1)
		ac, lo, hi := c.Attrs(p)
		for i := lo; i < hi; i++ {
			r := ridOf[p]
			d.attrNames[r] = append(d.attrNames[r], d.names.ID(ac.Names.Name(ac.AttrName[i])))
			d.attrVals[r] = append(d.attrVals[r], ac.AttrVal[i])
		}
	}
	for rid%pageSize != 0 {
		d.appendUnused()
		rid++
	}
	// Region sizes count every slot between a node and the end of its
	// subtree, including the unused slack that directly follows its last
	// descendant (slack between sibling subtrees belongs to the earlier
	// subtree's region, keeping regions nested and tilings exact).
	for p := n - 1; p >= 0; p-- {
		last := p + c.Size[p]
		end := ridOf[last] + d.slackAfter(ridOf[last])
		d.size[ridOf[p]] = end - ridOf[p]
		if c.Parent[p] >= 0 {
			d.parent[ridOf[p]] = ridOf[c.Parent[p]]
		}
	}
	pages := int(rid) >> pageBits
	d.pageMap = make([]int32, pages)
	for i := range d.pageMap {
		d.pageMap[i] = int32(i)
	}
	d.fixUnusedRuns()
	return d
}

// slackAfter counts the unused tuples directly following rid within its
// physical page.
func (d *Doc) slackAfter(rid int32) int32 {
	pageSize := int32(1) << d.pageBits
	var k int32
	for r := rid + 1; r < int32(len(d.size)) && r%pageSize != 0 && d.level[r] == store.NullLevel; r++ {
		k++
	}
	return k
}

func (d *Doc) appendUnused() {
	d.size = append(d.size, 0)
	d.level = append(d.level, store.NullLevel)
	d.kind = append(d.kind, store.KindUnused)
	d.nameID = append(d.nameID, -1)
	d.value = append(d.value, -1)
	d.parent = append(d.parent, -1)
}

// fixUnusedRuns recomputes the size of unused tuples: the length of the
// directly following unused run in the *pre view*, so staircase join can
// skip a run in one step.
func (d *Doc) fixUnusedRuns() {
	d.fixRunsLocal(0, int32(d.Len())-1)
}

// fixRunsLocal recomputes unused-run sizes in [lo, hi], extending the
// range to whole runs at both ends so updates stay page-local.
func (d *Doc) fixRunsLocal(lo, hi int32) {
	n := int32(d.Len())
	if hi > n-1 {
		hi = n - 1
	}
	if lo < 0 {
		lo = 0
	}
	for hi < n-1 && d.level[d.RidOf(hi+1)] == store.NullLevel {
		hi++
	}
	for lo > 0 && d.level[d.RidOf(lo-1)] == store.NullLevel {
		lo--
	}
	run := int32(0)
	for p := hi; p >= lo; p-- {
		rid := d.RidOf(p)
		if d.level[rid] == store.NullLevel {
			d.size[rid] = run
			run++
		} else {
			run = 0
		}
	}
}

// Len returns the number of tuple slots in the pre view.
func (d *Doc) Len() int { return len(d.pageMap) << d.pageBits }

// PageSize returns the logical page size in tuples.
func (d *Doc) PageSize() int { return 1 << d.pageBits }

// Pages returns the current number of logical pages.
func (d *Doc) Pages() int { return len(d.pageMap) }

// RidOf swizzles a pre number into a rid: the high bits select the
// logical page through the page map, the low bits are the offset.
func (d *Doc) RidOf(pre int32) int32 {
	page := pre >> d.pageBits
	off := pre & ((1 << d.pageBits) - 1)
	return d.pageMap[page]<<d.pageBits | off
}

// PreOf reverse-swizzles a rid into its current pre number via the
// physical→logical page map.
func (d *Doc) PreOf(rid int32) int32 {
	if d.revMap == nil {
		d.rebuildRevMap()
	}
	phys := rid >> d.pageBits
	lp := d.revMap[phys]
	if lp < 0 {
		return -1
	}
	return lp<<d.pageBits | rid&((1<<d.pageBits)-1)
}

func (d *Doc) rebuildRevMap() {
	d.revMap = make([]int32, len(d.pageMap))
	for i := range d.revMap {
		d.revMap[i] = -1
	}
	for lp, pp := range d.pageMap {
		d.revMap[pp] = int32(lp)
	}
}

// Kind returns the node kind at a pre position.
func (d *Doc) Kind(pre int32) store.NodeKind { return d.kind[d.RidOf(pre)] }

// Size returns the region size at a pre position.
func (d *Doc) Size(pre int32) int32 { return d.size[d.RidOf(pre)] }

// View materializes the current pre|size|level view as a container
// (pages in logical order), ready for querying with the regular engine.
func (d *Doc) View(name string) *store.Container {
	c := store.NewContainer(name)
	n := int32(d.Len())
	ridToPre := make([]int32, len(d.size))
	for pre := int32(0); pre < n; pre++ {
		ridToPre[d.RidOf(pre)] = pre
	}
	for pre := int32(0); pre < n; pre++ {
		rid := d.RidOf(pre)
		c.Size = append(c.Size, d.size[rid])
		c.Level = append(c.Level, d.level[rid])
		c.Kind = append(c.Kind, d.kind[rid])
		c.Frag = append(c.Frag, 0)
		if d.level[rid] == store.NullLevel {
			c.Parent = append(c.Parent, -1)
			c.NameID = append(c.NameID, -1)
			c.Value = append(c.Value, -1)
			continue
		}
		par := int32(-1)
		if d.parent[rid] >= 0 {
			par = ridToPre[d.parent[rid]]
		}
		c.Parent = append(c.Parent, par)
		nm := int32(-1)
		if d.nameID[rid] >= 0 {
			nm = c.Names.ID(d.names.Name(d.nameID[rid]))
		}
		c.NameID = append(c.NameID, nm)
		val := int32(-1)
		if d.value[rid] >= 0 {
			c.Texts = append(c.Texts, d.texts[d.value[rid]])
			val = int32(len(c.Texts) - 1)
		}
		c.Value = append(c.Value, val)
	}
	for pre := int32(0); pre < n; pre++ {
		rid := d.RidOf(pre)
		for i, an := range d.attrNames[rid] {
			c.AttrOwner = append(c.AttrOwner, pre)
			c.AttrName = append(c.AttrName, c.Names.ID(d.names.Name(an)))
			c.AttrVal = append(c.AttrVal, d.attrVals[rid][i])
		}
	}
	c.RebuildAttrIndex()
	return c
}

// --- value updates --------------------------------------------------------

// ReplaceText replaces the content of a text, comment or PI node: a pure
// value update — one cell changes, nothing shifts.
func (d *Doc) ReplaceText(pre int32, s string) error {
	rid := d.RidOf(pre)
	switch d.kind[rid] {
	case store.KindText, store.KindComment, store.KindPI:
		d.texts = append(d.texts, s)
		d.value[rid] = int32(len(d.texts) - 1)
		return nil
	}
	return fmt.Errorf("pages: node %d is not a text-valued node", pre)
}

// SetAttr sets (or adds) an attribute of an element node.
func (d *Doc) SetAttr(pre int32, name, val string) error {
	rid := d.RidOf(pre)
	if d.kind[rid] != store.KindElem {
		return fmt.Errorf("pages: node %d is not an element", pre)
	}
	id := d.names.ID(name)
	for i, an := range d.attrNames[rid] {
		if an == id {
			d.attrVals[rid][i] = val
			return nil
		}
	}
	d.attrNames[rid] = append(d.attrNames[rid], id)
	d.attrVals[rid] = append(d.attrVals[rid], val)
	return nil
}

// --- structural updates -----------------------------------------------------

// Delete blanks the subtree rooted at pre: its tuples become unused in
// place, so no pre numbers shift and no ancestor sizes change (the
// regions keep covering the blanked slots).
func (d *Doc) Delete(pre int32) error {
	rid := d.RidOf(pre)
	if d.level[rid] == store.NullLevel {
		return fmt.Errorf("pages: node %d is already unused", pre)
	}
	if d.parent[rid] < 0 {
		return fmt.Errorf("pages: cannot delete the document root")
	}
	end := pre + d.size[rid]
	for p := pre; p <= end; p++ {
		r := d.RidOf(p)
		d.level[r] = store.NullLevel
		d.kind[r] = store.KindUnused
		d.nameID[r] = -1
		d.value[r] = -1
		d.parent[r] = -1
		delete(d.attrNames, r)
		delete(d.attrVals, r)
	}
	d.fixRunsLocal(pre, end)
	return nil
}

// InsertFirst inserts a new element (optionally holding one text node) as
// the first child of parentPre and returns its pre position.
func (d *Doc) InsertFirst(parentPre int32, name, text string) (int32, error) {
	return d.insertAt(parentPre, parentPre+1, name, text)
}

// InsertAfter inserts a new element as the immediately following sibling
// of pre and returns its position.
func (d *Doc) InsertAfter(pre int32, name, text string) (int32, error) {
	rid := d.RidOf(pre)
	if d.parent[rid] < 0 {
		return 0, fmt.Errorf("pages: node %d has no parent", pre)
	}
	parentPre := d.PreOf(d.parent[rid])
	return d.insertAt(parentPre, pre+d.size[rid]+1, name, text)
}

// insertAt writes a new element subtree at pre position `at` under the
// given parent. If `at` has enough unused slack, the insert is in-place;
// otherwise one fresh logical page is spliced in at the insertion point
// (the overflow path).
func (d *Doc) insertAt(parentPre, at int32, name, text string) (int32, error) {
	need := int32(1)
	if text != "" {
		need = 2
	}
	prid := d.RidOf(parentPre)
	if d.kind[prid] != store.KindElem && d.kind[prid] != store.KindDoc {
		return 0, fmt.Errorf("pages: insert target %d is not an element", parentPre)
	}
	if !d.hasSlack(at, need) {
		d.splicePage(at)
	}
	// write the new tuples into the (now guaranteed) free slots
	rid := d.RidOf(at)
	lvl := d.levelOfRid(prid) + 1
	d.level[rid] = lvl
	d.kind[rid] = store.KindElem
	d.nameID[rid] = d.names.ID(name)
	d.value[rid] = -1
	d.parent[rid] = prid
	d.size[rid] = need - 1
	if text != "" {
		trid := d.RidOf(at + 1)
		d.texts = append(d.texts, text)
		d.level[trid] = lvl + 1
		d.kind[trid] = store.KindText
		d.nameID[trid] = -1
		d.value[trid] = int32(len(d.texts) - 1)
		d.parent[trid] = rid
		d.size[trid] = 0
	}
	// ancestor size maintenance (deltas up the parent chain): grow
	// regions that end before the inserted subtree
	wantEnd := at + need - 1
	for r := prid; r >= 0; r = d.parent[r] {
		pre := d.PreOf(r)
		end := pre + d.size[r]
		if end >= wantEnd {
			break // nesting: every higher ancestor covers too
		}
		d.size[r] += wantEnd - end
	}
	d.fixRunsLocal(at, at+int32(d.PageSize())*2)
	return at, nil
}

func (d *Doc) levelOfRid(rid int32) int32 { return d.level[rid] }

// hasSlack reports whether `need` unused slots are available at pre
// position `at` (contiguous in the pre view).
func (d *Doc) hasSlack(at, need int32) bool {
	if at+need > int32(d.Len()) {
		return false
	}
	for k := int32(0); k < need; k++ {
		if d.level[d.RidOf(at+k)] != store.NullLevel {
			return false
		}
	}
	return true
}

// splicePage appends one fresh physical page and splices it into the page
// map right after the page holding position `at`. The used tuples at
// offsets ≥ at's offset move to the same offsets of the new page, so
// every pre position ≥ at shifts uniformly by one page size; the region
// sizes of exactly those nodes whose regions span position `at` grow by
// one page size.
func (d *Doc) splicePage(at int32) {
	pageSize := int32(1) << d.pageBits
	// collect the nodes whose regions span `at` (the ancestor chain of
	// the insertion point), using pre positions of the old view
	var grow []int32
	for r := d.ancestorAt(at); r >= 0; r = d.parent[r] {
		pre := d.PreOf(r)
		if pre < at && pre+d.size[r] >= at {
			grow = append(grow, r)
		}
	}
	// append the fresh page and move the page tail
	newPhys := int32(len(d.size)) >> d.pageBits
	for i := int32(0); i < pageSize; i++ {
		d.appendUnused()
	}
	d.PagesAppended++
	curPage := at >> d.pageBits
	off := at & (pageSize - 1)
	oldPhys := d.pageMap[curPage]
	moved := make(map[int32]int32) // src rid -> dst rid
	for i := off; i < pageSize; i++ {
		src := oldPhys<<d.pageBits | i
		if d.level[src] == store.NullLevel {
			continue
		}
		dst := newPhys<<d.pageBits | i
		d.moveTuple(src, dst)
		moved[src] = dst
		d.TuplesMoved++
	}
	// one pass fixes the parent pointers of the moved tuples' children
	if len(moved) > 0 {
		for r := range d.parent {
			if dst, ok := moved[d.parent[r]]; ok {
				d.parent[r] = dst
			}
		}
	}
	// splice the new page after the current one
	lp := int(curPage) + 1
	d.pageMap = append(d.pageMap, 0)
	copy(d.pageMap[lp+1:], d.pageMap[lp:])
	d.pageMap[lp] = newPhys
	d.rebuildRevMap()
	for _, r := range grow {
		d.size[r] += pageSize
	}
}

// ancestorAt returns the rid of the deepest real node at or before
// position `at` whose parent chain can span it: the parent of the slot's
// neighborhood. We walk backwards to the nearest real tuple and take it
// (or its parent chain) as the chain seed.
func (d *Doc) ancestorAt(at int32) int32 {
	for p := at - 1; p >= 0; p-- {
		rid := d.RidOf(p)
		if d.level[rid] != store.NullLevel {
			return rid
		}
	}
	return -1
}

// moveTuple relocates one tuple to a fresh rid; the caller remaps the
// children's parent pointers in one pass afterwards.
func (d *Doc) moveTuple(src, dst int32) {
	d.size[dst] = d.size[src]
	d.level[dst] = d.level[src]
	d.kind[dst] = d.kind[src]
	d.nameID[dst] = d.nameID[src]
	d.value[dst] = d.value[src]
	d.parent[dst] = d.parent[src]
	if a, ok := d.attrNames[src]; ok {
		d.attrNames[dst] = a
		d.attrVals[dst] = d.attrVals[src]
		delete(d.attrNames, src)
		delete(d.attrVals, src)
	}
	d.size[src] = 0
	d.level[src] = store.NullLevel
	d.kind[src] = store.KindUnused
	d.nameID[src] = -1
	d.value[src] = -1
	d.parent[src] = -1
}
