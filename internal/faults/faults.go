// Package faults is the deterministic fault-injection registry behind
// the chaos suite: a fixed catalog of named injection points (Sites)
// threaded through the layers whose failure paths must stay clean —
// the store snapshot, every ralg operator boundary, the staircase-join
// fork-join workers, scheduler admission/release, and response
// streaming in the serving layer.
//
// Disabled — the production state — a site check is one atomic load
// (Armed) and nothing else, so the instrumented hot paths pay no
// measurable cost. Tests arm sites with Enable/Set; the mxqd daemon
// honors the MXQ_FAULTS environment variable via SetFromEnv with the
// same spec grammar:
//
//	MXQ_FAULTS=site:prob:seed[:mode][,site:prob:seed[:mode]...]
//
// where site is a registered name (or "*" for every site), prob is the
// firing probability in [0, 1], seed drives the per-site deterministic
// PRNG, and mode is one of "error" (default — the site returns an
// *Injected error), "panic" (the site panics with that error, so panic
// containment at the execution boundary is exercised), or "cancel"
// (the site returns an error wrapping context.Canceled).
//
// Firing is deterministic per (site, seed): the k-th check of a site
// fires iff a splitmix64 stream seeded by the spec says so. On serial
// code paths a given seed therefore replays the exact same failures;
// under concurrency the trial order — but not the total fire count per
// N trials — depends on scheduling.
package faults

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Mode selects what a firing site does.
type Mode uint8

// Firing modes.
const (
	ModeError  Mode = iota // return an *Injected error
	ModePanic              // panic with the *Injected error
	ModeCancel             // return an error wrapping context.Canceled
)

// Injected is the error a firing site produces (directly, wrapped, or
// as a panic value). Classify with errors.As or IsInjected.
type Injected struct {
	Site  string // the site that fired
	Trial uint64 // 1-based check count at which it fired
}

func (e *Injected) Error() string {
	return fmt.Sprintf("faults: injected failure at %s (trial %d)", e.Site, e.Trial)
}

// IsInjected reports whether err is (or wraps) an injected fault.
func IsInjected(err error) bool {
	var i *Injected
	return errors.As(err, &i)
}

// siteCfg is one site's armed configuration (immutable once published).
type siteCfg struct {
	prob uint64 // firing threshold out of probDenom
	seed uint64
	mode Mode
}

const probDenom = 1 << 30

// Site is one registered injection point. Call Err at the point the
// fault should strike; it returns nil unless the registry is armed and
// the site's deterministic stream fires.
type Site struct {
	name string
	n    atomic.Uint64
	cfg  atomic.Pointer[siteCfg]
}

// Name returns the site's registered name.
func (s *Site) Name() string { return s.name }

// Err checks the site: nil when faults are disarmed or the stream does
// not fire. A firing site returns an *Injected error (ModeError), an
// error wrapping context.Canceled (ModeCancel), or panics with the
// *Injected error (ModePanic). The disarmed fast path is one atomic
// load.
func (s *Site) Err() error {
	if !armed.Load() {
		return nil
	}
	return s.slow()
}

func (s *Site) slow() error {
	c := s.cfg.Load()
	if c == nil || c.prob == 0 {
		return nil
	}
	n := s.n.Add(1)
	if splitmix64(c.seed+n)&(probDenom-1) >= c.prob {
		return nil
	}
	err := &Injected{Site: s.name, Trial: n}
	switch c.mode {
	case ModePanic:
		panic(err)
	case ModeCancel:
		return fmt.Errorf("%w: %w", err, context.Canceled)
	}
	return err
}

// splitmix64 is the SplitMix64 mixing function: a bijective avalanche
// over the trial counter, so consecutive trials decorrelate fully.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// The registry: a fixed catalog, populated at init so Sites is stable.
var (
	armed    atomic.Bool
	regMu    sync.Mutex
	registry = map[string]*Site{}
)

func register(name string) *Site {
	s := &Site{name: name}
	registry[name] = s
	return s
}

// The fault-point catalog (docs/robustness.md documents each wiring).
var (
	StoreSnapshot = register("store.snapshot") // Pool.Snapshot, the per-execution document snapshot
	RalgOp        = register("ralg.op")        // Exec.Run, before every operator application
	SCJFork       = register("scj.fork")       // staircase-join fork-join worker bodies
	SchedAdmit    = register("sched.admit")    // Scheduler.Admit, before granting a slot
	SchedRelease  = register("sched.release")  // Grant.Release, after returning the slot
	ServeStream   = register("serve.stream")   // response-body writes while streaming a result
)

// Sites returns the registered site names, sorted.
func Sites() []string {
	regMu.Lock()
	defer regMu.Unlock()
	return siteNamesLocked()
}

func siteNamesLocked() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Armed reports whether any site is enabled.
func Armed() bool { return armed.Load() }

// Enable arms one site (or every site, name "*") with the given firing
// probability, seed and mode, resetting its trial counter. It is the
// programmatic test hook behind Set.
func Enable(name string, prob float64, seed uint64, mode Mode) error {
	if prob < 0 || prob > 1 {
		return fmt.Errorf("faults: probability %g outside [0, 1]", prob)
	}
	cfg := &siteCfg{prob: uint64(prob * probDenom), seed: seed, mode: mode}
	if prob >= 1 {
		cfg.prob = probDenom // the masked draw is < probDenom, so this always fires
	}
	regMu.Lock()
	defer regMu.Unlock()
	if name == "*" {
		for _, s := range registry {
			s.n.Store(0)
			s.cfg.Store(cfg)
		}
	} else {
		s, ok := registry[name]
		if !ok {
			return fmt.Errorf("faults: unknown site %q (have %s)", name, strings.Join(siteNamesLocked(), ", "))
		}
		s.n.Store(0)
		s.cfg.Store(cfg)
	}
	armed.Store(true)
	return nil
}

// Reset disarms every site and clears its configuration and counter.
func Reset() {
	armed.Store(false)
	regMu.Lock()
	defer regMu.Unlock()
	for _, s := range registry {
		s.cfg.Store(nil)
		s.n.Store(0)
	}
}

// Set parses and applies a spec: comma-separated
// site:prob:seed[:mode] entries (see the package comment). An empty
// spec is a no-op. On a parse error nothing is armed.
func Set(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	type entry struct {
		name string
		prob float64
		seed uint64
		mode Mode
	}
	var entries []entry
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 3 || len(fields) > 4 {
			return fmt.Errorf("faults: bad spec entry %q (want site:prob:seed[:mode])", part)
		}
		prob, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return fmt.Errorf("faults: bad probability in %q: %v", part, err)
		}
		seed, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return fmt.Errorf("faults: bad seed in %q: %v", part, err)
		}
		mode := ModeError
		if len(fields) == 4 {
			switch fields[3] {
			case "error":
				mode = ModeError
			case "panic":
				mode = ModePanic
			case "cancel":
				mode = ModeCancel
			default:
				return fmt.Errorf("faults: bad mode %q in %q (want error, panic or cancel)", fields[3], part)
			}
		}
		if fields[0] != "*" {
			regMu.Lock()
			_, ok := registry[fields[0]]
			regMu.Unlock()
			if !ok {
				return fmt.Errorf("faults: unknown site %q (have %s)", fields[0], strings.Join(Sites(), ", "))
			}
		}
		entries = append(entries, entry{fields[0], prob, seed, mode})
	}
	for _, e := range entries {
		if err := Enable(e.name, e.prob, e.seed, e.mode); err != nil {
			return err
		}
	}
	return nil
}

// SetFromEnv applies the MXQ_FAULTS environment variable (empty = off).
func SetFromEnv() error { return Set(os.Getenv("MXQ_FAULTS")) }
