package faults

import (
	"context"
	"errors"
	"testing"
)

// drain checks the site n times and returns the trials that fired.
func drain(t *testing.T, s *Site, n int) []uint64 {
	t.Helper()
	var fired []uint64
	for i := 0; i < n; i++ {
		if err := s.Err(); err != nil {
			var inj *Injected
			if !errors.As(err, &inj) {
				t.Fatalf("trial %d: error %v is not *Injected", i+1, err)
			}
			fired = append(fired, inj.Trial)
		}
	}
	return fired
}

func TestDisarmedIsNil(t *testing.T) {
	Reset()
	for i := 0; i < 1000; i++ {
		if err := RalgOp.Err(); err != nil {
			t.Fatalf("disarmed site fired: %v", err)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	defer Reset()
	if err := Enable("ralg.op", 0.1, 42, ModeError); err != nil {
		t.Fatal(err)
	}
	first := drain(t, RalgOp, 10000)
	if len(first) == 0 {
		t.Fatal("probability 0.1 over 10000 trials never fired")
	}
	// Re-arming with the same spec resets the counter: identical stream.
	if err := Enable("ralg.op", 0.1, 42, ModeError); err != nil {
		t.Fatal(err)
	}
	second := drain(t, RalgOp, 10000)
	if len(first) != len(second) {
		t.Fatalf("replay fired %d times, first run %d", len(second), len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at firing %d: trial %d vs %d", i, first[i], second[i])
		}
	}
	// A different seed gives a different stream (overwhelmingly likely
	// over 10000 trials at p=0.1).
	if err := Enable("ralg.op", 0.1, 43, ModeError); err != nil {
		t.Fatal(err)
	}
	third := drain(t, RalgOp, 10000)
	same := len(third) == len(first)
	if same {
		for i := range first {
			if first[i] != third[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical firing streams")
	}
}

func TestProbabilityBounds(t *testing.T) {
	defer Reset()
	if err := Enable("ralg.op", 1, 7, ModeError); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if RalgOp.Err() == nil {
			t.Fatalf("probability 1 did not fire on trial %d", i+1)
		}
	}
	if err := Enable("ralg.op", 0, 7, ModeError); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := RalgOp.Err(); err != nil {
			t.Fatalf("probability 0 fired: %v", err)
		}
	}
	if err := Enable("ralg.op", 1.5, 7, ModeError); err == nil {
		t.Fatal("probability 1.5 accepted")
	}
}

func TestModes(t *testing.T) {
	defer Reset()
	if err := Enable("sched.admit", 1, 1, ModeCancel); err != nil {
		t.Fatal(err)
	}
	err := SchedAdmit.Err()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel mode: %v does not wrap context.Canceled", err)
	}
	if !IsInjected(err) {
		t.Fatalf("cancel mode error %v not classified as injected", err)
	}

	if err := Enable("scj.fork", 1, 1, ModePanic); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("panic mode did not panic")
			}
			if inj, ok := r.(*Injected); !ok || inj.Site != "scj.fork" {
				t.Fatalf("panic value %v is not the *Injected for scj.fork", r)
			}
		}()
		SCJFork.Err()
	}()
}

func TestSetSpecGrammar(t *testing.T) {
	defer Reset()
	if err := Set("ralg.op:0.5:99:panic, serve.stream:0.25:7"); err != nil {
		t.Fatal(err)
	}
	if !Armed() {
		t.Fatal("Set did not arm")
	}
	if RalgOp.cfg.Load() == nil || ServeStream.cfg.Load() == nil {
		t.Fatal("Set did not configure the named sites")
	}
	if SchedAdmit.cfg.Load() != nil {
		t.Fatal("Set configured an unnamed site")
	}
	Reset()
	if err := Set("*:0.5:99"); err != nil {
		t.Fatal(err)
	}
	for _, name := range Sites() {
		regMu.Lock()
		s := registry[name]
		regMu.Unlock()
		if s.cfg.Load() == nil {
			t.Fatalf("wildcard Set left %s unconfigured", name)
		}
	}
	Reset()
	for _, bad := range []string{
		"ralg.op:0.5",           // missing seed
		"nosuch.site:0.5:1",     // unknown site
		"ralg.op:x:1",           // bad probability
		"ralg.op:0.5:x",         // bad seed
		"ralg.op:0.5:1:explode", // bad mode
	} {
		if err := Set(bad); err == nil {
			t.Fatalf("Set(%q) accepted", bad)
		}
		if Armed() {
			t.Fatalf("Set(%q) armed despite the error", bad)
		}
	}
	if err := Set(""); err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	if Armed() {
		t.Fatal("empty spec armed")
	}
}

func TestSitesCatalog(t *testing.T) {
	want := []string{"ralg.op", "sched.admit", "sched.release", "scj.fork", "serve.stream", "store.snapshot"}
	got := Sites()
	if len(got) != len(want) {
		t.Fatalf("Sites() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sites() = %v, want %v", got, want)
		}
	}
}
