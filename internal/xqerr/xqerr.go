// Package xqerr defines the typed XQuery error of the engine: a W3C
// error code (XPST0008, XPDY0002, FODC0002, …) plus a human-readable
// message. Every layer that mints a spec error — the parser, the
// compiler, the executor, the naive oracle, the prepared-statement
// validator — constructs it through Newf, so callers classify errors
// with errors.As instead of string-sniffing, while Error() keeps the
// exact "xquery error CODE: message" text the differential and
// conformance suites compare.
package xqerr

import (
	"errors"
	"fmt"
)

// CodeResourceLimit is the W3C code for "implementation-defined
// resource limit exceeded" — the dynamic error a query gets when it
// runs past its memory budget or an intermediate-result cap. It is a
// dynamic (XPDY) code on purpose: the same query may succeed under a
// larger budget, so servers must treat it as per-execution overload
// (503), not as a defect in the query (400) or the engine (500).
const CodeResourceLimit = "XPDY0130"

// Error is a typed XQuery error. The zero Code means "no W3C code"; the
// minting sites always set one.
type Error struct {
	// Code is the W3C error code, e.g. "XPST0008".
	Code string
	// Message is the human-readable description (without the
	// "xquery error CODE:" prefix).
	Message string
}

// Error renders the wire-stable error text shared by every engine.
func (e *Error) Error() string { return "xquery error " + e.Code + ": " + e.Message }

// Static reports whether the code names a static (compile-time) error:
// the XPST and XQST classes. Everything else — dynamic errors (XPDY,
// FO*, XQTY) — is raised at execution time. Servers use this to
// distinguish "the query can never run" from "this execution failed".
func (e *Error) Static() bool {
	return len(e.Code) >= 4 && (e.Code[:4] == "XPST" || e.Code[:4] == "XQST")
}

// Newf mints a typed XQuery error with the given W3C code.
func Newf(code, format string, args ...any) error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// IsResourceLimit reports whether err is (or wraps) the typed
// resource-exhausted error.
func IsResourceLimit(err error) bool {
	var e *Error
	return errors.As(err, &e) && e.Code == CodeResourceLimit
}
