package xqerr

import (
	"errors"
	"fmt"
	"testing"
)

func TestNewfMintsTypedError(t *testing.T) {
	err := Newf("XPDY0002", "context item undefined in %s", "step")
	var e *Error
	if !errors.As(err, &e) {
		t.Fatalf("Newf result is not an *Error: %T", err)
	}
	if e.Code != "XPDY0002" {
		t.Errorf("Code = %q, want XPDY0002", e.Code)
	}
	if got, want := e.Error(), "xquery error XPDY0002: context item undefined in step"; got != want {
		t.Errorf("Error() = %q, want %q", got, want)
	}
}

// The typed error must survive fmt.Errorf %w wrapping — that is the
// whole point of minting it as a type instead of a string.
func TestErrorSurvivesWrapping(t *testing.T) {
	inner := Newf("FORG0001", "cannot cast %q to xs:double", "abc")
	wrapped := fmt.Errorf("executing query: %w", fmt.Errorf("operator fun: %w", inner))
	var e *Error
	if !errors.As(wrapped, &e) {
		t.Fatalf("errors.As failed through two wrap layers: %v", wrapped)
	}
	if e.Code != "FORG0001" {
		t.Errorf("Code = %q, want FORG0001", e.Code)
	}
	if !errors.Is(wrapped, inner) {
		t.Error("errors.Is(wrapped, inner) = false")
	}
}

// Static classifies by code class: XPST/XQST are compile-time, the
// dynamic and function-library classes are not.
func TestStaticClassification(t *testing.T) {
	cases := map[string]bool{
		"XPST0008": true,  // undefined name
		"XQST0039": true,  // duplicate parameter
		"XPST0003": true,  // grammar
		"XPDY0002": false, // dynamic context
		"XPTY0004": false, // type error at runtime
		"FORG0001": false, // cast failure
		"FOAR0001": false, // division by zero
		"XQTY0024": false, // content type
		"":         false, // zero code
		"XPS":      false, // too short to classify
	}
	for code, want := range cases {
		e := &Error{Code: code, Message: "m"}
		if got := e.Static(); got != want {
			t.Errorf("Static(%q) = %v, want %v", code, got, want)
		}
	}
}

// Distinct codes are distinct errors under errors.Is, even with the
// same message: identity is by pointer, classification by errors.As.
func TestDistinctErrorsNotIs(t *testing.T) {
	a := Newf("XPDY0002", "m")
	b := Newf("XPST0008", "m")
	if errors.Is(a, b) {
		t.Error("errors distinguishable only by code compare as Is-equal")
	}
}
