package opt

import "mxq/internal/ralg"

// Rule names one rewrite of the peephole optimizer. Every plan mutation
// rewriteNode performs is attributed to exactly one Rule: the name is
// what the translation-validation layer (internal/optcheck) reports
// when a step fails its equivalence check, and what the rule-coverage
// report counts. The rulecheck analyzer (internal/lint) enforces that
// no rewriteNode case mutates a plan without firing a rule.
type Rule string

// The registered rewrite rules of §4.1.
const (
	// RuleSortDropCovered removes a sort whose ordering the input is
	// already known to satisfy (ord covers the sort columns).
	RuleSortDropCovered Rule = "sort.drop-covered"
	// RuleSortStableOneCol reduces a two-column sort to a stable
	// one-column sort when grpord(By[1:], By[0]) holds: rows with equal
	// primary keys keep their input order, which is already sorted on
	// the secondary columns.
	RuleSortStableOneCol Rule = "sort.stable-one-col"
	// RuleSortRefinePrefix turns a full sort into a refine sort: the
	// input is sorted on a prefix of the sort columns, so only runs of
	// equal prefix values are re-sorted.
	RuleSortRefinePrefix Rule = "sort.refine-prefix"
	// RuleRankSeq runs ρ as sequential per-group 1..N numbering on an
	// input already sorted on (Part, OrderBy...).
	RuleRankSeq Rule = "rownum.seq"
	// RuleRankStream runs ρ as streaming hash-based per-group counters
	// when grpord(OrderBy, Part) holds (the paper's called-out case).
	RuleRankStream Rule = "rownum.stream"
	// RuleJoinPosRight looks join partners up positionally in the right
	// input via its dense (autoincrement) key column.
	RuleJoinPosRight Rule = "join.pos-right"
	// RuleJoinPosLeft probes the left input positionally via its dense
	// unique key; valid because the right input is sorted on its key, so
	// left-major output order is preserved.
	RuleJoinPosLeft Rule = "join.pos-left"
	// RuleDistinctMerge eliminates duplicates in one merge pass over an
	// input sorted on the By columns.
	RuleDistinctMerge Rule = "distinct.merge"
)

// RuleInfo describes one registered rule for coverage reports and docs.
type RuleInfo struct {
	Rule Rule
	// Op is the operator class the rule rewrites.
	Op string
	// Doc is a one-line description of the rewrite.
	Doc string
}

// Rules enumerates the registered rewrite rules in stable (reporting)
// order. Adding a rewrite to rewriteNode requires registering it here:
// the optcheck coverage test asserts every registered rule fires on the
// corpus, and rulecheck asserts every rewriteNode case attributes its
// mutations to a rule.
func Rules() []RuleInfo {
	return []RuleInfo{
		{RuleSortDropCovered, "sort", "drop a sort the input order already satisfies"},
		{RuleSortStableOneCol, "sort", "two-column sort to stable one-column sort under grpord"},
		{RuleSortRefinePrefix, "sort", "full sort to refine sort over a sorted prefix"},
		{RuleRankSeq, "rownum", "rank by sequential numbering of a (part, order)-sorted input"},
		{RuleRankStream, "rownum", "rank by streaming per-group counters under grpord"},
		{RuleJoinPosRight, "join", "positional lookup into the dense right key"},
		{RuleJoinPosLeft, "join", "positional probe of the dense unique left key"},
		{RuleDistinctMerge, "distinct", "merge duplicate elimination over a sorted input"},
	}
}

// RewriteStep is the witness of one fired rewrite: deep copies of the
// rewritten node before and after the mutation, both wired to the same
// copied input subplans. The copies are insulated from later optimizer
// mutations. Ins carries Before's direct inputs so a validator can
// substitute synthesized literal tables for them; the After of a
// dropped operator (sort.drop-covered) is Ins[0] itself.
type RewriteStep struct {
	Rule   Rule
	Before ralg.Plan
	After  ralg.Plan
	Ins    []ralg.Plan
}

// OptimizeTraced is Optimize with a rewrite-witness hook: trace is
// invoked once per fired rule, in firing (inputs-first) order, with
// deep-copied before/after subplans. A nil trace is exactly Optimize —
// tracing off costs a single nil check per rewrite site.
func OptimizeTraced(p ralg.Plan, trace func(RewriteStep)) ralg.Plan {
	o := &optimizer{
		done:  map[ralg.Plan]ralg.Plan{},
		props: map[ralg.Plan]*props{},
		trace: trace,
	}
	return o.rewrite(p)
}

// snap captures the pre-rewrite deep copy of n. The returned copier's
// memo holds the copied input subtrees, so fired can wire the after
// copy to the same input copies. Both returns are nil when tracing is
// off.
func (o *optimizer) snap(n ralg.Plan) (ralg.Plan, *ralg.Copier) {
	if o.trace == nil {
		return nil, nil
	}
	c := ralg.NewCopier()
	return c.CopyNode(n), c
}

// fired emits the witness of one rule application: before is the snap
// copy, after the post-mutation node (or the input the rewrite returned
// in its place). No-op when tracing is off.
func (o *optimizer) fired(rule Rule, before ralg.Plan, c *ralg.Copier, after ralg.Plan) {
	if o.trace == nil {
		return
	}
	o.trace(RewriteStep{Rule: rule, Before: before, After: c.Copy(after), Ins: before.Inputs()})
}
