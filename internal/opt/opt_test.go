package opt

import (
	"testing"

	"mxq/internal/ralg"
)

func litTable(vals ...int64) *ralg.Table {
	t := ralg.NewTable([]string{"iter"}, []ralg.ColKind{ralg.KInt})
	t.N = len(vals)
	t.Col("iter").Int = vals
	return t
}

func TestLitProps(t *testing.T) {
	pr := newProps()
	litProps(litTable(1, 2, 3), pr)
	if !pr.dense["iter"] || !pr.key["iter"] || !pr.covers([]string{"iter"}) {
		t.Errorf("dense lit: %+v", pr)
	}
	pr = newProps()
	litProps(litTable(1, 1, 3), pr)
	if pr.dense["iter"] || pr.key["iter"] {
		t.Error("non-dense lit misclassified")
	}
	if !pr.covers([]string{"iter"}) {
		t.Error("sorted lit not covered")
	}
	pr = newProps()
	litProps(litTable(3, 1), pr)
	if pr.covers([]string{"iter"}) {
		t.Error("unsorted lit claimed sorted")
	}
}

func TestCoversKeyCut(t *testing.T) {
	pr := newProps()
	pr.ords = [][]string{{"a"}}
	pr.key["a"] = true
	if !pr.covers([]string{"a", "b", "c"}) {
		t.Error("unique prefix must cover any suffix")
	}
	pr2 := newProps()
	pr2.ords = [][]string{{"a"}}
	if pr2.covers([]string{"a", "b"}) {
		t.Error("non-unique prefix must not cover suffixes")
	}
}

func TestCoversSkipsConsts(t *testing.T) {
	pr := newProps()
	pr.ords = [][]string{{"a"}}
	pr.cnst["c"] = true
	if !pr.covers([]string{"c", "a"}) || !pr.covers([]string{"a", "c"}) {
		t.Error("constant columns must be transparent to orderings")
	}
}

func TestGrpCoveredByGlobalOrder(t *testing.T) {
	pr := newProps()
	pr.ords = [][]string{{"x"}}
	if !pr.grpCovered([]string{"x"}, "anygroup") {
		t.Error("global order implies every group order")
	}
}

func TestExpandOrds(t *testing.T) {
	pr := newProps()
	pr.ords = [][]string{{"iter"}}
	pr.grps = []grpOrd{{cols: []string{"pos"}, g: "iter"}}
	pr.expandOrds()
	if !pr.covers([]string{"iter", "pos"}) {
		t.Error("ord[iter] + grpord([pos],iter) must imply ord[iter,pos]")
	}
}

func TestSortElision(t *testing.T) {
	in := &ralg.Lit{Tab: litTable(1, 2, 3)}
	s := ralg.NewSort(in, "iter")
	out := Optimize(s)
	if out != in {
		t.Errorf("sort over sorted input not elided: %T", out)
	}
}

func TestRowNumModeSelection(t *testing.T) {
	in := &ralg.Lit{Tab: litTable(1, 2, 3)}
	rn := ralg.NewRowNum(in, "r", []string{"iter"}, "")
	Optimize(rn)
	if rn.Mode != ralg.RankSeq {
		t.Errorf("RowNum over sorted input: mode %d, want RankSeq", rn.Mode)
	}
	// descending keys force the sorting implementation
	rn2 := ralg.NewRowNum(&ralg.Lit{Tab: litTable(1, 2, 3)}, "r", []string{"iter"}, "")
	rn2.Desc = []bool{true}
	Optimize(rn2)
	if rn2.Mode != ralg.RankSort {
		t.Errorf("descending RowNum: mode %d, want RankSort", rn2.Mode)
	}
}

func TestPositionalJoinModes(t *testing.T) {
	dense := &ralg.Lit{Tab: litTable(1, 2, 3)}
	other := func() *ralg.Lit {
		tab := ralg.NewTable([]string{"k"}, []ralg.ColKind{ralg.KInt})
		tab.N = 3
		tab.Col("k").Int = []int64{2, 2, 3}
		return &ralg.Lit{Tab: tab}
	}
	j := ralg.NewHashJoin(other(), dense, "k", "iter", ralg.Refs("k"), ralg.Refs("iter"))
	Optimize(j)
	if !j.Pos {
		t.Error("dense right key must select the positional join")
	}
	j2 := ralg.NewHashJoin(dense, other(), "iter", "k", ralg.Refs("iter"), ralg.Refs("k"))
	Optimize(j2)
	if !j2.PosLeft {
		t.Error("dense unique left key with sorted right input must select PosLeft")
	}
}

func TestDistinctMergeMode(t *testing.T) {
	d := &ralg.Distinct{By: []string{"iter"}}
	d.SetInput(0, &ralg.Lit{Tab: litTable(1, 1, 2)})
	Optimize(d)
	if !d.Merge {
		t.Error("distinct over sorted input must use merge mode")
	}
}

func TestSortGrpordRewrite(t *testing.T) {
	// input sorted by item with grpord([iter? no: construct directly
	in := &ralg.Lit{Tab: litTable(1, 2, 3)}
	rn := ralg.NewRowNum(in, "pos", nil, "iter")
	rn.Mode = ralg.RankStream // emulate a stream-ranked input
	s := ralg.NewSort(rn, "iter", "pos")
	out := Optimize(s)
	srt, ok := out.(*ralg.Sort)
	if !ok {
		// dropped entirely is also fine if covered
		return
	}
	if len(srt.By) != 1 || srt.By[0] != "iter" {
		t.Errorf("grpord sort rewrite: By=%v, want [iter]", srt.By)
	}
}

func TestOptimizeIsIdempotentOnDAGs(t *testing.T) {
	// shared subplan: two sorts over the same input must rewrite once
	in := &ralg.Lit{Tab: litTable(1, 2, 3)}
	s1 := ralg.NewSort(in, "iter")
	s2 := ralg.NewSort(in, "iter")
	u := &ralg.Union{Ins: []ralg.Plan{s1, s2}}
	out := Optimize(u)
	uu := out.(*ralg.Union)
	if uu.Ins[0] != in || uu.Ins[1] != in {
		t.Error("shared sorted input not elided on both branches")
	}
}
