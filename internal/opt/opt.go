// Package opt is the property-driven peephole optimizer of §4.1: a single
// linear pass over the physical plan DAG maintains the column properties
//
//	dense(c)        c is the sequence 1,2,3,…
//	key(c)          c is duplicate-free
//	const(c)        c has one constant value
//	ord([c…])       tuples are lexicographically ordered on [c…]
//	grpord([c…],g)  tuples with equal g are ordered on [c…] (groups need
//	                not be consecutive — the paper's generalization of
//	                secondary sort orders)
//
// and uses them to
//
//   - drop sort operators whose order already holds,
//   - turn full sorts into refine sorts (prefix already sorted) or into
//     stable one-column sorts (grpord),
//   - run ρ (DENSE_RANK) as a streaming hash-based numbering instead of a
//     sorting implementation (the grpord case called out in the paper),
//   - select positional joins on dense autoincrement key columns, and
//   - switch duplicate elimination to merge mode on sorted inputs.
package opt

import (
	"mxq/internal/ralg"
)

// props are the inferred column properties of one plan node's output.
type props struct {
	ords  [][]string // known lexicographic orderings
	grps  []grpOrd   // known group orderings
	dense map[string]bool
	key   map[string]bool
	cnst  map[string]bool
}

type grpOrd struct {
	cols []string
	g    string
}

func newProps() *props {
	return &props{dense: map[string]bool{}, key: map[string]bool{}, cnst: map[string]bool{}}
}

// covers reports whether the node is known to be sorted on cols:
// constant columns are skipped, and once a matched column is a key the
// remaining columns are free.
func (p *props) covers(cols []string) bool {
	want := p.strip(cols)
	if len(want) == 0 {
		return true
	}
	for _, ord := range p.ords {
		if p.prefixMatch(ord, want) {
			return true
		}
	}
	return false
}

// sortedPrefix returns the number of leading cols the input is known to
// be sorted on (for refine sorts).
func (p *props) sortedPrefix(cols []string) int {
	best := 0
	for k := len(cols); k > 0; k-- {
		if p.covers(cols[:k]) {
			best = k
			break
		}
	}
	return best
}

func (p *props) strip(cols []string) []string {
	var out []string
	for _, c := range cols {
		if !p.cnst[c] {
			out = append(out, c)
		}
	}
	return out
}

func (p *props) prefixMatch(ord, want []string) bool {
	oi := 0
	for wi := 0; wi < len(want); wi++ {
		// skip const columns inside the known ordering
		for oi < len(ord) && p.cnst[ord[oi]] {
			oi++
		}
		if oi >= len(ord) {
			return false
		}
		if ord[oi] != want[wi] {
			return false
		}
		if p.key[ord[oi]] {
			return true // unique prefix determines the full order
		}
		oi++
	}
	return true
}

// grpCovered reports whether grpord(cols, g) is known: either a global
// ordering on cols holds (any grouping of a sorted sequence is sorted),
// or a recorded grpord entry matches.
func (p *props) grpCovered(cols []string, g string) bool {
	if p.covers(cols) {
		return true
	}
	want := p.strip(cols)
	if len(want) == 0 {
		return true
	}
	for _, e := range p.grps {
		if e.g == g && p.prefixMatch(e.cols, want) {
			return true
		}
	}
	return false
}

// Optimize rewrites the plan DAG in place (returning the possibly new
// root). The pass is linear in the number of operators.
func Optimize(p ralg.Plan) ralg.Plan {
	return OptimizeTraced(p, nil)
}

type optimizer struct {
	done  map[ralg.Plan]ralg.Plan
	props map[ralg.Plan]*props
	// trace receives one RewriteStep per fired rule (see OptimizeTraced);
	// nil disables witness capture entirely.
	trace func(RewriteStep)
}

func (o *optimizer) rewrite(p ralg.Plan) ralg.Plan {
	if r, ok := o.done[p]; ok {
		return r
	}
	for i, in := range p.Inputs() {
		p.SetInput(i, o.rewrite(in))
	}
	r := o.rewriteNode(p)
	o.done[p] = r
	if _, ok := o.props[r]; !ok {
		o.props[r] = o.infer(r)
	}
	return r
}

func (o *optimizer) in(p ralg.Plan, i int) *props {
	pr, ok := o.props[p.Inputs()[i]]
	if !ok {
		pr = newProps()
	}
	return pr
}

func (o *optimizer) rewriteNode(p ralg.Plan) ralg.Plan {
	switch n := p.(type) {
	case *ralg.Sort:
		in := o.in(n, 0)
		for _, d := range n.Desc {
			if d {
				// covers/sortedPrefix only prove ascending orderings, so a
				// sort with a descending component can neither be dropped
				// nor turned into a refine sort from them
				return n
			}
		}
		if in.covers(n.By) {
			before, c := o.snap(n)
			o.fired(RuleSortDropCovered, before, c, n.In)
			return n.In // sort already satisfied: drop it
		}
		// stable one-column sort under grpord: sorted groups interleave
		if len(n.By) == 2 && n.Desc == nil && in.grpCovered(n.By[1:], n.By[0]) {
			before, c := o.snap(n)
			n.By = n.By[:1]
			o.fired(RuleSortStableOneCol, before, c, n)
			return n
		}
		if pfx := in.sortedPrefix(n.By); pfx > 0 {
			before, c := o.snap(n)
			n.RefinePrefix = pfx
			o.fired(RuleSortRefinePrefix, before, c, n)
		}
		return n
	case *ralg.RowNum:
		in := o.in(n, 0)
		full := n.OrderBy
		if n.Part != "" {
			full = append([]string{n.Part}, n.OrderBy...)
		}
		hasDesc := false
		for _, d := range n.Desc {
			hasDesc = hasDesc || d
		}
		switch {
		case hasDesc:
			n.Mode = ralg.RankSort
		case in.covers(full):
			before, c := o.snap(n)
			n.Mode = ralg.RankSeq
			o.fired(RuleRankSeq, before, c, n)
		case n.Part != "" && in.grpCovered(n.OrderBy, n.Part):
			before, c := o.snap(n)
			n.Mode = ralg.RankStream
			o.fired(RuleRankStream, before, c, n)
		default:
			n.Mode = ralg.RankSort
		}
		return n
	case *ralg.HashJoin:
		lp, rp := o.in(n, 0), o.in(n, 1)
		switch {
		case rp.dense[n.RKey]:
			before, c := o.snap(n)
			n.Pos = true
			o.fired(RuleJoinPosRight, before, c, n)
		case lp.dense[n.LKey] && lp.key[n.LKey] && rp.covers([]string{n.RKey}):
			// positional probe into the dense left key: equivalent to
			// the left-major hash join because left keys are unique and
			// the right input is key-sorted
			before, c := o.snap(n)
			n.PosLeft = true
			o.fired(RuleJoinPosLeft, before, c, n)
		}
		return n
	case *ralg.Distinct:
		in := o.in(n, 0)
		if in.covers(n.By) {
			before, c := o.snap(n)
			n.Merge = true
			o.fired(RuleDistinctMerge, before, c, n)
		}
		return n
	}
	return p
}

// infer computes the output properties of one (already rewritten) node.
func (o *optimizer) infer(p ralg.Plan) *props {
	pr := newProps()
	switch n := p.(type) {
	case *ralg.Lit:
		litProps(n.Tab, pr)
	case *ralg.LitDecl:
		// declared properties merge with what the table data shows
		// directly; planck verifies each declaration against the rows
		litProps(n.Tab, pr)
		for _, ord := range n.Ords {
			pr.ords = append(pr.ords, ord)
		}
		for _, g := range n.Grps {
			pr.grps = append(pr.grps, grpOrd{cols: g.Cols, g: g.Group})
		}
		for _, c := range n.Dense {
			pr.dense[c] = true
		}
		for _, c := range n.Key {
			pr.key[c] = true
		}
		for _, c := range n.Const {
			pr.cnst[c] = true
		}
	case *ralg.DocRoot:
		pr.key["pos"] = true
		pr.cnst["pos"] = true
		pr.cnst["item"] = true
		pr.ords = append(pr.ords, []string{"pos"})
	case *ralg.ContextRoot:
		// single row, like DocRoot — but the item is only constant within
		// one execution (it depends on the context document), so it keeps
		// the key/ord properties and not const(item)
		pr.key["pos"] = true
		pr.cnst["pos"] = true
		pr.key["item"] = true
		pr.ords = append(pr.ords, []string{"pos"})
	case *ralg.ParamTable:
		// pos is the dense 1..N position of the bound sequence; items are
		// arbitrary (bindings may repeat values)
		pr.key["pos"] = true
		pr.dense["pos"] = true
		pr.ords = append(pr.ords, []string{"pos"})
	case *ralg.CollectionRoot:
		// pos is the dense 1..N document ordinal; items are the distinct
		// document roots in (container, pre) — i.e. sorted — order
		pr.key["pos"] = true
		pr.dense["pos"] = true
		pr.key["item"] = true
		pr.ords = append(pr.ords, []string{"pos"}, []string{"item"})
	case *ralg.Project:
		in := o.in(n, 0)
		m := refMulti(n.Cols)
		for _, ord := range in.ords {
			for _, mapped := range mapColsMulti(ord, m) {
				pr.ords = append(pr.ords, mapped)
			}
		}
		for _, g := range in.grps {
			for _, gd := range m[g.g] {
				for _, mapped := range mapColsMulti(g.cols, m) {
					pr.grps = append(pr.grps, grpOrd{cols: mapped, g: gd})
				}
			}
		}
		for s, ds := range m {
			for _, d := range ds {
				if in.dense[s] {
					pr.dense[d] = true
				}
				if in.key[s] {
					pr.key[d] = true
				}
				if in.cnst[s] {
					pr.cnst[d] = true
				}
			}
		}
	case *ralg.Attach:
		*pr = *o.in(n, 0)
		pr = clone(pr)
		pr.cnst[n.Col] = true
	case *ralg.Select:
		in := o.in(n, 0)
		pr.ords = in.ords
		pr.grps = in.grps
		pr.key = in.key
		pr.cnst = in.cnst
		pr.dense = map[string]bool{} // gaps break denseness
	case *ralg.Fun:
		pr = clone(o.in(n, 0))
	case *ralg.ColToItem:
		pr = clone(o.in(n, 0))
	case *ralg.CardCheck, *ralg.EBV:
		pr = clone(o.in(p, 0))
		if e, ok := p.(*ralg.EBV); ok {
			// one row per group, groups in input order
			in := o.in(p, 0)
			pr = newProps()
			if in.covers([]string{e.Part}) {
				pr.ords = append(pr.ords, []string{e.Part})
			}
			pr.key[e.Part] = true
		}
	case *ralg.CoverCheck:
		pr = clone(o.in(p, 1))
	case *ralg.RowNum:
		pr = clone(o.in(n, 0))
		switch n.Mode {
		case ralg.RankSeq:
			if n.Part == "" {
				pr.dense[n.Out] = true
				pr.key[n.Out] = true
				pr.ords = append(pr.ords, []string{n.Out})
			} else {
				pr.grps = append(pr.grps, grpOrd{cols: []string{n.Out}, g: n.Part})
				if o.in(n, 0).covers([]string{n.Part}) {
					pr.ords = append(pr.ords, []string{n.Part, n.Out})
				}
			}
		case ralg.RankStream:
			if n.Part != "" {
				pr.grps = append(pr.grps, grpOrd{cols: []string{n.Out}, g: n.Part})
			}
		}
	case *ralg.Sort:
		in := o.in(n, 0)
		pr.key = in.key
		pr.cnst = in.cnst
		// a stable sort whose primary key is already the dense row
		// sequence is the identity permutation, so density survives; any
		// other sort may reorder rows, which breaks the in-row-order
		// property even though the column values are unchanged
		if len(n.By) > 0 && (len(n.Desc) == 0 || !n.Desc[0]) && in.dense[n.By[0]] {
			pr.dense = in.dense
		}
		if n.Desc == nil {
			pr.ords = append(pr.ords, n.By)
		}
		// a stable one-column sort preserves group orderings keyed by
		// that column (within-group order is untouched), and turns every
		// global input ordering into such a group ordering: rows with an
		// equal sort key keep their relative — hence sorted — order
		if len(n.By) == 1 {
			for _, g := range in.grps {
				if g.g == n.By[0] {
					pr.grps = append(pr.grps, g)
				}
			}
			for _, ord := range in.ords {
				if len(ord) > 0 {
					pr.grps = append(pr.grps, grpOrd{cols: ord, g: n.By[0]})
				}
			}
		}
	case *ralg.HashJoin:
		lp, rp := o.in(n, 0), o.in(n, 1)
		lm := refMap(n.LCols)
		rm := refMap(n.RCols)
		// left-major: the left ordering survives (with repetitions)
		for _, ord := range lp.ords {
			if mapped := mapCols(ord, lm); len(mapped) > 0 {
				// repetitions keep non-strict order; extend with the
				// right ordering when the left key is unique and the
				// matched ordering ends at the key
				if rp.key[n.RKey] || !lp.key[n.LKey] {
					pr.ords = append(pr.ords, mapped)
				}
				if lp.key[n.LKey] && len(ord) > 0 && ord[len(ord)-1] == n.LKey {
					for _, rord := range rp.ords {
						if len(rord) > 0 && rord[0] == n.RKey {
							ext := append(append([]string{}, mapped...), mapCols(rord[1:], rm)...)
							pr.ords = append(pr.ords, ext)
						}
					}
					pr.ords = append(pr.ords, mapped)
				}
			}
		}
		// key columns survive on the side whose partner key is unique;
		// dense columns survive only when no rows drop or duplicate,
		// which we cannot prove here — except the common map-composition
		// case where the right key is unique and covers the left keys
		if rp.key[n.RKey] {
			for s, d := range lm {
				if lp.key[s] {
					pr.key[d] = true
				}
			}
		}
		if lp.key[n.LKey] {
			for s, d := range rm {
				if rp.key[s] {
					pr.key[d] = true
				}
			}
		}
		for s, d := range lm {
			if lp.cnst[s] {
				pr.cnst[d] = true
			}
		}
		for s, d := range rm {
			if rp.cnst[s] {
				pr.cnst[d] = true
			}
		}
	case *ralg.Cross:
		lp, rp := o.in(n, 0), o.in(n, 1)
		lm := refMap(n.LCols)
		rm := refMap(n.RCols)
		for _, ord := range lp.ords {
			mapped := mapCols(ord, lm)
			if len(mapped) == 0 {
				continue
			}
			pr.ords = append(pr.ords, mapped)
			// unique left ordering: right order refines it
			if len(ord) > 0 && lp.key[ord[len(ord)-1]] {
				for _, rord := range rp.ords {
					ext := append(append([]string{}, mapped...), mapCols(rord, rm)...)
					pr.ords = append(pr.ords, ext)
				}
			}
		}
		for s, d := range lm {
			if lp.cnst[s] {
				pr.cnst[d] = true
			}
		}
		for s, d := range rm {
			if rp.cnst[s] {
				pr.cnst[d] = true
			}
		}
	case *ralg.Diff:
		in := o.in(n, 0)
		pr.ords = in.ords
		pr.grps = in.grps
		pr.key = in.key
		pr.cnst = in.cnst
	case *ralg.Distinct:
		pr = clone(o.in(n, 0))
		// dropping duplicate rows leaves gaps: density does not survive
		pr.dense = map[string]bool{}
	case *ralg.Aggr:
		in := o.in(n, 0)
		pr.key[n.Part] = true
		if in.covers([]string{n.Part}) {
			pr.ords = append(pr.ords, []string{n.Part})
		}
	case *ralg.Step:
		pr.ords = append(pr.ords, []string{"item", "iter"})
	case *ralg.AttrStep:
		pr.ords = append(pr.ords, []string{"item", "iter"})
	case *ralg.ExistJoin:
		pr.ords = append(pr.ords, []string{n.Out1, n.Out2})
	case *ralg.ElemConstruct:
		// one output row per Loop row, in loop order: ordering and
		// uniqueness of the iter column are inherited from the loop
		// relation (an unconditional key claim would be unsound for a
		// loop with duplicate iterations)
		lp := o.props[n.Loop]
		if lp != nil && lp.covers([]string{"iter"}) {
			pr.ords = append(pr.ords, []string{"iter"})
		}
		if lp != nil && lp.key["iter"] {
			pr.key["iter"] = true
		}
	case *ralg.RangeGen:
		in := o.in(n, 0)
		if in.covers([]string{n.Iter}) {
			pr.ords = append(pr.ords, []string{"iter", "pos"})
		}
		pr.grps = append(pr.grps, grpOrd{cols: []string{"pos"}, g: "iter"})
	case *ralg.Union:
		// disjoint union of one input passes through
		if len(n.Ins) == 1 {
			pr = clone(o.props[n.Ins[0]])
		}
	}
	pr.expandOrds()
	return pr
}

// expandOrds derives implied orderings: a table sorted on [a…g] whose
// equal-g groups are sorted on [x…] (grpord) is sorted on [a…g, x…] —
// equal-g rows are consecutive there, and subsets preserve grpord order.
func (p *props) expandOrds() {
	var extra [][]string
	for _, ord := range p.ords {
		if len(ord) == 0 {
			continue
		}
		last := ord[len(ord)-1]
		for _, g := range p.grps {
			if g.g == last {
				extra = append(extra, append(append([]string{}, ord...), g.cols...))
			}
		}
	}
	p.ords = append(p.ords, extra...)
}

func clone(p *props) *props {
	out := newProps()
	out.ords = append(out.ords, p.ords...)
	out.grps = append(out.grps, p.grps...)
	for k := range p.dense {
		out.dense[k] = true
	}
	for k := range p.key {
		out.key[k] = true
	}
	for k := range p.cnst {
		out.cnst[k] = true
	}
	return out
}

func refMap(refs []ralg.ColRef) map[string]string {
	m := map[string]string{}
	for _, r := range refs {
		if _, ok := m[r.Src]; !ok {
			m[r.Src] = r.Dst
		}
	}
	return m
}

func refMulti(refs []ralg.ColRef) map[string][]string {
	m := map[string][]string{}
	for _, r := range refs {
		m[r.Src] = append(m[r.Src], r.Dst)
	}
	return m
}

func mapCols(cols []string, m map[string]string) []string {
	var out []string
	for _, c := range cols {
		d, ok := m[c]
		if !ok {
			return out
		}
		out = append(out, d)
	}
	return out
}

// mapColsMulti maps an ordering through a multi-alias projection,
// returning one mapped ordering per alias combination prefix (aliases
// beyond the first are only followed for single columns to bound the
// fan-out; duplicated sort columns are rare and short).
func mapColsMulti(cols []string, m map[string][]string) [][]string {
	outs := [][]string{nil}
	for _, c := range cols {
		ds, ok := m[c]
		if !ok || len(ds) == 0 {
			break
		}
		var next [][]string
		for _, prefix := range outs {
			for _, d := range ds {
				next = append(next, append(append([]string{}, prefix...), d))
			}
		}
		outs = next
		if len(outs) > 8 {
			break
		}
	}
	var final [][]string
	for _, o := range outs {
		if len(o) > 0 {
			final = append(final, o)
		}
	}
	return final
}

// litProps inspects a literal table directly (they are tiny: loop seeds
// and empty relations).
func litProps(t *ralg.Table, pr *props) {
	for _, name := range t.Names() {
		c := t.Col(name)
		if c.Kind != ralg.KInt {
			continue
		}
		sorted, uniq, dense := true, true, true
		for i := 0; i < len(c.Int); i++ {
			if i > 0 {
				if c.Int[i] < c.Int[i-1] {
					sorted = false
				}
				if c.Int[i] == c.Int[i-1] {
					uniq = false
				}
			}
			if c.Int[i] != int64(i)+1 {
				dense = false
			}
		}
		if sorted {
			pr.ords = append(pr.ords, []string{name})
		}
		if sorted && uniq {
			pr.key[name] = true
		}
		if dense {
			pr.dense[name] = true
		}
		if t.N <= 1 {
			pr.cnst[name] = true
		}
	}
}
