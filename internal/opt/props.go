package opt

import (
	"sort"

	"mxq/internal/ralg"
)

// Props is a read-only view of one plan node's inferred §4.1 column
// properties, exported for the static plan verifier (internal/planck):
// planck re-derives a conservative subset of these properties from
// first principles and reports any claim of the optimizer that its own
// inference refutes.
type Props struct {
	p *props
}

// GrpOrd is one known group ordering: tuples with equal Group are
// ordered on Cols (groups need not be consecutive).
type GrpOrd struct {
	Cols  []string
	Group string
}

// Dense reports whether column c is known to be the sequence 1,2,3,…
// in row order.
func (pr Props) Dense(c string) bool { return pr.p != nil && pr.p.dense[c] }

// Key reports whether column c is known to be duplicate-free.
func (pr Props) Key(c string) bool { return pr.p != nil && pr.p.key[c] }

// Const reports whether column c is known to hold one constant value.
func (pr Props) Const(c string) bool { return pr.p != nil && pr.p.cnst[c] }

// Covers reports whether the node is known to be sorted on cols.
func (pr Props) Covers(cols []string) bool { return pr.p != nil && pr.p.covers(cols) }

// GrpCovered reports whether grpord(cols, g) is known to hold.
func (pr Props) GrpCovered(cols []string, g string) bool {
	return pr.p != nil && pr.p.grpCovered(cols, g)
}

// SortedPrefix returns the number of leading cols the node is known to
// be sorted on.
func (pr Props) SortedPrefix(cols []string) int {
	if pr.p == nil {
		return 0
	}
	return pr.p.sortedPrefix(cols)
}

// DenseCols returns the dense columns, sorted by name.
func (pr Props) DenseCols() []string { return sortedKeys(prMap(pr, 'd')) }

// KeyCols returns the key columns, sorted by name.
func (pr Props) KeyCols() []string { return sortedKeys(prMap(pr, 'k')) }

// ConstCols returns the constant columns, sorted by name.
func (pr Props) ConstCols() []string { return sortedKeys(prMap(pr, 'c')) }

// Ords returns the known lexicographic orderings.
func (pr Props) Ords() [][]string {
	if pr.p == nil {
		return nil
	}
	return pr.p.ords
}

// Grps returns the known group orderings.
func (pr Props) Grps() []GrpOrd {
	if pr.p == nil {
		return nil
	}
	out := make([]GrpOrd, len(pr.p.grps))
	for i, g := range pr.p.grps {
		out[i] = GrpOrd{Cols: g.cols, Group: g.g}
	}
	return out
}

func prMap(pr Props, which byte) map[string]bool {
	if pr.p == nil {
		return nil
	}
	switch which {
	case 'd':
		return pr.p.dense
	case 'k':
		return pr.p.key
	default:
		return pr.p.cnst
	}
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// InferProps runs the §4.1 property inference over an existing plan DAG
// without rewriting it, returning the inferred properties per node. It
// works on optimized and unoptimized plans alike: inference only reads
// the operators (including any Mode/Pos/Merge annotations already set),
// so on an optimizer output it reproduces exactly the properties the
// rewrites were justified by.
func InferProps(root ralg.Plan) map[ralg.Plan]Props {
	o := &optimizer{
		done:  map[ralg.Plan]ralg.Plan{},
		props: map[ralg.Plan]*props{},
	}
	ralg.Walk(root, func(n ralg.Plan) {
		if _, ok := o.props[n]; !ok {
			o.props[n] = o.infer(n)
		}
	})
	out := make(map[ralg.Plan]Props, len(o.props))
	for n, pr := range o.props {
		out[n] = Props{p: pr}
	}
	return out
}
