package opt

import (
	"testing"

	"mxq/internal/ralg"
)

// litTable2 builds a one-int-column table under an arbitrary name.
func litTable2(name string, vals ...int64) *ralg.Table {
	t := ralg.NewTable([]string{name}, []ralg.ColKind{ralg.KInt})
	t.N = len(vals)
	t.Col(name).Int = vals
	return t
}

// A descending sort must not be elided (or refined away) just because
// an ascending cover of the same columns holds: ord(iter) proves the
// ascending order, the opposite of what the sort requests.
func TestDescendingSortNotElided(t *testing.T) {
	in := &ralg.Lit{Tab: litTable(1, 2, 3)}
	s := ralg.NewSort(in, "iter")
	s.Desc = []bool{true}
	out := Optimize(s)
	srt, ok := out.(*ralg.Sort)
	if !ok {
		t.Fatalf("descending sort dropped: %T", out)
	}
	if srt.RefinePrefix != 0 {
		t.Fatalf("descending sort refined: prefix %d", srt.RefinePrefix)
	}
	got, err := ralg.NewExec(nil, nil).Run(srt)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{3, 2, 1}
	for i, v := range got.Col("iter").Int {
		if v != want[i] {
			t.Fatalf("descending sort output %v, want %v", got.Col("iter").Int, want)
		}
	}
}

// A sort reorders rows, so density (values == row index + 1) of an
// unrelated column must not survive it.
func TestSortDropsDensity(t *testing.T) {
	tab := ralg.NewTable([]string{"a", "b"}, []ralg.ColKind{ralg.KInt, ralg.KInt})
	tab.N = 3
	tab.Col("a").Int = []int64{1, 2, 3}    // dense
	tab.Col("b").Int = []int64{30, 20, 10} // sort key reverses the rows
	s := ralg.NewSort(&ralg.Lit{Tab: tab}, "b")
	props := InferProps(s)
	if props[s].Dense("a") {
		t.Error("density of column a claimed across a sort by b")
	}
	// the identity case: a stable sort keyed by the dense column itself
	// cannot reorder anything
	s2 := ralg.NewSort(&ralg.Lit{Tab: tab}, "a")
	props = InferProps(s2)
	if !props[s2].Dense("a") {
		t.Error("sort by the dense column itself must keep density")
	}
}

// Distinct drops duplicate rows, leaving gaps in a dense column.
func TestDistinctDropsDensity(t *testing.T) {
	tab := ralg.NewTable([]string{"a", "b"}, []ralg.ColKind{ralg.KInt, ralg.KInt})
	tab.N = 3
	tab.Col("a").Int = []int64{1, 2, 3}
	tab.Col("b").Int = []int64{7, 7, 8}
	d := &ralg.Distinct{By: []string{"b"}}
	d.SetInput(0, &ralg.Lit{Tab: tab})
	props := InferProps(d)
	if props[d].Dense("a") {
		t.Error("density claimed across duplicate elimination")
	}
}

// Element construction emits one row per loop row, so its iter column
// is a key only when the loop's iter column is one.
func TestElemConstructKeyRequiresLoopKey(t *testing.T) {
	uniqLoop := &ralg.Lit{Tab: litTable2("iter", 1, 2, 3)}
	dupLoop := &ralg.Lit{Tab: litTable2("iter", 1, 1, 2)}
	mkElem := func(loop ralg.Plan) *ralg.ElemConstruct {
		tab := ralg.NewTable([]string{"iter", "item"}, []ralg.ColKind{ralg.KInt, ralg.KItem})
		e := &ralg.ElemConstruct{Loop: loop, Content: &ralg.Lit{Tab: tab}, Tag: "e"}
		return e
	}
	e1 := mkElem(uniqLoop)
	if !InferProps(e1)[e1].Key("iter") {
		t.Error("elem over a key loop must keep key(iter)")
	}
	e2 := mkElem(dupLoop)
	if InferProps(e2)[e2].Key("iter") {
		t.Error("elem over a loop with duplicate iterations must not claim key(iter)")
	}
}

// A stable one-column sort turns a global input ordering into a group
// ordering keyed by the sort column: rows with an equal sort key keep
// their (sorted) relative order. The sort-shortening rewrite relies on
// this — sort(item,iter) over an iter-ordered input becomes
// sort(item), and downstream consumers must still be able to prove
// ord(item,iter).
func TestStableSortKeepsGlobalOrderAsGrpord(t *testing.T) {
	tab := ralg.NewTable([]string{"iter", "item"}, []ralg.ColKind{ralg.KInt, ralg.KInt})
	tab.N = 4
	tab.Col("iter").Int = []int64{1, 2, 3, 4}
	tab.Col("item").Int = []int64{9, 7, 9, 7}
	s := ralg.NewSort(&ralg.Lit{Tab: tab}, "item", "iter")
	out := Optimize(s)
	srt, ok := out.(*ralg.Sort)
	if !ok || len(srt.By) != 1 || srt.By[0] != "item" {
		t.Fatalf("sort-shortening rewrite did not fire: %T %v", out, out)
	}
	if !InferProps(srt)[srt].Covers([]string{"item", "iter"}) {
		t.Error("shortened stable sort must still prove ord(item,iter)")
	}
}
