package xqt

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstructorsAndAccessors(t *testing.T) {
	if Int(42).AsDouble() != 42 || Int(42).AsString() != "42" {
		t.Error("Int roundtrip")
	}
	if Double(2.5).AsString() != "2.5" {
		t.Errorf("Double format: %s", Double(2.5).AsString())
	}
	if Double(3).AsString() != "3" {
		t.Errorf("integral double format: %s", Double(3).AsString())
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("Bool")
	}
	if Str("x").AsString() != "x" || Untyped("y").AsString() != "y" {
		t.Error("strings")
	}
	n := Node(3, 17)
	if !n.IsNode() || n.Pre() != 17 || n.Cont != 3 {
		t.Error("Node")
	}
	a := Attr(2, 5)
	if !a.IsNode() || a.IsAtom() {
		t.Error("Attr")
	}
	if !Int(1).IsNumeric() || !Double(1).IsNumeric() || Str("1").IsNumeric() {
		t.Error("IsNumeric")
	}
}

func TestAsDoubleCasts(t *testing.T) {
	cases := []struct {
		in   Item
		want float64
	}{
		{Int(-7), -7},
		{Double(1.5), 1.5},
		{Str("2.25"), 2.25},
		{Untyped(" 10 "), 10},
		{Bool(true), 1},
	}
	for _, c := range cases {
		if got := c.in.AsDouble(); got != c.want {
			t.Errorf("AsDouble(%+v) = %v, want %v", c.in, got, c.want)
		}
	}
	if !math.IsNaN(Str("abc").AsDouble()) {
		t.Error("unparsable string must cast to NaN")
	}
}

func TestComparepromotion(t *testing.T) {
	cases := []struct {
		a, b Item
		op   CmpOp
		want bool
	}{
		{Int(2), Int(2), CmpEq, true},
		{Int(2), Double(2.0), CmpEq, true},
		{Untyped("10"), Int(10), CmpEq, true},      // untyped vs numeric: numeric
		{Untyped("10"), Untyped("9"), CmpLt, true}, // untyped vs untyped: string!
		{Str("a"), Str("b"), CmpLt, true},
		{Untyped("abc"), Int(1), CmpEq, false}, // NaN never equal
		{Untyped("abc"), Int(1), CmpNe, false}, // NaN never unequal either
		{Bool(true), Untyped("true"), CmpEq, true},
		{Int(3), Int(2), CmpGe, true},
		{Double(1.5), Int(2), CmpLe, true},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b, c.op); got != c.want {
			t.Errorf("Compare(%+v %v %+v) = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

// TestCompareTotalOnInts: on plain integers, Compare agrees with Go's
// comparison operators (property-based).
func TestCompareTotalOnInts(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := Int(int64(a)), Int(int64(b))
		return Compare(x, y, CmpEq) == (a == b) &&
			Compare(x, y, CmpNe) == (a != b) &&
			Compare(x, y, CmpLt) == (a < b) &&
			Compare(x, y, CmpLe) == (a <= b) &&
			Compare(x, y, CmpGt) == (a > b) &&
			Compare(x, y, CmpGe) == (a >= b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSwapConsistency: a op b == b op.Swap() a for all values and ops.
func TestSwapConsistency(t *testing.T) {
	ops := []CmpOp{CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe}
	f := func(a, b int16, opIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		x, y := Int(int64(a)), Int(int64(b))
		return Compare(x, y, op) == Compare(y, x, op.Swap())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestSortLessStrictWeakOrder: SortLess is irreflexive, asymmetric and
// transitive over a mixed value domain (property-based).
func TestSortLessStrictWeakOrder(t *testing.T) {
	gen := func(k uint8, i int32, s uint8) Item {
		switch k % 5 {
		case 0:
			return Int(int64(i))
		case 1:
			return Double(float64(i) / 2)
		case 2:
			return Str(string(rune('a' + s%26)))
		case 3:
			return Bool(i%2 == 0)
		default:
			return Node(int32(k%3), i%100)
		}
	}
	f := func(k1, k2, k3 uint8, i1, i2, i3 int32, s1, s2, s3 uint8) bool {
		a, b, c := gen(k1, i1, s1), gen(k2, i2, s2), gen(k3, i3, s3)
		if SortLess(a, a) {
			return false // irreflexive
		}
		if SortLess(a, b) && SortLess(b, a) {
			return false // asymmetric
		}
		if SortLess(a, b) && SortLess(b, c) && !SortLess(a, c) {
			return false // transitive
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFormatDoubleSpecials(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{math.Inf(1), "INF"},
		{math.Inf(-1), "-INF"},
		{math.NaN(), "NaN"},
		{3, "3"},
		{-3, "-3"},
		{2.5, "2.5"},
		{0, "0"},
		{1e16, "1e+16"},
	}
	for _, c := range cases {
		if got := FormatDouble(c.in); got != c.want {
			t.Errorf("FormatDouble(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRoundHalfTowardPositiveInfinity(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{2.5, 3}, {-2.5, -2}, {2.4, 2}, {-2.6, -3}, {0.5, 1}, {-0.5, 0}, {7, 7},
	}
	for _, c := range cases {
		if got := Round(c.in); got != c.want {
			t.Errorf("Round(%v) = %v, want %v", c.in, got, c.want)
		}
	}
	if !math.IsNaN(Round(math.NaN())) {
		t.Error("Round(NaN) must be NaN")
	}
	if !math.IsInf(Round(math.Inf(1)), 1) || !math.IsInf(Round(math.Inf(-1)), -1) {
		t.Error("Round must pass infinities through")
	}
}

func TestLocalName(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a", "a"}, {"ns:a", "a"}, {"urn:x:child", "child"}, {"", ""},
	}
	for _, c := range cases {
		if got := LocalName(c.in); got != c.want {
			t.Errorf("LocalName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestEmptyLeastSortsFirst(t *testing.T) {
	others := []Item{Int(-1 << 60), Double(math.Inf(-1)), Str(""), Bool(false), Node(0, 0)}
	for _, o := range others {
		if !SortLess(EmptyLeast, o) {
			t.Errorf("EmptyLeast must sort before %+v", o)
		}
		if SortLess(o, EmptyLeast) {
			t.Errorf("%+v sorts before EmptyLeast", o)
		}
	}
}

func TestDocOrderLess(t *testing.T) {
	owner := func(cont int32, row int32) int32 { return 10 } // all attrs owned by pre 10
	n5, n10, n11 := Node(1, 5), Node(1, 10), Node(1, 11)
	a0, a1 := Attr(1, 0), Attr(1, 1)
	other := Node(2, 0)
	if !DocOrderLess(n5, n10, owner) || DocOrderLess(n10, n5, owner) {
		t.Error("pre order")
	}
	if !DocOrderLess(n10, a0, owner) {
		t.Error("element before its attributes")
	}
	if !DocOrderLess(a0, a1, owner) {
		t.Error("attribute table order")
	}
	if !DocOrderLess(a1, n11, owner) {
		t.Error("attributes before the next element")
	}
	if !DocOrderLess(n11, other, owner) {
		t.Error("container order")
	}
}

func TestKindStrings(t *testing.T) {
	for k := KUntyped; k <= KAttr; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has no name", k)
		}
	}
	for _, op := range []CmpOp{CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe} {
		if op.String() == "cmp?" {
			t.Errorf("op %d has no name", op)
		}
	}
}
