// Package xqt implements the XQuery data model used throughout the engine:
// polymorphic items (integers, doubles, strings, booleans, node references)
// together with the comparison, promotion and casting rules of the XQuery
// specification that the compiled relational plans rely on.
//
// An XQuery sequence is represented relationally as an iter|pos|item table
// (see internal/ralg); this package only defines the item domain.
package xqt

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind discriminates the runtime type of an Item.
type Kind uint8

// Item kinds. KUntyped is the xs:untypedAtomic type that results from
// atomizing a node; it casts to double or string depending on the
// comparison partner, per the XQuery general comparison rules.
const (
	KUntyped Kind = iota // untyped atomic (string payload)
	KInt                 // xs:integer
	KDouble              // xs:double (also used for xs:decimal)
	KString              // xs:string
	KBool                // xs:boolean
	KNode                // reference to a tree node: (Cont, I=pre)
	KAttr                // reference to an attribute node: (Cont, I=attribute row)
)

func (k Kind) String() string {
	switch k {
	case KUntyped:
		return "untyped"
	case KInt:
		return "integer"
	case KDouble:
		return "double"
	case KString:
		return "string"
	case KBool:
		return "boolean"
	case KNode:
		return "node"
	case KAttr:
		return "attribute"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Item is a single XQuery item. The item columns of the relational
// sequence encoding hold values of this type (stored as typed vectors,
// see ralg.ItemVec). Which fields are meaningful depends on K:
//
//	KInt:     I
//	KDouble:  F
//	KString:  S
//	KUntyped: S
//	KBool:    I (0 or 1)
//	KNode:    Cont (container id), I (preorder rank)
//	KAttr:    Cont (container id), I (attribute table row)
//
// The engine relies on the fields *not* listed for a kind being zero:
// items round-trip through per-kind payload vectors that store only the
// listed fields, and item equality is struct equality. Always build
// items through the constructors below.
type Item struct {
	K    Kind
	Cont int32
	I    int64
	F    float64
	S    string
}

// Convenience constructors.

// Int returns an xs:integer item.
func Int(v int64) Item { return Item{K: KInt, I: v} }

// Double returns an xs:double item.
func Double(v float64) Item { return Item{K: KDouble, F: v} }

// Str returns an xs:string item.
func Str(s string) Item { return Item{K: KString, S: s} }

// Untyped returns an xs:untypedAtomic item (node atomization result).
func Untyped(s string) Item { return Item{K: KUntyped, S: s} }

// Bool returns an xs:boolean item.
func Bool(b bool) Item {
	if b {
		return Item{K: KBool, I: 1}
	}
	return Item{K: KBool, I: 0}
}

// Node returns a node reference item.
func Node(cont int32, pre int32) Item { return Item{K: KNode, Cont: cont, I: int64(pre)} }

// Attr returns an attribute node reference item.
func Attr(cont int32, row int32) Item { return Item{K: KAttr, Cont: cont, I: int64(row)} }

// IsNode reports whether the item references a tree or attribute node.
func (it Item) IsNode() bool { return it.K == KNode || it.K == KAttr }

// IsNumeric reports whether the item is an xs:integer or xs:double.
func (it Item) IsNumeric() bool { return it.K == KInt || it.K == KDouble }

// IsAtom reports whether the item is an atomic value (not a node).
func (it Item) IsAtom() bool { return !it.IsNode() }

// Pre returns the preorder rank of a KNode item.
func (it Item) Pre() int32 { return int32(it.I) }

// AsBool returns the boolean payload of a KBool item.
func (it Item) AsBool() bool { return it.I != 0 }

// AsDouble converts the item to xs:double following the XQuery casting
// rules. Untyped and string payloads are parsed; unparsable input yields
// NaN (the engine treats NaN like the XQuery dynamic error FORG0001 would
// behave in comparisons: every comparison is false).
func (it Item) AsDouble() float64 {
	switch it.K {
	case KInt:
		return float64(it.I)
	case KDouble:
		return it.F
	case KBool:
		return float64(it.I)
	case KString, KUntyped:
		return ParseDouble(it.S)
	}
	return math.NaN()
}

// ParseDouble casts a string to xs:double per the item casting rules:
// surrounding whitespace is ignored and unparsable input yields NaN.
func ParseDouble(s string) float64 {
	f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return math.NaN()
	}
	return f
}

// AsString converts an atomic item to its string representation (xs:string
// cast). Node items cannot be converted here; atomize them first.
func (it Item) AsString() string {
	switch it.K {
	case KString, KUntyped:
		return it.S
	case KInt:
		return strconv.FormatInt(it.I, 10)
	case KDouble:
		return FormatDouble(it.F)
	case KBool:
		if it.I != 0 {
			return "true"
		}
		return "false"
	}
	return ""
}

// FormatDouble renders a float the way XQuery serializes xs:double values
// that have no exponent: integral values print without a decimal point,
// and the special values serialize as INF, -INF and NaN (XPath spec
// casting of xs:double to xs:string, not Go's +Inf/-Inf spellings).
func FormatDouble(f float64) string {
	switch {
	case math.IsInf(f, 1):
		return "INF"
	case math.IsInf(f, -1):
		return "-INF"
	case math.IsNaN(f):
		return "NaN"
	}
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// Round implements fn:round's half-toward-positive-infinity rule:
// round(2.5) is 3 but round(-2.5) is -2 (unlike Go's math.Round, which
// rounds halves away from zero). NaN and the infinities pass through.
func Round(f float64) float64 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return f
	}
	return math.Floor(f + 0.5)
}

// LocalName returns the local part of a qualified name: everything after
// the last colon (fn:local-name over our prefix:local name encoding).
func LocalName(qname string) string {
	if i := strings.LastIndexByte(qname, ':'); i >= 0 {
		return qname[i+1:]
	}
	return qname
}

// CmpOp identifies a comparison operator.
type CmpOp uint8

// Comparison operators (shared by value and general comparisons).
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

func (op CmpOp) String() string {
	switch op {
	case CmpEq:
		return "eq"
	case CmpNe:
		return "ne"
	case CmpLt:
		return "lt"
	case CmpLe:
		return "le"
	case CmpGt:
		return "gt"
	case CmpGe:
		return "ge"
	}
	return "cmp?"
}

// Swap returns the operator with its operands exchanged (a op b == b op.Swap a).
func (op CmpOp) Swap() CmpOp {
	switch op {
	case CmpLt:
		return CmpGt
	case CmpLe:
		return CmpGe
	case CmpGt:
		return CmpLt
	case CmpGe:
		return CmpLe
	}
	return op
}

// Compare applies a general-comparison style value test between two atomic
// items, performing the XQuery type promotion rules:
//
//   - if either operand is numeric, both are promoted to xs:double
//     (untypedAtomic casts to double);
//   - untypedAtomic compared with string (or untyped) compares as strings;
//   - booleans compare as booleans.
//
// NaN (unparsable numeric cast) makes every comparison false, mirroring the
// IEEE semantics XQuery adopts for xs:double.
func Compare(a, b Item, op CmpOp) bool {
	if a.K == KBool || b.K == KBool {
		av, bv := a.I, b.I
		if a.K != KBool {
			av = boolAsInt(a)
		}
		if b.K != KBool {
			bv = boolAsInt(b)
		}
		return cmpInt(av, bv, op)
	}
	if a.IsNumeric() || b.IsNumeric() {
		if a.K == KInt && b.K == KInt {
			return cmpInt(a.I, b.I, op)
		}
		return cmpFloat(a.AsDouble(), b.AsDouble(), op)
	}
	// string / untyped territory
	return cmpStr(a.AsString(), b.AsString(), op)
}

// CompareInt applies op to two xs:integer (or xs:boolean) payloads; the
// typed-vector kernels use it to compare whole columns without boxing.
func CompareInt(a, b int64, op CmpOp) bool { return cmpInt(a, b, op) }

// CompareFloat applies op to two xs:double values with IEEE NaN
// semantics (NaN compares false under every operator, including ne when
// the other side is NaN too — matching Compare on items).
func CompareFloat(a, b float64, op CmpOp) bool { return cmpFloat(a, b, op) }

// CompareString applies op to two strings (codepoint collation).
func CompareString(a, b string, op CmpOp) bool { return cmpStr(a, b, op) }

func boolAsInt(a Item) int64 {
	// effective boolean cast of a non-boolean compared against a boolean:
	// XQuery casts untyped to boolean; we accept "true"/"false"/"1"/"0".
	switch strings.TrimSpace(a.AsString()) {
	case "true", "1":
		return 1
	default:
		return 0
	}
}

func cmpInt(a, b int64, op CmpOp) bool {
	switch op {
	case CmpEq:
		return a == b
	case CmpNe:
		return a != b
	case CmpLt:
		return a < b
	case CmpLe:
		return a <= b
	case CmpGt:
		return a > b
	case CmpGe:
		return a >= b
	}
	return false
}

func cmpFloat(a, b float64, op CmpOp) bool {
	switch op {
	case CmpEq:
		return a == b
	case CmpNe:
		return a != b && !math.IsNaN(a) && !math.IsNaN(b)
	case CmpLt:
		return a < b
	case CmpLe:
		return a <= b
	case CmpGt:
		return a > b
	case CmpGe:
		return a >= b
	}
	return false
}

func cmpStr(a, b string, op CmpOp) bool {
	c := strings.Compare(a, b)
	switch op {
	case CmpEq:
		return c == 0
	case CmpNe:
		return c != 0
	case CmpLt:
		return c < 0
	case CmpLe:
		return c <= 0
	case CmpGt:
		return c > 0
	case CmpGe:
		return c >= 0
	}
	return false
}

// SortLess is a total order over items used for order-by clauses and for
// value-based sorting inside the engine. Nodes sort by document order
// (container, pre); numeric values sort numerically; strings
// lexicographically; mixed kinds sort by a fixed kind rank so the order is
// total. Empty-sequence sort keys are represented by the engine with
// EmptyLeast, which sorts before everything.
func SortLess(a, b Item) bool {
	ra, rb := sortRank(a), sortRank(b)
	if ra != rb {
		return ra < rb
	}
	switch ra {
	case rankEmpty:
		return false
	case rankNumeric:
		af, bf := a.AsDouble(), b.AsDouble()
		if af != bf {
			return af < bf
		}
		return false
	case rankString:
		return a.AsString() < b.AsString()
	case rankBool:
		return a.I < b.I
	default: // nodes
		if a.Cont != b.Cont {
			return a.Cont < b.Cont
		}
		if a.K != b.K && a.I == b.I {
			// element before its attributes at the same pre
			return a.K == KNode
		}
		return a.I < b.I
	}
}

const (
	rankEmpty = iota
	rankNumeric
	rankString
	rankBool
	rankNode
)

// EmptyLeast is the sort key used for "order by" keys over empty sequences
// (XQuery's default "empty least" behaviour). It sorts before every other
// item. It is recognized by its sentinel string payload (which cannot
// occur in parsed XML: NUL is not an XML character), so it survives the
// typed-vector column representation, which stores only the S payload for
// untyped items.
var EmptyLeast = Item{K: KUntyped, S: "\x00emptyleast"}

// IsEmptyLeast reports whether the item is the EmptyLeast sort sentinel.
func IsEmptyLeast(a Item) bool {
	return a.K == KUntyped && a.S == EmptyLeast.S
}

func sortRank(a Item) int {
	if IsEmptyLeast(a) {
		return rankEmpty
	}
	switch a.K {
	case KInt, KDouble:
		return rankNumeric
	case KUntyped, KString:
		return rankString
	case KBool:
		return rankBool
	default:
		return rankNode
	}
}

// Equal reports deep equality of two items as node identities or atomic
// values (used by `is` and for duplicate elimination of node sequences).
func Equal(a, b Item) bool { return a == b }

// DocOrderLess orders node items by document order: lexicographically by
// (container, pre). Attribute nodes order immediately after their owner
// element; two attributes of the same element keep attribute-table order.
// ownerOf resolves the owning element pre of an attribute row and is
// supplied by the storage layer.
func DocOrderLess(a, b Item, ownerOf func(cont int32, row int32) int32) bool {
	ak, bk := docKey(a, ownerOf), docKey(b, ownerOf)
	if ak.cont != bk.cont {
		return ak.cont < bk.cont
	}
	if ak.pre != bk.pre {
		return ak.pre < bk.pre
	}
	if ak.sub != bk.sub {
		return ak.sub < bk.sub
	}
	return false
}

type docOrderKey struct {
	cont int32
	pre  int32
	sub  int64
}

func docKey(a Item, ownerOf func(cont int32, row int32) int32) docOrderKey {
	if a.K == KAttr {
		return docOrderKey{cont: a.Cont, pre: ownerOf(a.Cont, int32(a.I)), sub: 1 + a.I}
	}
	return docOrderKey{cont: a.Cont, pre: int32(a.I)}
}
