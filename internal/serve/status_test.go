package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"testing"

	"mxq/internal/xqerr"
)

// execStatus is the server's whole error taxonomy: 504 for deadline or
// disconnect, 400 for static query errors (the query can never run),
// 500 for everything else including dynamic query errors.
func TestExecStatusMapping(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"deadline", context.DeadlineExceeded, http.StatusGatewayTimeout},
		{"canceled", context.Canceled, http.StatusGatewayTimeout},
		{"wrapped deadline", fmt.Errorf("executing: %w", context.DeadlineExceeded), http.StatusGatewayTimeout},
		{"static error", xqerr.Newf("XPST0008", "undefined name"), http.StatusBadRequest},
		{"wrapped static", fmt.Errorf("compile: %w", xqerr.Newf("XQST0039", "dup param")), http.StatusBadRequest},
		{"dynamic error", xqerr.Newf("XPDY0002", "no context item"), http.StatusInternalServerError},
		{"cast error", xqerr.Newf("FORG0001", "bad cast"), http.StatusInternalServerError},
		{"plain error", errors.New("disk on fire"), http.StatusInternalServerError},
	}
	for _, tc := range cases {
		if got := execStatus(tc.err); got != tc.want {
			t.Errorf("%s: execStatus(%v) = %d, want %d", tc.name, tc.err, got, tc.want)
		}
	}
}

// A static error that also wraps a cancellation sentinel counts as a
// timeout: the 504 check runs first, deliberately, so a query killed
// mid-compile by disconnect is not misreported as a client error.
func TestExecStatusCancellationWins(t *testing.T) {
	err := fmt.Errorf("%w: %w", context.Canceled, xqerr.Newf("XPST0008", "x"))
	if got := execStatus(err); got != http.StatusGatewayTimeout {
		t.Errorf("execStatus = %d, want 504", got)
	}
}
